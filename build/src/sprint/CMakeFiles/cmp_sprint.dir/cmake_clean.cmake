file(REMOVE_RECURSE
  "CMakeFiles/cmp_sprint.dir/sprint.cc.o"
  "CMakeFiles/cmp_sprint.dir/sprint.cc.o.d"
  "libcmp_sprint.a"
  "libcmp_sprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_sprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
