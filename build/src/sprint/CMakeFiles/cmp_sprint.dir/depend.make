# Empty dependencies file for cmp_sprint.
# This may be replaced when dependencies are built.
