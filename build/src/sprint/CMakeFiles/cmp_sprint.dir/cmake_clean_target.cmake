file(REMOVE_RECURSE
  "libcmp_sprint.a"
)
