# Empty compiler generated dependencies file for cmp_sliq.
# This may be replaced when dependencies are built.
