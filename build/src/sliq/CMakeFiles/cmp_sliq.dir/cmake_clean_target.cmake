file(REMOVE_RECURSE
  "libcmp_sliq.a"
)
