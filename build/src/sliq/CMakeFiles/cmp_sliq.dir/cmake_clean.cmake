file(REMOVE_RECURSE
  "CMakeFiles/cmp_sliq.dir/sliq.cc.o"
  "CMakeFiles/cmp_sliq.dir/sliq.cc.o.d"
  "libcmp_sliq.a"
  "libcmp_sliq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_sliq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
