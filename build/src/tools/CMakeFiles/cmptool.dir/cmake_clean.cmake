file(REMOVE_RECURSE
  "CMakeFiles/cmptool.dir/cmptool.cc.o"
  "CMakeFiles/cmptool.dir/cmptool.cc.o.d"
  "cmptool"
  "cmptool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmptool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
