# Empty compiler generated dependencies file for cmptool.
# This may be replaced when dependencies are built.
