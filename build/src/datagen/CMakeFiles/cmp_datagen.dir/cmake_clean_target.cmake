file(REMOVE_RECURSE
  "libcmp_datagen.a"
)
