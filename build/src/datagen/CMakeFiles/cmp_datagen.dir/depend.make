# Empty dependencies file for cmp_datagen.
# This may be replaced when dependencies are built.
