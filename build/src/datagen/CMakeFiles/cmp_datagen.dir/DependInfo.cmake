
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/agrawal.cc" "src/datagen/CMakeFiles/cmp_datagen.dir/agrawal.cc.o" "gcc" "src/datagen/CMakeFiles/cmp_datagen.dir/agrawal.cc.o.d"
  "/root/repo/src/datagen/loan_example.cc" "src/datagen/CMakeFiles/cmp_datagen.dir/loan_example.cc.o" "gcc" "src/datagen/CMakeFiles/cmp_datagen.dir/loan_example.cc.o.d"
  "/root/repo/src/datagen/statlog.cc" "src/datagen/CMakeFiles/cmp_datagen.dir/statlog.cc.o" "gcc" "src/datagen/CMakeFiles/cmp_datagen.dir/statlog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
