file(REMOVE_RECURSE
  "CMakeFiles/cmp_datagen.dir/agrawal.cc.o"
  "CMakeFiles/cmp_datagen.dir/agrawal.cc.o.d"
  "CMakeFiles/cmp_datagen.dir/loan_example.cc.o"
  "CMakeFiles/cmp_datagen.dir/loan_example.cc.o.d"
  "CMakeFiles/cmp_datagen.dir/statlog.cc.o"
  "CMakeFiles/cmp_datagen.dir/statlog.cc.o.d"
  "libcmp_datagen.a"
  "libcmp_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
