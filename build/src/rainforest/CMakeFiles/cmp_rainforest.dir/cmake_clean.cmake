file(REMOVE_RECURSE
  "CMakeFiles/cmp_rainforest.dir/rainforest.cc.o"
  "CMakeFiles/cmp_rainforest.dir/rainforest.cc.o.d"
  "libcmp_rainforest.a"
  "libcmp_rainforest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_rainforest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
