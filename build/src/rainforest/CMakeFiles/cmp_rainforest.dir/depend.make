# Empty dependencies file for cmp_rainforest.
# This may be replaced when dependencies are built.
