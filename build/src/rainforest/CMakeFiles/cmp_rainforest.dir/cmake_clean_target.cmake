file(REMOVE_RECURSE
  "libcmp_rainforest.a"
)
