file(REMOVE_RECURSE
  "libcmp_sampling.a"
)
