file(REMOVE_RECURSE
  "CMakeFiles/cmp_sampling.dir/windowing.cc.o"
  "CMakeFiles/cmp_sampling.dir/windowing.cc.o.d"
  "libcmp_sampling.a"
  "libcmp_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
