# Empty compiler generated dependencies file for cmp_sampling.
# This may be replaced when dependencies are built.
