# Empty compiler generated dependencies file for cmp_clouds.
# This may be replaced when dependencies are built.
