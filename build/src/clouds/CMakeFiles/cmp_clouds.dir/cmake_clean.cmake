file(REMOVE_RECURSE
  "CMakeFiles/cmp_clouds.dir/clouds.cc.o"
  "CMakeFiles/cmp_clouds.dir/clouds.cc.o.d"
  "libcmp_clouds.a"
  "libcmp_clouds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_clouds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
