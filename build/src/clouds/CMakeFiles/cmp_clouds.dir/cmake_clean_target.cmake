file(REMOVE_RECURSE
  "libcmp_clouds.a"
)
