file(REMOVE_RECURSE
  "CMakeFiles/cmp_io.dir/arff.cc.o"
  "CMakeFiles/cmp_io.dir/arff.cc.o.d"
  "CMakeFiles/cmp_io.dir/csv.cc.o"
  "CMakeFiles/cmp_io.dir/csv.cc.o.d"
  "CMakeFiles/cmp_io.dir/stream.cc.o"
  "CMakeFiles/cmp_io.dir/stream.cc.o.d"
  "CMakeFiles/cmp_io.dir/table_file.cc.o"
  "CMakeFiles/cmp_io.dir/table_file.cc.o.d"
  "libcmp_io.a"
  "libcmp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
