file(REMOVE_RECURSE
  "libcmp_io.a"
)
