
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/arff.cc" "src/io/CMakeFiles/cmp_io.dir/arff.cc.o" "gcc" "src/io/CMakeFiles/cmp_io.dir/arff.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/io/CMakeFiles/cmp_io.dir/csv.cc.o" "gcc" "src/io/CMakeFiles/cmp_io.dir/csv.cc.o.d"
  "/root/repo/src/io/stream.cc" "src/io/CMakeFiles/cmp_io.dir/stream.cc.o" "gcc" "src/io/CMakeFiles/cmp_io.dir/stream.cc.o.d"
  "/root/repo/src/io/table_file.cc" "src/io/CMakeFiles/cmp_io.dir/table_file.cc.o" "gcc" "src/io/CMakeFiles/cmp_io.dir/table_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
