# Empty dependencies file for cmp_io.
# This may be replaced when dependencies are built.
