# Empty dependencies file for cmp_hist.
# This may be replaced when dependencies are built.
