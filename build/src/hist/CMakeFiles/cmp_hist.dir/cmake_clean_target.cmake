file(REMOVE_RECURSE
  "libcmp_hist.a"
)
