file(REMOVE_RECURSE
  "CMakeFiles/cmp_hist.dir/grids.cc.o"
  "CMakeFiles/cmp_hist.dir/grids.cc.o.d"
  "CMakeFiles/cmp_hist.dir/histogram1d.cc.o"
  "CMakeFiles/cmp_hist.dir/histogram1d.cc.o.d"
  "CMakeFiles/cmp_hist.dir/histogram2d.cc.o"
  "CMakeFiles/cmp_hist.dir/histogram2d.cc.o.d"
  "CMakeFiles/cmp_hist.dir/quantiles.cc.o"
  "CMakeFiles/cmp_hist.dir/quantiles.cc.o.d"
  "libcmp_hist.a"
  "libcmp_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
