
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hist/grids.cc" "src/hist/CMakeFiles/cmp_hist.dir/grids.cc.o" "gcc" "src/hist/CMakeFiles/cmp_hist.dir/grids.cc.o.d"
  "/root/repo/src/hist/histogram1d.cc" "src/hist/CMakeFiles/cmp_hist.dir/histogram1d.cc.o" "gcc" "src/hist/CMakeFiles/cmp_hist.dir/histogram1d.cc.o.d"
  "/root/repo/src/hist/histogram2d.cc" "src/hist/CMakeFiles/cmp_hist.dir/histogram2d.cc.o" "gcc" "src/hist/CMakeFiles/cmp_hist.dir/histogram2d.cc.o.d"
  "/root/repo/src/hist/quantiles.cc" "src/hist/CMakeFiles/cmp_hist.dir/quantiles.cc.o" "gcc" "src/hist/CMakeFiles/cmp_hist.dir/quantiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
