
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/dataset.cc" "src/common/CMakeFiles/cmp_common.dir/dataset.cc.o" "gcc" "src/common/CMakeFiles/cmp_common.dir/dataset.cc.o.d"
  "/root/repo/src/common/random.cc" "src/common/CMakeFiles/cmp_common.dir/random.cc.o" "gcc" "src/common/CMakeFiles/cmp_common.dir/random.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/common/CMakeFiles/cmp_common.dir/schema.cc.o" "gcc" "src/common/CMakeFiles/cmp_common.dir/schema.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/common/CMakeFiles/cmp_common.dir/stats.cc.o" "gcc" "src/common/CMakeFiles/cmp_common.dir/stats.cc.o.d"
  "/root/repo/src/common/summary.cc" "src/common/CMakeFiles/cmp_common.dir/summary.cc.o" "gcc" "src/common/CMakeFiles/cmp_common.dir/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
