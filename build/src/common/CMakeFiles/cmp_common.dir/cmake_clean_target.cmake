file(REMOVE_RECURSE
  "libcmp_common.a"
)
