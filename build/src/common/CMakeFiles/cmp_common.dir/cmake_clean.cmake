file(REMOVE_RECURSE
  "CMakeFiles/cmp_common.dir/dataset.cc.o"
  "CMakeFiles/cmp_common.dir/dataset.cc.o.d"
  "CMakeFiles/cmp_common.dir/random.cc.o"
  "CMakeFiles/cmp_common.dir/random.cc.o.d"
  "CMakeFiles/cmp_common.dir/schema.cc.o"
  "CMakeFiles/cmp_common.dir/schema.cc.o.d"
  "CMakeFiles/cmp_common.dir/stats.cc.o"
  "CMakeFiles/cmp_common.dir/stats.cc.o.d"
  "CMakeFiles/cmp_common.dir/summary.cc.o"
  "CMakeFiles/cmp_common.dir/summary.cc.o.d"
  "libcmp_common.a"
  "libcmp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
