# Empty compiler generated dependencies file for cmp_common.
# This may be replaced when dependencies are built.
