file(REMOVE_RECURSE
  "CMakeFiles/cmp_tree.dir/crossval.cc.o"
  "CMakeFiles/cmp_tree.dir/crossval.cc.o.d"
  "CMakeFiles/cmp_tree.dir/evaluate.cc.o"
  "CMakeFiles/cmp_tree.dir/evaluate.cc.o.d"
  "CMakeFiles/cmp_tree.dir/explain.cc.o"
  "CMakeFiles/cmp_tree.dir/explain.cc.o.d"
  "CMakeFiles/cmp_tree.dir/importance.cc.o"
  "CMakeFiles/cmp_tree.dir/importance.cc.o.d"
  "CMakeFiles/cmp_tree.dir/serialize.cc.o"
  "CMakeFiles/cmp_tree.dir/serialize.cc.o.d"
  "CMakeFiles/cmp_tree.dir/split.cc.o"
  "CMakeFiles/cmp_tree.dir/split.cc.o.d"
  "CMakeFiles/cmp_tree.dir/tree.cc.o"
  "CMakeFiles/cmp_tree.dir/tree.cc.o.d"
  "libcmp_tree.a"
  "libcmp_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
