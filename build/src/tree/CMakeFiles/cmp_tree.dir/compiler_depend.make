# Empty compiler generated dependencies file for cmp_tree.
# This may be replaced when dependencies are built.
