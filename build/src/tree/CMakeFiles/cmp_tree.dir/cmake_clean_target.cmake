file(REMOVE_RECURSE
  "libcmp_tree.a"
)
