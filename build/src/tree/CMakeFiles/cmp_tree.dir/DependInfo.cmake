
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/crossval.cc" "src/tree/CMakeFiles/cmp_tree.dir/crossval.cc.o" "gcc" "src/tree/CMakeFiles/cmp_tree.dir/crossval.cc.o.d"
  "/root/repo/src/tree/evaluate.cc" "src/tree/CMakeFiles/cmp_tree.dir/evaluate.cc.o" "gcc" "src/tree/CMakeFiles/cmp_tree.dir/evaluate.cc.o.d"
  "/root/repo/src/tree/explain.cc" "src/tree/CMakeFiles/cmp_tree.dir/explain.cc.o" "gcc" "src/tree/CMakeFiles/cmp_tree.dir/explain.cc.o.d"
  "/root/repo/src/tree/importance.cc" "src/tree/CMakeFiles/cmp_tree.dir/importance.cc.o" "gcc" "src/tree/CMakeFiles/cmp_tree.dir/importance.cc.o.d"
  "/root/repo/src/tree/serialize.cc" "src/tree/CMakeFiles/cmp_tree.dir/serialize.cc.o" "gcc" "src/tree/CMakeFiles/cmp_tree.dir/serialize.cc.o.d"
  "/root/repo/src/tree/split.cc" "src/tree/CMakeFiles/cmp_tree.dir/split.cc.o" "gcc" "src/tree/CMakeFiles/cmp_tree.dir/split.cc.o.d"
  "/root/repo/src/tree/tree.cc" "src/tree/CMakeFiles/cmp_tree.dir/tree.cc.o" "gcc" "src/tree/CMakeFiles/cmp_tree.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gini/CMakeFiles/cmp_gini.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/cmp_hist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
