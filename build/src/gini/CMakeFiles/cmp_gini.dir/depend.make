# Empty dependencies file for cmp_gini.
# This may be replaced when dependencies are built.
