
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gini/categorical.cc" "src/gini/CMakeFiles/cmp_gini.dir/categorical.cc.o" "gcc" "src/gini/CMakeFiles/cmp_gini.dir/categorical.cc.o.d"
  "/root/repo/src/gini/estimator.cc" "src/gini/CMakeFiles/cmp_gini.dir/estimator.cc.o" "gcc" "src/gini/CMakeFiles/cmp_gini.dir/estimator.cc.o.d"
  "/root/repo/src/gini/gini.cc" "src/gini/CMakeFiles/cmp_gini.dir/gini.cc.o" "gcc" "src/gini/CMakeFiles/cmp_gini.dir/gini.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/cmp_hist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
