file(REMOVE_RECURSE
  "libcmp_gini.a"
)
