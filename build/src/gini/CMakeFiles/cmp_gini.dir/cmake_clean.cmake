file(REMOVE_RECURSE
  "CMakeFiles/cmp_gini.dir/categorical.cc.o"
  "CMakeFiles/cmp_gini.dir/categorical.cc.o.d"
  "CMakeFiles/cmp_gini.dir/estimator.cc.o"
  "CMakeFiles/cmp_gini.dir/estimator.cc.o.d"
  "CMakeFiles/cmp_gini.dir/gini.cc.o"
  "CMakeFiles/cmp_gini.dir/gini.cc.o.d"
  "libcmp_gini.a"
  "libcmp_gini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_gini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
