file(REMOVE_RECURSE
  "CMakeFiles/cmp_core.dir/bundle.cc.o"
  "CMakeFiles/cmp_core.dir/bundle.cc.o.d"
  "CMakeFiles/cmp_core.dir/cmp.cc.o"
  "CMakeFiles/cmp_core.dir/cmp.cc.o.d"
  "CMakeFiles/cmp_core.dir/linear.cc.o"
  "CMakeFiles/cmp_core.dir/linear.cc.o.d"
  "CMakeFiles/cmp_core.dir/pairs.cc.o"
  "CMakeFiles/cmp_core.dir/pairs.cc.o.d"
  "libcmp_core.a"
  "libcmp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
