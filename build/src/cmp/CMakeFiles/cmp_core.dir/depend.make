# Empty dependencies file for cmp_core.
# This may be replaced when dependencies are built.
