file(REMOVE_RECURSE
  "libcmp_core.a"
)
