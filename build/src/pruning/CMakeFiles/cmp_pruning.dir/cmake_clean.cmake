file(REMOVE_RECURSE
  "CMakeFiles/cmp_pruning.dir/mdl.cc.o"
  "CMakeFiles/cmp_pruning.dir/mdl.cc.o.d"
  "libcmp_pruning.a"
  "libcmp_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
