# Empty dependencies file for cmp_pruning.
# This may be replaced when dependencies are built.
