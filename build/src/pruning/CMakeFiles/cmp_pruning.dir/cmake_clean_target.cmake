file(REMOVE_RECURSE
  "libcmp_pruning.a"
)
