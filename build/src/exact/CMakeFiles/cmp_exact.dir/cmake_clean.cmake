file(REMOVE_RECURSE
  "CMakeFiles/cmp_exact.dir/exact.cc.o"
  "CMakeFiles/cmp_exact.dir/exact.cc.o.d"
  "libcmp_exact.a"
  "libcmp_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
