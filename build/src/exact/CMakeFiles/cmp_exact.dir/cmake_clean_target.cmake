file(REMOVE_RECURSE
  "libcmp_exact.a"
)
