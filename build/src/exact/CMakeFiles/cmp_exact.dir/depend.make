# Empty dependencies file for cmp_exact.
# This may be replaced when dependencies are built.
