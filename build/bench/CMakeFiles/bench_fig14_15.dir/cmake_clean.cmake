file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_15.dir/bench_fig14_15.cc.o"
  "CMakeFiles/bench_fig14_15.dir/bench_fig14_15.cc.o.d"
  "bench_fig14_15"
  "bench_fig14_15.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
