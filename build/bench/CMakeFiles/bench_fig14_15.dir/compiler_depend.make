# Empty compiler generated dependencies file for bench_fig14_15.
# This may be replaced when dependencies are built.
