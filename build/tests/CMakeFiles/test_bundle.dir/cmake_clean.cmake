file(REMOVE_RECURSE
  "CMakeFiles/test_bundle.dir/test_bundle.cc.o"
  "CMakeFiles/test_bundle.dir/test_bundle.cc.o.d"
  "test_bundle"
  "test_bundle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bundle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
