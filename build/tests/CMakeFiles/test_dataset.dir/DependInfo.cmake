
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dataset.cc" "tests/CMakeFiles/test_dataset.dir/test_dataset.cc.o" "gcc" "tests/CMakeFiles/test_dataset.dir/test_dataset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clouds/CMakeFiles/cmp_clouds.dir/DependInfo.cmake"
  "/root/repo/build/src/cmp/CMakeFiles/cmp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/cmp_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/exact/CMakeFiles/cmp_exact.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/cmp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/rainforest/CMakeFiles/cmp_rainforest.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/cmp_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/sliq/CMakeFiles/cmp_sliq.dir/DependInfo.cmake"
  "/root/repo/build/src/sprint/CMakeFiles/cmp_sprint.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/cmp_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/pruning/CMakeFiles/cmp_pruning.dir/DependInfo.cmake"
  "/root/repo/build/src/gini/CMakeFiles/cmp_gini.dir/DependInfo.cmake"
  "/root/repo/build/src/hist/CMakeFiles/cmp_hist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
