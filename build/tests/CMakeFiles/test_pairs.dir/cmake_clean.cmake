file(REMOVE_RECURSE
  "CMakeFiles/test_pairs.dir/test_pairs.cc.o"
  "CMakeFiles/test_pairs.dir/test_pairs.cc.o.d"
  "test_pairs"
  "test_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
