# Empty dependencies file for test_pairs.
# This may be replaced when dependencies are built.
