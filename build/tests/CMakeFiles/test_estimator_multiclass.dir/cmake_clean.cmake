file(REMOVE_RECURSE
  "CMakeFiles/test_estimator_multiclass.dir/test_estimator_multiclass.cc.o"
  "CMakeFiles/test_estimator_multiclass.dir/test_estimator_multiclass.cc.o.d"
  "test_estimator_multiclass"
  "test_estimator_multiclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_estimator_multiclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
