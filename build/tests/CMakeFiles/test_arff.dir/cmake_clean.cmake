file(REMOVE_RECURSE
  "CMakeFiles/test_arff.dir/test_arff.cc.o"
  "CMakeFiles/test_arff.dir/test_arff.cc.o.d"
  "test_arff"
  "test_arff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
