file(REMOVE_RECURSE
  "CMakeFiles/test_hist.dir/test_hist.cc.o"
  "CMakeFiles/test_hist.dir/test_hist.cc.o.d"
  "test_hist"
  "test_hist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
