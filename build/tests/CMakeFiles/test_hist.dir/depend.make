# Empty dependencies file for test_hist.
# This may be replaced when dependencies are built.
