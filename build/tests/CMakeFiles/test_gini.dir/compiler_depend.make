# Empty compiler generated dependencies file for test_gini.
# This may be replaced when dependencies are built.
