file(REMOVE_RECURSE
  "CMakeFiles/test_gini.dir/test_gini.cc.o"
  "CMakeFiles/test_gini.dir/test_gini.cc.o.d"
  "test_gini"
  "test_gini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
