file(REMOVE_RECURSE
  "CMakeFiles/test_cmp_internals.dir/test_cmp_internals.cc.o"
  "CMakeFiles/test_cmp_internals.dir/test_cmp_internals.cc.o.d"
  "test_cmp_internals"
  "test_cmp_internals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmp_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
