# Empty dependencies file for test_cmp_internals.
# This may be replaced when dependencies are built.
