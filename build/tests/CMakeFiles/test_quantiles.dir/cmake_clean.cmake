file(REMOVE_RECURSE
  "CMakeFiles/test_quantiles.dir/test_quantiles.cc.o"
  "CMakeFiles/test_quantiles.dir/test_quantiles.cc.o.d"
  "test_quantiles"
  "test_quantiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
