file(REMOVE_RECURSE
  "CMakeFiles/test_clouds.dir/test_clouds.cc.o"
  "CMakeFiles/test_clouds.dir/test_clouds.cc.o.d"
  "test_clouds"
  "test_clouds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clouds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
