# Empty dependencies file for test_clouds.
# This may be replaced when dependencies are built.
