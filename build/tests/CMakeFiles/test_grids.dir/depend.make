# Empty dependencies file for test_grids.
# This may be replaced when dependencies are built.
