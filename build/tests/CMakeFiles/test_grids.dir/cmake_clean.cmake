file(REMOVE_RECURSE
  "CMakeFiles/test_grids.dir/test_grids.cc.o"
  "CMakeFiles/test_grids.dir/test_grids.cc.o.d"
  "test_grids"
  "test_grids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
