# Empty compiler generated dependencies file for test_cmptool.
# This may be replaced when dependencies are built.
