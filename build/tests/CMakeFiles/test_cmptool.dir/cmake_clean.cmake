file(REMOVE_RECURSE
  "CMakeFiles/test_cmptool.dir/test_cmptool.cc.o"
  "CMakeFiles/test_cmptool.dir/test_cmptool.cc.o.d"
  "test_cmptool"
  "test_cmptool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmptool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
