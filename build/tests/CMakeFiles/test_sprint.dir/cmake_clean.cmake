file(REMOVE_RECURSE
  "CMakeFiles/test_sprint.dir/test_sprint.cc.o"
  "CMakeFiles/test_sprint.dir/test_sprint.cc.o.d"
  "test_sprint"
  "test_sprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
