# Empty compiler generated dependencies file for test_sprint.
# This may be replaced when dependencies are built.
