file(REMOVE_RECURSE
  "CMakeFiles/test_rainforest.dir/test_rainforest.cc.o"
  "CMakeFiles/test_rainforest.dir/test_rainforest.cc.o.d"
  "test_rainforest"
  "test_rainforest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rainforest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
