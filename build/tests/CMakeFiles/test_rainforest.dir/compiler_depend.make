# Empty compiler generated dependencies file for test_rainforest.
# This may be replaced when dependencies are built.
