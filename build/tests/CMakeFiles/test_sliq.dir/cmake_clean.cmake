file(REMOVE_RECURSE
  "CMakeFiles/test_sliq.dir/test_sliq.cc.o"
  "CMakeFiles/test_sliq.dir/test_sliq.cc.o.d"
  "test_sliq"
  "test_sliq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sliq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
