# Empty compiler generated dependencies file for test_sliq.
# This may be replaced when dependencies are built.
