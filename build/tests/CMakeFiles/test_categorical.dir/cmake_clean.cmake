file(REMOVE_RECURSE
  "CMakeFiles/test_categorical.dir/test_categorical.cc.o"
  "CMakeFiles/test_categorical.dir/test_categorical.cc.o.d"
  "test_categorical"
  "test_categorical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_categorical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
