file(REMOVE_RECURSE
  "CMakeFiles/test_exactness.dir/test_exactness.cc.o"
  "CMakeFiles/test_exactness.dir/test_exactness.cc.o.d"
  "test_exactness"
  "test_exactness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exactness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
