# Empty compiler generated dependencies file for test_exactness.
# This may be replaced when dependencies are built.
