# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_loan_approval "/root/repo/build/examples/loan_approval")
set_tests_properties(example_loan_approval PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_classifiers "/root/repo/build/examples/compare_classifiers" "30000" "2")
set_tests_properties(example_compare_classifiers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_out_of_core "/root/repo/build/examples/out_of_core")
set_tests_properties(example_out_of_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_relationship_mining "/root/repo/build/examples/relationship_mining")
set_tests_properties(example_relationship_mining PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;35;add_test;/root/repo/examples/CMakeLists.txt;0;")
