file(REMOVE_RECURSE
  "CMakeFiles/relationship_mining.dir/relationship_mining.cpp.o"
  "CMakeFiles/relationship_mining.dir/relationship_mining.cpp.o.d"
  "relationship_mining"
  "relationship_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relationship_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
