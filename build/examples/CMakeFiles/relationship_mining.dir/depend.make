# Empty dependencies file for relationship_mining.
# This may be replaced when dependencies are built.
