file(REMOVE_RECURSE
  "CMakeFiles/compare_classifiers.dir/compare_classifiers.cpp.o"
  "CMakeFiles/compare_classifiers.dir/compare_classifiers.cpp.o.d"
  "compare_classifiers"
  "compare_classifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
