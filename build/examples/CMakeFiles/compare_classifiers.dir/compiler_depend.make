# Empty compiler generated dependencies file for compare_classifiers.
# This may be replaced when dependencies are built.
