// Demonstrates out-of-core training: a training set is generated, saved
// to this library's binary table format, and then CMP-S is trained twice
// — once fully in memory, once streaming the table in small blocks with
// async prefetch — and the two serialized trees are compared byte for
// byte. The streamed build never holds more than two block buffers of
// records (plus the algorithm's own side buffers), and its bytes_read
// counter reports real file I/O instead of the disk simulation.

#include <cstdio>
#include <iostream>

#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "io/block_source.h"
#include "io/table_file.h"
#include "tree/serialize.h"

int main() {
  const std::string table_path = "/tmp/cmp_out_of_core.cmpt";

  cmp::AgrawalOptions gen;
  gen.function = cmp::AgrawalFunction::kF7;
  gen.num_records = 20000;
  gen.seed = 23;
  const cmp::Dataset ds = cmp::GenerateAgrawal(gen);

  if (!cmp::SaveTableFile(ds, table_path)) {
    std::cerr << "failed to save table\n";
    return 1;
  }
  cmp::Schema schema;
  int64_t n = 0;
  cmp::ReadTableHeader(table_path, &schema, &n);
  std::cout << "table: " << n << " records, " << schema.num_attrs()
            << " attributes, " << ds.TotalBytes() / (1024.0 * 1024.0)
            << " MB on disk\n";

  cmp::CmpOptions options = cmp::CmpSOptions();
  options.base.num_threads = 2;

  // Reference: classic in-memory build.
  cmp::CmpBuilder builder(options);
  const cmp::BuildResult in_memory = builder.Build(ds);
  std::cout << "in-memory:  " << in_memory.stats.ToString() << "\n";

  // Out-of-core: the same table streamed in 1500-record blocks. The
  // source double-buffers — while the builder accumulates block k, a
  // pool task is already reading block k+1.
  auto source = cmp::TableBlockSource::Open(table_path,
                                            /*block_records=*/1500);
  if (source == nullptr) {
    std::cerr << "failed to open block source\n";
    return 1;
  }
  const cmp::BuildResult streamed = builder.BuildStreamed(*source);
  std::cout << "streamed:   " << streamed.stats.ToString() << "\n";
  std::cout << "resident block buffers: "
            << source->resident_bytes() / 1024.0 << " KB for "
            << n * schema.RecordBytes() / 1024.0 << " KB of records\n";

  // The streamed build's contract: byte-identical trees, any block size.
  if (cmp::SerializeTree(in_memory.tree) !=
      cmp::SerializeTree(streamed.tree)) {
    std::cerr << "FAIL: streamed tree differs from in-memory tree\n";
    return 1;
  }
  std::cout << "streamed tree is byte-identical to the in-memory tree ("
            << streamed.tree.num_nodes() << " nodes)\n";

  std::remove(table_path.c_str());
  return 0;
}
