// Demonstrates the storage substrate: a training set is generated, saved
// to this library's binary table format, re-loaded, round-tripped through
// CSV, and used to train CMP-S with its disk-cost counters printed — the
// same counters the benchmark harness converts into the paper's figures.

#include <cstdio>
#include <iostream>

#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "io/csv.h"
#include "io/stream.h"
#include "io/table_file.h"
#include "tree/serialize.h"

int main() {
  const std::string table_path = "/tmp/cmp_out_of_core.cmpt";
  const std::string csv_path = "/tmp/cmp_out_of_core.csv";
  const std::string tree_path = "/tmp/cmp_out_of_core.tree";

  cmp::AgrawalOptions gen;
  gen.function = cmp::AgrawalFunction::kF7;
  gen.num_records = 20000;
  gen.seed = 23;
  const cmp::Dataset ds = cmp::GenerateAgrawal(gen);

  if (!cmp::SaveTableFile(ds, table_path)) {
    std::cerr << "failed to save table\n";
    return 1;
  }
  cmp::Schema schema;
  int64_t n = 0;
  cmp::ReadTableHeader(table_path, &schema, &n);
  std::cout << "table: " << n << " records, " << schema.num_attrs()
            << " attributes, " << schema.num_classes() << " classes\n";

  // Stream the table in bounded-memory blocks — the access pattern the
  // paper's algorithms are designed around — and aggregate class counts
  // without ever holding the full table.
  {
    auto scanner = cmp::TableScanner::Open(table_path, /*block_records=*/2048);
    if (scanner == nullptr) {
      std::cerr << "failed to open scanner\n";
      return 1;
    }
    std::vector<int64_t> counts(schema.num_classes(), 0);
    cmp::Dataset block;
    int blocks = 0;
    while (scanner->NextBlock(&block)) {
      for (cmp::RecordId i = 0; i < block.num_records(); ++i) {
        counts[block.label(i)]++;
      }
      ++blocks;
    }
    std::cout << "streamed " << blocks << " blocks; class counts:";
    for (cmp::ClassId c = 0; c < schema.num_classes(); ++c) {
      std::cout << ' ' << schema.class_name(c) << '=' << counts[c];
    }
    std::cout << "\n";
  }

  cmp::Dataset loaded;
  if (!cmp::LoadTableFile(table_path, &loaded)) {
    std::cerr << "failed to load table\n";
    return 1;
  }

  if (!cmp::SaveCsv(loaded, csv_path)) {
    std::cerr << "failed to save csv\n";
    return 1;
  }
  cmp::Dataset from_csv;
  if (!cmp::LoadCsv(csv_path, loaded.schema(), &from_csv)) {
    std::cerr << "failed to load csv\n";
    return 1;
  }
  std::cout << "csv round-trip: " << from_csv.num_records()
            << " records\n";

  cmp::CmpBuilder builder(cmp::CmpSOptions());
  const cmp::BuildResult result = builder.Build(loaded);
  std::cout << "CMP-S cost counters: " << result.stats.ToString() << "\n";

  if (!cmp::SaveTree(result.tree, tree_path)) {
    std::cerr << "failed to save tree\n";
    return 1;
  }
  cmp::DecisionTree tree;
  if (!cmp::LoadTree(tree_path, &tree)) {
    std::cerr << "failed to load tree\n";
    return 1;
  }
  std::cout << "tree round-trip: " << tree.num_nodes() << " nodes\n";

  std::remove(table_path.c_str());
  std::remove(csv_path.c_str());
  std::remove(tree_path.c_str());
  return 0;
}
