// The paper's motivating example (Sections 1 and 2.3): when the concept
// is linearly correlated — Function f:
//     approve  iff  (age >= 40) && (salary + commission >= 100,000)
// — univariate builders like SPRINT grow a staircase of axis-parallel
// splits (Figure 9), while CMP's linear-combination splits recover a
// two-level tree close to Figure 13.
//
// This example trains SPRINT and CMP on the same Function-f data and
// prints both trees and their sizes side by side.

#include <iostream>

#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "sprint/sprint.h"
#include "tree/evaluate.h"

int main() {
  cmp::AgrawalOptions gen;
  gen.function = cmp::AgrawalFunction::kFunctionF;
  gen.num_records = 60000;
  gen.seed = 11;
  const cmp::Dataset data = cmp::GenerateAgrawal(gen);

  std::vector<cmp::RecordId> train_ids;
  std::vector<cmp::RecordId> test_ids;
  cmp::TrainTestSplit(data.num_records(), 0.25, /*seed=*/3, &train_ids,
                      &test_ids);
  const cmp::Dataset train = data.Subset(train_ids);
  const cmp::Dataset test = data.Subset(test_ids);

  cmp::SprintBuilder sprint;
  const cmp::BuildResult sprint_result = sprint.Build(train);

  cmp::CmpBuilder cmp_full(cmp::CmpFullOptions());
  const cmp::BuildResult cmp_result = cmp_full.Build(train);

  const cmp::Evaluation sprint_eval = cmp::Evaluate(sprint_result.tree, test);
  const cmp::Evaluation cmp_eval = cmp::Evaluate(cmp_result.tree, test);

  std::cout << "=== SPRINT (univariate splits only) ===\n"
            << "nodes: " << sprint_result.tree.num_nodes()
            << "  leaves: " << sprint_result.tree.NumLeaves()
            << "  depth: " << sprint_result.tree.Depth()
            << "  scans: " << sprint_result.stats.dataset_scans
            << "  accuracy: " << sprint_eval.Accuracy() << "\n\n";

  std::cout << "=== CMP (with linear-combination splits) ===\n"
            << "nodes: " << cmp_result.tree.num_nodes()
            << "  leaves: " << cmp_result.tree.NumLeaves()
            << "  depth: " << cmp_result.tree.Depth()
            << "  scans: " << cmp_result.stats.dataset_scans
            << "  accuracy: " << cmp_eval.Accuracy() << "\n\n";

  std::cout << "CMP tree (compare with the paper's Figure 13):\n"
            << cmp_result.tree.ToString() << "\n";

  if (sprint_result.tree.num_nodes() <= 15) {
    std::cout << "SPRINT tree:\n" << sprint_result.tree.ToString();
  } else {
    std::cout << "SPRINT tree has " << sprint_result.tree.num_nodes()
              << " nodes (the staircase of Figure 9) - not printed.\n";
  }
  return 0;
}
