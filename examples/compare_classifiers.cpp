// Runs all five builders (CMP-S, CMP-B, CMP, SPRINT, CLOUDS, RainForest)
// on the same workload and prints a comparison table: wall time,
// simulated disk time, dataset scans, memory, tree size, test accuracy.
//
// Usage: compare_classifiers [records] [function]
//   records: training records (default 100000)
//   function: 1..10 or 0 for the paper's Function f (default 2)

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "clouds/clouds.h"
#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "rainforest/rainforest.h"
#include "sliq/sliq.h"
#include "sprint/sprint.h"
#include "tree/evaluate.h"

int main(int argc, char** argv) {
  const int64_t records = argc > 1 ? std::atoll(argv[1]) : 100000;
  const int fn = argc > 2 ? std::atoi(argv[2]) : 2;

  cmp::AgrawalOptions gen;
  gen.function = fn == 0 ? cmp::AgrawalFunction::kFunctionF
                         : static_cast<cmp::AgrawalFunction>(fn);
  gen.num_records = records;
  gen.seed = 19;
  const cmp::Dataset data = cmp::GenerateAgrawal(gen);

  std::vector<cmp::RecordId> train_ids;
  std::vector<cmp::RecordId> test_ids;
  cmp::TrainTestSplit(data.num_records(), 0.2, /*seed=*/5, &train_ids,
                      &test_ids);
  const cmp::Dataset train = data.Subset(train_ids);
  const cmp::Dataset test = data.Subset(test_ids);

  std::vector<std::unique_ptr<cmp::TreeBuilder>> builders;
  builders.push_back(
      std::make_unique<cmp::CmpBuilder>(cmp::CmpSOptions()));
  builders.push_back(
      std::make_unique<cmp::CmpBuilder>(cmp::CmpBOptions()));
  builders.push_back(
      std::make_unique<cmp::CmpBuilder>(cmp::CmpFullOptions()));
  builders.push_back(std::make_unique<cmp::SprintBuilder>());
  builders.push_back(std::make_unique<cmp::SliqBuilder>());
  builders.push_back(std::make_unique<cmp::CloudsBuilder>());
  builders.push_back(std::make_unique<cmp::RainForestBuilder>());

  const cmp::DiskModel disk;
  std::cout << "training on " << train.num_records()
            << " records, testing on " << test.num_records() << "\n\n";
  std::cout << std::left << std::setw(12) << "algorithm" << std::right
            << std::setw(10) << "wall(s)" << std::setw(10) << "sim(s)"
            << std::setw(8) << "scans" << std::setw(10) << "mem(MB)"
            << std::setw(8) << "nodes" << std::setw(8) << "depth"
            << std::setw(10) << "accuracy" << "\n";
  for (auto& builder : builders) {
    const cmp::BuildResult result = builder->Build(train);
    const cmp::Evaluation eval = cmp::Evaluate(result.tree, test);
    std::cout << std::left << std::setw(12) << builder->name() << std::right
              << std::fixed << std::setprecision(3) << std::setw(10)
              << result.stats.wall_seconds << std::setw(10)
              << result.stats.SimulatedSeconds(disk) << std::setw(8)
              << result.stats.dataset_scans << std::setprecision(2)
              << std::setw(10)
              << result.stats.peak_memory_bytes / (1024.0 * 1024.0)
              << std::setw(8) << result.tree.num_nodes() << std::setw(8)
              << result.tree.Depth() << std::setprecision(4)
              << std::setw(10) << eval.Accuracy() << "\n";
  }
  return 0;
}
