// Quickstart: generate a synthetic training set (Agrawal Function 2),
// train the full CMP classifier, and evaluate it on held-out data.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "tree/evaluate.h"

int main() {
  // 1. Generate 50,000 labeled records of the paper's Function 2 workload
  //    (loan applicants grouped by age/salary bands).
  cmp::AgrawalOptions gen;
  gen.function = cmp::AgrawalFunction::kF2;
  gen.num_records = 50000;
  gen.seed = 7;
  const cmp::Dataset data = cmp::GenerateAgrawal(gen);

  // 2. Hold out 20% for testing.
  std::vector<cmp::RecordId> train_ids;
  std::vector<cmp::RecordId> test_ids;
  cmp::TrainTestSplit(data.num_records(), 0.2, /*seed=*/1, &train_ids,
                      &test_ids);
  const cmp::Dataset train = data.Subset(train_ids);
  const cmp::Dataset test = data.Subset(test_ids);

  // 3. Train the full CMP classifier (bivariate histograms + prediction +
  //    linear-combination splits).
  cmp::CmpBuilder builder(cmp::CmpFullOptions());
  const cmp::BuildResult result = builder.Build(train);

  std::cout << "built a tree with " << result.tree.num_nodes() << " nodes, "
            << result.tree.NumLeaves() << " leaves, depth "
            << result.tree.Depth() << "\n";
  std::cout << "cost: " << result.stats.ToString() << "\n\n";

  // 4. Evaluate on the held-out records.
  const cmp::Evaluation eval = cmp::Evaluate(result.tree, test);
  std::cout << eval.ToString(test.schema()) << "\n";

  // 5. Print the first few levels of the tree.
  std::cout << "tree:\n" << result.tree.ToString();
  return 0;
}
