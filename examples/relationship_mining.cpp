// Section 2.3 of the paper argues CMP's linear-combination splits can
// "uncover complex relationships unknown to previous algorithms". This
// example uses the classifier as a relationship-mining tool on the
// Agrawal disposable-income workload (Function 7):
//     group A  iff  2/3*(salary+commission) - loan/5 - 20000 > 0
// Univariate trees approximate the boundary with dozens of axis-parallel
// splits; the linear splits CMP commits expose the salary/commission and
// income/loan trade-offs directly, and the decision-path explanation
// shows which inequalities an individual applicant hit.

#include <iostream>

#include "cmp/cmp.h"
#include "cmp/pairs.h"
#include "datagen/agrawal.h"
#include "tree/crossval.h"
#include "tree/explain.h"
#include "tree/evaluate.h"

int main() {
  cmp::AgrawalOptions gen;
  gen.function = cmp::AgrawalFunction::kF7;
  gen.num_records = 60000;
  gen.seed = 29;
  const cmp::Dataset data = cmp::GenerateAgrawal(gen);

  // Encourage linear splits: the disposable-income boundary involves
  // three attributes, so pairwise lines are approximations; lower the
  // adoption margin to surface them.
  cmp::CmpOptions options = cmp::CmpFullOptions();
  options.linear_gain = 0.1;
  cmp::CmpBuilder builder(options);
  const cmp::BuildResult result = builder.Build(data);

  // First, mine pairwise linear structure directly (the all-pairs
  // extension of DESIGN.md: one scan, N(N-1)/2 coarse matrices).
  const std::vector<cmp::PairRelation> relations =
      cmp::DiscoverLinearRelations(data);
  std::cout << "pairwise linear relations (line gini vs dataset gini "
            << (relations.empty() ? 0.0 : relations.front().base_gini)
            << "):\n";
  for (const cmp::PairRelation& rel : relations) {
    std::cout << "  " << rel.split.ToString(data.schema())
              << "   gini=" << rel.gini << "\n";
  }
  std::cout << "\n";

  std::cout << "tree (" << result.tree.num_nodes() << " nodes):\n";
  // Print the linear splits the tree discovered.
  int linear_splits = 0;
  for (cmp::NodeId id = 0; id < result.tree.num_nodes(); ++id) {
    const cmp::TreeNode& n = result.tree.node(id);
    if (!n.is_leaf && n.split.kind == cmp::Split::Kind::kLinear) {
      std::cout << "  linear split at node " << id << ": "
                << n.split.ToString(data.schema()) << "\n";
      ++linear_splits;
    }
  }
  std::cout << linear_splits << " linear splits discovered\n\n";

  // Explain one applicant's classification end to end.
  const cmp::RecordId applicant = 7;
  const cmp::Explanation why = cmp::Explain(result.tree, data, applicant);
  std::cout << "why applicant " << applicant << " is classified '"
            << data.schema().class_name(why.predicted) << "':\n"
            << why.ToString(data.schema()) << "\n";

  // 5-fold cross-validation for an honest accuracy estimate.
  cmp::CmpBuilder cv_builder(options);
  const cmp::CrossValResult cv = cmp::CrossValidate(&cv_builder, data, 5);
  std::cout << "5-fold accuracy: " << cv.MeanAccuracy() << " +/- "
            << cv.StdDevAccuracy() << "\n";

  // Graphviz export for the curious.
  std::cout << "\n(render with: ./relationship_mining | ... | dot -Tsvg)\n";
  return 0;
}
