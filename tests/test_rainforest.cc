#include "rainforest/rainforest.h"

#include <gtest/gtest.h>

#include "datagen/agrawal.h"
#include "exact/exact.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

RainForestOptions NoSwitchOptions() {
  RainForestOptions o;
  // Shrink the AVC buffer so RF-Hybrid cannot pull the whole dataset
  // into memory and must actually aggregate AVC-groups per level.
  o.avc_buffer_entries = 200000;
  o.base.in_memory_threshold = 0;
  return o;
}

TEST(RainForest, HighAccuracyOnF2) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 20000;
  gen.seed = 121;
  const Dataset data = GenerateAgrawal(gen);
  std::vector<RecordId> train_ids;
  std::vector<RecordId> test_ids;
  TrainTestSplit(data.num_records(), 0.25, 8, &train_ids, &test_ids);
  const Dataset train = data.Subset(train_ids);
  const Dataset test = data.Subset(test_ids);

  RainForestBuilder builder;
  const BuildResult result = builder.Build(train);
  EXPECT_GT(Evaluate(result.tree, test).Accuracy(), 0.97);
}

TEST(RainForest, AvcSplitsMatchExactBuilder) {
  // AVC-groups preserve every distinct value, so RainForest's splits are
  // exact: the root split must equal the exact builder's.
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF7;
  gen.num_records = 5000;
  gen.seed = 123;
  const Dataset train = GenerateAgrawal(gen);

  RainForestBuilder rf(NoSwitchOptions());
  const BuildResult rres = rf.Build(train);
  ExactBuilder exact;
  const BuildResult eres = exact.Build(train);

  ASSERT_FALSE(rres.tree.node(0).is_leaf);
  ASSERT_FALSE(eres.tree.node(0).is_leaf);
  EXPECT_EQ(rres.tree.node(0).split.attr, eres.tree.node(0).split.attr);
  if (rres.tree.node(0).split.kind == Split::Kind::kNumeric) {
    EXPECT_DOUBLE_EQ(rres.tree.node(0).split.threshold,
                     eres.tree.node(0).split.threshold);
  }
}

TEST(RainForest, FixedBufferDominatesMemory) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 10000;
  gen.seed = 125;
  const Dataset train = GenerateAgrawal(gen);
  RainForestBuilder builder;  // default 2.5M-entry buffer
  const BuildResult result = builder.Build(train);
  // 2.5M entries * 4 bytes * 2 classes = 20 MB (the paper's Figure 19).
  EXPECT_EQ(result.stats.peak_memory_bytes, 2500000ll * 4 * 2);
}

TEST(RainForest, SmallBufferForcesMultipleBatches) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF7;
  gen.num_records = 30000;
  gen.seed = 127;
  const Dataset train = GenerateAgrawal(gen);

  RainForestOptions small = NoSwitchOptions();
  small.avc_buffer_entries = 50000;  // < records * attrs at lower levels
  RainForestBuilder constrained(small);
  const BuildResult cres = constrained.Build(train);

  RainForestOptions big;
  big.base.in_memory_threshold = 0;
  big.avc_buffer_entries = 100000000;
  RainForestBuilder roomy(big);
  const BuildResult rres = roomy.Build(train);

  EXPECT_GT(cres.stats.dataset_scans, rres.stats.dataset_scans);
}

TEST(RainForest, FewScansWithRoomyBuffer) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 20000;
  gen.seed = 129;
  const Dataset train = GenerateAgrawal(gen);
  RainForestBuilder builder;  // defaults: whole dataset fits the buffer
  const BuildResult result = builder.Build(train);
  EXPECT_LE(result.stats.dataset_scans, 2);
}

TEST(RainForest, EmptyDataset) {
  const Dataset empty(AgrawalSchema());
  RainForestBuilder builder;
  const BuildResult result = builder.Build(empty);
  EXPECT_EQ(result.tree.num_nodes(), 1);
  EXPECT_TRUE(result.tree.node(0).is_leaf);
}

}  // namespace
}  // namespace cmp
