#include "io/arff.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "datagen/agrawal.h"
#include "exact/exact.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::trunc);
  os << content;
}

TEST(Arff, ParsesMixedSchema) {
  const std::string path = TempPath("mixed.arff");
  WriteFile(path,
            "% a comment\n"
            "@relation test\n"
            "@attribute x numeric\n"
            "@attribute color {red, green, blue}\n"
            "@attribute y real\n"
            "@attribute class {no, yes}\n"
            "@data\n"
            "1.5, red, -2.0, no\n"
            "\n"
            "% another comment\n"
            "3.0, blue, 4.5, yes\n");
  Dataset ds;
  ASSERT_TRUE(LoadArff(path, &ds));
  EXPECT_EQ(ds.num_records(), 2);
  EXPECT_EQ(ds.num_attrs(), 3);
  EXPECT_EQ(ds.num_classes(), 2);
  EXPECT_TRUE(ds.schema().is_numeric(0));
  EXPECT_FALSE(ds.schema().is_numeric(1));
  EXPECT_EQ(ds.schema().attr(1).cardinality, 3);
  EXPECT_DOUBLE_EQ(ds.numeric(0, 0), 1.5);
  EXPECT_EQ(ds.categorical(1, 0), 0);  // red
  EXPECT_EQ(ds.categorical(1, 1), 2);  // blue
  EXPECT_EQ(ds.label(0), 0);
  EXPECT_EQ(ds.label(1), 1);
  std::remove(path.c_str());
}

TEST(Arff, QuotedNamesAndValues) {
  const std::string path = TempPath("quoted.arff");
  WriteFile(path,
            "@relation q\n"
            "@attribute 'my attr' numeric\n"
            "@attribute class {'class a','class b'}\n"
            "@data\n"
            "1.0,'class b'\n");
  Dataset ds;
  ASSERT_TRUE(LoadArff(path, &ds));
  EXPECT_EQ(ds.schema().attr(0).name, "my attr");
  EXPECT_EQ(ds.label(0), 1);
  std::remove(path.c_str());
}

TEST(Arff, RejectsMalformedInputs) {
  Dataset ds;
  const std::string path = TempPath("bad.arff");

  EXPECT_FALSE(LoadArff(TempPath("missing.arff"), &ds));

  // Numeric class attribute.
  WriteFile(path,
            "@relation r\n@attribute x numeric\n@attribute class numeric\n"
            "@data\n1,2\n");
  EXPECT_FALSE(LoadArff(path, &ds));

  // Wrong field count.
  WriteFile(path,
            "@relation r\n@attribute x numeric\n@attribute class {a,b}\n"
            "@data\n1,2,a\n");
  EXPECT_FALSE(LoadArff(path, &ds));

  // Unknown nominal value.
  WriteFile(path,
            "@relation r\n@attribute x numeric\n@attribute class {a,b}\n"
            "@data\n1,zebra\n");
  EXPECT_FALSE(LoadArff(path, &ds));

  // Missing values unsupported.
  WriteFile(path,
            "@relation r\n@attribute x numeric\n@attribute class {a,b}\n"
            "@data\n?,a\n");
  EXPECT_FALSE(LoadArff(path, &ds));

  // Unknown directive.
  WriteFile(path, "@relation r\n@frobnicate\n@data\n");
  EXPECT_FALSE(LoadArff(path, &ds));
  std::remove(path.c_str());
}

TEST(Arff, RoundTripThroughSaveArff) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 500;
  gen.seed = 501;
  const Dataset original = GenerateAgrawal(gen);
  const std::string path = TempPath("roundtrip.arff");
  ASSERT_TRUE(SaveArff(original, "agrawal_f2", path));
  Dataset loaded;
  ASSERT_TRUE(LoadArff(path, &loaded));
  ASSERT_EQ(loaded.num_records(), original.num_records());
  ASSERT_EQ(loaded.num_attrs(), original.num_attrs());
  for (RecordId r = 0; r < 50; ++r) {
    for (AttrId a = 0; a < original.num_attrs(); ++a) {
      if (original.schema().is_numeric(a)) {
        EXPECT_DOUBLE_EQ(loaded.numeric(a, r), original.numeric(a, r));
      } else {
        EXPECT_EQ(loaded.categorical(a, r), original.categorical(a, r));
      }
    }
    EXPECT_EQ(loaded.label(r), original.label(r));
  }
  std::remove(path.c_str());
}

TEST(Arff, LoadedDataTrains) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF1;
  gen.num_records = 3000;
  gen.seed = 503;
  const Dataset original = GenerateAgrawal(gen);
  const std::string path = TempPath("train.arff");
  ASSERT_TRUE(SaveArff(original, "f1", path));
  Dataset loaded;
  ASSERT_TRUE(LoadArff(path, &loaded));
  ExactBuilder builder;
  const BuildResult result = builder.Build(loaded);
  EXPECT_GT(Evaluate(result.tree, loaded).Accuracy(), 0.99);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cmp
