#include "sprint/sprint.h"

#include <gtest/gtest.h>

#include "datagen/agrawal.h"
#include "exact/exact.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

SprintOptions NoSwitchOptions() {
  SprintOptions o;
  // Disable the in-memory shortcut so the attribute-list machinery is
  // exercised down to small nodes.
  o.base.in_memory_threshold = 0;
  return o;
}

TEST(Sprint, HighAccuracyOnF2) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 20000;
  gen.seed = 101;
  const Dataset data = GenerateAgrawal(gen);
  std::vector<RecordId> train_ids;
  std::vector<RecordId> test_ids;
  TrainTestSplit(data.num_records(), 0.25, 4, &train_ids, &test_ids);
  const Dataset train = data.Subset(train_ids);
  const Dataset test = data.Subset(test_ids);

  SprintBuilder builder;
  const BuildResult result = builder.Build(train);
  EXPECT_GT(Evaluate(result.tree, test).Accuracy(), 0.97);
}

TEST(Sprint, SameRootSplitAsExactBuilder) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 5000;
  gen.seed = 103;
  const Dataset train = GenerateAgrawal(gen);

  SprintBuilder sprint(NoSwitchOptions());
  const BuildResult sres = sprint.Build(train);
  ExactBuilder exact;
  const BuildResult eres = exact.Build(train);

  ASSERT_FALSE(sres.tree.node(0).is_leaf);
  ASSERT_FALSE(eres.tree.node(0).is_leaf);
  EXPECT_EQ(sres.tree.node(0).split.attr, eres.tree.node(0).split.attr);
  if (sres.tree.node(0).split.kind == Split::Kind::kNumeric) {
    EXPECT_DOUBLE_EQ(sres.tree.node(0).split.threshold,
                     eres.tree.node(0).split.threshold);
  }
}

TEST(Sprint, ChargesPresortAndPerLevelTraffic) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF7;
  gen.num_records = 10000;
  gen.seed = 105;
  const Dataset train = GenerateAgrawal(gen);
  SprintBuilder builder(NoSwitchOptions());
  const BuildResult result = builder.Build(train);
  // Presort scan + one list pass per level.
  EXPECT_GE(result.stats.dataset_scans, 3);
  // Attribute lists were materialized at least once.
  EXPECT_GE(result.stats.bytes_written,
            train.num_records() * 9 * 20);
  EXPECT_GT(result.stats.sort_comparisons, 0);
}

TEST(Sprint, EmptyDatasetYieldsSingleLeaf) {
  const Dataset empty(AgrawalSchema());
  SprintBuilder builder;
  const BuildResult result = builder.Build(empty);
  EXPECT_EQ(result.tree.num_nodes(), 1);
  EXPECT_TRUE(result.tree.node(0).is_leaf);
}

TEST(Sprint, PureDatasetYieldsSingleLeaf) {
  Dataset ds(AgrawalSchema());
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF1;
  gen.num_records = 500;
  const Dataset src = GenerateAgrawal(gen);
  // Keep only class-0 records.
  std::vector<RecordId> rids;
  for (RecordId r = 0; r < src.num_records(); ++r) {
    if (src.label(r) == 0) rids.push_back(r);
  }
  const Dataset pure = src.Subset(rids);
  SprintBuilder builder;
  const BuildResult result = builder.Build(pure);
  EXPECT_TRUE(result.tree.node(0).is_leaf);
  EXPECT_EQ(result.tree.node(0).leaf_class, 0);
}

TEST(Sprint, InMemorySwitchDoesNotChangeAccuracyMuch) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 8000;
  gen.seed = 107;
  const Dataset train = GenerateAgrawal(gen);

  SprintBuilder with_switch;  // default threshold 4096
  SprintBuilder without_switch(NoSwitchOptions());
  const double a1 = Evaluate(with_switch.Build(train).tree, train).Accuracy();
  const double a2 =
      Evaluate(without_switch.Build(train).tree, train).Accuracy();
  EXPECT_NEAR(a1, a2, 0.01);
}

}  // namespace
}  // namespace cmp
