// Golden-tree regression fixtures: every algorithm retrains on a fixed
// synthetic dataset and its serialized tree is byte-compared against a
// committed fixture under tests/golden/. Any refactor that changes a
// single split threshold, node id, or class count — even one that only
// reorders floating-point operations — fails here before it can silently
// alter model outputs.
//
// To regenerate after an INTENTIONAL behavior change:
//   CMP_UPDATE_GOLDEN=1 ./test_golden
// then review and commit the rewritten files under tests/golden/.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "clouds/clouds.h"
#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "exact/exact.h"
#include "rainforest/rainforest.h"
#include "sliq/sliq.h"
#include "sprint/sprint.h"
#include "tree/serialize.h"

namespace cmp {
namespace {

Dataset GoldenData() {
  // Mixed numeric/categorical predicates (F5 uses salary, zipcode,
  // hvalue) on enough records to force several scan rounds for the
  // grid-based builders once the in-memory switch is lowered.
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 6000;
  gen.seed = 71;
  return GenerateAgrawal(gen);
}

std::string GoldenPath(const std::string& name) {
  return std::string(CMP_GOLDEN_DIR) + "/" + name + ".tree";
}

void CheckGolden(const std::string& name, const DecisionTree& tree) {
  const std::string serialized = SerializeTree(tree);
  const std::string path = GoldenPath(name);
  if (std::getenv("CMP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream os(path, std::ios::binary);
    ASSERT_TRUE(os.good()) << "cannot write " << path;
    os << serialized;
    ASSERT_TRUE(os.good());
    std::cout << "updated " << path << " (" << serialized.size()
              << " bytes)\n";
    return;
  }
  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good()) << "missing fixture " << path
                         << " (regenerate with CMP_UPDATE_GOLDEN=1)";
  std::ostringstream buffer;
  buffer << is.rdbuf();
  EXPECT_EQ(buffer.str(), serialized)
      << name << ": retrained tree differs from committed fixture "
      << path << " — an algorithm change leaked into model outputs";
}

// CMP variants with the in-memory switch lowered so pending splits,
// buffer flushes and multi-level growth all execute before the exact
// finisher takes over.
CmpOptions ScanHeavy(CmpOptions o) {
  o.base.in_memory_threshold = 512;
  return o;
}

TEST(Golden, CmpS) {
  CmpBuilder builder(ScanHeavy(CmpSOptions()));
  CheckGolden("cmp_s", builder.Build(GoldenData()).tree);
}

TEST(Golden, CmpB) {
  CmpBuilder builder(ScanHeavy(CmpBOptions()));
  CheckGolden("cmp_b", builder.Build(GoldenData()).tree);
}

TEST(Golden, CmpFull) {
  CmpBuilder builder(ScanHeavy(CmpFullOptions()));
  CheckGolden("cmp_full", builder.Build(GoldenData()).tree);
}

TEST(Golden, CmpFullDefaultThreshold) {
  // The default configuration (large in-memory switch) exercises the
  // exact-finish handoff at the root partition level.
  CmpBuilder builder(CmpFullOptions());
  CheckGolden("cmp_full_default", builder.Build(GoldenData()).tree);
}

TEST(Golden, CmpSNoPrune) {
  CmpOptions o = ScanHeavy(CmpSOptions());
  o.base.prune = false;
  CmpBuilder builder(o);
  CheckGolden("cmp_s_noprune", builder.Build(GoldenData()).tree);
}

TEST(Golden, Sprint) {
  SprintOptions o;
  SprintBuilder builder(o);
  CheckGolden("sprint", builder.Build(GoldenData()).tree);
}

TEST(Golden, Sliq) {
  SliqOptions o;
  o.base.in_memory_threshold = 512;
  SliqBuilder builder(o);
  CheckGolden("sliq", builder.Build(GoldenData()).tree);
}

TEST(Golden, Clouds) {
  CloudsOptions o;
  o.base.in_memory_threshold = 512;
  CloudsBuilder builder(o);
  CheckGolden("clouds", builder.Build(GoldenData()).tree);
}

TEST(Golden, RainForest) {
  RainForestOptions o;
  RainForestBuilder builder(o);
  CheckGolden("rainforest", builder.Build(GoldenData()).tree);
}

TEST(Golden, Exact) {
  ExactBuilder builder;
  CheckGolden("exact", builder.Build(GoldenData()).tree);
}

}  // namespace
}  // namespace cmp
