// Differential tests of the compiled inference path: CompiledTree,
// BatchPredictor (1 and N threads, dataset and raw rows) and
// EnsemblePredictor must agree bit for bit with the interpreted
// DecisionTree::Classify on randomized trees — numeric, categorical and
// linear-combination splits alike — over randomized datasets whose
// values are salted with the trees' own thresholds so the `<=` boundary
// itself is exercised.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/random.h"
#include "common/schema.h"
#include "infer/batch_predictor.h"
#include "infer/compiled_tree.h"
#include "infer/ensemble.h"
#include "tree/tree.h"

namespace cmp {
namespace {

// A pool of "interesting" values shared by tree thresholds and dataset
// columns, so records routinely land exactly on split boundaries.
class ValuePool {
 public:
  explicit ValuePool(Rng* rng) {
    for (int i = 0; i < 24; ++i) {
      values_.push_back(rng->Uniform(-100.0, 100.0));  // rarely float-exact
      values_.push_back(static_cast<double>(rng->UniformInt(-50, 50)));
    }
  }
  double Draw(Rng* rng) const {
    return values_[rng->UniformInt(0, static_cast<int64_t>(values_.size()) -
                                          1)];
  }

 private:
  std::vector<double> values_;
};

std::string Tagged(const char* prefix, int i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

Schema RandomSchema(Rng* rng) {
  std::vector<AttrInfo> attrs;
  const int num_numeric = static_cast<int>(rng->UniformInt(2, 5));
  const int num_cat = static_cast<int>(rng->UniformInt(0, 3));
  for (int i = 0; i < num_numeric; ++i) {
    attrs.push_back({Tagged("n", i), AttrKind::kNumeric, 0});
  }
  for (int i = 0; i < num_cat; ++i) {
    attrs.push_back({Tagged("c", i), AttrKind::kCategorical,
                     static_cast<int32_t>(rng->UniformInt(2, 6))});
  }
  // Shuffle so numeric/categorical attr ids interleave.
  for (size_t i = attrs.size() - 1; i > 0; --i) {
    std::swap(attrs[i],
              attrs[rng->UniformInt(0, static_cast<int64_t>(i))]);
  }
  std::vector<std::string> classes;
  const int nc = static_cast<int>(rng->UniformInt(2, 4));
  for (int c = 0; c < nc; ++c) classes.push_back(Tagged("k", c));
  return Schema(std::move(attrs), std::move(classes));
}

NodeId RandomSubtree(DecisionTree* tree, Rng* rng, const ValuePool& pool,
                     int depth) {
  const Schema& schema = tree->schema();
  const std::vector<AttrId> numeric = schema.NumericAttrs();
  const std::vector<AttrId> cats = schema.CategoricalAttrs();

  TreeNode node;
  node.depth = depth;
  if (depth >= 6 || rng->Bernoulli(0.35)) {
    node.is_leaf = true;
    if (rng->Bernoulli(0.9)) {
      for (ClassId c = 0; c < schema.num_classes(); ++c) {
        node.class_counts.push_back(rng->UniformInt(0, 20));
      }
    }
    ClassId best = 0;
    for (size_t c = 1; c < node.class_counts.size(); ++c) {
      if (node.class_counts[c] > node.class_counts[best]) {
        best = static_cast<ClassId>(c);
      }
    }
    node.leaf_class = best;  // MakeLeaf's convention: argmax, lowest id
    return tree->AddNode(node);
  }

  node.is_leaf = false;
  const int64_t kind = rng->UniformInt(0, 2);
  if (kind == 1 && !cats.empty()) {
    const AttrId a = cats[rng->UniformInt(
        0, static_cast<int64_t>(cats.size()) - 1)];
    std::vector<uint8_t> subset(schema.attr(a).cardinality);
    for (auto& b : subset) b = rng->Bernoulli(0.5) ? 1 : 0;
    node.split = Split::Categorical(a, std::move(subset));
  } else if (kind == 2 && numeric.size() >= 2) {
    const AttrId x = numeric[rng->UniformInt(
        0, static_cast<int64_t>(numeric.size()) - 1)];
    AttrId y = x;
    while (y == x) {
      y = numeric[rng->UniformInt(
          0, static_cast<int64_t>(numeric.size()) - 1)];
    }
    node.split = Split::Linear(x, y, rng->Uniform(-2.0, 2.0),
                               rng->Uniform(-2.0, 2.0), pool.Draw(rng));
  } else {
    const AttrId a = numeric[rng->UniformInt(
        0, static_cast<int64_t>(numeric.size()) - 1)];
    node.split = Split::Numeric(a, pool.Draw(rng));
  }
  const NodeId id = tree->AddNode(node);
  const NodeId left = RandomSubtree(tree, rng, pool, depth + 1);
  const NodeId right = RandomSubtree(tree, rng, pool, depth + 1);
  tree->mutable_node(id).left = left;
  tree->mutable_node(id).right = right;
  return id;
}

DecisionTree RandomTree(const Schema& schema, Rng* rng,
                        const ValuePool& pool) {
  DecisionTree tree(schema);
  RandomSubtree(&tree, rng, pool, 0);
  return tree;
}

Dataset RandomDataset(const Schema& schema, Rng* rng, const ValuePool& pool,
                      int64_t n) {
  Dataset ds(schema);
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> numeric_values;
    std::vector<int32_t> cat_values;
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      if (schema.is_numeric(a)) {
        // Half the values come from the threshold pool: exact boundary
        // hits where `<=` vs `<` (or a float-rounded threshold) would
        // diverge.
        numeric_values.push_back(rng->Bernoulli(0.5)
                                     ? pool.Draw(rng)
                                     : rng->Uniform(-100.0, 100.0));
      } else {
        // Occasionally out-of-range values, which RoutesLeft sends right.
        cat_values.push_back(static_cast<int32_t>(
            rng->UniformInt(-1, schema.attr(a).cardinality)));
      }
    }
    ds.Append(numeric_values, cat_values,
              static_cast<ClassId>(
                  rng->UniformInt(0, schema.num_classes() - 1)));
  }
  return ds;
}

// Dense raw-row copy of record `r`, indexed by AttrId.
void FillRawRow(const Dataset& ds, RecordId r, std::vector<double>* numeric,
                std::vector<int32_t>* categorical) {
  const Schema& schema = ds.schema();
  numeric->assign(schema.num_attrs(), 0.0);
  categorical->assign(schema.num_attrs(), 0);
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (schema.is_numeric(a)) {
      (*numeric)[a] = ds.numeric(a, r);
    } else {
      (*categorical)[a] = ds.categorical(a, r);
    }
  }
}

TEST(CompiledTree, DifferentialFuzzAgainstInterpreter) {
  Rng rng(20260806);
  for (int trial = 0; trial < 40; ++trial) {
    const ValuePool pool(&rng);
    const Schema schema = RandomSchema(&rng);
    const DecisionTree tree = RandomTree(schema, &rng, pool);
    const Dataset ds = RandomDataset(schema, &rng, pool, 300);
    const CompiledTree compiled = CompiledTree::Compile(tree);

    PredictOptions single;
    single.want_probs = true;
    PredictOptions multi;
    multi.num_threads = 4;
    multi.block_size = 37;  // force many blocks
    const BatchResult batch1 =
        BatchPredictor(&compiled, single).Predict(ds);
    const BatchResult batch4 = BatchPredictor(&compiled, multi).Predict(ds);

    std::vector<double> raw_numeric;
    std::vector<int32_t> raw_cat;
    const int32_t nc = compiled.num_classes();
    for (RecordId r = 0; r < ds.num_records(); ++r) {
      const ClassId expected = tree.Classify(ds, r);
      ASSERT_EQ(compiled.Predict(ds, r), expected)
          << "trial " << trial << " record " << r;
      ASSERT_EQ(batch1.labels[r], expected);
      ASSERT_EQ(batch4.labels[r], expected);

      FillRawRow(ds, r, &raw_numeric, &raw_cat);
      ASSERT_EQ(compiled.PredictRow(raw_numeric.data(), raw_cat.data()),
                expected);

      // Probability sanity: normalized, and the predicted class is modal.
      const float* probs = &batch1.probs[static_cast<size_t>(r) * nc];
      float sum = 0.0f;
      float max_p = 0.0f;
      for (int32_t c = 0; c < nc; ++c) {
        ASSERT_GE(probs[c], 0.0f);
        sum += probs[c];
        max_p = std::max(max_p, probs[c]);
      }
      ASSERT_NEAR(sum, 1.0f, 1e-5f);
      ASSERT_EQ(probs[expected], max_p);
    }
  }
}

TEST(CompiledTree, RawBatchMatchesDatasetBatch) {
  Rng rng(99);
  const ValuePool pool(&rng);
  const Schema schema = RandomSchema(&rng);
  const DecisionTree tree = RandomTree(schema, &rng, pool);
  const Dataset ds = RandomDataset(schema, &rng, pool, 200);
  const CompiledTree compiled = CompiledTree::Compile(tree);

  const int32_t na = schema.num_attrs();
  std::vector<double> numeric(static_cast<size_t>(ds.num_records()) * na);
  std::vector<int32_t> categorical(static_cast<size_t>(ds.num_records()) *
                                   na);
  std::vector<double> row_n;
  std::vector<int32_t> row_c;
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    FillRawRow(ds, r, &row_n, &row_c);
    std::copy(row_n.begin(), row_n.end(), numeric.begin() + r * na);
    std::copy(row_c.begin(), row_c.end(), categorical.begin() + r * na);
  }
  const BatchPredictor predictor(&compiled);
  const BatchResult from_ds = predictor.Predict(ds);
  const BatchResult from_raw = predictor.PredictRaw(
      numeric.data(), categorical.data(), ds.num_records());
  EXPECT_EQ(from_ds.labels, from_raw.labels);
}

TEST(CompiledTree, NonFloatThresholdsUseWideSideTable) {
  const Schema schema({{"x", AttrKind::kNumeric, 0}}, {"no", "yes"});
  DecisionTree tree(schema);
  TreeNode root;
  root.is_leaf = false;
  root.split = Split::Numeric(0, 1.0 / 3.0);  // not float-representable
  const NodeId root_id = tree.AddNode(root);
  TreeNode leaf;
  leaf.is_leaf = true;
  leaf.leaf_class = 0;
  const NodeId l = tree.AddNode(leaf);
  leaf.leaf_class = 1;
  const NodeId r = tree.AddNode(leaf);
  tree.mutable_node(root_id).left = l;
  tree.mutable_node(root_id).right = r;

  const CompiledTree compiled = CompiledTree::Compile(tree);
  ASSERT_EQ(compiled.wide_splits().size(), 1u);
  EXPECT_EQ(compiled.wide_splits()[0].threshold, 1.0 / 3.0);

  // The value sitting between the double threshold and its float
  // rounding is exactly the record an inline float compare would
  // misroute.
  Dataset ds(schema);
  ds.Append({1.0 / 3.0}, {}, 0);
  ds.Append({std::nextafter(1.0 / 3.0, 1.0)}, {}, 1);
  ds.Append({static_cast<double>(static_cast<float>(1.0 / 3.0))}, {}, 1);
  for (RecordId rec = 0; rec < ds.num_records(); ++rec) {
    EXPECT_EQ(compiled.Predict(ds, rec), tree.Classify(ds, rec));
  }

  // A float-exact threshold stays inline.
  tree.mutable_node(root_id).split = Split::Numeric(0, 0.5);
  const CompiledTree inline_compiled = CompiledTree::Compile(tree);
  EXPECT_TRUE(inline_compiled.wide_splits().empty());
}

TEST(CompiledTree, CompileDropsUnreachableNodes) {
  Rng rng(7);
  const ValuePool pool(&rng);
  const Schema schema = RandomSchema(&rng);
  DecisionTree tree = RandomTree(schema, &rng, pool);
  while (tree.num_nodes() < 3) tree = RandomTree(schema, &rng, pool);
  tree.mutable_node(0).class_counts.assign(schema.num_classes(), 1);
  tree.MakeLeaf(0);  // orphans every other node, without Compact()
  const CompiledTree compiled = CompiledTree::Compile(tree);
  EXPECT_EQ(compiled.num_nodes(), 1);
  EXPECT_EQ(compiled.num_leaves(), 1);
}

TEST(BatchPredictor, TopKAndAbstain) {
  const Schema schema({{"x", AttrKind::kNumeric, 0}}, {"a", "b", "c"});
  DecisionTree tree(schema);
  TreeNode root;
  root.is_leaf = false;
  root.split = Split::Numeric(0, 0.0);
  const NodeId root_id = tree.AddNode(root);
  TreeNode confident;  // p = (0.8, 0.2, 0.0)
  confident.is_leaf = true;
  confident.leaf_class = 0;
  confident.class_counts = {8, 2, 0};
  const NodeId l = tree.AddNode(confident);
  TreeNode shaky;  // p = (0.2, 0.4, 0.4) -> class 1 by lowest-id tie-break
  shaky.is_leaf = true;
  shaky.leaf_class = 1;
  shaky.class_counts = {2, 4, 4};
  const NodeId r = tree.AddNode(shaky);
  tree.mutable_node(root_id).left = l;
  tree.mutable_node(root_id).right = r;

  Dataset ds(schema);
  ds.Append({-1.0}, {}, 0);
  ds.Append({1.0}, {}, 1);

  const CompiledTree compiled = CompiledTree::Compile(tree);
  PredictOptions opts;
  opts.top_k = 2;
  opts.abstain_threshold = 0.5;
  const BatchResult result = BatchPredictor(&compiled, opts).Predict(ds);

  EXPECT_EQ(result.labels[0], 0);             // 0.8 >= 0.5
  EXPECT_EQ(result.labels[1], kInvalidClass);  // 0.4 < 0.5
  EXPECT_EQ(result.num_abstained, 1);
  // Top-k is ordered by probability, ties to the lower class id, and is
  // still reported for abstained rows.
  EXPECT_EQ(result.topk[0], 0);
  EXPECT_EQ(result.topk[1], 1);
  EXPECT_EQ(result.topk[2], 1);
  EXPECT_EQ(result.topk[3], 2);
}

TEST(EnsemblePredictor, MatchesNaiveVoting) {
  Rng rng(4242);
  const ValuePool pool(&rng);
  const Schema schema = RandomSchema(&rng);
  std::vector<DecisionTree> trees;
  for (int t = 0; t < 5; ++t) {
    trees.push_back(RandomTree(schema, &rng, pool));
  }
  const Dataset ds = RandomDataset(schema, &rng, pool, 250);

  const EnsemblePredictor majority =
      EnsemblePredictor::Compile(trees, VoteKind::kMajority);
  const EnsemblePredictor averaged =
      EnsemblePredictor::Compile(trees, VoteKind::kAverageProb);
  ASSERT_EQ(majority.num_trees(), 5);
  PredictOptions multi;
  multi.num_threads = 4;
  multi.block_size = 41;
  const BatchResult hard = majority.Predict(ds, multi);
  const BatchResult soft = averaged.Predict(ds);

  std::vector<CompiledTree> compiled;
  for (const DecisionTree& t : trees) {
    compiled.push_back(CompiledTree::Compile(t));
  }
  const int32_t nc = schema.num_classes();
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    std::vector<int> votes(nc, 0);
    std::vector<double> prob_sum(nc, 0.0);
    for (size_t t = 0; t < trees.size(); ++t) {
      votes[trees[t].Classify(ds, r)]++;
      const float* p =
          compiled[t].leaf_probs(compiled[t].LeafIndexOf(ds, r));
      for (int32_t c = 0; c < nc; ++c) prob_sum[c] += p[c];
    }
    const ClassId hard_expected = static_cast<ClassId>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
    const ClassId soft_expected = static_cast<ClassId>(
        std::max_element(prob_sum.begin(), prob_sum.end()) -
        prob_sum.begin());
    ASSERT_EQ(hard.labels[r], hard_expected) << "record " << r;
    ASSERT_EQ(soft.labels[r], soft_expected) << "record " << r;
  }
}

}  // namespace
}  // namespace cmp
