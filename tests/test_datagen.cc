#include <gtest/gtest.h>

#include "datagen/agrawal.h"
#include "datagen/statlog.h"

namespace cmp {
namespace {

TEST(Agrawal, SchemaShape) {
  const Schema s = AgrawalSchema();
  EXPECT_EQ(s.num_attrs(), 9);
  EXPECT_EQ(s.num_classes(), 2);
  EXPECT_EQ(s.NumericAttrs().size(), 6u);
  EXPECT_EQ(s.CategoricalAttrs().size(), 3u);
  EXPECT_EQ(s.FindAttr("salary"), 0);
  EXPECT_EQ(s.FindAttr("age"), 2);
  EXPECT_EQ(s.FindAttr("loan"), 8);
}

TEST(Agrawal, Deterministic) {
  AgrawalOptions o;
  o.num_records = 100;
  o.seed = 99;
  const Dataset a = GenerateAgrawal(o);
  const Dataset b = GenerateAgrawal(o);
  for (RecordId r = 0; r < 100; ++r) {
    EXPECT_DOUBLE_EQ(a.numeric(0, r), b.numeric(0, r));
    EXPECT_EQ(a.label(r), b.label(r));
  }
}

TEST(Agrawal, AttributeRanges) {
  AgrawalOptions o;
  o.num_records = 5000;
  o.seed = 3;
  const Dataset ds = GenerateAgrawal(o);
  const Schema& s = ds.schema();
  const AttrId salary = s.FindAttr("salary");
  const AttrId commission = s.FindAttr("commission");
  const AttrId age = s.FindAttr("age");
  const AttrId loan = s.FindAttr("loan");
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    EXPECT_GE(ds.numeric(salary, r), 20000.0);
    EXPECT_LE(ds.numeric(salary, r), 150000.0);
    EXPECT_GE(ds.numeric(age, r), 20.0);
    EXPECT_LE(ds.numeric(age, r), 80.0);
    EXPECT_GE(ds.numeric(loan, r), 0.0);
    EXPECT_LE(ds.numeric(loan, r), 500000.0);
    // Commission is 0 exactly when salary >= 75,000.
    if (ds.numeric(salary, r) >= 75000.0) {
      EXPECT_DOUBLE_EQ(ds.numeric(commission, r), 0.0);
    } else {
      EXPECT_GE(ds.numeric(commission, r), 10000.0);
      EXPECT_LE(ds.numeric(commission, r), 75000.0);
    }
    EXPECT_GE(ds.categorical(s.FindAttr("elevel"), r), 0);
    EXPECT_LE(ds.categorical(s.FindAttr("elevel"), r), 4);
    EXPECT_GE(ds.categorical(s.FindAttr("zipcode"), r), 0);
    EXPECT_LE(ds.categorical(s.FindAttr("zipcode"), r), 8);
  }
}

TEST(Agrawal, LabelsMatchGroundTruth) {
  AgrawalOptions o;
  o.num_records = 2000;
  o.seed = 5;
  o.function = AgrawalFunction::kF7;
  const Dataset ds = GenerateAgrawal(o);
  const Schema& s = ds.schema();
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    const double disposable =
        2.0 * (ds.numeric(s.FindAttr("salary"), r) +
               ds.numeric(s.FindAttr("commission"), r)) /
            3.0 -
        ds.numeric(s.FindAttr("loan"), r) / 5.0 - 20000.0;
    EXPECT_EQ(ds.label(r), disposable > 0 ? 0 : 1);
  }
}

TEST(Agrawal, FunctionFMatchesPaperDefinition) {
  AgrawalOptions o;
  o.num_records = 2000;
  o.seed = 6;
  o.function = AgrawalFunction::kFunctionF;
  const Dataset ds = GenerateAgrawal(o);
  const Schema& s = ds.schema();
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    const bool group_a =
        ds.numeric(s.FindAttr("age"), r) >= 40.0 &&
        ds.numeric(s.FindAttr("salary"), r) +
                ds.numeric(s.FindAttr("commission"), r) >=
            100000.0;
    EXPECT_EQ(ds.label(r), group_a ? 0 : 1);
  }
}

// Every function must produce both classes. Most functions are roughly
// balanced; F8 and F10 are known to be heavily skewed toward group A
// under the standard attribute distributions (the disposable-income
// formula is positive for nearly every applicant), so only a minimum
// presence is required there.
class AgrawalFunctionTest : public ::testing::TestWithParam<int> {};

TEST_P(AgrawalFunctionTest, BothClassesPresent) {
  AgrawalOptions o;
  o.function = static_cast<AgrawalFunction>(GetParam());
  o.num_records = 20000;
  o.seed = 77;
  const Dataset ds = GenerateAgrawal(o);
  const auto counts = ds.ClassCounts();
  const int fn = GetParam();
  const int64_t min_minority =
      (fn == 8 || fn == 10) ? 20 : ds.num_records() / 20;
  EXPECT_GT(counts[0], min_minority) << "group A too rare";
  EXPECT_GT(counts[1], min_minority) << "group B too rare";
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, AgrawalFunctionTest,
                         ::testing::Range(1, 12));

TEST(Agrawal, PerturbationKeepsRanges) {
  AgrawalOptions o;
  o.num_records = 3000;
  o.seed = 8;
  o.perturbation = 0.05;
  const Dataset ds = GenerateAgrawal(o);
  const Schema& s = ds.schema();
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    EXPECT_GE(ds.numeric(s.FindAttr("salary"), r), 20000.0);
    EXPECT_LE(ds.numeric(s.FindAttr("salary"), r), 150000.0);
  }
}

TEST(Statlog, SpecsMatchPaperTable1) {
  EXPECT_EQ(StatlogRecords(StatlogDataset::kLetter), 15000);
  EXPECT_EQ(StatlogRecords(StatlogDataset::kSatimage), 4435);
  EXPECT_EQ(StatlogRecords(StatlogDataset::kSegment), 2310);
  EXPECT_EQ(StatlogRecords(StatlogDataset::kShuttle), 43500);
  EXPECT_EQ(StatlogClasses(StatlogDataset::kLetter), 26);
  EXPECT_EQ(StatlogName(StatlogDataset::kShuttle), "Shuttle");
}

TEST(Statlog, GeneratesRequestedShape) {
  StatlogOptions o;
  o.dataset = StatlogDataset::kSegment;
  const Dataset ds = GenerateStatlog(o);
  EXPECT_EQ(ds.num_records(), 2310);
  EXPECT_EQ(ds.num_attrs(), 19);
  EXPECT_EQ(ds.num_classes(), 7);
}

TEST(Statlog, ScaleFactor) {
  StatlogOptions o;
  o.dataset = StatlogDataset::kSatimage;
  o.scale = 0.1;
  const Dataset ds = GenerateStatlog(o);
  EXPECT_NEAR(static_cast<double>(ds.num_records()), 443.5, 1.0);
}

TEST(Statlog, AllClassesPresent) {
  StatlogOptions o;
  o.dataset = StatlogDataset::kLetter;
  const Dataset ds = GenerateStatlog(o);
  const auto counts = ds.ClassCounts();
  for (ClassId c = 0; c < ds.num_classes(); ++c) {
    EXPECT_GT(counts[c], 0) << "class " << c;
  }
}

TEST(Statlog, ShuttleDominantClass) {
  // The real Shuttle data is ~80% one class; the stand-in mirrors the
  // skew so Table 1 exercises skewed class priors.
  StatlogOptions o;
  o.dataset = StatlogDataset::kShuttle;
  const Dataset ds = GenerateStatlog(o);
  const auto counts = ds.ClassCounts();
  EXPECT_GT(counts[0], ds.num_records() / 2);
}

TEST(Statlog, Deterministic) {
  StatlogOptions o;
  o.dataset = StatlogDataset::kSegment;
  const Dataset a = GenerateStatlog(o);
  const Dataset b = GenerateStatlog(o);
  for (RecordId r = 0; r < 50; ++r) {
    EXPECT_DOUBLE_EQ(a.numeric(0, r), b.numeric(0, r));
    EXPECT_EQ(a.label(r), b.label(r));
  }
}

}  // namespace
}  // namespace cmp
