// Distributed training determinism: DistTrain forks K worker processes
// that each scan one horizontal slice of the table and ship histogram /
// pending / collect state back over the wire protocol. The rank-order
// merge must make the tree BYTE-IDENTICAL to a single-process build for
// every worker count, thread count and block size — the same contract
// the in-process sharded scan and the out-of-core pipeline already
// carry, extended across process boundaries.

#include "dist/dist.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "io/table_file.h"
#include "tree/observer.h"
#include "tree/serialize.h"

namespace cmp {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class DistTrainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AgrawalOptions gen;
    gen.function = AgrawalFunction::kF6;  // exercises pending + linear
    gen.num_records = 4000;
    gen.seed = 977;
    gen.perturbation = 0.05;
    ds_ = GenerateAgrawal(gen);
    path_ = TempPath("dist_train.cmpt");
    ASSERT_TRUE(SaveTableFile(ds_, path_));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  Dataset ds_;
  std::string path_;
};

TEST_F(DistTrainTest, TreeIdenticalAcrossWorkersThreadsAndBlocks) {
  CmpOptions options = CmpSOptions();
  options.base.in_memory_threshold = 256;  // exercise collect + stash
  const std::string reference =
      SerializeTree(CmpBuilder(options).Build(ds_).tree);
  ASSERT_FALSE(reference.empty());

  for (const int workers : {1, 2, 4}) {
    for (const int threads : {1, 2}) {
      // 0 = whole slice as one block (the in-memory profile); 700 is a
      // non-divisor of every slice length (the --stream profile).
      for (const int64_t block : {int64_t{0}, int64_t{700}}) {
        dist::DistOptions d;
        d.num_workers = workers;
        d.num_threads = threads;
        d.block_records = block;
        options.base.num_threads = threads;
        const BuildResult result = dist::DistTrain(path_, options, d);
        EXPECT_EQ(SerializeTree(result.tree), reference)
            << "workers=" << workers << " threads=" << threads
            << " block=" << block;
      }
    }
  }
}

TEST_F(DistTrainTest, AllVariantsMatchSingleProcess) {
  const CmpOptions variants[] = {CmpSOptions(), CmpBOptions(),
                                 CmpFullOptions()};
  for (const CmpOptions& options : variants) {
    const std::string reference =
        SerializeTree(CmpBuilder(options).Build(ds_).tree);
    dist::DistOptions d;
    d.num_workers = 3;
    const BuildResult result = dist::DistTrain(path_, options, d);
    EXPECT_EQ(SerializeTree(result.tree), reference);
  }
}

TEST_F(DistTrainTest, DisabledCodesAndSubtractionStillMatch) {
  // The workers honor the scan-variant flags; every combination must
  // land on the same bytes (the flags trade speed, never results).
  CmpOptions options = CmpFullOptions();
  const std::string reference =
      SerializeTree(CmpBuilder(options).Build(ds_).tree);
  for (const bool codes : {false, true}) {
    for (const bool subtract : {false, true}) {
      options.bin_code_cache = codes;
      options.sibling_subtraction = subtract;
      dist::DistOptions d;
      d.num_workers = 2;
      const BuildResult result = dist::DistTrain(path_, options, d);
      EXPECT_EQ(SerializeTree(result.tree), reference)
          << "codes=" << codes << " subtract=" << subtract;
    }
  }
}

TEST_F(DistTrainTest, MoreWorkersThanRecordsIsLegal) {
  // Tiny table, K = 8: several slices are empty; they scan nothing and
  // ack zero-record slices, and the tree still matches.
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 5;
  gen.seed = 7;
  const Dataset tiny = GenerateAgrawal(gen);
  const std::string tiny_path = TempPath("dist_tiny.cmpt");
  ASSERT_TRUE(SaveTableFile(tiny, tiny_path));
  CmpOptions options = CmpSOptions();
  const std::string reference =
      SerializeTree(CmpBuilder(options).Build(tiny).tree);
  dist::DistOptions d;
  d.num_workers = 8;
  const BuildResult result = dist::DistTrain(tiny_path, options, d);
  EXPECT_EQ(SerializeTree(result.tree), reference);
  std::remove(tiny_path.c_str());
}

TEST_F(DistTrainTest, ObserverSeesWorkerAndWireStats) {
  TrainStatsCollector collector;
  CmpOptions options = CmpSOptions();
  options.base.observer = &collector;
  dist::DistOptions d;
  d.num_workers = 2;
  const BuildResult result = dist::DistTrain(path_, options, d);
  ASSERT_GT(result.tree.num_nodes(), 1);
  const std::string json = collector.ToJson();
  EXPECT_NE(json.find("\"workers\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("wire_bytes_per_pass"), std::string::npos);
  EXPECT_NE(json.find("merge_seconds"), std::string::npos);
}

TEST_F(DistTrainTest, WorkerDeathMidPassFailsTheBuild) {
  // CMP_DIST_TEST_DIE="rank:pass" makes that worker _exit(1) upon the
  // given pass's kPassBegin; the coordinator must notice the closed
  // socket, reap everyone and throw — never hang.
  ::setenv("CMP_DIST_TEST_DIE", "1:1", 1);
  dist::DistOptions d;
  d.num_workers = 2;
  CmpOptions options = CmpSOptions();
  options.base.in_memory_threshold = 256;  // force a multi-pass build
  try {
    dist::DistTrain(path_, options, d);
    ::unsetenv("CMP_DIST_TEST_DIE");
    FAIL() << "a dead worker must fail the build";
  } catch (const std::runtime_error& e) {
    ::unsetenv("CMP_DIST_TEST_DIE");
    EXPECT_NE(std::string(e.what()).find("worker 1"), std::string::npos)
        << e.what();
  }
}

TEST_F(DistTrainTest, InvalidConfigurationsThrow) {
  dist::DistOptions d;
  d.num_workers = 0;
  EXPECT_THROW(dist::DistTrain(path_, CmpSOptions(), d),
               std::runtime_error);
  d.num_workers = 2;
  EXPECT_THROW(dist::DistTrain(TempPath("no_such_table.cmpt"),
                               CmpSOptions(), d),
               std::runtime_error);
}

}  // namespace
}  // namespace cmp
