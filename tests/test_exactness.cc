// Cross-algorithm exactness properties, mirroring the paper's Table 1:
// with enough intervals (>= 15 in the paper, 100+ in practice) CMP must
// select the same splitting attribute — and, thanks to the deferred
// buffer resolution, the same exact split point — as an exact algorithm.

#include <gtest/gtest.h>

#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "datagen/statlog.h"
#include "exact/exact.h"
#include "gini/gini.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

// Extracts the root split of a CMP build with the given interval count.
Split CmpRootSplit(const Dataset& train, int intervals) {
  CmpOptions o = CmpSOptions();
  o.intervals = intervals;
  o.base.in_memory_threshold = 0;
  o.base.prune = false;
  CmpBuilder builder(o);
  const BuildResult result = builder.Build(train);
  EXPECT_FALSE(result.tree.node(0).is_leaf);
  return result.tree.node(0).split;
}

Split ExactRootSplit(const Dataset& train) {
  BuilderOptions o;
  o.prune = false;
  ExactBuilder builder(o);
  const BuildResult result = builder.Build(train);
  EXPECT_FALSE(result.tree.node(0).is_leaf);
  return result.tree.node(0).split;
}

struct WorkloadCase {
  AgrawalFunction function;
  uint64_t seed;
  const char* name;
};

class Table1AgrawalTest : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(Table1AgrawalTest, RootSplitMatchesExactWith100Intervals) {
  AgrawalOptions gen;
  gen.function = GetParam().function;
  gen.num_records = 20000;
  gen.seed = GetParam().seed;
  const Dataset train = GenerateAgrawal(gen);

  const Split exact = ExactRootSplit(train);
  const Split approx = CmpRootSplit(train, 100);
  EXPECT_EQ(approx.attr, exact.attr) << GetParam().name;
  ASSERT_EQ(approx.kind, exact.kind);
  if (exact.kind == Split::Kind::kNumeric) {
    EXPECT_DOUBLE_EQ(approx.threshold, exact.threshold) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Functions, Table1AgrawalTest,
    ::testing::Values(WorkloadCase{AgrawalFunction::kF2, 171, "F2"},
                      WorkloadCase{AgrawalFunction::kF6, 173, "F6"},
                      WorkloadCase{AgrawalFunction::kF7, 175, "F7"}),
    [](const ::testing::TestParamInfo<WorkloadCase>& info) {
      return info.param.name;
    });

class Table1StatlogTest
    : public ::testing::TestWithParam<StatlogDataset> {};

TEST_P(Table1StatlogTest, RootGiniNoWorseThanExactByMuch) {
  StatlogOptions o;
  o.dataset = GetParam();
  // Keep the biggest stand-ins quick.
  o.scale = GetParam() == StatlogDataset::kShuttle ? 0.2 : 1.0;
  const Dataset train = GenerateStatlog(o);

  // Compare the gini actually achieved at the root rather than the
  // attribute id: distribution-matched synthetics can have several
  // near-tied attributes.
  const Split exact = ExactRootSplit(train);
  const Split approx = CmpRootSplit(train, 100);

  auto root_gini = [&](const Split& s) {
    std::vector<int64_t> left(train.num_classes(), 0);
    std::vector<int64_t> right(train.num_classes(), 0);
    for (RecordId r = 0; r < train.num_records(); ++r) {
      (s.RoutesLeft(train, r) ? left : right)[train.label(r)]++;
    }
    return SplitGini(left, right);
  };
  const double exact_gini = root_gini(exact);
  const double approx_gini = root_gini(approx);
  // Table 1: identical splits in most configurations; tiny gini gaps in
  // the rest (e.g. Letter@10 intervals 0.9403 -> 0.9418).
  EXPECT_LE(approx_gini, exact_gini + 0.01)
      << StatlogName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Datasets, Table1StatlogTest,
                         ::testing::Values(StatlogDataset::kLetter,
                                           StatlogDataset::kSatimage,
                                           StatlogDataset::kSegment,
                                           StatlogDataset::kShuttle),
                         [](const ::testing::TestParamInfo<StatlogDataset>&
                                info) {
                           return StatlogName(info.param);
                         });

TEST(Exactness, WholeTreeEquivalentAccuracyToExact) {
  // Beyond the root: CMP-S's finished tree must classify as well as the
  // exact greedy tree on held-out data.
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 30000;
  gen.seed = 177;
  const Dataset data = GenerateAgrawal(gen);
  std::vector<RecordId> train_ids;
  std::vector<RecordId> test_ids;
  TrainTestSplit(data.num_records(), 0.3, 12, &train_ids, &test_ids);
  const Dataset train = data.Subset(train_ids);
  const Dataset test = data.Subset(test_ids);

  ExactBuilder exact;
  CmpBuilder cmp_s(CmpSOptions());
  const double exact_acc = Evaluate(exact.Build(train).tree, test).Accuracy();
  const double cmp_acc = Evaluate(cmp_s.Build(train).tree, test).Accuracy();
  EXPECT_GE(cmp_acc, exact_acc - 0.01);
}

TEST(Exactness, TenIntervalsMayDegradeButStaysClose) {
  // The paper's q=10 rows: occasionally a different attribute wins, with
  // a slightly larger gini. Accuracy must still be within a few points.
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 20000;
  gen.seed = 179;
  const Dataset train = GenerateAgrawal(gen);
  CmpOptions o = CmpSOptions();
  o.intervals = 10;
  CmpBuilder builder(o);
  const BuildResult result = builder.Build(train);
  EXPECT_GT(Evaluate(result.tree, train).Accuracy(), 0.95);
}

}  // namespace
}  // namespace cmp
