#include "cmp/linear.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "gini/gini.h"

namespace cmp {
namespace {

// Builds a matrix over [0,100]^2 whose labels follow `label_fn` evaluated
// at cell centers, with `per_cell` records per cell.
HistogramMatrix MakeMatrix(const IntervalGrid& gx, const IntervalGrid& gy,
                           ClassId (*label_fn)(double, double),
                           int per_cell = 5) {
  const int qx = gx.num_intervals();
  const int qy = gy.num_intervals();
  HistogramMatrix m(qx, qy, 2);
  auto center = [](const IntervalGrid& g, int i) {
    const auto& cuts = g.boundaries();
    const double lo = i == 0 ? g.min_value() : cuts[i - 1];
    const double hi =
        i == static_cast<int>(cuts.size()) ? g.max_value() : cuts[i];
    return (lo + hi) / 2.0;
  };
  for (int x = 0; x < qx; ++x) {
    for (int y = 0; y < qy; ++y) {
      m.Add(x, y, label_fn(center(gx, x), center(gy, y)), per_cell);
    }
  }
  return m;
}

IntervalGrid UniformGrid(int q) {
  std::vector<double> cuts;
  for (int i = 1; i < q; ++i) {
    cuts.push_back(100.0 * i / q);
  }
  return IntervalGrid::FromBoundaries(std::move(cuts), 0.0, 100.0);
}

TEST(LinearSplit, FindsDiagonalBoundary) {
  // Concept: x + y <= 100 -> class 0 (negative slope boundary).
  const IntervalGrid g = UniformGrid(20);
  const HistogramMatrix m = MakeMatrix(
      g, g, +[](double x, double y) -> ClassId {
        return x + y <= 100.0 ? 0 : 1;
      });
  const LinearSplitResult line = FindBestLine(m, g, 0, g, 32);
  ASSERT_TRUE(line.valid);
  // The line's gini must be far better than any axis-parallel split on
  // this concept (which can do no better than ~0.25).
  EXPECT_LT(line.gini, 0.15);
  // Coefficients must have the same sign (negative slope boundary) and a
  // ratio near 1.
  EXPECT_GT(line.a * line.b, 0.0);
  EXPECT_NEAR(line.a / line.b, 1.0, 0.4);
  EXPECT_NEAR(line.c / line.a, 100.0, 25.0);
}

TEST(LinearSplit, FindsPositiveSlopeBoundary) {
  // Concept: y >= x -> class 0 (positive slope boundary y - x >= 0).
  const IntervalGrid g = UniformGrid(20);
  const HistogramMatrix m = MakeMatrix(
      g, g, +[](double x, double y) -> ClassId {
        return y >= x ? 0 : 1;
      });
  const LinearSplitResult line = FindBestLine(m, g, 0, g, 32);
  ASSERT_TRUE(line.valid);
  EXPECT_LT(line.gini, 0.15);
  // Opposite-sign coefficients characterize a positive-slope line.
  EXPECT_LT(line.a * line.b, 0.0);
}

TEST(LinearSplit, PoorFitOnAxisAlignedConcept) {
  // Concept: x <= 50 -> class 0. A univariate split is perfect; the best
  // line cannot be dramatically better than chance on both sides of a
  // vertical boundary, but more importantly it must never be *invalid*.
  const IntervalGrid g = UniformGrid(20);
  const HistogramMatrix m = MakeMatrix(
      g, g, +[](double x, double /*y*/) -> ClassId {
        return x <= 50.0 ? 0 : 1;
      });
  const LinearSplitResult line = FindBestLine(m, g, 0, g, 32);
  ASSERT_TRUE(line.valid);
  // A steep line can approximate the vertical boundary, so the gini may
  // be low; sanity-check that it is a real partition.
  EXPECT_GE(line.gini, 0.0);
  EXPECT_LE(line.gini, 0.5);
}

TEST(LinearSplit, DegenerateMatrixInvalid) {
  const IntervalGrid g1 = UniformGrid(1);
  const IntervalGrid g = UniformGrid(10);
  HistogramMatrix m(1, 10, 2);
  EXPECT_FALSE(FindBestLine(m, g1, 0, g, 32).valid);
}

TEST(LinearSplit, EmptyMatrixInvalid) {
  const IntervalGrid g = UniformGrid(10);
  HistogramMatrix m(10, 10, 2);
  const LinearSplitResult line = FindBestLine(m, g, 0, g, 32);
  EXPECT_FALSE(line.valid);
}

TEST(LinearSplit, CoarseningPreservesDetection) {
  const IntervalGrid g = UniformGrid(100);
  const HistogramMatrix m = MakeMatrix(
      g, g, +[](double x, double y) -> ClassId {
        return x + y <= 100.0 ? 0 : 1;
      });
  // Even aggressively coarsened (8x8) the diagonal must be detected.
  const LinearSplitResult line = FindBestLine(m, g, 0, g, 8);
  ASSERT_TRUE(line.valid);
  EXPECT_LT(line.gini, 0.25);
}

TEST(LinearSplit, GiniConsistentWithManualCellPartition) {
  // For a returned line, recomputing the 3-way gini by classifying cell
  // corners must reproduce line.gini when no coarsening happens.
  const IntervalGrid g = UniformGrid(10);
  const HistogramMatrix m = MakeMatrix(
      g, g, +[](double x, double y) -> ClassId {
        return x + 2 * y <= 150.0 ? 0 : 1;
      });
  const LinearSplitResult line = FindBestLine(m, g, 0, g, 10);
  ASSERT_TRUE(line.valid);

  auto edge = [&](int i) {
    if (i == 0) return g.min_value();
    if (i == g.num_intervals()) return g.max_value();
    return g.boundaries()[i - 1];
  };
  std::vector<int64_t> under(2, 0);
  std::vector<int64_t> above(2, 0);
  std::vector<int64_t> on(2, 0);
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      const double f_max =
          line.a * edge(x + 1) + line.b * edge(y + 1) - line.c;
      const double f_min = line.a * edge(x) + line.b * edge(y) - line.c;
      std::vector<int64_t>* bucket =
          f_max <= 0 ? &under : (f_min >= 0 ? &above : &on);
      for (ClassId c = 0; c < 2; ++c) {
        (*bucket)[c] += m.count(x, y, c);
      }
    }
  }
  // Note: the walk uses positive-coefficient classification internally;
  // for positive-slope results the mirrored geometry classifies cells
  // identically, so this check holds for either orientation when b > 0.
  if (line.b > 0) {
    EXPECT_NEAR(SplitGini3(under, above, on), line.gini, 1e-9);
  }
}

}  // namespace
}  // namespace cmp
