#include "cmp/bundle.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/agrawal.h"
#include "io/scan.h"

namespace cmp {
namespace {

class BundleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AgrawalOptions gen;
    gen.function = AgrawalFunction::kF2;
    gen.num_records = 3000;
    gen.seed = 131;
    ds_ = GenerateAgrawal(gen);
    grids_ = ComputeEqualDepthGrids(ds_, 20, nullptr);
  }

  Dataset ds_;
  std::vector<IntervalGrid> grids_;
};

TEST_F(BundleTest, UnivariateHistsMatchDirectCounts) {
  HistBundle bundle = HistBundle::MakeUnivariate(ds_.schema(), grids_);
  for (RecordId r = 0; r < ds_.num_records(); ++r) {
    bundle.Add(ds_, grids_, r);
  }
  EXPECT_FALSE(bundle.bivariate());
  EXPECT_EQ(bundle.ClassTotals(), ds_.ClassCounts());

  // Verify the salary histogram against direct counting.
  const AttrId salary = ds_.schema().FindAttr("salary");
  const Histogram1D hist = bundle.HistFor(salary);
  Histogram1D direct(grids_[salary].num_intervals(), 2);
  for (RecordId r = 0; r < ds_.num_records(); ++r) {
    direct.Add(grids_[salary].IntervalOf(ds_.numeric(salary, r)),
               ds_.label(r));
  }
  for (int i = 0; i < hist.num_intervals(); ++i) {
    for (ClassId c = 0; c < 2; ++c) {
      EXPECT_EQ(hist.count(i, c), direct.count(i, c));
    }
  }
}

TEST_F(BundleTest, BivariateMarginalsMatchUnivariate) {
  const AttrId x = ds_.schema().FindAttr("salary");
  HistBundle uni = HistBundle::MakeUnivariate(ds_.schema(), grids_);
  HistBundle bi = HistBundle::MakeBivariate(ds_.schema(), grids_, x, 0,
                                            grids_[x].num_intervals());
  for (RecordId r = 0; r < ds_.num_records(); ++r) {
    uni.Add(ds_, grids_, r);
    bi.Add(ds_, grids_, r);
  }
  EXPECT_TRUE(bi.bivariate());
  EXPECT_EQ(bi.ClassTotals(), uni.ClassTotals());
  for (AttrId a = 0; a < ds_.num_attrs(); ++a) {
    const Histogram1D hu = uni.HistFor(a);
    const Histogram1D hb = bi.HistFor(a);
    ASSERT_EQ(hu.num_intervals(), hb.num_intervals()) << "attr " << a;
    for (int i = 0; i < hu.num_intervals(); ++i) {
      for (ClassId c = 0; c < 2; ++c) {
        EXPECT_EQ(hu.count(i, c), hb.count(i, c))
            << "attr " << a << " row " << i;
      }
    }
  }
}

TEST_F(BundleTest, DeriveXRangeEqualsFreshBuildOfSubset) {
  const AttrId x = ds_.schema().FindAttr("age");
  const int qx = grids_[x].num_intervals();
  HistBundle parent = HistBundle::MakeBivariate(ds_.schema(), grids_, x, 0, qx);
  for (RecordId r = 0; r < ds_.num_records(); ++r) {
    parent.Add(ds_, grids_, r);
  }
  const int cut = qx / 2;
  const HistBundle left = parent.DeriveXRange(0, cut, 0, cut);

  // A bundle freshly filled with only the records in X-intervals [0,cut)
  // must match the derived one exactly.
  HistBundle fresh = HistBundle::MakeBivariate(ds_.schema(), grids_, x, 0, cut);
  for (RecordId r = 0; r < ds_.num_records(); ++r) {
    if (grids_[x].IntervalOf(ds_.numeric(x, r)) < cut) {
      fresh.Add(ds_, grids_, r);
    }
  }
  EXPECT_EQ(left.ClassTotals(), fresh.ClassTotals());
  for (AttrId a = 0; a < ds_.num_attrs(); ++a) {
    if (a == x) continue;
    const Histogram1D hl = left.HistFor(a);
    const Histogram1D hf = fresh.HistFor(a);
    for (int i = 0; i < hl.num_intervals(); ++i) {
      for (ClassId c = 0; c < 2; ++c) {
        EXPECT_EQ(hl.count(i, c), hf.count(i, c));
      }
    }
  }
}

TEST_F(BundleTest, DeriveWithPartialColumnStartsEmptyThere) {
  const AttrId x = ds_.schema().FindAttr("age");
  const int qx = grids_[x].num_intervals();
  HistBundle parent = HistBundle::MakeBivariate(ds_.schema(), grids_, x, 0, qx);
  for (RecordId r = 0; r < ds_.num_records(); ++r) {
    parent.Add(ds_, grids_, r);
  }
  const int alive = qx / 2;
  // Left child covers [0, alive] with the alive column left empty.
  const HistBundle left = parent.DeriveXRange(0, alive + 1, 0, alive);
  const Histogram1D hx = left.HistFor(x);
  ASSERT_EQ(hx.num_intervals(), alive + 1);
  EXPECT_EQ(hx.IntervalTotal(alive), 0);  // partial column empty until flush
}

TEST_F(BundleTest, MergeSameShapeAddsCounts) {
  HistBundle a = HistBundle::MakeUnivariate(ds_.schema(), grids_);
  HistBundle b = HistBundle::MakeUnivariate(ds_.schema(), grids_);
  for (RecordId r = 0; r < ds_.num_records(); ++r) {
    (r % 2 == 0 ? a : b).Add(ds_, grids_, r);
  }
  a.MergeSameShape(b);
  EXPECT_EQ(a.ClassTotals(), ds_.ClassCounts());
}

TEST_F(BundleTest, MemoryBytesPositiveAndLargerForBivariate) {
  const AttrId x = ds_.schema().FindAttr("salary");
  const HistBundle uni = HistBundle::MakeUnivariate(ds_.schema(), grids_);
  const HistBundle bi = HistBundle::MakeBivariate(
      ds_.schema(), grids_, x, 0, grids_[x].num_intervals());
  EXPECT_GT(uni.MemoryBytes(), 0);
  EXPECT_GT(bi.MemoryBytes(), uni.MemoryBytes());
}

}  // namespace
}  // namespace cmp
