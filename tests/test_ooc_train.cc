// Out-of-core training: streaming a CMPT table through CmpBuilder::
// BuildStreamed must produce a tree BYTE-IDENTICAL to the in-memory
// Build, for every block size and thread count — the same determinism
// contract the parallel build already carries, extended to the block
// pipeline.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "io/block_source.h"
#include "io/table_file.h"
#include "tree/serialize.h"

namespace cmp {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class OocTrainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AgrawalOptions gen;
    gen.function = AgrawalFunction::kF6;  // exercises pending + linear
    gen.num_records = 4000;
    gen.seed = 977;
    gen.perturbation = 0.05;
    ds_ = GenerateAgrawal(gen);
    path_ = TempPath("ooc_train.cmpt");
    ASSERT_TRUE(SaveTableFile(ds_, path_));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  BuildResult BuildStreamed(CmpOptions options, int64_t block,
                            bool prefetch = true) {
    auto source = TableBlockSource::Open(path_, block);
    EXPECT_NE(source, nullptr);
    CmpBuilder builder(options);
    return builder.BuildStreamed(*source, prefetch);
  }

  Dataset ds_;
  std::string path_;
};

TEST_F(OocTrainTest, StreamedTreeIdenticalAcrossBlockSizesAndThreads) {
  CmpOptions options = CmpSOptions();
  options.base.in_memory_threshold = 256;  // exercise collect + stash
  const std::string reference =
      SerializeTree(CmpBuilder(options).Build(ds_).tree);
  ASSERT_FALSE(reference.empty());

  // 1 (degenerate), a non-divisor, a divisor, n, and > n (single block).
  const int64_t kBlocks[] = {1, 700, 1000, 4000, 4096};
  for (const int64_t block : kBlocks) {
    for (const int threads : {1, 2, 4}) {
      options.base.num_threads = threads;
      // Pin the shard count so this keeps exercising multi-shard merges
      // even on a single-hardware-thread runner (auto caps shards there).
      options.scan_shards = threads;
      const BuildResult streamed = BuildStreamed(options, block);
      EXPECT_EQ(SerializeTree(streamed.tree), reference)
          << "block=" << block << " threads=" << threads;
    }
  }
}

TEST_F(OocTrainTest, PrefetchDoesNotChangeTheTree) {
  CmpOptions options = CmpSOptions();
  options.base.num_threads = 2;
  const std::string with =
      SerializeTree(BuildStreamed(options, 512, /*prefetch=*/true).tree);
  const std::string without =
      SerializeTree(BuildStreamed(options, 512, /*prefetch=*/false).tree);
  EXPECT_EQ(with, without);
}

TEST_F(OocTrainTest, AllVariantsMatchInMemory) {
  for (CmpOptions options :
       {CmpSOptions(), CmpBOptions(), CmpFullOptions()}) {
    options.base.num_threads = 2;
    const std::string reference =
        SerializeTree(CmpBuilder(options).Build(ds_).tree);
    const BuildResult streamed = BuildStreamed(options, 777);
    EXPECT_EQ(SerializeTree(streamed.tree), reference);
  }
}

TEST_F(OocTrainTest, PureScanPathMatchesInMemory) {
  // in_memory_threshold 0 disables the exact-finish switch entirely:
  // every node grows through histogram scans and pending resolution,
  // the heaviest use of the stash (buffered records only).
  CmpOptions options = CmpSOptions();
  options.base.in_memory_threshold = 0;
  const std::string reference =
      SerializeTree(CmpBuilder(options).Build(ds_).tree);
  for (const int64_t block : {333, 4000}) {
    const BuildResult streamed = BuildStreamed(options, block);
    EXPECT_EQ(SerializeTree(streamed.tree), reference) << "block=" << block;
  }
}

TEST_F(OocTrainTest, ReportsRealBytesAndBoundedResidentMemory) {
  CmpOptions options = CmpSOptions();
  const int64_t block = 500;
  auto source = TableBlockSource::Open(path_, block);
  ASSERT_NE(source, nullptr);
  CmpBuilder builder(options);
  const BuildResult result = builder.BuildStreamed(*source);

  // Real-I/O accounting: at least one full pass of actual file bytes,
  // and exactly what the source measured.
  const int64_t one_pass = ds_.num_records() * ds_.schema().RecordBytes();
  EXPECT_GE(result.stats.bytes_read, one_pass);
  EXPECT_EQ(result.stats.bytes_read, source->bytes_read());
  EXPECT_GT(result.stats.dataset_scans, 1);

  // Staging memory is two block buffers, not the table: O(block), with
  // 64-byte alignment padding per column as the only overhead.
  const int64_t padding =
      64 * (ds_.schema().num_attrs() + 1) * 2;  // per column, per slot
  EXPECT_LE(source->resident_bytes(),
            2 * block * ds_.schema().RecordBytes() + padding);
  EXPECT_LT(source->resident_bytes(), one_pass);
}

TEST_F(OocTrainTest, DatasetBlockSourceMatchesToo) {
  // The zero-copy in-memory source, sliced into small blocks, must also
  // hit the reference tree — this isolates the block pipeline from the
  // file reader.
  CmpOptions options = CmpSOptions();
  options.base.in_memory_threshold = 256;
  const std::string reference =
      SerializeTree(CmpBuilder(options).Build(ds_).tree);
  for (const int threads : {1, 4}) {
    options.base.num_threads = threads;
    options.scan_shards = threads;
    DatasetBlockSource source(ds_, /*block_records=*/600);
    CmpBuilder builder(options);
    const BuildResult streamed = builder.BuildStreamed(source);
    EXPECT_EQ(SerializeTree(streamed.tree), reference)
        << "threads=" << threads;
  }
}

TEST_F(OocTrainTest, StreamFailureThrowsInsteadOfSilentlyTraining) {
  auto source = TableBlockSource::Open(path_, 256);
  ASSERT_NE(source, nullptr);
  // Truncate the backing file after Open; the mid-pass read failure
  // must surface as an exception, never as a tree built from a partial
  // table.
  {
    FILE* f = fopen(path_.c_str(), "wb");
    fputs("CMPT", f);
    fclose(f);
  }
  CmpBuilder builder(CmpSOptions());
  EXPECT_THROW(builder.BuildStreamed(*source), std::runtime_error);
}

}  // namespace
}  // namespace cmp
