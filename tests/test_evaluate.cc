#include "tree/evaluate.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/loan_example.h"
#include "exact/exact.h"

namespace cmp {
namespace {

// Six records cannot justify any split under MDL, so pruning is disabled
// for the hand-checkable loan example.
BuilderOptions NoPrune() {
  BuilderOptions o;
  o.prune = false;
  return o;
}

TEST(Evaluate, PerfectTreeOnTrainingData) {
  const Dataset ds = LoanExampleDataset();
  ExactBuilder builder(NoPrune());
  const BuildResult result = builder.Build(ds);
  const Evaluation eval = Evaluate(result.tree, ds);
  EXPECT_EQ(eval.total, 6);
  EXPECT_EQ(eval.correct, 6);
  EXPECT_DOUBLE_EQ(eval.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(eval.ErrorRate(), 0.0);
}

TEST(Evaluate, ConfusionMatrixRowsSumToClassCounts) {
  const Dataset ds = LoanExampleDataset();
  ExactBuilder builder(NoPrune());
  const BuildResult result = builder.Build(ds);
  const Evaluation eval = Evaluate(result.tree, ds);
  const auto counts = ds.ClassCounts();
  for (ClassId a = 0; a < ds.num_classes(); ++a) {
    int64_t row = 0;
    for (ClassId p = 0; p < ds.num_classes(); ++p) {
      row += eval.confusion[a][p];
    }
    EXPECT_EQ(row, counts[a]);
  }
}

TEST(Evaluate, ToStringMentionsAccuracy) {
  const Dataset ds = LoanExampleDataset();
  ExactBuilder builder(NoPrune());
  const BuildResult result = builder.Build(ds);
  const Evaluation eval = Evaluate(result.tree, ds);
  EXPECT_NE(eval.ToString(ds.schema()).find("accuracy"), std::string::npos);
}

// A model trained on two classes scored against a dataset carrying a
// third: the confusion matrix must span both label spaces instead of
// indexing out of bounds, and ToString must not crash on the class the
// training schema cannot name.
TEST(Evaluate, ToleratesClassesUnseenAtTraining) {
  const Schema train_schema({{"x", AttrKind::kNumeric, 0}}, {"no", "yes"});
  Dataset train(train_schema);
  for (int i = 0; i < 10; ++i) {
    train.Append({static_cast<double>(i)}, {}, i < 5 ? 0 : 1);
  }
  ExactBuilder builder(NoPrune());
  const BuildResult result = builder.Build(train);

  const Schema eval_schema({{"x", AttrKind::kNumeric, 0}},
                           {"no", "yes", "maybe"});
  Dataset eval_ds(eval_schema);
  eval_ds.Append({1.0}, {}, 0);
  eval_ds.Append({9.0}, {}, 1);
  eval_ds.Append({9.0}, {}, 2);  // class the tree never saw

  const Evaluation eval = Evaluate(result.tree, eval_ds);
  EXPECT_EQ(eval.total, 3);
  EXPECT_EQ(eval.correct, 2);
  ASSERT_EQ(eval.confusion.size(), 3u);
  ASSERT_EQ(eval.confusion[0].size(), 3u);
  EXPECT_EQ(eval.confusion[0][0], 1);
  EXPECT_EQ(eval.confusion[1][1], 1);
  EXPECT_EQ(eval.confusion[2][1], 1);  // unseen actual, predicted "yes"

  // The training schema only names two classes; the third gets a
  // fallback name rather than undefined behavior.
  const std::string text = eval.ToString(train_schema);
  EXPECT_NE(text.find("class2"), std::string::npos);
}

TEST(TrainTestSplit, PartitionIsExactAndDisjoint) {
  std::vector<RecordId> train;
  std::vector<RecordId> test;
  TrainTestSplit(100, 0.25, 42, &train, &test);
  EXPECT_EQ(test.size(), 25u);
  EXPECT_EQ(train.size(), 75u);
  std::vector<RecordId> all = train;
  all.insert(all.end(), test.begin(), test.end());
  std::sort(all.begin(), all.end());
  for (RecordId i = 0; i < 100; ++i) EXPECT_EQ(all[i], i);
}

TEST(TrainTestSplit, Deterministic) {
  std::vector<RecordId> train1;
  std::vector<RecordId> test1;
  std::vector<RecordId> train2;
  std::vector<RecordId> test2;
  TrainTestSplit(50, 0.2, 9, &train1, &test1);
  TrainTestSplit(50, 0.2, 9, &train2, &test2);
  EXPECT_EQ(train1, train2);
  EXPECT_EQ(test1, test2);
}

TEST(TrainTestSplit, DifferentSeedsShuffleDifferently) {
  std::vector<RecordId> train1;
  std::vector<RecordId> test1;
  std::vector<RecordId> train2;
  std::vector<RecordId> test2;
  TrainTestSplit(1000, 0.5, 1, &train1, &test1);
  TrainTestSplit(1000, 0.5, 2, &train2, &test2);
  EXPECT_NE(test1, test2);
}

}  // namespace
}  // namespace cmp
