#include "io/stream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "datagen/agrawal.h"
#include "hist/grids.h"
#include "hist/histogram1d.h"
#include "io/table_file.h"

namespace cmp {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AgrawalOptions gen;
    gen.function = AgrawalFunction::kF2;
    gen.num_records = 5000;
    gen.seed = 801;
    original_ = GenerateAgrawal(gen);
    path_ = TempPath("stream.cmpt");
    ASSERT_TRUE(SaveTableFile(original_, path_));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // Streams the whole table with the given block size, checking every
  // value against the in-memory original and that no block exceeds the
  // requested size. Returns the number of blocks delivered.
  int StreamAndVerify(int64_t block_records) {
    auto scanner = TableScanner::Open(path_, block_records);
    EXPECT_NE(scanner, nullptr);
    if (scanner == nullptr) return -1;
    EXPECT_EQ(scanner->num_records(), original_.num_records());
    EXPECT_TRUE(scanner->schema() == original_.schema());

    ColumnBlock block;
    RecordId global = 0;
    int blocks = 0;
    while (scanner->NextBlock(&block)) {
      EXPECT_LE(block.count(), block_records);
      EXPECT_EQ(block.begin(), global);
      ++blocks;
      for (int64_t i = 0; i < block.count(); ++i, ++global) {
        for (AttrId a = 0; a < original_.num_attrs(); ++a) {
          if (original_.schema().is_numeric(a)) {
            EXPECT_DOUBLE_EQ(block.numeric(a, i),
                             original_.numeric(a, global));
          } else {
            EXPECT_EQ(block.categorical(a, i),
                      original_.categorical(a, global));
          }
        }
        EXPECT_EQ(block.label(i), original_.label(global));
      }
    }
    EXPECT_EQ(global, original_.num_records());
    return blocks;
  }

  Dataset original_;
  std::string path_;
};

TEST_F(StreamTest, StreamsEveryRecordInOrder) {
  EXPECT_EQ(StreamAndVerify(700), 8);  // 7*700 + 100 remainder
}

TEST_F(StreamTest, BlockSizeOne) { EXPECT_EQ(StreamAndVerify(1), 5000); }

TEST_F(StreamTest, BlockSizeExactlyTableSize) {
  EXPECT_EQ(StreamAndVerify(5000), 1);
}

TEST_F(StreamTest, BlockSizeLargerThanTable) {
  EXPECT_EQ(StreamAndVerify(5001), 1);
}

TEST_F(StreamTest, NonDividingBlockSize) {
  EXPECT_EQ(StreamAndVerify(999), 6);  // 5*999 + 5 remainder
  EXPECT_EQ(StreamAndVerify(4999), 2);
}

TEST_F(StreamTest, ResetAllowsRepeatedPasses) {
  auto scanner = TableScanner::Open(path_, 2048);
  ASSERT_NE(scanner, nullptr);
  ColumnBlock block;
  for (int pass = 0; pass < 3; ++pass) {
    int64_t seen = 0;
    double checksum = 0.0;
    while (scanner->NextBlock(&block)) {
      seen += block.count();
      checksum += block.numeric(0, 0);
    }
    EXPECT_EQ(seen, 5000) << "pass " << pass;
    EXPECT_NE(checksum, 0.0);
    scanner->Reset();
  }
}

TEST_F(StreamTest, ReadBlockIsRandomAccess) {
  auto scanner = TableScanner::Open(path_, 512);
  ASSERT_NE(scanner, nullptr);
  ColumnBlock block;
  // Read a window from the middle without touching the cursor.
  ASSERT_TRUE(scanner->ReadBlock(1234, 100, &block));
  EXPECT_EQ(block.begin(), 1234);
  EXPECT_EQ(block.count(), 100);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(block.label(i), original_.label(1234 + i));
  }
  EXPECT_EQ(scanner->position(), 0);
}

TEST_F(StreamTest, ReadNumericColumnMatchesDataset) {
  auto scanner = TableScanner::Open(path_, 512);
  ASSERT_NE(scanner, nullptr);
  const AttrId salary = original_.schema().FindAttr("salary");
  std::vector<double> col;
  ASSERT_TRUE(scanner->ReadNumericColumn(salary, &col));
  ASSERT_EQ(static_cast<int64_t>(col.size()), original_.num_records());
  for (RecordId r = 0; r < original_.num_records(); ++r) {
    EXPECT_DOUBLE_EQ(col[r], original_.numeric(salary, r));
  }
  std::vector<ClassId> labels;
  ASSERT_TRUE(scanner->ReadLabelColumn(&labels));
  for (RecordId r = 0; r < original_.num_records(); ++r) {
    EXPECT_EQ(labels[r], original_.label(r));
  }
}

TEST_F(StreamTest, StreamedHistogramMatchesInMemory) {
  // The paper's core access pattern: build an interval class histogram
  // in one streaming pass and compare against the in-memory result.
  const auto grids = ComputeEqualDepthGrids(original_, 50, nullptr);
  const AttrId salary = original_.schema().FindAttr("salary");

  Histogram1D in_memory(grids[salary].num_intervals(), 2);
  for (RecordId r = 0; r < original_.num_records(); ++r) {
    in_memory.Add(grids[salary].IntervalOf(original_.numeric(salary, r)),
                  original_.label(r));
  }

  auto scanner = TableScanner::Open(path_, 512);
  ASSERT_NE(scanner, nullptr);
  Histogram1D streamed(grids[salary].num_intervals(), 2);
  ColumnBlock block;
  while (scanner->NextBlock(&block)) {
    for (int64_t i = 0; i < block.count(); ++i) {
      streamed.Add(grids[salary].IntervalOf(block.numeric(salary, i)),
                   block.label(i));
    }
  }
  for (int i = 0; i < streamed.num_intervals(); ++i) {
    for (ClassId c = 0; c < 2; ++c) {
      EXPECT_EQ(streamed.count(i, c), in_memory.count(i, c));
    }
  }
}

TEST_F(StreamTest, CountsRealBytes) {
  auto scanner = TableScanner::Open(path_, 1000);
  ASSERT_NE(scanner, nullptr);
  ColumnBlock block;
  while (scanner->NextBlock(&block)) {
  }
  // One full pass must have pulled at least every column's payload.
  EXPECT_GE(scanner->bytes_read(),
            original_.num_records() * original_.schema().RecordBytes());
}

TEST_F(StreamTest, TruncatedFileRejectedAtOpen) {
  // Chop the final label column short: the header still parses, but the
  // file size no longer matches the record count it claims.
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 16);
  EXPECT_EQ(TableScanner::Open(path_, 512), nullptr);
}

TEST_F(StreamTest, PaddedFileRejectedAtOpen) {
  std::ofstream f(path_, std::ios::binary | std::ios::app);
  f.write("....", 4);
  f.close();
  EXPECT_EQ(TableScanner::Open(path_, 512), nullptr);
}

TEST_F(StreamTest, ResetClearsErrorStateAfterMidScanTruncation) {
  auto scanner = TableScanner::Open(path_, 512);
  ASSERT_NE(scanner, nullptr);
  // Truncate AFTER a successful Open, then scan: the pass must fail
  // partway instead of fabricating records.
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full / 2);
  ColumnBlock block;
  int64_t seen = 0;
  while (scanner->NextBlock(&block)) seen += block.count();
  EXPECT_LT(seen, 5000);
  // Restore the file. Reset must clear the sticky stream failure so the
  // next pass sees every record again.
  ASSERT_TRUE(SaveTableFile(original_, path_));
  scanner->Reset();
  int64_t second = 0;
  while (scanner->NextBlock(&block)) second += block.count();
  EXPECT_EQ(second, 5000);
}

TEST(Stream, OpenFailsOnMissingOrBadFile) {
  EXPECT_EQ(TableScanner::Open("/does/not/exist.cmpt"), nullptr);
  const std::string path =
      std::string(::testing::TempDir()) + "/garbage.cmpt";
  {
    FILE* f = fopen(path.c_str(), "wb");
    fputs("garbage", f);
    fclose(f);
  }
  EXPECT_EQ(TableScanner::Open(path), nullptr);
  std::remove(path.c_str());
}

TEST(Stream, ZeroBlockSizeRejected) {
  EXPECT_EQ(TableScanner::Open("/tmp/whatever.cmpt", 0), nullptr);
}

}  // namespace
}  // namespace cmp
