#include "io/stream.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "datagen/agrawal.h"
#include "hist/grids.h"
#include "hist/histogram1d.h"
#include "io/table_file.h"

namespace cmp {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AgrawalOptions gen;
    gen.function = AgrawalFunction::kF2;
    gen.num_records = 5000;
    gen.seed = 801;
    original_ = GenerateAgrawal(gen);
    path_ = TempPath("stream.cmpt");
    ASSERT_TRUE(SaveTableFile(original_, path_));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  Dataset original_;
  std::string path_;
};

TEST_F(StreamTest, StreamsEveryRecordInOrder) {
  auto scanner = TableScanner::Open(path_, /*block_records=*/700);
  ASSERT_NE(scanner, nullptr);
  EXPECT_EQ(scanner->num_records(), original_.num_records());
  EXPECT_TRUE(scanner->schema() == original_.schema());

  Dataset block;
  RecordId global = 0;
  while (scanner->NextBlock(&block)) {
    for (RecordId i = 0; i < block.num_records(); ++i, ++global) {
      for (AttrId a = 0; a < original_.num_attrs(); ++a) {
        if (original_.schema().is_numeric(a)) {
          ASSERT_DOUBLE_EQ(block.numeric(a, i),
                           original_.numeric(a, global));
        } else {
          ASSERT_EQ(block.categorical(a, i),
                    original_.categorical(a, global));
        }
      }
      ASSERT_EQ(block.label(i), original_.label(global));
    }
  }
  EXPECT_EQ(global, original_.num_records());
}

TEST_F(StreamTest, BlockSizesBoundedAndExact) {
  auto scanner = TableScanner::Open(path_, 999);
  ASSERT_NE(scanner, nullptr);
  Dataset block;
  int64_t total = 0;
  int blocks = 0;
  while (scanner->NextBlock(&block)) {
    EXPECT_LE(block.num_records(), 999);
    total += block.num_records();
    ++blocks;
  }
  EXPECT_EQ(total, 5000);
  EXPECT_EQ(blocks, 6);  // 5*999 + 5 remainder
}

TEST_F(StreamTest, ResetAllowsSecondPass) {
  auto scanner = TableScanner::Open(path_, 2048);
  ASSERT_NE(scanner, nullptr);
  Dataset block;
  int64_t first_pass = 0;
  while (scanner->NextBlock(&block)) first_pass += block.num_records();
  scanner->Reset();
  int64_t second_pass = 0;
  while (scanner->NextBlock(&block)) second_pass += block.num_records();
  EXPECT_EQ(first_pass, second_pass);
}

TEST_F(StreamTest, StreamedHistogramMatchesInMemory) {
  // The paper's core access pattern: build an interval class histogram
  // in one streaming pass and compare against the in-memory result.
  const auto grids = ComputeEqualDepthGrids(original_, 50, nullptr);
  const AttrId salary = original_.schema().FindAttr("salary");

  Histogram1D in_memory(grids[salary].num_intervals(), 2);
  for (RecordId r = 0; r < original_.num_records(); ++r) {
    in_memory.Add(grids[salary].IntervalOf(original_.numeric(salary, r)),
                  original_.label(r));
  }

  auto scanner = TableScanner::Open(path_, 512);
  ASSERT_NE(scanner, nullptr);
  Histogram1D streamed(grids[salary].num_intervals(), 2);
  Dataset block;
  while (scanner->NextBlock(&block)) {
    for (RecordId i = 0; i < block.num_records(); ++i) {
      streamed.Add(grids[salary].IntervalOf(block.numeric(salary, i)),
                   block.label(i));
    }
  }
  for (int i = 0; i < streamed.num_intervals(); ++i) {
    for (ClassId c = 0; c < 2; ++c) {
      EXPECT_EQ(streamed.count(i, c), in_memory.count(i, c));
    }
  }
}

TEST(Stream, OpenFailsOnMissingOrBadFile) {
  EXPECT_EQ(TableScanner::Open("/does/not/exist.cmpt"), nullptr);
  const std::string path =
      std::string(::testing::TempDir()) + "/garbage.cmpt";
  {
    FILE* f = fopen(path.c_str(), "wb");
    fputs("garbage", f);
    fclose(f);
  }
  EXPECT_EQ(TableScanner::Open(path), nullptr);
  std::remove(path.c_str());
}

TEST(Stream, ZeroBlockSizeRejected) {
  EXPECT_EQ(TableScanner::Open("/tmp/whatever.cmpt", 0), nullptr);
}

}  // namespace
}  // namespace cmp
