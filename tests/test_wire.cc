// Wire-protocol robustness: the distributed-training frames must fail
// cleanly — never crash, never over-allocate, never read out of bounds —
// on truncated payloads, foreign magic, wrong protocol versions,
// cross-endian peers and oversized length prefixes. Plus round-trip
// checks for every structure serializer the coordinator and workers
// exchange.

#include "io/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cmp/bundle.h"
#include "cmp/frontier.h"
#include "datagen/agrawal.h"
#include "hist/grids.h"
#include "tree/tree.h"

namespace cmp {
namespace {

using wire::MsgType;
using wire::WireReader;
using wire::WireWriter;

// ---------------------------------------------------------------------
// Frame header validation.

TEST(WireFrame, HeaderRoundTrips) {
  const std::string header =
      wire::BuildFrameHeader(MsgType::kPassBegin, 12345);
  ASSERT_EQ(header.size(), wire::kFrameHeaderBytes);
  MsgType type;
  uint64_t length = 0;
  std::string error;
  ASSERT_TRUE(wire::ParseFrameHeader(
      reinterpret_cast<const uint8_t*>(header.data()), &type, &length,
      &error))
      << error;
  EXPECT_EQ(type, MsgType::kPassBegin);
  EXPECT_EQ(length, 12345u);
}

TEST(WireFrame, RejectsWrongMagic) {
  std::string header = wire::BuildFrameHeader(MsgType::kHello, 0);
  header[0] = 'X';
  MsgType type;
  uint64_t length = 0;
  std::string error;
  EXPECT_FALSE(wire::ParseFrameHeader(
      reinterpret_cast<const uint8_t*>(header.data()), &type, &length,
      &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(WireFrame, RejectsWrongVersion) {
  std::string header = wire::BuildFrameHeader(MsgType::kHello, 0);
  const uint32_t bad_version = wire::kVersion + 1;
  std::memcpy(&header[4], &bad_version, sizeof(bad_version));
  MsgType type;
  uint64_t length = 0;
  std::string error;
  EXPECT_FALSE(wire::ParseFrameHeader(
      reinterpret_cast<const uint8_t*>(header.data()), &type, &length,
      &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(WireFrame, RejectsCrossEndianPeer) {
  std::string header = wire::BuildFrameHeader(MsgType::kHello, 0);
  // A byte-swapped probe is exactly what a cross-endian peer would send.
  std::swap(header[8], header[11]);
  std::swap(header[9], header[10]);
  MsgType type;
  uint64_t length = 0;
  std::string error;
  EXPECT_FALSE(wire::ParseFrameHeader(
      reinterpret_cast<const uint8_t*>(header.data()), &type, &length,
      &error));
  EXPECT_NE(error.find("endian"), std::string::npos) << error;
}

TEST(WireFrame, RejectsOversizedLengthPrefix) {
  // A corrupt 1-exabyte length must be rejected before any allocation.
  std::string header =
      wire::BuildFrameHeader(MsgType::kPassResult, wire::kMaxFrameBytes);
  const uint64_t huge = 1ull << 60;
  std::memcpy(&header[16], &huge, sizeof(huge));
  MsgType type;
  uint64_t length = 0;
  std::string error;
  EXPECT_FALSE(wire::ParseFrameHeader(
      reinterpret_cast<const uint8_t*>(header.data()), &type, &length,
      &error));
  // At exactly the cap it must still parse.
  header = wire::BuildFrameHeader(MsgType::kPassResult,
                                  wire::kMaxFrameBytes);
  EXPECT_TRUE(wire::ParseFrameHeader(
      reinterpret_cast<const uint8_t*>(header.data()), &type, &length,
      &error))
      << error;
}

// ---------------------------------------------------------------------
// Primitive reader robustness.

TEST(WireReaderTest, PrimitivesRoundTrip) {
  WireWriter w;
  w.PutU8(7);
  w.PutU32(0xDEADBEEFu);
  w.PutU64(1ull << 40);
  w.PutF64(-0.1);
  w.PutVar(300);
  w.PutVarSigned(-5);
  w.PutString("hello");
  WireReader r(w.buffer());
  EXPECT_EQ(r.GetU8(), 7);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 1ull << 40);
  EXPECT_EQ(r.GetF64(), -0.1);
  EXPECT_EQ(r.GetVar(), 300u);
  EXPECT_EQ(r.GetVarSigned(), -5);
  std::string s;
  EXPECT_TRUE(r.GetString(&s));
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireReaderTest, FailureIsSticky) {
  WireWriter w;
  w.PutU32(1);
  WireReader r(w.buffer());
  EXPECT_EQ(r.GetU64(), 0u);  // short read
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.GetU32(), 0u);  // stays failed even though 4 bytes exist
  EXPECT_FALSE(r.AtEnd());
}

TEST(WireReaderTest, StringLengthIsBoundsChecked) {
  WireWriter w;
  w.PutVar(1000);  // claims 1000 bytes...
  w.PutRaw("abc", 3);  // ...but only 3 follow
  WireReader r(w.buffer());
  std::string s;
  EXPECT_FALSE(r.GetString(&s));
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------
// Structure serializers, including every-prefix truncation sweeps: no
// prefix of a valid payload may crash or be accepted as complete.

class WireStructTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AgrawalOptions gen;
    gen.function = AgrawalFunction::kF2;
    gen.num_records = 500;
    gen.seed = 99;
    ds_ = GenerateAgrawal(gen);
    grids_ = ComputeEqualDepthGrids(ds_, 10, nullptr);
  }

  Dataset ds_;
  std::vector<IntervalGrid> grids_;
};

TEST_F(WireStructTest, SplitRoundTrips) {
  const Split splits[] = {
      Split::Numeric(2, 65000.5),
      Split::Categorical(1, {1, 0, 1, 1, 0}),
      Split::Linear(0, 3, 1.5, -2.5, 42.0),
  };
  for (const Split& s : splits) {
    WireWriter w;
    wire::WriteSplit(&w, s);
    WireReader r(w.buffer());
    Split back;
    ASSERT_TRUE(wire::ReadSplit(&r, &back));
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(back.kind, s.kind);
    EXPECT_EQ(back.attr, s.attr);
    EXPECT_EQ(back.threshold, s.threshold);
    EXPECT_EQ(back.attr2, s.attr2);
    EXPECT_EQ(back.a, s.a);
    EXPECT_EQ(back.b, s.b);
    EXPECT_EQ(back.c, s.c);
    EXPECT_EQ(back.left_subset, s.left_subset);
  }
}

TEST_F(WireStructTest, TreeRoundTripsInRoutingForm) {
  DecisionTree tree(ds_.schema());
  TreeNode root;
  root.is_leaf = false;
  root.split = Split::Numeric(2, 50000);
  root.left = 1;
  root.right = 2;
  tree.AddNode(root);
  TreeNode leaf;
  leaf.is_leaf = true;
  leaf.leaf_class = 0;
  tree.AddNode(leaf);
  TreeNode inner;
  inner.is_leaf = false;
  inner.split = Split::Categorical(1, {0, 1, 1});
  inner.left = 3;
  inner.right = 4;
  tree.AddNode(inner);
  leaf.leaf_class = 1;
  tree.AddNode(leaf);
  tree.AddNode(leaf);

  WireWriter w;
  wire::WriteTree(&w, tree);
  WireReader r(w.buffer());
  DecisionTree back(ds_.schema());
  ASSERT_TRUE(wire::ReadTree(&r, &back));
  EXPECT_TRUE(r.AtEnd());
  ASSERT_EQ(back.num_nodes(), tree.num_nodes());
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    EXPECT_EQ(back.node(id).is_leaf, tree.node(id).is_leaf) << id;
    EXPECT_EQ(back.node(id).left, tree.node(id).left) << id;
    EXPECT_EQ(back.node(id).right, tree.node(id).right) << id;
    if (!tree.node(id).is_leaf) {
      EXPECT_EQ(back.node(id).split.kind, tree.node(id).split.kind) << id;
      EXPECT_EQ(back.node(id).split.attr, tree.node(id).split.attr) << id;
    }
  }
}

TEST_F(WireStructTest, GridsRoundTrip) {
  WireWriter w;
  wire::WriteGrids(&w, ds_.schema(), grids_);
  WireReader r(w.buffer());
  std::vector<IntervalGrid> back;
  ASSERT_TRUE(wire::ReadGrids(&r, ds_.schema(), &back));
  EXPECT_TRUE(r.AtEnd());
  ASSERT_EQ(back.size(), grids_.size());
  for (AttrId a = 0; a < ds_.schema().num_attrs(); ++a) {
    if (!ds_.schema().is_numeric(a)) continue;
    ASSERT_EQ(back[a].num_intervals(), grids_[a].num_intervals()) << a;
    // Boundaries must be bit-exact: workers bin against them.
    for (RecordId rec = 0; rec < ds_.num_records(); ++rec) {
      ASSERT_EQ(back[a].IntervalOf(ds_.numeric(a, rec)),
                grids_[a].IntervalOf(ds_.numeric(a, rec)));
    }
  }
}

TEST_F(WireStructTest, BundleShapeAndCountsRoundTripAndMerge) {
  const AttrId x = 2;  // numeric in the Agrawal schema
  HistBundle bundle = HistBundle::MakeBivariate(
      ds_.schema(), grids_, x, 0, grids_[x].num_intervals());
  for (RecordId rec = 0; rec < ds_.num_records(); ++rec) {
    bundle.Add(ds_, grids_, rec);
  }

  WireWriter w;
  wire::WriteBundleShape(&w, bundle);
  wire::WriteBundleCounts(&w, bundle);
  WireReader r(w.buffer());
  HistBundle back;
  ASSERT_TRUE(wire::ReadBundleShape(&r, ds_.schema(), grids_, &back));
  EXPECT_EQ(back.bivariate(), bundle.bivariate());
  EXPECT_EQ(back.x_attr(), bundle.x_attr());
  EXPECT_EQ(back.x_lo(), bundle.x_lo());
  EXPECT_EQ(back.x_hi(), bundle.x_hi());
  ASSERT_TRUE(wire::ReadBundleCountsInto(&r, &back));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.ClassTotals(), bundle.ClassTotals());

  // ReadBundleCountsInto is the wire MergeSameShape: reading the same
  // counts again must double every cell.
  WireReader again(w.buffer());
  HistBundle merged;
  ASSERT_TRUE(wire::ReadBundleShape(&again, ds_.schema(), grids_, &merged));
  ASSERT_TRUE(wire::ReadBundleCountsInto(&again, &merged));
  WireReader counts_only(w.buffer());
  {
    HistBundle scratch;
    ASSERT_TRUE(wire::ReadBundleShape(&counts_only, ds_.schema(), grids_,
                                      &scratch));
  }
  ASSERT_TRUE(wire::ReadBundleCountsInto(&counts_only, &merged));
  std::vector<int64_t> doubled = bundle.ClassTotals();
  for (int64_t& v : doubled) v *= 2;
  EXPECT_EQ(merged.ClassTotals(), doubled);
}

TEST_F(WireStructTest, PendingSkeletonAndStateRoundTrip) {
  // A two-alive-interval pending with grow segments and a buffered
  // record, the shape the planner emits for a CMP numeric split.
  Pending p;
  p.attr = 2;
  p.alive = {3, 6};
  p.segments.resize(3);
  const int nc = ds_.schema().num_classes();
  const int edges[] = {0, 3, 6, grids_[2].num_intervals()};
  for (int s = 0; s < 3; ++s) {
    p.segments[s].counts.assign(nc, 0);
    p.segments[s].range_lo = edges[s];
    p.segments[s].range_hi = edges[s + 1];
    p.segments[s].plan = PlanKind::kGrow;
    p.segments[s].bundle = HistBundle::MakeUnivariate(ds_.schema(), grids_);
    p.segments[s].bundle_fresh = true;
  }
  WireWriter skel;
  wire::WritePendingSkeleton(&skel, p);
  WireReader r(skel.buffer());
  std::unique_ptr<Pending> back;
  ASSERT_TRUE(wire::ReadPendingSkeleton(&r, ds_.schema(), grids_, nc,
                                        &back));
  EXPECT_TRUE(r.AtEnd());
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->attr, p.attr);
  EXPECT_EQ(back->alive, p.alive);
  ASSERT_EQ(back->segments.size(), p.segments.size());
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(back->segments[s].range_lo, p.segments[s].range_lo);
    EXPECT_EQ(back->segments[s].range_hi, p.segments[s].range_hi);
    EXPECT_EQ(back->segments[s].plan, p.segments[s].plan);
  }

  // Accumulate state into the reconstructed pending, ship it, and merge
  // it into the original with a rid rebase.
  back->buffer.push_back(BufferedRecord{/*rid=*/7, /*value=*/41.5,
                                        /*label=*/1});
  back->segments[1].counts[0] = 5;
  WireWriter state;
  wire::WritePendingState(&state, *back);
  WireReader sr(state.buffer());
  ASSERT_TRUE(wire::ReadPendingStateInto(&sr, &p, /*rid_base=*/1000));
  EXPECT_TRUE(sr.AtEnd());
  ASSERT_EQ(p.buffer.size(), 1u);
  EXPECT_EQ(p.buffer[0].rid, 1007);  // 7 + rid_base
  EXPECT_EQ(p.buffer[0].value, 41.5);
  EXPECT_EQ(p.segments[1].counts[0], 5);
}

// Every strict prefix of a valid payload must be rejected without
// crashing — the "worker died mid-frame" byte streams.
TEST_F(WireStructTest, EveryPrefixTruncationFailsCleanly) {
  WireWriter w;
  wire::WriteGrids(&w, ds_.schema(), grids_);
  const Split split = Split::Categorical(1, {1, 0, 1});
  wire::WriteSplit(&w, split);
  HistBundle bundle = HistBundle::MakeUnivariate(ds_.schema(), grids_);
  for (RecordId rec = 0; rec < 100; ++rec) bundle.Add(ds_, grids_, rec);
  wire::WriteBundleShape(&w, bundle);
  wire::WriteBundleCounts(&w, bundle);
  const std::string& full = w.buffer();

  for (size_t cut = 0; cut < full.size(); ++cut) {
    WireReader r(full.data(), cut);
    std::vector<IntervalGrid> grids_back;
    Split split_back;
    HistBundle bundle_back;
    const bool all =
        wire::ReadGrids(&r, ds_.schema(), &grids_back) &&
        wire::ReadSplit(&r, &split_back) &&
        wire::ReadBundleShape(&r, ds_.schema(), grids_, &bundle_back) &&
        wire::ReadBundleCountsInto(&r, &bundle_back) && r.AtEnd();
    EXPECT_FALSE(all) << "prefix of " << cut << " bytes parsed as complete";
  }

  // The untruncated payload parses, so the sweep above proves rejection
  // comes from the truncation, not from a broken serializer.
  WireReader r(full);
  std::vector<IntervalGrid> grids_back;
  Split split_back;
  HistBundle bundle_back;
  ASSERT_TRUE(wire::ReadGrids(&r, ds_.schema(), &grids_back));
  ASSERT_TRUE(wire::ReadSplit(&r, &split_back));
  ASSERT_TRUE(wire::ReadBundleShape(&r, ds_.schema(), grids_, &bundle_back));
  ASSERT_TRUE(wire::ReadBundleCountsInto(&r, &bundle_back));
  EXPECT_TRUE(r.AtEnd());
}

// Corrupt counts must not trigger runaway allocations: a tree claiming
// 2^40 nodes has to fail on bounds, not bad_alloc.
TEST_F(WireStructTest, HugeCountsAreRejectedWithoutAllocating) {
  WireWriter w;
  w.PutVar(1ull << 40);  // node count
  WireReader r(w.buffer());
  DecisionTree tree(ds_.schema());
  EXPECT_FALSE(wire::ReadTree(&r, &tree));
  EXPECT_LE(tree.num_nodes(), 1);
}

}  // namespace
}  // namespace cmp
