#include "gini/estimator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "gini/gini.h"
#include "hist/histogram1d.h"

namespace cmp {
namespace {

// Numeric difference quotient of BoundaryGini with respect to one class's
// below count, for validating the analytic gradient.
double NumericGradient(std::vector<int64_t> below,
                       const std::vector<int64_t>& totals, int cls) {
  const double g0 = BoundaryGini(below, totals);
  below[cls] += 1;
  const double g1 = BoundaryGini(below, totals);
  return g1 - g0;
}

TEST(GiniGradient, MatchesDifferenceQuotient) {
  // With large counts the unit-step difference quotient approximates the
  // derivative well.
  const std::vector<int64_t> totals = {100000, 80000, 50000};
  const std::vector<int64_t> below = {40000, 10000, 25000};
  for (int cls = 0; cls < 3; ++cls) {
    const double analytic = GiniGradient(below, totals, cls);
    const double numeric = NumericGradient(below, totals, cls);
    EXPECT_NEAR(analytic, numeric, 5e-7) << "class " << cls;
  }
}

TEST(GiniGradient, ZeroAtDegenerateBoundaries) {
  const std::vector<int64_t> totals = {10, 10};
  const std::vector<int64_t> none = {0, 0};
  EXPECT_DOUBLE_EQ(GiniGradient(none, totals, 0), 0.0);
  const std::vector<int64_t> all = {10, 10};
  EXPECT_DOUBLE_EQ(GiniGradient(all, totals, 1), 0.0);
}

TEST(EstimateIntervalGini, NeverAboveBoundaryGinis) {
  const std::vector<int64_t> totals = {50, 50};
  const std::vector<int64_t> below_left = {20, 10};
  const std::vector<int64_t> interval = {5, 15};
  std::vector<int64_t> below_right = {25, 25};
  const double est = EstimateIntervalGini(below_left, interval, totals);
  EXPECT_LE(est, BoundaryGini(below_left, totals) + 1e-12);
  EXPECT_LE(est, BoundaryGini(below_right, totals) + 1e-12);
}

TEST(EstimateIntervalGini, EmptyIntervalIsBoundaryMin) {
  const std::vector<int64_t> totals = {50, 50};
  const std::vector<int64_t> below_left = {20, 10};
  const std::vector<int64_t> interval = {0, 0};
  const double est = EstimateIntervalGini(below_left, interval, totals);
  EXPECT_DOUBLE_EQ(est, BoundaryGini(below_left, totals));
}

// Property: the estimate is a LOWER bound on the gini at every possible
// split point inside the interval, for every arrangement of the
// interval's records. We verify against random orderings.
class EstimatorLowerBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorLowerBoundTest, LowerBoundsAllOrderings) {
  Rng rng(GetParam());
  const int nc = 2 + static_cast<int>(rng.UniformInt(0, 2));
  std::vector<int64_t> totals(nc);
  std::vector<int64_t> below_left(nc);
  std::vector<int64_t> interval(nc);
  for (int c = 0; c < nc; ++c) {
    below_left[c] = rng.UniformInt(0, 40);
    interval[c] = rng.UniformInt(0, 30);
    totals[c] = below_left[c] + interval[c] + rng.UniformInt(0, 40);
  }
  const double est = EstimateIntervalGini(below_left, interval, totals);

  // Try many random orderings of the interval's records; every prefix
  // induces a split point whose gini must be >= est (within fp noise).
  std::vector<ClassId> records;
  for (int c = 0; c < nc; ++c) {
    records.insert(records.end(), interval[c], c);
  }
  for (int trial = 0; trial < 50; ++trial) {
    for (size_t i = records.size(); i > 1; --i) {
      std::swap(records[i - 1], records[rng.UniformInt(0, i - 1)]);
    }
    std::vector<int64_t> below = below_left;
    for (ClassId c : records) {
      below[c]++;
      EXPECT_GE(BoundaryGini(below, totals), est - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorLowerBoundTest,
                         ::testing::Range(1, 21));

TEST(AnalyzeAttribute, FindsObviousBoundarySplit) {
  // Two intervals, perfectly separated classes: the only boundary is the
  // perfect split.
  Histogram1D hist(2, 2);
  hist.Add(0, 0, 10);
  hist.Add(1, 1, 10);
  const AttrAnalysis an = AnalyzeAttribute(hist);
  ASSERT_EQ(an.boundary_gini.size(), 1u);
  EXPECT_DOUBLE_EQ(an.boundary_gini[0], 0.0);
  EXPECT_EQ(an.best_boundary, 0);
  EXPECT_DOUBLE_EQ(an.gini_min, 0.0);
}

TEST(AnalyzeAttribute, EstimateBelowBoundaryMinForHiddenSplit) {
  // A mixed interval hides a perfect split inside: boundaries see a
  // mixture, but the estimate must drop below the boundary minimum.
  Histogram1D hist(3, 2);
  hist.Add(0, 0, 10);
  hist.Add(1, 0, 5);
  hist.Add(1, 1, 5);
  hist.Add(2, 1, 10);
  const AttrAnalysis an = AnalyzeAttribute(hist);
  EXPECT_LT(an.interval_est[1], an.gini_min);
  const std::vector<int> alive = SelectAliveIntervals(an, 2);
  ASSERT_FALSE(alive.empty());
  EXPECT_EQ(alive[0], 1);
}

TEST(AnalyzeAttribute, SingleIntervalHasNoBoundaries) {
  Histogram1D hist(1, 2);
  hist.Add(0, 0, 5);
  hist.Add(0, 1, 5);
  const AttrAnalysis an = AnalyzeAttribute(hist);
  EXPECT_TRUE(an.boundary_gini.empty());
  EXPECT_EQ(an.best_boundary, -1);
}

TEST(SelectAliveIntervals, CapsAtMaxAlive) {
  AttrAnalysis an;
  an.gini_min = 0.5;
  an.interval_est = {0.1, 0.2, 0.3, 0.4, 0.45};
  an.boundary_gini = {0.5, 0.5, 0.5, 0.5};
  const std::vector<int> alive = SelectAliveIntervals(an, 2);
  ASSERT_EQ(alive.size(), 2u);
  EXPECT_EQ(alive[0], 0);
  EXPECT_EQ(alive[1], 1);
}

TEST(SelectAliveIntervals, EmptyWhenNothingBeatsBoundary) {
  AttrAnalysis an;
  an.gini_min = 0.2;
  an.interval_est = {0.2, 0.3, 0.25};
  const std::vector<int> alive = SelectAliveIntervals(an, 2);
  EXPECT_TRUE(alive.empty());
}

}  // namespace
}  // namespace cmp
