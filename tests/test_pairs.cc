#include "cmp/pairs.h"

#include <gtest/gtest.h>

#include "cmp/cmp.h"
#include "common/random.h"
#include "datagen/agrawal.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

TEST(PairDiscovery, FindsFunctionFRelation) {
  // Function f's boundary salary + commission = 100,000 involves the
  // (salary, commission) pair.
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kFunctionF;
  gen.num_records = 20000;
  gen.seed = 311;
  const Dataset ds = GenerateAgrawal(gen);
  const std::vector<PairRelation> rels = DiscoverLinearRelations(ds);
  ASSERT_FALSE(rels.empty());
  const AttrId salary = ds.schema().FindAttr("salary");
  const AttrId commission = ds.schema().FindAttr("commission");
  bool found = false;
  for (const PairRelation& rel : rels) {
    if ((rel.x == salary && rel.y == commission) ||
        (rel.x == commission && rel.y == salary)) {
      found = true;
      EXPECT_LT(rel.gini, rel.base_gini * 0.9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(PairDiscovery, RankedBestFirst) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF7;
  gen.num_records = 20000;
  gen.seed = 313;
  const Dataset ds = GenerateAgrawal(gen);
  const std::vector<PairRelation> rels = DiscoverLinearRelations(ds);
  for (size_t i = 1; i < rels.size(); ++i) {
    EXPECT_LE(rels[i - 1].gini, rels[i].gini);
  }
}

TEST(PairDiscovery, NoRelationsOnPureNoise) {
  Schema schema({{"x", AttrKind::kNumeric, 0},
                 {"y", AttrKind::kNumeric, 0},
                 {"z", AttrKind::kNumeric, 0}},
                {"a", "b"});
  Dataset ds(schema);
  Rng rng(315);
  for (int i = 0; i < 10000; ++i) {
    ds.Append({rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)}, {},
              static_cast<ClassId>(rng.UniformInt(0, 1)));
  }
  const std::vector<PairRelation> rels = DiscoverLinearRelations(ds);
  EXPECT_TRUE(rels.empty());
}

TEST(PairDiscovery, HandlesDegenerateInputs) {
  // One numeric attribute: no pairs.
  Schema schema({{"x", AttrKind::kNumeric, 0}}, {"a", "b"});
  Dataset ds(schema);
  ds.Append({1.0}, {}, 0);
  EXPECT_TRUE(DiscoverLinearRelations(ds).empty());
  // Empty dataset.
  const Dataset empty(AgrawalSchema());
  EXPECT_TRUE(DiscoverLinearRelations(empty).empty());
}

TEST(PairDiscovery, ChargesTwoScans) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kFunctionF;
  gen.num_records = 5000;
  gen.seed = 317;
  const Dataset ds = GenerateAgrawal(gen);
  BuildStats stats;
  ScanTracker tracker(&stats);
  DiscoverLinearRelations(ds, {}, &tracker);
  EXPECT_EQ(stats.dataset_scans, 2);  // quantiling + matrix fill
}

TEST(AllPairsRoot, HiddenPairFoundOnlyWithExtension) {
  // Construct a concept whose linear structure lives between two
  // attributes that the regular shared-X matrices are unlikely to pair
  // (the discriminative pair involves neither the default X nor the
  // usual est-argmin): label = (hvalue + 4*loan > 1.2M). Neither hvalue
  // nor loan splits well univariately.
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF1;  // labels rewritten below
  gen.num_records = 30000;
  gen.seed = 319;
  const Dataset base = GenerateAgrawal(gen);
  Dataset ds(base.schema());
  const AttrId hvalue = base.schema().FindAttr("hvalue");
  const AttrId loan = base.schema().FindAttr("loan");
  std::vector<double> nvals;
  std::vector<int32_t> cvals;
  for (RecordId r = 0; r < base.num_records(); ++r) {
    nvals.clear();
    cvals.clear();
    for (AttrId a = 0; a < base.num_attrs(); ++a) {
      if (base.schema().is_numeric(a)) {
        nvals.push_back(base.numeric(a, r));
      } else {
        cvals.push_back(base.categorical(a, r));
      }
    }
    const ClassId label =
        base.numeric(hvalue, r) + 4.0 * base.numeric(loan, r) > 1.2e6 ? 0
                                                                      : 1;
    ds.Append(nvals, cvals, label);
  }

  CmpOptions with = CmpFullOptions();
  with.all_pairs_root = true;
  CmpBuilder builder(with);
  const BuildResult result = builder.Build(ds);
  ASSERT_FALSE(result.tree.node(0).is_leaf);
  // The root must be a linear split over the hidden pair.
  const Split& root = result.tree.node(0).split;
  EXPECT_EQ(root.kind, Split::Kind::kLinear);
  const bool pair_match = (root.attr == hvalue && root.attr2 == loan) ||
                          (root.attr == loan && root.attr2 == hvalue);
  EXPECT_TRUE(pair_match);
  EXPECT_GT(Evaluate(result.tree, ds).Accuracy(), 0.97);
}

}  // namespace
}  // namespace cmp
