// The attribute-major batch kernels must reproduce the record-major
// counts EXACTLY — same integer cells, any batch split — because the
// scan path swaps them in under the bit-identical-trees contract. Tested
// bottom-up: raw kernels vs direct counting (both code widths), then
// HistBundle::AccumulateBatch vs Add, then whole builds across the
// {codes, subtraction} toggles.
#include "hist/hist_kernels.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cmp/bundle.h"
#include "cmp/cmp.h"
#include "common/random.h"
#include "datagen/agrawal.h"
#include "hist/grids.h"
#include "tree/serialize.h"

namespace cmp {
namespace {

// Encodes a full dataset the way the builder does after grid
// construction: numeric columns as interval indices, categorical
// columns as values, labels riding along.
BinCodeCache EncodeDataset(const Dataset& ds,
                           const std::vector<IntervalGrid>& grids,
                           int max_intervals) {
  BinCodeCache codes(ds.schema(), ds.num_records(), max_intervals);
  EXPECT_TRUE(codes.enabled());
  for (AttrId a = 0; a < ds.num_attrs(); ++a) {
    if (ds.schema().is_numeric(a)) {
      codes.EncodeNumericColumn(a, grids[a], ds.numeric_column(a));
    } else {
      codes.EncodeCategoricalColumn(a, ds.categorical_column(a));
    }
  }
  codes.SetLabels(ds.labels());
  return codes;
}

class HistKernelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AgrawalOptions gen;
    gen.function = AgrawalFunction::kF3;  // numeric + categorical splits
    gen.num_records = 3000;
    gen.seed = 149;
    ds_ = GenerateAgrawal(gen);
    grids_ = ComputeEqualDepthGrids(ds_, 20, nullptr);
    codes_ = EncodeDataset(ds_, grids_, 20);
    // An uneven subset of the records, in the ascending order a scan
    // delivers them.
    Rng rng(151);
    for (RecordId r = 0; r < ds_.num_records(); ++r) {
      if (rng.UniformDouble() < 0.6) rids_.push_back(r);
    }
  }

  void ExpectSameCells(const HistBundle& got, const HistBundle& want) {
    for (AttrId a = 0; a < ds_.num_attrs(); ++a) {
      const Histogram1D hg = got.HistFor(a);
      const Histogram1D hw = want.HistFor(a);
      ASSERT_EQ(hg.num_intervals(), hw.num_intervals()) << "attr " << a;
      for (int i = 0; i < hg.num_intervals(); ++i) {
        for (ClassId c = 0; c < hg.num_classes(); ++c) {
          ASSERT_EQ(hg.count(i, c), hw.count(i, c))
              << "attr " << a << " row " << i << " class " << c;
        }
      }
    }
  }

  Dataset ds_;
  std::vector<IntervalGrid> grids_;
  BinCodeCache codes_;
  std::vector<RecordId> rids_;
};

TEST_F(HistKernelsTest, Accumulate1DMatchesDirectCounts) {
  const AttrId salary = ds_.schema().FindAttr("salary");
  KernelScratch scratch;
  GatherLabels(codes_.labels(), rids_.data(), rids_.size(), &scratch.labels);

  Histogram1D hist(grids_[salary].num_intervals(), 2);
  AccumulateHist1D(codes_.view(salary), scratch.labels.data(), rids_.data(),
                   rids_.size(), 2, hist.data());

  Histogram1D direct(grids_[salary].num_intervals(), 2);
  for (const RecordId r : rids_) {
    direct.Add(grids_[salary].IntervalOf(ds_.numeric(salary, r)),
               ds_.label(r));
  }
  for (int i = 0; i < hist.num_intervals(); ++i) {
    for (ClassId c = 0; c < 2; ++c) {
      EXPECT_EQ(hist.count(i, c), direct.count(i, c)) << "row " << i;
    }
  }
}

TEST_F(HistKernelsTest, Accumulate1DSixteenBitCodes) {
  // Force the uint16_t kernel instantiation with a >256-interval grid.
  std::vector<double> cuts;
  for (int i = 0; i < 300; ++i) cuts.push_back(static_cast<double>(i));
  const IntervalGrid grid =
      IntervalGrid::FromBoundaries(std::move(cuts), 0.0, 300.0);
  Rng rng(157);
  const int64_t n = 2000;
  std::vector<double> column(n);
  std::vector<ClassId> labels(n);
  for (int64_t i = 0; i < n; ++i) {
    column[i] = rng.Uniform(-2.0, 302.0);
    labels[i] = rng.UniformInt(0, 1);
  }
  Schema schema({{"x", AttrKind::kNumeric, 0}}, {"neg", "pos"});
  BinCodeCache codes(schema, n, /*max_intervals=*/1024);
  ASSERT_TRUE(codes.enabled());
  codes.EncodeNumericColumn(0, grid, column);
  codes.SetLabels(labels);
  ASSERT_EQ(codes.width(0), 2);

  std::vector<RecordId> all(n);
  for (int64_t i = 0; i < n; ++i) all[i] = i;
  KernelScratch scratch;
  GatherLabels(codes.labels(), all.data(), all.size(), &scratch.labels);
  Histogram1D hist(grid.num_intervals(), 2);
  AccumulateHist1D(codes.view(0), scratch.labels.data(), all.data(),
                   all.size(), 2, hist.data());
  Histogram1D direct(grid.num_intervals(), 2);
  for (int64_t i = 0; i < n; ++i) {
    direct.Add(grid.IntervalOf(column[i]), labels[i]);
  }
  for (int i = 0; i < hist.num_intervals(); ++i) {
    for (ClassId c = 0; c < 2; ++c) {
      EXPECT_EQ(hist.count(i, c), direct.count(i, c)) << "row " << i;
    }
  }
}

TEST_F(HistKernelsTest, BatchMatchesRecordMajorUnivariate) {
  HistBundle batched = HistBundle::MakeUnivariate(ds_.schema(), grids_);
  HistBundle serial = HistBundle::MakeUnivariate(ds_.schema(), grids_);
  for (const RecordId r : rids_) serial.Add(ds_, grids_, r);
  // Flush in two uneven batches — cell counts must not care where the
  // batch boundary falls.
  KernelScratch scratch;
  const size_t cut = rids_.size() / 3;
  batched.AccumulateBatch(codes_, rids_.data(), cut, &scratch);
  batched.AccumulateBatch(codes_, rids_.data() + cut, rids_.size() - cut,
                          &scratch);
  ExpectSameCells(batched, serial);
}

TEST_F(HistKernelsTest, BatchMatchesRecordMajorBivariate) {
  const AttrId x = ds_.schema().FindAttr("age");
  const int qx = grids_[x].num_intervals();
  HistBundle batched =
      HistBundle::MakeBivariate(ds_.schema(), grids_, x, 0, qx);
  HistBundle serial =
      HistBundle::MakeBivariate(ds_.schema(), grids_, x, 0, qx);
  for (const RecordId r : rids_) serial.Add(ds_, grids_, r);
  KernelScratch scratch;
  batched.AccumulateBatch(codes_, rids_.data(), rids_.size(), &scratch);
  ExpectSameCells(batched, serial);
}

TEST_F(HistKernelsTest, BatchMatchesRecordMajorBivariateSubRange) {
  // A child bundle covering only X-intervals [x_lo, x_hi): GatherXRows
  // must rebase the X codes by x_lo exactly like Add does.
  const AttrId x = ds_.schema().FindAttr("age");
  const int qx = grids_[x].num_intervals();
  const int x_lo = qx / 4;
  const int x_hi = qx - qx / 4;
  std::vector<RecordId> inside;
  for (const RecordId r : rids_) {
    const int gx = grids_[x].IntervalOf(ds_.numeric(x, r));
    if (gx >= x_lo && gx < x_hi) inside.push_back(r);
  }
  ASSERT_FALSE(inside.empty());
  HistBundle batched =
      HistBundle::MakeBivariate(ds_.schema(), grids_, x, x_lo, x_hi);
  HistBundle serial =
      HistBundle::MakeBivariate(ds_.schema(), grids_, x, x_lo, x_hi);
  for (const RecordId r : inside) serial.Add(ds_, grids_, r);
  KernelScratch scratch;
  batched.AccumulateBatch(codes_, inside.data(), inside.size(), &scratch);
  ExpectSameCells(batched, serial);
}

TEST_F(HistKernelsTest, SubtractSameShapeEqualsDirectScanOfOtherChild) {
  // The sibling-subtraction identity: parent minus left child == right
  // child, as exact integer counts.
  const AttrId split_attr = ds_.schema().FindAttr("salary");
  const double cut = 65000.0;
  HistBundle parent = HistBundle::MakeUnivariate(ds_.schema(), grids_);
  HistBundle left = HistBundle::MakeUnivariate(ds_.schema(), grids_);
  HistBundle right = HistBundle::MakeUnivariate(ds_.schema(), grids_);
  for (RecordId r = 0; r < ds_.num_records(); ++r) {
    parent.Add(ds_, grids_, r);
    (ds_.numeric(split_attr, r) <= cut ? left : right).Add(ds_, grids_, r);
  }
  ASSERT_TRUE(parent.SameShapeAs(left));
  parent.SubtractSameShape(left);
  ExpectSameCells(parent, right);
}

// Build-level identity: the tree bytes must not depend on which scan
// path ran. Every combination of {code cache, sibling subtraction} and
// thread count must reproduce the plain record-major single-thread tree,
// for every CMP variant.
TEST(HistKernelsBuild, TreeBytesInvariantAcrossScanPaths) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF6;  // pendings + linear splits
  gen.num_records = 6000;
  gen.seed = 163;
  const Dataset train = GenerateAgrawal(gen);

  for (CmpOptions base :
       {CmpSOptions(), CmpBOptions(), CmpFullOptions()}) {
    base.base.in_memory_threshold = 256;  // keep the collect path in play
    CmpOptions plain = base;
    plain.bin_code_cache = false;
    plain.sibling_subtraction = false;
    const std::string reference =
        SerializeTree(CmpBuilder(plain).Build(train).tree);
    ASSERT_FALSE(reference.empty());
    for (const bool codes : {false, true}) {
      for (const bool subtract : {false, true}) {
        for (const int threads : {1, 4}) {
          CmpOptions o = base;
          o.bin_code_cache = codes;
          o.sibling_subtraction = subtract;
          o.base.num_threads = threads;
          o.scan_shards = threads;
          EXPECT_EQ(SerializeTree(CmpBuilder(o).Build(train).tree),
                    reference)
              << "codes=" << codes << " subtract=" << subtract
              << " threads=" << threads;
        }
      }
    }
  }
}

}  // namespace
}  // namespace cmp
