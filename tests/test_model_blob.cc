// The .cmpb model blob: round-trip byte-equality between the in-memory
// compile path and the on-disk file, mmap loading, ensemble blobs, and
// rejection of corrupt / truncated / wrong-version input. The byte-flip
// sweep at the end asserts the load-time validator's core promise: no
// single-byte corruption of a valid blob can crash the loader or the
// descent, only produce a clean error (or a still-valid model).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/schema.h"
#include "infer/batch_predictor.h"
#include "infer/compiled_tree.h"
#include "infer/ensemble.h"
#include "infer/model_io.h"
#include "io/model_blob.h"
#include "tree/tree.h"

namespace cmp {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Schema MakeSchema() {
  std::vector<AttrInfo> attrs = {
      {"n0", AttrKind::kNumeric, 0},
      {"c0", AttrKind::kCategorical, 3},
      {"n1", AttrKind::kNumeric, 0},
  };
  return Schema(std::move(attrs), {"alpha", "beta"});
}

// A small tree exercising every split kind: numeric root, categorical
// and linear internals, four leaves.
DecisionTree MakeTree(double root_threshold = 1.5) {
  DecisionTree tree(MakeSchema());
  TreeNode root;
  root.is_leaf = false;
  root.split = Split::Numeric(0, root_threshold);
  tree.AddNode(root);  // 0

  TreeNode cat;
  cat.is_leaf = false;
  cat.split = Split::Categorical(1, {1, 0, 1});
  cat.depth = 1;
  tree.AddNode(cat);  // 1

  TreeNode lin;
  lin.is_leaf = false;
  lin.split = Split::Linear(0, 2, 0.5, -1.0, 0.25);
  lin.depth = 1;
  tree.AddNode(lin);  // 2

  for (int i = 0; i < 4; ++i) {
    TreeNode leaf;
    leaf.is_leaf = true;
    leaf.leaf_class = i % 2;
    leaf.depth = 2;
    leaf.class_counts = {i % 2 == 0 ? int64_t{7} : int64_t{1},
                         i % 2 == 0 ? int64_t{2} : int64_t{9}};
    tree.AddNode(leaf);  // 3..6
  }
  tree.mutable_node(0).left = 1;
  tree.mutable_node(0).right = 2;
  tree.mutable_node(1).left = 3;
  tree.mutable_node(1).right = 4;
  tree.mutable_node(2).left = 5;
  tree.mutable_node(2).right = 6;
  return tree;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(is)),
                             std::istreambuf_iterator<char>());
  return bytes;
}

// A grid of probe rows covering both sides of every split.
std::vector<std::pair<std::vector<double>, std::vector<int32_t>>> ProbeRows() {
  std::vector<std::pair<std::vector<double>, std::vector<int32_t>>> rows;
  for (double n0 : {-2.0, 1.5, 3.0}) {
    for (int32_t c0 : {-1, 0, 1, 2, 5}) {
      for (double n1 : {-1.0, 0.0, 2.0}) {
        rows.push_back({{n0, 0.0, n1}, {0, c0, 0}});
      }
    }
  }
  return rows;
}

TEST(ModelBlob, CompileBytesEqualSavedFile) {
  const DecisionTree tree = MakeTree();
  const std::string path = TempPath("roundtrip.cmpb");
  std::string error;
  ASSERT_TRUE(SaveModelBlob({&tree}, path, &error)) << error;

  // The in-memory compile routes through the same packer, so its
  // backing storage must be byte-identical to the file.
  const CompiledTree compiled = CompiledTree::Compile(tree);
  ASSERT_NE(compiled.storage(), nullptr);
  const std::vector<uint8_t> file_bytes = ReadFile(path);
  ASSERT_EQ(file_bytes.size(), compiled.storage()->size());
  EXPECT_EQ(0, std::memcmp(file_bytes.data(), compiled.storage()->data(),
                           file_bytes.size()));
  std::remove(path.c_str());
}

TEST(ModelBlob, LoadedModelPredictsIdentically) {
  const DecisionTree tree = MakeTree();
  const std::string path = TempPath("identical.cmpb");
  std::string error;
  ASSERT_TRUE(SaveModelBlob({&tree}, path, &error)) << error;

  CompiledModel model;
  ASSERT_TRUE(LoadCompiledModel(path, &model, &error)) << error;
  ASSERT_EQ(model.num_trees(), 1);
  const CompiledTree direct = CompiledTree::Compile(tree);

  for (const auto& [numeric, categorical] : ProbeRows()) {
    EXPECT_EQ(direct.PredictRow(numeric.data(), categorical.data()),
              model.trees[0].PredictRow(numeric.data(), categorical.data()));
  }
  std::remove(path.c_str());
}

TEST(ModelBlob, MmapAndBufferedLoadsAgree) {
  const DecisionTree tree = MakeTree();
  const std::string path = TempPath("mmap.cmpb");
  std::string error;
  ASSERT_TRUE(SaveModelBlob({&tree}, path, &error)) << error;

  // Load() prefers mmap; FromBytes takes the ownership path. The parsed
  // views must agree byte for byte.
  std::shared_ptr<const ModelBlob> mapped = ModelBlob::Load(path, &error);
  ASSERT_NE(mapped, nullptr) << error;
  std::shared_ptr<const ModelBlob> owned =
      ModelBlob::FromBytes(ReadFile(path), &error);
  ASSERT_NE(owned, nullptr) << error;
  ASSERT_EQ(mapped->size(), owned->size());
  EXPECT_EQ(0, std::memcmp(mapped->data(), owned->data(), mapped->size()));
  EXPECT_EQ(mapped->sections().size(), owned->sections().size());

  CompiledModel from_map;
  ASSERT_TRUE(ModelFromBlob(mapped, &from_map, &error)) << error;
  std::remove(path.c_str());
  // The mapping must stay valid after unlink (POSIX keeps the pages).
  for (const auto& [numeric, categorical] : ProbeRows()) {
    from_map.trees[0].PredictRow(numeric.data(), categorical.data());
  }
}

TEST(ModelBlob, EnsembleBlobRoundTrips) {
  const DecisionTree t1 = MakeTree(1.5);
  const DecisionTree t2 = MakeTree(-0.5);
  const DecisionTree t3 = MakeTree(2.5);
  const std::string path = TempPath("ensemble.cmpb");
  std::string error;
  ASSERT_TRUE(SaveModelBlob({&t1, &t2, &t3}, path, &error)) << error;

  CompiledModel model;
  ASSERT_TRUE(LoadCompiledModel(path, &model, &error)) << error;
  ASSERT_EQ(model.num_trees(), 3);

  // Scoring through the blob-backed trees must match an ensemble
  // compiled straight from the DecisionTrees.
  const EnsemblePredictor from_blob(model.trees, VoteKind::kAverageProb);
  const EnsemblePredictor direct =
      EnsemblePredictor::Compile({t1, t2, t3}, VoteKind::kAverageProb);
  for (const auto& [numeric, categorical] : ProbeRows()) {
    const BatchResult a =
        from_blob.PredictRaw(numeric.data(), categorical.data(), 1);
    const BatchResult b =
        direct.PredictRaw(numeric.data(), categorical.data(), 1);
    EXPECT_EQ(a.labels[0], b.labels[0]);
  }
  std::remove(path.c_str());
}

TEST(ModelBlob, TreesMustShareSchema) {
  const DecisionTree t1 = MakeTree();
  DecisionTree other(Schema({{"x", AttrKind::kNumeric, 0}}, {"a", "b"}));
  TreeNode leaf;
  leaf.is_leaf = true;
  leaf.leaf_class = 0;
  other.AddNode(leaf);
  std::string error;
  EXPECT_TRUE(PackModelBlob({&t1, &other}, &error).empty());
  EXPECT_FALSE(error.empty());
}

TEST(ModelBlob, RejectsWrongMagicVersionEndianAndSize) {
  const DecisionTree tree = MakeTree();
  std::string error;
  const std::vector<uint8_t> good = PackModelBlob({&tree}, &error);
  ASSERT_FALSE(good.empty()) << error;
  ASSERT_NE(ModelBlob::FromBytes(good, &error), nullptr) << error;

  {
    std::vector<uint8_t> bad = good;
    bad[0] = 'X';
    EXPECT_EQ(ModelBlob::FromBytes(bad, &error), nullptr);
    EXPECT_NE(error.find("magic"), std::string::npos);
  }
  {
    std::vector<uint8_t> bad = good;
    bad[4] = 0xee;  // version
    EXPECT_EQ(ModelBlob::FromBytes(bad, &error), nullptr);
    EXPECT_NE(error.find("version"), std::string::npos);
  }
  {
    std::vector<uint8_t> bad = good;
    std::swap(bad[8], bad[11]);  // endian probe, byte-reversed
    EXPECT_EQ(ModelBlob::FromBytes(bad, &error), nullptr);
    EXPECT_NE(error.find("endian"), std::string::npos);
  }
  {
    std::vector<uint8_t> bad = good;
    bad.push_back(0);  // total-size field no longer matches
    EXPECT_EQ(ModelBlob::FromBytes(bad, &error), nullptr);
  }
}

TEST(ModelBlob, RejectsEveryTruncation) {
  const DecisionTree tree = MakeTree();
  std::string error;
  const std::vector<uint8_t> good = PackModelBlob({&tree}, &error);
  ASSERT_FALSE(good.empty()) << error;

  for (size_t len = 0; len < good.size(); ++len) {
    std::vector<uint8_t> cut(good.begin(), good.begin() + len);
    EXPECT_EQ(ModelBlob::FromBytes(std::move(cut), &error), nullptr)
        << "prefix of " << len << " bytes parsed";
  }
}

TEST(ModelBlob, TruncatedFileFailsCleanly) {
  const DecisionTree tree = MakeTree();
  const std::string path = TempPath("truncated.cmpb");
  std::string error;
  ASSERT_TRUE(SaveModelBlob({&tree}, path, &error)) << error;
  const std::vector<uint8_t> good = ReadFile(path);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(good.data()),
           static_cast<std::streamsize>(good.size() / 2));
  os.close();
  CompiledModel model;
  EXPECT_FALSE(LoadCompiledModel(path, &model, &error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(ModelBlob, RejectsBackwardChildPointer) {
  const DecisionTree tree = MakeTree();
  std::string error;
  std::vector<uint8_t> bytes = PackModelBlob({&tree}, &error);
  std::shared_ptr<const ModelBlob> blob =
      ModelBlob::FromBytes(bytes, &error);
  ASSERT_NE(blob, nullptr) << error;
  const BlobSection* children = blob->Find(0, SectionKind::kChildren);
  ASSERT_NE(children, nullptr);

  // Point the root's left child back at the root: the validator must
  // refuse (descent would loop forever otherwise).
  int32_t zero = 0;
  std::memcpy(bytes.data() + children->offset, &zero, sizeof(zero));
  std::shared_ptr<const ModelBlob> evil =
      ModelBlob::FromBytes(std::move(bytes), &error);
  ASSERT_NE(evil, nullptr);  // container is fine; semantics are not
  CompiledModel model;
  EXPECT_FALSE(ModelFromBlob(evil, &model, &error));
  EXPECT_NE(error.find("forward"), std::string::npos) << error;
}

TEST(ModelBlob, SingleByteCorruptionNeverCrashes) {
  const DecisionTree tree = MakeTree();
  std::string error;
  const std::vector<uint8_t> good = PackModelBlob({&tree}, &error);
  ASSERT_FALSE(good.empty()) << error;
  const auto rows = ProbeRows();

  // Flip every byte in turn. Each mutant must either be rejected with a
  // clean error or load into a model whose descent stays in bounds
  // (ASan/UBSan turn a violation into a test failure).
  for (size_t at = 0; at < good.size(); ++at) {
    std::vector<uint8_t> mutant = good;
    mutant[at] ^= 0xff;
    std::shared_ptr<const ModelBlob> blob =
        ModelBlob::FromBytes(std::move(mutant), &error);
    if (blob == nullptr) continue;
    CompiledModel model;
    if (!ModelFromBlob(blob, &model, &error)) continue;
    for (const auto& [numeric, categorical] : rows) {
      for (const CompiledTree& t : model.trees) {
        t.PredictRow(numeric.data(), categorical.data());
      }
    }
  }
}

}  // namespace
}  // namespace cmp
