// Behavior tests of CMP's internal machinery, observed through its cost
// counters and tree output: deferred-resolution buffering, the
// degenerate-resolution fallback, discretization kinds, the all-pairs
// root option, and the equal-width grid path.

#include <gtest/gtest.h>

#include "cmp/cmp.h"
#include "common/random.h"
#include "datagen/agrawal.h"
#include "exact/exact.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

Dataset MakeData(AgrawalFunction f, int64_t n, uint64_t seed) {
  AgrawalOptions gen;
  gen.function = f;
  gen.num_records = n;
  gen.seed = seed;
  return GenerateAgrawal(gen);
}

TEST(CmpInternals, PendingSplitsBufferRecords) {
  // Deferred resolution must set aside some records (the alive-interval
  // buffers) but far fewer than the dataset per scan.
  const Dataset train = MakeData(AgrawalFunction::kF2, 30000, 601);
  CmpOptions o = CmpSOptions();
  o.base.in_memory_threshold = 0;
  CmpBuilder builder(o);
  const BuildResult result = builder.Build(train);
  EXPECT_GT(result.stats.buffered_records, 0);
  // With 100 intervals an alive interval holds ~1-2% of a node, so the
  // total buffered volume stays well below one full pass per level.
  EXPECT_LT(result.stats.buffered_records,
            result.stats.dataset_scans * train.num_records() / 4);
}

TEST(CmpInternals, RootAliveCountWithinMaxAlive) {
  const Dataset train = MakeData(AgrawalFunction::kF2, 20000, 603);
  for (const int max_alive : {1, 2, 3}) {
    CmpOptions o = CmpSOptions();
    o.max_alive = max_alive;
    CmpBuilder builder(o);
    const BuildResult result = builder.Build(train);
    EXPECT_LE(result.stats.root_alive_intervals, max_alive);
  }
}

TEST(CmpInternals, DegenerateAttributeFallsBackGracefully) {
  // A dataset where one attribute is a giant tie bucket correlated with
  // the label enough to be tempting: the builder must not leave large
  // impure leaves behind (the collect fallback finishes them exactly).
  Schema schema({{"spike", AttrKind::kNumeric, 0},
                 {"signal", AttrKind::kNumeric, 0}},
                {"a", "b"});
  Dataset ds(schema);
  Rng rng(605);
  for (int i = 0; i < 20000; ++i) {
    const double signal = rng.Uniform(0, 1);
    // spike: 70% exactly zero, else uniform; label depends on signal.
    const double spike = rng.Bernoulli(0.7) ? 0.0 : rng.Uniform(0, 1);
    ds.Append({spike, signal}, {}, signal > 0.5 ? 0 : 1);
  }
  CmpBuilder builder(CmpSOptions());
  const BuildResult result = builder.Build(ds);
  EXPECT_GT(Evaluate(result.tree, ds).Accuracy(), 0.99);
}

TEST(CmpInternals, EqualWidthDiscretizationWorks) {
  const Dataset train = MakeData(AgrawalFunction::kF2, 20000, 607);
  CmpOptions o = CmpSOptions();
  o.discretization = Discretization::kEqualWidth;
  CmpBuilder builder(o);
  const BuildResult result = builder.Build(train);
  EXPECT_GT(Evaluate(result.tree, train).Accuracy(), 0.97);
  // Equal-width grids skip the quantiling sorts.
  CmpOptions depth = CmpSOptions();
  CmpBuilder depth_builder(depth);
  const BuildResult depth_result = depth_builder.Build(train);
  EXPECT_LT(result.stats.sort_comparisons,
            depth_result.stats.sort_comparisons);
}

TEST(CmpInternals, AllPairsRootOffByDefault) {
  // Function f's salary/commission pair IS visible to the regular
  // matrices, so enabling all_pairs_root must not change correctness;
  // the option's default is off.
  CmpOptions o = CmpFullOptions();
  EXPECT_FALSE(o.all_pairs_root);
  const Dataset train = MakeData(AgrawalFunction::kFunctionF, 20000, 609);
  o.all_pairs_root = true;
  CmpBuilder builder(o);
  const BuildResult result = builder.Build(train);
  EXPECT_GT(Evaluate(result.tree, train).Accuracy(), 0.98);
  ASSERT_FALSE(result.tree.node(0).is_leaf);
  EXPECT_EQ(result.tree.node(0).split.kind, Split::Kind::kLinear);
}

TEST(CmpInternals, ScanCountGrowsSublinearlyWithDepth) {
  // CMP-B's multi-level growth: scans must stay below depth+2 on a
  // workload with X-axis-friendly structure.
  const Dataset train = MakeData(AgrawalFunction::kF2, 50000, 611);
  CmpBuilder builder(CmpBOptions());
  const BuildResult result = builder.Build(train);
  EXPECT_LE(result.stats.dataset_scans, result.stats.tree_depth + 2);
}

TEST(CmpInternals, ReadOnlyDataset) {
  // CMP never modifies the training set: two consecutive builds on the
  // same data produce identical trees and identical counters.
  const Dataset train = MakeData(AgrawalFunction::kF7, 15000, 613);
  CmpBuilder builder(CmpFullOptions());
  const BuildResult a = builder.Build(train);
  const BuildResult b = builder.Build(train);
  EXPECT_EQ(a.tree.num_nodes(), b.tree.num_nodes());
  EXPECT_EQ(a.stats.dataset_scans, b.stats.dataset_scans);
  EXPECT_EQ(a.stats.buffered_records, b.stats.buffered_records);
  for (RecordId r = 0; r < 100; ++r) {
    EXPECT_EQ(a.tree.Classify(train, r), b.tree.Classify(train, r));
  }
}

TEST(CmpInternals, BytesReadScaleWithScans) {
  const Dataset train = MakeData(AgrawalFunction::kF2, 20000, 615);
  CmpBuilder builder(CmpSOptions());
  const BuildResult result = builder.Build(train);
  // Every full scan reads the whole table.
  EXPECT_EQ(result.stats.bytes_read,
            result.stats.dataset_scans * train.TotalBytes());
}

TEST(CmpInternals, MemoryScalesWithIntervalCount) {
  const Dataset train = MakeData(AgrawalFunction::kF2, 30000, 617);
  CmpOptions small = CmpBOptions();
  small.intervals = 25;
  CmpOptions big = CmpBOptions();
  big.intervals = 200;
  CmpBuilder small_builder(small);
  CmpBuilder big_builder(big);
  EXPECT_LT(small_builder.Build(train).stats.peak_memory_bytes,
            big_builder.Build(train).stats.peak_memory_bytes);
}

}  // namespace
}  // namespace cmp
