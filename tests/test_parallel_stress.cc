// Randomized stress for the parallel training path: many small trees
// built concurrently — each builder with its own pool, and many
// builders sharing one injected pool — must all reproduce the tree a
// lone single-threaded build produces. Run under TSan/ASan in CI, this
// is the test that flushes out data races in the sharded scan, the
// frontier analysis fan-out, and the help-while-wait ParallelFor.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cmp/cmp.h"
#include "common/thread_pool.h"
#include "datagen/agrawal.h"
#include "tree/serialize.h"

namespace cmp {
namespace {

Dataset MakeData(AgrawalFunction f, int64_t n, uint64_t seed) {
  AgrawalOptions gen;
  gen.function = f;
  gen.num_records = n;
  gen.seed = seed;
  return GenerateAgrawal(gen);
}

CmpOptions SmallTreeOptions(CmpVariant variant, int threads) {
  CmpOptions o;
  o.variant = variant;
  o.base.num_threads = threads;
  o.scan_shards = threads;  // keep multi-shard merges live on small runners
  // A small threshold keeps the collect (exact-finish) machinery in
  // play even for these tiny datasets.
  o.base.in_memory_threshold = 256;
  return o;
}

struct StressCase {
  AgrawalFunction function;
  CmpVariant variant;
  uint64_t seed;
  int64_t rows;
};

// A deterministic mix of functions / variants / sizes; index i of the
// mix always describes the same build, so reference and stress runs
// agree on what tree i should be.
StressCase CaseFor(int i) {
  static const AgrawalFunction kFunctions[] = {
      AgrawalFunction::kF1, AgrawalFunction::kF2, AgrawalFunction::kF3,
      AgrawalFunction::kF6, AgrawalFunction::kF7};
  static const CmpVariant kVariants[] = {CmpVariant::kS, CmpVariant::kB,
                                         CmpVariant::kFull};
  StressCase c;
  c.function = kFunctions[i % 5];
  c.variant = kVariants[i % 3];
  c.seed = 1000 + static_cast<uint64_t>(i) * 7;
  c.rows = 600 + (i % 4) * 350;
  return c;
}

TEST(ParallelStress, ManyConcurrentBuildersMatchSerialReference) {
  constexpr int kBuilds = 24;
  constexpr int kUserThreads = 6;

  std::vector<Dataset> data;
  std::vector<std::string> reference(kBuilds);
  data.reserve(kBuilds);
  for (int i = 0; i < kBuilds; ++i) {
    const StressCase c = CaseFor(i);
    data.push_back(MakeData(c.function, c.rows, c.seed));
    CmpBuilder serial(SmallTreeOptions(c.variant, 1));
    reference[i] = SerializeTree(serial.Build(data[i]).tree);
  }

  // kUserThreads caller threads each build a slice of the trees, every
  // build itself fanning out over its own 3-worker pool.
  std::atomic<int> next{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  callers.reserve(kUserThreads);
  for (int t = 0; t < kUserThreads; ++t) {
    callers.emplace_back([&] {
      for (int i = next.fetch_add(1); i < kBuilds; i = next.fetch_add(1)) {
        const StressCase c = CaseFor(i);
        CmpBuilder builder(SmallTreeOptions(c.variant, 3));
        if (SerializeTree(builder.Build(data[i]).tree) != reference[i]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ParallelStress, ConcurrentBuildersSharingOnePool) {
  constexpr int kBuilds = 12;
  constexpr int kUserThreads = 4;

  std::vector<Dataset> data;
  std::vector<std::string> reference(kBuilds);
  data.reserve(kBuilds);
  for (int i = 0; i < kBuilds; ++i) {
    const StressCase c = CaseFor(i);
    data.push_back(MakeData(c.function, c.rows, c.seed));
    CmpBuilder serial(SmallTreeOptions(c.variant, 1));
    reference[i] = SerializeTree(serial.Build(data[i]).tree);
  }

  // One pool, many concurrent builds: ParallelFor must hold up under
  // concurrent task groups from unrelated callers (the training +
  // inference sharing scenario).
  ThreadPool shared(4);
  std::atomic<int> next{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  callers.reserve(kUserThreads);
  for (int t = 0; t < kUserThreads; ++t) {
    callers.emplace_back([&] {
      for (int i = next.fetch_add(1); i < kBuilds; i = next.fetch_add(1)) {
        const StressCase c = CaseFor(i);
        CmpBuilder builder(SmallTreeOptions(c.variant, 4), &shared);
        if (SerializeTree(builder.Build(data[i]).tree) != reference[i]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace cmp
