#include "tree/builder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "datagen/agrawal.h"
#include "tree/observer.h"

namespace cmp {
namespace {

Dataset SmallAgrawal(int64_t n = 2000, uint64_t seed = 901) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF1;
  gen.num_records = n;
  gen.seed = seed;
  return GenerateAgrawal(gen);
}

TEST(Registry, ListsEveryLibraryAlgorithmSorted) {
  const std::vector<std::string> names = RegisteredTreeBuilders();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected :
       {"clouds", "cmp", "cmp-b", "cmp-s", "exact", "rainforest", "sampled",
        "sliq", "sprint", "windowing"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(Registry, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeTreeBuilder("frobnicate"), nullptr);
  EXPECT_EQ(MakeTreeBuilder(""), nullptr);
  EXPECT_EQ(MakeTreeBuilder("CMP"), nullptr);  // names are lowercase
}

// Every registered algorithm constructs and trains through the one
// factory — the acceptance contract for registry-driven dispatch.
TEST(Registry, AllRegisteredBuildersTrain) {
  const Dataset ds = SmallAgrawal();
  for (const std::string& name : RegisteredTreeBuilders()) {
    std::unique_ptr<TreeBuilder> builder = MakeTreeBuilder(name);
    ASSERT_NE(builder, nullptr) << name;
    EXPECT_FALSE(builder->name().empty()) << name;
    const BuildResult result = builder->Build(ds);
    EXPECT_GE(result.tree.num_nodes(), 1) << name;
    const double acc = [&] {
      int64_t hits = 0;
      for (RecordId r = 0; r < ds.num_records(); ++r) {
        hits += result.tree.Classify(ds, r) == ds.label(r) ? 1 : 0;
      }
      return static_cast<double>(hits) / static_cast<double>(ds.num_records());
    }();
    EXPECT_GT(acc, 0.85) << name;
  }
}

TEST(Registry, ConfigForwardsOptions) {
  BuilderConfig config;
  config.base.prune = false;
  config.base.num_threads = 2;
  config.intervals = 25;
  for (const char* name : {"cmp", "cmp-s", "cmp-b", "clouds", "sprint"}) {
    std::unique_ptr<TreeBuilder> builder = MakeTreeBuilder(name, config);
    ASSERT_NE(builder, nullptr) << name;
    const BuildResult result = builder->Build(SmallAgrawal(1000, 903));
    EXPECT_GE(result.tree.num_nodes(), 1) << name;
  }
}

TEST(Registry, RegisteringOverridesAndDispatches) {
  // A stub that tags its name with the interval count it was given, to
  // prove the config reaches the factory.
  class Stub : public TreeBuilder {
   public:
    explicit Stub(int intervals) : intervals_(intervals) {}
    BuildResult Build(const Dataset& train) override {
      BuildResult r;
      r.tree = DecisionTree(train.schema());
      TreeNode leaf;
      leaf.class_counts.assign(train.schema().num_classes(), 0);
      leaf.leaf_class = 0;
      r.tree.AddNode(leaf);
      return r;
    }
    std::string name() const override {
      return "stub-" + std::to_string(intervals_);
    }

   private:
    int intervals_;
  };

  RegisterTreeBuilder("test-stub", [](const BuilderConfig& c) {
    return std::make_unique<Stub>(c.intervals);
  });
  BuilderConfig config;
  config.intervals = 7;
  std::unique_ptr<TreeBuilder> made = MakeTreeBuilder("test-stub", config);
  ASSERT_NE(made, nullptr);
  EXPECT_EQ(made->name(), "stub-7");

  // Re-registering the same name replaces the factory.
  RegisterTreeBuilder("test-stub", [](const BuilderConfig&) {
    return std::make_unique<Stub>(-1);
  });
  EXPECT_EQ(MakeTreeBuilder("test-stub")->name(), "stub--1");
}

TEST(Registry, ObserverOptionReachesBuilders) {
  const Dataset ds = SmallAgrawal(1500, 905);
  for (const char* name : {"cmp", "clouds", "sliq", "sprint", "rainforest"}) {
    TrainStatsCollector collector;
    BuilderConfig config;
    config.base.observer = &collector;
    std::unique_ptr<TreeBuilder> builder = MakeTreeBuilder(name, config);
    ASSERT_NE(builder, nullptr) << name;
    const BuildResult result = builder->Build(ds);
    EXPECT_GE(collector.passes().size(), 1u) << name;
    EXPECT_EQ(collector.final_stats().tree_nodes, result.stats.tree_nodes)
        << name;
    const std::string json = collector.ToJson();
    EXPECT_NE(json.find("\"builder\""), std::string::npos) << name;
    EXPECT_NE(json.find("\"passes\""), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace cmp
