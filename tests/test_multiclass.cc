// Multi-class coverage: the Agrawal workloads are binary, but the
// paper's Table 1 datasets have up to 26 classes. These tests run every
// builder on the multi-class STATLOG stand-ins and check the
// >2-class-specific machinery (gradient walks over many classes,
// majority voting, confusion matrices, PUBLIC bounds with many classes).

#include <gtest/gtest.h>

#include <memory>

#include "clouds/clouds.h"
#include "cmp/cmp.h"
#include "datagen/statlog.h"
#include "exact/exact.h"
#include "rainforest/rainforest.h"
#include "sliq/sliq.h"
#include "sprint/sprint.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

struct McCase {
  StatlogDataset dataset;
  double min_accuracy;  // on a 25% held-out split
};

std::vector<std::unique_ptr<TreeBuilder>> Builders() {
  std::vector<std::unique_ptr<TreeBuilder>> out;
  out.push_back(std::make_unique<CmpBuilder>(CmpSOptions()));
  out.push_back(std::make_unique<CmpBuilder>(CmpBOptions()));
  out.push_back(std::make_unique<CmpBuilder>(CmpFullOptions()));
  out.push_back(std::make_unique<SprintBuilder>());
  out.push_back(std::make_unique<SliqBuilder>());
  out.push_back(std::make_unique<CloudsBuilder>());
  out.push_back(std::make_unique<RainForestBuilder>());
  return out;
}

class MultiClassTest : public ::testing::TestWithParam<McCase> {};

TEST_P(MultiClassTest, AllBuildersLearnHeldOut) {
  StatlogOptions gen;
  gen.dataset = GetParam().dataset;
  gen.scale = gen.dataset == StatlogDataset::kShuttle ? 0.2 : 0.5;
  gen.seed = 61;
  const Dataset data = GenerateStatlog(gen);
  std::vector<RecordId> train_ids;
  std::vector<RecordId> test_ids;
  TrainTestSplit(data.num_records(), 0.25, 23, &train_ids, &test_ids);
  const Dataset train = data.Subset(train_ids);
  const Dataset test = data.Subset(test_ids);

  for (auto& builder : Builders()) {
    const BuildResult result = builder->Build(train);
    const Evaluation eval = Evaluate(result.tree, test);
    EXPECT_GE(eval.Accuracy(), GetParam().min_accuracy)
        << builder->name() << " on " << StatlogName(GetParam().dataset);
    // Confusion matrix shape and totals.
    ASSERT_EQ(static_cast<int>(eval.confusion.size()),
              data.num_classes());
    int64_t confusion_total = 0;
    for (const auto& row : eval.confusion) {
      for (int64_t v : row) confusion_total += v;
    }
    EXPECT_EQ(confusion_total, test.num_records());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Statlog, MultiClassTest,
    ::testing::Values(McCase{StatlogDataset::kSegment, 0.80},
                      McCase{StatlogDataset::kSatimage, 0.80},
                      McCase{StatlogDataset::kShuttle, 0.90}),
    [](const ::testing::TestParamInfo<McCase>& info) {
      return StatlogName(info.param.dataset);
    });

TEST(MultiClass, LetterHas26Classes) {
  // The heaviest case: 26 classes stress the gradient walk (one step per
  // class) and the PUBLIC bound's class ordering. Train on a reduced
  // sample for speed; every class must still be predictable.
  StatlogOptions gen;
  gen.dataset = StatlogDataset::kLetter;
  gen.scale = 0.4;
  gen.seed = 63;
  const Dataset data = GenerateStatlog(gen);
  CmpBuilder builder(CmpSOptions());
  const BuildResult result = builder.Build(data);
  const Evaluation eval = Evaluate(result.tree, data);
  EXPECT_GT(eval.Accuracy(), 0.70);
  // The tree must use more than a handful of leaves to cover 26 classes.
  EXPECT_GE(result.tree.NumLeaves(), 26);
}

TEST(MultiClass, MajorityBreaksTiesDeterministically) {
  // Equal counts across classes: MakeLeaf must pick the lowest class id.
  DecisionTree tree(Schema({{"x", AttrKind::kNumeric, 0}},
                           {"a", "b", "c"}));
  TreeNode node;
  node.class_counts = {5, 5, 5};
  const NodeId id = tree.AddNode(node);
  tree.MakeLeaf(id);
  EXPECT_EQ(tree.node(id).leaf_class, 0);
}

}  // namespace
}  // namespace cmp
