#include "hist/quantiles.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace cmp {
namespace {

TEST(IntervalGrid, EmptyValues) {
  const IntervalGrid grid = IntervalGrid::EqualDepth({}, 10);
  EXPECT_EQ(grid.num_intervals(), 1);
}

TEST(IntervalGrid, SingleIntervalRequested) {
  const IntervalGrid grid = IntervalGrid::EqualDepth({1, 2, 3}, 1);
  EXPECT_EQ(grid.num_intervals(), 1);
  EXPECT_EQ(grid.IntervalOf(2.0), 0);
}

TEST(IntervalGrid, UniformValuesBalancedDepth) {
  std::vector<double> values(1000);
  Rng rng(5);
  for (auto& v : values) v = rng.Uniform(0, 100);
  const int q = 10;
  const IntervalGrid grid = IntervalGrid::EqualDepth(values, q);
  ASSERT_EQ(grid.num_intervals(), q);
  std::vector<int64_t> depth(q, 0);
  for (double v : values) depth[grid.IntervalOf(v)]++;
  for (int i = 0; i < q; ++i) {
    EXPECT_GE(depth[i], 50) << "interval " << i;
    EXPECT_LE(depth[i], 200) << "interval " << i;
  }
}

TEST(IntervalGrid, IntervalOfRespectsHalfOpenConvention) {
  // Interval i covers (b_i-1, b_i]: a value equal to a cut belongs to the
  // interval below it.
  const IntervalGrid grid = IntervalGrid::FromBoundaries({10.0, 20.0});
  EXPECT_EQ(grid.num_intervals(), 3);
  EXPECT_EQ(grid.IntervalOf(5.0), 0);
  EXPECT_EQ(grid.IntervalOf(10.0), 0);
  EXPECT_EQ(grid.IntervalOf(10.5), 1);
  EXPECT_EQ(grid.IntervalOf(20.0), 1);
  EXPECT_EQ(grid.IntervalOf(25.0), 2);
}

TEST(IntervalGrid, HeavyTiesCollapseCuts) {
  // 90% of the mass at one value: most quantile cuts coincide and must
  // be deduplicated, not repeated.
  std::vector<double> values(100, 42.0);
  for (int i = 0; i < 10; ++i) values.push_back(100.0 + i);
  const IntervalGrid grid = IntervalGrid::EqualDepth(values, 10);
  EXPECT_LT(grid.num_intervals(), 10);
  const auto& cuts = grid.boundaries();
  EXPECT_TRUE(std::is_sorted(cuts.begin(), cuts.end()));
  for (size_t i = 1; i < cuts.size(); ++i) {
    EXPECT_LT(cuts[i - 1], cuts[i]);
  }
}

TEST(IntervalGrid, AllValuesIdentical) {
  const std::vector<double> values(50, 7.0);
  const IntervalGrid grid = IntervalGrid::EqualDepth(values, 8);
  EXPECT_EQ(grid.num_intervals(), 1);
  EXPECT_EQ(grid.IntervalOf(7.0), 0);
}

TEST(IntervalGrid, MinMaxRecorded) {
  const IntervalGrid grid = IntervalGrid::EqualDepth({3, 1, 4, 1, 5}, 3);
  EXPECT_DOUBLE_EQ(grid.min_value(), 1.0);
  EXPECT_DOUBLE_EQ(grid.max_value(), 5.0);
}

TEST(IntervalGrid, LastIntervalNonEmpty) {
  // The maximum value must not sit on a cut (which would empty the last
  // interval).
  std::vector<double> values;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) values.push_back(rng.Uniform(0, 1));
  const IntervalGrid grid = IntervalGrid::EqualDepth(values, 20);
  std::vector<int64_t> depth(grid.num_intervals(), 0);
  for (double v : values) depth[grid.IntervalOf(v)]++;
  EXPECT_GT(depth.back(), 0);
}

class GridDepthPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GridDepthPropertyTest, EveryIntervalNonEmptyOnContinuousData) {
  Rng rng(GetParam());
  std::vector<double> values(2000);
  for (auto& v : values) v = rng.Gaussian(0, 10);
  const IntervalGrid grid = IntervalGrid::EqualDepth(values, 50);
  std::vector<int64_t> depth(grid.num_intervals(), 0);
  for (double v : values) depth[grid.IntervalOf(v)]++;
  for (int i = 0; i < grid.num_intervals(); ++i) {
    EXPECT_GT(depth[i], 0) << "interval " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridDepthPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace cmp
