// Multi-class properties of the gradient estimator: the hill-climbing
// walk is exact over orderings for two classes; for more classes it is
// greedy, but it must still never exceed the boundary ginis and must
// stay a lower bound on the class-contiguous orderings it is derived
// from. These sweeps pin that contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "gini/estimator.h"
#include "gini/gini.h"

namespace cmp {
namespace {

class MultiClassEstimatorTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MultiClassEstimatorTest, NeverAboveEitherBoundary) {
  const auto [num_classes, seed] = GetParam();
  Rng rng(seed);
  std::vector<int64_t> below(num_classes);
  std::vector<int64_t> interval(num_classes);
  std::vector<int64_t> totals(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    below[c] = rng.UniformInt(0, 60);
    interval[c] = rng.UniformInt(0, 40);
    totals[c] = below[c] + interval[c] + rng.UniformInt(0, 60);
  }
  const double est = EstimateIntervalGini(below, interval, totals);
  std::vector<int64_t> below_right(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    below_right[c] = below[c] + interval[c];
  }
  EXPECT_LE(est, BoundaryGini(below, totals) + 1e-12);
  EXPECT_LE(est, BoundaryGini(below_right, totals) + 1e-12);
  EXPECT_GE(est, 0.0);
}

TEST_P(MultiClassEstimatorTest, LowerBoundsClassContiguousOrderings) {
  // Any ordering that places each class's interval records contiguously
  // (in any class order) is dominated by the estimate: the hill-climb
  // walks exactly these orderings greedily, and its min over both
  // directions must be <= the gini at every class boundary of every
  // permutation... for <= 3 classes the greedy is exhaustive enough to
  // check against all permutations directly.
  const auto [num_classes, seed] = GetParam();
  if (num_classes > 3) GTEST_SKIP() << "permutation check for <=3 classes";
  Rng rng(seed * 7 + 1);
  std::vector<int64_t> below(num_classes);
  std::vector<int64_t> interval(num_classes);
  std::vector<int64_t> totals(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    below[c] = rng.UniformInt(0, 30);
    interval[c] = rng.UniformInt(1, 20);
    totals[c] = below[c] + interval[c] + rng.UniformInt(0, 30);
  }
  const double est = EstimateIntervalGini(below, interval, totals);

  std::vector<int> order(num_classes);
  for (int c = 0; c < num_classes; ++c) order[c] = c;
  std::sort(order.begin(), order.end());
  double best_over_orderings = 1.0;
  do {
    std::vector<int64_t> cur = below;
    for (int step = 0; step < num_classes; ++step) {
      cur[order[step]] += interval[order[step]];
      best_over_orderings =
          std::min(best_over_orderings, BoundaryGini(cur, totals));
    }
  } while (std::next_permutation(order.begin(), order.end()));
  // For 2 classes the walk IS the permutation set; for 3 the greedy may
  // miss the optimum but must never be anti-conservative relative to the
  // boundaries. Assert the 2-class equality-style property strictly.
  if (num_classes == 2) {
    EXPECT_LE(est, best_over_orderings + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ClassesAndSeeds, MultiClassEstimatorTest,
    ::testing::Values(std::make_pair(2, 1), std::make_pair(2, 2),
                      std::make_pair(3, 3), std::make_pair(3, 4),
                      std::make_pair(5, 5), std::make_pair(7, 6),
                      std::make_pair(12, 7), std::make_pair(26, 8)),
    [](const ::testing::TestParamInfo<std::pair<int, int>>& info) {
      std::string name = "c";
      name += std::to_string(info.param.first);
      name += "_s";
      name += std::to_string(info.param.second);
      return name;
    });

TEST(MultiClassEstimator, WalkCostLinearInClasses) {
  // The paper's observation: only c evaluation points per direction are
  // needed. Indirectly verified by timing being feasible even at 26
  // classes with large intervals (this is a smoke bound, not a timer).
  const int nc = 26;
  std::vector<int64_t> below(nc, 1000);
  std::vector<int64_t> interval(nc, 500);
  std::vector<int64_t> totals(nc, 3000);
  for (int i = 0; i < 1000; ++i) {
    EstimateIntervalGini(below, interval, totals);
  }
  SUCCEED();
}

}  // namespace
}  // namespace cmp
