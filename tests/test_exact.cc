#include "exact/exact.h"

#include <gtest/gtest.h>

#include "datagen/agrawal.h"
#include "datagen/loan_example.h"
#include "gini/gini.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

std::vector<RecordId> AllRids(const Dataset& ds) {
  std::vector<RecordId> rids(ds.num_records());
  for (RecordId r = 0; r < ds.num_records(); ++r) rids[r] = r;
  return rids;
}

TEST(FindBestSplitExact, LoanExampleRootSplit) {
  // On the Figure 1 data the best univariate root split is age <= 20
  // (separating the two youngest "No" applicants) or salary-based; it
  // must strictly improve on the parent gini of 0.5.
  const Dataset ds = LoanExampleDataset();
  const ExactSplit best = FindBestSplitExact(ds, AllRids(ds));
  ASSERT_TRUE(best.valid);
  EXPECT_LT(best.gini, 0.5);
}

TEST(FindBestSplitExact, MatchesBruteForceOnRandomData) {
  // Brute force over every attribute/threshold must agree with the
  // implementation's best gini.
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 300;
  gen.seed = 17;
  const Dataset ds = GenerateAgrawal(gen);
  const std::vector<RecordId> rids = AllRids(ds);
  const ExactSplit best = FindBestSplitExact(ds, rids);
  ASSERT_TRUE(best.valid);

  const std::vector<int64_t> totals = ds.ClassCounts();
  double brute = 1.0;
  for (AttrId a = 0; a < ds.num_attrs(); ++a) {
    if (!ds.schema().is_numeric(a)) continue;
    for (RecordId i : rids) {
      const double threshold = ds.numeric(a, i);
      std::vector<int64_t> below(ds.num_classes(), 0);
      int64_t below_n = 0;
      for (RecordId r : rids) {
        if (ds.numeric(a, r) <= threshold) {
          below[ds.label(r)]++;
          below_n++;
        }
      }
      if (below_n == 0 || below_n == ds.num_records()) continue;
      brute = std::min(brute, BoundaryGini(below, totals));
    }
  }
  EXPECT_LE(best.gini, brute + 1e-12);
}

TEST(FindBestSplitExact, PureSetHasNoUsefulSplit) {
  Dataset ds(LoanExampleSchema());
  for (int i = 0; i < 10; ++i) {
    ds.Append({static_cast<double>(i), 100.0 * i, 0.0}, {}, 1);
  }
  const ExactSplit best = FindBestSplitExact(ds, AllRids(ds));
  // A split may exist but cannot improve on gini 0.
  if (best.valid) {
    EXPECT_DOUBLE_EQ(best.gini, 0.0);
  }
}

TEST(ExactBuilder, PerfectOnSeparableData) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF1;  // pure age bands
  gen.num_records = 5000;
  gen.seed = 21;
  const Dataset ds = GenerateAgrawal(gen);
  ExactBuilder builder;
  const BuildResult result = builder.Build(ds);
  EXPECT_GT(Evaluate(result.tree, ds).Accuracy(), 0.999);
  // F1 needs only two age splits.
  EXPECT_LE(result.tree.Depth(), 4);
}

TEST(ExactBuilder, RespectsMaxDepth) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF7;
  gen.num_records = 3000;
  gen.seed = 25;
  const Dataset ds = GenerateAgrawal(gen);
  BuilderOptions options;
  options.max_depth = 3;
  ExactBuilder builder(options);
  const BuildResult result = builder.Build(ds);
  EXPECT_LE(result.tree.Depth(), 3);
}

TEST(ExactBuilder, RespectsMinSplitRecords) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 1000;
  gen.seed = 27;
  const Dataset ds = GenerateAgrawal(gen);
  BuilderOptions options;
  options.min_split_records = 400;
  options.prune = false;
  ExactBuilder builder(options);
  const BuildResult result = builder.Build(ds);
  // Any internal node must have had >= 400 records.
  for (NodeId id = 0; id < result.tree.num_nodes(); ++id) {
    const TreeNode& n = result.tree.node(id);
    if (!n.is_leaf) {
      int64_t total = 0;
      for (int64_t c : n.class_counts) total += c;
      EXPECT_GE(total, 400);
    }
  }
}

TEST(ExactBuilder, UsesCategoricalSplitsWhenDiscriminative) {
  // Build a dataset where only the categorical attribute matters.
  Schema schema({{"noise", AttrKind::kNumeric, 0},
                 {"key", AttrKind::kCategorical, 4}},
                {"no", "yes"});
  Dataset ds(schema);
  Rng rng(29);
  for (int i = 0; i < 2000; ++i) {
    const int32_t key = static_cast<int32_t>(rng.UniformInt(0, 3));
    ds.Append({rng.Uniform(0, 1)}, {key}, key < 2 ? 0 : 1);
  }
  ExactBuilder builder;
  const BuildResult result = builder.Build(ds);
  ASSERT_FALSE(result.tree.node(0).is_leaf);
  EXPECT_EQ(result.tree.node(0).split.kind, Split::Kind::kCategorical);
  EXPECT_DOUBLE_EQ(Evaluate(result.tree, ds).Accuracy(), 1.0);
}

TEST(BuildExactSubtree, EmptyRidsMakesLeaf) {
  const Dataset ds = LoanExampleDataset();
  DecisionTree tree(ds.schema());
  TreeNode root;
  root.class_counts = {0, 0};
  const NodeId root_id = tree.AddNode(root);
  BuildExactSubtree(ds, {}, BuilderOptions{}, &tree, root_id);
  EXPECT_TRUE(tree.node(root_id).is_leaf);
}

}  // namespace
}  // namespace cmp
