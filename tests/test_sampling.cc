#include "sampling/windowing.h"

#include <gtest/gtest.h>

#include <memory>

#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "exact/exact.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

Dataset MakeData(AgrawalFunction f, int64_t n, uint64_t seed) {
  AgrawalOptions gen;
  gen.function = f;
  gen.num_records = n;
  gen.seed = seed;
  return GenerateAgrawal(gen);
}

TEST(Windowing, ConvergesOnSimpleConcept) {
  const Dataset data = MakeData(AgrawalFunction::kF1, 20000, 221);
  WindowingOptions o;
  o.initial_fraction = 0.05;
  WindowingBuilder builder(std::make_unique<ExactBuilder>(), o);
  const BuildResult result = builder.Build(data);
  EXPECT_GT(Evaluate(result.tree, data).Accuracy(), 0.99);
}

TEST(Windowing, ReasonableOnF2) {
  const Dataset data = MakeData(AgrawalFunction::kF2, 20000, 223);
  std::vector<RecordId> train_ids;
  std::vector<RecordId> test_ids;
  TrainTestSplit(data.num_records(), 0.25, 16, &train_ids, &test_ids);
  const Dataset train = data.Subset(train_ids);
  const Dataset test = data.Subset(test_ids);
  WindowingBuilder builder(std::make_unique<ExactBuilder>());
  const BuildResult result = builder.Build(train);
  EXPECT_GT(Evaluate(result.tree, test).Accuracy(), 0.95);
}

TEST(Windowing, ChargesOneScanPerIteration) {
  const Dataset data = MakeData(AgrawalFunction::kF2, 10000, 225);
  WindowingOptions o;
  o.max_iterations = 3;
  o.target_error = 0.0;  // never early-stop on error
  WindowingBuilder builder(std::make_unique<ExactBuilder>(), o);
  const BuildResult result = builder.Build(data);
  // Sample draw + one misclassification scan per iteration (plus the
  // inner builds' own charges).
  EXPECT_GE(result.stats.dataset_scans, 1 + 3);
}

TEST(Windowing, NameMentionsInner) {
  WindowingBuilder builder(std::make_unique<ExactBuilder>());
  EXPECT_EQ(builder.name(), "Windowing(Exact)");
}

TEST(Sampled, TrainsOnFraction) {
  const Dataset data = MakeData(AgrawalFunction::kF2, 20000, 227);
  SampledBuilder builder(std::make_unique<ExactBuilder>(), 0.1);
  const BuildResult result = builder.Build(data);
  // Accuracy on the full data suffers a little but stays sane — the
  // "approximate approaches lose accuracy" premise of the paper.
  const double acc = Evaluate(result.tree, data).Accuracy();
  EXPECT_GT(acc, 0.90);
}

TEST(Sampled, LessAccurateThanFullTraining) {
  const Dataset data = MakeData(AgrawalFunction::kF5, 20000, 229);
  std::vector<RecordId> train_ids;
  std::vector<RecordId> test_ids;
  TrainTestSplit(data.num_records(), 0.3, 18, &train_ids, &test_ids);
  const Dataset train = data.Subset(train_ids);
  const Dataset test = data.Subset(test_ids);

  ExactBuilder full;
  SampledBuilder sampled(std::make_unique<ExactBuilder>(), 0.02);
  const double acc_full = Evaluate(full.Build(train).tree, test).Accuracy();
  const double acc_sample =
      Evaluate(sampled.Build(train).tree, test).Accuracy();
  EXPECT_LE(acc_sample, acc_full + 0.005);
}

TEST(Sampled, WorksWithCmpInner) {
  const Dataset data = MakeData(AgrawalFunction::kF2, 30000, 231);
  SampledBuilder builder(
      std::make_unique<CmpBuilder>(CmpFullOptions()), 0.5);
  const BuildResult result = builder.Build(data);
  EXPECT_GT(Evaluate(result.tree, data).Accuracy(), 0.95);
}

}  // namespace
}  // namespace cmp
