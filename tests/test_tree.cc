#include "tree/tree.h"

#include <gtest/gtest.h>

#include "datagen/loan_example.h"
#include "tree/serialize.h"
#include "tree/split.h"

namespace cmp {
namespace {

// Builds the paper's Figure 1(b) tree by hand:
//   age < 25           -> Declined
//   salary + commission < 65,000 -> Declined else Approved.
DecisionTree PaperLoanTree() {
  DecisionTree tree(LoanExampleSchema());
  TreeNode root;
  root.is_leaf = false;
  root.split = Split::Numeric(/*age*/ 0, 24.999);
  root.class_counts = {3, 3};
  const NodeId root_id = tree.AddNode(root);

  TreeNode declined_young;
  declined_young.leaf_class = 0;
  declined_young.class_counts = {2, 0};
  declined_young.depth = 1;
  TreeNode inner;
  inner.is_leaf = false;
  inner.split = Split::Linear(/*salary*/ 1, /*commission*/ 2, 1.0, 1.0,
                              64999.0);
  inner.class_counts = {1, 3};
  inner.depth = 1;
  const NodeId left = tree.AddNode(declined_young);
  const NodeId mid = tree.AddNode(inner);
  tree.mutable_node(root_id).left = left;
  tree.mutable_node(root_id).right = mid;

  TreeNode declined_low;
  declined_low.leaf_class = 0;
  declined_low.class_counts = {1, 0};
  declined_low.depth = 2;
  TreeNode approved;
  approved.leaf_class = 1;
  approved.class_counts = {0, 3};
  approved.depth = 2;
  const NodeId l2 = tree.AddNode(declined_low);
  const NodeId r2 = tree.AddNode(approved);
  tree.mutable_node(mid).left = l2;
  tree.mutable_node(mid).right = r2;
  return tree;
}

TEST(Split, NumericRouting) {
  const Dataset ds = LoanExampleDataset();
  const Split s = Split::Numeric(/*age*/ 0, 30.0);
  EXPECT_TRUE(s.RoutesLeft(ds, 0));   // age 18
  EXPECT_FALSE(s.RoutesLeft(ds, 1));  // age 60
}

TEST(Split, NumericThresholdInclusive) {
  Dataset ds(LoanExampleSchema());
  ds.Append({30.0, 0, 0}, {}, 0);
  const Split s = Split::Numeric(0, 30.0);
  EXPECT_TRUE(s.RoutesLeft(ds, 0));  // v <= threshold goes left
}

TEST(Split, LinearRouting) {
  const Dataset ds = LoanExampleDataset();
  // salary + commission <= 65,000.
  const Split s = Split::Linear(1, 2, 1.0, 1.0, 65000.0);
  EXPECT_TRUE(s.RoutesLeft(ds, 0));   // 20,000 + 0
  EXPECT_FALSE(s.RoutesLeft(ds, 1));  // 70,000 + 20,000
}

TEST(Split, CategoricalRouting) {
  Schema schema({{"c", AttrKind::kCategorical, 3}}, {"x", "y"});
  Dataset ds(schema);
  ds.Append({}, {0}, 0);
  ds.Append({}, {1}, 0);
  ds.Append({}, {2}, 1);
  const Split s = Split::Categorical(0, {1, 0, 1});
  EXPECT_TRUE(s.RoutesLeft(ds, 0));
  EXPECT_FALSE(s.RoutesLeft(ds, 1));
  EXPECT_TRUE(s.RoutesLeft(ds, 2));
}

TEST(Split, ToStringRendering) {
  const Schema schema = LoanExampleSchema();
  EXPECT_EQ(Split::Numeric(0, 25).ToString(schema), "age <= 25");
  EXPECT_EQ(Split::Linear(1, 2, 1, 1, 65000).ToString(schema),
            "1*salary + 1*commission <= 65000");
  Schema cat_schema({{"c", AttrKind::kCategorical, 3}}, {"x", "y"});
  EXPECT_EQ(Split::Categorical(0, {1, 0, 1}).ToString(cat_schema),
            "c in {0,2}");
}

TEST(DecisionTree, ClassifiesLoanExamplePerfectly) {
  const Dataset ds = LoanExampleDataset();
  const DecisionTree tree = PaperLoanTree();
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    EXPECT_EQ(tree.Classify(ds, r), ds.label(r)) << "record " << r;
  }
}

TEST(DecisionTree, CountsAndDepth) {
  const DecisionTree tree = PaperLoanTree();
  EXPECT_EQ(tree.num_nodes(), 5);
  EXPECT_EQ(tree.NumLeaves(), 3);
  EXPECT_EQ(tree.Depth(), 2);
}

TEST(DecisionTree, MakeLeafUsesMajority) {
  DecisionTree tree = PaperLoanTree();
  tree.MakeLeaf(0);
  EXPECT_TRUE(tree.node(0).is_leaf);
  // Root counts are {3,3}: ties break to the lower class id.
  EXPECT_EQ(tree.node(0).leaf_class, 0);
}

TEST(DecisionTree, CompactRemovesUnreachable) {
  DecisionTree tree = PaperLoanTree();
  tree.MakeLeaf(2);  // prune the inner node's subtree
  tree.Compact();
  EXPECT_EQ(tree.num_nodes(), 3);
  EXPECT_EQ(tree.NumLeaves(), 2);
  // Classification still works.
  const Dataset ds = LoanExampleDataset();
  EXPECT_EQ(tree.Classify(ds, 0), 0);
}

TEST(DecisionTree, ToStringContainsSplitsAndLeaves) {
  const DecisionTree tree = PaperLoanTree();
  const std::string s = tree.ToString();
  EXPECT_NE(s.find("age <= 24.999"), std::string::npos);
  EXPECT_NE(s.find("leaf: No"), std::string::npos);
  EXPECT_NE(s.find("leaf: Yes"), std::string::npos);
}

// Grafting a detached single-leaf tree just overwrites the target node
// (no new nodes), keeping the target's depth.
TEST(DecisionTreeGraft, SingleLeafOverwritesInPlace) {
  DecisionTree tree = PaperLoanTree();
  DecisionTree sub(LoanExampleSchema());
  TreeNode leaf;
  leaf.leaf_class = 1;
  leaf.class_counts = {0, 2};
  sub.AddNode(leaf);

  tree.Graft(/*at=*/1, sub);
  EXPECT_EQ(tree.num_nodes(), 5);
  EXPECT_TRUE(tree.node(1).is_leaf);
  EXPECT_EQ(tree.node(1).leaf_class, 1);
  EXPECT_EQ(tree.node(1).depth, 1);  // keeps the graft point's depth
}

// Grafting a subtree splices its root over the target and appends the
// remaining nodes in the subtree's own id order, with depths shifted to
// the graft point.
TEST(DecisionTreeGraft, SubtreeAppendsInIdOrderAndShiftsDepth) {
  DecisionTree tree = PaperLoanTree();
  const int before = tree.num_nodes();

  // A detached 3-node tree: salary test with two leaves.
  DecisionTree sub(LoanExampleSchema());
  TreeNode sroot;
  sroot.is_leaf = false;
  sroot.split = Split::Numeric(/*salary*/ 1, 30000.0);
  sroot.class_counts = {2, 0};
  const NodeId sroot_id = sub.AddNode(sroot);
  TreeNode sleft;
  sleft.leaf_class = 0;
  sleft.class_counts = {2, 0};
  sleft.depth = 1;
  TreeNode sright;
  sright.leaf_class = 1;
  sright.class_counts = {0, 0};
  sright.depth = 1;
  sub.mutable_node(sroot_id).left = sub.AddNode(sleft);
  sub.mutable_node(sroot_id).right = sub.AddNode(sright);

  // Graft over the depth-1 leaf (node 1).
  tree.Graft(/*at=*/1, sub);
  ASSERT_EQ(tree.num_nodes(), before + 2);

  const TreeNode& at = tree.node(1);
  EXPECT_FALSE(at.is_leaf);
  EXPECT_EQ(at.depth, 1);
  // Children are the appended copies, in sub's id order.
  EXPECT_EQ(at.left, before);
  EXPECT_EQ(at.right, before + 1);
  EXPECT_EQ(tree.node(at.left).depth, 2);
  EXPECT_EQ(tree.node(at.right).depth, 2);
  EXPECT_EQ(tree.node(at.left).leaf_class, 0);
  EXPECT_EQ(tree.node(at.right).leaf_class, 1);
}

// The refactored parallel collect-finish path relies on grafting being
// equivalent to building in place: routing through the grafted region
// must classify like the detached subtree did.
TEST(DecisionTreeGraft, ClassificationRoutesThroughGraftedRegion) {
  const Dataset ds = LoanExampleDataset();
  DecisionTree tree = PaperLoanTree();

  // Replace the linear-split inner node (node 2) with a detached subtree
  // that declines everyone, then check routing honors the new subtree.
  DecisionTree sub(LoanExampleSchema());
  TreeNode sroot;
  sroot.is_leaf = false;
  sroot.split = Split::Numeric(/*age*/ 0, 200.0);  // everyone goes left
  sroot.class_counts = {4, 0};
  const NodeId sroot_id = sub.AddNode(sroot);
  TreeNode always;
  always.leaf_class = 0;
  always.class_counts = {4, 0};
  always.depth = 1;
  TreeNode never;
  never.leaf_class = 1;
  never.class_counts = {0, 0};
  never.depth = 1;
  sub.mutable_node(sroot_id).left = sub.AddNode(always);
  sub.mutable_node(sroot_id).right = sub.AddNode(never);

  tree.Graft(/*at=*/2, sub);
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    // Records over the age threshold used to reach the linear test; they
    // must now all land in the grafted "declined" leaf.
    if (ds.numeric(/*age*/ 0, r) > 24.999) {
      EXPECT_EQ(tree.Classify(ds, r), 0) << "record " << r;
    }
  }
}

TEST(Serialize, RoundTripPreservesClassification) {
  const DecisionTree tree = PaperLoanTree();
  const std::string text = SerializeTree(tree);
  DecisionTree loaded;
  ASSERT_TRUE(DeserializeTree(text, &loaded));
  ASSERT_EQ(loaded.num_nodes(), tree.num_nodes());
  const Dataset ds = LoanExampleDataset();
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    EXPECT_EQ(loaded.Classify(ds, r), tree.Classify(ds, r));
  }
  EXPECT_TRUE(loaded.schema() == tree.schema());
}

TEST(Serialize, RejectsGarbage) {
  DecisionTree out;
  EXPECT_FALSE(DeserializeTree("not a tree", &out));
  EXPECT_FALSE(DeserializeTree("", &out));
  EXPECT_FALSE(DeserializeTree("cmp-tree 99\n", &out));
}

TEST(Serialize, RoundTripExactThresholds) {
  DecisionTree tree(LoanExampleSchema());
  TreeNode root;
  root.is_leaf = false;
  root.split = Split::Numeric(0, 0.1 + 0.2);  // not exactly representable
  root.class_counts = {1, 1};
  tree.AddNode(root);
  TreeNode l;
  l.leaf_class = 0;
  l.class_counts = {1, 0};
  TreeNode r;
  r.leaf_class = 1;
  r.class_counts = {0, 1};
  tree.mutable_node(0).left = tree.AddNode(l);
  tree.mutable_node(0).right = tree.AddNode(r);

  DecisionTree loaded;
  ASSERT_TRUE(DeserializeTree(SerializeTree(tree), &loaded));
  EXPECT_EQ(loaded.node(0).split.threshold, tree.node(0).split.threshold);
}

}  // namespace
}  // namespace cmp
