#include "cmp/cmp.h"

#include <gtest/gtest.h>

#include "datagen/agrawal.h"
#include "sprint/sprint.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

Dataset MakeData(AgrawalFunction f, int64_t n, uint64_t seed) {
  AgrawalOptions gen;
  gen.function = f;
  gen.num_records = n;
  gen.seed = seed;
  return GenerateAgrawal(gen);
}

struct VariantCase {
  CmpVariant variant;
  const char* name;
};

class CmpVariantTest : public ::testing::TestWithParam<VariantCase> {};

TEST_P(CmpVariantTest, HighAccuracyOnF2) {
  const Dataset data = MakeData(AgrawalFunction::kF2, 20000, 141);
  std::vector<RecordId> train_ids;
  std::vector<RecordId> test_ids;
  TrainTestSplit(data.num_records(), 0.25, 10, &train_ids, &test_ids);
  const Dataset train = data.Subset(train_ids);
  const Dataset test = data.Subset(test_ids);

  CmpOptions o;
  o.variant = GetParam().variant;
  CmpBuilder builder(o);
  const BuildResult result = builder.Build(train);
  EXPECT_GT(Evaluate(result.tree, test).Accuracy(), 0.97)
      << GetParam().name;
}

TEST_P(CmpVariantTest, HighAccuracyOnF7) {
  const Dataset data = MakeData(AgrawalFunction::kF7, 20000, 143);
  std::vector<RecordId> train_ids;
  std::vector<RecordId> test_ids;
  TrainTestSplit(data.num_records(), 0.25, 11, &train_ids, &test_ids);
  const Dataset train = data.Subset(train_ids);
  const Dataset test = data.Subset(test_ids);

  CmpOptions o;
  o.variant = GetParam().variant;
  CmpBuilder builder(o);
  const BuildResult result = builder.Build(train);
  EXPECT_GT(Evaluate(result.tree, test).Accuracy(), 0.93)
      << GetParam().name;
}

TEST_P(CmpVariantTest, CategoricalConceptLearned) {
  // F3 depends on age bands AND elevel (categorical).
  const Dataset data = MakeData(AgrawalFunction::kF3, 15000, 145);
  CmpOptions o;
  o.variant = GetParam().variant;
  CmpBuilder builder(o);
  const BuildResult result = builder.Build(data);
  EXPECT_GT(Evaluate(result.tree, data).Accuracy(), 0.98)
      << GetParam().name;
}

TEST_P(CmpVariantTest, EmptyAndTinyDatasets) {
  CmpOptions o;
  o.variant = GetParam().variant;
  {
    const Dataset empty(AgrawalSchema());
    CmpBuilder builder(o);
    const BuildResult result = builder.Build(empty);
    EXPECT_EQ(result.tree.num_nodes(), 1);
    EXPECT_TRUE(result.tree.node(0).is_leaf);
  }
  {
    const Dataset tiny = MakeData(AgrawalFunction::kF1, 10, 147);
    CmpBuilder builder(o);
    const BuildResult result = builder.Build(tiny);
    EXPECT_GE(Evaluate(result.tree, tiny).Accuracy(), 0.9);
  }
}

TEST_P(CmpVariantTest, StatsArePopulated) {
  const Dataset train = MakeData(AgrawalFunction::kF2, 15000, 149);
  CmpOptions o;
  o.variant = GetParam().variant;
  CmpBuilder builder(o);
  const BuildResult result = builder.Build(train);
  EXPECT_GT(result.stats.dataset_scans, 0);
  EXPECT_GT(result.stats.records_read, train.num_records());
  EXPECT_GT(result.stats.peak_memory_bytes, 0);
  EXPECT_EQ(result.stats.tree_nodes, result.tree.num_nodes());
  EXPECT_GT(result.stats.wall_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, CmpVariantTest,
    ::testing::Values(VariantCase{CmpVariant::kS, "CMP-S"},
                      VariantCase{CmpVariant::kB, "CMP-B"},
                      VariantCase{CmpVariant::kFull, "CMP"}),
    [](const ::testing::TestParamInfo<VariantCase>& info) {
      return std::string(info.param.name) == "CMP-S"   ? "S"
             : std::string(info.param.name) == "CMP-B" ? "B"
                                                       : "Full";
    });

TEST(CmpScans, CmpSNeedsRoughlyOneScanPerLevel) {
  const Dataset train = MakeData(AgrawalFunction::kF2, 30000, 151);
  CmpOptions o = CmpSOptions();
  CmpBuilder builder(o);
  const BuildResult result = builder.Build(train);
  // Quantile scan + ~1 scan per grown level (deferred resolution adds no
  // extra pass).
  EXPECT_LE(result.stats.dataset_scans, result.stats.tree_depth + 3);
}

TEST(CmpScans, CmpBSavesScansOverCmpS) {
  const Dataset train = MakeData(AgrawalFunction::kF2, 60000, 153);
  CmpBuilder s_builder(CmpSOptions());
  CmpBuilder b_builder(CmpBOptions());
  const BuildResult s = s_builder.Build(train);
  const BuildResult b = b_builder.Build(train);
  EXPECT_LE(b.stats.dataset_scans, s.stats.dataset_scans);
}

TEST(CmpScans, PredictionStatsTracked) {
  const Dataset train = MakeData(AgrawalFunction::kF2, 60000, 155);
  CmpBuilder builder(CmpBOptions());
  const BuildResult result = builder.Build(train);
  EXPECT_GT(result.stats.predictions_total, 0);
  EXPECT_GE(result.stats.predictions_correct, 0);
  EXPECT_LE(result.stats.predictions_correct,
            result.stats.predictions_total);
}

TEST(CmpLinear, FunctionFYieldsLinearRootAndSmallTree) {
  const Dataset train = MakeData(AgrawalFunction::kFunctionF, 40000, 157);
  CmpBuilder full(CmpFullOptions());
  const BuildResult result = full.Build(train);
  ASSERT_FALSE(result.tree.node(0).is_leaf);
  EXPECT_EQ(result.tree.node(0).split.kind, Split::Kind::kLinear);

  SprintBuilder sprint;
  const BuildResult sres = sprint.Build(train);
  EXPECT_LT(result.tree.num_nodes(), sres.tree.num_nodes());
  EXPECT_GT(Evaluate(result.tree, train).Accuracy(), 0.98);
}

TEST(CmpLinear, LinearCoefficientsNearTrueBoundary) {
  // Function f's boundary is salary + commission = 100,000: the root
  // line's coefficient ratio must be near 1 and its intercept near 100k
  // (the paper found salary + 0.93*commission <= 95,796).
  const Dataset train = MakeData(AgrawalFunction::kFunctionF, 40000, 159);
  CmpBuilder full(CmpFullOptions());
  const BuildResult result = full.Build(train);
  const Split& root = result.tree.node(0).split;
  ASSERT_EQ(root.kind, Split::Kind::kLinear);
  const std::string sal = "salary";
  const bool x_is_salary =
      train.schema().attr(root.attr).name == sal;
  const double coef_salary = x_is_salary ? root.a : root.b;
  const double coef_commission = x_is_salary ? root.b : root.a;
  ASSERT_NE(coef_salary, 0.0);
  EXPECT_NEAR(coef_commission / coef_salary, 1.0, 0.35);
  EXPECT_NEAR(root.c / coef_salary, 100000.0, 15000.0);
}

TEST(CmpLinear, DisabledInCmpB) {
  const Dataset train = MakeData(AgrawalFunction::kFunctionF, 30000, 161);
  CmpBuilder b_builder(CmpBOptions());
  const BuildResult result = b_builder.Build(train);
  for (NodeId id = 0; id < result.tree.num_nodes(); ++id) {
    if (!result.tree.node(id).is_leaf) {
      EXPECT_NE(result.tree.node(id).split.kind, Split::Kind::kLinear);
    }
  }
}

TEST(CmpOptionsTest, IntervalCountAffectsGridButNotCorrectness) {
  const Dataset train = MakeData(AgrawalFunction::kF2, 15000, 163);
  for (const int intervals : {10, 50, 120}) {
    CmpOptions o = CmpSOptions();
    o.intervals = intervals;
    CmpBuilder builder(o);
    const BuildResult result = builder.Build(train);
    EXPECT_GT(Evaluate(result.tree, train).Accuracy(), 0.95)
        << intervals << " intervals";
  }
}

TEST(CmpOptionsTest, MaxAliveOne) {
  const Dataset train = MakeData(AgrawalFunction::kF2, 15000, 165);
  CmpOptions o = CmpSOptions();
  o.max_alive = 1;
  CmpBuilder builder(o);
  const BuildResult result = builder.Build(train);
  EXPECT_GT(Evaluate(result.tree, train).Accuracy(), 0.97);
}

TEST(CmpOptionsTest, NoPruneGrowsBiggerTree) {
  const Dataset train = MakeData(AgrawalFunction::kF2, 15000, 167);
  CmpOptions pruned = CmpSOptions();
  CmpOptions unpruned = CmpSOptions();
  unpruned.base.prune = false;
  CmpBuilder pb(pruned);
  CmpBuilder ub(unpruned);
  EXPECT_LE(pb.Build(train).tree.num_nodes(),
            ub.Build(train).tree.num_nodes());
}

TEST(CmpOptionsTest, NoInMemorySwitchStillCorrect) {
  const Dataset train = MakeData(AgrawalFunction::kF2, 10000, 169);
  CmpOptions o = CmpSOptions();
  o.base.in_memory_threshold = 0;
  CmpBuilder builder(o);
  const BuildResult result = builder.Build(train);
  EXPECT_GT(Evaluate(result.tree, train).Accuracy(), 0.97);
}

TEST(CmpName, VariantsHavePaperNames) {
  EXPECT_EQ(CmpBuilder(CmpSOptions()).name(), "CMP-S");
  EXPECT_EQ(CmpBuilder(CmpBOptions()).name(), "CMP-B");
  EXPECT_EQ(CmpBuilder(CmpFullOptions()).name(), "CMP");
}

}  // namespace
}  // namespace cmp
