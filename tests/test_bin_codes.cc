// The bin-code cache's one invariant: code(a, r) == grid.IntervalOf(v)
// for every record, for every grid shape the discretizer can produce —
// random data, values sitting exactly on cut boundaries, heavy ties that
// collapse duplicate cuts, single-interval grids, and grids wide enough
// to force the uint16_t code width. The byte-identical-trees contract of
// the kernel scan path rests entirely on this agreement.
#include "hist/bin_codes.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "common/schema.h"
#include "hist/quantiles.h"

namespace cmp {
namespace {

Schema OneNumericSchema() {
  return Schema({{"x", AttrKind::kNumeric, 0}}, {"neg", "pos"});
}

// Encodes `column` against `grid` and checks every code against
// IntervalOf, plus the expected code width.
void CheckAgreement(const IntervalGrid& grid,
                    const std::vector<double>& column, int want_width) {
  const Schema schema = OneNumericSchema();
  BinCodeCache codes(schema, static_cast<int64_t>(column.size()),
                     /*max_intervals=*/65536);
  ASSERT_TRUE(codes.enabled());
  codes.EncodeNumericColumn(0, grid, column);
  EXPECT_EQ(codes.width(0), want_width);
  for (size_t r = 0; r < column.size(); ++r) {
    ASSERT_EQ(codes.code(0, static_cast<RecordId>(r)),
              grid.IntervalOf(column[r]))
        << "record " << r << " value " << column[r];
  }
}

TEST(BinCodes, AgreesWithIntervalOfOnRandomData) {
  Rng rng(71);
  std::vector<double> column(5000);
  for (double& v : column) v = rng.Uniform(-100.0, 100.0);
  std::vector<double> sorted = column;
  std::sort(sorted.begin(), sorted.end());
  const IntervalGrid grid = IntervalGrid::EqualDepthFromSorted(sorted, 100);
  CheckAgreement(grid, column, /*want_width=*/1);
}

TEST(BinCodes, AgreesOnGridBoundaryValues) {
  // Interval i covers (b_i, b_{i+1}]: a value exactly equal to a cut
  // belongs to the interval BELOW it, and the binary search and the
  // encoder must agree on that closed edge. Encode the cut values
  // themselves, plus nearby off-cut values.
  const IntervalGrid grid =
      IntervalGrid::FromBoundaries({-3.0, 0.0, 1.5, 8.0}, -10.0, 10.0);
  std::vector<double> column;
  for (double cut : grid.boundaries()) {
    column.push_back(cut);
    column.push_back(cut - 1e-9);
    column.push_back(cut + 1e-9);
  }
  column.push_back(-1e9);  // below every cut
  column.push_back(1e9);   // above every cut
  CheckAgreement(grid, column, /*want_width=*/1);
}

TEST(BinCodes, AgreesWhenDuplicateCutsCollapse) {
  // Heavy ties (the commission == 0 spike in the Agrawal data is the
  // canonical case): most quantile cuts land on the same value and
  // collapse, so the actual interval count is far below the requested
  // one. The encoder must follow the ACTUAL grid.
  Rng rng(72);
  std::vector<double> column(4000);
  for (size_t i = 0; i < column.size(); ++i) {
    column[i] = i % 4 == 0 ? rng.Uniform(0.0, 50.0) : 0.0;
  }
  std::vector<double> sorted = column;
  std::sort(sorted.begin(), sorted.end());
  const IntervalGrid grid = IntervalGrid::EqualDepthFromSorted(sorted, 100);
  ASSERT_LT(grid.num_intervals(), 100);
  CheckAgreement(grid, column, /*want_width=*/1);
}

TEST(BinCodes, SingleIntervalGrid) {
  // A constant column collapses to one interval (no cuts at all); every
  // code must be 0.
  std::vector<double> column(100, 42.0);
  const IntervalGrid grid = IntervalGrid::EqualDepthFromSorted(
      std::vector<double>(100, 42.0), 10);
  ASSERT_EQ(grid.num_intervals(), 1);
  CheckAgreement(grid, column, /*want_width=*/1);
}

TEST(BinCodes, WideGridFallsBackToSixteenBitCodes) {
  // More than 256 intervals cannot fit a uint8_t; the column must
  // switch to uint16_t codes and still agree everywhere.
  std::vector<double> cuts;
  for (int i = 0; i < 300; ++i) cuts.push_back(static_cast<double>(i));
  const IntervalGrid grid =
      IntervalGrid::FromBoundaries(std::move(cuts), 0.0, 300.0);
  ASSERT_GT(grid.num_intervals(), 256);
  Rng rng(73);
  std::vector<double> column(3000);
  for (double& v : column) v = rng.Uniform(-5.0, 305.0);
  for (int i = 0; i < 300; ++i) column.push_back(static_cast<double>(i));
  CheckAgreement(grid, column, /*want_width=*/2);
}

TEST(BinCodes, CategoricalWidthsFollowObservedValues) {
  const Schema schema = Schema(
      {{"small", AttrKind::kCategorical, 7},
       {"wide", AttrKind::kCategorical, 1000}},
      {"a", "b"});
  BinCodeCache codes(schema, 4, /*max_intervals=*/100);
  ASSERT_TRUE(codes.enabled());
  codes.EncodeCategoricalColumn(0, {0, 6, 3, 0});
  codes.EncodeCategoricalColumn(1, {0, 999, 255, 256});
  EXPECT_EQ(codes.width(0), 1);
  EXPECT_EQ(codes.width(1), 2);
  EXPECT_EQ(codes.code(0, 1), 6);
  EXPECT_EQ(codes.code(1, 1), 999);
  EXPECT_EQ(codes.code(1, 2), 255);
  EXPECT_EQ(codes.code(1, 3), 256);
}

TEST(BinCodes, GateDisablesCacheBeyondSixteenBits) {
  // A grid cap or a categorical cardinality beyond 65536 rows cannot be
  // coded in two bytes; the whole cache disables itself up front.
  const Schema numeric = OneNumericSchema();
  EXPECT_FALSE(BinCodeCache(numeric, 10, /*max_intervals=*/65537).enabled());
  EXPECT_TRUE(BinCodeCache(numeric, 10, /*max_intervals=*/65536).enabled());
  const Schema huge_cat = Schema(
      {{"c", AttrKind::kCategorical, 70000}}, {"a", "b"});
  EXPECT_FALSE(BinCodeCache(huge_cat, 10, /*max_intervals=*/100).enabled());
  EXPECT_FALSE(BinCodeCache().enabled());
}

TEST(BinCodes, LabelsAndMemoryAccounting) {
  const Schema schema = OneNumericSchema();
  BinCodeCache codes(schema, 3, /*max_intervals=*/10);
  ASSERT_TRUE(codes.enabled());
  codes.EncodeNumericColumn(0, IntervalGrid::FromBoundaries({1.0}, 0.0, 2.0),
                            {0.5, 1.0, 1.5});
  codes.SetLabels({1, 0, 1});
  EXPECT_EQ(codes.label(0), 1);
  EXPECT_EQ(codes.label(1), 0);
  EXPECT_EQ(codes.label(2), 1);
  // 3 one-byte codes + 3 labels: the cache must report at least that.
  EXPECT_GE(codes.MemoryBytes(),
            3 + 3 * static_cast<int64_t>(sizeof(ClassId)));
}

}  // namespace
}  // namespace cmp
