#include "stream/stream_train.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "datagen/drift.h"
#include "io/block_source.h"
#include "io/sketch_sidecar.h"
#include "stream/refit.h"
#include "tree/evaluate.h"
#include "tree/observer.h"
#include "tree/serialize.h"

namespace cmp {
namespace {

Dataset MakeData(AgrawalFunction function, int64_t records, uint64_t seed) {
  AgrawalOptions o;
  o.function = function;
  o.num_records = records;
  o.seed = seed;
  return GenerateAgrawal(o);
}

double Accuracy(const DecisionTree& tree, const Dataset& ds) {
  const Evaluation eval = Evaluate(tree, ds);
  return static_cast<double>(eval.correct) /
         static_cast<double>(eval.total);
}

// Captures per-pass observability, including the new sketch fields.
class RecordingObserver : public TrainObserver {
 public:
  void OnPass(const PassObservation& pass) override {
    max_sketch_bytes = std::max(max_sketch_bytes, pass.sketch_bytes);
    total_refit_regrown += pass.refit_leaves_regrown;
    passes++;
  }
  int64_t max_sketch_bytes = 0;
  int64_t total_refit_regrown = 0;
  int passes = 0;
};

BuildResult TrainStream(const Dataset& ds, int threads, int64_t block,
                        SketchSidecar* sidecar,
                        TrainObserver* observer = nullptr) {
  StreamOptions o;
  o.base.num_threads = threads;
  o.base.observer = observer;
  DatasetBlockSource source(ds, block);
  BuildResult result;
  std::string error;
  EXPECT_TRUE(StreamTrain(source, o, &result, sidecar, &error)) << error;
  return result;
}

TEST(StreamTrain, ByteIdenticalAcrossThreadsBlocksAndReruns) {
  const Dataset ds = MakeData(AgrawalFunction::kF2, 20000, 3);
  SketchSidecar sc1, sc2;
  const std::string base =
      SerializeTree(TrainStream(ds, 1, 0, &sc1).tree);
  EXPECT_EQ(base, SerializeTree(TrainStream(ds, 4, 0, &sc2).tree))
      << "thread count changed the tree";
  EXPECT_EQ(base, SerializeTree(TrainStream(ds, 2, 777, &sc2).tree))
      << "block size changed the tree";
  EXPECT_EQ(base, SerializeTree(TrainStream(ds, 1, 4096, &sc2).tree))
      << "rerun/block changed the tree";
  // The sidecar is equally deterministic (same leaves, same bytes).
  const std::vector<uint8_t> sidecar_bytes = SerializeSketchSidecar(sc1);
  SketchSidecar sc3;
  TrainStream(ds, 8, 123, &sc3);
  EXPECT_EQ(sidecar_bytes, SerializeSketchSidecar(sc3));
}

TEST(StreamTrain, RegistryBuilderMatchesDirectCall) {
  const Dataset ds = MakeData(AgrawalFunction::kF2, 8000, 5);
  StreamOptions o;
  StreamBuilder builder(o);
  const BuildResult via_builder = builder.Build(ds);
  SketchSidecar sidecar;
  const BuildResult direct = TrainStream(ds, 1, 0, &sidecar);
  EXPECT_EQ(SerializeTree(via_builder.tree), SerializeTree(direct.tree));
  EXPECT_EQ(SerializeSketchSidecar(builder.sidecar()),
            SerializeSketchSidecar(sidecar));
}

TEST(StreamTrain, AccuracyWithinOnePointOfBatchCmp) {
  for (AgrawalFunction f :
       {AgrawalFunction::kF2, AgrawalFunction::kF7}) {
    const Dataset train = MakeData(f, 30000, 1);
    const Dataset test = MakeData(f, 10000, 2);

    CmpBuilder batch(CmpFullOptions());
    const double batch_acc = Accuracy(batch.Build(train).tree, test);

    SketchSidecar sidecar;
    const double stream_acc =
        Accuracy(TrainStream(train, 1, 0, &sidecar).tree, test);

    EXPECT_GE(stream_acc, batch_acc - 0.01)
        << "f=" << static_cast<int>(f) << " batch=" << batch_acc
        << " stream=" << stream_acc;
  }
}

TEST(StreamTrain, SketchMemoryIsSublinear) {
  // Raw numeric data is 6 doubles/record; the sketch state the trainer
  // holds must stay a small fraction of it and grow far slower than n.
  RecordingObserver small_obs, large_obs;
  SketchSidecar sidecar;
  const Dataset small = MakeData(AgrawalFunction::kF7, 20000, 9);
  const Dataset large = MakeData(AgrawalFunction::kF7, 80000, 9);
  TrainStream(small, 1, 0, &sidecar, &small_obs);
  TrainStream(large, 1, 0, &sidecar, &large_obs);

  ASSERT_GT(small_obs.max_sketch_bytes, 0);
  ASSERT_GT(large_obs.max_sketch_bytes, 0);
  const int64_t large_raw = large.num_records() * 6 * 8;
  EXPECT_LT(large_obs.max_sketch_bytes, large_raw / 2);
  // 4x the records must cost far less than 4x the sketch bytes
  // (O(k log n) per node, and deeper frontiers stay bounded).
  EXPECT_LT(large_obs.max_sketch_bytes, 3 * small_obs.max_sketch_bytes);
}

TEST(StreamTrain, EmptyStream) {
  Dataset ds(AgrawalSchema());
  SketchSidecar sidecar;
  const BuildResult result = TrainStream(ds, 1, 0, &sidecar);
  ASSERT_EQ(result.tree.num_nodes(), 1);
  EXPECT_TRUE(result.tree.node(0).is_leaf);
}

// -- Incremental refit --------------------------------------------------

struct RefitRun {
  DecisionTree tree;
  SketchSidecar sidecar;
  RefitStats stats;
};

RefitRun TrainThenRefit(const Dataset& first, const Dataset& second,
                        double drift_threshold = 0.15,
                        TrainObserver* observer = nullptr) {
  RefitRun run;
  const BuildResult result = TrainStream(first, 1, 0, &run.sidecar);
  run.tree = result.tree;
  RefitOptions o;
  o.drift_threshold = drift_threshold;
  o.stream.base.observer = observer;
  DatasetBlockSource source(second);
  BuildStats build_stats;
  std::string error;
  EXPECT_TRUE(RefitTree(&run.tree, &run.sidecar, source, o, &build_stats,
                        &run.stats, &error))
      << error;
  return run;
}

TEST(Refit, RecoversAccuracyAfterConceptDrift) {
  // Train on F2, then the concept suddenly becomes F7 (the drifting
  // generator's covariates are identical — only labels change).
  DriftOptions d;
  d.before = AgrawalFunction::kF2;
  d.after = AgrawalFunction::kF7;
  d.num_records = 60000;
  d.drift_at = 30000;
  d.seed = 4;
  const Dataset all = GenerateDriftingAgrawal(d);
  Dataset first(all.schema()), second(all.schema());
  std::vector<double> nv(6);
  std::vector<int32_t> cv(3);
  for (RecordId r = 0; r < all.num_records(); ++r) {
    for (AttrId a = 0, n = 0, c = 0; a < all.schema().num_attrs(); ++a) {
      if (all.schema().attr(a).kind == AttrKind::kNumeric) {
        nv[n++] = all.numeric(a, r);
      } else {
        cv[c++] = all.categorical(a, r);
      }
    }
    (r < d.drift_at ? first : second).Append(nv, cv, all.label(r));
  }

  const Dataset holdout = MakeData(AgrawalFunction::kF7, 10000, 99);
  RecordingObserver obs;
  RefitRun run = TrainThenRefit(first, second, 0.15, &obs);

  SketchSidecar pre_sidecar;
  const double before =
      Accuracy(TrainStream(first, 1, 0, &pre_sidecar).tree, holdout);
  const double after = Accuracy(run.tree, holdout);
  EXPECT_GT(run.stats.leaves_regrown, 0);
  EXPECT_EQ(obs.total_refit_regrown, run.stats.leaves_regrown);
  EXPECT_GT(after, before + 0.15) << "refit did not recover from drift";
  EXPECT_GT(after, 0.90);
}

TEST(Refit, InteriorNodeBytesUntouched) {
  const Dataset first = MakeData(AgrawalFunction::kF2, 20000, 6);
  const Dataset second = MakeData(AgrawalFunction::kF7, 20000, 7);

  SketchSidecar sidecar;
  const BuildResult base = TrainStream(first, 1, 0, &sidecar);
  const int old_nodes = base.tree.num_nodes();

  DecisionTree tree = base.tree;
  RefitOptions o;
  DatasetBlockSource source(second);
  BuildStats build_stats;
  RefitStats refit_stats;
  std::string error;
  ASSERT_TRUE(RefitTree(&tree, &sidecar, source, o, &build_stats,
                        &refit_stats, &error))
      << error;

  // New nodes only ever append; pre-existing interior nodes keep their
  // exact split bytes (leaves may flip to interior or update counts).
  ASSERT_GE(tree.num_nodes(), old_nodes);
  for (NodeId id = 0; id < old_nodes; ++id) {
    const TreeNode& was = base.tree.node(id);
    const TreeNode& now = tree.node(id);
    if (was.is_leaf) continue;
    EXPECT_FALSE(now.is_leaf);
    EXPECT_EQ(was.split.kind, now.split.kind) << "node " << id;
    EXPECT_EQ(was.split.attr, now.split.attr) << "node " << id;
    EXPECT_EQ(was.split.threshold, now.split.threshold) << "node " << id;
    EXPECT_EQ(was.split.attr2, now.split.attr2) << "node " << id;
    EXPECT_EQ(was.split.a, now.split.a) << "node " << id;
    EXPECT_EQ(was.split.b, now.split.b) << "node " << id;
    EXPECT_EQ(was.split.c, now.split.c) << "node " << id;
    EXPECT_EQ(was.split.left_subset, now.split.left_subset) << "node " << id;
    EXPECT_EQ(was.left, now.left);
    EXPECT_EQ(was.right, now.right);
    EXPECT_EQ(was.depth, now.depth);
  }
  EXPECT_GT(refit_stats.leaves_regrown, 0);
}

TEST(Refit, DeterministicAcrossThreadCounts) {
  const Dataset first = MakeData(AgrawalFunction::kF2, 15000, 8);
  const Dataset second = MakeData(AgrawalFunction::kF7, 15000, 9);

  auto run = [&](int threads) {
    SketchSidecar sidecar;
    const BuildResult base = TrainStream(first, 1, 0, &sidecar);
    DecisionTree tree = base.tree;
    RefitOptions o;
    o.stream.base.num_threads = threads;
    DatasetBlockSource source(second, threads * 531);
    BuildStats bs;
    RefitStats rs;
    std::string error;
    EXPECT_TRUE(
        RefitTree(&tree, &sidecar, source, o, &bs, &rs, &error))
        << error;
    return SerializeTree(tree) + "\n====\n" +
           std::string(reinterpret_cast<const char*>(
                           SerializeSketchSidecar(sidecar).data()),
                       SerializeSketchSidecar(sidecar).size());
  };
  const std::string one = run(1);
  EXPECT_EQ(one, run(4));
  EXPECT_EQ(one, run(1));
}

TEST(Refit, AbsorbsStationaryDataWithoutRegrowing) {
  // Same concept, fresh records: distributions at the leaves barely
  // move, so a reasonable threshold regrows nothing and the tree keeps
  // its shape (counts and sidecar still advance).
  const Dataset first = MakeData(AgrawalFunction::kF2, 20000, 10);
  const Dataset second = MakeData(AgrawalFunction::kF2, 20000, 11);
  SketchSidecar sidecar;
  const BuildResult base = TrainStream(first, 1, 0, &sidecar);
  const int64_t seen_before = sidecar.records_seen;

  DecisionTree tree = base.tree;
  RefitOptions o;
  o.drift_threshold = 0.45;
  DatasetBlockSource source(second);
  BuildStats bs;
  RefitStats rs;
  std::string error;
  ASSERT_TRUE(RefitTree(&tree, &sidecar, source, o, &bs, &rs, &error))
      << error;
  EXPECT_EQ(rs.leaves_regrown, 0);
  EXPECT_EQ(tree.num_nodes(), base.tree.num_nodes());
  EXPECT_EQ(sidecar.records_seen, seen_before + second.num_records());
  EXPECT_GT(rs.leaves_touched, 0);
  // The leaves absorbed every new record (interior counts are part of
  // the untouched interior bytes and intentionally stay at their
  // training-time values).
  int64_t total = 0;
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    if (!tree.node(id).is_leaf) continue;
    for (int64_t c : tree.node(id).class_counts) total += c;
  }
  EXPECT_EQ(total, first.num_records() + second.num_records());
}

TEST(Refit, ComposableTwice) {
  // refit(refit(tree)) keeps working off the updated sidecar.
  const Dataset first = MakeData(AgrawalFunction::kF2, 10000, 12);
  const Dataset second = MakeData(AgrawalFunction::kF7, 10000, 13);
  const Dataset third = MakeData(AgrawalFunction::kF7, 10000, 14);

  SketchSidecar sidecar;
  const BuildResult base = TrainStream(first, 1, 0, &sidecar);
  DecisionTree tree = base.tree;
  RefitOptions o;
  BuildStats bs;
  RefitStats rs;
  std::string error;
  DatasetBlockSource s2(second);
  ASSERT_TRUE(RefitTree(&tree, &sidecar, s2, o, &bs, &rs, &error)) << error;
  DatasetBlockSource s3(third);
  ASSERT_TRUE(RefitTree(&tree, &sidecar, s3, o, &bs, &rs, &error)) << error;
  EXPECT_EQ(sidecar.records_seen, 30000);

  const Dataset holdout = MakeData(AgrawalFunction::kF7, 5000, 15);
  EXPECT_GT(Accuracy(tree, holdout), 0.9);
}

TEST(Refit, RejectsMismatchedSidecar) {
  const Dataset first = MakeData(AgrawalFunction::kF2, 5000, 16);
  SketchSidecar sidecar;
  const BuildResult base = TrainStream(first, 1, 0, &sidecar);

  // A sidecar whose leaf keys do not exist as leaves in the tree.
  SketchSidecar bogus = sidecar;
  ASSERT_FALSE(bogus.leaves.empty());
  bogus.leaves.front().node = base.tree.num_nodes() + 7;
  DecisionTree tree = base.tree;
  RefitOptions o;
  DatasetBlockSource source(first);
  BuildStats bs;
  RefitStats rs;
  std::string error;
  EXPECT_FALSE(RefitTree(&tree, &bogus, source, o, &bs, &rs, &error));
  EXPECT_FALSE(error.empty());

  // A schema-incompatible sidecar.
  SketchSidecar wrong_schema = sidecar;
  wrong_schema.num_classes = 5;
  error.clear();
  EXPECT_FALSE(
      RefitTree(&tree, &wrong_schema, source, o, &bs, &rs, &error));
  EXPECT_FALSE(error.empty());
}

// -- The drifting generator itself --------------------------------------

TEST(DriftGenerator, CovariatesMatchStationaryStream) {
  DriftOptions d;
  d.before = AgrawalFunction::kF2;
  d.after = AgrawalFunction::kF7;
  d.num_records = 5000;
  d.drift_at = 2500;
  d.seed = 21;
  const Dataset drifted = GenerateDriftingAgrawal(d);

  AgrawalOptions a;
  a.function = AgrawalFunction::kF2;
  a.num_records = 5000;
  a.seed = 21;
  const Dataset stationary = GenerateAgrawal(a);

  ASSERT_EQ(drifted.num_records(), stationary.num_records());
  int64_t label_changes_before = 0, label_changes_after = 0;
  for (RecordId r = 0; r < drifted.num_records(); ++r) {
    for (AttrId at = 0; at < drifted.schema().num_attrs(); ++at) {
      if (drifted.schema().attr(at).kind == AttrKind::kNumeric) {
        ASSERT_EQ(drifted.numeric(at, r), stationary.numeric(at, r));
      } else {
        ASSERT_EQ(drifted.categorical(at, r), stationary.categorical(at, r));
      }
    }
    const bool differs = drifted.label(r) != stationary.label(r);
    (r < d.drift_at ? label_changes_before : label_changes_after) +=
        differs ? 1 : 0;
  }
  EXPECT_EQ(label_changes_before, 0) << "labels drifted before drift_at";
  EXPECT_GT(label_changes_after, 0) << "no concept shift happened";
}

TEST(DriftGenerator, BoundaryValues) {
  DriftOptions d;
  d.before = AgrawalFunction::kF1;
  d.after = AgrawalFunction::kF7;
  d.num_records = 1000;
  d.seed = 22;

  d.drift_at = 0;  // whole stream on `after`
  const Dataset all_after = GenerateDriftingAgrawal(d);
  AgrawalOptions a;
  a.function = AgrawalFunction::kF7;
  a.num_records = 1000;
  a.seed = 22;
  const Dataset expect_after = GenerateAgrawal(a);
  for (RecordId r = 0; r < 1000; ++r) {
    ASSERT_EQ(all_after.label(r), expect_after.label(r));
  }

  d.drift_at = 1000;  // never drifts
  const Dataset all_before = GenerateDriftingAgrawal(d);
  a.function = AgrawalFunction::kF1;
  const Dataset expect_before = GenerateAgrawal(a);
  for (RecordId r = 0; r < 1000; ++r) {
    ASSERT_EQ(all_before.label(r), expect_before.label(r));
  }
}

}  // namespace
}  // namespace cmp
