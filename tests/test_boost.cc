// The boost meta-builder: gradient-boosted CMP trees behind the same
// TreeBuilder registry, serialization, and inference surfaces as every
// single-tree algorithm. The contracts under test: the ensemble beats
// the single depth-capped weak learner it is made of, the build is
// bit-deterministic (no RNG, so thread counts and reruns cannot move a
// byte), early stopping is reproducible, and a saved forest scores
// identically through text, blob, and EnsemblePredictor paths.
#include "boost/boost.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "infer/ensemble.h"
#include "infer/model_io.h"
#include "tree/builder.h"
#include "tree/serialize.h"

namespace cmp {
namespace {

Dataset Agrawal(AgrawalFunction f, int64_t n, uint64_t seed) {
  AgrawalOptions gen;
  gen.function = f;
  gen.num_records = n;
  gen.seed = seed;
  return GenerateAgrawal(gen);
}

// Additive score of a forest on one record, straight from the leaf
// encoding: F(x) = sum of DecodeLeafValue over the leaves x lands in.
double AdditiveScore(const std::vector<DecisionTree>& forest,
                     const Dataset& ds, RecordId r) {
  double f = 0.0;
  for (const DecisionTree& tree : forest) {
    const TreeNode& leaf = tree.node(tree.LeafOf(ds, r));
    f += BoostBuilder::DecodeLeafValue(leaf.class_counts[0],
                                       leaf.class_counts[1]);
  }
  return f;
}

double HoldoutAccuracy(const std::vector<DecisionTree>& forest,
                       const Dataset& test) {
  int64_t hits = 0;
  for (RecordId r = 0; r < test.num_records(); ++r) {
    const ClassId pred = AdditiveScore(forest, test, r) > 0.0 ? 1 : 0;
    hits += pred == test.label(r) ? 1 : 0;
  }
  return static_cast<double>(hits) /
         static_cast<double>(test.num_records());
}

TEST(Boost, RegisteredInTheBuilderRegistry) {
  const std::vector<std::string> names = RegisteredTreeBuilders();
  EXPECT_NE(std::find(names.begin(), names.end(), "boost"), names.end());
  std::unique_ptr<TreeBuilder> builder = MakeTreeBuilder("boost");
  ASSERT_NE(builder, nullptr);
  EXPECT_EQ(builder->name(), "Boost");
}

TEST(Boost, RegistryForwardsBoostConfig) {
  BuilderConfig config;
  config.boost.rounds = 3;
  config.boost.holdout = 0.0;  // no early stop: exactly 3 rounds
  std::unique_ptr<TreeBuilder> builder = MakeTreeBuilder("boost", config);
  ASSERT_NE(builder, nullptr);
  const BuildResult result = builder->Build(Agrawal(AgrawalFunction::kF1,
                                                    1500, 311));
  EXPECT_EQ(result.forest.size(), 3u);
  // BuildResult::tree is the forest's first member.
  EXPECT_EQ(SerializeTree(result.tree), SerializeTree(result.forest[0]));
}

// The acceptance contract: on functions a depth-capped single tree
// cannot nail, boosting the SAME weak learner must close part of the
// gap on held-out data.
TEST(Boost, BeatsItsOwnWeakLearnerOnHoldout) {
  for (const AgrawalFunction f :
       {AgrawalFunction::kF2, AgrawalFunction::kF7}) {
    const Dataset train = Agrawal(f, 6000, 401);
    const Dataset test = Agrawal(f, 3000, 402);

    BoostOptions opts;
    opts.boost.rounds = 25;
    opts.boost.weak_depth = 3;  // weak enough to leave headroom
    const BuildResult boosted = BoostBuilder(opts).Build(train);
    ASSERT_FALSE(boosted.forest.empty());

    // The single-tree baseline: one weak learner of the same shape.
    CmpOptions weak = CmpBOptions();
    weak.base.max_depth = 3;
    weak.base.prune = false;
    const BuildResult single = CmpBuilder(weak).Build(train);

    const auto accuracy_of = [&test](const DecisionTree& tree) {
      int64_t hits = 0;
      for (RecordId r = 0; r < test.num_records(); ++r) {
        hits += tree.Classify(test, r) == test.label(r) ? 1 : 0;
      }
      return static_cast<double>(hits) /
             static_cast<double>(test.num_records());
    };
    const double single_acc = accuracy_of(single.tree);
    const double boost_acc = HoldoutAccuracy(boosted.forest, test);
    EXPECT_GT(boost_acc, single_acc)
        << "function " << static_cast<int>(f) << ": boost " << boost_acc
        << " vs single " << single_acc;
  }
}

// No RNG anywhere in the pipeline: the forest bytes cannot depend on
// the thread count, and a rerun reproduces them exactly.
TEST(Boost, ForestBytesInvariantAcrossThreadsAndReruns) {
  const Dataset train = Agrawal(AgrawalFunction::kF2, 4000, 421);
  BoostOptions opts;
  opts.boost.rounds = 8;
  const auto build = [&train](BoostOptions o, int threads) {
    o.base.num_threads = threads;
    return SerializeForest(BoostBuilder(o).Build(train).forest);
  };
  const std::string reference = build(opts, 1);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(build(opts, 2), reference);
  EXPECT_EQ(build(opts, 4), reference);
  EXPECT_EQ(build(opts, 1), reference) << "rerun";
}

TEST(Boost, EarlyStopsDeterministically) {
  // Labels independent of the attributes: after the intercept round the
  // holdout log-loss cannot keep improving, so the patience window must
  // truncate the forest well short of the round budget — identically on
  // every run.
  Schema schema({{"x", AttrKind::kNumeric, 0}, {"y", AttrKind::kNumeric, 0}},
                {"neg", "pos"});
  Dataset noise(schema);
  uint64_t state = 0x9E3779B97F4A7C15ULL;
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 2000; ++i) {
    const double x = static_cast<double>(next() % 1000);
    const double y = static_cast<double>(next() % 1000);
    noise.Append({x, y}, {}, static_cast<ClassId>(next() % 2));
  }
  BoostOptions opts;
  opts.boost.rounds = 40;
  opts.boost.patience = 3;
  const BuildResult first = BoostBuilder(opts).Build(noise);
  EXPECT_LT(first.forest.size(), 40u) << "early stop never triggered";
  ASSERT_FALSE(first.forest.empty());
  const BuildResult second = BoostBuilder(opts).Build(noise);
  EXPECT_EQ(first.forest.size(), second.forest.size());
  EXPECT_EQ(SerializeForest(first.forest), SerializeForest(second.forest));
}

TEST(Boost, NonBinaryProblemsThrow) {
  Schema schema({{"x", AttrKind::kNumeric, 0}}, {"a", "b", "c"});
  Dataset three(schema);
  for (int i = 0; i < 30; ++i) {
    three.Append({static_cast<double>(i)}, {}, static_cast<ClassId>(i % 3));
  }
  EXPECT_THROW(BoostBuilder().Build(three), std::invalid_argument);
}

TEST(Boost, LeafValueEncodingRoundTrips) {
  constexpr int64_t S = BoostBuilder::kLeafValueScale;
  constexpr double R = BoostBuilder::kLeafValueRange;
  // Quantization step is 2R/S ~ 2e-6; decode must invert encode within
  // half a step across the value range, and saturate cleanly at +-R.
  for (const double v : {-15.9, -4.0, -0.37, 0.0, 1e-6, 2.5, 15.9}) {
    const int64_t c1 =
        std::llround((v + R) / (2.0 * R) * static_cast<double>(S));
    EXPECT_NEAR(BoostBuilder::DecodeLeafValue(S - c1, c1), v,
                2.0 * R / static_cast<double>(S));
  }
  EXPECT_DOUBLE_EQ(BoostBuilder::DecodeLeafValue(S, 0), -R);
  EXPECT_DOUBLE_EQ(BoostBuilder::DecodeLeafValue(0, S), R);
}

TEST(Boost, ForestSerializationRoundTrips) {
  const Dataset train = Agrawal(AgrawalFunction::kF1, 1200, 431);
  BoostOptions opts;
  opts.boost.rounds = 4;
  opts.boost.holdout = 0.0;
  const BuildResult result = BoostBuilder(opts).Build(train);
  const std::string text = SerializeForest(result.forest);
  std::vector<DecisionTree> loaded;
  ASSERT_TRUE(DeserializeForest(text, &loaded));
  ASSERT_EQ(loaded.size(), result.forest.size());
  EXPECT_EQ(SerializeForest(loaded), text);
  // LoadTrees-style sniffing: a single serialized tree is NOT a forest.
  EXPECT_FALSE(DeserializeForest(SerializeTree(result.tree), &loaded));
}

// The inference contract the leaf encoding exists for: kAverageProb
// over the compiled blob reproduces sign(sum of leaf values) — the same
// labels as scoring the additive model directly, through bytes that
// round-tripped PackModelBlob.
TEST(Boost, BlobEnsembleScoringMatchesAdditiveModel) {
  const Dataset train = Agrawal(AgrawalFunction::kF2, 4000, 441);
  const Dataset test = Agrawal(AgrawalFunction::kF2, 1500, 442);
  BoostOptions opts;
  opts.boost.rounds = 10;
  const BuildResult result = BoostBuilder(opts).Build(train);
  ASSERT_GT(result.forest.size(), 1u);

  std::vector<const DecisionTree*> ptrs;
  for (const DecisionTree& t : result.forest) ptrs.push_back(&t);
  std::string error;
  CompiledModel model = CompileModel(ptrs, &error);
  ASSERT_FALSE(model.empty()) << error;
  ASSERT_EQ(model.num_trees(), static_cast<int>(result.forest.size()));

  const EnsemblePredictor predictor(std::move(model.trees),
                                    VoteKind::kAverageProb);
  const BatchResult batch = predictor.Predict(test);
  ASSERT_EQ(batch.labels.size(), static_cast<size_t>(test.num_records()));
  for (RecordId r = 0; r < test.num_records(); ++r) {
    const double f = AdditiveScore(result.forest, test, r);
    // At f == 0 the averaged probabilities tie and kAverageProb takes
    // the lower class id, matching the additive model's 0-threshold
    // only by convention; skip the measure-zero boundary.
    if (f == 0.0) continue;
    EXPECT_EQ(batch.labels[r], f > 0.0 ? 1 : 0) << "record " << r;
  }
}

}  // namespace
}  // namespace cmp