#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace cmp {
namespace {

TEST(ThreadPool, InlinePoolRunsTasksOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0);
  int ran = 0;
  pool.Submit([&ran] { ++ran; });
  pool.Wait();
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) pool.Submit([&ran] { ran.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(ran.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    const int64_t n = 10001;
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, 64, [&hits](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPool, ParallelForDefaultGrainAndEmptyRange) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, 0, [&sum](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
  pool.ParallelFor(0, 8, [](int64_t, int64_t) { FAIL(); });
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ZeroAndSingleItemParallelFor) {
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    pool.ParallelFor(0, 1, [](int64_t, int64_t) { FAIL(); });
    std::atomic<int> calls{0};
    pool.ParallelFor(1, 16, [&calls](int64_t begin, int64_t end) {
      EXPECT_EQ(begin, 0);
      EXPECT_EQ(end, 1);
      calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 1) << threads << " threads";
  }
}

TEST(ThreadPool, SubmitExceptionPropagatesAtWait) {
  for (const int threads : {1, 3}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    pool.Submit([] { throw std::runtime_error("boom"); });
    for (int i = 0; i < 10; ++i) pool.Submit([&ran] { ran.fetch_add(1); });
    EXPECT_THROW(pool.Wait(), std::runtime_error) << threads << " threads";
    // One failure does not poison the pool: later rounds run and Wait
    // returns cleanly.
    EXPECT_EQ(ran.load(), 10);
    pool.Submit([&ran] { ran.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(ran.load(), 11);
  }
}

TEST(ThreadPool, ParallelForExceptionPropagatesToCaller) {
  for (const int threads : {1, 4}) {
    ThreadPool pool(threads);
    // Throw from whichever chunk covers index 50 — one chunk [0, 100)
    // on the inline pool, a middle chunk otherwise.
    EXPECT_THROW(pool.ParallelFor(100, 8,
                                  [](int64_t begin, int64_t end) {
                                    if (begin <= 50 && 50 < end) {
                                      throw std::runtime_error("chunk");
                                    }
                                  }),
                 std::runtime_error)
        << threads << " threads";
    // The pool survives: a following ParallelFor covers everything.
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(100, 8, [&sum](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
  }
}

TEST(ThreadPool, NestedParallelFor) {
  // An outer ParallelFor whose chunks launch inner ParallelFors on the
  // SAME pool: waiting callers help drain the queue, so this must
  // complete (no deadlock) and cover every (i, j) cell exactly once.
  ThreadPool pool(4);
  constexpr int64_t kOuter = 8;
  constexpr int64_t kInner = 101;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, 1, [&](int64_t obegin, int64_t oend) {
    for (int64_t i = obegin; i < oend; ++i) {
      pool.ParallelFor(kInner, 10, [&, i](int64_t begin, int64_t end) {
        for (int64_t j = begin; j < end; ++j) {
          hits[i * kInner + j].fetch_add(1);
        }
      });
    }
  });
  for (size_t k = 0; k < hits.size(); ++k) {
    ASSERT_EQ(hits[k].load(), 1) << "cell " << k;
  }
}

TEST(ThreadPool, NestedSubmitFromTask) {
  // Tasks may enqueue further tasks; Wait must not return before the
  // transitively submitted work finishes.
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &ran] {
      ran.fetch_add(1);
      pool.Submit([&ran] { ran.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, ConcurrentParallelForFromManyCallers) {
  // Independent user threads issuing ParallelFors against one pool:
  // each caller's group must complete with exactly its own coverage.
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr int64_t kN = 4096;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kN);
  }
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits, c] {
      for (int round = 0; round < 3; ++round) {
        pool.ParallelFor(kN, 64, [&hits, c](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) hits[c][i].fetch_add(1);
        });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[c][i].load(), 3) << "caller " << c << " index " << i;
    }
  }
}

}  // namespace
}  // namespace cmp
