#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace cmp {
namespace {

TEST(ThreadPool, InlinePoolRunsTasksOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0);
  int ran = 0;
  pool.Submit([&ran] { ++ran; });
  pool.Wait();
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) pool.Submit([&ran] { ran.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(ran.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    const int64_t n = 10001;
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(n, 64, [&hits](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPool, ParallelForDefaultGrainAndEmptyRange) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, 0, [&sum](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
  pool.ParallelFor(0, 8, [](int64_t, int64_t) { FAIL(); });
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 50);
}

}  // namespace
}  // namespace cmp
