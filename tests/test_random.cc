#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cmp {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(0, 4);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 4);
    seen[v]++;
  }
  for (int c : seen) EXPECT_GT(c, 1000);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0;
  double sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, GaussianWithParams) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, ReseedResets) {
  Rng rng(5);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(5);
  EXPECT_EQ(rng.Next(), first);
}

}  // namespace
}  // namespace cmp
