// Randomized robustness suite: every builder must produce a valid,
// reasonably accurate tree on randomly-shaped datasets — random schemas
// (numeric / categorical mixes), constant columns, duplicated records,
// skewed classes, tiny partitions — and the resulting trees must
// round-trip through serialization and classify deterministically.

#include <gtest/gtest.h>

#include <memory>

#include "clouds/clouds.h"
#include "cmp/cmp.h"
#include "common/random.h"
#include "exact/exact.h"
#include "rainforest/rainforest.h"
#include "sliq/sliq.h"
#include "sprint/sprint.h"
#include "tree/evaluate.h"
#include "tree/serialize.h"

namespace cmp {
namespace {

// A random dataset whose label depends (noisily) on a random subset of
// the attributes; some attributes are constant, some duplicated.
Dataset RandomDataset(uint64_t seed, int64_t n) {
  Rng rng(seed);
  const int num_numeric = 1 + static_cast<int>(rng.UniformInt(0, 3));
  const int num_cat = static_cast<int>(rng.UniformInt(0, 2));
  std::vector<AttrInfo> attrs;
  for (int i = 0; i < num_numeric; ++i) {
    std::string name = "n";
    name += std::to_string(i);
    attrs.push_back({std::move(name), AttrKind::kNumeric, 0});
  }
  for (int i = 0; i < num_cat; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    attrs.push_back({std::move(name), AttrKind::kCategorical,
                     2 + static_cast<int32_t>(rng.UniformInt(0, 6))});
  }
  const int num_classes = 2 + static_cast<int>(rng.UniformInt(0, 2));
  std::vector<std::string> class_names;
  for (int c = 0; c < num_classes; ++c) {
    std::string name = "k";
    name += std::to_string(c);
    class_names.push_back(std::move(name));
  }
  Dataset ds(Schema(std::move(attrs), std::move(class_names)));

  const bool constant_first = rng.Bernoulli(0.3);
  const double noise = rng.Uniform(0.0, 0.1);
  std::vector<double> nvals(num_numeric);
  std::vector<int32_t> cvals(num_cat);
  for (int64_t i = 0; i < n; ++i) {
    for (int a = 0; a < num_numeric; ++a) {
      nvals[a] = constant_first && a == 0 ? 42.0 : rng.Uniform(-10, 10);
    }
    for (int a = 0; a < num_cat; ++a) {
      cvals[a] = static_cast<int32_t>(
          rng.UniformInt(0, ds.schema().attr(num_numeric + a).cardinality -
                                1));
    }
    // Label: threshold on the last numeric attribute (always non-const),
    // shifted by the first categorical value if present, plus noise.
    int label = nvals[num_numeric - 1] > 0 ? 1 : 0;
    if (num_cat > 0 && cvals[0] == 0) label = 1 - label;
    if (rng.Bernoulli(noise)) {
      label = static_cast<int>(rng.UniformInt(0, num_classes - 1));
    }
    label = label % num_classes;
    ds.Append(nvals, cvals, static_cast<ClassId>(label));
    // Occasionally duplicate the record exactly.
    if (rng.Bernoulli(0.05)) {
      ds.Append(nvals, cvals, static_cast<ClassId>(label));
    }
  }
  return ds;
}

std::vector<std::unique_ptr<TreeBuilder>> AllBuilders() {
  std::vector<std::unique_ptr<TreeBuilder>> builders;
  builders.push_back(std::make_unique<CmpBuilder>(CmpSOptions()));
  builders.push_back(std::make_unique<CmpBuilder>(CmpBOptions()));
  builders.push_back(std::make_unique<CmpBuilder>(CmpFullOptions()));
  builders.push_back(std::make_unique<SprintBuilder>());
  builders.push_back(std::make_unique<SliqBuilder>());
  builders.push_back(std::make_unique<CloudsBuilder>());
  builders.push_back(std::make_unique<RainForestBuilder>());
  builders.push_back(std::make_unique<ExactBuilder>());
  return builders;
}

// Checks structural sanity of a tree: children linkage, reachable class
// counts, consistent depths.
void CheckTreeInvariants(const DecisionTree& tree) {
  ASSERT_GT(tree.num_nodes(), 0);
  std::vector<std::pair<NodeId, int>> stack = {{0, 0}};
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    const TreeNode& n = tree.node(id);
    if (n.is_leaf) {
      EXPECT_GE(n.leaf_class, 0);
      EXPECT_LT(n.leaf_class, tree.schema().num_classes());
    } else {
      ASSERT_NE(n.left, kInvalidNode);
      ASSERT_NE(n.right, kInvalidNode);
      ASSERT_LT(n.left, tree.num_nodes());
      ASSERT_LT(n.right, tree.num_nodes());
      ASSERT_NE(n.left, id);
      ASSERT_NE(n.right, id);
      stack.push_back({n.left, depth + 1});
      stack.push_back({n.right, depth + 1});
    }
  }
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, AllBuildersSurviveRandomData) {
  const Dataset ds = RandomDataset(1000 + GetParam(), 1500);
  for (auto& builder : AllBuilders()) {
    const BuildResult result = builder->Build(ds);
    CheckTreeInvariants(result.tree);
    // The concept is learnable up to its noise level; require a weak
    // but real signal and determinism.
    const Evaluation eval = Evaluate(result.tree, ds);
    EXPECT_GT(eval.Accuracy(), 0.5) << builder->name();
    // Classification is deterministic.
    for (RecordId r = 0; r < 20 && r < ds.num_records(); ++r) {
      EXPECT_EQ(result.tree.Classify(ds, r), result.tree.Classify(ds, r));
    }
    // Serialization round-trips classifications.
    DecisionTree loaded;
    ASSERT_TRUE(DeserializeTree(SerializeTree(result.tree), &loaded))
        << builder->name();
    for (RecordId r = 0; r < 50 && r < ds.num_records(); ++r) {
      EXPECT_EQ(loaded.Classify(ds, r), result.tree.Classify(ds, r))
          << builder->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 8));

TEST(FuzzEdge, AllRecordsIdentical) {
  Schema schema({{"x", AttrKind::kNumeric, 0}}, {"a", "b"});
  Dataset ds(schema);
  for (int i = 0; i < 100; ++i) {
    ds.Append({1.0}, {}, i % 2);
  }
  for (auto& builder : AllBuilders()) {
    const BuildResult result = builder->Build(ds);
    CheckTreeInvariants(result.tree);
    // No split can separate identical records; every builder must cope
    // (a single leaf predicting either class).
    EXPECT_EQ(result.tree.NumLeaves(), 1) << builder->name();
  }
}

TEST(FuzzEdge, SingleRecord) {
  Schema schema({{"x", AttrKind::kNumeric, 0}}, {"a", "b"});
  Dataset ds(schema);
  ds.Append({3.0}, {}, 1);
  for (auto& builder : AllBuilders()) {
    const BuildResult result = builder->Build(ds);
    CheckTreeInvariants(result.tree);
    EXPECT_EQ(result.tree.Classify(ds, 0), 1) << builder->name();
  }
}

TEST(FuzzEdge, HeavilySkewedClasses) {
  Schema schema({{"x", AttrKind::kNumeric, 0}}, {"common", "rare"});
  Dataset ds(schema);
  Rng rng(51);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.Uniform(0, 1);
    ds.Append({x}, {}, x > 0.999 ? 1 : 0);
  }
  for (auto& builder : AllBuilders()) {
    const BuildResult result = builder->Build(ds);
    CheckTreeInvariants(result.tree);
    EXPECT_GT(Evaluate(result.tree, ds).Accuracy(), 0.99)
        << builder->name();
  }
}

TEST(FuzzEdge, CategoricalOnlySchema) {
  Schema schema({{"c0", AttrKind::kCategorical, 4},
                 {"c1", AttrKind::kCategorical, 3}},
                {"a", "b"});
  Dataset ds(schema);
  Rng rng(53);
  for (int i = 0; i < 2000; ++i) {
    const int32_t c0 = static_cast<int32_t>(rng.UniformInt(0, 3));
    const int32_t c1 = static_cast<int32_t>(rng.UniformInt(0, 2));
    ds.Append({}, {c0, c1}, (c0 < 2) == (c1 == 0) ? 0 : 1);
  }
  for (auto& builder : AllBuilders()) {
    const BuildResult result = builder->Build(ds);
    CheckTreeInvariants(result.tree);
    EXPECT_GT(Evaluate(result.tree, ds).Accuracy(), 0.95)
        << builder->name();
  }
}

}  // namespace
}  // namespace cmp
