#include "clouds/clouds.h"

#include <gtest/gtest.h>

#include "datagen/agrawal.h"
#include "exact/exact.h"
#include "sprint/sprint.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

TEST(Clouds, HighAccuracyOnF2) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 20000;
  gen.seed = 111;
  const Dataset data = GenerateAgrawal(gen);
  std::vector<RecordId> train_ids;
  std::vector<RecordId> test_ids;
  TrainTestSplit(data.num_records(), 0.25, 6, &train_ids, &test_ids);
  const Dataset train = data.Subset(train_ids);
  const Dataset test = data.Subset(test_ids);

  CloudsBuilder builder;
  const BuildResult result = builder.Build(train);
  EXPECT_GT(Evaluate(result.tree, test).Accuracy(), 0.97);
}

TEST(Clouds, RootSplitMatchesExactDespiteDiscretization) {
  // The SSE second pass guarantees the exact split point within alive
  // intervals, so the root split must match the exact builder's.
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 6000;
  gen.seed = 113;
  const Dataset train = GenerateAgrawal(gen);

  CloudsOptions copts;
  copts.base.in_memory_threshold = 0;
  CloudsBuilder clouds(copts);
  const BuildResult cres = clouds.Build(train);
  ExactBuilder exact;
  const BuildResult eres = exact.Build(train);

  ASSERT_FALSE(cres.tree.node(0).is_leaf);
  ASSERT_FALSE(eres.tree.node(0).is_leaf);
  EXPECT_EQ(cres.tree.node(0).split.attr, eres.tree.node(0).split.attr);
  if (cres.tree.node(0).split.kind == Split::Kind::kNumeric &&
      eres.tree.node(0).split.kind == Split::Kind::kNumeric) {
    EXPECT_DOUBLE_EQ(cres.tree.node(0).split.threshold,
                     eres.tree.node(0).split.threshold);
  }
}

TEST(Clouds, TakesRoughlyTwoScansPerLevel) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 15000;
  gen.seed = 115;
  const Dataset train = GenerateAgrawal(gen);
  CloudsOptions copts;
  copts.base.in_memory_threshold = 0;
  CloudsBuilder builder(copts);
  const BuildResult result = builder.Build(train);
  const int64_t levels = result.stats.tree_depth;
  // Quantile scan + (histogram + alive) per level; alive passes can be
  // skipped when no interval survives, and a trailing routing pass may
  // be needed for the last level's leaves.
  EXPECT_GE(result.stats.dataset_scans, levels + 1);
  EXPECT_LE(result.stats.dataset_scans, 2 * levels + 3);
}

TEST(Clouds, MemoryFarBelowSprint) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 30000;
  gen.seed = 117;
  const Dataset train = GenerateAgrawal(gen);
  CloudsBuilder clouds;
  SprintBuilder sprint;
  const BuildResult cres = clouds.Build(train);
  const BuildResult sres = sprint.Build(train);
  EXPECT_LT(cres.stats.peak_memory_bytes, sres.stats.peak_memory_bytes / 2);
}

TEST(Clouds, FewIntervalsStillReasonable) {
  // Table 1's q=10 setting: accuracy may dip slightly but the classifier
  // must remain sane.
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 10000;
  gen.seed = 119;
  const Dataset train = GenerateAgrawal(gen);
  CloudsOptions copts;
  copts.intervals = 10;
  CloudsBuilder builder(copts);
  const BuildResult result = builder.Build(train);
  EXPECT_GT(Evaluate(result.tree, train).Accuracy(), 0.95);
}

TEST(Clouds, EmptyDataset) {
  const Dataset empty(AgrawalSchema());
  CloudsBuilder builder;
  const BuildResult result = builder.Build(empty);
  EXPECT_EQ(result.tree.num_nodes(), 1);
}

}  // namespace
}  // namespace cmp
