#include "sliq/sliq.h"

#include <gtest/gtest.h>

#include "datagen/agrawal.h"
#include "exact/exact.h"
#include "sprint/sprint.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

SliqOptions NoSwitchOptions() {
  SliqOptions o;
  o.base.in_memory_threshold = 0;
  return o;
}

TEST(Sliq, HighAccuracyOnF2) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 20000;
  gen.seed = 211;
  const Dataset data = GenerateAgrawal(gen);
  std::vector<RecordId> train_ids;
  std::vector<RecordId> test_ids;
  TrainTestSplit(data.num_records(), 0.25, 14, &train_ids, &test_ids);
  const Dataset train = data.Subset(train_ids);
  const Dataset test = data.Subset(test_ids);

  SliqBuilder builder;
  const BuildResult result = builder.Build(train);
  EXPECT_GT(Evaluate(result.tree, test).Accuracy(), 0.97);
}

TEST(Sliq, SameRootSplitAsExact) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 5000;
  gen.seed = 213;
  const Dataset train = GenerateAgrawal(gen);

  SliqBuilder sliq(NoSwitchOptions());
  const BuildResult sres = sliq.Build(train);
  ExactBuilder exact;
  const BuildResult eres = exact.Build(train);

  ASSERT_FALSE(sres.tree.node(0).is_leaf);
  ASSERT_FALSE(eres.tree.node(0).is_leaf);
  EXPECT_EQ(sres.tree.node(0).split.attr, eres.tree.node(0).split.attr);
  if (sres.tree.node(0).split.kind == Split::Kind::kNumeric) {
    EXPECT_DOUBLE_EQ(sres.tree.node(0).split.threshold,
                     eres.tree.node(0).split.threshold);
  }
}

TEST(Sliq, SameTreeQualityAsSprint) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF7;
  gen.num_records = 12000;
  gen.seed = 215;
  const Dataset train = GenerateAgrawal(gen);
  SliqBuilder sliq;
  SprintBuilder sprint;
  const double a_sliq = Evaluate(sliq.Build(train).tree, train).Accuracy();
  const double a_sprint =
      Evaluate(sprint.Build(train).tree, train).Accuracy();
  EXPECT_NEAR(a_sliq, a_sprint, 0.01);
}

TEST(Sliq, WritesFarLessThanSprint) {
  // SLIQ never partitions its attribute lists; SPRINT rewrites every
  // list at every split.
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 20000;
  gen.seed = 217;
  const Dataset train = GenerateAgrawal(gen);
  SliqBuilder sliq(NoSwitchOptions());
  SprintOptions sprint_opts;
  sprint_opts.base.in_memory_threshold = 0;
  SprintBuilder sprint(sprint_opts);
  const BuildResult sliq_res = sliq.Build(train);
  const BuildResult sprint_res = sprint.Build(train);
  EXPECT_LT(sliq_res.stats.bytes_written,
            sprint_res.stats.bytes_written / 2);
}

TEST(Sliq, ClassListCountedInMemory) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF1;
  gen.num_records = 10000;
  gen.seed = 219;
  const Dataset train = GenerateAgrawal(gen);
  SliqBuilder builder;
  const BuildResult result = builder.Build(train);
  // At least the class list (4 bytes per record).
  EXPECT_GE(result.stats.peak_memory_bytes, train.num_records() * 4);
}

TEST(Sliq, EmptyAndPureDatasets) {
  const Dataset empty(AgrawalSchema());
  SliqBuilder builder;
  EXPECT_EQ(builder.Build(empty).tree.num_nodes(), 1);

  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF1;
  gen.num_records = 300;
  const Dataset src = GenerateAgrawal(gen);
  std::vector<RecordId> rids;
  for (RecordId r = 0; r < src.num_records(); ++r) {
    if (src.label(r) == 1) rids.push_back(r);
  }
  const Dataset pure = src.Subset(rids);
  const BuildResult result = builder.Build(pure);
  EXPECT_TRUE(result.tree.node(0).is_leaf);
  EXPECT_EQ(result.tree.node(0).leaf_class, 1);
}

}  // namespace
}  // namespace cmp
