// In-process tests of the serving subsystem: the lock-free latency
// histogram, ModelRegistry's RCU swap semantics (hammered from many
// threads — this is a TSan target), MicroBatcher flush triggers and
// correctness, and a real ServeDaemon on an ephemeral port driven
// through ServeClient, including a hot swap under concurrent traffic.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/schema.h"
#include "common/thread_pool.h"
#include "infer/model_io.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/latency.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "tree/tree.h"

namespace cmp {
namespace {

Schema MakeSchema() {
  return Schema({{"x", AttrKind::kNumeric, 0}, {"y", AttrKind::kNumeric, 0}},
                {"neg", "pos"});
}

// x <= threshold -> left leaf, else right. `flip` swaps the two leaf
// classes, giving a "new model version" whose predictions visibly
// differ from the old one on every row.
DecisionTree MakeTree(double threshold, bool flip) {
  DecisionTree tree(MakeSchema());
  TreeNode root;
  root.is_leaf = false;
  root.split = Split::Numeric(0, threshold);
  tree.AddNode(root);
  TreeNode left;
  left.is_leaf = true;
  left.leaf_class = flip ? 1 : 0;
  left.class_counts = {flip ? int64_t{1} : int64_t{9},
                       flip ? int64_t{9} : int64_t{1}};
  left.depth = 1;
  TreeNode right = left;
  right.leaf_class = flip ? 0 : 1;
  right.class_counts = {left.class_counts[1], left.class_counts[0]};
  tree.AddNode(left);
  tree.AddNode(right);
  tree.mutable_node(0).left = 1;
  tree.mutable_node(0).right = 2;
  return tree;
}

CompiledModel MakeModel(double threshold, bool flip) {
  const DecisionTree tree = MakeTree(threshold, flip);
  std::string error;
  CompiledModel model = CompileModel({&tree}, &error);
  EXPECT_FALSE(model.empty()) << error;
  return model;
}

TEST(ServeLatency, BucketMappingIsMonotone) {
  int prev = -1;
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 5ull, 7ull, 8ull, 15ull,
                     16ull, 1000ull, 1000000ull, 1000000000ull,
                     ~0ull >> 1, ~0ull}) {
    const int b = LatencyHistogram::BucketOf(v);
    ASSERT_GE(b, prev) << "v=" << v;
    ASSERT_LT(b, LatencyHistogram::kBuckets);
    prev = b;
  }
}

TEST(ServeLatency, QuantilesTrackRecordedValues) {
  LatencyHistogram hist;
  // 1000 values at ~100us, 10 at ~10ms: p50 near the low mode, p99
  // within a bucket's width of the high mode, max exact.
  for (int i = 0; i < 1000; ++i) hist.Record(100'000);
  for (int i = 0; i < 10; ++i) hist.Record(10'000'000);
  const LatencyHistogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.count, 1010u);
  EXPECT_GT(snap.p50_us, 50.0);
  EXPECT_LT(snap.p50_us, 200.0);
  EXPECT_GT(snap.p99_us, 60.0);
  EXPECT_DOUBLE_EQ(snap.max_us, 10'000.0);
  EXPECT_GT(snap.mean_us, 100.0);
}

TEST(ServeLatency, ConcurrentRecordersLoseNothing) {
  LatencyHistogram hist;
  constexpr int kThreads = 4;
  constexpr int kEach = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kEach; ++i) {
        hist.Record(static_cast<uint64_t>(t) * 1000 + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.Snap().count, uint64_t{kThreads} * kEach);
}

TEST(ServeStats, JsonHasTheContractFields) {
  ServeStats stats;
  stats.AddRows(5);
  stats.AddRequests(2);
  stats.request_latency().Record(1000);
  const std::string json = stats.ToJson();
  for (const char* key :
       {"\"rows\":5", "\"requests\":2", "\"rows_per_sec\"", "\"p50\"",
        "\"p99\"", "\"max\"", "\"swaps\"", "\"uptime_s\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(ModelRegistry, PublishGetAndVersioning) {
  ThreadPool pool(1);
  ModelRegistry registry(&pool);
  EXPECT_EQ(registry.Get("m"), nullptr);

  std::string error;
  EXPECT_EQ(registry.Publish("m", MakeModel(0.0, false), "a.cmpb", &error),
            1u);
  std::shared_ptr<const ServedModel> v1 = registry.Get("m");
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v1->source_path(), "a.cmpb");

  EXPECT_EQ(registry.Publish("m", MakeModel(0.0, true), "b.cmpb", &error),
            2u);
  std::shared_ptr<const ServedModel> v2 = registry.Get("m");
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->version(), 2u);

  // RCU: the old version is still fully usable through the retained
  // reference, and disagrees with the new one by construction.
  const double x_neg[] = {-5.0, 0.0};
  const BatchResult old_r = v1->PredictRows(x_neg, nullptr, 1);
  const BatchResult new_r = v2->PredictRows(x_neg, nullptr, 1);
  EXPECT_EQ(old_r.labels[0], 0);
  EXPECT_EQ(new_r.labels[0], 1);
  EXPECT_EQ(registry.size(), 1);

  EXPECT_EQ(registry.Publish("other", MakeModel(1.0, false), "", &error), 1u);
  EXPECT_EQ(registry.size(), 2);
  EXPECT_EQ(registry.List().size(), 2u);

  CompiledModel empty;
  EXPECT_EQ(registry.Publish("bad", std::move(empty), "", &error), 0u);
  EXPECT_FALSE(error.empty());
}

// The TSan-facing test: scorers resolve-and-predict in a tight loop
// while a swapper republishes the model. Any torn read of the model
// pointer, the node arrays, or the blob refcount is a data-race report;
// correctness-wise every reply must be self-consistent with the version
// that produced it.
TEST(ModelRegistry, SwapUnderConcurrentScoring) {
  ThreadPool pool(2);
  ModelRegistry registry(&pool);
  std::string error;
  ASSERT_EQ(registry.Publish("hot", MakeModel(0.0, false), "", &error), 1u);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> scored{0};
  std::vector<std::thread> scorers;
  for (int t = 0; t < 3; ++t) {
    scorers.emplace_back([&] {
      const double row_neg[] = {-1.0, 0.0};
      const double row_pos[] = {1.0, 0.0};
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const ServedModel> m = registry.Get("hot");
        ASSERT_NE(m, nullptr);
        const bool flipped = m->version() % 2 == 0;  // even versions flip
        const BatchResult neg = m->PredictRows(row_neg, nullptr, 1);
        const BatchResult pos = m->PredictRows(row_pos, nullptr, 1);
        ASSERT_EQ(neg.labels[0], flipped ? 1 : 0);
        ASSERT_EQ(pos.labels[0], flipped ? 0 : 1);
        scored.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }

  for (int swap = 0; swap < 50; ++swap) {
    // Versions start at 2 here; flip on even versions keeps the
    // scorers' invariant in lockstep with the publish counter.
    const uint64_t v = registry.Publish(
        "hot", MakeModel(0.0, (swap % 2) == 0), "", &error);
    ASSERT_EQ(v, static_cast<uint64_t>(swap) + 2);
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : scorers) t.join();
  EXPECT_GT(scored.load(), 0);
}

TEST(MicroBatcher, SizeTriggerFlushesImmediately) {
  ThreadPool pool(1);
  ServeStats stats;
  BatchPolicy policy;
  policy.max_rows = 4;
  policy.max_delay_us = 10'000'000;  // deadline effectively off
  MicroBatcher batcher(&pool, policy, &stats);
  ModelRegistry registry(&pool);
  std::string error;
  ASSERT_NE(registry.Publish("m", MakeModel(0.0, false), "", &error), 0u);
  std::shared_ptr<const ServedModel> model = registry.Get("m");

  std::vector<std::future<RowReply>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(batcher.Submit(
        model, {i < 2 ? -1.0 : 1.0, 0.0}, {}, /*want_probs=*/true));
  }
  for (int i = 0; i < 4; ++i) {
    RowReply reply = futures[i].get();
    ASSERT_TRUE(reply.ok) << reply.error;
    EXPECT_EQ(reply.label, i < 2 ? 0 : 1);
    EXPECT_EQ(reply.model_version, 1u);
    ASSERT_EQ(reply.probs.size(), 2u);
    EXPECT_FLOAT_EQ(reply.probs[i < 2 ? 0 : 1], 0.9f);
  }
  EXPECT_EQ(stats.rows(), 4u);
  EXPECT_EQ(stats.batches(), 1u);
}

TEST(MicroBatcher, DeadlineTriggerReleasesALoneRow) {
  ThreadPool pool(1);
  ServeStats stats;
  BatchPolicy policy;
  policy.max_rows = 1'000'000;  // size trigger effectively off
  policy.max_delay_us = 500;
  MicroBatcher batcher(&pool, policy, &stats);
  ModelRegistry registry(&pool);
  std::string error;
  ASSERT_NE(registry.Publish("m", MakeModel(0.0, false), "", &error), 0u);

  std::future<RowReply> fut = batcher.Submit(registry.Get("m"), {3.0, 0.0},
                                             {}, /*want_probs=*/false);
  const RowReply reply = fut.get();  // must not hang
  ASSERT_TRUE(reply.ok) << reply.error;
  EXPECT_EQ(reply.label, 1);
  EXPECT_TRUE(reply.probs.empty());
}

TEST(MicroBatcher, MixedModelsInOneFlushScoreOnTheirOwnVersion) {
  ThreadPool pool(1);
  ServeStats stats;
  BatchPolicy policy;
  policy.max_rows = 4;
  policy.max_delay_us = 10'000'000;
  MicroBatcher batcher(&pool, policy, &stats);
  ModelRegistry registry(&pool);
  std::string error;
  ASSERT_NE(registry.Publish("m", MakeModel(0.0, false), "", &error), 0u);
  std::shared_ptr<const ServedModel> v1 = registry.Get("m");
  ASSERT_NE(registry.Publish("m", MakeModel(0.0, true), "", &error), 0u);
  std::shared_ptr<const ServedModel> v2 = registry.Get("m");

  // Two rows against each version, interleaved, in one flush: the
  // mid-queue swap scenario in miniature.
  std::vector<std::future<RowReply>> futures;
  futures.push_back(batcher.Submit(v1, {-1.0, 0.0}, {}, false));
  futures.push_back(batcher.Submit(v2, {-1.0, 0.0}, {}, false));
  futures.push_back(batcher.Submit(v1, {1.0, 0.0}, {}, false));
  futures.push_back(batcher.Submit(v2, {1.0, 0.0}, {}, false));
  const ClassId expect[] = {0, 1, 1, 0};
  for (int i = 0; i < 4; ++i) {
    RowReply reply = futures[i].get();
    ASSERT_TRUE(reply.ok);
    EXPECT_EQ(reply.label, expect[i]) << i;
    EXPECT_EQ(reply.model_version, i % 2 == 0 ? 1u : 2u);
  }
}

TEST(MicroBatcher, StopFlushesPendingAndRejectsNewWork) {
  ThreadPool pool(1);
  ServeStats stats;
  BatchPolicy policy;
  policy.max_rows = 1'000'000;
  policy.max_delay_us = 60'000'000;  // neither trigger can fire
  MicroBatcher batcher(&pool, policy, &stats);
  ModelRegistry registry(&pool);
  std::string error;
  ASSERT_NE(registry.Publish("m", MakeModel(0.0, false), "", &error), 0u);
  std::shared_ptr<const ServedModel> model = registry.Get("m");

  std::future<RowReply> pending =
      batcher.Submit(model, {-2.0, 0.0}, {}, false);
  batcher.Stop();
  const RowReply flushed = pending.get();
  ASSERT_TRUE(flushed.ok) << flushed.error;
  EXPECT_EQ(flushed.label, 0);

  const RowReply rejected =
      batcher.Submit(model, {0.0, 0.0}, {}, false).get();
  EXPECT_FALSE(rejected.ok);
  EXPECT_FALSE(rejected.error.empty());
}

class ServeDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    blob_a_ = std::string(::testing::TempDir()) + "/serve_a.cmpb";
    blob_b_ = std::string(::testing::TempDir()) + "/serve_b.cmpb";
    const DecisionTree a = MakeTree(0.0, false);
    const DecisionTree b = MakeTree(0.0, true);
    std::string error;
    ASSERT_TRUE(SaveModelBlob({&a}, blob_a_, &error)) << error;
    ASSERT_TRUE(SaveModelBlob({&b}, blob_b_, &error)) << error;
  }
  void TearDown() override {
    std::remove(blob_a_.c_str());
    std::remove(blob_b_.c_str());
  }
  std::string blob_a_;
  std::string blob_b_;
};

TEST_F(ServeDaemonTest, ServesPredictionsOverTcp) {
  ServeOptions opts;
  opts.batch.max_delay_us = 300;
  ServeDaemon daemon(opts);
  std::string error;
  ASSERT_NE(daemon.registry().PublishFromFile("m", blob_a_, &error), 0u)
      << error;
  ASSERT_TRUE(daemon.Start(&error)) << error;
  ASSERT_GT(daemon.port(), 0);

  ServeClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", daemon.port(), &error)) << error;
  std::string reply;
  ASSERT_TRUE(client.Rpc("predict m -3.5,0", &reply));
  EXPECT_EQ(reply, "ok neg");
  ASSERT_TRUE(client.Rpc("predict m 3.5,0", &reply));
  EXPECT_EQ(reply, "ok pos");
  ASSERT_TRUE(client.Rpc("predictp m 3.5,0", &reply));
  EXPECT_EQ(reply.rfind("ok pos ", 0), 0u) << reply;
  ASSERT_TRUE(client.Rpc("predict m 1,2,3", &reply));
  EXPECT_EQ(reply.rfind("err ", 0), 0u);
  ASSERT_TRUE(client.Rpc("predict ghost 1,2", &reply));
  EXPECT_EQ(reply, "err unknown model 'ghost'");
  ASSERT_TRUE(client.Rpc("bogus", &reply));
  EXPECT_EQ(reply.rfind("err unknown verb", 0), 0u);

  std::vector<std::string> replies;
  ASSERT_TRUE(client.Batch("m", {"-1,0", "1,0", "oops"}, &replies));
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0], "ok neg");
  EXPECT_EQ(replies[1], "ok pos");
  EXPECT_EQ(replies[2].rfind("err ", 0), 0u);

  ASSERT_TRUE(client.Rpc("stats", &reply));
  EXPECT_EQ(reply.rfind("ok {", 0), 0u);
  EXPECT_NE(reply.find("\"p99\""), std::string::npos);

  daemon.Shutdown();
}

TEST_F(ServeDaemonTest, ServesOverUnixSocket) {
  ServeOptions opts;
  opts.unix_path = std::string(::testing::TempDir()) + "/cmpserve_test.sock";
  opts.batch.max_delay_us = 300;
  ServeDaemon daemon(opts);
  std::string error;
  ASSERT_NE(daemon.registry().PublishFromFile("m", blob_a_, &error), 0u);
  ASSERT_TRUE(daemon.Start(&error)) << error;

  ServeClient client;
  ASSERT_TRUE(client.ConnectUnix(opts.unix_path, &error)) << error;
  std::string reply;
  ASSERT_TRUE(client.Rpc("predict m -1,0", &reply));
  EXPECT_EQ(reply, "ok neg");
  daemon.Shutdown();
}

TEST_F(ServeDaemonTest, QuitShutsTheDaemonDown) {
  ServeOptions opts;
  ServeDaemon daemon(opts);
  std::string error;
  ASSERT_NE(daemon.registry().PublishFromFile("m", blob_a_, &error), 0u);
  ASSERT_TRUE(daemon.Start(&error)) << error;

  ServeClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", daemon.port(), &error)) << error;
  std::string reply;
  ASSERT_TRUE(client.Rpc("quit", &reply));
  EXPECT_EQ(reply, "ok bye");
  EXPECT_TRUE(daemon.WaitFor(5000));
  daemon.Shutdown();
}

// Hot swap under concurrent traffic, in-process: several client threads
// hammer predict while the main thread swaps between two models whose
// answers differ on every row. Every reply must be exactly one model's
// answer — "neg" or "pos", never garbage, never a hang — and the swap
// must be visible eventually.
TEST_F(ServeDaemonTest, HotSwapUnderConcurrentTraffic) {
  ServeOptions opts;
  opts.batch.max_rows = 8;
  opts.batch.max_delay_us = 200;
  ServeDaemon daemon(opts);
  std::string error;
  ASSERT_NE(daemon.registry().PublishFromFile("m", blob_a_, &error), 0u);
  ASSERT_TRUE(daemon.Start(&error)) << error;

  std::atomic<bool> stop{false};
  std::atomic<int64_t> replies{0};
  std::atomic<int64_t> flipped_seen{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      ServeClient client;
      std::string cerr_msg;
      ASSERT_TRUE(
          client.ConnectTcp("127.0.0.1", daemon.port(), &cerr_msg))
          << cerr_msg;
      std::string reply;
      while (!stop.load(std::memory_order_relaxed)) {
        // Row is on the neg side of model A, pos side answer under
        // model B (flipped leaves).
        if (!client.Rpc("predict m -2,0", &reply)) break;
        ASSERT_TRUE(reply == "ok neg" || reply == "ok pos") << reply;
        replies.fetch_add(1, std::memory_order_relaxed);
        if (reply == "ok pos") {
          flipped_seen.fetch_add(1, std::memory_order_relaxed);
        }
        (void)t;
      }
    });
  }

  ServeClient admin;
  ASSERT_TRUE(admin.ConnectTcp("127.0.0.1", daemon.port(), &error)) << error;
  std::string reply;
  for (int swap = 0; swap < 10; ++swap) {
    const std::string& path = swap % 2 == 0 ? blob_b_ : blob_a_;
    ASSERT_TRUE(admin.Rpc("swap m " + path, &reply));
    EXPECT_EQ(reply.rfind("ok m v", 0), 0u) << reply;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();

  EXPECT_GT(replies.load(), 0);
  EXPECT_GT(flipped_seen.load(), 0);  // at least one reply from model B
  ASSERT_TRUE(admin.Rpc("stats", &reply));
  EXPECT_NE(reply.find("\"swaps\":10"), std::string::npos) << reply;
  daemon.Shutdown();
}

}  // namespace
}  // namespace cmp
