#include "hist/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "hist/grid_builder.h"
#include "hist/grids.h"
#include "hist/quantiles.h"

namespace cmp {
namespace {

// True rank (count of values <= v) from the raw data.
int64_t TrueRankAtMost(const std::vector<double>& values, double v) {
  int64_t rank = 0;
  for (double x : values) rank += x <= v ? 1 : 0;
  return rank;
}

// Asserts the sketch's core rank-accuracy contract over `values`: for
// every input value the estimated rank is within the sketch's own
// advertised error bound of the truth, and the bound itself is
// meaningfully sublinear in n.
void CheckRankErrorBound(const std::vector<double>& values, int capacity) {
  QuantileSketch sketch(capacity);
  for (double v : values) sketch.Add(v);
  ASSERT_EQ(sketch.count(), static_cast<int64_t>(values.size()));

  const int64_t bound = sketch.rank_error_bound();
  // The whole point of sketching: the bound stays well below n.
  if (values.size() >= 4096) {
    EXPECT_LT(bound, static_cast<int64_t>(values.size()) / 4);
  }
  int64_t worst = 0;
  for (size_t i = 0; i < values.size(); i += 7) {
    const double v = values[i];
    const int64_t est = sketch.EstimatedRankAtMost(v);
    const int64_t truth = TrueRankAtMost(values, v);
    worst = std::max(worst, std::abs(est - truth));
  }
  EXPECT_LE(worst, bound) << "n=" << values.size() << " k=" << capacity;

  // Min/max are tracked exactly regardless of compaction.
  EXPECT_EQ(sketch.min_value(),
            *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(sketch.max_value(),
            *std::max_element(values.begin(), values.end()));
}

TEST(QuantileSketch, RankErrorBoundSortedOrder) {
  std::vector<double> values(20000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  CheckRankErrorBound(values, 64);
  CheckRankErrorBound(values, 512);
}

TEST(QuantileSketch, RankErrorBoundReverseOrder) {
  std::vector<double> values(20000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(values.size() - i);
  }
  CheckRankErrorBound(values, 64);
  CheckRankErrorBound(values, 512);
}

TEST(QuantileSketch, RankErrorBoundDuplicateHeavy) {
  // 90% of the mass on 3 values, the rest uniform: compacted summaries
  // must still rank the heavy atoms correctly.
  Rng rng(11);
  std::vector<double> values;
  values.reserve(30000);
  for (int i = 0; i < 30000; ++i) {
    if (i % 10 < 9) {
      values.push_back(static_cast<double>(i % 3) * 10.0);
    } else {
      values.push_back(rng.Uniform(-100.0, 100.0));
    }
  }
  CheckRankErrorBound(values, 64);
  CheckRankErrorBound(values, 512);
}

TEST(QuantileSketch, RankErrorBoundSingleValue) {
  const std::vector<double> values(10000, 3.25);
  CheckRankErrorBound(values, 64);
  // Every estimate of the single atom must be exact: all retained items
  // equal the value.
  QuantileSketch sketch(64);
  for (double v : values) sketch.Add(v);
  EXPECT_EQ(sketch.EstimatedRankAtMost(3.25), 10000);
  EXPECT_EQ(sketch.EstimatedRankAtMost(3.24), 0);
}

TEST(QuantileSketch, RankErrorBoundRandomOrder) {
  Rng rng(7);
  std::vector<double> values(25000);
  for (auto& v : values) v = rng.Uniform(0.0, 1.0);
  CheckRankErrorBound(values, 64);
  CheckRankErrorBound(values, 256);
}

TEST(QuantileSketch, ExactWhileUncompacted) {
  // Below capacity no compaction happens: ranks are exact and the bound
  // says so.
  Rng rng(3);
  std::vector<double> values(500);
  for (auto& v : values) v = rng.Uniform(-5.0, 5.0);
  QuantileSketch sketch(512);
  for (double v : values) sketch.Add(v);
  EXPECT_EQ(sketch.rank_error_bound(), 0);
  for (double v : values) {
    EXPECT_EQ(sketch.EstimatedRankAtMost(v), TrueRankAtMost(values, v));
  }
}

TEST(QuantileSketch, EstimatedRankIsMonotone) {
  Rng rng(19);
  QuantileSketch sketch(32);
  for (int i = 0; i < 50000; ++i) sketch.Add(rng.Uniform(0.0, 1.0));
  int64_t prev = -1;
  for (double v = -0.1; v <= 1.1; v += 0.01) {
    const int64_t r = sketch.EstimatedRankAtMost(v);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_EQ(sketch.EstimatedRankAtMost(2.0), sketch.count());
  EXPECT_EQ(sketch.EstimatedRankAtMost(-1.0), 0);
}

TEST(QuantileSketch, MemorySublinear) {
  QuantileSketch sketch(512);
  for (int i = 0; i < 1000000; ++i) sketch.Add(static_cast<double>(i));
  // 1M doubles raw = 8MB; the sketch must stay orders of magnitude
  // below (k * O(log(n/k)) items).
  EXPECT_LT(sketch.MemoryBytes(), 512 * 24 * 64);
  EXPECT_EQ(sketch.count(), 1000000);
}

TEST(QuantileSketch, DeterministicAcrossReruns) {
  auto build = [] {
    Rng rng(23);
    QuantileSketch s(64);
    for (int i = 0; i < 40000; ++i) s.Add(rng.Uniform(0.0, 100.0));
    return s;
  };
  const QuantileSketch a = build();
  const QuantileSketch b = build();
  ASSERT_EQ(a.levels().size(), b.levels().size());
  for (size_t h = 0; h < a.levels().size(); ++h) {
    EXPECT_EQ(a.levels()[h], b.levels()[h]) << "level " << h;
  }
  EXPECT_EQ(a.rank_error_bound(), b.rank_error_bound());
}

TEST(QuantileSketch, MergeMatchesRankContract) {
  // Shard the stream, sketch each shard, merge in shard order: the
  // merged sketch must honor its own (larger) error bound.
  Rng rng(31);
  std::vector<double> values(30000);
  for (auto& v : values) v = rng.Uniform(0.0, 10.0);

  QuantileSketch merged(64);
  for (int shard = 0; shard < 5; ++shard) {
    QuantileSketch s(64);
    for (size_t i = shard * 6000; i < (shard + 1) * 6000u; ++i) {
      s.Add(values[i]);
    }
    merged.Merge(s);
  }
  ASSERT_EQ(merged.count(), 30000);
  const int64_t bound = merged.rank_error_bound();
  EXPECT_LT(bound, 30000 / 4);
  for (size_t i = 0; i < values.size(); i += 17) {
    const int64_t est = merged.EstimatedRankAtMost(values[i]);
    const int64_t truth = TrueRankAtMost(values, values[i]);
    EXPECT_LE(std::abs(est - truth), bound);
  }
}

TEST(QuantileSketch, MergeIsDeterministic) {
  auto shard = [](int which) {
    QuantileSketch s(32);
    Rng rng(100 + which);
    for (int i = 0; i < 5000; ++i) s.Add(rng.Uniform(0.0, 1.0));
    return s;
  };
  auto merge_all = [&] {
    QuantileSketch m(32);
    for (int w = 0; w < 4; ++w) m.Merge(shard(w));
    return m;
  };
  const QuantileSketch a = merge_all();
  const QuantileSketch b = merge_all();
  ASSERT_EQ(a.levels().size(), b.levels().size());
  for (size_t h = 0; h < a.levels().size(); ++h) {
    EXPECT_EQ(a.levels()[h], b.levels()[h]);
  }
}

// -- Grid parity with the exact equal-depth quantiler -------------------

TEST(QuantileSketch, UncompactedGridMatchesEqualDepthFromSorted) {
  // While no compaction has happened the sketch holds the exact data, so
  // its grid must be cut-for-cut identical to EqualDepthFromSorted —
  // including the duplicate-cut collapse and trailing-max-cut rules.
  const std::vector<std::vector<double>> cases = {
      {5.0, 1.0, 3.0, 3.0, 3.0, 3.0, 2.0, 5.0},   // duplicate-heavy
      {42.0, 42.0, 42.0, 42.0},                   // single value
      {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0},   // distinct ascending
      {8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0},   // distinct descending
      {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 9.0},   // mass at min
      {9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 0.0},   // mass at max
  };
  for (const auto& values : cases) {
    for (int q : {1, 2, 4, 10}) {
      QuantileSketch sketch(512);
      for (double v : values) sketch.Add(v);
      std::vector<double> sorted = values;
      std::sort(sorted.begin(), sorted.end());
      const IntervalGrid expect = IntervalGrid::EqualDepthFromSorted(sorted, q);
      const IntervalGrid got = sketch.ToEqualDepthGrid(q);
      EXPECT_EQ(got.boundaries(), expect.boundaries())
          << "q=" << q << " n=" << values.size();
      EXPECT_EQ(got.num_intervals(), expect.num_intervals());
    }
  }
}

TEST(QuantileSketch, CompactedGridCollapsesDuplicateCuts) {
  // 95% of the mass on one atom: most quantile positions land on the
  // atom and must collapse to a single cut, exactly like the exact path.
  QuantileSketch sketch(64);
  Rng rng(5);
  for (int i = 0; i < 40000; ++i) {
    sketch.Add(i % 20 == 0 ? rng.Uniform(100.0, 200.0) : 7.5);
  }
  const IntervalGrid grid = sketch.ToEqualDepthGrid(10);
  const auto& cuts = grid.boundaries();
  EXPECT_TRUE(std::is_sorted(cuts.begin(), cuts.end()));
  for (size_t i = 1; i < cuts.size(); ++i) {
    EXPECT_LT(cuts[i - 1], cuts[i]) << "duplicate cut survived";
  }
  // No cut may sit at (or beyond) the maximum — the last interval is
  // unbounded above, same rule as the exact quantiler.
  for (double c : cuts) EXPECT_LT(c, sketch.max_value());
}

TEST(QuantileSketch, SingleValueGridIsOneInterval) {
  QuantileSketch sketch(32);
  for (int i = 0; i < 10000; ++i) sketch.Add(-3.0);
  const IntervalGrid grid = sketch.ToEqualDepthGrid(100);
  EXPECT_EQ(grid.num_intervals(), 1);
}

TEST(QuantileSketch, FromStateRoundTrip) {
  Rng rng(77);
  QuantileSketch sketch(64);
  for (int i = 0; i < 30000; ++i) sketch.Add(rng.Uniform(-1.0, 1.0));
  QuantileSketch back;
  ASSERT_TRUE(QuantileSketch::FromState(
      sketch.capacity(), sketch.count(), sketch.min_value(),
      sketch.max_value(), sketch.rank_error_bound(), sketch.levels(), &back));
  EXPECT_EQ(back.count(), sketch.count());
  EXPECT_EQ(back.rank_error_bound(), sketch.rank_error_bound());
  for (double v = -1.0; v <= 1.0; v += 0.05) {
    EXPECT_EQ(back.EstimatedRankAtMost(v), sketch.EstimatedRankAtMost(v));
  }
}

TEST(QuantileSketch, FromStateRejectsInconsistency) {
  QuantileSketch sketch(64);
  for (int i = 0; i < 100; ++i) sketch.Add(static_cast<double>(i));
  QuantileSketch out;
  // Count that does not match the ladder.
  EXPECT_FALSE(QuantileSketch::FromState(64, 5, 0.0, 99.0, 0,
                                         sketch.levels(), &out));
  // Bad capacity.
  EXPECT_FALSE(QuantileSketch::FromState(2, 100, 0.0, 99.0, 0,
                                         sketch.levels(), &out));
  // min > max.
  EXPECT_FALSE(QuantileSketch::FromState(64, 100, 99.0, 0.0, 0,
                                         sketch.levels(), &out));
}

// -- AttrGridBuilder: the seam both training paths share ---------------

TEST(AttrGridBuilder, ExactMatchesHistoricalGridAndMarks) {
  Rng rng(13);
  std::vector<double> column(5000);
  for (auto& v : column) v = rng.Uniform(0.0, 50.0);
  // Heavy ties so interior marks are non-trivial.
  for (size_t i = 0; i < column.size(); i += 3) column[i] = 25.0;

  ExactAttrGridBuilder builder;
  builder.Add(column.data(), static_cast<int64_t>(column.size()));
  const AttrGridResult result =
      builder.Finish(100, Discretization::kEqualDepth);

  std::vector<double> sorted = column;
  std::sort(sorted.begin(), sorted.end());
  const IntervalGrid expect = IntervalGrid::EqualDepthFromSorted(sorted, 100);
  EXPECT_EQ(result.grid.boundaries(), expect.boundaries());
  EXPECT_EQ(result.interior, InteriorMarksFromSorted(sorted, expect));
}

TEST(AttrGridBuilder, ExactMergeEqualsSingleBuilder) {
  Rng rng(29);
  std::vector<double> column(4000);
  for (auto& v : column) v = rng.Uniform(-10.0, 10.0);

  ExactAttrGridBuilder whole;
  whole.Add(column.data(), static_cast<int64_t>(column.size()));

  ExactAttrGridBuilder left, right;
  left.Add(column.data(), 1500);
  right.Add(column.data() + 1500, 2500);
  left.MergeFrom(right);

  const AttrGridResult a = whole.Finish(50, Discretization::kEqualDepth);
  const AttrGridResult b = left.Finish(50, Discretization::kEqualDepth);
  EXPECT_EQ(a.grid.boundaries(), b.grid.boundaries());
  EXPECT_EQ(a.interior, b.interior);
}

TEST(AttrGridBuilder, SketchStaysNearExactCuts) {
  Rng rng(41);
  std::vector<double> column(60000);
  for (auto& v : column) v = rng.Uniform(0.0, 1.0);

  auto sketchy = MakeAttrGridBuilder(GridMethod::kSketch, 512);
  sketchy->Add(column.data(), static_cast<int64_t>(column.size()));
  const AttrGridResult got =
      sketchy->Finish(10, Discretization::kEqualDepth);

  std::vector<double> sorted = column;
  std::sort(sorted.begin(), sorted.end());
  // Uniform data, q=10: exact cuts are near 0.1, 0.2, ...; sketch cuts
  // must land within the sketch's rank error (a small fraction of n).
  ASSERT_EQ(got.grid.num_intervals(), 10);
  const auto& cuts = got.grid.boundaries();
  for (size_t i = 0; i < cuts.size(); ++i) {
    const double exact = sorted[(sorted.size() * (i + 1)) / 10];
    EXPECT_NEAR(cuts[i], exact, 0.02) << "cut " << i;
  }
  // Bounded memory: far below the 480KB raw column.
  EXPECT_LT(sketchy->MemoryBytes(), 200 * 1024);
}

TEST(AttrGridBuilder, SketchEqualWidthUsesExactExtremes) {
  auto sketchy = MakeAttrGridBuilder(GridMethod::kSketch, 32);
  std::vector<double> column;
  for (int i = 0; i <= 10000; ++i) {
    column.push_back(static_cast<double>(i) / 100.0);  // [0, 100]
  }
  sketchy->Add(column.data(), static_cast<int64_t>(column.size()));
  const AttrGridResult got =
      sketchy->Finish(4, Discretization::kEqualWidth);
  // Equal width only needs min/max, which the sketch tracks exactly:
  // identical to the exact path's grid.
  std::vector<double> sorted = column;
  const IntervalGrid expect = IntervalGrid::EqualWidthFromSorted(sorted, 4);
  EXPECT_EQ(got.grid.boundaries(), expect.boundaries());
}

}  // namespace
}  // namespace cmp
