#include "common/summary.h"

#include <gtest/gtest.h>

#include "datagen/agrawal.h"
#include "datagen/loan_example.h"
#include "tree/builder.h"
#include "tree/importance.h"

#include "cmp/cmp.h"
#include "exact/exact.h"

namespace cmp {
namespace {

TEST(Summarize, LoanExampleStats) {
  const Dataset ds = LoanExampleDataset();
  const DatasetSummary s = Summarize(ds);
  EXPECT_EQ(s.records, 6);
  EXPECT_EQ(s.class_counts, (std::vector<int64_t>{3, 3}));
  ASSERT_EQ(s.attrs.size(), 3u);
  // age: 18..68, mean (18+60+43+68+32+20)/6 = 40.1666...
  EXPECT_DOUBLE_EQ(s.attrs[0].min, 18.0);
  EXPECT_DOUBLE_EQ(s.attrs[0].max, 68.0);
  EXPECT_NEAR(s.attrs[0].mean, 40.1667, 1e-3);
  EXPECT_EQ(s.attrs[0].distinct, 6);
}

TEST(Summarize, CategoricalDistinctCounts) {
  Schema schema({{"c", AttrKind::kCategorical, 5}}, {"a", "b"});
  Dataset ds(schema);
  ds.Append({}, {0}, 0);
  ds.Append({}, {0}, 1);
  ds.Append({}, {3}, 0);
  const DatasetSummary s = Summarize(ds);
  EXPECT_EQ(s.attrs[0].distinct, 2);
  EXPECT_EQ(s.attrs[0].cardinality, 5);
}

TEST(Summarize, RenderingMentionsEveryAttribute) {
  AgrawalOptions gen;
  gen.num_records = 500;
  gen.seed = 401;
  const Dataset ds = GenerateAgrawal(gen);
  const std::string text = Summarize(ds).ToString(ds.schema());
  for (AttrId a = 0; a < ds.num_attrs(); ++a) {
    EXPECT_NE(text.find(ds.schema().attr(a).name), std::string::npos);
  }
}

TEST(Summarize, DistinctCapRespected) {
  Schema schema({{"x", AttrKind::kNumeric, 0}}, {"a", "b"});
  Dataset ds(schema);
  for (int i = 0; i < 1000; ++i) {
    ds.Append({static_cast<double>(i)}, {}, 0);
  }
  // Need both classes to be a valid dataset? Only class 0 used; fine.
  const DatasetSummary s = Summarize(ds, /*distinct_cap=*/100);
  EXPECT_EQ(s.attrs[0].distinct, 100);
}

TEST(GiniImportance, ConcentratesOnDiscriminativeAttrs) {
  // F1 depends only on age.
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF1;
  gen.num_records = 10000;
  gen.seed = 403;
  const Dataset ds = GenerateAgrawal(gen);
  ExactBuilder builder;
  const BuildResult result = builder.Build(ds);
  const std::vector<double> imp = GiniImportance(result.tree);
  const AttrId age = ds.schema().FindAttr("age");
  EXPECT_GT(imp[age], 0.9);
  double total = 0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GiniImportance, LinearSplitsCreditBothAttrs) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kFunctionF;
  gen.num_records = 30000;
  gen.seed = 405;
  const Dataset ds = GenerateAgrawal(gen);
  CmpBuilder builder(CmpFullOptions());
  const BuildResult result = builder.Build(ds);
  ASSERT_EQ(result.tree.node(0).split.kind, Split::Kind::kLinear);
  const std::vector<double> imp = GiniImportance(result.tree);
  const AttrId salary = ds.schema().FindAttr("salary");
  const AttrId commission = ds.schema().FindAttr("commission");
  EXPECT_GT(imp[salary], 0.1);
  EXPECT_GT(imp[commission], 0.1);
}

TEST(GiniImportance, SingleLeafAllZero) {
  DecisionTree tree(LoanExampleSchema());
  TreeNode leaf;
  leaf.leaf_class = 0;
  leaf.class_counts = {5, 0};
  tree.AddNode(leaf);
  const std::vector<double> imp = GiniImportance(tree);
  for (double v : imp) EXPECT_DOUBLE_EQ(v, 0.0);
}

// Importance scores are a distribution: non-negative, summing to one
// for any tree with at least one split, no matter which builder made it.
TEST(GiniImportance, NonNegativeAndNormalizedAcrossBuilders) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF3;
  gen.num_records = 6000;
  gen.seed = 409;
  const Dataset ds = GenerateAgrawal(gen);
  for (const char* algo : {"cmp", "cmp-s", "exact"}) {
    const BuildResult result = MakeTreeBuilder(algo)->Build(ds);
    ASSERT_FALSE(result.tree.node(0).is_leaf) << algo;
    const std::vector<double> imp = GiniImportance(result.tree);
    ASSERT_EQ(imp.size(), static_cast<size_t>(ds.schema().num_attrs()));
    double total = 0;
    for (double v : imp) {
      EXPECT_GE(v, 0.0) << algo;
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << algo;
  }
}

TEST(ImportanceToString, SortedDescending) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 8000;
  gen.seed = 407;
  const Dataset ds = GenerateAgrawal(gen);
  ExactBuilder builder;
  const BuildResult result = builder.Build(ds);
  const std::vector<double> imp = GiniImportance(result.tree);
  const std::string text = ImportanceToString(result.tree, imp);
  // salary and age dominate F2; both must appear before any zero rows
  // (zero rows are omitted entirely).
  EXPECT_NE(text.find("salary"), std::string::npos);
  EXPECT_NE(text.find("age"), std::string::npos);
}

}  // namespace
}  // namespace cmp
