// The parallel-training determinism contract: for every builder that
// honors BuilderOptions::num_threads, the built tree is BIT-IDENTICAL
// for any thread count — same splits, same node ids, same hexfloat
// thresholds, byte-for-byte equal serialization. The contract holds by
// construction (per-shard integer histograms merged in a fixed order,
// all floating-point math on post-merge state, serial-order node
// grafting); these tests pin it down empirically across the CMP
// variants, numeric + categorical data, pruning on and off, and the
// in-memory exact-finish path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cmp/cmp.h"
#include "common/thread_pool.h"
#include "datagen/agrawal.h"
#include "exact/exact.h"
#include "tree/serialize.h"

namespace cmp {
namespace {

Dataset MakeData(AgrawalFunction f, int64_t n, uint64_t seed) {
  AgrawalOptions gen;
  gen.function = f;
  gen.num_records = n;
  gen.seed = seed;
  return GenerateAgrawal(gen);
}

const int kThreadCounts[] = {1, 2, 4, 8};

// Serializes the tree built with the given thread count. The shard
// count is pinned to the thread count: the auto setting caps shards at
// the machine's hardware concurrency, which on a small CI runner would
// quietly collapse every build to one shard and stop exercising the
// multi-shard mirror/merge path this suite exists to verify.
std::string BuildSerialized(CmpOptions o, const Dataset& train, int threads) {
  o.base.num_threads = threads;
  o.scan_shards = threads;
  CmpBuilder builder(o);
  return SerializeTree(builder.Build(train).tree);
}

struct VariantCase {
  CmpVariant variant;
  bool prune;
  const char* name;
};

class ParallelDeterminismTest : public ::testing::TestWithParam<VariantCase> {
};

// The core contract: CMP-S / CMP-B / CMP, pruning on and off, on data
// with both numeric and categorical attributes (Agrawal F3 splits on
// age bands AND the categorical elevel; F2 exercises pendings deeply).
TEST_P(ParallelDeterminismTest, BitIdenticalAcrossThreadCounts) {
  const VariantCase& c = GetParam();
  for (const AgrawalFunction f : {AgrawalFunction::kF2,
                                  AgrawalFunction::kF3}) {
    const Dataset train = MakeData(f, 12000, 211);
    CmpOptions o;
    o.variant = c.variant;
    o.base.prune = c.prune;
    const std::string reference = BuildSerialized(o, train, 1);
    ASSERT_FALSE(reference.empty());
    for (const int threads : kThreadCounts) {
      EXPECT_EQ(BuildSerialized(o, train, threads), reference)
          << c.name << " with " << threads << " threads";
    }
  }
}

// The in-memory exact-finish path: a low threshold pushes most of the
// tree through collect work items (parallel local builds grafted back),
// a zero threshold disables the switch entirely. Both must reproduce
// the single-threaded bytes.
TEST_P(ParallelDeterminismTest, InMemoryThresholdPathsBitIdentical) {
  const VariantCase& c = GetParam();
  const Dataset train = MakeData(AgrawalFunction::kF7, 9000, 223);
  for (const int64_t threshold : {int64_t{0}, int64_t{512}}) {
    CmpOptions o;
    o.variant = c.variant;
    o.base.prune = c.prune;
    o.base.in_memory_threshold = threshold;
    const std::string reference = BuildSerialized(o, train, 1);
    for (const int threads : kThreadCounts) {
      EXPECT_EQ(BuildSerialized(o, train, threads), reference)
          << c.name << " threshold " << threshold << " with " << threads
          << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ParallelDeterminismTest,
    ::testing::Values(VariantCase{CmpVariant::kS, true, "CMP-S/prune"},
                      VariantCase{CmpVariant::kS, false, "CMP-S/noprune"},
                      VariantCase{CmpVariant::kB, true, "CMP-B/prune"},
                      VariantCase{CmpVariant::kB, false, "CMP-B/noprune"},
                      VariantCase{CmpVariant::kFull, true, "CMP/prune"},
                      VariantCase{CmpVariant::kFull, false, "CMP/noprune"}),
    [](const ::testing::TestParamInfo<VariantCase>& info) {
      std::string n = info.param.name;
      for (char& ch : n) {
        if (ch == '-' || ch == '/') ch = '_';
      }
      return n;
    });

// The exact reference builder fans its per-attribute split search over
// the same pool; it must obey the same contract.
TEST(ParallelDeterminism, ExactBuilderBitIdentical) {
  const Dataset train = MakeData(AgrawalFunction::kF2, 4000, 227);
  for (const bool prune : {true, false}) {
    std::string reference;
    for (const int threads : kThreadCounts) {
      BuilderOptions o;
      o.prune = prune;
      o.num_threads = threads;
      ExactBuilder builder(o);
      const std::string bytes = SerializeTree(builder.Build(train).tree);
      if (threads == 1) {
        reference = bytes;
        ASSERT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(bytes, reference)
            << "exact, prune=" << prune << ", " << threads << " threads";
      }
    }
  }
}

// An injected shared pool (the no-oversubscription path) must behave
// exactly like a builder-owned pool of the same size.
TEST(ParallelDeterminism, InjectedPoolMatchesOwnedPool) {
  const Dataset train = MakeData(AgrawalFunction::kF2, 8000, 229);
  CmpOptions o;
  const std::string reference = BuildSerialized(o, train, 1);
  ThreadPool shared(4);
  CmpBuilder builder(o, &shared);
  EXPECT_EQ(SerializeTree(builder.Build(train).tree), reference);
  // The pool survives the build and stays usable.
  std::vector<int> hits(100, 0);
  shared.ParallelFor(100, 1, [&hits](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

// num_threads = 0 resolves to hardware_concurrency; whatever that is on
// the machine running the tests, the bytes must not change.
TEST(ParallelDeterminism, HardwareConcurrencyBitIdentical) {
  const Dataset train = MakeData(AgrawalFunction::kF6, 8000, 233);
  CmpOptions o;
  EXPECT_EQ(BuildSerialized(o, train, 0), BuildSerialized(o, train, 1));
}

}  // namespace
}  // namespace cmp
