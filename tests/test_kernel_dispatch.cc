// Differential equivalence suite for the runtime-dispatched SIMD
// kernels. The scalar tier is the reference semantics; every compiled
// tier (sse2, avx2) must reproduce it EXACTLY — cell-identical
// histograms on random tables at both code widths, and byte-identical
// trees for whole builds — because the dispatcher swaps tiers in under
// the bit-identical-trees contract with no per-tier goldens. The suite
// also reruns the committed golden fixtures under every tier, so a tier
// that silently diverged from the scalar ops would fail against the
// same bytes the scalar build is pinned to.
//
// The 511-record cases double as the over-read regression test: the
// vector tiers load codes four bytes at a time, so a batch ending at
// the last record of a column walks right up to the kCodeColumnPadding
// bytes BinCodeCache allocates past it. Under ASan (CMP_SANITIZE=
// address) a missing pad is a hard failure here, not latent UB.
#include "hist/hist_kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cmp/cmp.h"
#include "common/cpu_features.h"
#include "common/random.h"
#include "datagen/agrawal.h"
#include "hist/bin_codes.h"
#include "hist/histogram1d.h"
#include "hist/quantiles.h"
#include "tree/serialize.h"

namespace cmp {
namespace {

// Restores the tier that was active when the test started, so a failing
// assertion mid-test cannot leak a forced tier into later tests.
class IsaGuard {
 public:
  IsaGuard() : prev_(ActiveKernelIsa()) {}
  ~IsaGuard() { SetKernelIsa(prev_); }

 private:
  KernelIsa prev_;
};

// Every tier this binary carries AND this host can execute. Scalar is
// always first — the comparisons below treat tiers[0] as the reference.
std::vector<std::pair<std::string, const HistKernelOps*>> RunnableTiers() {
  std::vector<std::pair<std::string, const HistKernelOps*>> tiers;
  tiers.emplace_back("scalar", &HistKernelOpsFor(KernelIsa::kScalar));
  if (KernelIsaSupported(KernelIsa::kSse2)) {
    if (const HistKernelOps* ops = Sse2HistKernelOpsOrNull()) {
      tiers.emplace_back("sse2", ops);
    }
  }
  if (KernelIsaSupported(KernelIsa::kAvx2)) {
    if (const HistKernelOps* ops = Avx2HistKernelOpsOrNull()) {
      tiers.emplace_back("avx2", ops);
    }
  }
  return tiers;
}

std::vector<KernelIsa> RunnableIsas() {
  std::vector<KernelIsa> isas = {KernelIsa::kScalar};
  if (KernelIsaSupported(KernelIsa::kSse2) && Sse2HistKernelOpsOrNull()) {
    isas.push_back(KernelIsa::kSse2);
  }
  if (KernelIsaSupported(KernelIsa::kAvx2) && Avx2HistKernelOpsOrNull()) {
    isas.push_back(KernelIsa::kAvx2);
  }
  return isas;
}

// A random single-column table encoded the way the builder encodes it:
// values drawn from a SMALL discrete pool so the equal-depth grid sees
// heavy duplicate cut points (the degenerate-boundary case), plus out-
// of-range strays that land in the clamp intervals.
struct RandomColumn {
  IntervalGrid grid;
  BinCodeCache codes;
  std::vector<ClassId> labels;
  int64_t n = 0;
};

std::vector<std::string> ClassNames(int num_classes) {
  std::vector<std::string> names;
  for (int c = 0; c < num_classes; ++c) {
    std::string name = "c";
    name += std::to_string(c);
    names.push_back(std::move(name));
  }
  return names;
}

RandomColumn MakeRandomColumn(int64_t n, int num_intervals, int num_classes,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<double> column(n);
  RandomColumn out;
  out.n = n;
  out.labels.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    // ~12 distinct values for a grid asked for up to `num_intervals`
    // cuts: most candidate boundaries repeat.
    column[i] = static_cast<double>(rng.UniformInt(0, 11)) * 3.5;
    if (rng.UniformDouble() < 0.05) column[i] = rng.Uniform(-100.0, 500.0);
    out.labels[i] = static_cast<ClassId>(rng.UniformInt(0, num_classes - 1));
  }
  std::vector<double> sorted = column;
  std::sort(sorted.begin(), sorted.end());
  out.grid = IntervalGrid::EqualDepthFromSorted(sorted, num_intervals);
  Schema schema({{"x", AttrKind::kNumeric, 0}}, ClassNames(num_classes));
  out.codes = BinCodeCache(schema, n, /*max_intervals=*/
                           std::max(num_intervals, 4));
  EXPECT_TRUE(out.codes.enabled());
  out.codes.EncodeNumericColumn(0, out.grid, column);
  out.codes.SetLabels(out.labels);
  return out;
}

// A u16-coded column: >255 intervals forces the 2-byte kernels.
RandomColumn MakeWideColumn(int64_t n, int num_classes, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> cuts;
  for (int i = 0; i < 300; ++i) cuts.push_back(static_cast<double>(i));
  RandomColumn out;
  out.n = n;
  out.grid = IntervalGrid::FromBoundaries(std::move(cuts), 0.0, 300.0);
  std::vector<double> column(n);
  out.labels.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    column[i] = rng.Uniform(-5.0, 305.0);
    out.labels[i] = static_cast<ClassId>(rng.UniformInt(0, num_classes - 1));
  }
  Schema schema({{"x", AttrKind::kNumeric, 0}}, ClassNames(num_classes));
  out.codes = BinCodeCache(schema, n, /*max_intervals=*/1024);
  EXPECT_TRUE(out.codes.enabled());
  out.codes.EncodeNumericColumn(0, out.grid, column);
  out.codes.SetLabels(out.labels);
  return out;
}

// Batch shapes the scan actually produces: a contiguous block, an
// ascending subset with gaps, and a shuffled batch (the kernels don't
// require ascending order, so the equivalence shouldn't either).
std::vector<std::vector<RecordId>> BatchShapes(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<RecordId>> batches;
  std::vector<RecordId> contiguous;
  for (RecordId r = n / 4; r < n - n / 4; ++r) contiguous.push_back(r);
  batches.push_back(std::move(contiguous));
  std::vector<RecordId> gaps;
  for (RecordId r = 0; r < n; ++r) {
    if (rng.UniformDouble() < 0.55) gaps.push_back(r);
  }
  batches.push_back(gaps);
  std::vector<RecordId> shuffled = batches.back();
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[static_cast<size_t>(rng.UniformInt(0, i - 1))]);
  }
  batches.push_back(std::move(shuffled));
  // The full range ending at the LAST record: the padding walk.
  std::vector<RecordId> all(n);
  for (RecordId r = 0; r < n; ++r) all[r] = r;
  batches.push_back(std::move(all));
  return batches;
}

void RunTier1D(const HistKernelOps& ops, const RandomColumn& t,
               const std::vector<RecordId>& rids, int nc,
               std::vector<int64_t>* cells) {
  std::vector<ClassId> labels(rids.size());
  ops.gather_labels(t.codes.labels(), rids.data(), rids.size(),
                    labels.data());
  cells->assign(static_cast<size_t>(t.grid.num_intervals()) * nc, 0);
  const CodeView view = t.codes.view(0);
  if (t.codes.width(0) == 1) {
    ops.accum1d_u8(view.u8, labels.data(), rids.data(), rids.size(), nc,
                   cells->data());
  } else {
    ops.accum1d_u16(view.u16, labels.data(), rids.data(), rids.size(), nc,
                    cells->data());
  }
}

// Drives accum2d with the table's own column serving as both the X and
// Y axis of a bivariate cell grid (x_lo strips the leading quarter of
// the rows, like a child bundle covering a sub-range).
void RunTier2D(const HistKernelOps& ops, const RandomColumn& t,
               const std::vector<RecordId>& rids, int nc,
               std::vector<int64_t>* cells) {
  const int q = t.grid.num_intervals();
  const int x_lo = q / 4;
  std::vector<RecordId> inside;
  for (const RecordId r : rids) {
    if (t.codes.code(0, r) >= x_lo) inside.push_back(r);
  }
  std::vector<ClassId> labels(inside.size());
  std::vector<int32_t> xrows(inside.size());
  ops.gather_labels(t.codes.labels(), inside.data(), inside.size(),
                    labels.data());
  const CodeView view = t.codes.view(0);
  const int nx = q - x_lo;
  cells->assign(static_cast<size_t>(nx) * q * nc, 0);
  if (t.codes.width(0) == 1) {
    ops.gather_xrows_u8(view.u8, x_lo, inside.data(), inside.size(),
                        xrows.data());
    ops.accum2d_u8(xrows.data(), view.u8, labels.data(), inside.data(),
                   inside.size(), q, nc, cells->data());
  } else {
    ops.gather_xrows_u16(view.u16, x_lo, inside.data(), inside.size(),
                         xrows.data());
    ops.accum2d_u16(xrows.data(), view.u16, labels.data(), inside.data(),
                    inside.size(), q, nc, cells->data());
  }
}

// Naive reference built straight from codes + labels, no kernels.
void DirectCounts1D(const RandomColumn& t, const std::vector<RecordId>& rids,
                    int nc, std::vector<int64_t>* cells) {
  cells->assign(static_cast<size_t>(t.grid.num_intervals()) * nc, 0);
  for (const RecordId r : rids) {
    (*cells)[static_cast<size_t>(t.codes.code(0, r)) * nc + t.labels[r]]++;
  }
}

TEST(KernelDispatch, EveryTierMatchesDirectCountsOnRandomTables) {
  const auto tiers = RunnableTiers();
  ASSERT_FALSE(tiers.empty());
  for (const uint64_t seed : {11u, 12u, 13u, 14u}) {
    // 511 records: ends one short of a round chunk, so every tier runs
    // its vector body AND its tail, and the final loads touch the last
    // record of the column (the padding case under ASan).
    for (const int64_t n : {int64_t{511}, int64_t{2048}, int64_t{37}}) {
      for (const int nc : {2, 5}) {
        const RandomColumn t = MakeRandomColumn(n, 40, nc, seed);
        for (const auto& rids : BatchShapes(n, seed * 3 + nc)) {
          std::vector<int64_t> want;
          DirectCounts1D(t, rids, nc, &want);
          for (const auto& [name, ops] : RunnableTiers()) {
            std::vector<int64_t> got;
            RunTier1D(*ops, t, rids, nc, &got);
            ASSERT_EQ(got, want)
                << name << " seed=" << seed << " n=" << n << " nc=" << nc
                << " batch=" << rids.size();
          }
        }
      }
    }
  }
}

TEST(KernelDispatch, EveryTierMatchesScalarOnSixteenBitCodes) {
  const auto tiers = RunnableTiers();
  for (const uint64_t seed : {21u, 22u}) {
    for (const int64_t n : {int64_t{511}, int64_t{1500}}) {
      const RandomColumn t = MakeWideColumn(n, 2, seed);
      ASSERT_EQ(t.codes.width(0), 2) << ">255 intervals must code as u16";
      for (const auto& rids : BatchShapes(n, seed)) {
        std::vector<int64_t> want1d, want2d;
        RunTier1D(*tiers[0].second, t, rids, 2, &want1d);
        RunTier2D(*tiers[0].second, t, rids, 2, &want2d);
        std::vector<int64_t> direct;
        DirectCounts1D(t, rids, 2, &direct);
        ASSERT_EQ(want1d, direct) << "scalar vs naive";
        for (size_t i = 1; i < tiers.size(); ++i) {
          std::vector<int64_t> got;
          RunTier1D(*tiers[i].second, t, rids, 2, &got);
          ASSERT_EQ(got, want1d) << tiers[i].first << " 1d seed=" << seed;
          RunTier2D(*tiers[i].second, t, rids, 2, &got);
          ASSERT_EQ(got, want2d) << tiers[i].first << " 2d seed=" << seed;
        }
      }
    }
  }
}

TEST(KernelDispatch, BivariateTiersMatchScalarOnRandomTables) {
  const auto tiers = RunnableTiers();
  for (const uint64_t seed : {31u, 32u, 33u}) {
    const int64_t n = 511;
    const RandomColumn t = MakeRandomColumn(n, 30, 3, seed);
    for (const auto& rids : BatchShapes(n, seed + 7)) {
      std::vector<int64_t> want;
      RunTier2D(*tiers[0].second, t, rids, 3, &want);
      for (size_t i = 1; i < tiers.size(); ++i) {
        std::vector<int64_t> got;
        RunTier2D(*tiers[i].second, t, rids, 3, &got);
        ASSERT_EQ(got, want) << tiers[i].first << " seed=" << seed;
      }
    }
  }
}

// Whole-build identity: the serialized tree must not depend on the
// kernel tier, the thread count, or the {codes, subtraction} toggles —
// the full cross product collapses onto one byte string.
TEST(KernelDispatch, TreeBytesInvariantAcrossTiersThreadsAndToggles) {
  IsaGuard guard;
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF7;  // linear splits stress the gini scan
  gen.num_records = 4000;
  gen.seed = 227;
  const Dataset train = GenerateAgrawal(gen);

  CmpOptions base = CmpBOptions();
  base.base.in_memory_threshold = 512;

  ASSERT_TRUE(SetKernelIsa(KernelIsa::kScalar));
  CmpOptions ref = base;
  ref.bin_code_cache = false;
  ref.sibling_subtraction = false;
  const std::string reference =
      SerializeTree(CmpBuilder(ref).Build(train).tree);
  ASSERT_FALSE(reference.empty());

  for (const KernelIsa isa : RunnableIsas()) {
    ASSERT_TRUE(SetKernelIsa(isa));
    for (const bool codes : {true, false}) {
      for (const bool subtract : {true, false}) {
        for (const int threads : {1, 2, 4}) {
          CmpOptions o = base;
          o.bin_code_cache = codes;
          o.sibling_subtraction = subtract;
          o.base.num_threads = threads;
          o.scan_shards = threads;
          EXPECT_EQ(SerializeTree(CmpBuilder(o).Build(train).tree),
                    reference)
              << KernelIsaName(isa) << " codes=" << codes
              << " subtract=" << subtract << " threads=" << threads;
        }
      }
    }
  }
}

// The committed golden fixtures were produced under the scalar
// semantics; every tier must retrain to the same bytes. This is the
// cross-check that pins the SIMD tiers to the SAME reference the rest
// of the suite is pinned to, not merely to each other.
TEST(KernelDispatch, GoldenFixturesReproduceUnderEveryTier) {
  IsaGuard guard;
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 6000;
  gen.seed = 71;
  const Dataset train = GenerateAgrawal(gen);

  const std::string path = std::string(CMP_GOLDEN_DIR) + "/cmp_b.tree";
  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string fixture = buffer.str();

  for (const KernelIsa isa : RunnableIsas()) {
    ASSERT_TRUE(SetKernelIsa(isa));
    CmpOptions o = CmpBOptions();
    o.base.in_memory_threshold = 512;  // mirror test_golden's ScanHeavy
    EXPECT_EQ(SerializeTree(CmpBuilder(o).Build(train).tree), fixture)
        << KernelIsaName(isa)
        << ": retrained tree differs from the committed scalar-era "
           "fixture — this tier's kernels are not bit-equivalent";
  }

  // And once more under the auto selection, whatever it picks here.
  ASSERT_TRUE(SetKernelIsa(DetectKernelIsa()));
  CmpOptions o = CmpBOptions();
  o.base.in_memory_threshold = 512;
  EXPECT_EQ(SerializeTree(CmpBuilder(o).Build(train).tree), fixture)
      << "auto (" << KernelIsaName(ActiveKernelIsa()) << ")";
}

// ---------------------------------------------------------------------
// Dispatch plumbing.

TEST(KernelDispatch, ScalarAlwaysSupportedAndSelectable) {
  IsaGuard guard;
  EXPECT_TRUE(KernelIsaSupported(KernelIsa::kScalar));
  EXPECT_TRUE(SetKernelIsa(KernelIsa::kScalar));
  EXPECT_EQ(ActiveKernelIsa(), KernelIsa::kScalar);
  EXPECT_EQ(std::string(KernelIsaName(KernelIsa::kScalar)), "scalar");
}

TEST(KernelDispatch, DetectedTierIsSupportedAndOrdered) {
  const KernelIsa detected = DetectKernelIsa();
  EXPECT_TRUE(KernelIsaSupported(detected));
  // Every tier at or below the detected one must be runnable too.
  for (int t = 0; t <= static_cast<int>(detected); ++t) {
    EXPECT_TRUE(KernelIsaSupported(static_cast<KernelIsa>(t))) << t;
  }
}

TEST(KernelDispatch, ParseAcceptsTierNamesAndAuto) {
  KernelIsa isa;
  EXPECT_TRUE(ParseKernelIsa("scalar", &isa));
  EXPECT_EQ(isa, KernelIsa::kScalar);
  EXPECT_TRUE(ParseKernelIsa("sse2", &isa));
  EXPECT_EQ(isa, KernelIsa::kSse2);
  EXPECT_TRUE(ParseKernelIsa("avx2", &isa));
  EXPECT_EQ(isa, KernelIsa::kAvx2);
  EXPECT_TRUE(ParseKernelIsa("auto", &isa));
  EXPECT_EQ(isa, DetectKernelIsa());
  EXPECT_FALSE(ParseKernelIsa("avx512", &isa));
  EXPECT_FALSE(ParseKernelIsa("", &isa));
  EXPECT_FALSE(ParseKernelIsa("Scalar", &isa));  // names are lowercase
}

TEST(KernelDispatch, SelectByNameReportsUnknownTiers) {
  IsaGuard guard;
  std::string error;
  EXPECT_TRUE(SelectKernelIsaByName("scalar", &error)) << error;
  EXPECT_EQ(ActiveKernelIsa(), KernelIsa::kScalar);
  EXPECT_FALSE(SelectKernelIsaByName("bogus", &error));
  EXPECT_NE(error.find("unknown kernel tier 'bogus'"), std::string::npos)
      << error;
}

TEST(KernelDispatch, PublicEntryPointsFollowActiveTier) {
  // The un-suffixed entry points must produce scalar-identical cells no
  // matter which tier is active (smoke check that the atomic dispatch
  // actually routes somewhere equivalent).
  IsaGuard guard;
  const RandomColumn t = MakeRandomColumn(511, 25, 2, 47);
  std::vector<RecordId> rids(511);
  for (RecordId r = 0; r < 511; ++r) rids[r] = r;
  std::vector<int64_t> want;
  DirectCounts1D(t, rids, 2, &want);
  for (const KernelIsa isa : RunnableIsas()) {
    ASSERT_TRUE(SetKernelIsa(isa));
    KernelScratch scratch;
    GatherLabels(t.codes.labels(), rids.data(), rids.size(),
                 &scratch.labels);
    Histogram1D hist(t.grid.num_intervals(), 2);
    AccumulateHist1D(t.codes.view(0), scratch.labels.data(), rids.data(),
                     rids.size(), 2, hist.data());
    std::vector<int64_t> got(want.size());
    for (int i = 0; i < hist.num_intervals(); ++i) {
      for (ClassId c = 0; c < 2; ++c) {
        got[static_cast<size_t>(i) * 2 + c] = hist.count(i, c);
      }
    }
    EXPECT_EQ(got, want) << KernelIsaName(isa);
  }
}

}  // namespace
}  // namespace cmp
