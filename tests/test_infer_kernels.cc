// Differential fuzz suite for the vectorized batch-inference engine:
// every runnable kernel tier (scalar gang, SSE2, AVX2) must produce
// predictions byte-identical to the scalar PredictRow walker, across
// batch remainders smaller than a vector, both `.cmpb` node layouts
// (preorder and cache-blocked), random ensembles, and a trained boost
// forest. Also covers the kNodeLayout blob section: old blobs (no
// section) load as preorder, malformed sections fail cleanly, and every
// prefix truncation of a blocked blob is rejected at parse.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "boost/boost.h"
#include "common/cpu_features.h"
#include "common/dataset.h"
#include "common/random.h"
#include "common/schema.h"
#include "infer/batch_predictor.h"
#include "infer/compiled_tree.h"
#include "infer/ensemble.h"
#include "infer/infer_kernels.h"
#include "infer/layout.h"
#include "infer/model_io.h"
#include "io/model_blob.h"
#include "tree/tree.h"

namespace cmp {
namespace {

// A pool of "interesting" values shared by tree thresholds and dataset
// columns, so records routinely land exactly on split boundaries (and
// non-float-round-tripping thresholds exercise the kWide side table).
class ValuePool {
 public:
  explicit ValuePool(Rng* rng) {
    for (int i = 0; i < 24; ++i) {
      values_.push_back(rng->Uniform(-100.0, 100.0));  // rarely float-exact
      values_.push_back(static_cast<double>(rng->UniformInt(-50, 50)));
    }
  }
  double Draw(Rng* rng) const {
    return values_[rng->UniformInt(0, static_cast<int64_t>(values_.size()) -
                                          1)];
  }

 private:
  std::vector<double> values_;
};

std::string Tagged(const char* prefix, int i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

Schema RandomSchema(Rng* rng) {
  std::vector<AttrInfo> attrs;
  const int num_numeric = static_cast<int>(rng->UniformInt(2, 5));
  const int num_cat = static_cast<int>(rng->UniformInt(0, 3));
  for (int i = 0; i < num_numeric; ++i) {
    attrs.push_back({Tagged("n", i), AttrKind::kNumeric, 0});
  }
  for (int i = 0; i < num_cat; ++i) {
    attrs.push_back({Tagged("c", i), AttrKind::kCategorical,
                     static_cast<int32_t>(rng->UniformInt(2, 6))});
  }
  for (size_t i = attrs.size() - 1; i > 0; --i) {
    std::swap(attrs[i], attrs[rng->UniformInt(0, static_cast<int64_t>(i))]);
  }
  std::vector<std::string> classes;
  const int nc = static_cast<int>(rng->UniformInt(2, 4));
  for (int c = 0; c < nc; ++c) classes.push_back(Tagged("k", c));
  return Schema(std::move(attrs), std::move(classes));
}

NodeId RandomSubtree(DecisionTree* tree, Rng* rng, const ValuePool& pool,
                     int depth) {
  const Schema& schema = tree->schema();
  const std::vector<AttrId> numeric = schema.NumericAttrs();
  const std::vector<AttrId> cats = schema.CategoricalAttrs();

  TreeNode node;
  node.depth = depth;
  if (depth >= 6 || rng->Bernoulli(0.35)) {
    node.is_leaf = true;
    if (rng->Bernoulli(0.9)) {
      for (ClassId c = 0; c < schema.num_classes(); ++c) {
        node.class_counts.push_back(rng->UniformInt(0, 20));
      }
    }
    ClassId best = 0;
    for (size_t c = 1; c < node.class_counts.size(); ++c) {
      if (node.class_counts[c] > node.class_counts[best]) {
        best = static_cast<ClassId>(c);
      }
    }
    node.leaf_class = best;
    return tree->AddNode(node);
  }

  node.is_leaf = false;
  const int64_t kind = rng->UniformInt(0, 2);
  if (kind == 1 && !cats.empty()) {
    const AttrId a =
        cats[rng->UniformInt(0, static_cast<int64_t>(cats.size()) - 1)];
    std::vector<uint8_t> subset(schema.attr(a).cardinality);
    for (auto& b : subset) b = rng->Bernoulli(0.5) ? 1 : 0;
    node.split = Split::Categorical(a, std::move(subset));
  } else if (kind == 2 && numeric.size() >= 2) {
    const AttrId x = numeric[rng->UniformInt(
        0, static_cast<int64_t>(numeric.size()) - 1)];
    AttrId y = x;
    while (y == x) {
      y = numeric[rng->UniformInt(0,
                                  static_cast<int64_t>(numeric.size()) - 1)];
    }
    node.split = Split::Linear(x, y, rng->Uniform(-2.0, 2.0),
                               rng->Uniform(-2.0, 2.0), pool.Draw(rng));
  } else {
    const AttrId a = numeric[rng->UniformInt(
        0, static_cast<int64_t>(numeric.size()) - 1)];
    node.split = Split::Numeric(a, pool.Draw(rng));
  }
  const NodeId id = tree->AddNode(node);
  const NodeId left = RandomSubtree(tree, rng, pool, depth + 1);
  const NodeId right = RandomSubtree(tree, rng, pool, depth + 1);
  tree->mutable_node(id).left = left;
  tree->mutable_node(id).right = right;
  return id;
}

DecisionTree RandomTree(const Schema& schema, Rng* rng,
                        const ValuePool& pool) {
  DecisionTree tree(schema);
  RandomSubtree(&tree, rng, pool, 0);
  return tree;
}

Dataset RandomDataset(const Schema& schema, Rng* rng, const ValuePool& pool,
                      int64_t n) {
  Dataset ds(schema);
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> numeric_values;
    std::vector<int32_t> cat_values;
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      if (schema.is_numeric(a)) {
        numeric_values.push_back(rng->Bernoulli(0.5)
                                     ? pool.Draw(rng)
                                     : rng->Uniform(-100.0, 100.0));
      } else {
        cat_values.push_back(static_cast<int32_t>(
            rng->UniformInt(-1, schema.attr(a).cardinality)));
      }
    }
    ds.Append(numeric_values, cat_values,
              static_cast<ClassId>(
                  rng->UniformInt(0, schema.num_classes() - 1)));
  }
  return ds;
}

/// Per-attribute column-pointer view over a dataset (the adapter
/// LeafIndicesOf builds internally, rebuilt here so tests can drive
/// LeafIndicesOfColumns with explicit kernel tiers).
struct DatasetColumns {
  std::vector<const double*> num;
  std::vector<const int32_t*> cat;
  bool any_cat = false;

  explicit DatasetColumns(const Dataset& ds) {
    const Schema& schema = ds.schema();
    num.assign(schema.num_attrs(), nullptr);
    cat.assign(schema.num_attrs(), nullptr);
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      if (schema.is_numeric(a)) {
        num[a] = ds.numeric_column(a).data();
      } else {
        cat[a] = ds.categorical_column(a).data();
        any_cat = true;
      }
    }
  }
  RowColumnsView view() const {
    return RowColumnsView{num.data(), any_cat ? cat.data() : nullptr};
  }
};

/// Every kernel tier this binary compiled AND this host can execute.
std::vector<std::pair<std::string, const InferKernelOps*>> RunnableTiers() {
  std::vector<std::pair<std::string, const InferKernelOps*>> tiers;
  tiers.emplace_back("scalar", &InferKernelOpsFor(KernelIsa::kScalar));
  if (KernelIsaSupported(KernelIsa::kSse2)) {
    if (const InferKernelOps* ops = Sse2InferKernelOpsOrNull()) {
      tiers.emplace_back("sse2", ops);
    }
  }
  if (KernelIsaSupported(KernelIsa::kAvx2)) {
    if (const InferKernelOps* ops = Avx2InferKernelOpsOrNull()) {
      tiers.emplace_back("avx2", ops);
    }
  }
  return tiers;
}

/// Dense raw-row copy of record `r`, indexed by AttrId.
void FillRawRow(const Dataset& ds, RecordId r, std::vector<double>* numeric,
                std::vector<int32_t>* categorical) {
  const Schema& schema = ds.schema();
  numeric->assign(schema.num_attrs(), 0.0);
  categorical->assign(schema.num_attrs(), 0);
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (schema.is_numeric(a)) {
      (*numeric)[a] = ds.numeric(a, r);
    } else {
      (*categorical)[a] = ds.categorical(a, r);
    }
  }
}

CompiledModel CompileWithLayout(const DecisionTree& tree, NodeLayout layout) {
  PackOptions pack;
  pack.layout = layout;
  std::string error;
  CompiledModel model = CompileModel({&tree}, pack, &error);
  EXPECT_FALSE(model.empty()) << error;
  EXPECT_EQ(model.layout, layout);
  return model;
}

// Every runnable tier x both layouts x batch sizes spanning all vector
// remainders must byte-match the scalar PredictRow walker.
TEST(InferKernels, TiersMatchPredictRowAcrossLayoutsAndRemainders) {
  Rng rng(20260808);
  const auto tiers = RunnableTiers();
  ASSERT_FALSE(tiers.empty());
  for (int trial = 0; trial < 12; ++trial) {
    const ValuePool pool(&rng);
    const Schema schema = RandomSchema(&rng);
    const DecisionTree tree = RandomTree(schema, &rng, pool);
    const Dataset ds = RandomDataset(schema, &rng, pool, 547);
    const DatasetColumns cols(ds);

    // Scalar per-row reference (PredictRow semantics via LeafIndexOf).
    std::vector<double> raw_numeric;
    std::vector<int32_t> raw_cat;

    for (const NodeLayout layout :
         {NodeLayout::kPreorder, NodeLayout::kBlocked}) {
      const CompiledModel model = CompileWithLayout(tree, layout);
      const CompiledTree& compiled = model.trees.front();

      std::vector<int32_t> reference(ds.num_records());
      for (RecordId r = 0; r < ds.num_records(); ++r) {
        FillRawRow(ds, r, &raw_numeric, &raw_cat);
        reference[r] = compiled.LeafIndexOfRow(raw_numeric.data(),
                                               raw_cat.data());
        ASSERT_EQ(compiled.leaf_class(reference[r]), tree.Classify(ds, r));
      }

      // The retained pre-SIMD gang path is its own reference.
      std::vector<int32_t> gang(ds.num_records());
      compiled.LeafIndicesOfGang(ds, 0, ds.num_records(), gang.data());
      ASSERT_EQ(gang, reference);

      for (const auto& [name, ops] : tiers) {
        // Batch sizes 0..17 cover every remainder of the 8- and 4-lane
        // tiers (and the sub-vector scalar fallback) at both ends of
        // the range; two larger sizes exercise refill and drain.
        std::vector<int64_t> sizes;
        for (int64_t s = 0; s <= 17; ++s) sizes.push_back(s);
        sizes.push_back(100);
        sizes.push_back(ds.num_records());
        for (const int64_t size : sizes) {
          const int64_t begin = size == ds.num_records()
                                    ? 0
                                    : rng.UniformInt(
                                          0, ds.num_records() - size);
          std::vector<int32_t> got(static_cast<size_t>(size), -99);
          compiled.LeafIndicesOfColumns(cols.view(), begin, begin + size,
                                        got.data(), ops);
          for (int64_t i = 0; i < size; ++i) {
            ASSERT_EQ(got[i], reference[begin + i])
                << "tier=" << name
                << " layout=" << NodeLayoutName(layout) << " size=" << size
                << " row=" << begin + i;
          }
        }
      }
    }
  }
}

// BatchPredictor's three entry points (dataset, raw rows, columns) must
// agree with each other and with the interpreter under every tier that
// SetKernelIsa can pin on this host.
TEST(InferKernels, BatchPredictorEntryPointsAgreeAcrossActiveTiers) {
  Rng rng(777001);
  const ValuePool pool(&rng);
  const Schema schema = RandomSchema(&rng);
  const DecisionTree tree = RandomTree(schema, &rng, pool);
  const Dataset ds = RandomDataset(schema, &rng, pool, 331);
  const CompiledTree compiled = CompiledTree::Compile(tree);
  const DatasetColumns cols(ds);

  const int64_t n = ds.num_records();
  const int32_t na = schema.num_attrs();
  std::vector<double> raw_numeric(static_cast<size_t>(n) * na);
  std::vector<int32_t> raw_cat(static_cast<size_t>(n) * na);
  std::vector<double> row_n;
  std::vector<int32_t> row_c;
  for (RecordId r = 0; r < n; ++r) {
    FillRawRow(ds, r, &row_n, &row_c);
    std::copy(row_n.begin(), row_n.end(), raw_numeric.begin() + r * na);
    std::copy(row_c.begin(), row_c.end(), raw_cat.begin() + r * na);
  }

  const KernelIsa before = ActiveKernelIsa();
  for (const KernelIsa isa :
       {KernelIsa::kScalar, KernelIsa::kSse2, KernelIsa::kAvx2}) {
    if (!SetKernelIsa(isa)) continue;
    PredictOptions opts;
    opts.want_probs = true;
    opts.top_k = 2;
    opts.block_size = 37;  // force many blocks and remainders
    const BatchPredictor predictor(&compiled, opts);
    const BatchResult from_ds = predictor.Predict(ds);
    const BatchResult from_raw =
        predictor.PredictRaw(raw_numeric.data(), raw_cat.data(), n);
    const BatchResult from_cols = predictor.PredictColumns(
        cols.num.data(), cols.any_cat ? cols.cat.data() : nullptr, n);
    EXPECT_EQ(from_ds.labels, from_raw.labels);
    EXPECT_EQ(from_ds.labels, from_cols.labels);
    EXPECT_EQ(from_ds.probs, from_raw.probs);
    EXPECT_EQ(from_ds.probs, from_cols.probs);
    EXPECT_EQ(from_ds.topk, from_raw.topk);
    EXPECT_EQ(from_ds.topk, from_cols.topk);
    for (RecordId r = 0; r < n; ++r) {
      ASSERT_EQ(from_ds.labels[r], tree.Classify(ds, r))
          << "isa=" << KernelIsaName(isa) << " row=" << r;
    }
  }
  ASSERT_TRUE(SetKernelIsa(before));
}

// The tree-interleaved ensemble combiner must reproduce the old per-row
// reference combiner exactly, for both vote kinds, under every tier.
TEST(InferKernels, EnsembleInterleavingMatchesPerRowReference) {
  Rng rng(424242);
  const ValuePool pool(&rng);
  const Schema schema = RandomSchema(&rng);
  std::vector<DecisionTree> trees;
  std::vector<CompiledTree> compiled;
  for (int t = 0; t < 5; ++t) {
    trees.push_back(RandomTree(schema, &rng, pool));
    compiled.push_back(CompiledTree::Compile(trees.back()));
  }
  const Dataset ds = RandomDataset(schema, &rng, pool, 613);
  const int32_t nc = schema.num_classes();

  const KernelIsa before = ActiveKernelIsa();
  for (const VoteKind vote : {VoteKind::kMajority, VoteKind::kAverageProb}) {
    // Reference: the pre-interleaving combiner, one row at a time.
    std::vector<ClassId> want(ds.num_records());
    std::vector<float> want_probs(static_cast<size_t>(ds.num_records()) * nc);
    for (RecordId r = 0; r < ds.num_records(); ++r) {
      std::vector<double> acc(nc, 0.0);
      for (const CompiledTree& t : compiled) {
        const int32_t leaf = t.LeafIndexOf(ds, r);
        if (vote == VoteKind::kMajority) {
          acc[t.leaf_class(leaf)] += 1.0;
        } else {
          const float* p = t.leaf_probs(leaf);
          for (int32_t c = 0; c < nc; ++c) acc[c] += p[c];
        }
      }
      ClassId best = 0;
      for (ClassId c = 1; c < nc; ++c) {
        if (acc[c] > acc[best]) best = c;
      }
      want[r] = best;
      // Same expression as the production combiner (multiply by the
      // reciprocal, then narrow) so equality is exact, not approximate.
      const double inv = 1.0 / static_cast<double>(compiled.size());
      for (int32_t c = 0; c < nc; ++c) {
        want_probs[static_cast<size_t>(r) * nc + c] =
            static_cast<float>(acc[c] * inv);
      }
    }

    for (const KernelIsa isa :
         {KernelIsa::kScalar, KernelIsa::kSse2, KernelIsa::kAvx2}) {
      if (!SetKernelIsa(isa)) continue;
      const EnsemblePredictor ensemble(compiled, vote);
      PredictOptions opts;
      opts.want_probs = true;
      opts.block_size = 53;
      const BatchResult got = ensemble.Predict(ds, opts);
      EXPECT_EQ(got.labels, want) << KernelIsaName(isa);
      EXPECT_EQ(got.probs, want_probs) << KernelIsaName(isa);
    }
  }
  ASSERT_TRUE(SetKernelIsa(before));
}

// A trained boost forest (kAverageProb additive scoring) must serve the
// same labels under every tier and both blob layouts.
TEST(InferKernels, BoostForestIdenticalAcrossTiersAndLayouts) {
  // Small separable-ish binary problem.
  std::vector<AttrInfo> attrs = {{"x", AttrKind::kNumeric, 0},
                                 {"y", AttrKind::kNumeric, 0}};
  Schema schema(std::move(attrs), {"neg", "pos"});
  Dataset train(schema);
  Rng rng(99);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.Uniform(-1.0, 1.0);
    const double y = rng.Uniform(-1.0, 1.0);
    const ClassId label =
        (x + 0.5 * y + rng.Uniform(-0.2, 0.2)) > 0.0 ? 1 : 0;
    train.Append({x, y}, {}, label);
  }
  BoostOptions opts;
  opts.boost.rounds = 8;
  BoostBuilder builder(opts);
  const BuildResult built = builder.Build(train);
  ASSERT_GE(built.forest.size(), 2u);

  std::vector<const DecisionTree*> ptrs;
  for (const DecisionTree& t : built.forest) ptrs.push_back(&t);

  const KernelIsa before = ActiveKernelIsa();
  std::vector<ClassId> reference;
  for (const NodeLayout layout :
       {NodeLayout::kPreorder, NodeLayout::kBlocked}) {
    PackOptions pack;
    pack.layout = layout;
    std::string error;
    const CompiledModel model = CompileModel(ptrs, pack, &error);
    ASSERT_FALSE(model.empty()) << error;
    ASSERT_EQ(model.layout, layout);
    for (const KernelIsa isa :
         {KernelIsa::kScalar, KernelIsa::kSse2, KernelIsa::kAvx2}) {
      if (!SetKernelIsa(isa)) continue;
      const EnsemblePredictor ensemble(model.trees, VoteKind::kAverageProb);
      const BatchResult got = ensemble.Predict(train);
      if (reference.empty()) {
        reference = got.labels;
      } else {
        EXPECT_EQ(got.labels, reference)
            << NodeLayoutName(layout) << "/" << KernelIsaName(isa);
      }
    }
  }
  ASSERT_TRUE(SetKernelIsa(before));
}

// Blobs written before the kNodeLayout section existed carry no layout
// section; they must load as preorder and predict identically.
TEST(InferKernels, BlobWithoutLayoutSectionLoadsAsPreorder) {
  Rng rng(5150);
  const ValuePool pool(&rng);
  const Schema schema = RandomSchema(&rng);
  const DecisionTree tree = RandomTree(schema, &rng, pool);
  const Dataset ds = RandomDataset(schema, &rng, pool, 64);

  // Hand-pack the way PR 1..9 binaries did: schema + per-tree sections,
  // no kNodeLayout.
  std::string error;
  std::vector<uint8_t> with = PackModelBlob({&tree}, &error);
  ASSERT_FALSE(with.empty()) << error;
  auto parsed = ModelBlob::FromBytes(std::move(with), &error);
  ASSERT_NE(parsed, nullptr) << error;
  BlobWriter writer(1, parsed->num_classes());
  for (const BlobSection& s : parsed->sections()) {
    if (static_cast<SectionKind>(s.kind) == SectionKind::kNodeLayout) {
      continue;
    }
    writer.Add(s.tree, static_cast<SectionKind>(s.kind),
               parsed->SectionData<uint8_t>(s), s.count,
               s.count > 0 ? s.bytes / s.count : 1);
  }
  auto old_style = ModelBlob::FromBytes(writer.Finish(), &error);
  ASSERT_NE(old_style, nullptr) << error;
  ASSERT_EQ(old_style->Find(kGlobalSection, SectionKind::kNodeLayout),
            nullptr);

  CompiledModel model;
  ASSERT_TRUE(ModelFromBlob(old_style, &model, &error)) << error;
  EXPECT_EQ(model.layout, NodeLayout::kPreorder);
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    ASSERT_EQ(model.trees.front().Predict(ds, r), tree.Classify(ds, r));
  }
}

// A kNodeLayout section too short to hold value+version, or carrying an
// unknown layout value, must fail the bind with a clear error.
TEST(InferKernels, MalformedLayoutSectionFailsCleanly) {
  Rng rng(31337);
  const ValuePool pool(&rng);
  const Schema schema = RandomSchema(&rng);
  const DecisionTree tree = RandomTree(schema, &rng, pool);

  std::string error;
  std::vector<uint8_t> bytes = PackModelBlob({&tree}, &error);
  ASSERT_FALSE(bytes.empty()) << error;
  auto parsed = ModelBlob::FromBytes(std::move(bytes), &error);
  ASSERT_NE(parsed, nullptr) << error;

  const auto rebuild = [&](const std::vector<uint32_t>& layout_payload) {
    BlobWriter writer(1, parsed->num_classes());
    for (const BlobSection& s : parsed->sections()) {
      if (static_cast<SectionKind>(s.kind) == SectionKind::kNodeLayout) {
        writer.Add(s.tree, SectionKind::kNodeLayout, layout_payload.data(),
                   layout_payload.size(), sizeof(uint32_t));
      } else {
        writer.Add(s.tree, static_cast<SectionKind>(s.kind),
                   parsed->SectionData<uint8_t>(s), s.count,
                   s.count > 0 ? s.bytes / s.count : 1);
      }
    }
    return ModelBlob::FromBytes(writer.Finish(), &error);
  };

  CompiledModel model;
  auto short_section = rebuild({1});  // 4 bytes, needs 8
  ASSERT_NE(short_section, nullptr) << error;
  EXPECT_FALSE(ModelFromBlob(short_section, &model, &error));
  EXPECT_NE(error.find("node-layout"), std::string::npos) << error;

  auto unknown_value = rebuild({7, kNodeLayoutVersion});
  ASSERT_NE(unknown_value, nullptr) << error;
  EXPECT_FALSE(ModelFromBlob(unknown_value, &model, &error));
  EXPECT_NE(error.find("layout"), std::string::npos) << error;
}

// Every prefix truncation of a blocked-layout blob must be rejected at
// FromBytes — the container's total-size check makes a partial download
// or short write fail loudly instead of binding garbage views.
TEST(InferKernels, EveryPrefixTruncationOfBlockedBlobFails) {
  Rng rng(8086);
  const ValuePool pool(&rng);
  const Schema schema = RandomSchema(&rng);
  const DecisionTree tree = RandomTree(schema, &rng, pool);

  PackOptions pack;
  pack.layout = NodeLayout::kBlocked;
  std::string error;
  const std::vector<uint8_t> bytes = PackModelBlob({&tree}, pack, &error);
  ASSERT_FALSE(bytes.empty()) << error;

  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    auto blob = ModelBlob::FromBytes(std::move(prefix), &error);
    ASSERT_EQ(blob, nullptr) << "prefix of " << len << " bytes parsed";
  }
  // Sanity: the untruncated bytes do parse and bind.
  auto blob = ModelBlob::FromBytes(bytes, &error);
  ASSERT_NE(blob, nullptr) << error;
  CompiledModel model;
  ASSERT_TRUE(ModelFromBlob(blob, &model, &error)) << error;
  EXPECT_EQ(model.layout, NodeLayout::kBlocked);
}

// Repeated and concurrent Predict calls on one predictor must agree:
// the scratch pool hands every in-flight block its own buffers.
TEST(InferKernels, ScratchReuseIsDeterministicAndThreadSafe) {
  Rng rng(606060);
  const ValuePool pool(&rng);
  const Schema schema = RandomSchema(&rng);
  const DecisionTree tree = RandomTree(schema, &rng, pool);
  const Dataset ds = RandomDataset(schema, &rng, pool, 409);
  const CompiledTree compiled = CompiledTree::Compile(tree);

  PredictOptions opts;
  opts.want_probs = true;
  opts.block_size = 29;
  const BatchPredictor predictor(&compiled, opts);
  const BatchResult first = predictor.Predict(ds);
  for (int i = 0; i < 3; ++i) {
    const BatchResult again = predictor.Predict(ds);
    ASSERT_EQ(again.labels, first.labels);
    ASSERT_EQ(again.probs, first.probs);
  }

  std::vector<std::thread> threads;
  std::vector<BatchResult> results(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(
        [&, t] { results[t] = predictor.Predict(ds); });
  }
  for (std::thread& t : threads) t.join();
  for (const BatchResult& r : results) {
    EXPECT_EQ(r.labels, first.labels);
    EXPECT_EQ(r.probs, first.probs);
  }
}

// Pack-level check: blocked and preorder blobs of the same tree differ
// in bytes but agree on every leaf table, and the hot node sections of
// both land 64-byte aligned.
TEST(InferKernels, BlockedLayoutRespectsAlignmentAndLeafTables) {
  Rng rng(271828);
  const ValuePool pool(&rng);
  const Schema schema = RandomSchema(&rng);
  const DecisionTree tree = RandomTree(schema, &rng, pool);

  std::string error;
  PackOptions pre;
  pre.layout = NodeLayout::kPreorder;
  const std::vector<uint8_t> a = PackModelBlob({&tree}, pre, &error);
  PackOptions blk;
  blk.layout = NodeLayout::kBlocked;
  const std::vector<uint8_t> b = PackModelBlob({&tree}, blk, &error);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());

  auto blob = ModelBlob::FromBytes(b, &error);
  ASSERT_NE(blob, nullptr) << error;
  for (const BlobSection& s : blob->sections()) {
    const SectionKind kind = static_cast<SectionKind>(s.kind);
    if (kind == SectionKind::kNodeAttr || kind == SectionKind::kThreshold ||
        kind == SectionKind::kChildren) {
      EXPECT_EQ(s.offset % 64, 0u) << "kind " << s.kind;
    } else {
      EXPECT_EQ(s.offset % 8, 0u) << "kind " << s.kind;
    }
  }

  // The leaf tables are layout-invariant (leaves are renumbered only
  // through the node payloads, never the tables).
  auto blob_a = ModelBlob::FromBytes(a, &error);
  ASSERT_NE(blob_a, nullptr) << error;
  for (const SectionKind kind :
       {SectionKind::kLeafClass, SectionKind::kLeafProbs,
        SectionKind::kCatSplits, SectionKind::kLinSplits,
        SectionKind::kWideSplits}) {
    const BlobSection* sa = blob_a->Find(0, kind);
    const BlobSection* sb = blob->Find(0, kind);
    ASSERT_NE(sa, nullptr);
    ASSERT_NE(sb, nullptr);
    ASSERT_EQ(sa->bytes, sb->bytes);
    EXPECT_EQ(std::memcmp(blob_a->SectionData<uint8_t>(*sa),
                          blob->SectionData<uint8_t>(*sb), sa->bytes),
              0);
  }
}

}  // namespace
}  // namespace cmp
