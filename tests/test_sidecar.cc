#include "io/sketch_sidecar.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/schema.h"
#include "datagen/agrawal.h"
#include "stream/grower.h"

namespace cmp {
namespace {

SketchSidecar MakeSidecar() {
  const Schema schema = AgrawalSchema();
  SketchSidecar sidecar;
  sidecar.SetSchema(schema);
  sidecar.sketch_capacity = 64;
  sidecar.intervals = 25;
  sidecar.records_seen = 12345;

  Rng rng(9);
  for (NodeId node : {2, 5, 9}) {
    LeafSketchState state;
    InitLeafState(schema, sidecar.sketch_capacity, &state);
    state.node = node;
    for (size_t c = 0; c < state.class_counts.size(); ++c) {
      state.class_counts[c] = 100 * (node + 1) + static_cast<int64_t>(c);
    }
    for (auto& sketch : state.sketches) {
      const int n = static_cast<int>(rng.UniformInt(0, 500));
      for (int i = 0; i < n; ++i) sketch.Add(rng.Uniform(-1e6, 1e6));
    }
    for (auto& table : state.cat_counts) {
      for (auto& cell : table) cell = rng.UniformInt(0, 50);
    }
    sidecar.leaves.push_back(std::move(state));
  }
  return sidecar;
}

TEST(SketchSidecar, RoundTrip) {
  const SketchSidecar sidecar = MakeSidecar();
  const std::vector<uint8_t> bytes = SerializeSketchSidecar(sidecar);

  SketchSidecar back;
  std::string error;
  ASSERT_TRUE(ParseSketchSidecar(bytes, &back, &error)) << error;

  EXPECT_EQ(back.sketch_capacity, sidecar.sketch_capacity);
  EXPECT_EQ(back.intervals, sidecar.intervals);
  EXPECT_EQ(back.records_seen, sidecar.records_seen);
  EXPECT_EQ(back.num_classes, sidecar.num_classes);
  EXPECT_EQ(back.attr_is_numeric, sidecar.attr_is_numeric);
  EXPECT_EQ(back.attr_cardinality, sidecar.attr_cardinality);
  ASSERT_EQ(back.leaves.size(), sidecar.leaves.size());
  for (size_t i = 0; i < back.leaves.size(); ++i) {
    const LeafSketchState& a = back.leaves[i];
    const LeafSketchState& b = sidecar.leaves[i];
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.class_counts, b.class_counts);
    EXPECT_EQ(a.cat_counts, b.cat_counts);
    ASSERT_EQ(a.sketches.size(), b.sketches.size());
    for (size_t s = 0; s < a.sketches.size(); ++s) {
      EXPECT_EQ(a.sketches[s].count(), b.sketches[s].count());
      EXPECT_EQ(a.sketches[s].rank_error_bound(),
                b.sketches[s].rank_error_bound());
      // Trailing empty levels are trimmed canonically, so compare only
      // up to the shorter ladder and require the rest empty.
      const auto& la = a.sketches[s].levels();
      const auto& lb = b.sketches[s].levels();
      const size_t common = std::min(la.size(), lb.size());
      for (size_t h = 0; h < common; ++h) EXPECT_EQ(la[h], lb[h]);
      for (size_t h = common; h < la.size(); ++h) EXPECT_TRUE(la[h].empty());
      for (size_t h = common; h < lb.size(); ++h) EXPECT_TRUE(lb[h].empty());
    }
  }
  EXPECT_TRUE(back.MatchesSchema(AgrawalSchema()));
}

TEST(SketchSidecar, SerializationIsDeterministic) {
  const SketchSidecar sidecar = MakeSidecar();
  EXPECT_EQ(SerializeSketchSidecar(sidecar), SerializeSketchSidecar(sidecar));
}

TEST(SketchSidecar, SaveLoadFile) {
  const SketchSidecar sidecar = MakeSidecar();
  const std::string path = testing::TempDir() + "/roundtrip.cmps";
  std::string error;
  ASSERT_TRUE(SaveSketchSidecar(sidecar, path, &error)) << error;
  SketchSidecar back;
  ASSERT_TRUE(LoadSketchSidecar(path, &back, &error)) << error;
  EXPECT_EQ(back.records_seen, sidecar.records_seen);
  EXPECT_EQ(back.leaves.size(), sidecar.leaves.size());
}

TEST(SketchSidecar, RejectsBadMagicVersionTruncation) {
  const std::vector<uint8_t> bytes =
      SerializeSketchSidecar(MakeSidecar());
  SketchSidecar out;
  std::string error;

  std::vector<uint8_t> bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(ParseSketchSidecar(bad, &out, &error));
  EXPECT_FALSE(error.empty());

  bad = bytes;
  bad[4] ^= 0xFF;  // version word
  EXPECT_FALSE(ParseSketchSidecar(bad, &out, &error));

  bad = bytes;
  bad[8] ^= 0xFF;  // endianness probe
  EXPECT_FALSE(ParseSketchSidecar(bad, &out, &error));

  // Every truncation point must fail clean (the reader bounds-checks
  // all counts before allocating).
  for (size_t cut = 0; cut < bytes.size(); cut += 13) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(ParseSketchSidecar(prefix, &out, &error)) << "cut=" << cut;
  }
  // Trailing garbage is not silently ignored.
  bad = bytes;
  bad.push_back(0);
  EXPECT_FALSE(ParseSketchSidecar(bad, &out, &error));
}

TEST(SketchSidecar, RejectsCorruptedPayloadBytes) {
  // Flip single bytes across the payload: parsing must either fail or
  // produce a structurally valid sidecar — never crash or over-allocate.
  const std::vector<uint8_t> bytes = SerializeSketchSidecar(MakeSidecar());
  for (size_t i = 12; i < bytes.size(); i += 7) {
    std::vector<uint8_t> bad = bytes;
    bad[i] ^= 0x55;
    SketchSidecar out;
    std::string error;
    if (ParseSketchSidecar(bad, &out, &error)) {
      for (const LeafSketchState& leaf : out.leaves) {
        EXPECT_EQ(leaf.class_counts.size(),
                  static_cast<size_t>(out.num_classes));
      }
    }
  }
}

TEST(SketchSidecar, SchemaMismatchDetected) {
  SketchSidecar sidecar = MakeSidecar();
  EXPECT_TRUE(sidecar.MatchesSchema(AgrawalSchema()));

  std::vector<AttrInfo> attrs = {{"x", AttrKind::kNumeric, 0}};
  const Schema other(std::move(attrs), {"A", "B"});
  EXPECT_FALSE(sidecar.MatchesSchema(other));

  // Same attributes, different class count.
  sidecar.num_classes = 3;
  EXPECT_FALSE(sidecar.MatchesSchema(AgrawalSchema()));
}

TEST(SketchSidecar, LoadMissingFileFails) {
  SketchSidecar out;
  std::string error;
  EXPECT_FALSE(
      LoadSketchSidecar("/nonexistent/dir/side.cmps", &out, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace cmp
