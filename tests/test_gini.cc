#include "gini/gini.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmp {
namespace {

TEST(Gini, EmptySetIsZero) {
  const std::vector<int64_t> counts;
  EXPECT_DOUBLE_EQ(Gini(counts), 0.0);
}

TEST(Gini, PureSetIsZero) {
  const std::vector<int64_t> counts = {10, 0, 0};
  EXPECT_DOUBLE_EQ(Gini(counts), 0.0);
}

TEST(Gini, TwoClassBalanced) {
  const std::vector<int64_t> counts = {5, 5};
  EXPECT_DOUBLE_EQ(Gini(counts), 0.5);
}

TEST(Gini, ThreeClassUniformIsTwoThirds) {
  const std::vector<int64_t> counts = {4, 4, 4};
  EXPECT_NEAR(Gini(counts), 2.0 / 3.0, 1e-12);
}

TEST(Gini, MatchesHandComputation) {
  // p = (0.7, 0.3): gini = 1 - 0.49 - 0.09 = 0.42.
  const std::vector<int64_t> counts = {7, 3};
  EXPECT_NEAR(Gini(counts), 0.42, 1e-12);
}

TEST(SplitGini, WeightedAverageOfSides) {
  const std::vector<int64_t> left = {4, 0};   // pure, gini 0
  const std::vector<int64_t> right = {3, 3};  // gini 0.5
  // 4/10 * 0 + 6/10 * 0.5 = 0.3.
  EXPECT_NEAR(SplitGini(left, right), 0.3, 1e-12);
}

TEST(SplitGini, PerfectSplitIsZero) {
  const std::vector<int64_t> left = {5, 0};
  const std::vector<int64_t> right = {0, 7};
  EXPECT_DOUBLE_EQ(SplitGini(left, right), 0.0);
}

TEST(SplitGini, EmptySideEqualsPlainGini) {
  const std::vector<int64_t> left = {0, 0};
  const std::vector<int64_t> right = {6, 2};
  EXPECT_NEAR(SplitGini(left, right), Gini(right), 1e-12);
}

TEST(SplitGini3, ReducesToTwoWayWhenThirdEmpty) {
  const std::vector<int64_t> a = {4, 1};
  const std::vector<int64_t> b = {2, 5};
  const std::vector<int64_t> empty = {0, 0};
  EXPECT_NEAR(SplitGini3(a, b, empty), SplitGini(a, b), 1e-12);
}

TEST(SplitGini3, ThreeWayWeighted) {
  const std::vector<int64_t> a = {2, 0};
  const std::vector<int64_t> b = {0, 2};
  const std::vector<int64_t> c = {1, 1};
  // 2/6*0 + 2/6*0 + 2/6*0.5.
  EXPECT_NEAR(SplitGini3(a, b, c), 1.0 / 6.0, 1e-12);
}

TEST(BoundaryGini, EqualsSplitGiniOfComplement) {
  const std::vector<int64_t> below = {3, 1};
  const std::vector<int64_t> totals = {5, 6};
  const std::vector<int64_t> above = {2, 5};
  EXPECT_NEAR(BoundaryGini(below, totals), SplitGini(below, above), 1e-12);
}

TEST(BoundaryGini, LoanExampleFromPaper) {
  // Figure 1: split (age < 25) separates 2 No-records from the rest
  // {1 No, 3 Yes}: gini^D = 2/6*0 + 4/6*(1 - (1/4)^2 - (3/4)^2) = 0.25.
  const std::vector<int64_t> below = {2, 0};  // {No, Yes} below age 25
  const std::vector<int64_t> totals = {3, 3};
  EXPECT_NEAR(BoundaryGini(below, totals), 0.25, 1e-12);
}

}  // namespace
}  // namespace cmp
