#include "gini/gini.h"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace cmp {
namespace {

TEST(Gini, EmptySetIsZero) {
  const std::vector<int64_t> counts;
  EXPECT_DOUBLE_EQ(Gini(counts), 0.0);
}

TEST(Gini, PureSetIsZero) {
  const std::vector<int64_t> counts = {10, 0, 0};
  EXPECT_DOUBLE_EQ(Gini(counts), 0.0);
}

TEST(Gini, TwoClassBalanced) {
  const std::vector<int64_t> counts = {5, 5};
  EXPECT_DOUBLE_EQ(Gini(counts), 0.5);
}

TEST(Gini, ThreeClassUniformIsTwoThirds) {
  const std::vector<int64_t> counts = {4, 4, 4};
  EXPECT_NEAR(Gini(counts), 2.0 / 3.0, 1e-12);
}

TEST(Gini, MatchesHandComputation) {
  // p = (0.7, 0.3): gini = 1 - 0.49 - 0.09 = 0.42.
  const std::vector<int64_t> counts = {7, 3};
  EXPECT_NEAR(Gini(counts), 0.42, 1e-12);
}

TEST(SplitGini, WeightedAverageOfSides) {
  const std::vector<int64_t> left = {4, 0};   // pure, gini 0
  const std::vector<int64_t> right = {3, 3};  // gini 0.5
  // 4/10 * 0 + 6/10 * 0.5 = 0.3.
  EXPECT_NEAR(SplitGini(left, right), 0.3, 1e-12);
}

TEST(SplitGini, PerfectSplitIsZero) {
  const std::vector<int64_t> left = {5, 0};
  const std::vector<int64_t> right = {0, 7};
  EXPECT_DOUBLE_EQ(SplitGini(left, right), 0.0);
}

TEST(SplitGini, EmptySideEqualsPlainGini) {
  const std::vector<int64_t> left = {0, 0};
  const std::vector<int64_t> right = {6, 2};
  EXPECT_NEAR(SplitGini(left, right), Gini(right), 1e-12);
}

TEST(SplitGini3, ReducesToTwoWayWhenThirdEmpty) {
  const std::vector<int64_t> a = {4, 1};
  const std::vector<int64_t> b = {2, 5};
  const std::vector<int64_t> empty = {0, 0};
  EXPECT_NEAR(SplitGini3(a, b, empty), SplitGini(a, b), 1e-12);
}

TEST(SplitGini3, ThreeWayWeighted) {
  const std::vector<int64_t> a = {2, 0};
  const std::vector<int64_t> b = {0, 2};
  const std::vector<int64_t> c = {1, 1};
  // 2/6*0 + 2/6*0 + 2/6*0.5.
  EXPECT_NEAR(SplitGini3(a, b, c), 1.0 / 6.0, 1e-12);
}

TEST(BoundaryGini, EqualsSplitGiniOfComplement) {
  const std::vector<int64_t> below = {3, 1};
  const std::vector<int64_t> totals = {5, 6};
  const std::vector<int64_t> above = {2, 5};
  EXPECT_NEAR(BoundaryGini(below, totals), SplitGini(below, above), 1e-12);
}

TEST(BoundaryGini, LoanExampleFromPaper) {
  // Figure 1: split (age < 25) separates 2 No-records from the rest
  // {1 No, 3 Yes}: gini^D = 2/6*0 + 4/6*(1 - (1/4)^2 - (3/4)^2) = 0.25.
  const std::vector<int64_t> below = {2, 0};  // {No, Yes} below age 25
  const std::vector<int64_t> totals = {3, 3};
  EXPECT_NEAR(BoundaryGini(below, totals), 0.25, 1e-12);
}

// ---------------------------------------------------------------------
// ScanBoundaryGinis: the vectorized boundary scan must be BIT-identical
// to calling BoundaryGini per row — same doubles, not merely close —
// because the split argmin (and through it the golden trees) rides on
// exact comparisons of these values. Each compiled tier is driven
// directly, so the suite exercises sse2/avx2 even when the dispatcher
// would pick a higher tier.

// All tiers this binary carries, name + function. The public dispatcher
// is checked separately (it routes to one of these).
std::vector<std::pair<std::string, BoundaryGiniScanFn>> ScanTiers() {
  std::vector<std::pair<std::string, BoundaryGiniScanFn>> tiers;
  if (BoundaryGiniScanFn fn = Sse2BoundaryGiniScanOrNull()) {
    tiers.emplace_back("sse2", fn);
  }
  if (BoundaryGiniScanFn fn = Avx2BoundaryGiniScanOrNull()) {
    tiers.emplace_back("avx2", fn);
  }
  return tiers;
}

// The scalar reference: BoundaryGini on every prefix row.
std::vector<double> NaiveScan(const std::vector<int64_t>& prefix, int nb,
                              int nc, const std::vector<int64_t>& totals) {
  std::vector<double> out(nb);
  for (int b = 0; b < nb; ++b) {
    out[b] = BoundaryGini(
        std::span<const int64_t>(prefix.data() + static_cast<size_t>(b) * nc,
                                 nc),
        totals);
  }
  return out;
}

// EXPECT_EQ on doubles is exact (operator==): any reordered or
// contracted FP op in a vector tier shows up as a failure here.
void ExpectBitEqual(const std::vector<double>& got,
                    const std::vector<double>& want,
                    const std::string& tier) {
  ASSERT_EQ(got.size(), want.size()) << tier;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << tier << " boundary " << i;
  }
}

TEST(ScanBoundaryGinis, MatchesNaiveOnRandomPrefixes) {
  uint64_t state = 0x2545F4914F6CDD1DULL;
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  // Boundary counts straddling the vector widths (1..9) and class
  // counts hitting the lane-internal class loop (2..6).
  for (const int nb : {1, 2, 3, 4, 5, 7, 8, 9, 33}) {
    for (const int nc : {2, 3, 6}) {
      std::vector<int64_t> prefix(static_cast<size_t>(nb) * nc);
      std::vector<int64_t> totals(nc, 0);
      // Build monotone prefix rows the way the estimator does: row b =
      // row b-1 plus a nonnegative per-class increment.
      std::vector<int64_t> acc(nc, 0);
      for (int b = 0; b < nb; ++b) {
        for (int c = 0; c < nc; ++c) {
          acc[c] += static_cast<int64_t>(next() % 5);
          prefix[static_cast<size_t>(b) * nc + c] = acc[c];
        }
      }
      for (int c = 0; c < nc; ++c) {
        totals[c] = acc[c] + static_cast<int64_t>(next() % 7);
      }
      const std::vector<double> want = NaiveScan(prefix, nb, nc, totals);
      std::vector<double> got(nb);
      ScanBoundaryGinis(prefix.data(), nb, nc, totals.data(), got.data());
      ExpectBitEqual(got, want, "dispatched");
      for (const auto& [name, fn] : ScanTiers()) {
        std::vector<double> tier_got(nb, -1.0);
        fn(prefix.data(), nb, nc, totals.data(), tier_got.data());
        ExpectBitEqual(tier_got, want, name);
      }
    }
  }
}

TEST(ScanBoundaryGinis, AllOneClassNodeIsZeroEverywhere) {
  // A pure node: every boundary's weighted gini is exactly 0.0 (both
  // sides are pure or empty), and the empty-side 0/0 must come out as
  // the scalar's 0.0, not NaN.
  const int nb = 9, nc = 3;
  std::vector<int64_t> prefix(static_cast<size_t>(nb) * nc, 0);
  for (int b = 0; b < nb; ++b) {
    prefix[static_cast<size_t>(b) * nc + 1] = b;  // class 1 only
  }
  const std::vector<int64_t> totals = {0, 12, 0};
  const std::vector<double> want = NaiveScan(prefix, nb, nc, totals);
  std::vector<double> got(nb, -1.0);
  ScanBoundaryGinis(prefix.data(), nb, nc, totals.data(), got.data());
  for (int b = 0; b < nb; ++b) {
    EXPECT_EQ(got[b], 0.0) << "boundary " << b;
  }
  ExpectBitEqual(got, want, "dispatched");
  for (const auto& [name, fn] : ScanTiers()) {
    std::vector<double> tier_got(nb, -1.0);
    fn(prefix.data(), nb, nc, totals.data(), tier_got.data());
    ExpectBitEqual(tier_got, want, name);
  }
}

TEST(ScanBoundaryGinis, EmptyIntervalsRepeatPrefixRows) {
  // Duplicate cut points / empty intervals show up as REPEATED prefix
  // rows, including the all-records row (empty right side → 0/0 in the
  // right lane) and the zero row (empty left side).
  const int nc = 2;
  const std::vector<int64_t> totals = {6, 4};
  const std::vector<int64_t> prefix = {
      0, 0,  // empty left side
      0, 0,  // repeated: still empty
      3, 1,  //
      3, 1,  // repeated interior row
      6, 4,  // all records: empty right side
      6, 4,  // repeated
      6, 4,  // and once more (vector width + tail both see it)
  };
  const int nb = 7;
  const std::vector<double> want = NaiveScan(prefix, nb, nc, totals);
  std::vector<double> got(nb, -1.0);
  ScanBoundaryGinis(prefix.data(), nb, nc, totals.data(), got.data());
  ExpectBitEqual(got, want, "dispatched");
  for (int b = 0; b < nb; ++b) {
    EXPECT_FALSE(std::isnan(got[b])) << "boundary " << b;
  }
  for (const auto& [name, fn] : ScanTiers()) {
    std::vector<double> tier_got(nb, -1.0);
    fn(prefix.data(), nb, nc, totals.data(), tier_got.data());
    ExpectBitEqual(tier_got, want, name);
  }
}

TEST(ScanBoundaryGinis, EmptyNodeAndNoBoundaries) {
  // num_boundaries == 0 must be a no-op; an all-zero totals vector (an
  // empty node) must yield the scalar's exact 0.0, never NaN.
  const std::vector<int64_t> totals_zero = {0, 0};
  ScanBoundaryGinis(nullptr, 0, 2, totals_zero.data(), nullptr);

  const int nb = 5;
  std::vector<int64_t> prefix(nb * 2, 0);
  const std::vector<double> want = NaiveScan(prefix, nb, 2, totals_zero);
  std::vector<double> got(nb, -1.0);
  ScanBoundaryGinis(prefix.data(), nb, 2, totals_zero.data(), got.data());
  ExpectBitEqual(got, want, "dispatched");
  for (int b = 0; b < nb; ++b) {
    EXPECT_EQ(got[b], 0.0) << "boundary " << b;
  }
  for (const auto& [name, fn] : ScanTiers()) {
    std::vector<double> tier_got(nb, -1.0);
    fn(prefix.data(), nb, 2, totals_zero.data(), tier_got.data());
    ExpectBitEqual(tier_got, want, name);
  }
}

TEST(ScanBoundaryGinis, LargeCountsStayExact) {
  // Counts near the top of the exactly-representable integer range the
  // build can produce (int64 record counts well below 2^53): the int ->
  // double conversions in every tier are exact, so equality must hold
  // bit-for-bit, not within an epsilon.
  const int64_t big = (int64_t{1} << 50) + 12345;
  const std::vector<int64_t> totals = {big, big / 3};
  const std::vector<int64_t> prefix = {
      1,       0,       //
      big / 2, big / 7,  //
      big - 1, big / 3,  //
  };
  const int nb = 3;
  const std::vector<double> want = NaiveScan(prefix, nb, 2, totals);
  std::vector<double> got(nb);
  ScanBoundaryGinis(prefix.data(), nb, 2, totals.data(), got.data());
  ExpectBitEqual(got, want, "dispatched");
  for (const auto& [name, fn] : ScanTiers()) {
    std::vector<double> tier_got(nb);
    fn(prefix.data(), nb, 2, totals.data(), tier_got.data());
    ExpectBitEqual(tier_got, want, name);
  }
}

}  // namespace
}  // namespace cmp
