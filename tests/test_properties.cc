// Cross-builder cost-accounting and structural properties, parameterized
// over every builder: the counters the figure harnesses rely on must
// obey basic conservation laws, and the produced trees must respect the
// shared BuilderOptions contract.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "clouds/clouds.h"
#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "rainforest/rainforest.h"
#include "sliq/sliq.h"
#include "sprint/sprint.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

enum class Algo { kCmpS, kCmpB, kCmpFull, kSprint, kSliq, kClouds, kRf };

std::unique_ptr<TreeBuilder> Make(Algo algo, const BuilderOptions& base) {
  switch (algo) {
    case Algo::kCmpS: {
      CmpOptions o = CmpSOptions();
      o.base = base;
      return std::make_unique<CmpBuilder>(o);
    }
    case Algo::kCmpB: {
      CmpOptions o = CmpBOptions();
      o.base = base;
      return std::make_unique<CmpBuilder>(o);
    }
    case Algo::kCmpFull: {
      CmpOptions o = CmpFullOptions();
      o.base = base;
      return std::make_unique<CmpBuilder>(o);
    }
    case Algo::kSprint: {
      SprintOptions o;
      o.base = base;
      return std::make_unique<SprintBuilder>(o);
    }
    case Algo::kSliq: {
      SliqOptions o;
      o.base = base;
      return std::make_unique<SliqBuilder>(o);
    }
    case Algo::kClouds: {
      CloudsOptions o;
      o.base = base;
      return std::make_unique<CloudsBuilder>(o);
    }
    case Algo::kRf: {
      RainForestOptions o;
      o.base = base;
      return std::make_unique<RainForestBuilder>(o);
    }
  }
  return nullptr;
}

const char* Name(Algo algo) {
  switch (algo) {
    case Algo::kCmpS: return "CmpS";
    case Algo::kCmpB: return "CmpB";
    case Algo::kCmpFull: return "Cmp";
    case Algo::kSprint: return "Sprint";
    case Algo::kSliq: return "Sliq";
    case Algo::kClouds: return "Clouds";
    case Algo::kRf: return "RainForest";
  }
  return "?";
}

class BuilderPropertyTest : public ::testing::TestWithParam<Algo> {
 protected:
  static Dataset MakeData(int64_t n) {
    AgrawalOptions gen;
    gen.function = AgrawalFunction::kF2;
    gen.num_records = n;
    gen.seed = 701;
    return GenerateAgrawal(gen);
  }
};

TEST_P(BuilderPropertyTest, StatsConservationLaws) {
  const Dataset train = MakeData(15000);
  auto builder = Make(GetParam(), BuilderOptions{});
  const BuildResult result = builder->Build(train);
  const BuildStats& s = result.stats;

  EXPECT_GT(s.dataset_scans, 0) << Name(GetParam());
  EXPECT_GT(s.records_read, 0);
  EXPECT_GT(s.bytes_read, 0);
  EXPECT_GE(s.peak_memory_bytes, 0);
  EXPECT_EQ(s.tree_nodes, result.tree.num_nodes());
  EXPECT_EQ(s.tree_depth, result.tree.Depth());
  EXPECT_GE(s.wall_seconds, 0.0);
  // Simulated time is finite, positive, and monotone in the model's
  // bandwidth.
  DiskModel fast;
  DiskModel slow;
  slow.scan_bandwidth = fast.scan_bandwidth / 4;
  EXPECT_GT(s.SimulatedSeconds(fast), 0.0);
  EXPECT_GT(s.SimulatedSeconds(slow), s.SimulatedSeconds(fast));
}

TEST_P(BuilderPropertyTest, LeafCountsPartitionTrainingSet) {
  // Route every training record to its leaf; the leaf population sizes
  // derived from the tree must sum to the dataset size.
  const Dataset train = MakeData(8000);
  BuilderOptions base;
  base.prune = false;  // pruning rewrites counts by merging, still exact
  auto builder = Make(GetParam(), base);
  const BuildResult result = builder->Build(train);
  std::vector<int64_t> arrived(result.tree.num_nodes(), 0);
  for (RecordId r = 0; r < train.num_records(); ++r) {
    arrived[result.tree.LeafOf(train, r)]++;
  }
  int64_t total = 0;
  for (NodeId id = 0; id < result.tree.num_nodes(); ++id) {
    if (result.tree.node(id).is_leaf) total += arrived[id];
  }
  EXPECT_EQ(total, train.num_records()) << Name(GetParam());
}

TEST_P(BuilderPropertyTest, MaxDepthHonored) {
  const Dataset train = MakeData(10000);
  BuilderOptions base;
  base.max_depth = 4;
  auto builder = Make(GetParam(), base);
  const BuildResult result = builder->Build(train);
  EXPECT_LE(result.tree.Depth(), 4) << Name(GetParam());
}

TEST_P(BuilderPropertyTest, DeterministicAcrossRuns) {
  const Dataset train = MakeData(6000);
  auto b1 = Make(GetParam(), BuilderOptions{});
  auto b2 = Make(GetParam(), BuilderOptions{});
  const BuildResult r1 = b1->Build(train);
  const BuildResult r2 = b2->Build(train);
  EXPECT_EQ(r1.tree.num_nodes(), r2.tree.num_nodes()) << Name(GetParam());
  for (RecordId r = 0; r < train.num_records(); r += 97) {
    EXPECT_EQ(r1.tree.Classify(train, r), r2.tree.Classify(train, r));
  }
}

TEST_P(BuilderPropertyTest, InternalNodeCountsEqualChildSums) {
  const Dataset train = MakeData(8000);
  auto builder = Make(GetParam(), BuilderOptions{});
  const BuildResult result = builder->Build(train);
  for (NodeId id = 0; id < result.tree.num_nodes(); ++id) {
    const TreeNode& n = result.tree.node(id);
    if (n.is_leaf) continue;
    const TreeNode& l = result.tree.node(n.left);
    const TreeNode& r = result.tree.node(n.right);
    ASSERT_EQ(n.class_counts.size(), l.class_counts.size());
    for (size_t c = 0; c < n.class_counts.size(); ++c) {
      EXPECT_EQ(n.class_counts[c], l.class_counts[c] + r.class_counts[c])
          << Name(GetParam()) << " node " << id << " class " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBuilders, BuilderPropertyTest,
                         ::testing::Values(Algo::kCmpS, Algo::kCmpB,
                                           Algo::kCmpFull, Algo::kSprint,
                                           Algo::kSliq, Algo::kClouds,
                                           Algo::kRf),
                         [](const ::testing::TestParamInfo<Algo>& info) {
                           return Name(info.param);
                         });

}  // namespace
}  // namespace cmp
