// End-to-end serving test against the real binaries: cmptool compiles
// .cmpb blobs, cmpserve serves them over TCP, concurrent clients hammer
// predictions while an admin connection hot-swaps the model, and every
// served label is compared byte-for-byte with `cmptool predict` on the
// same rows — before and after the swap. Paths to both binaries are
// injected by CMake.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/schema.h"
#include "serve/client.h"
#include "tree/serialize.h"
#include "tree/tree.h"

namespace cmp {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Schema MakeSchema() {
  return Schema({{"x", AttrKind::kNumeric, 0}, {"y", AttrKind::kNumeric, 0}},
                {"neg", "pos"});
}

// Two-level tree: x <= x_thr then y <= y_thr pick among 4 leaves, so
// the two models (different thresholds, different leaf layout) disagree
// on many rows.
DecisionTree MakeTree(double x_thr, double y_thr, bool flip) {
  DecisionTree tree(MakeSchema());
  TreeNode root;
  root.is_leaf = false;
  root.split = Split::Numeric(0, x_thr);
  tree.AddNode(root);
  TreeNode inner;
  inner.is_leaf = false;
  inner.split = Split::Numeric(1, y_thr);
  inner.depth = 1;
  tree.AddNode(inner);
  for (int i = 0; i < 3; ++i) {
    TreeNode leaf;
    leaf.is_leaf = true;
    leaf.leaf_class = flip ? (i + 1) % 2 : i % 2;
    leaf.class_counts = {leaf.leaf_class == 0 ? int64_t{8} : int64_t{1},
                         leaf.leaf_class == 0 ? int64_t{1} : int64_t{8}};
    leaf.depth = 2;
    tree.AddNode(leaf);  // 2..4
  }
  tree.mutable_node(0).left = 1;
  tree.mutable_node(0).right = 4;
  tree.mutable_node(1).left = 2;
  tree.mutable_node(1).right = 3;
  return tree;
}

int RunCmd(const std::string& cmd) {
  const int raw = std::system(cmd.c_str());
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

// The shared row set: a grid straddling both models' thresholds.
std::vector<std::string> MakeRows() {
  std::vector<std::string> rows;
  for (double x : {-3.0, -1.0, 0.0, 0.5, 1.0, 2.5}) {
    for (double y : {-2.0, 0.0, 0.25, 1.0, 3.0}) {
      std::ostringstream os;
      os << x << ',' << y;
      rows.push_back(os.str());
    }
  }
  return rows;
}

// Extracts the `predicted` column of cmptool predict's CSV output.
std::vector<std::string> PredictedColumn(const std::string& csv_path) {
  std::ifstream is(csv_path);
  std::vector<std::string> out;
  std::string line;
  bool header = true;
  while (std::getline(is, line)) {
    if (header) {
      header = false;
      continue;
    }
    // record,actual,predicted,correct
    const size_t c1 = line.find(',');
    const size_t c2 = line.find(',', c1 + 1);
    const size_t c3 = line.find(',', c2 + 1);
    out.push_back(line.substr(c2 + 1, c3 - c2 - 1));
  }
  return out;
}

class ServeE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Text trees -> cmptool compile -> .cmpb blobs.
    const DecisionTree a = MakeTree(0.0, 0.25, false);
    const DecisionTree b = MakeTree(0.5, -1.0, true);
    tree_a_ = TempPath("e2e_a.tree");
    tree_b_ = TempPath("e2e_b.tree");
    blob_a_ = TempPath("e2e_a.cmpb");
    blob_b_ = TempPath("e2e_b.cmpb");
    csv_ = TempPath("e2e_rows.csv");
    pred_a_ = TempPath("e2e_pred_a.csv");
    pred_b_ = TempPath("e2e_pred_b.csv");
    port_file_ = TempPath("e2e_port.txt");
    serve_log_ = TempPath("e2e_serve.log");
    ASSERT_TRUE(SaveTree(a, tree_a_));
    ASSERT_TRUE(SaveTree(b, tree_b_));
    ASSERT_EQ(
        RunCmd(std::string(CMPTOOL_PATH) + " compile --tree " + tree_a_ +
               " --out " + blob_a_ + " 2>/dev/null"),
        0);
    ASSERT_EQ(
        RunCmd(std::string(CMPTOOL_PATH) + " compile --tree " + tree_b_ +
               " --out " + blob_b_ + " 2>/dev/null"),
        0);

    // The same rows as a labeled CSV for cmptool predict (the label
    // column is a placeholder; only the predicted column is compared).
    rows_ = MakeRows();
    std::ofstream csv(csv_);
    csv << "x,y,label\n";
    for (const std::string& row : rows_) csv << row << ",neg\n";
    csv.close();

    ASSERT_EQ(RunCmd(std::string(CMPTOOL_PATH) + " predict --data " + csv_ +
                     " --tree " + blob_a_ + " --out " + pred_a_ +
                     " >/dev/null 2>&1"),
              0);
    ASSERT_EQ(RunCmd(std::string(CMPTOOL_PATH) + " predict --data " + csv_ +
                     " --tree " + blob_b_ + " --out " + pred_b_ +
                     " >/dev/null 2>&1"),
              0);
    expect_a_ = PredictedColumn(pred_a_);
    expect_b_ = PredictedColumn(pred_b_);
    ASSERT_EQ(expect_a_.size(), rows_.size());
    ASSERT_EQ(expect_b_.size(), rows_.size());
    // The two models must actually disagree somewhere, or the swap
    // assertions below are vacuous.
    ASSERT_NE(expect_a_, expect_b_);
  }

  void TearDown() override {
    for (const std::string& p :
         {tree_a_, tree_b_, blob_a_, blob_b_, csv_, pred_a_, pred_b_,
          port_file_, serve_log_}) {
      std::remove(p.c_str());
    }
  }

  // Starts cmpserve through popen (so pclose reports its exit code) and
  // waits for the port-file handshake.
  FILE* StartDaemon(const std::string& extra_flags, int* port) {
    std::remove(port_file_.c_str());
    const std::string cmd = std::string(CMPSERVE_PATH) + " --model m=" +
                            blob_a_ + " --port 0 --port-file " + port_file_ +
                            " " + extra_flags + " 2>" + serve_log_;
    FILE* daemon = ::popen(cmd.c_str(), "r");
    if (daemon == nullptr) return nullptr;
    for (int i = 0; i < 200; ++i) {
      std::ifstream pf(port_file_);
      if (pf >> *port && *port > 0) return daemon;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ::pclose(daemon);
    return nullptr;
  }

  std::vector<std::string> rows_;
  std::vector<std::string> expect_a_;
  std::vector<std::string> expect_b_;
  std::string tree_a_, tree_b_, blob_a_, blob_b_;
  std::string csv_, pred_a_, pred_b_, port_file_, serve_log_;
};

TEST_F(ServeE2eTest, ServedLabelsMatchCmptoolPredictAcrossHotSwap) {
  int port = 0;
  FILE* daemon = StartDaemon("--batch-rows 16 --batch-delay-us 300", &port);
  ASSERT_NE(daemon, nullptr);

  auto served_labels = [&](ServeClient* client) {
    std::vector<std::string> labels;
    std::vector<std::string> replies;
    EXPECT_TRUE(client->Batch("m", rows_, &replies));
    for (const std::string& r : replies) {
      labels.push_back(r.rfind("ok ", 0) == 0 ? r.substr(3) : r);
    }
    return labels;
  };

  std::string error;
  std::string reply;
  {
    ServeClient client;
    ASSERT_TRUE(client.ConnectTcp("127.0.0.1", port, &error)) << error;

    // Phase 1: served labels == cmptool predict on model A, byte for
    // byte, via both batch and single-row predict.
    EXPECT_EQ(served_labels(&client), expect_a_);
    for (size_t i = 0; i < rows_.size(); i += 7) {
      ASSERT_TRUE(client.Rpc("predict m " + rows_[i], &reply));
      EXPECT_EQ(reply, "ok " + expect_a_[i]) << rows_[i];
    }

    // Phase 2: concurrent clients hammer while the model is swapped.
    // Every reply must be a valid label from either model — no torn or
    // garbled output — and traffic must keep flowing throughout.
    std::atomic<bool> stop{false};
    std::atomic<int64_t> total{0};
    std::vector<std::thread> hammer;
    for (int t = 0; t < 4; ++t) {
      hammer.emplace_back([&] {
        ServeClient c;
        std::string err;
        if (!c.ConnectTcp("127.0.0.1", port, &err)) return;
        std::string r;
        size_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const size_t at = i++ % rows_.size();
          if (!c.Rpc("predict m " + rows_[at], &r)) break;
          EXPECT_TRUE(r == "ok " + expect_a_[at] || r == "ok " + expect_b_[at])
              << "row " << rows_[at] << " -> " << r;
          total.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_TRUE(client.Rpc("swap m " + blob_b_, &reply));
    EXPECT_EQ(reply, "ok m v2");
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
    for (std::thread& t : hammer) t.join();
    EXPECT_GT(total.load(), 0);

    // Phase 3: after the swap ack, every served label matches cmptool
    // predict on model B.
    EXPECT_EQ(served_labels(&client), expect_b_);

    ASSERT_TRUE(client.Rpc("stats", &reply));
    EXPECT_NE(reply.find("\"swaps\":1"), std::string::npos) << reply;

    ASSERT_TRUE(client.Rpc("quit", &reply));
    EXPECT_EQ(reply, "ok bye");
  }

  const int status = ::pclose(daemon);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "daemon exit status " << status;
}

TEST_F(ServeE2eTest, DaemonRefusesMissingModelWithIoExit) {
  const std::string cmd = std::string(CMPSERVE_PATH) +
                          " --model m=/nonexistent/model.cmpb 2>/dev/null";
  EXPECT_EQ(RunCmd(cmd), 3);
}

TEST_F(ServeE2eTest, DaemonRejectsBadFlagsWithUsageExit) {
  EXPECT_EQ(RunCmd(std::string(CMPSERVE_PATH) + " 2>/dev/null"), 2);
  EXPECT_EQ(RunCmd(std::string(CMPSERVE_PATH) + " --model broken 2>/dev/null"),
            2);
  EXPECT_EQ(RunCmd(std::string(CMPSERVE_PATH) + " --model m=" + blob_a_ +
                   " --frobnicate 2>/dev/null"),
            2);
}

}  // namespace
}  // namespace cmp
