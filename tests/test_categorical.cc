#include "gini/categorical.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "gini/gini.h"

namespace cmp {
namespace {

TEST(CategoricalSplit, PerfectSeparation) {
  // Values {0,1} are class 0, values {2,3} are class 1.
  Histogram1D hist(4, 2);
  hist.Add(0, 0, 10);
  hist.Add(1, 0, 5);
  hist.Add(2, 1, 8);
  hist.Add(3, 1, 7);
  const CategoricalSplit s = BestCategoricalSplit(hist);
  ASSERT_TRUE(s.valid);
  EXPECT_DOUBLE_EQ(s.gini, 0.0);
  EXPECT_EQ(s.left_subset[0], s.left_subset[1]);
  EXPECT_EQ(s.left_subset[2], s.left_subset[3]);
  EXPECT_NE(s.left_subset[0], s.left_subset[2]);
}

TEST(CategoricalSplit, SingleValueInvalid) {
  Histogram1D hist(1, 2);
  hist.Add(0, 0, 5);
  hist.Add(0, 1, 5);
  EXPECT_FALSE(BestCategoricalSplit(hist).valid);
}

TEST(CategoricalSplit, EmptyHistogramInvalid) {
  Histogram1D hist(3, 2);
  EXPECT_FALSE(BestCategoricalSplit(hist).valid);
}

TEST(CategoricalSplit, TwoValues) {
  Histogram1D hist(2, 2);
  hist.Add(0, 0, 9);
  hist.Add(0, 1, 1);
  hist.Add(1, 0, 2);
  hist.Add(1, 1, 8);
  const CategoricalSplit s = BestCategoricalSplit(hist);
  ASSERT_TRUE(s.valid);
  // Only one bipartition exists; verify its gini.
  const std::vector<int64_t> left = {9, 1};
  const std::vector<int64_t> right = {2, 8};
  EXPECT_NEAR(s.gini, SplitGini(left, right), 1e-12);
}

// The greedy path (cardinality above the exhaustive limit) must still
// find a reasonable split; on perfectly separable data it finds the
// perfect one.
TEST(CategoricalSplit, GreedyFindsPerfectSeparation) {
  const int card = 20;
  Histogram1D hist(card, 2);
  for (int v = 0; v < card; ++v) {
    hist.Add(v, v % 2 == 0 ? 0 : 1, 5);
  }
  const CategoricalSplit s = BestCategoricalSplit(hist, /*exhaustive_limit=*/8);
  ASSERT_TRUE(s.valid);
  EXPECT_DOUBLE_EQ(s.gini, 0.0);
}

// Exhaustive and greedy agree on separable data and greedy is never
// better than exhaustive (exhaustive is optimal).
TEST(CategoricalSplit, GreedyNeverBeatsExhaustive) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    const int card = 8;
    Histogram1D hist(card, 2);
    for (int v = 0; v < card; ++v) {
      hist.Add(v, 0, rng.UniformInt(0, 20));
      hist.Add(v, 1, rng.UniformInt(0, 20));
    }
    const CategoricalSplit exhaustive =
        BestCategoricalSplit(hist, /*exhaustive_limit=*/12);
    const CategoricalSplit greedy =
        BestCategoricalSplit(hist, /*exhaustive_limit=*/2);
    if (exhaustive.valid && greedy.valid) {
      EXPECT_LE(exhaustive.gini, greedy.gini + 1e-12);
    }
  }
}

TEST(CategoricalSplit, SkipsEmptySideSubsets) {
  // One value holds everything: every bipartition puts all records on
  // one side, so no valid split exists.
  Histogram1D hist(3, 2);
  hist.Add(1, 0, 5);
  hist.Add(1, 1, 5);
  EXPECT_FALSE(BestCategoricalSplit(hist).valid);
}

}  // namespace
}  // namespace cmp
