// End-to-end integration: every builder x every Agrawal function must
// produce an accurate classifier on held-out data, and the cost counters
// must respect the paper's ordering (CMP scans < CLOUDS scans, CMP memory
// << RainForest memory, ...).

#include <gtest/gtest.h>

#include <memory>

#include "clouds/clouds.h"
#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "rainforest/rainforest.h"
#include "sprint/sprint.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

enum class Algo { kCmpS, kCmpB, kCmpFull, kSprint, kClouds, kRainForest };

std::unique_ptr<TreeBuilder> Make(Algo algo) {
  switch (algo) {
    case Algo::kCmpS:
      return std::make_unique<CmpBuilder>(CmpSOptions());
    case Algo::kCmpB:
      return std::make_unique<CmpBuilder>(CmpBOptions());
    case Algo::kCmpFull:
      return std::make_unique<CmpBuilder>(CmpFullOptions());
    case Algo::kSprint:
      return std::make_unique<SprintBuilder>();
    case Algo::kClouds:
      return std::make_unique<CloudsBuilder>();
    case Algo::kRainForest:
      return std::make_unique<RainForestBuilder>();
  }
  return nullptr;
}

struct Case {
  Algo algo;
  int function;  // 1..10, or 11 for Function f
  double min_accuracy;
};

class BuilderFunctionTest : public ::testing::TestWithParam<Case> {};

TEST_P(BuilderFunctionTest, HeldOutAccuracy) {
  const Case& c = GetParam();
  AgrawalOptions gen;
  gen.function = static_cast<AgrawalFunction>(c.function);
  gen.num_records = 16000;
  gen.seed = 1000 + c.function;
  const Dataset data = GenerateAgrawal(gen);
  std::vector<RecordId> train_ids;
  std::vector<RecordId> test_ids;
  TrainTestSplit(data.num_records(), 0.25, 77, &train_ids, &test_ids);
  const Dataset train = data.Subset(train_ids);
  const Dataset test = data.Subset(test_ids);

  auto builder = Make(c.algo);
  const BuildResult result = builder->Build(train);
  const double acc = Evaluate(result.tree, test).Accuracy();
  EXPECT_GE(acc, c.min_accuracy)
      << builder->name() << " on F" << c.function;
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (const Algo algo : {Algo::kCmpS, Algo::kCmpB, Algo::kCmpFull,
                          Algo::kSprint, Algo::kClouds, Algo::kRainForest}) {
    for (int fn = 1; fn <= 11; ++fn) {
      // Thresholds: deterministic band concepts learn near-perfectly;
      // the disposable-income functions (7-10) have fine-grained linear
      // boundaries that axis-parallel trees approximate.
      double min_acc = 0.95;
      if (fn >= 7 && fn <= 10) min_acc = 0.90;
      cases.push_back({algo, fn, min_acc});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllBuildersAllFunctions, BuilderFunctionTest,
    ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name;
      switch (info.param.algo) {
        case Algo::kCmpS: name = "CmpS"; break;
        case Algo::kCmpB: name = "CmpB"; break;
        case Algo::kCmpFull: name = "Cmp"; break;
        case Algo::kSprint: name = "Sprint"; break;
        case Algo::kClouds: name = "Clouds"; break;
        case Algo::kRainForest: name = "RainForest"; break;
      }
      name += "_F" + std::to_string(info.param.function);
      return name;
    });

TEST(CostOrdering, CmpScansBelowCloudsScans) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 40000;
  gen.seed = 181;
  const Dataset train = GenerateAgrawal(gen);

  CmpOptions cmp_opts = CmpSOptions();
  cmp_opts.base.in_memory_threshold = 0;
  CloudsOptions clouds_opts;
  clouds_opts.base.in_memory_threshold = 0;
  CmpBuilder cmp_s(cmp_opts);
  CloudsBuilder clouds(clouds_opts);
  const BuildResult cres = cmp_s.Build(train);
  const BuildResult lres = clouds.Build(train);
  EXPECT_LT(cres.stats.dataset_scans, lres.stats.dataset_scans);
}

TEST(CostOrdering, CmpSimulatedTimeBelowSprint) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 40000;
  gen.seed = 183;
  const Dataset train = GenerateAgrawal(gen);
  CmpBuilder cmp_full(CmpFullOptions());
  SprintBuilder sprint;
  const DiskModel disk;
  const double cmp_time =
      cmp_full.Build(train).stats.SimulatedSeconds(disk);
  const double sprint_time =
      sprint.Build(train).stats.SimulatedSeconds(disk);
  EXPECT_LT(cmp_time, sprint_time / 2);
}

TEST(CostOrdering, CmpMemoryFarBelowRainForest) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 40000;
  gen.seed = 185;
  const Dataset train = GenerateAgrawal(gen);
  CmpBuilder cmp_full(CmpFullOptions());
  RainForestBuilder rf;
  EXPECT_LT(cmp_full.Build(train).stats.peak_memory_bytes,
            rf.Build(train).stats.peak_memory_bytes / 2);
}

TEST(CostOrdering, AllBuildersAgreeOnClassDistribution) {
  // Sanity: whatever the algorithm, the root's recorded class counts are
  // the dataset's.
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF5;
  gen.num_records = 8000;
  gen.seed = 187;
  const Dataset train = GenerateAgrawal(gen);
  const auto expected = train.ClassCounts();
  for (const Algo algo : {Algo::kCmpS, Algo::kCmpB, Algo::kCmpFull,
                          Algo::kSprint, Algo::kClouds, Algo::kRainForest}) {
    auto builder = Make(algo);
    const BuildResult result = builder->Build(train);
    EXPECT_EQ(result.tree.node(0).class_counts, expected)
        << builder->name();
  }
}

}  // namespace
}  // namespace cmp
