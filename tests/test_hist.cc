#include <gtest/gtest.h>

#include "common/random.h"
#include "hist/histogram1d.h"
#include "hist/histogram2d.h"

namespace cmp {
namespace {

TEST(Histogram1D, AddAndCount) {
  Histogram1D h(4, 2);
  h.Add(0, 1);
  h.Add(0, 1);
  h.Add(3, 0, 5);
  EXPECT_EQ(h.count(0, 1), 2);
  EXPECT_EQ(h.count(0, 0), 0);
  EXPECT_EQ(h.count(3, 0), 5);
}

TEST(Histogram1D, Totals) {
  Histogram1D h(3, 2);
  h.Add(0, 0, 2);
  h.Add(1, 1, 3);
  h.Add(2, 0, 4);
  EXPECT_EQ(h.IntervalTotal(0), 2);
  EXPECT_EQ(h.IntervalTotal(1), 3);
  EXPECT_EQ(h.ClassTotals(), (std::vector<int64_t>{6, 3}));
  EXPECT_EQ(h.Total(), 9);
}

TEST(Histogram1D, PrefixBefore) {
  Histogram1D h(3, 2);
  h.Add(0, 0, 1);
  h.Add(1, 1, 2);
  h.Add(2, 0, 4);
  EXPECT_EQ(h.PrefixBefore(0), (std::vector<int64_t>{0, 0}));
  EXPECT_EQ(h.PrefixBefore(2), (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(h.PrefixBefore(3), (std::vector<int64_t>{5, 2}));
}

TEST(Histogram1D, Merge) {
  Histogram1D a(2, 2);
  a.Add(0, 0, 1);
  Histogram1D b(2, 2);
  b.Add(0, 0, 2);
  b.Add(1, 1, 3);
  a.Merge(b);
  EXPECT_EQ(a.count(0, 0), 3);
  EXPECT_EQ(a.count(1, 1), 3);
}

TEST(HistogramMatrix, AddAndCell) {
  HistogramMatrix m(3, 4, 2);
  m.Add(1, 2, 0);
  m.Add(1, 2, 0);
  m.Add(1, 2, 1, 7);
  EXPECT_EQ(m.count(1, 2, 0), 2);
  EXPECT_EQ(m.count(1, 2, 1), 7);
  const int64_t* cell = m.cell(1, 2);
  EXPECT_EQ(cell[0], 2);
  EXPECT_EQ(cell[1], 7);
}

TEST(HistogramMatrix, MarginalsAgreeWithDirectCounts) {
  Rng rng(31);
  const int qx = 6;
  const int qy = 5;
  const int nc = 3;
  HistogramMatrix m(qx, qy, nc);
  Histogram1D direct_x(qx, nc);
  Histogram1D direct_y(qy, nc);
  for (int i = 0; i < 1000; ++i) {
    const int x = static_cast<int>(rng.UniformInt(0, qx - 1));
    const int y = static_cast<int>(rng.UniformInt(0, qy - 1));
    const ClassId c = static_cast<ClassId>(rng.UniformInt(0, nc - 1));
    m.Add(x, y, c);
    direct_x.Add(x, c);
    direct_y.Add(y, c);
  }
  const Histogram1D mx = m.MarginalX();
  const Histogram1D my = m.MarginalY();
  for (int x = 0; x < qx; ++x) {
    for (int c = 0; c < nc; ++c) {
      EXPECT_EQ(mx.count(x, c), direct_x.count(x, c));
    }
  }
  for (int y = 0; y < qy; ++y) {
    for (int c = 0; c < nc; ++c) {
      EXPECT_EQ(my.count(y, c), direct_y.count(y, c));
    }
  }
}

TEST(HistogramMatrix, RestrictedMarginals) {
  HistogramMatrix m(4, 3, 2);
  m.Add(0, 0, 0, 1);
  m.Add(1, 1, 0, 2);
  m.Add(2, 2, 1, 3);
  m.Add(3, 0, 1, 4);
  // X marginal over columns [1, 3): rows are local (0 = global 1).
  const Histogram1D mx = m.MarginalX(1, 3);
  EXPECT_EQ(mx.num_intervals(), 2);
  EXPECT_EQ(mx.count(0, 0), 2);
  EXPECT_EQ(mx.count(1, 1), 3);
  // Y marginal over the same column range.
  const Histogram1D my = m.MarginalY(1, 3);
  EXPECT_EQ(my.num_intervals(), 3);
  EXPECT_EQ(my.count(1, 0), 2);
  EXPECT_EQ(my.count(2, 1), 3);
  EXPECT_EQ(my.count(0, 1), 0);  // the (3,0) record is outside the range
}

TEST(HistogramMatrix, SumOfRestrictedMarginalsEqualsFull) {
  Rng rng(37);
  HistogramMatrix m(8, 4, 2);
  for (int i = 0; i < 500; ++i) {
    m.Add(static_cast<int>(rng.UniformInt(0, 7)),
          static_cast<int>(rng.UniformInt(0, 3)),
          static_cast<ClassId>(rng.UniformInt(0, 1)));
  }
  Histogram1D left = m.MarginalY(0, 3);
  const Histogram1D right = m.MarginalY(3, 8);
  left.Merge(right);
  const Histogram1D full = m.MarginalY();
  for (int y = 0; y < 4; ++y) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_EQ(left.count(y, c), full.count(y, c));
    }
  }
}

TEST(HistogramMatrix, ClassTotalsAndMerge) {
  HistogramMatrix a(2, 2, 2);
  a.Add(0, 0, 0, 3);
  a.Add(1, 1, 1, 4);
  HistogramMatrix b(2, 2, 2);
  b.Add(0, 1, 0, 5);
  a.Merge(b);
  EXPECT_EQ(a.ClassTotals(), (std::vector<int64_t>{8, 4}));
  EXPECT_EQ(a.Total(), 12);
}

}  // namespace
}  // namespace cmp
