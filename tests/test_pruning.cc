#include "pruning/mdl.h"

#include <gtest/gtest.h>

#include "datagen/agrawal.h"
#include "exact/exact.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

TEST(MdlLeafCost, PureLeafCostsOneBit) {
  const std::vector<int64_t> counts = {50, 0};
  EXPECT_DOUBLE_EQ(MdlLeafCost(counts), 1.0);
}

TEST(MdlLeafCost, ErrorsCostOneBitEach) {
  const std::vector<int64_t> counts = {30, 12};
  EXPECT_DOUBLE_EQ(MdlLeafCost(counts), 13.0);
}

TEST(PublicLowerBound, SmallForTwoClasses) {
  // With two classes, one split can in principle separate them: the
  // bound carries no error term, only structure cost.
  const std::vector<int64_t> counts = {100, 100};
  const double bound = PublicLowerBound(counts, 9);
  EXPECT_NEAR(bound, 2.0 + 1.0 + 1.0 + std::log2(9.0), 1e-9);
}

TEST(PublicLowerBound, ChargesMinorityClassesWithFewSplits) {
  // Three classes, one tiny: with s=1 the smallest class is all errors,
  // with s=2 structure costs more. The bound takes the min.
  const std::vector<int64_t> counts = {100, 100, 3};
  const double split_cost = 1.0 + std::log2(4.0);
  const double s1 = 2.0 + 1.0 + split_cost + 3.0;
  const double s2 = 4.0 + 1.0 + 2 * split_cost;
  EXPECT_NEAR(PublicLowerBound(counts, 4), std::min(s1, s2), 1e-9);
}

TEST(ShouldPruneBeforeExpand, PrunesNearPureNodes) {
  // 2 errors: leaf costs 3 bits, any subtree costs >= ~6.2 bits.
  const std::vector<int64_t> nearly_pure = {1000, 2};
  EXPECT_TRUE(ShouldPruneBeforeExpand(nearly_pure, 9));
}

TEST(ShouldPruneBeforeExpand, KeepsMixedNodes) {
  const std::vector<int64_t> mixed = {500, 500};
  EXPECT_FALSE(ShouldPruneBeforeExpand(mixed, 9));
}

TEST(PruneTreeMdl, ShrinksNoisyTree) {
  // A perturbed dataset grows spurious branches; MDL pruning must remove
  // some without hurting held-out accuracy much.
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF1;
  gen.num_records = 8000;
  gen.seed = 31;
  gen.perturbation = 0.08;
  const Dataset data = GenerateAgrawal(gen);
  std::vector<RecordId> train_ids;
  std::vector<RecordId> test_ids;
  TrainTestSplit(data.num_records(), 0.3, 2, &train_ids, &test_ids);
  const Dataset train = data.Subset(train_ids);
  const Dataset test = data.Subset(test_ids);

  BuilderOptions no_prune;
  no_prune.prune = false;
  ExactBuilder unpruned_builder(no_prune);
  BuildResult unpruned = unpruned_builder.Build(train);
  const double acc_before = Evaluate(unpruned.tree, test).Accuracy();
  const int nodes_before = unpruned.tree.num_nodes();

  const int removed = PruneTreeMdl(&unpruned.tree);
  const double acc_after = Evaluate(unpruned.tree, test).Accuracy();

  EXPECT_GT(removed, 0);
  EXPECT_LT(unpruned.tree.num_nodes(), nodes_before);
  EXPECT_GT(acc_after, acc_before - 0.02);
}

TEST(PruneTreeMdl, IdempotentOnPrunedTree) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF1;
  gen.num_records = 4000;
  gen.seed = 33;
  const Dataset train = GenerateAgrawal(gen);
  ExactBuilder builder;
  BuildResult result = builder.Build(train);  // prunes internally
  EXPECT_EQ(PruneTreeMdl(&result.tree), 0);
}

TEST(PruneTreeMdl, LeafOnlyTreeUntouched) {
  DecisionTree tree(AgrawalSchema());
  TreeNode leaf;
  leaf.leaf_class = 0;
  leaf.class_counts = {10, 0};
  tree.AddNode(leaf);
  EXPECT_EQ(PruneTreeMdl(&tree), 0);
  EXPECT_EQ(tree.num_nodes(), 1);
}

}  // namespace
}  // namespace cmp
