#include "common/dataset.h"

#include <gtest/gtest.h>

#include "datagen/loan_example.h"

namespace cmp {
namespace {

Schema MixedSchema() {
  return Schema({{"x", AttrKind::kNumeric, 0},
                 {"color", AttrKind::kCategorical, 3},
                 {"y", AttrKind::kNumeric, 0}},
                {"neg", "pos"});
}

TEST(Schema, Counts) {
  const Schema s = MixedSchema();
  EXPECT_EQ(s.num_attrs(), 3);
  EXPECT_EQ(s.num_classes(), 2);
  EXPECT_TRUE(s.is_numeric(0));
  EXPECT_FALSE(s.is_numeric(1));
  EXPECT_EQ(s.attr(1).cardinality, 3);
}

TEST(Schema, NumericAndCategoricalAttrLists) {
  const Schema s = MixedSchema();
  EXPECT_EQ(s.NumericAttrs(), (std::vector<AttrId>{0, 2}));
  EXPECT_EQ(s.CategoricalAttrs(), (std::vector<AttrId>{1}));
}

TEST(Schema, FindAttr) {
  const Schema s = MixedSchema();
  EXPECT_EQ(s.FindAttr("color"), 1);
  EXPECT_EQ(s.FindAttr("missing"), kInvalidAttr);
}

TEST(Schema, RecordBytes) {
  // 2 numeric (8 each) + 1 categorical (4) + label (4) = 24.
  EXPECT_EQ(MixedSchema().RecordBytes(), 24);
}

TEST(Schema, Equality) {
  EXPECT_TRUE(MixedSchema() == MixedSchema());
  Schema other({{"x", AttrKind::kNumeric, 0}}, {"neg", "pos"});
  EXPECT_FALSE(MixedSchema() == other);
}

TEST(Dataset, AppendAndAccess) {
  Dataset ds(MixedSchema());
  EXPECT_EQ(ds.Append({1.5, -2.0}, {2}, 1), 0);
  EXPECT_EQ(ds.Append({3.0, 4.0}, {0}, 0), 1);
  EXPECT_EQ(ds.num_records(), 2);
  EXPECT_DOUBLE_EQ(ds.numeric(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(ds.numeric(2, 0), -2.0);
  EXPECT_EQ(ds.categorical(1, 0), 2);
  EXPECT_EQ(ds.label(0), 1);
  EXPECT_EQ(ds.label(1), 0);
}

TEST(Dataset, ClassCounts) {
  Dataset ds(MixedSchema());
  ds.Append({0, 0}, {0}, 1);
  ds.Append({0, 0}, {1}, 1);
  ds.Append({0, 0}, {2}, 0);
  EXPECT_EQ(ds.ClassCounts(), (std::vector<int64_t>{1, 2}));
}

TEST(Dataset, SubsetPreservesValuesInOrder) {
  Dataset ds(MixedSchema());
  for (int i = 0; i < 5; ++i) {
    ds.Append({static_cast<double>(i), i * 10.0}, {i % 3},
              static_cast<ClassId>(i % 2));
  }
  const Dataset sub = ds.Subset({4, 0, 2});
  ASSERT_EQ(sub.num_records(), 3);
  EXPECT_DOUBLE_EQ(sub.numeric(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sub.numeric(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(sub.numeric(0, 2), 2.0);
  EXPECT_EQ(sub.categorical(1, 0), 1);
  EXPECT_EQ(sub.label(0), 0);
}

TEST(Dataset, TotalBytes) {
  Dataset ds(MixedSchema());
  ds.Append({0, 0}, {0}, 0);
  ds.Append({0, 0}, {0}, 0);
  EXPECT_EQ(ds.TotalBytes(), 48);
}

TEST(LoanExample, MatchesPaperFigure1) {
  const Dataset ds = LoanExampleDataset();
  ASSERT_EQ(ds.num_records(), 6);
  EXPECT_EQ(ds.schema().num_classes(), 2);
  // Record 0: age 18, salary 20,000, declined.
  EXPECT_DOUBLE_EQ(ds.numeric(0, 0), 18.0);
  EXPECT_DOUBLE_EQ(ds.numeric(1, 0), 20000.0);
  EXPECT_EQ(ds.label(0), 0);
  // Three approved, three declined.
  EXPECT_EQ(ds.ClassCounts(), (std::vector<int64_t>{3, 3}));
}

}  // namespace
}  // namespace cmp
