// Robustness of the tree text format: every truncation and a barrage of
// random single-character corruptions of a valid serialization must be
// either rejected cleanly or produce a tree that classifies without
// crashing — never undefined behavior.

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/agrawal.h"
#include "exact/exact.h"
#include "tree/serialize.h"

namespace cmp {
namespace {

std::string ValidSerialization() {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 2000;
  gen.seed = 71;
  const Dataset ds = GenerateAgrawal(gen);
  ExactBuilder builder;
  const BuildResult result = builder.Build(ds);
  return SerializeTree(result.tree);
}

TEST(SerializeFuzz, EveryPrefixRejectedOrValid) {
  const std::string text = ValidSerialization();
  // Step through prefixes (by ~37 bytes to keep the test quick).
  for (size_t len = 0; len < text.size(); len += 37) {
    DecisionTree out;
    const bool ok = DeserializeTree(text.substr(0, len), &out);
    // Truncations that cut inside the node list must fail; a successful
    // parse may only happen if the prefix happens to be a complete
    // document (it never is, since node count is declared up front).
    EXPECT_FALSE(ok) << "prefix length " << len;
  }
}

TEST(SerializeFuzz, RandomCorruptionsNeverCrash) {
  const std::string text = ValidSerialization();
  Rng rng(73);
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupted = text;
    const size_t pos = rng.UniformInt(0, corrupted.size() - 1);
    corrupted[pos] = static_cast<char>(rng.UniformInt(32, 126));
    DecisionTree out;
    // Must not crash; result validity is unspecified, but if it parses,
    // basic invariants hold.
    if (DeserializeTree(corrupted, &out)) {
      EXPECT_GT(out.num_nodes(), 0);
    }
  }
}

TEST(SerializeFuzz, RandomLineDeletionRejectedOrSane) {
  const std::string text = ValidSerialization();
  Rng rng(79);
  std::vector<std::string> lines;
  {
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      lines.push_back(text.substr(start, end - start));
      start = end + 1;
    }
  }
  for (int trial = 0; trial < 50; ++trial) {
    const size_t victim = rng.UniformInt(0, lines.size() - 1);
    std::string mutated;
    for (size_t i = 0; i < lines.size(); ++i) {
      if (i == victim) continue;
      mutated += lines[i];
      mutated += '\n';
    }
    DecisionTree out;
    if (DeserializeTree(mutated, &out)) {
      EXPECT_GT(out.num_nodes(), 0);
    }
  }
}

TEST(SerializeFuzz, GarbageBlobsRejected) {
  Rng rng(83);
  for (int trial = 0; trial < 100; ++trial) {
    std::string blob;
    const int len = static_cast<int>(rng.UniformInt(0, 500));
    for (int i = 0; i < len; ++i) {
      blob += static_cast<char>(rng.UniformInt(1, 255));
    }
    DecisionTree out;
    EXPECT_FALSE(DeserializeTree(blob, &out));
  }
}

// Targeted malformed inputs: each line below corrupts one structural
// invariant the hardened deserializer must now reject outright —
// backward/out-of-range child indices, out-of-range leaf classes and
// attribute ids, kind mismatches, absurd header counts, node-count
// mismatches, and trailing garbage.
TEST(SerializeFuzz, StructuralViolationsRejected) {
  const std::string header =
      "cmp-tree 1\n"
      "attrs 2\n"
      "num 0 x\n"
      "cat 3 c\n"
      "classes 2\n"
      "a\n"
      "b\n";
  auto parses = [&](const std::string& nodes_block) {
    DecisionTree out;
    return DeserializeTree(header + nodes_block, &out);
  };

  // Baseline: a well-formed two-node... three-node tree parses.
  ASSERT_TRUE(parses(
      "nodes 3\n"
      "num 0 0x1p+0 1 2 d 0 cc 0\n"
      "leaf 0 d 1 cc 0\n"
      "leaf 1 d 1 cc 0\n"));

  // Child index out of range.
  EXPECT_FALSE(parses(
      "nodes 3\n"
      "num 0 0x1p+0 1 7 d 0 cc 0\n"
      "leaf 0 d 1 cc 0\n"
      "leaf 1 d 1 cc 0\n"));
  // Backward child pointer (cycle through the root).
  EXPECT_FALSE(parses(
      "nodes 3\n"
      "num 0 0x1p+0 1 0 d 0 cc 0\n"
      "leaf 0 d 1 cc 0\n"
      "leaf 1 d 1 cc 0\n"));
  // Leaf class out of range / negative.
  EXPECT_FALSE(parses("nodes 1\nleaf 2 d 0 cc 0\n"));
  EXPECT_FALSE(parses("nodes 1\nleaf -1 d 0 cc 0\n"));
  // Split attribute out of range.
  EXPECT_FALSE(parses(
      "nodes 3\n"
      "num 5 0x1p+0 1 2 d 0 cc 0\n"
      "leaf 0 d 1 cc 0\n"
      "leaf 1 d 1 cc 0\n"));
  // Numeric split on a categorical attribute (and vice versa).
  EXPECT_FALSE(parses(
      "nodes 3\n"
      "num 1 0x1p+0 1 2 d 0 cc 0\n"
      "leaf 0 d 1 cc 0\n"
      "leaf 1 d 1 cc 0\n"));
  EXPECT_FALSE(parses(
      "nodes 3\n"
      "cat 0 3 101 1 2 d 0 cc 0\n"
      "leaf 0 d 1 cc 0\n"
      "leaf 1 d 1 cc 0\n"));
  // Categorical subset size disagrees with the schema cardinality.
  EXPECT_FALSE(parses(
      "nodes 3\n"
      "cat 1 2 10 1 2 d 0 cc 0\n"
      "leaf 0 d 1 cc 0\n"
      "leaf 1 d 1 cc 0\n"));
  // Node count larger than the list (truncated) and smaller (trailing
  // garbage lines).
  EXPECT_FALSE(parses("nodes 2\nleaf 0 d 0 cc 0\n"));
  EXPECT_FALSE(parses(
      "nodes 1\n"
      "leaf 0 d 0 cc 0\n"
      "leaf 1 d 0 cc 0\n"));
  // Negative depth; absurd class-count length.
  EXPECT_FALSE(parses("nodes 1\nleaf 0 d -1 cc 0\n"));
  EXPECT_FALSE(parses("nodes 1\nleaf 0 d 0 cc 99999999999\n"));

  // Absurd header counts must fail before allocating.
  DecisionTree out;
  EXPECT_FALSE(DeserializeTree("cmp-tree 1\nattrs 2000000000\n", &out));
  EXPECT_FALSE(DeserializeTree(
      "cmp-tree 1\nattrs 0\nclasses 2000000000\n", &out));
}

// The hardened validator must keep accepting every tree the builders
// produce (including pruned ones) — round-trip stays lossless.
TEST(SerializeFuzz, RealTreesStillRoundTrip) {
  const std::string text = ValidSerialization();
  DecisionTree out;
  ASSERT_TRUE(DeserializeTree(text, &out));
  EXPECT_EQ(SerializeTree(out), text);
}

}  // namespace
}  // namespace cmp
