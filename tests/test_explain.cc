#include "tree/explain.h"

#include <gtest/gtest.h>

#include "datagen/agrawal.h"
#include "datagen/loan_example.h"
#include "exact/exact.h"
#include "tree/crossval.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

BuilderOptions NoPrune() {
  BuilderOptions o;
  o.prune = false;
  return o;
}

TEST(Explain, PathEndsAtClassifiedLeaf) {
  const Dataset ds = LoanExampleDataset();
  ExactBuilder builder(NoPrune());
  const BuildResult result = builder.Build(ds);
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    const Explanation why = Explain(result.tree, ds, r);
    EXPECT_EQ(why.predicted, result.tree.Classify(ds, r));
    EXPECT_EQ(why.leaf, result.tree.LeafOf(ds, r));
    EXPECT_EQ(static_cast<int>(why.path.size()),
              result.tree.node(why.leaf).depth);
  }
}

TEST(Explain, RenderingContainsTestsAndPrediction) {
  const Dataset ds = LoanExampleDataset();
  ExactBuilder builder(NoPrune());
  const BuildResult result = builder.Build(ds);
  const Explanation why = Explain(result.tree, ds, 1);  // approved record
  const std::string text = why.ToString(ds.schema());
  EXPECT_NE(text.find("=> Yes"), std::string::npos);
  EXPECT_NE(text.find("["), std::string::npos);
}

TEST(Explain, SingleLeafTree) {
  DecisionTree tree(LoanExampleSchema());
  TreeNode leaf;
  leaf.leaf_class = 1;
  leaf.class_counts = {0, 5};
  tree.AddNode(leaf);
  const Dataset ds = LoanExampleDataset();
  const Explanation why = Explain(tree, ds, 0);
  EXPECT_TRUE(why.path.empty());
  EXPECT_EQ(why.predicted, 1);
}

TEST(ToDot, WellFormedOutput) {
  const Dataset ds = LoanExampleDataset();
  ExactBuilder builder(NoPrune());
  const BuildResult result = builder.Build(ds);
  const std::string dot = ToDot(result.tree);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_NE(dot.find("yes"), std::string::npos);
  // One node statement per tree node.
  size_t count = 0;
  for (size_t pos = dot.find("label="); pos != std::string::npos;
       pos = dot.find("label=", pos + 1)) {
    // Edge labels also contain "label="; just require at least num_nodes.
    ++count;
  }
  EXPECT_GE(count, static_cast<size_t>(result.tree.num_nodes()));
}

TEST(CrossValidate, FoldsCoverAllRecordsOnce) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF1;
  gen.num_records = 3000;
  gen.seed = 233;
  const Dataset data = GenerateAgrawal(gen);
  ExactBuilder builder;
  const CrossValResult cv = CrossValidate(&builder, data, 5, 7);
  ASSERT_EQ(cv.fold_accuracy.size(), 5u);
  for (double acc : cv.fold_accuracy) {
    EXPECT_GT(acc, 0.97);
    EXPECT_LE(acc, 1.0);
  }
  EXPECT_GT(cv.MeanAccuracy(), 0.97);
  EXPECT_GE(cv.StdDevAccuracy(), 0.0);
  EXPECT_LT(cv.StdDevAccuracy(), 0.05);
}

TEST(CrossValidate, DeterministicGivenSeed) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 2000;
  gen.seed = 235;
  const Dataset data = GenerateAgrawal(gen);
  ExactBuilder b1;
  ExactBuilder b2;
  const CrossValResult cv1 = CrossValidate(&b1, data, 3, 11);
  const CrossValResult cv2 = CrossValidate(&b2, data, 3, 11);
  EXPECT_EQ(cv1.fold_accuracy, cv2.fold_accuracy);
}

TEST(CrossValidate, AccumulatesStats) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF1;
  gen.num_records = 2000;
  gen.seed = 237;
  const Dataset data = GenerateAgrawal(gen);
  ExactBuilder builder;
  const CrossValResult cv = CrossValidate(&builder, data, 4, 13);
  EXPECT_GE(cv.total_stats.dataset_scans, 4);
}

}  // namespace
}  // namespace cmp
