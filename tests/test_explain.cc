#include "tree/explain.h"

#include <gtest/gtest.h>

#include "datagen/agrawal.h"
#include "datagen/loan_example.h"
#include "exact/exact.h"
#include "tree/crossval.h"
#include "tree/evaluate.h"

namespace cmp {
namespace {

BuilderOptions NoPrune() {
  BuilderOptions o;
  o.prune = false;
  return o;
}

TEST(Explain, PathEndsAtClassifiedLeaf) {
  const Dataset ds = LoanExampleDataset();
  ExactBuilder builder(NoPrune());
  const BuildResult result = builder.Build(ds);
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    const Explanation why = Explain(result.tree, ds, r);
    EXPECT_EQ(why.predicted, result.tree.Classify(ds, r));
    EXPECT_EQ(why.leaf, result.tree.LeafOf(ds, r));
    EXPECT_EQ(static_cast<int>(why.path.size()),
              result.tree.node(why.leaf).depth);
  }
}

TEST(Explain, RenderingContainsTestsAndPrediction) {
  const Dataset ds = LoanExampleDataset();
  ExactBuilder builder(NoPrune());
  const BuildResult result = builder.Build(ds);
  const Explanation why = Explain(result.tree, ds, 1);  // approved record
  const std::string text = why.ToString(ds.schema());
  EXPECT_NE(text.find("=> Yes"), std::string::npos);
  EXPECT_NE(text.find("["), std::string::npos);
}

TEST(Explain, SingleLeafTree) {
  DecisionTree tree(LoanExampleSchema());
  TreeNode leaf;
  leaf.leaf_class = 1;
  leaf.class_counts = {0, 5};
  tree.AddNode(leaf);
  const Dataset ds = LoanExampleDataset();
  const Explanation why = Explain(tree, ds, 0);
  EXPECT_TRUE(why.path.empty());
  EXPECT_EQ(why.predicted, 1);
}

// Records routed through a linear-combination split get the rendered
// a*x + b*y <= c test in their path, marked with the side they took.
TEST(Explain, LinearSplitRenderedInPath) {
  const Dataset ds = LoanExampleDataset();
  DecisionTree tree(ds.schema());
  TreeNode root;
  root.is_leaf = false;
  root.split = Split::Linear(/*salary*/ 1, /*commission*/ 2, 1.0, 1.0,
                             64999.0);
  root.class_counts = {3, 3};
  const NodeId root_id = tree.AddNode(root);
  TreeNode lo;
  lo.leaf_class = 0;
  lo.class_counts = {3, 0};
  lo.depth = 1;
  TreeNode hi;
  hi.leaf_class = 1;
  hi.class_counts = {0, 3};
  hi.depth = 1;
  tree.mutable_node(root_id).left = tree.AddNode(lo);
  tree.mutable_node(root_id).right = tree.AddNode(hi);

  for (RecordId r = 0; r < ds.num_records(); ++r) {
    const Explanation why = Explain(tree, ds, r);
    ASSERT_EQ(why.path.size(), 1u);
    EXPECT_NE(why.path[0].test.find("salary"), std::string::npos);
    EXPECT_NE(why.path[0].test.find("commission"), std::string::npos);
    const double sum = ds.numeric(1, r) + ds.numeric(2, r);
    EXPECT_EQ(why.path[0].went_left, sum <= 64999.0);
    EXPECT_EQ(why.predicted, sum <= 64999.0 ? 0 : 1);
  }
}

// The leaf's training distribution rides along in the explanation.
TEST(Explain, CarriesLeafCounts) {
  const Dataset ds = LoanExampleDataset();
  ExactBuilder builder(NoPrune());
  const BuildResult result = builder.Build(ds);
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    const Explanation why = Explain(result.tree, ds, r);
    EXPECT_EQ(why.leaf_counts, result.tree.node(why.leaf).class_counts);
  }
}

TEST(ToDot, WellFormedOutput) {
  const Dataset ds = LoanExampleDataset();
  ExactBuilder builder(NoPrune());
  const BuildResult result = builder.Build(ds);
  const std::string dot = ToDot(result.tree);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_NE(dot.find("yes"), std::string::npos);
  // One node statement per tree node.
  size_t count = 0;
  for (size_t pos = dot.find("label="); pos != std::string::npos;
       pos = dot.find("label=", pos + 1)) {
    // Edge labels also contain "label="; just require at least num_nodes.
    ++count;
  }
  EXPECT_GE(count, static_cast<size_t>(result.tree.num_nodes()));
}

TEST(CrossValidate, FoldsCoverAllRecordsOnce) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF1;
  gen.num_records = 3000;
  gen.seed = 233;
  const Dataset data = GenerateAgrawal(gen);
  ExactBuilder builder;
  const CrossValResult cv = CrossValidate(&builder, data, 5, 7);
  ASSERT_EQ(cv.fold_accuracy.size(), 5u);
  for (double acc : cv.fold_accuracy) {
    EXPECT_GT(acc, 0.97);
    EXPECT_LE(acc, 1.0);
  }
  EXPECT_GT(cv.MeanAccuracy(), 0.97);
  EXPECT_GE(cv.StdDevAccuracy(), 0.0);
  EXPECT_LT(cv.StdDevAccuracy(), 0.05);
}

TEST(CrossValidate, DeterministicGivenSeed) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = 2000;
  gen.seed = 235;
  const Dataset data = GenerateAgrawal(gen);
  ExactBuilder b1;
  ExactBuilder b2;
  const CrossValResult cv1 = CrossValidate(&b1, data, 3, 11);
  const CrossValResult cv2 = CrossValidate(&b2, data, 3, 11);
  EXPECT_EQ(cv1.fold_accuracy, cv2.fold_accuracy);
}

TEST(CrossValidate, AccumulatesStats) {
  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF1;
  gen.num_records = 2000;
  gen.seed = 237;
  const Dataset data = GenerateAgrawal(gen);
  ExactBuilder builder;
  const CrossValResult cv = CrossValidate(&builder, data, 4, 13);
  EXPECT_GE(cv.total_stats.dataset_scans, 4);
}

}  // namespace
}  // namespace cmp
