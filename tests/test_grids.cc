#include "hist/grids.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "datagen/agrawal.h"

namespace cmp {
namespace {

TEST(EqualWidthGrid, UniformCuts) {
  std::vector<double> values;
  Rng rng(301);
  for (int i = 0; i < 1000; ++i) values.push_back(rng.Uniform(0, 100));
  const IntervalGrid grid = IntervalGrid::EqualWidth(values, 10);
  ASSERT_EQ(grid.num_intervals(), 10);
  const auto& cuts = grid.boundaries();
  for (size_t i = 0; i < cuts.size(); ++i) {
    // Cuts at min + (max-min)*k/q.
    const double expected =
        grid.min_value() + (grid.max_value() - grid.min_value()) *
                               static_cast<double>(i + 1) / 10.0;
    EXPECT_NEAR(cuts[i], expected, 1e-9);
  }
}

TEST(EqualWidthGrid, ConstantColumnSingleInterval) {
  const std::vector<double> values(100, 3.5);
  const IntervalGrid grid = IntervalGrid::EqualWidth(values, 8);
  EXPECT_EQ(grid.num_intervals(), 1);
}

TEST(EqualWidthGrid, SkewPilesIntoFewIntervals) {
  // 99% of mass near 0, one outlier at 1e6: equal-width puts almost all
  // records into the first interval — the weakness the paper notes.
  std::vector<double> values;
  Rng rng(303);
  for (int i = 0; i < 1000; ++i) values.push_back(rng.Uniform(0, 1));
  values.push_back(1e6);
  const IntervalGrid width = IntervalGrid::EqualWidth(values, 10);
  const IntervalGrid depth = IntervalGrid::EqualDepth(values, 10);
  int64_t width_first = 0;
  int64_t depth_first = 0;
  for (double v : values) {
    if (width.IntervalOf(v) == 0) ++width_first;
    if (depth.IntervalOf(v) == 0) ++depth_first;
  }
  EXPECT_GT(width_first, 900);
  EXPECT_LT(depth_first, 300);
}

TEST(ComputeGrids, EqualDepthChargesSorts) {
  AgrawalOptions gen;
  gen.num_records = 2000;
  gen.seed = 305;
  const Dataset ds = GenerateAgrawal(gen);
  BuildStats depth_stats;
  ScanTracker depth_tracker(&depth_stats);
  ComputeGrids(ds, 50, Discretization::kEqualDepth, &depth_tracker);
  BuildStats width_stats;
  ScanTracker width_tracker(&width_stats);
  ComputeGrids(ds, 50, Discretization::kEqualWidth, &width_tracker);
  EXPECT_EQ(depth_stats.dataset_scans, 1);
  EXPECT_EQ(width_stats.dataset_scans, 1);
  EXPECT_GT(depth_stats.sort_comparisons, 0);
  EXPECT_EQ(width_stats.sort_comparisons, 0);
}

TEST(ComputeGrids, CategoricalAttrsGetEmptyGrids) {
  AgrawalOptions gen;
  gen.num_records = 500;
  gen.seed = 307;
  const Dataset ds = GenerateAgrawal(gen);
  const auto grids =
      ComputeGrids(ds, 20, Discretization::kEqualDepth, nullptr);
  for (AttrId a = 0; a < ds.num_attrs(); ++a) {
    if (!ds.schema().is_numeric(a)) {
      EXPECT_EQ(grids[a].num_intervals(), 1);
    } else {
      EXPECT_GT(grids[a].num_intervals(), 1);
    }
  }
}

TEST(GridsMemory, SumsBoundaryBytes) {
  AgrawalOptions gen;
  gen.num_records = 500;
  gen.seed = 309;
  const Dataset ds = GenerateAgrawal(gen);
  const auto grids =
      ComputeGrids(ds, 20, Discretization::kEqualDepth, nullptr);
  EXPECT_GT(GridsMemoryBytes(grids), 0);
}

}  // namespace
}  // namespace cmp
