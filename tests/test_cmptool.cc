// End-to-end smoke test of the cmptool CLI: gen -> info -> train ->
// eval -> show -> dot -> explain -> importance, via std::system. The
// binary path is injected by CMake as CMPTOOL_PATH.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string ToolPath() { return CMPTOOL_PATH; }

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Runs a command, returns its exit code, captures stdout into `out`.
int RunTool(const std::string& args, std::string* out = nullptr) {
  const std::string capture = TempPath("cmptool_out.txt");
  const std::string cmd = ToolPath() + " " + args + " > " + capture + " 2>&1";
  const int code = std::system(cmd.c_str());
  if (out != nullptr) {
    std::ifstream is(capture);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    *out = buffer.str();
  }
  std::remove(capture.c_str());
  return code;
}

class CmptoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = TempPath("smoke.cmpt");
    tree_ = TempPath("smoke.tree");
    ASSERT_EQ(RunTool("gen --function F2 --records 4000 --seed 5 --out " +
                  data_),
              0);
  }
  void TearDown() override {
    std::remove(data_.c_str());
    std::remove(tree_.c_str());
  }
  std::string data_;
  std::string tree_;
};

TEST_F(CmptoolTest, InfoShowsSchema) {
  std::string out;
  ASSERT_EQ(RunTool("info --data " + data_, &out), 0);
  EXPECT_NE(out.find("4000 records"), std::string::npos);
  EXPECT_NE(out.find("salary"), std::string::npos);
}

TEST_F(CmptoolTest, TrainEvalShowRoundTrip) {
  std::string out;
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo cmp --out " + tree_,
                &out),
            0);
  EXPECT_NE(out.find("CMP"), std::string::npos);

  ASSERT_EQ(RunTool("eval --data " + data_ + " --tree " + tree_, &out), 0);
  EXPECT_NE(out.find("accuracy"), std::string::npos);

  ASSERT_EQ(RunTool("show --tree " + tree_, &out), 0);
  EXPECT_NE(out.find("leaf"), std::string::npos);
}

TEST_F(CmptoolTest, EveryAlgorithmTrains) {
  for (const std::string algo :
       {"cmp", "cmp-b", "cmp-s", "sprint", "sliq", "clouds", "rainforest",
        "exact", "windowing", "sampled"}) {
    EXPECT_EQ(RunTool("train --data " + data_ + " --algo " + algo +
                  " --out " + tree_),
              0)
        << algo;
  }
}

TEST_F(CmptoolTest, DotAndExplainAndImportance) {
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo exact --out " + tree_),
            0);
  std::string out;
  ASSERT_EQ(RunTool("dot --tree " + tree_, &out), 0);
  EXPECT_NE(out.find("digraph"), std::string::npos);

  ASSERT_EQ(
      RunTool("explain --data " + data_ + " --tree " + tree_ + " --record 3",
          &out),
      0);
  EXPECT_NE(out.find("=>"), std::string::npos);

  ASSERT_EQ(RunTool("importance --tree " + tree_, &out), 0);
  EXPECT_FALSE(out.empty());
}

// Extracts the "accuracy: 0.1234" figure both `eval` and `predict` print.
std::string AccuracyLine(const std::string& out) {
  const size_t at = out.find("accuracy: ");
  EXPECT_NE(at, std::string::npos) << out;
  if (at == std::string::npos) return "";
  return out.substr(at, std::string("accuracy: 0.0000").size());
}

TEST_F(CmptoolTest, PredictRoundTripMatchesEval) {
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo cmp --out " + tree_),
            0);
  std::string eval_out;
  ASSERT_EQ(RunTool("eval --data " + data_ + " --tree " + tree_, &eval_out),
            0);

  const std::string csv = TempPath("predictions.csv");
  std::string predict_out;
  ASSERT_EQ(RunTool("predict --data " + data_ + " --tree " + tree_ +
                " --out " + csv,
                &predict_out),
            0);
  // The compiled batch path must reproduce the interpreted eval accuracy
  // digit for digit.
  EXPECT_EQ(AccuracyLine(predict_out), AccuracyLine(eval_out));

  // Header plus one CSV row per record.
  std::ifstream is(csv);
  ASSERT_TRUE(is.good());
  std::string line;
  int64_t lines = 0;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line.substr(0, 31), "record,actual,predicted,correct");
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 4000);
  std::remove(csv.c_str());

  // Probabilities, top-k, multithreading and ensembles ride the same path.
  ASSERT_EQ(RunTool("predict --data " + data_ + " --tree " + tree_ +
                " --probs --top-k 2 --threads 2 --out " + csv,
                &predict_out),
            0);
  EXPECT_EQ(AccuracyLine(predict_out), AccuracyLine(eval_out));
  ASSERT_EQ(RunTool("predict --data " + data_ + " --tree " + tree_ + "," +
                tree_ + " --vote prob --out " + csv,
                &predict_out),
            0);
  EXPECT_EQ(AccuracyLine(predict_out), AccuracyLine(eval_out));

  // A top-k beyond the class count is clamped, not an out-of-bounds read.
  ASSERT_EQ(RunTool("predict --data " + data_ + " --tree " + tree_ +
                " --top-k 99 --out " + csv,
                &predict_out),
            0);
  EXPECT_EQ(AccuracyLine(predict_out), AccuracyLine(eval_out));
  std::remove(csv.c_str());
}

TEST_F(CmptoolTest, BadInputsFailGracefully) {
  EXPECT_NE(RunTool("train --data /does/not/exist --algo cmp --out " + tree_),
            0);
  EXPECT_NE(RunTool("train --data " + data_ + " --algo bogus --out " + tree_),
            0);
  EXPECT_NE(RunTool("frobnicate"), 0);
  EXPECT_NE(RunTool(""), 0);
}

}  // namespace
