// End-to-end smoke test of the cmptool CLI: gen -> info -> train ->
// eval -> show -> dot -> explain -> importance, via std::system. The
// binary path is injected by CMake as CMPTOOL_PATH.
//
// cmptool's exit-code contract (tested below): 0 success, 2 bad
// arguments, 3 I/O failure, 4 training failure.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

constexpr int kBadArgs = 2;
constexpr int kIo = 3;
constexpr int kTrain = 4;

std::string ToolPath() { return CMPTOOL_PATH; }

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Runs a command, returns the tool's exit code (-1 if it died on a
// signal), captures stdout+stderr into `out`.
int RunTool(const std::string& args, std::string* out = nullptr) {
  const std::string capture = TempPath("cmptool_out.txt");
  const std::string cmd = ToolPath() + " " + args + " > " + capture + " 2>&1";
  const int raw = std::system(cmd.c_str());
  if (out != nullptr) {
    std::ifstream is(capture);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    *out = buffer.str();
  }
  std::remove(capture.c_str());
  return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

class CmptoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = TempPath("smoke.cmpt");
    tree_ = TempPath("smoke.tree");
    ASSERT_EQ(RunTool("gen --function F2 --records 4000 --seed 5 --out " +
                  data_),
              0);
  }
  void TearDown() override {
    std::remove(data_.c_str());
    std::remove(tree_.c_str());
  }
  std::string data_;
  std::string tree_;
};

TEST_F(CmptoolTest, InfoShowsSchema) {
  std::string out;
  ASSERT_EQ(RunTool("info --data " + data_, &out), 0);
  EXPECT_NE(out.find("4000 records"), std::string::npos);
  EXPECT_NE(out.find("salary"), std::string::npos);
}

TEST_F(CmptoolTest, TrainEvalShowRoundTrip) {
  std::string out;
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo cmp --out " + tree_,
                &out),
            0);
  EXPECT_NE(out.find("CMP"), std::string::npos);

  ASSERT_EQ(RunTool("eval --data " + data_ + " --tree " + tree_, &out), 0);
  EXPECT_NE(out.find("accuracy"), std::string::npos);

  ASSERT_EQ(RunTool("show --tree " + tree_, &out), 0);
  EXPECT_NE(out.find("leaf"), std::string::npos);
}

TEST_F(CmptoolTest, EveryAlgorithmTrains) {
  for (const std::string algo :
       {"cmp", "cmp-b", "cmp-s", "sprint", "sliq", "clouds", "rainforest",
        "exact", "windowing", "sampled"}) {
    EXPECT_EQ(RunTool("train --data " + data_ + " --algo " + algo +
                  " --out " + tree_),
              0)
        << algo;
  }
}

TEST_F(CmptoolTest, DotAndExplainAndImportance) {
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo exact --out " + tree_),
            0);
  std::string out;
  ASSERT_EQ(RunTool("dot --tree " + tree_, &out), 0);
  EXPECT_NE(out.find("digraph"), std::string::npos);

  ASSERT_EQ(
      RunTool("explain --data " + data_ + " --tree " + tree_ + " --record 3",
          &out),
      0);
  EXPECT_NE(out.find("=>"), std::string::npos);

  ASSERT_EQ(RunTool("importance --tree " + tree_, &out), 0);
  EXPECT_FALSE(out.empty());
}

// Extracts the "accuracy: 0.1234" figure both `eval` and `predict` print.
std::string AccuracyLine(const std::string& out) {
  const size_t at = out.find("accuracy: ");
  EXPECT_NE(at, std::string::npos) << out;
  if (at == std::string::npos) return "";
  return out.substr(at, std::string("accuracy: 0.0000").size());
}

TEST_F(CmptoolTest, PredictRoundTripMatchesEval) {
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo cmp --out " + tree_),
            0);
  std::string eval_out;
  ASSERT_EQ(RunTool("eval --data " + data_ + " --tree " + tree_, &eval_out),
            0);

  const std::string csv = TempPath("predictions.csv");
  std::string predict_out;
  ASSERT_EQ(RunTool("predict --data " + data_ + " --tree " + tree_ +
                " --out " + csv,
                &predict_out),
            0);
  // The compiled batch path must reproduce the interpreted eval accuracy
  // digit for digit.
  EXPECT_EQ(AccuracyLine(predict_out), AccuracyLine(eval_out));

  // Header plus one CSV row per record.
  std::ifstream is(csv);
  ASSERT_TRUE(is.good());
  std::string line;
  int64_t lines = 0;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line.substr(0, 31), "record,actual,predicted,correct");
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, 4000);
  std::remove(csv.c_str());

  // Probabilities, top-k, multithreading and ensembles ride the same path.
  ASSERT_EQ(RunTool("predict --data " + data_ + " --tree " + tree_ +
                " --probs --top-k 2 --threads 2 --out " + csv,
                &predict_out),
            0);
  EXPECT_EQ(AccuracyLine(predict_out), AccuracyLine(eval_out));
  ASSERT_EQ(RunTool("predict --data " + data_ + " --tree " + tree_ + "," +
                tree_ + " --vote prob --out " + csv,
                &predict_out),
            0);
  EXPECT_EQ(AccuracyLine(predict_out), AccuracyLine(eval_out));

  // A top-k beyond the class count is clamped, not an out-of-bounds read.
  ASSERT_EQ(RunTool("predict --data " + data_ + " --tree " + tree_ +
                " --top-k 99 --out " + csv,
                &predict_out),
            0);
  EXPECT_EQ(AccuracyLine(predict_out), AccuracyLine(eval_out));
  std::remove(csv.c_str());
}

TEST_F(CmptoolTest, BadInputsFailGracefully) {
  EXPECT_NE(RunTool("train --data /does/not/exist --algo cmp --out " + tree_),
            0);
  EXPECT_NE(RunTool("train --data " + data_ + " --algo bogus --out " + tree_),
            0);
  EXPECT_NE(RunTool("frobnicate"), 0);
  EXPECT_NE(RunTool(""), 0);
}

TEST_F(CmptoolTest, ExitCodesDistinguishFailureKinds) {
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo exact --out " + tree_),
            0);

  // Bad arguments: unknown algorithm, unknown subcommand, missing flags,
  // out-of-range record.
  std::string out;
  EXPECT_EQ(RunTool("train --data " + data_ + " --algo bogus --out " + tree_,
                &out),
            kBadArgs);
  // The unknown-algorithm error lists the registry's names.
  EXPECT_NE(out.find("have:"), std::string::npos) << out;
  EXPECT_NE(out.find("rainforest"), std::string::npos) << out;
  EXPECT_EQ(RunTool("frobnicate"), kBadArgs);
  EXPECT_EQ(RunTool("train --data " + data_), kBadArgs);
  EXPECT_EQ(RunTool("train --data " + data_ + " --algo cmp --stream"
                " --block 0 --out " + tree_),
            kBadArgs);
  EXPECT_EQ(RunTool("explain --data " + data_ + " --tree " + tree_ +
                " --record 99999999"),
            kBadArgs);

  // I/O failures: unreadable inputs.
  EXPECT_EQ(RunTool("train --data /does/not/exist --algo cmp --out " + tree_),
            kIo);
  EXPECT_EQ(RunTool("train --data /does/not/exist --algo cmp --stream"
                " --out " + tree_),
            kIo);
  EXPECT_EQ(RunTool("eval --data " + data_ + " --tree /does/not/exist"),
            kIo);
  EXPECT_EQ(RunTool("show --tree /does/not/exist"), kIo);

  // A truncated table is caught by the scanner's size check at open.
  const std::string truncated = TempPath("truncated.cmpt");
  {
    std::ifstream is(data_, std::ios::binary);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const std::string bytes = buffer.str();
    std::ofstream os(truncated, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_EQ(RunTool("train --data " + truncated + " --algo cmp --stream"
                " --out " + tree_),
            kIo);
  std::remove(truncated.c_str());

  // Training failure: the label column holds garbage. The file's size
  // is intact so it opens fine, and the streamed build (which sees raw
  // column bytes, unlike the in-memory loader) must fail cleanly.
  const std::string corrupt = TempPath("corrupt.cmpt");
  {
    std::ifstream is(data_, std::ios::binary);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    std::string bytes = buffer.str();
    ASSERT_GT(bytes.size(), 4u);
    for (size_t i = bytes.size() - 4; i < bytes.size(); ++i) {
      bytes[i] = '\x7f';
    }
    std::ofstream os(corrupt, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_EQ(RunTool("train --data " + corrupt + " --algo cmp --stream"
                " --out " + tree_),
            kTrain);
  std::remove(corrupt.c_str());
}

TEST_F(CmptoolTest, CompileAndBlobPredictFollowTheExitCodeContract) {
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo cmp --out " + tree_),
            0);

  // Success path: compile a blob, then predict from it. The blob's
  // accuracy must match the text tree's digit for digit.
  const std::string blob = TempPath("smoke.cmpb");
  const std::string csv = TempPath("blob_pred.csv");
  std::string out;
  ASSERT_EQ(RunTool("compile --tree " + tree_ + " --out " + blob, &out), 0);
  EXPECT_NE(out.find("compiled 1 tree"), std::string::npos) << out;

  std::string text_out;
  ASSERT_EQ(RunTool("predict --data " + data_ + " --tree " + tree_ +
                " --out " + csv,
                &text_out),
            0);
  std::string blob_out;
  ASSERT_EQ(RunTool("predict --data " + data_ + " --tree " + blob +
                " --out " + csv,
                &blob_out),
            0);
  EXPECT_EQ(AccuracyLine(blob_out), AccuracyLine(text_out));

  // An ensemble blob compiles from a comma-separated tree list and
  // predicts through the same path.
  const std::string blob2 = TempPath("smoke2.cmpb");
  ASSERT_EQ(RunTool("compile --tree " + tree_ + "," + tree_ + " --out " +
                blob2),
            0);
  ASSERT_EQ(RunTool("predict --data " + data_ + " --tree " + blob2 +
                " --out " + csv,
                &blob_out),
            0);
  EXPECT_EQ(AccuracyLine(blob_out), AccuracyLine(text_out));

  // Bad arguments: missing flags.
  EXPECT_EQ(RunTool("compile --tree " + tree_), kBadArgs);
  EXPECT_EQ(RunTool("compile --out " + blob), kBadArgs);
  EXPECT_EQ(RunTool("compile"), kBadArgs);

  // I/O failures: unreadable tree, unwritable output, corrupt blob.
  EXPECT_EQ(RunTool("compile --tree /does/not/exist --out " + blob), kIo);
  EXPECT_EQ(RunTool("compile --tree " + tree_ + " --out /no/such/dir/x.cmpb"),
            kIo);
  const std::string corrupt = TempPath("corrupt.cmpb");
  {
    std::ifstream is(blob, std::ios::binary);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    std::string bytes = buffer.str();
    ASSERT_GT(bytes.size(), 16u);
    bytes[9] ^= '\x5a';  // inside the header, past the magic
    std::ofstream os(corrupt, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_EQ(RunTool("predict --data " + data_ + " --tree " + corrupt +
                " --out " + csv),
            kIo);
  EXPECT_EQ(RunTool("predict --data " + data_ + " --tree /absent.cmpb" +
                " --out " + csv),
            kIo);

  for (const std::string& p : {blob, blob2, csv, corrupt}) {
    std::remove(p.c_str());
  }
}

TEST_F(CmptoolTest, StatsJsonEmitsObserverMetrics) {
  const std::string stats = TempPath("stats.json");
  std::string out;
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo cmp --out " + tree_ +
                " --stats-json " + stats,
                &out),
            0);
  std::ifstream is(stats);
  ASSERT_TRUE(is.good());
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"builder\": \"CMP\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"records\": 4000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"passes\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"scan_seconds\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"frontier_fresh\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"tree_nodes\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos) << json;
  std::remove(stats.c_str());

  // The streamed path feeds the same observer (real I/O bytes included).
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo cmp-b --stream"
                " --block 512 --out " + tree_ + " --stats-json " + stats,
                &out),
            0);
  std::ifstream is2(stats);
  ASSERT_TRUE(is2.good());
  std::ostringstream buffer2;
  buffer2 << is2.rdbuf();
  const std::string json2 = buffer2.str();
  EXPECT_NE(json2.find("\"builder\": \"CMP-B\""), std::string::npos) << json2;
  EXPECT_NE(json2.find("\"bytes_read\""), std::string::npos) << json2;
  std::remove(stats.c_str());
}

std::string Slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

TEST_F(CmptoolTest, BoostTrainsScoresAndCompiles) {
  // Text forest out: the boost knobs parse, the output names the tree
  // count, and the saved file is the multi-tree forest format.
  std::string out;
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo boost --rounds 6"
                " --shrinkage 0.2 --weak-depth 4 --out " + tree_,
                &out),
            0);
  EXPECT_NE(out.find("trees"), std::string::npos) << out;
  EXPECT_EQ(Slurp(tree_).substr(0, 11), "cmp-forest ");

  // Additive forests score through --vote prob (majority voting over
  // the pseudo-count leaves is NOT the boosted model).
  const std::string csv = TempPath("boost_pred.csv");
  std::string text_out;
  ASSERT_EQ(RunTool("predict --data " + data_ + " --tree " + tree_ +
                " --vote prob --out " + csv,
                &text_out),
            0);

  // Straight-to-blob training compiles the same forest; the blob path
  // must reproduce the text path's accuracy digit for digit.
  const std::string blob = TempPath("boost.cmpb");
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo boost --rounds 6"
                " --shrinkage 0.2 --weak-depth 4 --out " + blob,
                &out),
            0);
  std::string blob_out;
  ASSERT_EQ(RunTool("predict --data " + data_ + " --tree " + blob +
                " --vote prob --out " + csv,
                &blob_out),
            0);
  EXPECT_EQ(AccuracyLine(blob_out), AccuracyLine(text_out));

  // compile accepts the forest text file and produces the same blob.
  const std::string blob2 = TempPath("boost2.cmpb");
  ASSERT_EQ(RunTool("compile --tree " + tree_ + " --out " + blob2), 0);
  EXPECT_EQ(Slurp(blob2), Slurp(blob));

  // eval and show accept the forest too: eval scores the average-prob
  // vote (same accuracy line as predict --vote prob), show prints one
  // section per member tree.
  std::string eval_out;
  ASSERT_EQ(RunTool("eval --data " + data_ + " --tree " + tree_,
                &eval_out),
            0);
  EXPECT_EQ(AccuracyLine(eval_out), AccuracyLine(text_out));
  std::string show_out;
  ASSERT_EQ(RunTool("show --tree " + tree_, &show_out), 0);
  EXPECT_NE(show_out.find("=== tree 1/6 ==="), std::string::npos);
  EXPECT_NE(show_out.find("=== tree 6/6 ==="), std::string::npos);

  for (const std::string& p : {csv, blob, blob2}) std::remove(p.c_str());
}

TEST_F(CmptoolTest, StreamTrainRefitRoundTrip) {
  const std::string sidecar = TempPath("stream.cmps");
  const std::string refit_data = TempPath("refit.cmpt");
  const std::string refit_tree = TempPath("refit.tree");
  const std::string stats = TempPath("stream_stats.json");

  // cmp-stream trains, saves the sketch sidecar, and the new observer
  // fields land in --stats-json.
  std::string out;
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo cmp-stream --out " +
                tree_ + " --sidecar " + sidecar + " --stats-json " + stats,
                &out),
            0);
  EXPECT_NE(out.find("sketch sidecar"), std::string::npos) << out;
  const std::string json = Slurp(stats);
  EXPECT_NE(json.find("\"builder\": \"CMP-stream\""), std::string::npos);
  EXPECT_NE(json.find("\"sketch_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"refit_leaves_regrown\""), std::string::npos);

  // In-memory and out-of-core ingestion produce the same tree bytes.
  const std::string mem_tree = Slurp(tree_);
  ASSERT_FALSE(mem_tree.empty());
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo cmp-stream --stream"
                " --block 333 --threads 3 --out " + tree_),
            0);
  EXPECT_EQ(Slurp(tree_), mem_tree);

  // Refit with drifted data: exit 0, updated tree + sidecar written.
  ASSERT_EQ(RunTool("gen --function F7 --records 4000 --seed 6 --out " +
                refit_data),
            0);
  ASSERT_EQ(RunTool("refit --data " + refit_data + " --tree " + tree_ +
                " --sidecar " + sidecar + " --out " + refit_tree +
                " --stats-json " + stats,
                &out),
            0);
  EXPECT_NE(out.find("regrown"), std::string::npos) << out;
  EXPECT_NE(Slurp(stats).find("\"refit_leaves_regrown\""),
            std::string::npos);
  EXPECT_FALSE(Slurp(refit_tree).empty());

  // The refit tree still evaluates.
  ASSERT_EQ(
      RunTool("eval --data " + refit_data + " --tree " + refit_tree, &out),
      0);
  EXPECT_NE(out.find("accuracy"), std::string::npos);

  for (const std::string& p : {sidecar, refit_data, refit_tree, stats}) {
    std::remove(p.c_str());
  }
}

TEST_F(CmptoolTest, StreamAndRefitFlagValidation) {
  const std::string sidecar = TempPath("val.cmps");
  std::string out;

  // Unsupported combination: cmp-stream is single-process by contract.
  EXPECT_EQ(RunTool("train --data " + data_ + " --algo cmp-stream"
                " --workers 2 --out " + tree_,
                &out),
            kBadArgs);
  EXPECT_NE(out.find("incompatible with --workers"), std::string::npos)
      << out;

  // Bad sketch capacity and bad block size are usage errors.
  EXPECT_EQ(RunTool("train --data " + data_ + " --algo cmp-stream"
                " --sketch-capacity 2 --out " + tree_),
            kBadArgs);
  EXPECT_EQ(RunTool("train --data " + data_ + " --algo cmp-stream --stream"
                " --block 0 --out " + tree_),
            kBadArgs);

  // Unreadable input follows the I/O exit code on both paths.
  EXPECT_EQ(RunTool("train --data /does/not/exist --algo cmp-stream"
                " --out " + tree_),
            kIo);
  EXPECT_EQ(RunTool("train --data /does/not/exist --algo cmp-stream"
                " --stream --out " + tree_),
            kIo);

  // Refit requires a single tree: a boosted forest is rejected with a
  // clear message.
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo boost --rounds 3"
                " --out " + tree_),
            0);
  EXPECT_EQ(RunTool("refit --data " + data_ + " --tree " + tree_ +
                " --sidecar " + sidecar + " --out " + tree_ + ".out",
                &out),
            kBadArgs);
  EXPECT_NE(out.find("boosted ensembles cannot be refit"),
            std::string::npos)
      << out;

  // Refit on a tree without a matching sidecar: the sidecar is missing
  // (I/O), and a bad threshold is a usage error.
  ASSERT_EQ(RunTool("train --data " + data_ + " --algo cmp-stream --out " +
                tree_ + " --sidecar " + sidecar),
            0);
  EXPECT_EQ(RunTool("refit --data " + data_ + " --tree " + tree_ +
                " --sidecar /does/not/exist.cmps --out " + tree_ + ".out"),
            kIo);
  EXPECT_EQ(RunTool("refit --data " + data_ + " --tree " + tree_ +
                " --sidecar " + sidecar + " --out " + tree_ + ".out"
                " --drift-threshold 1.5"),
            kBadArgs);
  // Missing required flags fall back to usage.
  EXPECT_EQ(RunTool("refit --data " + data_ + " --tree " + tree_), kBadArgs);
  std::remove(sidecar.c_str());
  std::remove((tree_ + ".out").c_str());
}

TEST_F(CmptoolTest, GenDriftFlags) {
  const std::string drifted = TempPath("drifted.cmpt");
  std::string out;
  ASSERT_EQ(RunTool("gen --function F2 --records 2000 --seed 5"
                " --drift-at 1000 --drift-function F7 --out " + drifted,
                &out),
            0);
  EXPECT_NE(out.find("2000 records"), std::string::npos);

  // Covariates are the stationary stream's: same schema, same size.
  ASSERT_EQ(RunTool("info --data " + drifted, &out), 0);
  EXPECT_NE(out.find("2000 records"), std::string::npos);
  EXPECT_NE(out.find("salary"), std::string::npos);

  // Both drift flags are required together; the index must be in range;
  // the drift function must parse.
  EXPECT_EQ(RunTool("gen --function F2 --records 2000 --drift-at 500"
                " --out " + drifted),
            kBadArgs);
  EXPECT_EQ(RunTool("gen --function F2 --records 2000 --drift-function F7"
                " --out " + drifted),
            kBadArgs);
  EXPECT_EQ(RunTool("gen --function F2 --records 2000 --drift-at 5000"
                " --drift-function F7 --out " + drifted),
            kBadArgs);
  EXPECT_EQ(RunTool("gen --function F2 --records 2000 --drift-at 500"
                " --drift-function F77 --out " + drifted),
            kBadArgs);

  // --skip splits one seeded stream into an exact prefix + suffix.
  const std::string tail = TempPath("tail.cmpt");
  ASSERT_EQ(RunTool("gen --function F2 --records 2000 --seed 5 --skip 1500"
                " --out " + tail,
                &out),
            0);
  EXPECT_NE(out.find("500 records"), std::string::npos);
  EXPECT_EQ(RunTool("gen --function F2 --records 2000 --skip 2500 --out " +
                tail),
            kBadArgs);
  EXPECT_EQ(RunTool("gen --function F2 --records 2000 --skip -1 --out " +
                tail),
            kBadArgs);
  std::remove(tail.c_str());
  std::remove(drifted.c_str());
}

TEST_F(CmptoolTest, KernelFlagSelectsTierAndRejectsUnknown) {
  // --kernel scalar and --kernel auto must produce byte-identical trees
  // (the bit-identical-trees contract, CLI edition).
  ASSERT_EQ(RunTool("train --data " + data_ +
                " --algo cmp-b --kernel scalar --out " + tree_),
            0);
  const std::string scalar_tree = Slurp(tree_);
  ASSERT_FALSE(scalar_tree.empty());
  ASSERT_EQ(RunTool("train --data " + data_ +
                " --algo cmp-b --kernel auto --out " + tree_),
            0);
  EXPECT_EQ(Slurp(tree_), scalar_tree);

  // The selected tier lands in --stats-json as kernel_isa.
  const std::string stats = TempPath("kernel_stats.json");
  ASSERT_EQ(RunTool("train --data " + data_ +
                " --algo cmp-b --kernel scalar --out " + tree_ +
                " --stats-json " + stats),
            0);
  EXPECT_NE(Slurp(stats).find("\"kernel_isa\": \"scalar\""),
            std::string::npos);
  std::remove(stats.c_str());

  // An unknown tier is a usage error, reported before any work runs.
  std::string out;
  EXPECT_EQ(RunTool("train --data " + data_ +
                " --algo cmp-b --kernel bogus --out " + tree_,
                &out),
            kBadArgs);
  EXPECT_NE(out.find("unknown kernel tier 'bogus'"), std::string::npos)
      << out;
}

}  // namespace
