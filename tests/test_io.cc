#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/stats.h"
#include "datagen/agrawal.h"
#include "io/csv.h"
#include "io/scan.h"
#include "io/table_file.h"

namespace cmp {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Dataset SmallMixedDataset() {
  Schema schema({{"x", AttrKind::kNumeric, 0},
                 {"c", AttrKind::kCategorical, 4},
                 {"y", AttrKind::kNumeric, 0}},
                {"a", "b", "c"});
  Dataset ds(schema);
  ds.Append({1.25, -7.0}, {3}, 0);
  ds.Append({-0.5, 1e9}, {0}, 2);
  ds.Append({3.75, 0.001}, {1}, 1);
  return ds;
}

TEST(TableFile, RoundTrip) {
  const Dataset ds = SmallMixedDataset();
  const std::string path = TempPath("roundtrip.cmpt");
  ASSERT_TRUE(SaveTableFile(ds, path));
  Dataset loaded;
  ASSERT_TRUE(LoadTableFile(path, &loaded));
  ASSERT_TRUE(loaded.schema() == ds.schema());
  ASSERT_EQ(loaded.num_records(), ds.num_records());
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    EXPECT_DOUBLE_EQ(loaded.numeric(0, r), ds.numeric(0, r));
    EXPECT_EQ(loaded.categorical(1, r), ds.categorical(1, r));
    EXPECT_DOUBLE_EQ(loaded.numeric(2, r), ds.numeric(2, r));
    EXPECT_EQ(loaded.label(r), ds.label(r));
  }
  std::remove(path.c_str());
}

TEST(TableFile, HeaderOnly) {
  const Dataset ds = SmallMixedDataset();
  const std::string path = TempPath("header.cmpt");
  ASSERT_TRUE(SaveTableFile(ds, path));
  Schema schema;
  int64_t n = 0;
  ASSERT_TRUE(ReadTableHeader(path, &schema, &n));
  EXPECT_TRUE(schema == ds.schema());
  EXPECT_EQ(n, 3);
  std::remove(path.c_str());
}

TEST(TableFile, MissingFileFails) {
  Dataset out;
  EXPECT_FALSE(LoadTableFile(TempPath("does_not_exist.cmpt"), &out));
}

TEST(TableFile, CorruptMagicFails) {
  const std::string path = TempPath("corrupt.cmpt");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("NOPE not a table file", f);
    fclose(f);
  }
  Dataset out;
  EXPECT_FALSE(LoadTableFile(path, &out));
  std::remove(path.c_str());
}

TEST(TableFile, TruncatedFileFails) {
  const Dataset ds = GenerateAgrawal(
      {AgrawalFunction::kF1, /*num_records=*/100, /*seed=*/1, 0.0});
  const std::string path = TempPath("trunc.cmpt");
  ASSERT_TRUE(SaveTableFile(ds, path));
  // Chop the file in half.
  FILE* f = fopen(path.c_str(), "rb");
  fseek(f, 0, SEEK_END);
  const long size = ftell(f);
  fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  Dataset out;
  EXPECT_FALSE(LoadTableFile(path, &out));
  std::remove(path.c_str());
}

TEST(Csv, RoundTrip) {
  const Dataset ds = SmallMixedDataset();
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveCsv(ds, path));
  Dataset loaded;
  ASSERT_TRUE(LoadCsv(path, ds.schema(), &loaded));
  ASSERT_EQ(loaded.num_records(), ds.num_records());
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    EXPECT_DOUBLE_EQ(loaded.numeric(0, r), ds.numeric(0, r));
    EXPECT_EQ(loaded.categorical(1, r), ds.categorical(1, r));
    EXPECT_EQ(loaded.label(r), ds.label(r));
  }
  std::remove(path.c_str());
}

TEST(Csv, UnknownClassNameFails) {
  const std::string path = TempPath("badclass.csv");
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("x,c,y,class\n1,0,2,zebra\n", f);
    fclose(f);
  }
  Dataset out;
  EXPECT_FALSE(LoadCsv(path, SmallMixedDataset().schema(), &out));
  std::remove(path.c_str());
}

TEST(ScanTracker, ChargesScan) {
  BuildStats stats;
  ScanTracker tracker(&stats);
  const Dataset ds = SmallMixedDataset();
  tracker.ChargeScan(ds);
  tracker.ChargeScan(ds);
  EXPECT_EQ(stats.dataset_scans, 2);
  EXPECT_EQ(stats.records_read, 6);
  EXPECT_EQ(stats.bytes_read, 2 * ds.TotalBytes());
}

TEST(ScanTracker, NullStatsSafe) {
  ScanTracker tracker(nullptr);
  const Dataset ds = SmallMixedDataset();
  tracker.ChargeScan(ds);
  tracker.ChargeSort(100);
  tracker.NotePeakMemory(5);  // must not crash
}

TEST(ScanTracker, SortChargesNLogN) {
  BuildStats stats;
  ScanTracker tracker(&stats);
  tracker.ChargeSort(1024);
  EXPECT_EQ(stats.sort_comparisons, 1024 * 10);
  tracker.ChargeSort(1);  // no-op
  EXPECT_EQ(stats.sort_comparisons, 1024 * 10);
}

TEST(BuildStats, SimulatedSecondsMonotoneInBytes) {
  DiskModel model;
  BuildStats small;
  small.bytes_read = 1 << 20;
  BuildStats large;
  large.bytes_read = 1 << 24;
  EXPECT_LT(small.SimulatedSeconds(model), large.SimulatedSeconds(model));
}

TEST(BuildStats, AccumulateSumsAndPeaks) {
  BuildStats a;
  a.dataset_scans = 2;
  a.peak_memory_bytes = 100;
  BuildStats b;
  b.dataset_scans = 3;
  b.peak_memory_bytes = 50;
  a.Accumulate(b);
  EXPECT_EQ(a.dataset_scans, 5);
  EXPECT_EQ(a.peak_memory_bytes, 100);
}

}  // namespace
}  // namespace cmp

namespace cmp {
namespace {

TEST(CsvInfer, MixedColumnsInferred) {
  const std::string path = TempPath("infer.csv");
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs(
        "age,city,income,approved\n"
        "25, austin, 50000, no\n"
        "40, boston, 90000, yes\n"
        "31, austin, 72000.5, yes\n",
        f);
    fclose(f);
  }
  Dataset ds;
  ASSERT_TRUE(LoadCsvInferSchema(path, &ds));
  EXPECT_EQ(ds.num_records(), 3);
  EXPECT_EQ(ds.num_attrs(), 3);
  EXPECT_TRUE(ds.schema().is_numeric(0));
  EXPECT_FALSE(ds.schema().is_numeric(1));
  EXPECT_TRUE(ds.schema().is_numeric(2));
  EXPECT_EQ(ds.schema().attr(1).cardinality, 2);
  EXPECT_EQ(ds.schema().class_names(),
            (std::vector<std::string>{"no", "yes"}));
  EXPECT_EQ(ds.categorical(1, 0), 0);  // austin
  EXPECT_EQ(ds.categorical(1, 1), 1);  // boston
  EXPECT_DOUBLE_EQ(ds.numeric(2, 2), 72000.5);
  EXPECT_EQ(ds.label(1), 1);
  std::remove(path.c_str());
}

TEST(CsvInfer, NumericLookingClassStaysNominal) {
  const std::string path = TempPath("numclass.csv");
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("x,class\n1.0,0\n2.0,1\n3.0,0\n", f);
    fclose(f);
  }
  Dataset ds;
  ASSERT_TRUE(LoadCsvInferSchema(path, &ds));
  EXPECT_EQ(ds.num_classes(), 2);
  EXPECT_EQ(ds.schema().class_name(0), "0");
  std::remove(path.c_str());
}

TEST(CsvInfer, RejectsFreeTextColumns) {
  const std::string path = TempPath("freetext.csv");
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("note,class\n", f);
    for (int i = 0; i < 500; ++i) {
      fprintf(f, "unique_note_%d,a\n", i);
    }
    fclose(f);
  }
  Dataset ds;
  EXPECT_FALSE(LoadCsvInferSchema(path, &ds, /*max_categorical_card=*/256));
  std::remove(path.c_str());
}

TEST(CsvInfer, RejectsRaggedRowsAndEmpty) {
  const std::string path = TempPath("ragged.csv");
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("x,y,class\n1,2,a\n1,a\n", f);
    fclose(f);
  }
  Dataset ds;
  EXPECT_FALSE(LoadCsvInferSchema(path, &ds));
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("x,y,class\n", f);
    fclose(f);
  }
  EXPECT_FALSE(LoadCsvInferSchema(path, &ds));
  std::remove(path.c_str());
}

TEST(CsvInfer, RoundTripWithSaveCsv) {
  // SaveCsv output (numeric attrs + named classes) must re-load via
  // inference with identical values.
  Schema schema({{"a", AttrKind::kNumeric, 0}, {"b", AttrKind::kNumeric, 0}},
                {"neg", "pos"});
  Dataset original(schema);
  original.Append({1.5, -2.25}, {}, 0);
  original.Append({3.0, 4.75}, {}, 1);
  const std::string path = TempPath("savecsv_infer.csv");
  ASSERT_TRUE(SaveCsv(original, path));
  Dataset loaded;
  ASSERT_TRUE(LoadCsvInferSchema(path, &loaded));
  ASSERT_EQ(loaded.num_records(), 2);
  EXPECT_DOUBLE_EQ(loaded.numeric(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(loaded.numeric(1, 1), 4.75);
  EXPECT_EQ(loaded.schema().class_name(loaded.label(1)), "pos");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cmp
