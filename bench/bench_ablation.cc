// Ablation studies beyond the paper's figures, probing the design
// choices DESIGN.md calls out:
//   1. predictSplit hit-rate (the paper reports ~80% correct predictions
//      on Function 2) and its effect on scan counts;
//   2. interval-count sensitivity (Table 1's 10 vs 15 vs 100 intervals);
//   3. max_alive sensitivity (1 vs 2 vs 4 alive intervals);
//   4. linear-split grid coarsening (detection grid vs tree size).

#include <cstdio>

#include "bench/bench_util.h"
#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "tree/evaluate.h"

namespace {

using namespace cmp;

Dataset MakeTrain(AgrawalFunction fn, int64_t n, uint64_t seed) {
  AgrawalOptions gen;
  gen.function = fn;
  gen.num_records = n;
  gen.seed = seed;
  return GenerateAgrawal(gen);
}

void PredictionAblation(int64_t n) {
  std::printf("1) predictSplit accuracy and scan savings (Function 2, %lld"
              " records)\n",
              static_cast<long long>(n));
  const Dataset train = MakeTrain(AgrawalFunction::kF2, n, 201);
  CmpBuilder s_builder(CmpSOptions());
  CmpBuilder b_builder(CmpBOptions());
  const BuildResult s = s_builder.Build(train);
  const BuildResult b = b_builder.Build(train);
  const double hit_rate =
      b.stats.predictions_total == 0
          ? 0.0
          : 100.0 * b.stats.predictions_correct / b.stats.predictions_total;
  std::printf("   CMP-B prediction hit-rate: %.1f%% (%lld/%lld)\n", hit_rate,
              static_cast<long long>(b.stats.predictions_correct),
              static_cast<long long>(b.stats.predictions_total));
  std::printf("   scans: CMP-S=%lld CMP-B=%lld\n\n",
              static_cast<long long>(s.stats.dataset_scans),
              static_cast<long long>(b.stats.dataset_scans));
}

void IntervalAblation(int64_t n) {
  std::printf("2) interval-count sensitivity (Function 2, %lld records)\n",
              static_cast<long long>(n));
  std::printf("   %9s %10s %8s %8s %8s\n", "intervals", "accuracy", "scans",
              "nodes", "alive@root");
  const Dataset train = MakeTrain(AgrawalFunction::kF2, n, 203);
  for (const int q : {10, 15, 25, 50, 100, 200}) {
    CmpOptions o = CmpSOptions();
    o.intervals = q;
    CmpBuilder builder(o);
    const BuildResult result = builder.Build(train);
    std::printf("   %9d %10.4f %8lld %8lld %8lld\n", q,
                Evaluate(result.tree, train).Accuracy(),
                static_cast<long long>(result.stats.dataset_scans),
                static_cast<long long>(result.stats.tree_nodes),
                static_cast<long long>(result.stats.root_alive_intervals));
  }
  std::printf("\n");
}

void MaxAliveAblation(int64_t n) {
  std::printf("3) max_alive sensitivity (Function 7, %lld records)\n",
              static_cast<long long>(n));
  std::printf("   %9s %10s %10s %8s\n", "max_alive", "accuracy",
              "buffered", "scans");
  const Dataset train = MakeTrain(AgrawalFunction::kF7, n, 205);
  for (const int alive : {1, 2, 4}) {
    CmpOptions o = CmpSOptions();
    o.max_alive = alive;
    CmpBuilder builder(o);
    const BuildResult result = builder.Build(train);
    std::printf("   %9d %10.4f %10lld %8lld\n", alive,
                Evaluate(result.tree, train).Accuracy(),
                static_cast<long long>(result.stats.buffered_records),
                static_cast<long long>(result.stats.dataset_scans));
  }
  std::printf("\n");
}

void LinearGridAblation(int64_t n) {
  std::printf("4) linear-split detection grid (Function f, %lld records)\n",
              static_cast<long long>(n));
  std::printf("   %9s %10s %8s %8s\n", "grid", "accuracy", "nodes",
              "root");
  const Dataset train = MakeTrain(AgrawalFunction::kFunctionF, n, 207);
  for (const int grid : {8, 16, 32, 64}) {
    CmpOptions o = CmpFullOptions();
    o.linear_grid = grid;
    CmpBuilder builder(o);
    const BuildResult result = builder.Build(train);
    const bool linear_root =
        !result.tree.node(0).is_leaf &&
        result.tree.node(0).split.kind == Split::Kind::kLinear;
    std::printf("   %9d %10.4f %8lld %8s\n", grid,
                Evaluate(result.tree, train).Accuracy(),
                static_cast<long long>(result.stats.tree_nodes),
                linear_root ? "linear" : "axis");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const auto series = cmp::bench::RecordSeries();
  const int64_t n = series[1];  // second point of the figure series
  std::printf("Ablation studies (scale=%.2f)\n\n", cmp::bench::Scale());
  PredictionAblation(n);
  IntervalAblation(n);
  MaxAliveAblation(n / 2);
  LinearGridAblation(n / 2);
  return 0;
}
