// The paper's premise (Section 1.1): approximate techniques — sampling
// and windowing — cut learning time but "can carry a significant loss of
// accuracy in comparison with trees built by an exact approach", while
// CMP is "as accurate as SPRINT, but significantly faster". This harness
// quantifies that trade-off: exact builders (SPRINT, SLIQ), CMP, and the
// two approximate meta-strategies on the same held-out split.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "sampling/windowing.h"
#include "sliq/sliq.h"
#include "sprint/sprint.h"
#include "tree/evaluate.h"

int main() {
  using namespace cmp;
  const auto series = bench::RecordSeries();
  const int64_t n = series[2];  // middle of the figure series
  std::printf(
      "Exact vs approximate vs CMP (Function 2, %lld records, 25%% held "
      "out)\n\n",
      static_cast<long long>(n));

  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = n;
  gen.seed = 99;
  const Dataset data = GenerateAgrawal(gen);
  std::vector<RecordId> train_ids;
  std::vector<RecordId> test_ids;
  TrainTestSplit(data.num_records(), 0.25, 21, &train_ids, &test_ids);
  const Dataset train = data.Subset(train_ids);
  const Dataset test = data.Subset(test_ids);

  std::vector<std::unique_ptr<TreeBuilder>> builders;
  builders.push_back(std::make_unique<SprintBuilder>());
  builders.push_back(std::make_unique<SliqBuilder>());
  builders.push_back(std::make_unique<CmpBuilder>(CmpFullOptions()));
  builders.push_back(
      std::make_unique<SampledBuilder>(std::make_unique<SprintBuilder>(),
                                       /*fraction=*/0.05));
  {
    WindowingOptions wo;
    wo.initial_fraction = 0.05;
    builders.push_back(std::make_unique<WindowingBuilder>(
        std::make_unique<SprintBuilder>(), wo));
  }

  const DiskModel disk = bench::Disk();
  std::printf("%-20s %10s %10s %8s %10s\n", "builder", "sim(s)", "wall(s)",
              "nodes", "accuracy");
  for (auto& builder : builders) {
    const BuildResult result = builder->Build(train);
    const Evaluation eval = Evaluate(result.tree, test);
    std::printf("%-20s %10.2f %10.3f %8lld %10.4f\n",
                builder->name().c_str(),
                result.stats.SimulatedSeconds(disk),
                result.stats.wall_seconds,
                static_cast<long long>(result.stats.tree_nodes),
                eval.Accuracy());
  }
  return 0;
}
