// Microbenchmarks of the library's hot kernels (google-benchmark):
// gini evaluation, histogram updates, interval lookup, boundary scans,
// gradient estimation. These are not paper figures; they guard the
// constants behind every figure.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "gini/estimator.h"
#include "gini/gini.h"
#include "hist/histogram1d.h"
#include "hist/histogram2d.h"
#include "hist/quantiles.h"

#include "cmp/bundle.h"
#include "cmp/linear.h"
#include "cmp/pairs.h"
#include "datagen/agrawal.h"
#include "hist/grids.h"

namespace {

void BM_Gini(benchmark::State& state) {
  const int nc = static_cast<int>(state.range(0));
  std::vector<int64_t> counts(nc);
  cmp::Rng rng(1);
  for (auto& c : counts) c = rng.UniformInt(0, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cmp::Gini(counts));
  }
}
BENCHMARK(BM_Gini)->Arg(2)->Arg(7)->Arg(26);

void BM_BoundaryScan(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  cmp::Histogram1D hist(q, 2);
  cmp::Rng rng(2);
  for (int i = 0; i < q; ++i) {
    hist.Add(i, 0, rng.UniformInt(0, 100));
    hist.Add(i, 1, rng.UniformInt(0, 100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cmp::AnalyzeAttribute(hist));
  }
}
BENCHMARK(BM_BoundaryScan)->Arg(10)->Arg(100)->Arg(120);

void BM_IntervalOf(benchmark::State& state) {
  std::vector<double> values(10000);
  cmp::Rng rng(3);
  for (auto& v : values) v = rng.Uniform(0, 1e6);
  const cmp::IntervalGrid grid =
      cmp::IntervalGrid::EqualDepth(values, static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.IntervalOf(values[i]));
    i = (i + 1) % values.size();
  }
}
BENCHMARK(BM_IntervalOf)->Arg(100)->Arg(120);

void BM_MatrixUpdate(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  cmp::HistogramMatrix m(q, q, 2);
  cmp::Rng rng(4);
  for (auto _ : state) {
    const int x = static_cast<int>(rng.UniformInt(0, q - 1));
    const int y = static_cast<int>(rng.UniformInt(0, q - 1));
    m.Add(x, y, static_cast<cmp::ClassId>(rng.UniformInt(0, 1)));
  }
}
BENCHMARK(BM_MatrixUpdate)->Arg(100)->Arg(120);

void BM_MatrixMarginalY(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  cmp::HistogramMatrix m(q, q, 2);
  cmp::Rng rng(5);
  for (int i = 0; i < q * q; ++i) {
    m.Add(static_cast<int>(rng.UniformInt(0, q - 1)),
          static_cast<int>(rng.UniformInt(0, q - 1)),
          static_cast<cmp::ClassId>(rng.UniformInt(0, 1)),
          rng.UniformInt(1, 50));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.MarginalY());
  }
}
BENCHMARK(BM_MatrixMarginalY)->Arg(100)->Arg(120);

void BM_EstimateIntervalGini(benchmark::State& state) {
  const int nc = static_cast<int>(state.range(0));
  std::vector<int64_t> below(nc);
  std::vector<int64_t> interval(nc);
  std::vector<int64_t> totals(nc);
  cmp::Rng rng(6);
  for (int c = 0; c < nc; ++c) {
    below[c] = rng.UniformInt(0, 1000);
    interval[c] = rng.UniformInt(0, 100);
    totals[c] = below[c] + interval[c] + rng.UniformInt(0, 1000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cmp::EstimateIntervalGini(below, interval, totals));
  }
}
BENCHMARK(BM_EstimateIntervalGini)->Arg(2)->Arg(7)->Arg(26);

void BM_LinearWalk(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  std::vector<double> cuts;
  for (int i = 1; i < q; ++i) cuts.push_back(100.0 * i / q);
  const cmp::IntervalGrid grid =
      cmp::IntervalGrid::FromBoundaries(cuts, 0.0, 100.0);
  cmp::HistogramMatrix m(q, q, 2);
  cmp::Rng rng(7);
  for (int x = 0; x < q; ++x) {
    for (int y = 0; y < q; ++y) {
      m.Add(x, y, (x + y < q) ? 0 : 1, 5);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cmp::FindBestLine(m, grid, 0, grid, q));
  }
}
BENCHMARK(BM_LinearWalk)->Arg(16)->Arg(32)->Arg(64);

void BM_BundleDerive(benchmark::State& state) {
  cmp::AgrawalOptions gen;
  gen.num_records = 20000;
  gen.seed = 8;
  const cmp::Dataset ds = cmp::GenerateAgrawal(gen);
  const auto grids = cmp::ComputeEqualDepthGrids(ds, 100, nullptr);
  const cmp::AttrId x = ds.schema().FindAttr("salary");
  cmp::HistBundle bundle = cmp::HistBundle::MakeBivariate(
      ds.schema(), grids, x, 0, grids[x].num_intervals());
  for (cmp::RecordId r = 0; r < ds.num_records(); ++r) {
    bundle.Add(ds, grids, r);
  }
  const int half = grids[x].num_intervals() / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundle.DeriveXRange(0, half, 0, half));
  }
}
BENCHMARK(BM_BundleDerive);

void BM_PairDiscovery(benchmark::State& state) {
  cmp::AgrawalOptions gen;
  gen.function = cmp::AgrawalFunction::kFunctionF;
  gen.num_records = state.range(0);
  gen.seed = 9;
  const cmp::Dataset ds = cmp::GenerateAgrawal(gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cmp::DiscoverLinearRelations(ds));
  }
}
BENCHMARK(BM_PairDiscovery)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
