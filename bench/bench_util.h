#ifndef CMP_BENCH_BENCH_UTIL_H_
#define CMP_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure/table reproduction harnesses.
//
// Every harness honors the environment variable CMP_BENCH_SCALE: a factor
// applied to the paper's record counts (default 0.1, so the default suite
// runs 20k-250k records instead of 200k-2.5M). Set CMP_BENCH_SCALE=1 to
// reproduce the paper's sizes exactly.
//
// Reported "time" columns: `sim(s)` converts each builder's disk/CPU
// counters into seconds under the DiskModel (the paper's testbed was
// disk-bound, so the figures' shapes live in this column); `wall(s)` is
// the measured in-memory construction time on this host.

#include <cstdlib>
#include <string>
#include <vector>

#include "common/stats.h"

namespace cmp::bench {

inline double Scale() {
  const char* env = std::getenv("CMP_BENCH_SCALE");
  if (env == nullptr) return 0.1;
  const double s = std::atof(env);
  return s > 0 ? s : 0.1;
}

/// The paper's Figure 14-17 x-axis: 200,000 .. 2,500,000 records.
inline std::vector<int64_t> RecordSeries() {
  const double s = Scale();
  std::vector<int64_t> series;
  for (const int64_t n : {200000ll, 700000ll, 1300000ll, 1900000ll,
                          2500000ll}) {
    series.push_back(static_cast<int64_t>(n * s));
  }
  return series;
}

inline DiskModel Disk() { return DiskModel{}; }

}  // namespace cmp::bench

#endif  // CMP_BENCH_BENCH_UTIL_H_
