// Reproduces Figure 19: memory space usage as the training set grows.
//
// The paper's findings to reproduce:
//   * RainForest's RF-Hybrid holds a fixed 2.5M-entry AVC buffer:
//     2.5M * 4 bytes * 2 classes = 20 MB regardless of dataset size;
//   * CMP's working set (interval histograms / matrices + alive-interval
//     buffers + rid buffer) is considerably smaller;
//   * SPRINT's attribute lists grow with the data until disk swap caps
//     the resident set.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/agrawal.h"
#include "tree/builder.h"

int main() {
  using namespace cmp;
  std::printf("Figure 19: peak memory usage, Function 2 (scale=%.2f)\n\n",
              bench::Scale());
  std::printf("%10s %10s %10s %10s %10s   (MB)\n", "records", "CMP",
              "CMP-S", "RainForest", "SPRINT");
  for (const int64_t n : bench::RecordSeries()) {
    AgrawalOptions gen;
    gen.function = AgrawalFunction::kF2;
    gen.num_records = n;
    gen.seed = 97;
    const Dataset train = GenerateAgrawal(gen);

    std::printf("%10lld", static_cast<long long>(n));
    for (const char* algo : {"cmp", "cmp-s", "rainforest", "sprint"}) {
      const BuildResult result = MakeTreeBuilder(algo)->Build(train);
      std::printf(" %10.2f",
                  result.stats.peak_memory_bytes / (1024.0 * 1024.0));
    }
    std::printf("\n");
  }
  return 0;
}
