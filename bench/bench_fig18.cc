// Reproduces Figure 18: the linearly-correlated workload (the paper's
// Function f: approve iff age >= 40 and salary + commission >= 100,000).
//
// Univariate builders grow the replicated staircase of Figure 9 and need
// one pass per level; CMP detects the linear relationship, splits on a
// line close to salary + commission = 100,000, and finishes in a couple
// of passes with a far smaller tree — the paper's headline win for
// multivariate splits.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/agrawal.h"
#include "tree/builder.h"

int main() {
  using namespace cmp;
  std::printf("Figure 18: comparison on Function f (scale=%.2f)\n\n",
              bench::Scale());
  std::printf("%10s %10s %10s %10s %10s   (simulated seconds)\n", "records",
              "CMP", "SPRINT", "RainForest", "CLOUDS");
  const DiskModel disk = bench::Disk();
  for (const int64_t n : bench::RecordSeries()) {
    AgrawalOptions gen;
    gen.function = AgrawalFunction::kFunctionF;
    gen.num_records = n;
    gen.seed = 95;
    const Dataset train = GenerateAgrawal(gen);

    std::printf("%10lld", static_cast<long long>(n));
    std::vector<int64_t> nodes;
    for (const char* algo : {"cmp", "sprint", "rainforest", "clouds"}) {
      const BuildResult result = MakeTreeBuilder(algo)->Build(train);
      std::printf(" %10.2f", result.stats.SimulatedSeconds(disk));
      nodes.push_back(result.stats.tree_nodes);
    }
    std::printf("   tree nodes: CMP=%lld SPRINT=%lld\n",
                static_cast<long long>(nodes[0]),
                static_cast<long long>(nodes[1]));
  }
  return 0;
}
