// bench_predict: rows/sec of the inference paths, the first entry of the
// serving-performance trajectory.
//
// Measures, on an Agrawal-generated test set against a CMP-trained tree:
//   interpreted   DecisionTree::Classify per record (the training-side
//                 pointer-chase the compiled layout replaces)
//   compiled      CompiledTree + BatchPredictor, single thread
//   compiled-mt   BatchPredictor across a ThreadPool (1, 2, 4 threads)
//   ensemble      EnsemblePredictor majority-voting 5 cross-val trees
//
// Results go to stdout as a table and to BENCH_predict.json (or argv[1])
// for trend tracking. CMP_BENCH_SCALE scales the scored record count
// (default 0.1 => 100k rows).

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cmp/cmp.h"
#include "common/timer.h"
#include "datagen/agrawal.h"
#include "infer/batch_predictor.h"
#include "infer/compiled_tree.h"
#include "infer/ensemble.h"
#include "tree/crossval.h"
#include "tree/evaluate.h"

namespace {

using cmp::BatchPredictor;
using cmp::CompiledTree;
using cmp::Dataset;
using cmp::DecisionTree;
using cmp::PredictOptions;

// Runs `fn` (which scores the full dataset once) until at least
// `min_seconds` have elapsed, returning rows scored per second.
double MeasureRowsPerSec(int64_t rows_per_pass,
                         const std::function<void()>& fn,
                         double min_seconds = 0.3) {
  fn();  // warm-up pass (page in columns, prime caches)
  int64_t passes = 0;
  cmp::Timer timer;
  do {
    fn();
    ++passes;
  } while (timer.Seconds() < min_seconds);
  return static_cast<double>(rows_per_pass * passes) / timer.Seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_predict.json";
  const int64_t train_n = std::max<int64_t>(
      static_cast<int64_t>(1000000 * cmp::bench::Scale()), 20000);
  const int64_t score_n = std::max<int64_t>(
      static_cast<int64_t>(1000000 * cmp::bench::Scale()), 20000);

  // Function 7 with perturbation noise and no pruning gives a
  // serving-scale tree (tens of thousands of nodes at the default scale)
  // rather than the paper's pocket-sized pruned trees; that is the regime
  // a batch scorer exists for, and the one where the interpreted tree's
  // fat nodes fall out of cache.
  cmp::AgrawalOptions gen;
  gen.function = cmp::AgrawalFunction::kF7;
  gen.perturbation = 0.3;
  gen.num_records = train_n;
  gen.seed = 7;
  const Dataset train = cmp::GenerateAgrawal(gen);
  gen.num_records = score_n;
  gen.seed = 8;
  const Dataset test = cmp::GenerateAgrawal(gen);

  cmp::CmpOptions tree_opts = cmp::CmpFullOptions();
  tree_opts.base.prune = false;
  cmp::CmpBuilder builder(tree_opts);
  DecisionTree tree = builder.Build(train).tree;
  const CompiledTree compiled = CompiledTree::Compile(tree);
  std::cout << "tree: " << tree.num_nodes() << " nodes ("
            << compiled.num_leaves() << " leaves), scoring " << score_n
            << " records, accuracy "
            << cmp::Evaluate(tree, test).Accuracy() << "\n\n";

  volatile int64_t sink = 0;  // defeats dead-code elimination
  const double interpreted = MeasureRowsPerSec(score_n, [&] {
    int64_t acc = 0;
    for (cmp::RecordId r = 0; r < test.num_records(); ++r) {
      acc += tree.Classify(test, r);
    }
    sink = sink + acc;
  });

  std::vector<std::pair<int, double>> threaded;  // (threads, rows/sec)
  for (const int threads : {1, 2, 4}) {
    PredictOptions opts;
    opts.num_threads = threads;
    const BatchPredictor predictor(&compiled, opts);
    cmp::ThreadPool pool(threads);
    threaded.emplace_back(threads, MeasureRowsPerSec(score_n, [&] {
      sink = sink + predictor.Predict(test, &pool).labels.back();
    }));
  }
  const double compiled_st = threaded.front().second;
  const double compiled_mt =
      std::max_element(threaded.begin(), threaded.end(),
                       [](const auto& a, const auto& b) {
                         return a.second < b.second;
                       })
          ->second;

  cmp::CmpBuilder fold_builder(cmp::CmpFullOptions());
  const cmp::CrossValResult cv =
      cmp::CrossValidate(&fold_builder, train, 5, 1, /*keep_trees=*/true);
  const cmp::EnsemblePredictor ensemble =
      cmp::EnsemblePredictor::Compile(cv.trees);
  const double ensemble_rps = MeasureRowsPerSec(score_n, [&] {
    sink = sink + ensemble.Predict(test).labels.back();
  });

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "config            rows/sec\n";
  std::cout << "interpreted       " << static_cast<int64_t>(interpreted)
            << "\n";
  for (const auto& [threads, rps] : threaded) {
    std::cout << "compiled x" << threads << "       "
              << static_cast<int64_t>(rps) << "\n";
  }
  std::cout << "ensemble(5) x1    " << static_cast<int64_t>(ensemble_rps)
            << "\n\n";
  std::cout << "compiled/interpreted speedup: " << compiled_st / interpreted
            << "\n";
  std::cout << "multithread scaling (best/x1): " << compiled_mt / compiled_st
            << " on " << hw << " hardware thread(s)\n";

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"predict\",\n"
       << "  \"rows\": " << score_n << ",\n"
       << "  \"tree_nodes\": " << tree.num_nodes() << ",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"interpreted_rows_per_sec\": " << interpreted << ",\n"
       << "  \"compiled_rows_per_sec\": " << compiled_st << ",\n";
  for (const auto& [threads, rps] : threaded) {
    json << "  \"compiled_mt" << threads << "_rows_per_sec\": " << rps
         << ",\n";
  }
  json << "  \"ensemble5_rows_per_sec\": " << ensemble_rps << ",\n"
       << "  \"compiled_speedup\": " << compiled_st / interpreted << ",\n"
       << "  \"mt_scaling\": " << compiled_mt / compiled_st << "\n"
       << "}\n";
  std::cout << "wrote " << json_path << "\n";
  return 0;
}
