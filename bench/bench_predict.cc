// bench_predict: rows/sec of the inference paths, the first entry of the
// serving-performance trajectory.
//
// Measures, on an Agrawal-generated test set against a CMP-trained tree:
//   interpreted   DecisionTree::Classify per record (the training-side
//                 pointer-chase the compiled layout replaces)
//   compiled      CompiledTree + BatchPredictor, single thread
//   compiled-mt   BatchPredictor across a ThreadPool (1, 2, 4 threads)
//   descent       raw leaf descent per kernel tier (scalar gang, SSE2,
//                 AVX2) x node layout (preorder, cache-blocked), plus
//                 the pre-SIMD gang walker as the PR 1 baseline
//   ensemble      EnsemblePredictor majority-voting 5 cross-val trees,
//                 per kernel tier
//
// Every tier/layout combination is verified byte-identical to the
// scalar PredictRow walker before it is timed; the bench aborts on the
// first divergent leaf rather than publishing a number for a wrong
// kernel.
//
// Results go to stdout as a table and to BENCH_predict.json (or argv[1])
// for trend tracking. CMP_BENCH_SCALE scales the scored record count
// (default 0.1 => 100k rows).

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "cmp/cmp.h"
#include "common/cpu_features.h"
#include "common/timer.h"
#include "datagen/agrawal.h"
#include "infer/batch_predictor.h"
#include "infer/compiled_tree.h"
#include "infer/ensemble.h"
#include "infer/infer_kernels.h"
#include "infer/layout.h"
#include "infer/model_io.h"
#include "tree/crossval.h"
#include "tree/evaluate.h"

namespace {

using cmp::BatchPredictor;
using cmp::CompiledModel;
using cmp::CompiledTree;
using cmp::Dataset;
using cmp::DecisionTree;
using cmp::InferKernelOps;
using cmp::KernelIsa;
using cmp::NodeLayout;
using cmp::PredictOptions;
using cmp::RowColumnsView;

// Runs `fn` (which scores the full dataset once) until at least
// `min_seconds` have elapsed, returning rows scored per second. Takes
// the best of three timing windows: the bench hosts are shared, and a
// co-tenant burst inside one window would otherwise misrank paths whose
// true rates sit within the noise band.
double MeasureRowsPerSec(int64_t rows_per_pass,
                         const std::function<void()>& fn,
                         double min_seconds = 0.3) {
  fn();  // warm-up pass (page in columns, prime caches)
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    int64_t passes = 0;
    cmp::Timer timer;
    do {
      fn();
      ++passes;
    } while (timer.Seconds() < min_seconds);
    best = std::max(
        best, static_cast<double>(rows_per_pass * passes) / timer.Seconds());
  }
  return best;
}

// Column-pointer view over a dataset, one slot per schema attribute.
struct DatasetColumns {
  std::vector<const double*> num;
  std::vector<const int32_t*> cat;
  bool any_cat = false;

  explicit DatasetColumns(const Dataset& ds) {
    const cmp::Schema& schema = ds.schema();
    num.assign(schema.num_attrs(), nullptr);
    cat.assign(schema.num_attrs(), nullptr);
    for (cmp::AttrId a = 0; a < schema.num_attrs(); ++a) {
      if (schema.is_numeric(a)) {
        num[a] = ds.numeric_column(a).data();
      } else {
        cat[a] = ds.categorical_column(a).data();
        any_cat = true;
      }
    }
  }
  RowColumnsView view() const {
    return RowColumnsView{num.data(), any_cat ? cat.data() : nullptr};
  }
};

std::vector<std::pair<std::string, const InferKernelOps*>> RunnableTiers() {
  std::vector<std::pair<std::string, const InferKernelOps*>> tiers;
  tiers.emplace_back("scalar", &cmp::InferKernelOpsFor(KernelIsa::kScalar));
  if (cmp::KernelIsaSupported(KernelIsa::kSse2)) {
    if (const InferKernelOps* ops = cmp::Sse2InferKernelOpsOrNull()) {
      tiers.emplace_back("sse2", ops);
    }
  }
  if (cmp::KernelIsaSupported(KernelIsa::kAvx2)) {
    if (const InferKernelOps* ops = cmp::Avx2InferKernelOpsOrNull()) {
      tiers.emplace_back("avx2", ops);
    }
  }
  return tiers;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_predict.json";
  const int64_t train_n = std::max<int64_t>(
      static_cast<int64_t>(1000000 * cmp::bench::Scale()), 20000);
  const int64_t score_n = std::max<int64_t>(
      static_cast<int64_t>(1000000 * cmp::bench::Scale()), 20000);

  // Function 7 with perturbation noise and no pruning gives a
  // serving-scale tree (tens of thousands of nodes at the default scale)
  // rather than the paper's pocket-sized pruned trees; that is the regime
  // a batch scorer exists for, and the one where the interpreted tree's
  // fat nodes fall out of cache.
  cmp::AgrawalOptions gen;
  gen.function = cmp::AgrawalFunction::kF7;
  gen.perturbation = 0.3;
  gen.num_records = train_n;
  gen.seed = 7;
  const Dataset train = cmp::GenerateAgrawal(gen);
  gen.num_records = score_n;
  gen.seed = 8;
  const Dataset test = cmp::GenerateAgrawal(gen);

  cmp::CmpOptions tree_opts = cmp::CmpFullOptions();
  tree_opts.base.prune = false;
  cmp::CmpBuilder builder(tree_opts);
  DecisionTree tree = builder.Build(train).tree;
  const CompiledTree compiled = CompiledTree::Compile(tree);
  std::cout << "tree: " << tree.num_nodes() << " nodes ("
            << compiled.num_leaves() << " leaves), scoring " << score_n
            << " records, accuracy "
            << cmp::Evaluate(tree, test).Accuracy() << "\n\n";

  volatile int64_t sink = 0;  // defeats dead-code elimination
  const double interpreted = MeasureRowsPerSec(score_n, [&] {
    int64_t acc = 0;
    for (cmp::RecordId r = 0; r < test.num_records(); ++r) {
      acc += tree.Classify(test, r);
    }
    sink = sink + acc;
  });

  std::vector<std::pair<int, double>> threaded;  // (threads, rows/sec)
  for (const int threads : {1, 2, 4}) {
    PredictOptions opts;
    opts.num_threads = threads;
    const BatchPredictor predictor(&compiled, opts);
    cmp::ThreadPool pool(threads);
    threaded.emplace_back(threads, MeasureRowsPerSec(score_n, [&] {
      sink = sink + predictor.Predict(test, &pool).labels.back();
    }));
  }
  const double compiled_st = threaded.front().second;
  const double compiled_mt =
      std::max_element(threaded.begin(), threaded.end(),
                       [](const auto& a, const auto& b) {
                         return a.second < b.second;
                       })
          ->second;

  // ---- Raw descent: kernel tier x node layout ------------------------
  // Times LeafIndicesOfColumns alone (no vote/probs bookkeeping) so the
  // numbers isolate the traversal kernels the tiers differ in. The
  // scalar walker's leaves are the reference every combination must
  // reproduce exactly.
  const DatasetColumns cols(test);
  const auto tiers = RunnableTiers();

  std::vector<cmp::ClassId> reference_labels(test.num_records());
  std::vector<int32_t> reference(test.num_records());
  {
    std::vector<double> raw_n;
    std::vector<int32_t> raw_c;
    const cmp::Schema& schema = test.schema();
    raw_n.assign(schema.num_attrs(), 0.0);
    raw_c.assign(schema.num_attrs(), 0);
    for (cmp::RecordId r = 0; r < test.num_records(); ++r) {
      for (cmp::AttrId a = 0; a < schema.num_attrs(); ++a) {
        if (schema.is_numeric(a)) {
          raw_n[a] = test.numeric(a, r);
        } else {
          raw_c[a] = test.categorical(a, r);
        }
      }
      reference[r] = compiled.LeafIndexOfRow(raw_n.data(), raw_c.data());
      reference_labels[r] = compiled.leaf_class(reference[r]);
    }
  }

  std::string pack_error;
  cmp::PackOptions pre_pack;
  pre_pack.layout = NodeLayout::kPreorder;
  cmp::PackOptions blk_pack;
  blk_pack.layout = NodeLayout::kBlocked;
  const CompiledModel preorder_model =
      cmp::CompileModel({&tree}, pre_pack, &pack_error);
  const CompiledModel blocked_model =
      cmp::CompileModel({&tree}, blk_pack, &pack_error);
  if (preorder_model.empty() || blocked_model.empty()) {
    std::cerr << "model compile failed: " << pack_error << "\n";
    return 1;
  }

  // PR 1 baseline: the original gang-descent walker on the original
  // preorder layout — the path every tier/layout combination has to beat
  // to justify existing.
  std::vector<int32_t> leaves(test.num_records());
  const CompiledTree& pre_tree = preorder_model.trees.front();
  const CompiledTree& blk_tree = blocked_model.trees.front();
  pre_tree.LeafIndicesOfGang(test, 0, test.num_records(), leaves.data());
  bool identical = leaves == reference;
  const double pr1_gang = MeasureRowsPerSec(score_n, [&] {
    pre_tree.LeafIndicesOfGang(test, 0, test.num_records(), leaves.data());
    sink = sink + leaves.back();
  });

  // (tier, layout, rows/sec) for the table and JSON.
  std::vector<std::pair<std::string, double>> descent;
  for (const auto& [tier, ops] : tiers) {
    for (const NodeLayout layout :
         {NodeLayout::kPreorder, NodeLayout::kBlocked}) {
      const CompiledTree& t =
          layout == NodeLayout::kPreorder ? pre_tree : blk_tree;
      std::fill(leaves.begin(), leaves.end(), -1);
      t.LeafIndicesOfColumns(cols.view(), 0, test.num_records(),
                             leaves.data(), ops);
      for (cmp::RecordId r = 0; r < test.num_records(); ++r) {
        if (t.leaf_class(leaves[r]) != reference_labels[r]) {
          std::cerr << "DIVERGENCE: tier " << tier << " layout "
                    << cmp::NodeLayoutName(layout) << " row " << r << "\n";
          return 1;
        }
      }
      if (layout == NodeLayout::kPreorder && leaves != reference) {
        identical = false;  // preorder leaves must match index-for-index
      }
      descent.emplace_back(
          tier + std::string("_") + cmp::NodeLayoutName(layout),
          MeasureRowsPerSec(score_n, [&] {
            t.LeafIndicesOfColumns(cols.view(), 0, test.num_records(),
                                   leaves.data(), ops);
            sink = sink + leaves.back();
          }));
    }
  }

  cmp::CmpBuilder fold_builder(cmp::CmpFullOptions());
  const cmp::CrossValResult cv =
      cmp::CrossValidate(&fold_builder, train, 5, 1, /*keep_trees=*/true);
  const cmp::EnsemblePredictor ensemble =
      cmp::EnsemblePredictor::Compile(cv.trees);
  const double ensemble_rps = MeasureRowsPerSec(score_n, [&] {
    sink = sink + ensemble.Predict(test).labels.back();
  });

  // Ensemble per tier: same predictor, kernel pinned per run. Labels
  // must agree with the scalar tier's labels exactly.
  const KernelIsa isa_before = cmp::ActiveKernelIsa();
  std::vector<std::pair<std::string, double>> ensemble_tiers;
  std::vector<cmp::ClassId> ensemble_reference;
  for (const KernelIsa isa :
       {KernelIsa::kScalar, KernelIsa::kSse2, KernelIsa::kAvx2}) {
    if (!cmp::SetKernelIsa(isa)) continue;
    const cmp::BatchResult once = ensemble.Predict(test);
    if (ensemble_reference.empty()) {
      ensemble_reference = once.labels;
    } else if (once.labels != ensemble_reference) {
      std::cerr << "DIVERGENCE: ensemble tier "
                << cmp::KernelIsaName(isa) << "\n";
      return 1;
    }
    ensemble_tiers.emplace_back(
        cmp::KernelIsaName(isa), MeasureRowsPerSec(score_n, [&] {
          sink = sink + ensemble.Predict(test).labels.back();
        }));
  }
  cmp::SetKernelIsa(isa_before);

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "config            rows/sec\n";
  std::cout << "interpreted       " << static_cast<int64_t>(interpreted)
            << "\n";
  for (const auto& [threads, rps] : threaded) {
    std::cout << "compiled x" << threads << "       "
              << static_cast<int64_t>(rps) << "\n";
  }
  std::cout << "gang (pr1) x1     " << static_cast<int64_t>(pr1_gang)
            << "\n";
  for (const auto& [name, rps] : descent) {
    std::cout << "descent " << name << std::string(
                     name.size() < 18 ? 18 - name.size() : 1, ' ')
              << static_cast<int64_t>(rps) << "\n";
  }
  std::cout << "ensemble(5) x1    " << static_cast<int64_t>(ensemble_rps)
            << "\n";
  for (const auto& [name, rps] : ensemble_tiers) {
    std::cout << "ensemble(5) " << name << std::string(
                     name.size() < 14 ? 14 - name.size() : 1, ' ')
              << static_cast<int64_t>(rps) << "\n";
  }
  std::cout << "\npredictions byte-identical across tiers/layouts: "
            << (identical ? "yes" : "NO — KERNEL DIVERGENCE") << "\n";
  std::cout << "compiled/interpreted speedup: " << compiled_st / interpreted
            << "\n";
  std::cout << "multithread scaling (best/x1): " << compiled_mt / compiled_st
            << " on " << hw << " hardware thread(s)\n";

  // Best vectorized descent (any SIMD tier, any layout) vs the PR 1
  // gang walker; the headline number of this bench.
  double best_vector = 0.0;
  std::string best_vector_name;
  for (const auto& [name, rps] : descent) {
    if (name.rfind("scalar", 0) == 0) continue;
    if (rps > best_vector) {
      best_vector = rps;
      best_vector_name = name;
    }
  }
  if (!best_vector_name.empty()) {
    std::cout << "vector vs pr1 gang: " << best_vector / pr1_gang << " ("
              << best_vector_name << ")\n";
  }

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"predict\",\n"
       << "  \"rows\": " << score_n << ",\n"
       << "  \"tree_nodes\": " << tree.num_nodes() << ",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"kernel_isa\": \"" << cmp::KernelIsaName(cmp::ActiveKernelIsa())
       << "\",\n"
       << "  \"verified_byte_identical\": " << (identical ? "true" : "false")
       << ",\n"
       << "  \"interpreted_rows_per_sec\": " << interpreted << ",\n"
       << "  \"compiled_rows_per_sec\": " << compiled_st << ",\n";
  for (const auto& [threads, rps] : threaded) {
    json << "  \"compiled_mt" << threads << "_rows_per_sec\": " << rps
         << ",\n";
  }
  json << "  \"pr1_gang_rows_per_sec\": " << pr1_gang << ",\n";
  for (const auto& [name, rps] : descent) {
    json << "  \"descent_" << name << "_rows_per_sec\": " << rps << ",\n";
  }
  json << "  \"ensemble5_rows_per_sec\": " << ensemble_rps << ",\n";
  for (const auto& [name, rps] : ensemble_tiers) {
    json << "  \"ensemble5_" << name << "_rows_per_sec\": " << rps << ",\n";
  }
  // The headline: best SIMD descent over the PR 1 gang walker. On a
  // host whose toolchain/CPU can't run a vector tier the ratio would
  // compare scalar against scalar, so it gets a reason instead of a
  // number (same convention as bench_train_parallel's mt_scaling).
  if (!best_vector_name.empty()) {
    json << "  \"vector_vs_pr1_speedup\": " << best_vector / pr1_gang
         << ",\n"
         << "  \"vector_vs_pr1_reason\": \"best vector tier "
         << best_vector_name << " vs gang walker on preorder layout\",\n";
  } else {
    json << "  \"vector_vs_pr1_speedup\": null,\n"
         << "  \"vector_vs_pr1_reason\": \"no SIMD tier runnable on this "
            "host (scalar-only build or CPU): ratio would compare scalar "
            "to scalar\",\n";
  }
  json << "  \"compiled_speedup\": " << compiled_st / interpreted << ",\n"
       << "  \"mt_scaling\": " << compiled_mt / compiled_st << "\n"
       << "}\n";
  std::cout << "wrote " << json_path << "\n";
  return identical ? 0 : 1;
}
