// bench_train_parallel: wall-clock scaling of parallel CMP training.
//
// Trains CMP (full) on an Agrawal-generated set at num_threads 1, 2 and
// 4 and reports rows/sec per thread count plus the speedup over the
// single-threaded build. Because the determinism contract guarantees
// bit-identical trees for every thread count, the bench also verifies
// the serialized trees match before reporting — a scaling number for a
// wrong tree would be meaningless.
//
// Results go to stdout as a table and to BENCH_train.json (or argv[1])
// for trend tracking. CMP_BENCH_SCALE scales the training record count
// (default 0.1 => 100k rows; CMP_BENCH_SCALE=1 trains on 1M). On a
// single-core host the speedup hovers around 1.0x — the JSON records
// hardware_threads so trend tooling can tell "no scaling available"
// from "scaling regressed".

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cmp/cmp.h"
#include "common/timer.h"
#include "datagen/agrawal.h"
#include "tree/serialize.h"

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_train.json";
  const int64_t train_n = std::max<int64_t>(
      static_cast<int64_t>(1000000 * cmp::bench::Scale()), 20000);

  cmp::AgrawalOptions gen;
  gen.function = cmp::AgrawalFunction::kF7;
  gen.perturbation = 0.3;
  gen.num_records = train_n;
  gen.seed = 11;
  const cmp::Dataset train = cmp::GenerateAgrawal(gen);

  struct Row {
    int threads;
    double seconds;
    double rows_per_sec;
  };
  std::vector<Row> rows;
  std::string reference;
  bool identical = true;
  for (const int threads : {1, 2, 4}) {
    cmp::CmpOptions opts = cmp::CmpFullOptions();
    opts.base.prune = false;
    opts.base.num_threads = threads;
    cmp::CmpBuilder builder(opts);
    // Two passes, keep the better: absorbs first-touch page faults
    // without the cost of a full warm-up build per thread count.
    double best = 0.0;
    std::string bytes;
    for (int pass = 0; pass < 2; ++pass) {
      cmp::Timer timer;
      const cmp::BuildResult result = builder.Build(train);
      const double rps = static_cast<double>(train_n) / timer.Seconds();
      if (rps > best) best = rps;
      bytes = cmp::SerializeTree(result.tree);
    }
    if (threads == 1) {
      reference = bytes;
    } else if (bytes != reference) {
      identical = false;
    }
    rows.push_back({threads, static_cast<double>(train_n) / best, best});
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const double base = rows.front().rows_per_sec;
  std::cout << "training " << train_n << " records, CMP (full), no prune\n\n";
  std::cout << "threads   rows/sec     delta       speedup\n";
  for (const Row& r : rows) {
    std::cout << r.threads << "         "
              << static_cast<int64_t>(r.rows_per_sec) << "      "
              << (r.rows_per_sec >= base ? "+" : "")
              << static_cast<int64_t>(r.rows_per_sec - base) << "      "
              << r.rows_per_sec / base << "x"
              << (static_cast<unsigned>(r.threads) > hw
                      ? "  (oversubscribed)"
                      : "")
              << "\n";
  }
  std::cout << "\ntrees bit-identical across thread counts: "
            << (identical ? "yes" : "NO — DETERMINISM VIOLATION") << "\n";
  std::cout << "hardware threads on this host: " << hw << "\n";

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"train_parallel\",\n"
       << "  \"rows\": " << train_n << ",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"deterministic\": " << (identical ? "true" : "false") << ",\n";
  for (const Row& r : rows) {
    json << "  \"train_mt" << r.threads << "_rows_per_sec\": "
         << r.rows_per_sec << ",\n";
    // Per-config delta vs the single-thread baseline, but only where the
    // hardware can actually run that many threads: an oversubscribed
    // config's delta measures scheduler thrash, not scaling, so it gets
    // a reason instead of a number.
    if (static_cast<unsigned>(r.threads) <= std::max(hw, 1u)) {
      json << "  \"train_mt" << r.threads << "_delta_rows_per_sec\": "
           << r.rows_per_sec - base << ",\n";
    } else {
      json << "  \"train_mt" << r.threads << "_delta_rows_per_sec\": null,\n"
           << "  \"train_mt" << r.threads << "_delta_reason\": \"only "
           << hw << " hardware thread(s): config is oversubscribed\",\n";
    }
  }
  // On a host without real parallelism a speedup ratio is noise, not a
  // regression signal; the reason string tells trend tooling (and anyone
  // reading the JSON) exactly why the number is missing.
  if (hw >= 2) {
    json << "  \"mt_scaling\": " << rows.back().rows_per_sec / base << ",\n"
         << "  \"mt_scaling_reason\": \"measured across " << hw
         << " hardware threads\"\n";
  } else {
    json << "  \"mt_scaling\": null,\n"
         << "  \"mt_scaling_reason\": \"only " << hw
         << " hardware thread(s): speedup ratios would measure scheduler "
            "noise, not scaling\"\n";
  }
  json << "}\n";
  std::cout << "wrote " << json_path << "\n";
  return identical ? 0 : 1;
}
