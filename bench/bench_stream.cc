// bench_stream: the streaming sketch trainer and incremental refit vs
// the batch CMP path, on a non-stationary (concept-drifting) stream.
//
// The workload is the drifting Agrawal generator: the first half of the
// stream is labeled by F2, the second half by F7 (covariates never
// change). Four models are measured:
//
//   batch_stream   CMP trained out-of-core over the first half
//   cmp_stream     the sketch-grid streaming trainer on the same half
//   refit          cmp_stream's tree extended with the second half via
//                  the sketch sidecar (no access to the first half)
//   full_retrain   cmp_stream trained from scratch on both halves
//
// Reported: training rows/sec and peak resident bytes for the two
// first-half builds (the sketch path must be sublinear), refit wall
// time vs the full retrain, and holdout accuracy on the post-drift
// concept for the prefix model / refit model / full retrain. The
// cmp-stream build is verified byte-identical across two runs before
// anything is reported.
//
// Results go to stdout as a table and to BENCH_stream.json (or
// argv[1]). CMP_BENCH_SCALE scales the record count (default 0.1 =>
// 100k rows).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cmp/cmp.h"
#include "common/timer.h"
#include "datagen/agrawal.h"
#include "datagen/drift.h"
#include "io/block_source.h"
#include "io/sketch_sidecar.h"
#include "io/table_file.h"
#include "stream/refit.h"
#include "stream/stream_train.h"
#include "tree/evaluate.h"
#include "tree/serialize.h"

namespace {

double Accuracy(const cmp::DecisionTree& tree, const cmp::Dataset& ds) {
  const cmp::Evaluation eval = cmp::Evaluate(tree, ds);
  return static_cast<double>(eval.correct) /
         static_cast<double>(eval.total);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_stream.json";
  const std::string first_path = "/tmp/cmp_bench_stream_first.cmpt";
  const std::string second_path = "/tmp/cmp_bench_stream_second.cmpt";
  const int64_t total_n = std::max<int64_t>(
      static_cast<int64_t>(1000000 * cmp::bench::Scale()), 40000);
  const int64_t half_n = total_n / 2;
  const int64_t block = 65536;

  // The drifting stream, split at the drift point: the "past" the model
  // trained on and the "future" it must adapt to.
  cmp::DriftOptions gen;
  gen.before = cmp::AgrawalFunction::kF2;
  gen.after = cmp::AgrawalFunction::kF7;
  gen.num_records = total_n;
  gen.drift_at = half_n;
  gen.seed = 11;
  const cmp::Dataset all = cmp::GenerateDriftingAgrawal(gen);
  cmp::Dataset first(all.schema()), second(all.schema());
  {
    std::vector<double> nv;
    std::vector<int32_t> cv;
    for (cmp::RecordId r = 0; r < all.num_records(); ++r) {
      nv.clear();
      cv.clear();
      for (cmp::AttrId a = 0; a < all.schema().num_attrs(); ++a) {
        if (all.schema().attr(a).kind == cmp::AttrKind::kNumeric) {
          nv.push_back(all.numeric(a, r));
        } else {
          cv.push_back(all.categorical(a, r));
        }
      }
      (r < half_n ? first : second).Append(nv, cv, all.label(r));
    }
  }
  if (!cmp::SaveTableFile(first, first_path) ||
      !cmp::SaveTableFile(second, second_path)) {
    std::cerr << "failed to write bench tables\n";
    return 1;
  }

  cmp::AgrawalOptions holdout_gen;
  holdout_gen.function = cmp::AgrawalFunction::kF7;
  holdout_gen.num_records = 20000;
  holdout_gen.seed = 99;
  const cmp::Dataset holdout = cmp::GenerateAgrawal(holdout_gen);

  // -- First-half training: batch CMP (out of core) vs cmp-stream ------
  cmp::CmpOptions batch_opts = cmp::CmpFullOptions();
  batch_opts.base.num_threads = 2;
  double batch_rps = 0;
  int64_t batch_peak = 0;
  {
    cmp::CmpBuilder builder(batch_opts);
    for (int pass = 0; pass < 2; ++pass) {
      auto source = cmp::TableBlockSource::Open(first_path, block);
      cmp::Timer timer;
      const cmp::BuildResult result = builder.BuildStreamed(*source, true);
      const double rps = static_cast<double>(half_n) / timer.Seconds();
      if (rps > batch_rps) batch_rps = rps;
      batch_peak = result.stats.peak_memory_bytes;
    }
  }

  cmp::StreamOptions stream_opts;
  stream_opts.base.num_threads = 2;
  stream_opts.real_io = true;
  double stream_rps = 0;
  int64_t stream_peak = 0;
  std::string stream_tree_bytes;
  cmp::BuildResult stream_result;
  cmp::SketchSidecar sidecar;
  for (int pass = 0; pass < 2; ++pass) {
    auto source = cmp::TableBlockSource::Open(first_path, block);
    cmp::BuildResult result;
    cmp::SketchSidecar side;
    std::string error;
    cmp::Timer timer;
    if (!cmp::StreamTrain(*source, stream_opts, &result, &side, &error)) {
      std::cerr << "cmp-stream failed: " << error << "\n";
      return 1;
    }
    const double rps = static_cast<double>(half_n) / timer.Seconds();
    if (rps > stream_rps) stream_rps = rps;
    stream_peak = result.stats.peak_memory_bytes;
    const std::string bytes = cmp::SerializeTree(result.tree);
    if (pass == 0) {
      stream_tree_bytes = bytes;
    } else if (bytes != stream_tree_bytes) {
      std::cerr << "DETERMINISM VIOLATION: cmp-stream reruns differ\n";
      return 1;
    }
    stream_result = std::move(result);
    sidecar = std::move(side);
  }

  // -- Adapting to the drift: refit vs full retrain --------------------
  double refit_seconds = 0;
  cmp::DecisionTree refit_tree = stream_result.tree;
  {
    cmp::RefitOptions refit_opts;
    refit_opts.stream.base.num_threads = 2;
    refit_opts.stream.real_io = true;
    auto source = cmp::TableBlockSource::Open(second_path, block);
    cmp::BuildStats stats;
    cmp::RefitStats refit_stats;
    std::string error;
    cmp::Timer timer;
    if (!cmp::RefitTree(&refit_tree, &sidecar, *source, refit_opts, &stats,
                        &refit_stats, &error)) {
      std::cerr << "refit failed: " << error << "\n";
      return 1;
    }
    refit_seconds = timer.Seconds();
  }

  double retrain_seconds = 0;
  cmp::BuildResult retrain_result;
  {
    cmp::SketchSidecar side;
    std::string error;
    cmp::StreamOptions retrain_opts;
    retrain_opts.base.num_threads = 2;
    cmp::DatasetBlockSource source(all, block);
    cmp::Timer timer;
    if (!cmp::StreamTrain(source, retrain_opts, &retrain_result, &side,
                          &error)) {
      std::cerr << "full retrain failed: " << error << "\n";
      return 1;
    }
    retrain_seconds = timer.Seconds();
  }

  const double acc_prefix = Accuracy(stream_result.tree, holdout);
  const double acc_refit = Accuracy(refit_tree, holdout);
  const double acc_retrain = Accuracy(retrain_result.tree, holdout);

  std::cout << "drifting stream: " << total_n << " records, F2 -> F7 at "
            << half_n << ", 2 threads, block=" << block << "\n\n";
  std::cout << "first-half training        rows/sec     peak MB\n";
  std::printf("%-24s %10d   %9.2f\n", "batch cmp (--stream)",
              static_cast<int>(batch_rps),
              static_cast<double>(batch_peak) / (1024.0 * 1024.0));
  std::printf("%-24s %10d   %9.2f\n", "cmp-stream",
              static_cast<int>(stream_rps),
              static_cast<double>(stream_peak) / (1024.0 * 1024.0));
  std::cout << "\nadapting to the post-drift concept      seconds\n";
  std::printf("%-36s %9.3f\n", "refit (second half only)", refit_seconds);
  std::printf("%-36s %9.3f\n", "full retrain (both halves)",
              retrain_seconds);
  std::cout << "\nholdout accuracy on the post-drift concept (F7):\n";
  std::printf("  prefix model  %.4f\n  refit         %.4f\n"
              "  full retrain  %.4f\n",
              acc_prefix, acc_refit, acc_retrain);

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"stream\",\n"
       << "  \"rows\": " << total_n << ",\n"
       << "  \"drift_at\": " << half_n << ",\n"
       << "  \"block_records\": " << block << ",\n"
       << "  \"batch_rows_per_sec\": " << batch_rps << ",\n"
       << "  \"stream_rows_per_sec\": " << stream_rps << ",\n"
       << "  \"batch_peak_bytes\": " << batch_peak << ",\n"
       << "  \"stream_peak_bytes\": " << stream_peak << ",\n"
       << "  \"refit_seconds\": " << refit_seconds << ",\n"
       << "  \"retrain_seconds\": " << retrain_seconds << ",\n"
       << "  \"refit_vs_retrain\": " << retrain_seconds / refit_seconds
       << ",\n"
       << "  \"accuracy_prefix\": " << acc_prefix << ",\n"
       << "  \"accuracy_refit\": " << acc_refit << ",\n"
       << "  \"accuracy_retrain\": " << acc_retrain << ",\n"
       << "  \"accuracy_recovered\": " << acc_refit - acc_prefix << "\n"
       << "}\n";
  std::cout << "\nwrote " << json_path << "\n";
  std::remove(first_path.c_str());
  std::remove(second_path.c_str());
  // Refit must actually have adapted; a bench of a broken refit would
  // report meaningless timings.
  return acc_refit > acc_prefix ? 0 : 1;
}
