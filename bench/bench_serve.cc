// bench_serve: end-to-end serving throughput and latency through the
// real daemon — TCP sockets, line protocol, micro-batcher and all.
//
// Trains two CMP trees on Agrawal data (different generator functions,
// same schema), compiles both to `.cmpb` blobs, starts an in-process
// ServeDaemon on an ephemeral port, and hammers it with concurrent
// clients issuing `batch` requests. Halfway through, an admin
// connection hot-swaps the served model A -> B while traffic keeps
// flowing. Every reply is checked against the labels `cmptool predict`
// would emit for that row under model A or B — a torn or garbled reply
// fails the run — and replies matching model B must appear after the
// swap acks.
//
// Reports sustained rows/sec, the server's own per-request latency
// percentiles (enqueue -> reply fulfilled), and client-observed batch
// round-trip percentiles. Results go to stdout and BENCH_serve.json
// (or argv[1]). CMP_BENCH_SCALE scales the row-set size; the hammer
// duration is fixed.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cmp/cmp.h"
#include "common/timer.h"
#include "datagen/agrawal.h"
#include "infer/batch_predictor.h"
#include "infer/model_io.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using cmp::Dataset;
using cmp::DecisionTree;

// One CSV line per record, fields in schema order, doubles printed with
// round-trip precision so the daemon's strtod recovers the exact value
// the in-process predictor saw.
std::vector<std::string> FormatRows(const Dataset& data) {
  std::vector<std::string> rows;
  rows.reserve(static_cast<size_t>(data.num_records()));
  char buf[64];
  for (int64_t r = 0; r < data.num_records(); ++r) {
    std::string row;
    for (int32_t a = 0; a < data.num_attrs(); ++a) {
      if (a > 0) row += ',';
      if (data.schema().is_numeric(a)) {
        std::snprintf(buf, sizeof(buf), "%.17g", data.numeric(a, r));
        row += buf;
      } else {
        row += std::to_string(data.categorical(a, r));
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// The labels the batch predictor (cmptool predict's scoring path)
// assigns — the ground truth every served reply is compared against.
std::vector<std::string> ExpectedLabels(const cmp::CompiledModel& model,
                                        const Dataset& data) {
  cmp::PredictOptions opts;
  const cmp::BatchPredictor predictor(&model.trees.front(), opts);
  const cmp::BatchResult result = predictor.Predict(data, nullptr);
  std::vector<std::string> labels;
  labels.reserve(result.labels.size());
  for (const int32_t label : result.labels) {
    labels.push_back(model.schema->class_name(label));
  }
  return labels;
}

double Quantile(std::vector<double>* sorted, double q) {
  if (sorted->empty()) return 0.0;
  std::sort(sorted->begin(), sorted->end());
  const size_t at = std::min(
      sorted->size() - 1, static_cast<size_t>(q * (sorted->size() - 1)));
  return (*sorted)[at];
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_serve.json";
  const std::string blob_a = "/tmp/cmp_bench_serve_a.cmpb";
  const std::string blob_b = "/tmp/cmp_bench_serve_b.cmpb";
  const int kClients = 4;
  const int kBatchRows = 64;
  const double kHammerSeconds = 2.0;
  const int64_t rows_n = std::max<int64_t>(
      static_cast<int64_t>(200000 * cmp::bench::Scale()), 20000);

  // Two models over the same schema that disagree on many rows: the
  // generator's function changes the concept, not the attributes.
  cmp::AgrawalOptions gen;
  gen.num_records = rows_n;
  gen.seed = 21;
  gen.function = cmp::AgrawalFunction::kF2;
  const Dataset train_a = cmp::GenerateAgrawal(gen);
  gen.seed = 22;
  gen.function = cmp::AgrawalFunction::kF3;
  const Dataset train_b = cmp::GenerateAgrawal(gen);
  gen.seed = 23;
  gen.function = cmp::AgrawalFunction::kF2;
  const Dataset rows_data = cmp::GenerateAgrawal(gen);

  cmp::CmpOptions opts = cmp::CmpFullOptions();
  cmp::CmpBuilder builder(opts);
  const DecisionTree tree_a = builder.Build(train_a).tree;
  const DecisionTree tree_b = builder.Build(train_b).tree;

  std::string error;
  const cmp::CompiledModel model_a = cmp::CompileModel({&tree_a}, &error);
  const cmp::CompiledModel model_b = cmp::CompileModel({&tree_b}, &error);
  if (model_a.empty() || model_b.empty() ||
      !cmp::SaveModelBlob({&tree_a}, blob_a, &error) ||
      !cmp::SaveModelBlob({&tree_b}, blob_b, &error)) {
    std::cerr << "model setup failed: " << error << "\n";
    return 1;
  }

  const std::vector<std::string> rows = FormatRows(rows_data);
  const std::vector<std::string> expect_a = ExpectedLabels(model_a, rows_data);
  const std::vector<std::string> expect_b = ExpectedLabels(model_b, rows_data);
  int64_t disagreements = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    disagreements += expect_a[i] != expect_b[i];
  }
  std::cout << "serving " << rows.size() << " distinct rows; trees "
            << tree_a.num_nodes() << " / " << tree_b.num_nodes()
            << " nodes; models disagree on " << disagreements << " rows\n";

  cmp::ServeOptions serve_opts;
  serve_opts.port = 0;
  cmp::ServeDaemon daemon(serve_opts);
  if (daemon.registry().PublishFromFile("m", blob_a, &error) == 0 ||
      !daemon.Start(&error)) {
    std::cerr << "daemon setup failed: " << error << "\n";
    return 1;
  }
  const int port = daemon.port();

  std::atomic<bool> stop{false};
  std::atomic<bool> swap_acked{false};
  std::atomic<int64_t> total_rows{0};
  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> post_swap_b{0};
  std::vector<std::vector<double>> batch_us(kClients);  // round-trip, µs
  std::vector<std::thread> clients;

  cmp::Timer hammer;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      cmp::ServeClient client;
      std::string err;
      if (!client.ConnectTcp("127.0.0.1", port, &err)) return;
      size_t at = static_cast<size_t>(c) * rows.size() / kClients;
      std::vector<std::string> batch(kBatchRows);
      std::vector<size_t> ids(kBatchRows);
      std::vector<std::string> replies;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < kBatchRows; ++i) {
          ids[i] = at++ % rows.size();
          batch[i] = rows[ids[i]];
        }
        cmp::Timer rtt;
        if (!client.Batch("m", batch, &replies)) break;
        batch_us[c].push_back(rtt.Seconds() * 1e6);
        const bool after_swap = swap_acked.load(std::memory_order_acquire);
        for (int i = 0; i < kBatchRows; ++i) {
          const std::string& r = replies[i];
          const bool is_a = r == "ok " + expect_a[ids[i]];
          const bool is_b = r == "ok " + expect_b[ids[i]];
          // Rows where the models agree say nothing about which version
          // served them, so only count disagreeing rows toward B.
          if (after_swap && is_b && !is_a) {
            post_swap_b.fetch_add(1, std::memory_order_relaxed);
          }
          if (!is_a && !is_b) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        total_rows.fetch_add(kBatchRows, std::memory_order_relaxed);
      }
    });
  }

  // Hot swap at the midpoint, through the protocol like any operator.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(kHammerSeconds * 500)));
  double swap_ack_us = 0.0;
  {
    cmp::ServeClient admin;
    std::string reply;
    cmp::Timer swap_timer;
    if (!admin.ConnectTcp("127.0.0.1", port, &error) ||
        !admin.Rpc("swap m " + blob_b, &reply) || reply != "ok m v2") {
      std::cerr << "hot swap failed: " << reply << " " << error << "\n";
      stop.store(true);
      for (std::thread& t : clients) t.join();
      return 1;
    }
    swap_ack_us = swap_timer.Seconds() * 1e6;
    swap_acked.store(true, std::memory_order_release);
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int>(kHammerSeconds * 500)));
  stop.store(true);
  for (std::thread& t : clients) t.join();
  const double wall = hammer.Seconds();

  const cmp::LatencyHistogram::Snapshot lat =
      daemon.stats().request_latency().Snap();
  const uint64_t swaps = daemon.stats().swaps();
  daemon.Shutdown();

  std::vector<double> all_rtt;
  for (const auto& v : batch_us) all_rtt.insert(all_rtt.end(), v.begin(),
                                                v.end());
  std::vector<double> rtt_copy = all_rtt;
  const double rtt_p50 = Quantile(&rtt_copy, 0.50);
  const double rtt_p99 = Quantile(&rtt_copy, 0.99);
  const double rows_per_sec = static_cast<double>(total_rows.load()) / wall;

  const bool ok = mismatches.load() == 0 && post_swap_b.load() > 0 &&
                  swaps == 1 && total_rows.load() > 0;
  std::printf("\n%-28s %12.0f rows/sec (%d clients, batch %d, %.1fs)\n",
              "sustained throughput", rows_per_sec, kClients, kBatchRows,
              wall);
  std::printf("%-28s p50 %.0f  p99 %.0f  max %.0f  (µs, server-side)\n",
              "request latency", lat.p50_us, lat.p99_us, lat.max_us);
  std::printf("%-28s p50 %.0f  p99 %.0f  (µs, %zu batches)\n",
              "batch round-trip", rtt_p50, rtt_p99, all_rtt.size());
  std::printf("%-28s ack %.0f µs; %lld model-B rows after ack\n", "hot swap",
              swap_ack_us,
              static_cast<long long>(post_swap_b.load()));
  std::printf("%-28s %s (%lld mismatched replies)\n", "correctness",
              ok ? "every reply matched model A or B" : "FAILED",
              static_cast<long long>(mismatches.load()));

  std::ofstream json(json_path, std::ios::trunc);
  json << "{\n"
       << "  \"bench\": \"serve\",\n"
       << "  \"clients\": " << kClients << ",\n"
       << "  \"batch_rows\": " << kBatchRows << ",\n"
       << "  \"distinct_rows\": " << rows.size() << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"duration_s\": " << wall << ",\n"
       << "  \"rows_served\": " << total_rows.load() << ",\n"
       << "  \"rows_per_sec\": " << rows_per_sec << ",\n"
       << "  \"server_latency_us\": {\"p50\": " << lat.p50_us
       << ", \"p99\": " << lat.p99_us << ", \"max\": " << lat.max_us
       << ", \"mean\": " << lat.mean_us << ", \"count\": " << lat.count
       << "},\n"
       << "  \"batch_rtt_us\": {\"p50\": " << rtt_p50 << ", \"p99\": "
       << rtt_p99 << "},\n"
       << "  \"swaps\": " << swaps << ",\n"
       << "  \"swap_ack_us\": " << swap_ack_us << ",\n"
       << "  \"post_swap_model_b_rows\": " << post_swap_b.load() << ",\n"
       << "  \"mismatched_replies\": " << mismatches.load() << ",\n"
       << "  \"correct\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::cout << "\nwrote " << json_path << "\n";

  std::remove(blob_a.c_str());
  std::remove(blob_b.c_str());
  return ok ? 0 : 1;
}
