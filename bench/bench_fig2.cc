// Reproduces Figure 2 ("Gini Index Estimation and Alive Intervals") as
// data: for the best attribute at the root of Function 2, print the
// exact gini at every interval boundary next to the estimated lower
// bound inside each interval, and mark the alive intervals — the
// mechanism every CMP variant is built on. Pipe into a plotter to get
// the paper's curve.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/agrawal.h"
#include "gini/estimator.h"
#include "hist/grids.h"
#include "hist/histogram1d.h"

int main() {
  using namespace cmp;
  const int64_t n =
      static_cast<int64_t>(1000000 * bench::Scale());
  std::printf(
      "Figure 2: gini curve, estimates and alive intervals (Function 2, "
      "%lld records, 30 intervals)\n\n",
      static_cast<long long>(n));

  AgrawalOptions gen;
  gen.function = AgrawalFunction::kF2;
  gen.num_records = n;
  gen.seed = 2;
  const Dataset ds = GenerateAgrawal(gen);

  // Coarser grid than production (30 intervals) so the printed curve is
  // readable; the shape is the same.
  const auto grids =
      ComputeGrids(ds, 30, Discretization::kEqualDepth, nullptr);

  // Figure 2 illustrates the mechanism on one attribute's curve; use
  // salary, Function 2's main discriminator.
  const AttrId best_attr = ds.schema().FindAttr("salary");
  Histogram1D hist(grids[best_attr].num_intervals(), ds.num_classes());
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    hist.Add(grids[best_attr].IntervalOf(ds.numeric(best_attr, r)),
             ds.label(r));
  }
  const AttrAnalysis best_an = AnalyzeAttribute(hist);
  if (best_an.best_boundary < 0) {
    std::printf("no splittable attribute\n");
    return 1;
  }

  const std::vector<int> alive = SelectAliveIntervals(best_an, 2);
  std::printf("attribute: %s   boundary gini_min=%.6f at cut %d\n\n",
              ds.schema().attr(best_attr).name.c_str(), best_an.gini_min,
              best_an.best_boundary);
  std::printf("%9s %14s %14s %12s %7s\n", "interval", "cut value",
              "boundary gini", "est (lower)", "alive");
  for (size_t i = 0; i < best_an.interval_est.size(); ++i) {
    const bool is_alive =
        std::find(alive.begin(), alive.end(), static_cast<int>(i)) !=
        alive.end();
    if (i < best_an.boundary_gini.size()) {
      std::printf("%9zu %14.1f %14.6f %12.6f %7s\n", i,
                  grids[best_attr].UpperCut(static_cast<int>(i)),
                  best_an.boundary_gini[i], best_an.interval_est[i],
                  is_alive ? "*" : "");
    } else {
      std::printf("%9zu %14s %14s %12.6f %7s\n", i, "-", "-",
                  best_an.interval_est[i], is_alive ? "*" : "");
    }
  }
  std::printf(
      "\n%zu alive interval(s): the exact split point is refined there "
      "during the next scan.\n",
      alive.size());
  return 0;
}
