// Reproduces Figures 14 and 15: scalability of the CMP family.
//
// Figure 14 plots total construction time against training-set size
// (200,000 .. 2,500,000 records) for CMP-S, CMP-B and CMP on Function 2;
// Figure 15 repeats the experiment on Function 7 (which grows a much
// larger tree). The paper's findings to reproduce:
//   * runtime grows nearly linearly with the number of records;
//   * CMP-B is ~40% faster than CMP-S thanks to split prediction;
//   * full CMP is only slightly slower than CMP-B.

#include <cstdio>

#include "bench/bench_util.h"
#include "cmp/cmp.h"
#include "datagen/agrawal.h"

namespace {

using namespace cmp;

void RunFigure(const char* title, AgrawalFunction fn) {
  std::printf("%s\n", title);
  std::printf("%10s %12s %12s %12s   %s\n", "records", "CMP-S", "CMP-B",
              "CMP", "(simulated seconds; scans in parens)");
  const DiskModel disk = bench::Disk();
  for (const int64_t n : bench::RecordSeries()) {
    AgrawalOptions gen;
    gen.function = fn;
    gen.num_records = n;
    gen.seed = 91;
    const Dataset train = GenerateAgrawal(gen);

    double sim[3];
    int64_t scans[3];
    const CmpOptions variants[3] = {CmpSOptions(), CmpBOptions(),
                                    CmpFullOptions()};
    for (int i = 0; i < 3; ++i) {
      CmpBuilder builder(variants[i]);
      const BuildResult result = builder.Build(train);
      sim[i] = result.stats.SimulatedSeconds(disk);
      scans[i] = result.stats.dataset_scans;
    }
    std::printf("%10lld %7.2f (%2lld) %7.2f (%2lld) %7.2f (%2lld)\n",
                static_cast<long long>(n), sim[0],
                static_cast<long long>(scans[0]), sim[1],
                static_cast<long long>(scans[1]), sim[2],
                static_cast<long long>(scans[2]));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figures 14-15: CMP family scalability (scale=%.2f)\n\n",
              cmp::bench::Scale());
  RunFigure("Figure 14: Function 2", AgrawalFunction::kF2);
  RunFigure("Figure 15: Function 7", AgrawalFunction::kF7);
  return 0;
}
