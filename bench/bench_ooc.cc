// bench_ooc: out-of-core training throughput vs the in-memory build.
//
// Generates an Agrawal training set, saves it as a CMPT table, and
// trains CMP-S four ways: fully in memory, and streamed from the table
// with prefetch on / prefetch off / a whole-table block. Reports
// rows/sec for each, the real bytes the streamed builds pulled from the
// file per training pass (measured I/O, vs the in-memory build's
// simulated byte count), and verifies every streamed tree is
// byte-identical to the in-memory one before reporting — a throughput
// number for a wrong tree would be meaningless.
//
// Results go to stdout as a table and to BENCH_ooc.json (or argv[1]).
// CMP_BENCH_SCALE scales the record count (default 0.1 => 100k rows).
// The JSON records hardware_threads; on a 1-thread host the prefetch
// delta is not a regression signal (there is no core to prefetch on)
// and is emitted as null.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cmp/cmp.h"
#include "common/timer.h"
#include "datagen/agrawal.h"
#include "io/block_source.h"
#include "io/table_file.h"
#include "tree/serialize.h"

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_ooc.json";
  const std::string table_path = "/tmp/cmp_bench_ooc.cmpt";
  const int64_t train_n = std::max<int64_t>(
      static_cast<int64_t>(1000000 * cmp::bench::Scale()), 20000);
  const int64_t block = 65536;

  cmp::AgrawalOptions gen;
  gen.function = cmp::AgrawalFunction::kF7;
  gen.perturbation = 0.3;
  gen.num_records = train_n;
  gen.seed = 11;
  const cmp::Dataset train = cmp::GenerateAgrawal(gen);
  if (!cmp::SaveTableFile(train, table_path)) {
    std::cerr << "failed to write " << table_path << "\n";
    return 1;
  }

  cmp::CmpOptions opts = cmp::CmpSOptions();
  opts.base.prune = false;
  opts.base.num_threads = 2;
  cmp::CmpBuilder builder(opts);

  struct Row {
    std::string name;
    double rows_per_sec = 0;
    int64_t bytes_read = 0;
    int64_t scans = 0;
    std::string tree;
  };
  std::vector<Row> rows;

  // Best of two passes per mode, absorbing first-touch/page-cache noise
  // (every streamed pass after the first reads from the warm page
  // cache, which is the steady state a repeated-training workload sees).
  auto run = [&](const std::string& name, auto build) {
    Row row;
    row.name = name;
    for (int pass = 0; pass < 2; ++pass) {
      cmp::Timer timer;
      const cmp::BuildResult result = build();
      const double rps = static_cast<double>(train_n) / timer.Seconds();
      if (rps > row.rows_per_sec) row.rows_per_sec = rps;
      row.bytes_read = result.stats.bytes_read;
      row.scans = result.stats.dataset_scans;
      row.tree = cmp::SerializeTree(result.tree);
    }
    rows.push_back(row);
  };

  run("in_memory", [&] { return builder.Build(train); });
  run("streamed_prefetch", [&] {
    auto source = cmp::TableBlockSource::Open(table_path, block);
    return builder.BuildStreamed(*source, /*prefetch=*/true);
  });
  run("streamed_no_prefetch", [&] {
    auto source = cmp::TableBlockSource::Open(table_path, block);
    return builder.BuildStreamed(*source, /*prefetch=*/false);
  });
  run("streamed_one_block", [&] {
    auto source = cmp::TableBlockSource::Open(table_path, train_n);
    return builder.BuildStreamed(*source, /*prefetch=*/true);
  });

  bool identical = true;
  for (const Row& r : rows) {
    if (r.tree != rows.front().tree) identical = false;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const double base = rows.front().rows_per_sec;

  std::cout << "training " << train_n << " records, CMP-S, no prune, "
            << opts.base.num_threads << " threads, block=" << block
            << "\n\n";
  std::cout << "mode                    rows/sec    vs in-mem   scans"
            << "   MB read/pass\n";
  for (const Row& r : rows) {
    std::printf("%-22s %10d   %6.2fx   %5d   %10.2f\n", r.name.c_str(),
                static_cast<int>(r.rows_per_sec), r.rows_per_sec / base,
                static_cast<int>(r.scans),
                static_cast<double>(r.bytes_read) / r.scans /
                    (1024.0 * 1024.0));
  }
  std::cout << "(in_memory bytes are the disk simulation; streamed bytes"
            << " are measured file reads)\n";
  std::cout << "\ntrees bit-identical across all modes: "
            << (identical ? "yes" : "NO — DETERMINISM VIOLATION") << "\n";
  std::cout << "hardware threads on this host: " << hw << "\n";

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"ooc\",\n"
       << "  \"rows\": " << train_n << ",\n"
       << "  \"block_records\": " << block << ",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"deterministic\": " << (identical ? "true" : "false") << ",\n";
  for (const Row& r : rows) {
    json << "  \"" << r.name << "_rows_per_sec\": " << r.rows_per_sec
         << ",\n"
         << "  \"" << r.name << "_bytes_per_pass\": "
         << r.bytes_read / r.scans << ",\n";
  }
  json << "  \"streamed_vs_memory\": " << rows[1].rows_per_sec / base
       << ",\n";
  // Prefetch overlaps I/O with compute on a spare core; without one the
  // ratio is scheduler noise, so it is not a trend signal there.
  if (hw >= 2) {
    json << "  \"prefetch_speedup\": "
         << rows[1].rows_per_sec / rows[2].rows_per_sec << "\n";
  } else {
    json << "  \"prefetch_speedup\": null\n";
  }
  json << "}\n";
  std::cout << "wrote " << json_path << "\n";
  std::remove(table_path.c_str());
  return identical ? 0 : 1;
}
