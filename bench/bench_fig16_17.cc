// Reproduces Figures 16 and 17: CMP vs SPRINT, RainForest and CLOUDS on
// Function 2 (Fig. 16) and Function 7 (Fig. 17) as the training set
// grows. The paper's findings to reproduce:
//   * CMP is ~5x faster than SPRINT;
//   * CLOUDS sits between CMP and SPRINT;
//   * RainForest (RF-Hybrid, 2.5M-entry AVC buffer) slightly outperforms
//     CMP — but only by spending ~20 MB of memory (see Figure 19).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/agrawal.h"
#include "tree/builder.h"

namespace {

using namespace cmp;

void RunFigure(const char* title, AgrawalFunction fn) {
  std::printf("%s\n", title);
  std::printf("%10s %10s %10s %10s %10s   (simulated seconds)\n", "records",
              "CMP", "SPRINT", "RainForest", "CLOUDS");
  const DiskModel disk = bench::Disk();
  for (const int64_t n : bench::RecordSeries()) {
    AgrawalOptions gen;
    gen.function = fn;
    gen.num_records = n;
    gen.seed = 93;
    const Dataset train = GenerateAgrawal(gen);

    std::printf("%10lld", static_cast<long long>(n));
    for (const char* algo : {"cmp", "sprint", "rainforest", "clouds"}) {
      const BuildResult result = MakeTreeBuilder(algo)->Build(train);
      std::printf(" %10.2f", result.stats.SimulatedSeconds(disk));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Figures 16-17: comparison with SPRINT / RainForest / CLOUDS "
      "(scale=%.2f)\n\n",
      cmp::bench::Scale());
  RunFigure("Figure 16: Function 2", AgrawalFunction::kF2);
  RunFigure("Figure 17: Function 7", AgrawalFunction::kF7);
  return 0;
}
