// bench_hist: throughput of the binned scan kernels.
//
// Three questions, answered on one Agrawal-generated table:
//
//  1. Kernel speedup — filling a node's HistBundle through the
//     attribute-major batch kernels (bin-code loads, one histogram hot
//     at a time) vs the record-major Add path (per-record binary search
//     across every attribute). Counts are verified cell-identical before
//     any number is reported.
//  2. Cache amortization — how many histogram passes the one-time
//     bin-code encode costs, i.e. after how many scan passes the cache
//     has paid for itself.
//  3. Sibling subtraction — end-to-end CMP training time with the
//     optimization on vs off, with the byte-identical-trees check that
//     makes the comparison meaningful.
//
// Results go to stdout and BENCH_hist.json (or argv[1]). CMP_BENCH_SCALE
// scales the record count (default 0.1 => 100k rows). Exits nonzero on
// any count or tree mismatch.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cmp/bundle.h"
#include "cmp/cmp.h"
#include "common/cpu_features.h"
#include "common/timer.h"
#include "datagen/agrawal.h"
#include "gini/gini.h"
#include "hist/bin_codes.h"
#include "hist/grids.h"
#include "tree/serialize.h"

namespace {

constexpr size_t kBatch = 512;  // the scan path's batch size

bool SameCells(const cmp::HistBundle& a, const cmp::HistBundle& b,
               int num_attrs) {
  for (cmp::AttrId attr = 0; attr < num_attrs; ++attr) {
    const cmp::Histogram1D ha = a.HistFor(attr);
    const cmp::Histogram1D hb = b.HistFor(attr);
    if (ha.num_intervals() != hb.num_intervals()) return false;
    for (int i = 0; i < ha.num_intervals(); ++i) {
      for (cmp::ClassId c = 0; c < ha.num_classes(); ++c) {
        if (ha.count(i, c) != hb.count(i, c)) return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_hist.json";
  const int64_t n = std::max<int64_t>(
      static_cast<int64_t>(1000000 * cmp::bench::Scale()), 20000);

  cmp::AgrawalOptions gen;
  gen.function = cmp::AgrawalFunction::kF7;
  gen.perturbation = 0.3;
  gen.num_records = n;
  gen.seed = 17;
  const cmp::Dataset train = cmp::GenerateAgrawal(gen);
  const std::vector<cmp::IntervalGrid> grids =
      cmp::ComputeEqualDepthGrids(train, 100, nullptr);

  // --- one-time encode (the cache build the first pass pays) ---------
  cmp::Timer encode_timer;
  cmp::BinCodeCache codes(train.schema(), n, /*max_intervals=*/100);
  for (cmp::AttrId a = 0; a < train.num_attrs(); ++a) {
    if (train.schema().is_numeric(a)) {
      codes.EncodeNumericColumn(a, grids[a], train.numeric_column(a));
    } else {
      codes.EncodeCategoricalColumn(a, train.categorical_column(a));
    }
  }
  codes.SetLabels(train.labels());
  const double encode_seconds = encode_timer.Seconds();

  std::vector<cmp::RecordId> rids(n);
  for (int64_t i = 0; i < n; ++i) rids[i] = i;

  // --- record-major vs kernel accumulation, best of 3 passes each ----
  double record_major_s = 1e30;
  double kernel_s = 1e30;
  cmp::HistBundle serial;
  cmp::HistBundle batched;
  for (int pass = 0; pass < 3; ++pass) {
    serial = cmp::HistBundle::MakeUnivariate(train.schema(), grids);
    cmp::Timer t;
    for (int64_t r = 0; r < n; ++r) serial.Add(train, grids, r);
    record_major_s = std::min(record_major_s, t.Seconds());
  }
  cmp::KernelScratch scratch;
  for (int pass = 0; pass < 3; ++pass) {
    batched = cmp::HistBundle::MakeUnivariate(train.schema(), grids);
    cmp::Timer t;
    for (int64_t i = 0; i < n; i += kBatch) {
      const size_t count =
          static_cast<size_t>(std::min<int64_t>(kBatch, n - i));
      batched.AccumulateBatch(codes, rids.data() + i, count, &scratch);
    }
    kernel_s = std::min(kernel_s, t.Seconds());
  }
  const bool counts_match = SameCells(batched, serial, train.num_attrs());
  const double speedup = record_major_s / kernel_s;

  // --- scalar vs SIMD tiers of the same kernels ----------------------
  // Two batch shapes, because they stress different code paths:
  //  * contiguous — the root pass; every tier does sequential widening
  //    loads and the scattered increment dominates, so this is the
  //    tiers' FLOOR (expect parity, not speedup);
  //  * gapped — ascending rids with holes, the shape every post-root
  //    node sees; the SIMD tiers' vector gathers and index math replace
  //    a serial dependent-load chain, and this is where they earn their
  //    keep.
  // The cells are re-verified against the record-major reference per
  // tier, so a speedup number can never come from a kernel that
  // drifted.
  std::vector<cmp::RecordId> gapped;
  gapped.reserve(n / 2);
  {
    uint64_t state = 0x243F6A8885A308D3ULL;  // fixed: same rids each run
    for (int64_t r = 0; r < n; ++r) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      if ((state & 1) != 0) gapped.push_back(r);
    }
  }
  cmp::HistBundle gapped_serial =
      cmp::HistBundle::MakeUnivariate(train.schema(), grids);
  for (const cmp::RecordId r : gapped) gapped_serial.Add(train, grids, r);

  struct TierRow {
    const char* name;
    double contiguous_s = 1e30;
    double gapped_s = 1e30;
    bool match = false;
  };
  std::vector<TierRow> tiers;
  const cmp::KernelIsa restore = cmp::ActiveKernelIsa();
  for (const cmp::KernelIsa isa :
       {cmp::KernelIsa::kScalar, cmp::KernelIsa::kSse2,
        cmp::KernelIsa::kAvx2}) {
    if (!cmp::SetKernelIsa(isa)) continue;
    TierRow row;
    row.name = cmp::KernelIsaName(isa);
    cmp::HistBundle tier_bundle;
    for (int pass = 0; pass < 5; ++pass) {
      tier_bundle = cmp::HistBundle::MakeUnivariate(train.schema(), grids);
      cmp::Timer t;
      for (int64_t i = 0; i < n; i += kBatch) {
        const size_t count =
            static_cast<size_t>(std::min<int64_t>(kBatch, n - i));
        tier_bundle.AccumulateBatch(codes, rids.data() + i, count,
                                    &scratch);
      }
      row.contiguous_s = std::min(row.contiguous_s, t.Seconds());
    }
    const bool contiguous_ok =
        SameCells(tier_bundle, serial, train.num_attrs());
    const int64_t gn = static_cast<int64_t>(gapped.size());
    for (int pass = 0; pass < 5; ++pass) {
      tier_bundle = cmp::HistBundle::MakeUnivariate(train.schema(), grids);
      cmp::Timer t;
      for (int64_t i = 0; i < gn; i += kBatch) {
        const size_t count =
            static_cast<size_t>(std::min<int64_t>(kBatch, gn - i));
        tier_bundle.AccumulateBatch(codes, gapped.data() + i, count,
                                    &scratch);
      }
      row.gapped_s = std::min(row.gapped_s, t.Seconds());
    }
    row.match = contiguous_ok &&
                SameCells(tier_bundle, gapped_serial, train.num_attrs());
    tiers.push_back(row);
  }
  // --- the gini boundary scan, scalar vs vector tiers ----------------
  // The division-heavy half of the SIMD work: 5 divides per boundary,
  // where 4-wide vdivpd genuinely multiplies throughput (the histogram
  // kernels above are integer-increment-bound, so their tiers converge
  // on the memory system instead). Bit-equality with the scalar scan is
  // re-checked on every tier before its time is reported.
  const int gini_nb = 99;
  const int gini_nc = 2;
  const int gini_nodes = 2000;  // distinct prefix matrices, scanned in turn
  std::vector<int64_t> gini_prefix(
      static_cast<size_t>(gini_nodes) * gini_nb * gini_nc);
  std::vector<int64_t> gini_totals(
      static_cast<size_t>(gini_nodes) * gini_nc);
  {
    uint64_t state = 0x452821E638D01377ULL;
    for (int node = 0; node < gini_nodes; ++node) {
      int64_t acc[2] = {0, 0};
      for (int b = 0; b < gini_nb; ++b) {
        for (int c = 0; c < gini_nc; ++c) {
          state ^= state << 13;
          state ^= state >> 7;
          state ^= state << 17;
          acc[c] += static_cast<int64_t>(state % 9);
          gini_prefix[(static_cast<size_t>(node) * gini_nb + b) * gini_nc +
                      c] = acc[c];
        }
      }
      for (int c = 0; c < gini_nc; ++c) {
        gini_totals[static_cast<size_t>(node) * gini_nc + c] = acc[c] + 3;
      }
    }
  }
  struct GiniRow {
    const char* name;
    double seconds = 1e30;
    bool match = true;
  };
  std::vector<GiniRow> gini_tiers;
  std::vector<double> gini_ref(static_cast<size_t>(gini_nodes) * gini_nb);
  std::vector<double> gini_out(gini_ref.size());
  for (const cmp::KernelIsa isa :
       {cmp::KernelIsa::kScalar, cmp::KernelIsa::kSse2,
        cmp::KernelIsa::kAvx2}) {
    if (!cmp::SetKernelIsa(isa)) continue;
    GiniRow row;
    row.name = cmp::KernelIsaName(isa);
    for (int pass = 0; pass < 5; ++pass) {
      cmp::Timer t;
      for (int node = 0; node < gini_nodes; ++node) {
        cmp::ScanBoundaryGinis(
            gini_prefix.data() +
                static_cast<size_t>(node) * gini_nb * gini_nc,
            gini_nb, gini_nc,
            gini_totals.data() + static_cast<size_t>(node) * gini_nc,
            gini_out.data() + static_cast<size_t>(node) * gini_nb);
      }
      row.seconds = std::min(row.seconds, t.Seconds());
    }
    if (isa == cmp::KernelIsa::kScalar) {
      gini_ref = gini_out;
    } else {
      row.match = gini_out == gini_ref;  // bitwise: operator== on doubles
    }
    gini_tiers.push_back(row);
  }
  const double gini_scalar_s = gini_tiers.front().seconds;
  double gini_best_simd_s = gini_scalar_s;
  for (const GiniRow& row : gini_tiers) {
    gini_best_simd_s = std::min(gini_best_simd_s, row.seconds);
  }
  const double gini_simd_speedup = gini_scalar_s / gini_best_simd_s;
  const bool gini_match =
      std::all_of(gini_tiers.begin(), gini_tiers.end(),
                  [](const GiniRow& r) { return r.match; });

  cmp::SetKernelIsa(restore);
  const double scalar_gapped_s = tiers.front().gapped_s;
  double best_simd_gapped_s = scalar_gapped_s;
  for (const TierRow& row : tiers) {
    best_simd_gapped_s = std::min(best_simd_gapped_s, row.gapped_s);
  }
  const double simd_speedup = scalar_gapped_s / best_simd_gapped_s;
  const bool tiers_match = std::all_of(
      tiers.begin(), tiers.end(), [](const TierRow& r) { return r.match; });
  // Passes until the encode cost is recovered by the per-pass saving.
  const double amortize_passes =
      record_major_s > kernel_s
          ? encode_seconds / (record_major_s - kernel_s)
          : -1.0;

  // --- whole-build effect of sibling subtraction ---------------------
  double train_with_s = 1e30;
  double train_without_s = 1e30;
  std::string tree_with;
  std::string tree_without;
  for (const bool subtract : {true, false}) {
    cmp::CmpOptions o = cmp::CmpFullOptions();
    o.base.prune = false;
    o.sibling_subtraction = subtract;
    double& best = subtract ? train_with_s : train_without_s;
    std::string& bytes = subtract ? tree_with : tree_without;
    for (int pass = 0; pass < 2; ++pass) {
      cmp::CmpBuilder builder(o);
      cmp::Timer t;
      const cmp::BuildResult result = builder.Build(train);
      best = std::min(best, t.Seconds());
      bytes = cmp::SerializeTree(result.tree);
    }
  }
  const bool trees_match = tree_with == tree_without;

  std::cout << "histogram accumulation over " << n << " records, "
            << train.num_attrs() << " attrs, q=100\n\n"
            << "record-major Add:     " << record_major_s << " s\n"
            << "attribute-major kernels: " << kernel_s << " s  ("
            << speedup << "x)\n"
            << "counts cell-identical: " << (counts_match ? "yes" : "NO")
            << "\n\n";
  for (const TierRow& row : tiers) {
    std::cout << "kernel tier " << row.name << ": contiguous "
              << n / row.contiguous_s << " rows/s, gapped "
              << gapped.size() / row.gapped_s << " rows/s ("
              << scalar_gapped_s / row.gapped_s << "x scalar, cells "
              << (row.match ? "ok" : "MISMATCH") << ")\n";
  }
  std::cout << "best SIMD tier vs scalar (gapped): " << simd_speedup
            << "x\n\n";
  const double gini_boundaries =
      static_cast<double>(gini_nodes) * gini_nb;
  for (const GiniRow& row : gini_tiers) {
    std::cout << "gini scan tier " << row.name << ": "
              << gini_boundaries / row.seconds << " boundaries/s ("
              << gini_scalar_s / row.seconds << "x scalar, bits "
              << (row.match ? "ok" : "MISMATCH") << ")\n";
  }
  std::cout << "best SIMD gini scan vs scalar: " << gini_simd_speedup
            << "x\n\n"
            << "bin-code encode: " << encode_seconds << " s, "
            << codes.MemoryBytes() << " bytes resident\n"
            << "encode amortized after " << amortize_passes
            << " scan passes\n\n"
            << "CMP train, subtraction on:  " << train_with_s << " s\n"
            << "CMP train, subtraction off: " << train_without_s << " s  ("
            << train_without_s / train_with_s << "x)\n"
            << "trees byte-identical: "
            << (trees_match ? "yes" : "NO — DETERMINISM VIOLATION") << "\n";

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"hist\",\n"
       << "  \"rows\": " << n << ",\n"
       << "  \"record_major_rows_per_sec\": " << n / record_major_s << ",\n"
       << "  \"kernel_rows_per_sec\": " << n / kernel_s << ",\n"
       << "  \"kernel_speedup\": " << speedup << ",\n"
       << "  \"counts_match\": " << (counts_match ? "true" : "false")
       << ",\n";
  for (const TierRow& row : tiers) {
    json << "  \"" << row.name << "_rows_per_sec\": "
         << n / row.contiguous_s << ",\n"
         << "  \"" << row.name << "_gapped_rows_per_sec\": "
         << gapped.size() / row.gapped_s << ",\n";
  }
  json << "  \"simd_speedup\": " << simd_speedup << ",\n";
  for (const GiniRow& row : gini_tiers) {
    json << "  \"gini_scan_" << row.name << "_boundaries_per_sec\": "
         << gini_boundaries / row.seconds << ",\n";
  }
  json << "  \"gini_simd_speedup\": " << gini_simd_speedup << ",\n"
       << "  \"code_cache_bytes\": " << codes.MemoryBytes() << ",\n"
       << "  \"encode_seconds\": " << encode_seconds << ",\n"
       << "  \"encode_amortize_passes\": " << amortize_passes << ",\n"
       << "  \"train_subtract_seconds\": " << train_with_s << ",\n"
       << "  \"train_no_subtract_seconds\": " << train_without_s << ",\n"
       << "  \"subtract_speedup\": " << train_without_s / train_with_s
       << ",\n"
       << "  \"deterministic\": " << (trees_match ? "true" : "false")
       << "\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return counts_match && trees_match && tiers_match && gini_match ? 0 : 1;
}
