// bench_hist: throughput of the binned scan kernels.
//
// Three questions, answered on one Agrawal-generated table:
//
//  1. Kernel speedup — filling a node's HistBundle through the
//     attribute-major batch kernels (bin-code loads, one histogram hot
//     at a time) vs the record-major Add path (per-record binary search
//     across every attribute). Counts are verified cell-identical before
//     any number is reported.
//  2. Cache amortization — how many histogram passes the one-time
//     bin-code encode costs, i.e. after how many scan passes the cache
//     has paid for itself.
//  3. Sibling subtraction — end-to-end CMP training time with the
//     optimization on vs off, with the byte-identical-trees check that
//     makes the comparison meaningful.
//
// Results go to stdout and BENCH_hist.json (or argv[1]). CMP_BENCH_SCALE
// scales the record count (default 0.1 => 100k rows). Exits nonzero on
// any count or tree mismatch.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cmp/bundle.h"
#include "cmp/cmp.h"
#include "common/timer.h"
#include "datagen/agrawal.h"
#include "hist/bin_codes.h"
#include "hist/grids.h"
#include "tree/serialize.h"

namespace {

constexpr size_t kBatch = 512;  // the scan path's batch size

bool SameCells(const cmp::HistBundle& a, const cmp::HistBundle& b,
               int num_attrs) {
  for (cmp::AttrId attr = 0; attr < num_attrs; ++attr) {
    const cmp::Histogram1D ha = a.HistFor(attr);
    const cmp::Histogram1D hb = b.HistFor(attr);
    if (ha.num_intervals() != hb.num_intervals()) return false;
    for (int i = 0; i < ha.num_intervals(); ++i) {
      for (cmp::ClassId c = 0; c < ha.num_classes(); ++c) {
        if (ha.count(i, c) != hb.count(i, c)) return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_hist.json";
  const int64_t n = std::max<int64_t>(
      static_cast<int64_t>(1000000 * cmp::bench::Scale()), 20000);

  cmp::AgrawalOptions gen;
  gen.function = cmp::AgrawalFunction::kF7;
  gen.perturbation = 0.3;
  gen.num_records = n;
  gen.seed = 17;
  const cmp::Dataset train = cmp::GenerateAgrawal(gen);
  const std::vector<cmp::IntervalGrid> grids =
      cmp::ComputeEqualDepthGrids(train, 100, nullptr);

  // --- one-time encode (the cache build the first pass pays) ---------
  cmp::Timer encode_timer;
  cmp::BinCodeCache codes(train.schema(), n, /*max_intervals=*/100);
  for (cmp::AttrId a = 0; a < train.num_attrs(); ++a) {
    if (train.schema().is_numeric(a)) {
      codes.EncodeNumericColumn(a, grids[a], train.numeric_column(a));
    } else {
      codes.EncodeCategoricalColumn(a, train.categorical_column(a));
    }
  }
  codes.SetLabels(train.labels());
  const double encode_seconds = encode_timer.Seconds();

  std::vector<cmp::RecordId> rids(n);
  for (int64_t i = 0; i < n; ++i) rids[i] = i;

  // --- record-major vs kernel accumulation, best of 3 passes each ----
  double record_major_s = 1e30;
  double kernel_s = 1e30;
  cmp::HistBundle serial;
  cmp::HistBundle batched;
  for (int pass = 0; pass < 3; ++pass) {
    serial = cmp::HistBundle::MakeUnivariate(train.schema(), grids);
    cmp::Timer t;
    for (int64_t r = 0; r < n; ++r) serial.Add(train, grids, r);
    record_major_s = std::min(record_major_s, t.Seconds());
  }
  cmp::KernelScratch scratch;
  for (int pass = 0; pass < 3; ++pass) {
    batched = cmp::HistBundle::MakeUnivariate(train.schema(), grids);
    cmp::Timer t;
    for (int64_t i = 0; i < n; i += kBatch) {
      const size_t count =
          static_cast<size_t>(std::min<int64_t>(kBatch, n - i));
      batched.AccumulateBatch(codes, rids.data() + i, count, &scratch);
    }
    kernel_s = std::min(kernel_s, t.Seconds());
  }
  const bool counts_match = SameCells(batched, serial, train.num_attrs());
  const double speedup = record_major_s / kernel_s;
  // Passes until the encode cost is recovered by the per-pass saving.
  const double amortize_passes =
      record_major_s > kernel_s
          ? encode_seconds / (record_major_s - kernel_s)
          : -1.0;

  // --- whole-build effect of sibling subtraction ---------------------
  double train_with_s = 1e30;
  double train_without_s = 1e30;
  std::string tree_with;
  std::string tree_without;
  for (const bool subtract : {true, false}) {
    cmp::CmpOptions o = cmp::CmpFullOptions();
    o.base.prune = false;
    o.sibling_subtraction = subtract;
    double& best = subtract ? train_with_s : train_without_s;
    std::string& bytes = subtract ? tree_with : tree_without;
    for (int pass = 0; pass < 2; ++pass) {
      cmp::CmpBuilder builder(o);
      cmp::Timer t;
      const cmp::BuildResult result = builder.Build(train);
      best = std::min(best, t.Seconds());
      bytes = cmp::SerializeTree(result.tree);
    }
  }
  const bool trees_match = tree_with == tree_without;

  std::cout << "histogram accumulation over " << n << " records, "
            << train.num_attrs() << " attrs, q=100\n\n"
            << "record-major Add:     " << record_major_s << " s\n"
            << "attribute-major kernels: " << kernel_s << " s  ("
            << speedup << "x)\n"
            << "counts cell-identical: " << (counts_match ? "yes" : "NO")
            << "\n\n"
            << "bin-code encode: " << encode_seconds << " s, "
            << codes.MemoryBytes() << " bytes resident\n"
            << "encode amortized after " << amortize_passes
            << " scan passes\n\n"
            << "CMP train, subtraction on:  " << train_with_s << " s\n"
            << "CMP train, subtraction off: " << train_without_s << " s  ("
            << train_without_s / train_with_s << "x)\n"
            << "trees byte-identical: "
            << (trees_match ? "yes" : "NO — DETERMINISM VIOLATION") << "\n";

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"hist\",\n"
       << "  \"rows\": " << n << ",\n"
       << "  \"record_major_rows_per_sec\": " << n / record_major_s << ",\n"
       << "  \"kernel_rows_per_sec\": " << n / kernel_s << ",\n"
       << "  \"kernel_speedup\": " << speedup << ",\n"
       << "  \"counts_match\": " << (counts_match ? "true" : "false")
       << ",\n"
       << "  \"code_cache_bytes\": " << codes.MemoryBytes() << ",\n"
       << "  \"encode_seconds\": " << encode_seconds << ",\n"
       << "  \"encode_amortize_passes\": " << amortize_passes << ",\n"
       << "  \"train_subtract_seconds\": " << train_with_s << ",\n"
       << "  \"train_no_subtract_seconds\": " << train_without_s << ",\n"
       << "  \"subtract_speedup\": " << train_without_s / train_with_s
       << ",\n"
       << "  \"deterministic\": " << (trees_match ? "true" : "false")
       << "\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return counts_match && trees_match ? 0 : 1;
}
