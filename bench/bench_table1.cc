// Reproduces Table 1: "Splits obtained for different datasets by the
// SPRINT algorithm and the CMP algorithm".
//
// For each dataset (four STATLOG stand-ins plus the two 1M-record
// Agrawal workloads Function 2 and Function 7), an exact algorithm's
// root split (attribute + gini) is compared with CMP-S's root split at
// two interval counts (10/15 for the small datasets, 50/100 for the
// large synthetic ones, as in the paper). The table also reports the
// number of alive intervals CMP kept at the root. A '-' means CMP made
// the same choice as the exact algorithm.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "datagen/statlog.h"
#include "exact/exact.h"
#include "gini/gini.h"
#include "tree/evaluate.h"

namespace {

using namespace cmp;

double RootSplitGini(const Dataset& ds, const Split& split) {
  std::vector<int64_t> left(ds.num_classes(), 0);
  std::vector<int64_t> right(ds.num_classes(), 0);
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    (split.RoutesLeft(ds, r) ? left : right)[ds.label(r)]++;
  }
  return SplitGini(left, right);
}

struct RootInfo {
  bool valid = false;
  AttrId attr = kInvalidAttr;
  double gini = 1.0;
  int64_t alive = 0;
};

RootInfo ExactRoot(const Dataset& ds) {
  BuilderOptions o;
  o.prune = false;
  ExactBuilder builder(o);
  const BuildResult result = builder.Build(ds);
  RootInfo info;
  if (result.tree.node(0).is_leaf) return info;
  info.valid = true;
  info.attr = result.tree.node(0).split.attr;
  info.gini = RootSplitGini(ds, result.tree.node(0).split);
  return info;
}

RootInfo CmpRoot(const Dataset& ds, int intervals) {
  CmpOptions o = CmpSOptions();
  o.intervals = intervals;
  o.base.prune = false;
  o.base.in_memory_threshold = 0;
  CmpBuilder builder(o);
  const BuildResult result = builder.Build(ds);
  RootInfo info;
  if (result.tree.node(0).is_leaf) return info;
  info.valid = true;
  info.attr = result.tree.node(0).split.attr;
  info.gini = RootSplitGini(ds, result.tree.node(0).split);
  info.alive = result.stats.root_alive_intervals;
  return info;
}

void Report(const std::string& name, const Dataset& ds,
            const std::vector<int>& interval_counts) {
  const RootInfo exact = ExactRoot(ds);
  bool first = true;
  for (const int q : interval_counts) {
    const RootInfo approx = CmpRoot(ds, q);
    std::string attr_col = "-";
    std::string gini_col = "-";
    if (!approx.valid || approx.attr != exact.attr) {
      attr_col = approx.valid ? std::to_string(approx.attr) : "(leaf)";
    }
    if (!approx.valid || approx.gini > exact.gini + 1e-9) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6f", approx.gini);
      gini_col = buf;
    }
    if (first) {
      std::printf("%-10s %9lld %6d %10.6f | %9d %6lld %8s %10s\n",
                  name.c_str(), static_cast<long long>(ds.num_records()),
                  exact.attr, exact.gini, q,
                  static_cast<long long>(approx.alive), attr_col.c_str(),
                  gini_col.c_str());
      first = false;
    } else {
      std::printf("%-10s %9s %6s %10s | %9d %6lld %8s %10s\n", "", "", "",
                  "", q, static_cast<long long>(approx.alive),
                  attr_col.c_str(), gini_col.c_str());
    }
  }
}

}  // namespace

int main() {
  const double scale = cmp::bench::Scale();
  std::printf(
      "Table 1: root splits, exact algorithm vs CMP "
      "(scale=%.2f; '-' = same as exact)\n\n",
      scale);
  std::printf("%-10s %9s %6s %10s | %9s %6s %8s %10s\n", "dataset",
              "records", "attr", "gini", "intervals", "alive", "attr",
              "gini");

  for (const StatlogDataset d :
       {StatlogDataset::kLetter, StatlogDataset::kSatimage,
        StatlogDataset::kSegment, StatlogDataset::kShuttle}) {
    StatlogOptions o;
    o.dataset = d;
    // The stand-ins are small; run them at full size regardless of scale
    // except Shuttle, which follows the global scale for speed.
    o.scale = d == StatlogDataset::kShuttle ? std::max(0.2, scale) : 1.0;
    const Dataset ds = GenerateStatlog(o);
    Report(StatlogName(d), ds, {10, 15});
  }

  for (const auto& [fn, name] :
       std::vector<std::pair<AgrawalFunction, std::string>>{
           {AgrawalFunction::kF2, "Function 2"},
           {AgrawalFunction::kF7, "Function 7"}}) {
    AgrawalOptions o;
    o.function = fn;
    o.num_records = static_cast<int64_t>(1000000 * scale);
    o.seed = 4242;
    const Dataset ds = GenerateAgrawal(o);
    Report(name, ds, {50, 100});
  }
  return 0;
}
