// bench_dist: throughput and protocol cost of distributed training.
//
// Trains CMP (full) on an Agrawal-generated .cmpt table single-process
// and with --workers-style DistTrain at K = 1, 2 and 4, reporting
// rows/sec per worker count, wire bytes per pass and coordinator merge
// seconds. Byte-identity of every distributed tree against the
// single-process reference is asserted before anything is reported — a
// throughput number for a different tree would be meaningless.
//
// The bench also cell-verifies the merge itself: the root-pass class
// histograms are rebuilt from per-slice bundles shipped through the
// actual wire serializers (WriteBundleCounts -> ReadBundleCountsInto,
// merged in rank order) and compared cell-for-cell against a
// single-accumulation bundle. The verified cell count lands in the JSON
// so a silently-empty comparison cannot pass as coverage.
//
// Results go to stdout and BENCH_dist.json (or argv[1]).
// CMP_BENCH_SCALE scales the record count (default 0.1 => 100k rows).

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cmp/bundle.h"
#include "cmp/cmp.h"
#include "common/timer.h"
#include "datagen/agrawal.h"
#include "dist/dist.h"
#include "hist/grids.h"
#include "io/table_file.h"
#include "io/wire.h"
#include "tree/observer.h"
#include "tree/serialize.h"

namespace {

// Captures the distributed per-pass metrics DistTrain reports through
// the observer hook.
class DistStats : public cmp::TrainObserver {
 public:
  void OnPass(const cmp::PassObservation& pass) override {
    ++passes_;
    wire_bytes_ += pass.wire_bytes;
    merge_seconds_ += pass.merge_seconds;
  }
  int passes() const { return passes_; }
  int64_t wire_bytes() const { return wire_bytes_; }
  double merge_seconds() const { return merge_seconds_; }

 private:
  int passes_ = 0;
  int64_t wire_bytes_ = 0;
  double merge_seconds_ = 0.0;
};

// Rebuilds the root-pass univariate histograms from K contiguous slices
// shipped through the wire serializers and counts the cells that match
// a single accumulation. Returns -1 on any mismatch.
int64_t CellVerifyRootPass(const cmp::Dataset& ds,
                           const std::vector<cmp::IntervalGrid>& grids,
                           int num_workers) {
  cmp::HistBundle reference =
      cmp::HistBundle::MakeUnivariate(ds.schema(), grids);
  for (cmp::RecordId r = 0; r < ds.num_records(); ++r) {
    reference.Add(ds, grids, r);
  }
  cmp::HistBundle merged = reference.CloneEmptyShape();
  const int64_t n = ds.num_records();
  for (int k = 0; k < num_workers; ++k) {
    const int64_t lo = n * k / num_workers;
    const int64_t hi = n * (k + 1) / num_workers;
    cmp::HistBundle slice = reference.CloneEmptyShape();
    for (cmp::RecordId r = lo; r < hi; ++r) slice.Add(ds, grids, r);
    cmp::wire::WireWriter w;
    cmp::wire::WriteBundleCounts(&w, slice);
    cmp::wire::WireReader r(w.buffer());
    if (!cmp::wire::ReadBundleCountsInto(&r, &merged) || !r.AtEnd()) {
      return -1;
    }
  }
  int64_t cells = 0;
  for (cmp::AttrId a = 0; a < ds.schema().num_attrs(); ++a) {
    const cmp::Histogram1D want = reference.HistFor(a);
    const cmp::Histogram1D got = merged.HistFor(a);
    if (want.num_intervals() != got.num_intervals()) return -1;
    for (int i = 0; i < want.num_intervals(); ++i) {
      for (cmp::ClassId c = 0; c < ds.schema().num_classes(); ++c) {
        if (want.count(i, c) != got.count(i, c)) return -1;
        ++cells;
      }
    }
  }
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_dist.json";
  const int64_t train_n = std::max<int64_t>(
      static_cast<int64_t>(1000000 * cmp::bench::Scale()), 20000);

  cmp::AgrawalOptions gen;
  gen.function = cmp::AgrawalFunction::kF7;
  gen.perturbation = 0.3;
  gen.num_records = train_n;
  gen.seed = 11;
  const cmp::Dataset train = cmp::GenerateAgrawal(gen);
  const std::string table_path = "/tmp/cmp_bench_dist.cmpt";
  if (!cmp::SaveTableFile(train, table_path)) {
    std::cerr << "cannot write " << table_path << "\n";
    return 1;
  }

  cmp::CmpOptions opts = cmp::CmpFullOptions();
  opts.base.prune = false;

  // Single-process reference (the rows/sec baseline and the tree the
  // distributed builds must reproduce byte for byte).
  cmp::Timer single_timer;
  const cmp::BuildResult single = cmp::CmpBuilder(opts).Build(train);
  const double single_rps =
      static_cast<double>(train_n) / single_timer.Seconds();
  const std::string reference = cmp::SerializeTree(single.tree);

  const std::vector<cmp::IntervalGrid> grids =
      cmp::ComputeEqualDepthGrids(train, opts.intervals, nullptr);

  struct Row {
    int workers;
    double rows_per_sec;
    int passes;
    int64_t wire_bytes_per_pass;
    double merge_seconds;
    int64_t verified_cells;
  };
  std::vector<Row> rows;
  bool identical = true;
  for (const int workers : {1, 2, 4}) {
    DistStats stats;
    cmp::CmpOptions o = opts;
    o.base.observer = &stats;
    cmp::dist::DistOptions d;
    d.num_workers = workers;
    cmp::Timer timer;
    cmp::BuildResult result;
    try {
      result = cmp::dist::DistTrain(table_path, o, d);
    } catch (const std::exception& e) {
      std::cerr << "distributed build failed at K=" << workers << ": "
                << e.what() << "\n";
      std::remove(table_path.c_str());
      return 1;
    }
    const double rps = static_cast<double>(train_n) / timer.Seconds();
    if (cmp::SerializeTree(result.tree) != reference) identical = false;
    const int64_t cells = CellVerifyRootPass(train, grids, workers);
    if (cells < 0) identical = false;
    rows.push_back({workers, rps, stats.passes(),
                    stats.passes() > 0 ? stats.wire_bytes() / stats.passes()
                                       : 0,
                    stats.merge_seconds(), cells});
  }
  std::remove(table_path.c_str());

  std::cout << "training " << train_n
            << " records, CMP (full), no prune; single-process baseline "
            << static_cast<int64_t>(single_rps) << " rows/sec\n\n";
  std::cout << "workers   rows/sec     wire KB/pass   merge ms    "
               "verified cells\n";
  for (const Row& r : rows) {
    std::cout << r.workers << "         "
              << static_cast<int64_t>(r.rows_per_sec) << "      "
              << r.wire_bytes_per_pass / 1024.0 << "         "
              << r.merge_seconds * 1e3 << "       " << r.verified_cells
              << "\n";
  }
  std::cout << "\ntrees byte-identical to single-process: "
            << (identical ? "yes" : "NO — DETERMINISM VIOLATION") << "\n";

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"dist\",\n"
       << "  \"rows\": " << train_n << ",\n"
       << "  \"deterministic\": " << (identical ? "true" : "false") << ",\n"
       << "  \"single_process_rows_per_sec\": " << single_rps << ",\n";
  for (const Row& r : rows) {
    json << "  \"dist_w" << r.workers << "_rows_per_sec\": "
         << r.rows_per_sec << ",\n"
         << "  \"dist_w" << r.workers << "_passes\": " << r.passes << ",\n"
         << "  \"dist_w" << r.workers << "_wire_bytes_per_pass\": "
         << r.wire_bytes_per_pass << ",\n"
         << "  \"dist_w" << r.workers << "_merge_seconds\": "
         << r.merge_seconds << ",\n"
         << "  \"dist_w" << r.workers << "_verified_cells\": "
         << r.verified_cells << ",\n";
  }
  json << "  \"root_pass_cell_verified\": " << (identical ? "true" : "false")
       << "\n}\n";
  std::cout << "wrote " << json_path << "\n";
  return identical ? 0 : 1;
}
