#ifndef CMP_DATAGEN_DRIFT_H_
#define CMP_DATAGEN_DRIFT_H_

#include <cstdint>

#include "common/dataset.h"
#include "datagen/agrawal.h"

namespace cmp {

/// A non-stationary variant of the Agrawal generator: the covariate
/// distributions never change, but the labeling concept switches from
/// `before` to `after` at record index `drift_at` (0-based; records
/// [0, drift_at) use `before`, records [drift_at, num_records) use
/// `after`). This is the classic "sudden drift" workload used to
/// exercise incremental refit: a tree trained on the prefix mispredicts
/// the suffix exactly where the two concepts disagree, and regrowing
/// the affected leaves recovers accuracy without retraining the
/// interior.
///
/// Records are drawn with the same RNG call sequence as
/// GenerateAgrawal, so for equal (seed, perturbation) the attribute
/// values of record i are identical to the stationary stream's — only
/// labels after `drift_at` may differ.
struct DriftOptions {
  AgrawalFunction before = AgrawalFunction::kF2;
  AgrawalFunction after = AgrawalFunction::kF7;
  /// First record index labeled by `after`. Values <= 0 mean the whole
  /// stream uses `after`; values >= num_records mean it never drifts.
  int64_t drift_at = 50000;
  int64_t num_records = 100000;
  uint64_t seed = 42;
  double perturbation = 0.0;
};

/// Generates a drifting dataset according to `options`.
Dataset GenerateDriftingAgrawal(const DriftOptions& options);

}  // namespace cmp

#endif  // CMP_DATAGEN_DRIFT_H_
