#include "datagen/loan_example.h"

namespace cmp {

Schema LoanExampleSchema() {
  std::vector<AttrInfo> attrs = {
      {"age", AttrKind::kNumeric, 0},
      {"salary", AttrKind::kNumeric, 0},
      {"commission", AttrKind::kNumeric, 0},
  };
  return Schema(std::move(attrs), {"No", "Yes"});
}

Dataset LoanExampleDataset() {
  Dataset ds(LoanExampleSchema());
  const std::vector<int32_t> no_cats;
  // (age, salary, commission) -> approval, from Figure 1(a).
  ds.Append({18, 20000, 0}, no_cats, 0);
  ds.Append({60, 70000, 20000}, no_cats, 1);
  ds.Append({43, 30000, 1000}, no_cats, 0);
  ds.Append({68, 40000, 26000}, no_cats, 1);
  ds.Append({32, 80000, 0}, no_cats, 1);
  ds.Append({20, 50000, 20000}, no_cats, 0);
  return ds;
}

}  // namespace cmp
