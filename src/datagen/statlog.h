#ifndef CMP_DATAGEN_STATLOG_H_
#define CMP_DATAGEN_STATLOG_H_

#include <cstdint>
#include <string>

#include "common/dataset.h"

namespace cmp {

/// Synthetic stand-ins for the STATLOG datasets used in the paper's
/// Table 1 (Letter, Satimage, Segment, Shuttle).
///
/// Substitution note (see DESIGN.md): the original UCI files are not
/// available offline, and Table 1 only uses them to check that CMP-S's
/// discretized splitter agrees with an exact splitter once >= 15 intervals
/// are used. That is a property of the split-search code path, so we
/// substitute Gaussian-mixture datasets matched to each dataset's record
/// count, attribute count and class count. Each class is a mixture of a
/// few axis-aligned Gaussian clusters, which produces the multi-modal gini
/// curves (Figure 2 of the paper) that exercise alive-interval pruning.
enum class StatlogDataset {
  kLetter,    // 15,000 records, 16 numeric attrs, 26 classes
  kSatimage,  //  4,435 records, 36 numeric attrs,  6 classes
  kSegment,   //  2,310 records, 19 numeric attrs,  7 classes
  kShuttle,   // 43,500 records,  9 numeric attrs,  7 classes
};

struct StatlogOptions {
  StatlogDataset dataset = StatlogDataset::kLetter;
  uint64_t seed = 7;
  /// Scale factor on the record count (1.0 reproduces the paper's sizes).
  double scale = 1.0;
};

/// Human-readable name ("Letter", ...).
std::string StatlogName(StatlogDataset d);

/// Record count / attribute count / class count of the stand-in.
int64_t StatlogRecords(StatlogDataset d);
int32_t StatlogAttrs(StatlogDataset d);
int32_t StatlogClasses(StatlogDataset d);

/// Generates the stand-in dataset.
Dataset GenerateStatlog(const StatlogOptions& options);

}  // namespace cmp

#endif  // CMP_DATAGEN_STATLOG_H_
