#include "datagen/drift.h"

#include "common/random.h"

namespace cmp {

Dataset GenerateDriftingAgrawal(const DriftOptions& options) {
  Dataset ds(AgrawalSchema());
  ds.Reserve(options.num_records);
  Rng rng(options.seed);

  std::vector<double> nvals(6);
  std::vector<int32_t> cvals(3);
  for (int64_t i = 0; i < options.num_records; ++i) {
    const AgrawalFunction active =
        i < options.drift_at ? options.before : options.after;
    const ClassId label = DrawAgrawalRecord(active, options.perturbation,
                                            rng, &nvals, &cvals);
    ds.Append(nvals, cvals, label);
  }
  return ds;
}

}  // namespace cmp
