#include "datagen/statlog.h"

#include <cmath>
#include <vector>

#include "common/random.h"

namespace cmp {

namespace {

struct Spec {
  const char* name;
  int64_t records;
  int32_t attrs;
  int32_t classes;
};

Spec GetSpec(StatlogDataset d) {
  switch (d) {
    case StatlogDataset::kLetter:
      return {"Letter", 15000, 16, 26};
    case StatlogDataset::kSatimage:
      return {"Satimage", 4435, 36, 6};
    case StatlogDataset::kSegment:
      return {"Segment", 2310, 19, 7};
    case StatlogDataset::kShuttle:
      return {"Shuttle", 43500, 9, 7};
  }
  return {"Letter", 15000, 16, 26};
}

}  // namespace

std::string StatlogName(StatlogDataset d) { return GetSpec(d).name; }
int64_t StatlogRecords(StatlogDataset d) { return GetSpec(d).records; }
int32_t StatlogAttrs(StatlogDataset d) { return GetSpec(d).attrs; }
int32_t StatlogClasses(StatlogDataset d) { return GetSpec(d).classes; }

Dataset GenerateStatlog(const StatlogOptions& options) {
  const Spec spec = GetSpec(options.dataset);
  std::vector<AttrInfo> attrs(spec.attrs);
  for (int32_t a = 0; a < spec.attrs; ++a) {
    std::string name = "a";
    name += std::to_string(a);
    attrs[a] = {std::move(name), AttrKind::kNumeric, 0};
  }
  std::vector<std::string> class_names(spec.classes);
  for (int32_t c = 0; c < spec.classes; ++c) {
    std::string name = "c";
    name += std::to_string(c);
    class_names[c] = std::move(name);
  }
  Dataset ds(Schema(std::move(attrs), std::move(class_names)));

  const int64_t n =
      std::max<int64_t>(1, static_cast<int64_t>(
                               std::llround(spec.records * options.scale)));
  ds.Reserve(n);
  Rng rng(options.seed);

  // Per (class, attribute): a mixture of 1-3 Gaussian clusters. Cluster
  // means spread over [0, 100]; only a subset of attributes is
  // discriminative per class so that attribute selection is non-trivial
  // (mirrors real STATLOG data where a handful of bands/features carry
  // most of the signal).
  const int kMaxClusters = 3;
  struct Component {
    double mean[kMaxClusters];
    double sd[kMaxClusters];
    int k;
    bool informative;
  };
  Rng layout_rng(options.seed ^ 0xC0FFEE);
  std::vector<Component> comps(
      static_cast<size_t>(spec.classes) * spec.attrs);
  for (int32_t c = 0; c < spec.classes; ++c) {
    for (int32_t a = 0; a < spec.attrs; ++a) {
      Component& comp = comps[static_cast<size_t>(c) * spec.attrs + a];
      comp.informative = layout_rng.UniformDouble() < 0.5;
      comp.k = 1 + static_cast<int>(layout_rng.UniformInt(0, kMaxClusters - 1));
      for (int j = 0; j < comp.k; ++j) {
        if (comp.informative) {
          comp.mean[j] = layout_rng.Uniform(0.0, 100.0);
          comp.sd[j] = layout_rng.Uniform(2.0, 8.0);
        } else {
          // Uninformative attribute: same broad distribution regardless
          // of class.
          comp.mean[j] = 50.0;
          comp.sd[j] = 25.0;
        }
      }
    }
  }

  // Class priors: skewed like the real datasets (Shuttle in particular is
  // dominated by one class).
  std::vector<double> priors(spec.classes);
  double total_prior = 0.0;
  for (int32_t c = 0; c < spec.classes; ++c) {
    priors[c] = options.dataset == StatlogDataset::kShuttle && c == 0
                    ? 10.0 * spec.classes
                    : layout_rng.Uniform(0.5, 1.5);
    total_prior += priors[c];
  }

  std::vector<double> nvals(spec.attrs);
  const std::vector<int32_t> no_cats;
  for (int64_t i = 0; i < n; ++i) {
    double pick = rng.Uniform(0.0, total_prior);
    ClassId label = spec.classes - 1;
    for (int32_t c = 0; c < spec.classes; ++c) {
      pick -= priors[c];
      if (pick <= 0.0) {
        label = c;
        break;
      }
    }
    for (int32_t a = 0; a < spec.attrs; ++a) {
      const Component& comp =
          comps[static_cast<size_t>(label) * spec.attrs + a];
      const int j = static_cast<int>(rng.UniformInt(0, comp.k - 1));
      nvals[a] = rng.Gaussian(comp.mean[j], comp.sd[j]);
    }
    ds.Append(nvals, no_cats, label);
  }
  return ds;
}

}  // namespace cmp
