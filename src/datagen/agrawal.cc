#include "datagen/agrawal.h"

#include <algorithm>
#include <cmath>

namespace cmp {

namespace {

// Group A is class 0, group B is class 1.
constexpr ClassId kGroupA = 0;
constexpr ClassId kGroupB = 1;

bool Between(double v, double lo, double hi) { return v >= lo && v <= hi; }

// Disposable-income style helpers used by F7..F10.
double Equity(double hvalue, double hyears) {
  return hyears >= 20.0 ? hvalue * (hyears - 20.0) / 10.0 : 0.0;
}

}  // namespace

Schema AgrawalSchema() {
  std::vector<AttrInfo> attrs = {
      {"salary", AttrKind::kNumeric, 0},
      {"commission", AttrKind::kNumeric, 0},
      {"age", AttrKind::kNumeric, 0},
      {"elevel", AttrKind::kCategorical, 5},
      {"car", AttrKind::kCategorical, 20},
      {"zipcode", AttrKind::kCategorical, 9},
      {"hvalue", AttrKind::kNumeric, 0},
      {"hyears", AttrKind::kNumeric, 0},
      {"loan", AttrKind::kNumeric, 0},
  };
  return Schema(std::move(attrs), {"A", "B"});
}

ClassId AgrawalGroundTruth(AgrawalFunction function, double salary,
                           double commission, double age, int32_t elevel,
                           int32_t /*car*/, int32_t /*zipcode*/,
                           double hvalue, double hyears, double loan) {
  const double total = salary + commission;
  switch (function) {
    case AgrawalFunction::kF1:
      return (age < 40.0 || age >= 60.0) ? kGroupA : kGroupB;
    case AgrawalFunction::kF2: {
      const bool a = (age < 40.0 && Between(salary, 50000, 100000)) ||
                     (age >= 40.0 && age < 60.0 &&
                      Between(salary, 75000, 125000)) ||
                     (age >= 60.0 && Between(salary, 25000, 75000));
      return a ? kGroupA : kGroupB;
    }
    case AgrawalFunction::kF3: {
      const bool a = (age < 40.0 && (elevel == 0 || elevel == 1)) ||
                     (age >= 40.0 && age < 60.0 && elevel >= 1 &&
                      elevel <= 3) ||
                     (age >= 60.0 && elevel >= 2 && elevel <= 4);
      return a ? kGroupA : kGroupB;
    }
    case AgrawalFunction::kF4: {
      bool a;
      if (age < 40.0) {
        a = (elevel == 0 || elevel == 1) ? Between(salary, 25000, 75000)
                                         : Between(salary, 50000, 100000);
      } else if (age < 60.0) {
        a = (elevel >= 1 && elevel <= 3) ? Between(salary, 50000, 100000)
                                         : Between(salary, 75000, 125000);
      } else {
        a = (elevel >= 2 && elevel <= 4) ? Between(salary, 50000, 100000)
                                         : Between(salary, 25000, 75000);
      }
      return a ? kGroupA : kGroupB;
    }
    case AgrawalFunction::kF5: {
      bool a;
      if (age < 40.0) {
        a = Between(salary, 50000, 100000) ? Between(loan, 100000, 300000)
                                           : Between(loan, 200000, 400000);
      } else if (age < 60.0) {
        a = Between(salary, 75000, 125000) ? Between(loan, 200000, 400000)
                                           : Between(loan, 300000, 500000);
      } else {
        a = Between(salary, 25000, 75000) ? Between(loan, 300000, 500000)
                                          : Between(loan, 100000, 300000);
      }
      return a ? kGroupA : kGroupB;
    }
    case AgrawalFunction::kF6: {
      const bool a = (age < 40.0 && Between(total, 50000, 100000)) ||
                     (age >= 40.0 && age < 60.0 &&
                      Between(total, 75000, 125000)) ||
                     (age >= 60.0 && Between(total, 25000, 75000));
      return a ? kGroupA : kGroupB;
    }
    case AgrawalFunction::kF7:
      return (2.0 * total / 3.0 - loan / 5.0 - 20000.0) > 0.0 ? kGroupA
                                                              : kGroupB;
    case AgrawalFunction::kF8:
      return (2.0 * total / 3.0 - 5000.0 * elevel - 20000.0) > 0.0 ? kGroupA
                                                                   : kGroupB;
    case AgrawalFunction::kF9:
      return (2.0 * total / 3.0 - 5000.0 * elevel - loan / 5.0 - 10000.0) >
                     0.0
                 ? kGroupA
                 : kGroupB;
    case AgrawalFunction::kF10: {
      const double equity = Equity(hvalue, hyears);
      return (2.0 * total / 3.0 - 5000.0 * elevel + equity / 5.0 -
              10000.0) > 0.0
                 ? kGroupA
                 : kGroupB;
    }
    case AgrawalFunction::kFunctionF:
      return (age >= 40.0 && total >= 100000.0) ? kGroupA : kGroupB;
  }
  return kGroupB;
}

ClassId DrawAgrawalRecord(AgrawalFunction function, double perturbation,
                          Rng& rng, std::vector<double>* nvals,
                          std::vector<int32_t>* cvals) {
  const double salary = rng.Uniform(20000.0, 150000.0);
  const double commission =
      salary >= 75000.0 ? 0.0 : rng.Uniform(10000.0, 75000.0);
  const double age = rng.Uniform(20.0, 80.0);
  const int32_t elevel = static_cast<int32_t>(rng.UniformInt(0, 4));
  const int32_t car = static_cast<int32_t>(rng.UniformInt(0, 19));
  const int32_t zipcode = static_cast<int32_t>(rng.UniformInt(0, 8));
  const double k = static_cast<double>(9 - zipcode);
  const double hvalue = rng.Uniform(0.5 * k, 1.5 * k) * 100000.0;
  const double hyears = rng.Uniform(1.0, 30.0);
  const double loan = rng.Uniform(0.0, 500000.0);

  const ClassId label = AgrawalGroundTruth(function, salary, commission, age,
                                           elevel, car, zipcode, hvalue,
                                           hyears, loan);

  auto perturb = [&](double v, double lo, double hi) {
    if (perturbation <= 0.0) return v;
    const double range = hi - lo;
    const double p = perturbation;
    return std::clamp(v + rng.Uniform(-p, p) * range, lo, hi);
  };
  (*nvals)[0] = perturb(salary, 20000.0, 150000.0);
  (*nvals)[1] =
      commission == 0.0 ? 0.0 : perturb(commission, 10000.0, 75000.0);
  (*nvals)[2] = perturb(age, 20.0, 80.0);
  (*nvals)[3] = perturb(hvalue, 0.0, 1350000.0);
  (*nvals)[4] = perturb(hyears, 1.0, 30.0);
  (*nvals)[5] = perturb(loan, 0.0, 500000.0);
  (*cvals)[0] = elevel;
  (*cvals)[1] = car;
  (*cvals)[2] = zipcode;
  return label;
}

Dataset GenerateAgrawal(const AgrawalOptions& options) {
  Dataset ds(AgrawalSchema());
  ds.Reserve(options.num_records);
  Rng rng(options.seed);

  std::vector<double> nvals(6);
  std::vector<int32_t> cvals(3);
  for (int64_t i = 0; i < options.num_records; ++i) {
    const ClassId label = DrawAgrawalRecord(options.function,
                                            options.perturbation, rng, &nvals,
                                            &cvals);
    ds.Append(nvals, cvals, label);
  }
  return ds;
}

}  // namespace cmp
