#ifndef CMP_DATAGEN_LOAN_EXAMPLE_H_
#define CMP_DATAGEN_LOAN_EXAMPLE_H_

#include "common/dataset.h"

namespace cmp {

/// The six-record loan-application example from Figure 1 of the paper
/// (attributes age, salary, commission; classes Yes / No). Used by the
/// quickstart example and by unit tests as a tiny, hand-checkable input.
Dataset LoanExampleDataset();

/// Schema of the loan example (3 numeric attributes, classes {No, Yes}).
Schema LoanExampleSchema();

}  // namespace cmp

#endif  // CMP_DATAGEN_LOAN_EXAMPLE_H_
