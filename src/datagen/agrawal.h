#ifndef CMP_DATAGEN_AGRAWAL_H_
#define CMP_DATAGEN_AGRAWAL_H_

#include <cstdint>

#include "common/dataset.h"
#include "common/random.h"

namespace cmp {

/// Reimplementation of the synthetic classification benchmark of
/// Agrawal, Imielinski & Swami (TKDE 1993), the workload used by SLIQ,
/// SPRINT, CLOUDS, RainForest and the CMP paper ("Function 2",
/// "Function 7", ...). Each record describes a loan applicant with nine
/// attributes; ten predicate functions assign one of two groups (A / B).
///
/// Attribute distributions (as in the original paper and its common open
/// reimplementations):
///   salary      numeric      uniform [20,000 .. 150,000]
///   commission  numeric      0 if salary >= 75,000, else uniform
///               [10,000 .. 75,000]
///   age         numeric      uniform [20 .. 80]
///   elevel      categorical  uniform {0..4}
///   car         categorical  uniform {1..20} stored as {0..19}
///   zipcode     categorical  uniform {0..8}
///   hvalue      numeric      uniform [0.5*k .. 1.5*k] * 100,000 where
///               k = 9 - zipcode (house values depend on the zipcode)
///   hyears      numeric      uniform [1 .. 30]
///   loan        numeric      uniform [0 .. 500,000]
///
/// Functions F1..F10 follow the original definitions; kFunctionF is the
/// CMP paper's linearly-correlated example
///   f: (age >= 40) && (salary + commission >= 100,000).
enum class AgrawalFunction {
  kF1 = 1,
  kF2 = 2,
  kF3 = 3,
  kF4 = 4,
  kF5 = 5,
  kF6 = 6,
  kF7 = 7,
  kF8 = 8,
  kF9 = 9,
  kF10 = 10,
  /// The CMP paper's "Function f" (Section 2.3).
  kFunctionF = 11,
};

/// Options for the generator.
struct AgrawalOptions {
  AgrawalFunction function = AgrawalFunction::kF2;
  int64_t num_records = 100000;
  uint64_t seed = 42;
  /// Fraction by which numeric attribute values are randomly perturbed
  /// after the label is assigned (the original generator's noise knob).
  /// 0 disables perturbation.
  double perturbation = 0.0;
};

/// Schema shared by every Agrawal function (9 attributes, classes A/B).
Schema AgrawalSchema();

/// Generates a dataset according to `options`.
Dataset GenerateAgrawal(const AgrawalOptions& options);

/// Draws one applicant from `rng`, labels it with `function`, applies
/// `perturbation` noise, and writes the record in schema order
/// (`nvals` sized 6, `cvals` sized 3). The single record-draw shared by
/// GenerateAgrawal and the drifting generator (datagen/drift.h):
/// identical RNG call order, so the stationary generator's output is
/// unchanged and a drifting stream differs from the stationary one only
/// in the labels after the shift point.
ClassId DrawAgrawalRecord(AgrawalFunction function, double perturbation,
                          Rng& rng, std::vector<double>* nvals,
                          std::vector<int32_t>* cvals);

/// The ground-truth group for one applicant; exposed so tests can verify
/// both the generator and trained trees against the true concept.
/// `elevel` in [0,4], `car` in [0,19], `zipcode` in [0,8].
ClassId AgrawalGroundTruth(AgrawalFunction function, double salary,
                           double commission, double age, int32_t elevel,
                           int32_t car, int32_t zipcode, double hvalue,
                           double hyears, double loan);

}  // namespace cmp

#endif  // CMP_DATAGEN_AGRAWAL_H_
