#include "clouds/clouds.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "common/class_counts.h"
#include "common/timer.h"
#include "exact/exact.h"
#include "gini/categorical.h"
#include "gini/estimator.h"
#include "gini/gini.h"
#include "hist/grids.h"
#include "hist/histogram1d.h"
#include "io/scan.h"
#include "pruning/mdl.h"
#include "tree/observer.h"

namespace cmp {

namespace {

// An interval that survived estimation pruning and must be examined
// point by point during the second pass.
struct AliveRange {
  AttrId attr = kInvalidAttr;
  int interval = -1;
};

// Per-active-node construction state.
struct CloudsNode {
  NodeId node = kInvalidNode;
  int depth = 0;
  int64_t records = 0;
  // One histogram per attribute: interval rows for numeric attributes,
  // value rows for categorical ones.
  std::vector<Histogram1D> hists;
  // Second-pass state.
  std::vector<AliveRange> alive;
  // Collected (value, class) pairs per alive range, filled by pass 2.
  std::vector<std::vector<std::pair<double, ClassId>>> alive_points;
  // Best-so-far split from boundaries / categorical subsets.
  ExactSplit best;
  // Exact per-class counts of the records routed left by `best`.
  std::vector<int64_t> best_left_counts;
};

int64_t HistMemory(const CloudsNode& cn) {
  int64_t bytes = 0;
  for (const Histogram1D& h : cn.hists) bytes += h.MemoryBytes();
  return bytes;
}

}  // namespace

BuildResult CloudsBuilder::Build(const Dataset& train) {
  BuildResult result;
  ScanTracker tracker(&result.stats);
  Timer timer;

  const Schema& schema = train.schema();
  const int nc = schema.num_classes();
  const int64_t n = train.num_records();
  result.tree = DecisionTree(schema);

  TreeNode root;
  root.depth = 0;
  root.class_counts = train.ClassCounts();
  root.leaf_class = Majority(root.class_counts);
  const NodeId root_id = result.tree.AddNode(std::move(root));
  TrainObserver* const observer = options_.base.observer;
  if (observer != nullptr) observer->OnBuildStart(name(), n);
  if (n == 0) {
    result.stats.wall_seconds = timer.Seconds();
    if (observer != nullptr) observer->OnBuildEnd(result.stats);
    return result;
  }

  const std::vector<IntervalGrid> grids =
      ComputeEqualDepthGrids(train, options_.intervals, &tracker);

  // nid[r]: the node record r currently belongs to. Splits decided at
  // level d are applied while scanning for level d+1.
  std::vector<NodeId> nid(n, root_id);
  tracker.ChargeWrite(n * static_cast<int64_t>(sizeof(NodeId)));

  auto make_hists = [&](CloudsNode* cn) {
    cn->hists = MakeAttrHistograms(schema, grids, nc);
  };

  // Nodes whose records will be collected for the in-memory finisher.
  struct CollectNode {
    NodeId node;
    std::vector<RecordId> rids;
  };

  std::vector<CloudsNode> active;
  std::vector<CollectNode> collect;
  {
    CloudsNode root_cn;
    root_cn.node = root_id;
    root_cn.depth = 0;
    root_cn.records = n;
    make_hists(&root_cn);
    if (options_.base.in_memory_threshold > 0 &&
        n <= options_.base.in_memory_threshold) {
      collect.push_back({root_id, {}});
    } else {
      active.push_back(std::move(root_cn));
    }
  }

  int pass_index = 0;
  while (!active.empty() || !collect.empty()) {
    PassObservation po;
    po.pass = pass_index++;
    po.records_scanned = n;
    po.frontier_fresh = static_cast<int64_t>(active.size());
    po.frontier_collect = static_cast<int64_t>(collect.size());
    const int64_t bytes_before = result.stats.bytes_read;
    Timer pass_timer;
    // ---- Pass 1 of the level: route one split down, fill histograms,
    // and collect rids of small partitions. The nid array is swapped
    // from and to disk per scan, as in the paper.
    tracker.ChargeScan(train);
    tracker.ChargeWrite(n * static_cast<int64_t>(sizeof(NodeId)));
    std::vector<int> node_slot(result.tree.num_nodes(), -1);
    for (size_t i = 0; i < active.size(); ++i) {
      node_slot[active[i].node] = static_cast<int>(i);
    }
    std::vector<int> collect_slot(result.tree.num_nodes(), -1);
    for (size_t i = 0; i < collect.size(); ++i) {
      collect_slot[collect[i].node] = static_cast<int>(i);
    }

    int64_t hist_bytes = 0;
    for (const CloudsNode& cn : active) hist_bytes += HistMemory(cn);
    tracker.NotePeakMemory(hist_bytes + GridsMemoryBytes(grids) +
                           n * static_cast<int64_t>(sizeof(NodeId)));

    for (RecordId r = 0; r < n; ++r) {
      NodeId id = nid[r];
      if (!result.tree.node(id).is_leaf &&
          result.tree.node(id).left != kInvalidNode) {
        const TreeNode& tn = result.tree.node(id);
        id = tn.split.RoutesLeft(train, r) ? tn.left : tn.right;
        nid[r] = id;
      }
      const int slot = id < static_cast<NodeId>(node_slot.size())
                           ? node_slot[id]
                           : -1;
      if (slot >= 0) {
        CloudsNode& cn = active[slot];
        for (AttrId a = 0; a < schema.num_attrs(); ++a) {
          const int row = schema.is_numeric(a)
                              ? grids[a].IntervalOf(train.numeric(a, r))
                              : train.categorical(a, r);
          cn.hists[a].Add(row, train.label(r));
        }
        continue;
      }
      const int cslot = id < static_cast<NodeId>(collect_slot.size())
                            ? collect_slot[id]
                            : -1;
      if (cslot >= 0) collect[cslot].rids.push_back(r);
    }

    // Finish small partitions entirely in memory.
    for (CollectNode& cn : collect) {
      tracker.ChargeBuffered(static_cast<int64_t>(cn.rids.size()));
      BuildExactSubtree(train, cn.rids, options_.base, &result.tree, cn.node,
                        &tracker);
    }
    collect.clear();

    // ---- Analysis: boundary ginis, estimates, alive intervals.
    bool any_alive = false;
    for (CloudsNode& cn : active) {
      cn.best.valid = false;
      cn.best.gini = std::numeric_limits<double>::infinity();
      double gini_min = std::numeric_limits<double>::infinity();
      std::vector<std::pair<AttrId, AttrAnalysis>> analyses;
      for (AttrId a = 0; a < schema.num_attrs(); ++a) {
        if (schema.is_numeric(a)) {
          AttrAnalysis an = AnalyzeAttribute(cn.hists[a]);
          if (an.best_boundary >= 0 && an.gini_min < cn.best.gini) {
            cn.best.gini = an.gini_min;
            cn.best.split =
                Split::Numeric(a, grids[a].UpperCut(an.best_boundary));
            cn.best.valid = true;
            // Intervals 0..best_boundary inclusive go left.
            cn.best_left_counts =
                cn.hists[a].PrefixBefore(an.best_boundary + 1);
          }
          gini_min = std::min(gini_min, an.gini_min);
          analyses.emplace_back(a, std::move(an));
        } else {
          const CategoricalSplit cs = BestCategoricalSplit(cn.hists[a]);
          if (cs.valid && cs.gini < cn.best.gini) {
            cn.best.gini = cs.gini;
            cn.best.split = Split::Categorical(a, cs.left_subset);
            cn.best.valid = true;
            cn.best_left_counts.assign(nc, 0);
            const Histogram1D& h = cn.hists[a];
            for (int v = 0; v < h.num_intervals(); ++v) {
              if (cs.left_subset[v] != 0) {
                for (ClassId c = 0; c < nc; ++c) {
                  cn.best_left_counts[c] += h.count(v, c);
                }
              }
            }
          }
          gini_min = std::min(gini_min, cs.valid ? cs.gini : 1.0);
        }
      }
      // Alive intervals: every interval (on any numeric attribute) whose
      // estimate beats the global boundary/categorical minimum.
      cn.alive.clear();
      for (const auto& [a, an] : analyses) {
        for (int i = 0; i < static_cast<int>(an.interval_est.size()); ++i) {
          if (an.interval_est[i] < gini_min - 1e-12) {
            cn.alive.push_back({a, i});
          }
        }
      }
      cn.alive_points.assign(cn.alive.size(), {});
      if (!cn.alive.empty()) any_alive = true;
    }

    // ---- Pass 2 of the level (CLOUDS' extra pass): evaluate the gini at
    // every distinct point inside alive intervals.
    if (any_alive) {
      tracker.ChargeScan(train);
      for (RecordId r = 0; r < n; ++r) {
        const NodeId id = nid[r];
        const int slot = id < static_cast<NodeId>(node_slot.size())
                             ? node_slot[id]
                             : -1;
        if (slot < 0) continue;
        CloudsNode& cn = active[slot];
        for (size_t k = 0; k < cn.alive.size(); ++k) {
          const AliveRange& ar = cn.alive[k];
          const double v = train.numeric(ar.attr, r);
          if (grids[ar.attr].IntervalOf(v) == ar.interval) {
            cn.alive_points[k].emplace_back(v, train.label(r));
          }
        }
      }
      for (CloudsNode& cn : active) {
        for (size_t k = 0; k < cn.alive.size(); ++k) {
          auto& points = cn.alive_points[k];
          if (points.empty()) continue;
          tracker.ChargeBuffered(static_cast<int64_t>(points.size()));
          tracker.ChargeSort(static_cast<int64_t>(points.size()));
          std::sort(points.begin(), points.end());
          const AttrId a = cn.alive[k].attr;
          // Below-counts at the interval's left edge.
          std::vector<int64_t> below =
              cn.hists[a].PrefixBefore(cn.alive[k].interval);
          const std::vector<int64_t>& totals =
              result.tree.node(cn.node).class_counts;
          for (size_t i = 0; i + 1 < points.size(); ++i) {
            below[points[i].second]++;
            if (points[i].first == points[i + 1].first) continue;
            const double g = BoundaryGini(below, totals);
            if (g < cn.best.gini) {
              cn.best.gini = g;
              cn.best.split = Split::Numeric(a, points[i].first);
              cn.best.valid = true;
              cn.best_left_counts = below;
            }
          }
          points.clear();
        }
      }
    }

    // ---- Split decisions.
    std::vector<CloudsNode> next;
    for (CloudsNode& cn : active) {
      const NodeId node_id = cn.node;
      const std::vector<int64_t> counts =
          result.tree.node(node_id).class_counts;
      const bool stop =
          IsPure(counts) || cn.records < options_.base.min_split_records ||
          cn.depth >= options_.base.max_depth ||
          (options_.base.prune &&
           ShouldPruneBeforeExpand(counts, schema.num_attrs())) ||
          !cn.best.valid || cn.best.gini >= Gini(counts) - 1e-12;
      if (stop) {
        result.tree.mutable_node(node_id).is_leaf = true;
        continue;
      }

      // Children class counts are exact: every accepted split carries the
      // per-class counts of its left side (boundary prefix, categorical
      // subset sum, or the pass-2 below-count snapshot).
      const std::vector<int64_t>& left_counts = cn.best_left_counts;
      std::vector<int64_t> right_counts(nc);
      int64_t left_n = 0;
      int64_t right_n = 0;
      for (ClassId c = 0; c < nc; ++c) {
        right_counts[c] = counts[c] - left_counts[c];
        left_n += left_counts[c];
        right_n += right_counts[c];
      }
      if (left_n == 0 || right_n == 0) {
        result.tree.mutable_node(node_id).is_leaf = true;
        continue;
      }

      TreeNode left;
      left.depth = cn.depth + 1;
      left.class_counts = left_counts;
      left.leaf_class = Majority(left_counts);
      TreeNode right;
      right.depth = cn.depth + 1;
      right.class_counts = right_counts;
      right.leaf_class = Majority(right_counts);
      const NodeId left_id = result.tree.AddNode(std::move(left));
      const NodeId right_id = result.tree.AddNode(std::move(right));
      TreeNode& parent = result.tree.mutable_node(node_id);
      parent.is_leaf = false;
      parent.split = cn.best.split;
      parent.left = left_id;
      parent.right = right_id;

      auto enqueue = [&](NodeId child, int64_t child_n) {
        if (options_.base.in_memory_threshold > 0 &&
            child_n <= options_.base.in_memory_threshold) {
          collect.push_back({child, {}});
        } else {
          CloudsNode child_cn;
          child_cn.node = child;
          child_cn.depth = cn.depth + 1;
          child_cn.records = child_n;
          make_hists(&child_cn);
          next.push_back(std::move(child_cn));
        }
      };
      enqueue(left_id, left_n);
      enqueue(right_id, right_n);
    }
    active = std::move(next);

    po.scan_seconds = pass_timer.Seconds();
    po.bytes_read = result.stats.bytes_read - bytes_before;
    po.tree_nodes = result.tree.num_nodes();
    if (observer != nullptr) observer->OnPass(po);
  }

  if (options_.base.prune) PruneTreeMdl(&result.tree);
  result.stats.tree_nodes = result.tree.num_nodes();
  result.stats.tree_depth = result.tree.Depth();
  result.stats.wall_seconds = timer.Seconds();
  if (observer != nullptr) observer->OnBuildEnd(result.stats);
  return result;
}

}  // namespace cmp
