#ifndef CMP_CLOUDS_CLOUDS_H_
#define CMP_CLOUDS_CLOUDS_H_

#include <string>

#include "tree/builder.h"

namespace cmp {

/// Options specific to CLOUDS.
struct CloudsOptions {
  BuilderOptions base;
  /// Number of equal-depth intervals per numeric attribute.
  int intervals = 100;
};

/// Reimplementation of CLOUDS (Alsabti, Ranka & Singh, KDD 1998) in its
/// SSE variant ("sampling the splitting points with estimation"), the
/// approximate baseline the CMP paper builds on.
///
/// Per level, CLOUDS (1) scans the data once to build per-attribute
/// interval class histograms, (2) computes the exact gini at every
/// interval boundary and a gradient-based lower bound inside every
/// interval, (3) prunes intervals that cannot beat the boundary minimum,
/// and (4) makes a SECOND full pass to evaluate the gini at every
/// distinct point inside the surviving ("alive") intervals, guaranteeing
/// the exact split point. That second pass per level is precisely the
/// cost CMP-S eliminates by deferring the exact search to the next scan.
class CloudsBuilder : public TreeBuilder {
 public:
  explicit CloudsBuilder(CloudsOptions options = {}) : options_(options) {}

  BuildResult Build(const Dataset& train) override;
  std::string name() const override { return "CLOUDS"; }

 private:
  CloudsOptions options_;
};

}  // namespace cmp

#endif  // CMP_CLOUDS_CLOUDS_H_
