#include "boost/boost.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cmp/cmp.h"
#include "tree/observer.h"

namespace cmp {

namespace {

double Sigmoid(double v) { return 1.0 / (1.0 + std::exp(-v)); }

// Deterministic largest-remainder apportionment of `m` resample slots
// proportionally to `w` (all non-negative). Returns per-index repeat
// counts summing to exactly `m`, or an empty vector when the weights sum
// to zero. Fractional-part ties (and the defensive over-floor path) break
// toward the lower index, so the resample is a pure function of the
// weights — no RNG, same result on every host and thread count.
std::vector<int64_t> ApportionCounts(const std::vector<double>& w, int64_t m) {
  double total = 0.0;
  for (double v : w) total += v;
  if (!(total > 0.0)) return {};
  const size_t n = w.size();
  std::vector<int64_t> counts(n, 0);
  std::vector<std::pair<double, int64_t>> frac(n);
  int64_t used = 0;
  for (size_t i = 0; i < n; ++i) {
    const double exact = w[i] / total * static_cast<double>(m);
    const int64_t base = static_cast<int64_t>(std::floor(exact));
    counts[i] = base;
    used += base;
    frac[i] = {exact - static_cast<double>(base), static_cast<int64_t>(i)};
  }
  std::sort(frac.begin(), frac.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  int64_t extra = m - used;
  for (size_t k = 0; extra > 0 && k < n; ++k, --extra) {
    counts[frac[k].second]++;
  }
  // Floating-point round-up can (in principle) make the floors overshoot;
  // give slots back starting from the smallest fractional parts.
  for (size_t k = n; extra < 0 && k-- > 0;) {
    if (counts[frac[k].second] > 0) {
      counts[frac[k].second]--;
      ++extra;
    }
  }
  return counts;
}

// Sums the per-pass timing fields of each weak build so boost can report
// one PassObservation per round through the caller's observer.
class WeakPassCollector : public TrainObserver {
 public:
  void OnPass(const PassObservation& pass) override {
    scan_seconds += pass.scan_seconds;
    plan_seconds += pass.plan_seconds;
    finish_seconds += pass.finish_seconds;
    kernel_seconds += pass.kernel_seconds;
    bytes_read += pass.bytes_read;
    code_cache_bytes = std::max(code_cache_bytes, pass.code_cache_bytes);
    sibling_subtractions += pass.sibling_subtractions;
  }

  double scan_seconds = 0.0;
  double plan_seconds = 0.0;
  double finish_seconds = 0.0;
  double kernel_seconds = 0.0;
  int64_t bytes_read = 0;
  int64_t code_cache_bytes = 0;
  int64_t sibling_subtractions = 0;
};

int64_t EncodeLeafCount(double v) {
  const double r = BoostBuilder::kLeafValueRange;
  const double clamped = std::clamp(v, -r, r);
  const double s = static_cast<double>(BoostBuilder::kLeafValueScale);
  const int64_t c = std::llround((clamped + r) / (2.0 * r) * s);
  return std::clamp<int64_t>(c, 0, BoostBuilder::kLeafValueScale);
}

}  // namespace

double BoostBuilder::DecodeLeafValue(int64_t count0, int64_t count1) {
  const double total = static_cast<double>(count0 + count1);
  if (!(total > 0.0)) return 0.0;
  const double frac = static_cast<double>(count1) / total;
  return (frac * 2.0 - 1.0) * kLeafValueRange;
}

BuildResult BoostBuilder::Build(const Dataset& train) {
  const auto wall_start = std::chrono::steady_clock::now();
  if (train.num_classes() != 2) {
    throw std::invalid_argument(
        "boost requires a binary problem (got " +
        std::to_string(train.num_classes()) + " classes)");
  }
  const int64_t n = train.num_records();
  if (n < 2) {
    throw std::invalid_argument("boost requires at least 2 records");
  }
  TrainObserver* observer = options_.base.observer;
  if (observer != nullptr) observer->OnBuildStart(name(), n);

  const double holdout_frac = std::clamp(options_.boost.holdout, 0.0, 0.9);
  int64_t holdout_n =
      static_cast<int64_t>(static_cast<double>(n) * holdout_frac);
  if (n - holdout_n < 1) holdout_n = n - 1;
  const int64_t train_n = n - holdout_n;

  // Additive score per record, over the WHOLE input: training records
  // drive the residuals, holdout records only the early-stop loss.
  std::vector<double> y(n);
  for (RecordId r = 0; r < n; ++r) y[r] = train.label(r) == 1 ? 1.0 : 0.0;
  int64_t pos = 0;
  for (RecordId r = 0; r < train_n; ++r) pos += train.label(r) == 1 ? 1 : 0;
  // Smoothed base rate keeps F0 finite on one-class training sets.
  const double p1 = (static_cast<double>(pos) + 0.5) /
                    (static_cast<double>(train_n) + 1.0);
  const double f0 = std::log(p1 / (1.0 - p1));
  std::vector<double> f(n, f0);

  BuildResult result;
  BuildStats& agg = result.stats;
  std::vector<double> weights(train_n);
  std::vector<RecordId> sample;
  double best_loss = std::numeric_limits<double>::infinity();
  int best_round = -1;
  int since_best = 0;
  const int rounds = std::max(1, options_.boost.rounds);

  for (int round = 0; round < rounds; ++round) {
    // 1. Residual weights on the training portion.
    for (RecordId r = 0; r < train_n; ++r) {
      weights[r] = std::abs(y[r] - Sigmoid(f[r]));
    }
    const std::vector<int64_t> counts = ApportionCounts(weights, train_n);
    if (counts.empty()) break;  // fully saturated fit: nothing left to learn
    sample.clear();
    sample.reserve(train_n);
    for (RecordId r = 0; r < train_n; ++r) {
      for (int64_t k = 0; k < counts[r]; ++k) sample.push_back(r);
    }

    // 2. Weak learner: depth-capped, unpruned CMP-B on the resample.
    CmpOptions weak_options = CmpBOptions();
    weak_options.base = options_.base;
    weak_options.base.max_depth = options_.boost.weak_depth;
    weak_options.base.prune = false;
    WeakPassCollector weak_passes;
    weak_options.base.observer = &weak_passes;
    weak_options.intervals = options_.intervals;
    BuildResult weak = CmpBuilder(weak_options).Build(train.Subset(sample));

    // 3. Newton leaf values from the UNWEIGHTED training records.
    std::vector<double> numer(weak.tree.num_nodes(), 0.0);
    std::vector<double> denom(weak.tree.num_nodes(), 0.0);
    std::vector<NodeId> leaf_of(n);
    for (RecordId r = 0; r < n; ++r) {
      leaf_of[r] = weak.tree.LeafOf(train, r);
      if (r < train_n) {
        const double p = Sigmoid(f[r]);
        numer[leaf_of[r]] += y[r] - p;
        denom[leaf_of[r]] += p * (1.0 - p);
      }
    }
    std::vector<double> update(weak.tree.num_nodes(), 0.0);
    for (NodeId id = 0; id < weak.tree.num_nodes(); ++id) {
      if (!weak.tree.node(id).is_leaf) continue;
      const double gamma =
          denom[id] > 1e-12 ? std::clamp(numer[id] / denom[id], -4.0, 4.0)
                            : 0.0;
      update[id] = options_.boost.shrinkage * gamma;
    }
    for (RecordId r = 0; r < n; ++r) f[r] += update[leaf_of[r]];

    // 4. Store the stage: leaf values (plus F0 in round 0) encoded as
    // pseudo class counts; round 0 keeps the weak learner's majority
    // classes so result.tree stands alone as a classifier.
    DecisionTree stage = std::move(weak.tree);
    for (NodeId id = 0; id < stage.num_nodes(); ++id) {
      TreeNode& node = stage.mutable_node(id);
      if (!node.is_leaf) continue;
      const int64_t c1 =
          EncodeLeafCount(update[id] + (round == 0 ? f0 : 0.0));
      node.class_counts = {kLeafValueScale - c1, c1};
      if (round > 0) node.leaf_class = 2 * c1 >= kLeafValueScale ? 1 : 0;
    }
    result.forest.push_back(std::move(stage));

    // Aggregate cost counters and report the round as one pass.
    agg.dataset_scans += weak.stats.dataset_scans;
    agg.records_read += weak.stats.records_read;
    agg.bytes_read += weak.stats.bytes_read;
    agg.bytes_written += weak.stats.bytes_written;
    agg.buffered_records += weak.stats.buffered_records;
    agg.sort_comparisons += weak.stats.sort_comparisons;
    agg.peak_memory_bytes =
        std::max(agg.peak_memory_bytes, weak.stats.peak_memory_bytes);
    agg.tree_nodes += result.forest.back().num_nodes();
    agg.tree_depth =
        std::max<int64_t>(agg.tree_depth, result.forest.back().Depth());
    if (observer != nullptr) {
      PassObservation pass;
      pass.pass = round;
      pass.scan_seconds = weak_passes.scan_seconds;
      pass.plan_seconds = weak_passes.plan_seconds;
      pass.finish_seconds = weak_passes.finish_seconds;
      pass.kernel_seconds = weak_passes.kernel_seconds;
      pass.bytes_read = weak_passes.bytes_read;
      pass.code_cache_bytes = weak_passes.code_cache_bytes;
      pass.sibling_subtractions = weak_passes.sibling_subtractions;
      pass.records_scanned = train_n;
      pass.tree_nodes = agg.tree_nodes;
      observer->OnPass(pass);
    }

    // 5. Deterministic early stopping on holdout log-loss.
    if (holdout_n > 0) {
      double loss = 0.0;
      for (RecordId r = train_n; r < n; ++r) {
        const double p =
            std::clamp(Sigmoid(f[r]), 1e-12, 1.0 - 1e-12);
        loss -= y[r] > 0.5 ? std::log(p) : std::log(1.0 - p);
      }
      if (loss < best_loss - 1e-12) {
        best_loss = loss;
        best_round = round;
        since_best = 0;
      } else if (++since_best >= std::max(1, options_.boost.patience)) {
        break;
      }
    }
  }

  if (result.forest.empty()) {
    // Unreachable in practice (round-0 weights are strictly positive),
    // but a structurally valid single-leaf model beats a crash.
    DecisionTree leaf_tree(train.schema());
    TreeNode leaf;
    leaf.leaf_class = p1 >= 0.5 ? 1 : 0;
    const int64_t c1 = EncodeLeafCount(f0);
    leaf.class_counts = {kLeafValueScale - c1, c1};
    leaf_tree.AddNode(std::move(leaf));
    result.forest.push_back(std::move(leaf_tree));
    best_round = 0;
  }
  if (holdout_n > 0 && best_round >= 0) {
    result.forest.resize(static_cast<size_t>(best_round) + 1);
  }
  result.tree = result.forest.front();

  agg.tree_nodes = 0;
  agg.tree_depth = 0;
  for (const DecisionTree& t : result.forest) {
    agg.tree_nodes += t.num_nodes();
    agg.tree_depth = std::max<int64_t>(agg.tree_depth, t.Depth());
  }
  agg.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  if (observer != nullptr) observer->OnBuildEnd(agg);
  return result;
}

}  // namespace cmp
