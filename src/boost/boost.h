#ifndef CMP_BOOST_BOOST_H_
#define CMP_BOOST_BOOST_H_

#include <cstdint>
#include <string>

#include "tree/builder.h"

namespace cmp {

/// Options of the gradient-boosted CMP meta-builder.
struct BoostOptions {
  BuilderOptions base;
  /// Interval budget of each weak CMP-B build.
  int intervals = 100;
  /// Boosting knobs (same defaults as BoostConfig in tree/builder.h).
  BoostConfig boost;
};

/// Gradient-boosted CMP trees for BINARY problems (two classes; any
/// other class count throws std::invalid_argument from Build, which
/// cmptool maps to its training-failure exit code).
///
/// Each round fits a depth-capped, unpruned CMP-B tree as the weak
/// learner and turns it into one stage of an additive logistic model
/// F(x) = sum of leaf values:
///
///  1. p_i = sigmoid(F(x_i)); residual r_i = y_i - p_i.
///  2. The weak tree is trained on a |r_i|-weighted resample of the
///     training records (deterministic largest-remainder apportionment,
///     ties to the lower record id — no RNG anywhere, so the whole
///     build inherits CMP's bit-identical-across-threads contract).
///  3. Each leaf gets the Newton step gamma = sum(r_i) / sum(p_i(1-p_i))
///     over the training records reaching it, clipped to +-4, times the
///     shrinkage. The intercept F0 = log-odds of the training base rate
///     is folded into the first round's leaf values.
///  4. A deterministic tail holdout (the LAST holdout fraction of the
///     input, never resampled into training) tracks log-loss; after
///     `patience` rounds without improvement the build stops and the
///     ensemble is truncated to the best round.
///
/// Member trees are ordinary DecisionTrees: each leaf's value v is
/// encoded in its class_counts as {S - c, c} with
/// c = round((v + R) / 2R * S), so the per-tree probability of class 1
/// is an affine function of v and EnsemblePredictor's kAverageProb vote
/// (infer/ensemble.h) reproduces sign(sum v) — scoring a saved boost
/// forest needs no new inference code, and the .cmpb / cmpserve path
/// works unchanged. The first tree keeps the weak learner's majority
/// leaf classes, so BuildResult::tree classifies sensibly on its own.
class BoostBuilder : public TreeBuilder {
 public:
  /// Leaf-value encoding constants (R and S above). R bounds |v|: the
  /// Newton step is clipped to 4 and |F0| <= log(2n+1), so values are
  /// clamped into +-R before quantization; S fixes the quantization at
  /// 2R / S ~ 2e-6 per tree.
  static constexpr double kLeafValueRange = 16.0;
  static constexpr int64_t kLeafValueScale = int64_t{1} << 24;

  explicit BoostBuilder(BoostOptions options = {}) : options_(options) {}

  BuildResult Build(const Dataset& train) override;

  std::string name() const override { return "Boost"; }

  /// Decodes a leaf's class_counts back to its additive value (inverse
  /// of the encoding above; exposed for tests).
  static double DecodeLeafValue(int64_t count0, int64_t count1);

 private:
  BoostOptions options_;
};

}  // namespace cmp

#endif  // CMP_BOOST_BOOST_H_
