#ifndef CMP_SPRINT_SPRINT_H_
#define CMP_SPRINT_SPRINT_H_

#include <string>

#include "tree/builder.h"

namespace cmp {

/// Options specific to SPRINT.
struct SprintOptions {
  BuilderOptions base;
  /// Bytes of memory the (simulated) host grants SPRINT before attribute
  /// lists spill; only affects the peak-memory accounting, mirroring the
  /// paper's note that SPRINT swap to disk bounds its resident set.
  int64_t memory_cap_bytes = 64ll * 1024 * 1024;
};

/// Reimplementation of SPRINT (Shafer, Agrawal & Mehta, VLDB 1996), the
/// exact baseline of the paper's Figures 16-19.
///
/// Each numeric attribute is pre-sorted once into an attribute list of
/// (value, class, rid) entries. At every node the exact gini index is
/// evaluated at each distinct value boundary of every attribute; the node
/// is split on the globally best test. A rid -> child hash table built
/// from the winning attribute's list partitions every other list while
/// preserving sort order, so no re-sorting is ever needed. Attribute
/// lists are materialized structures: creating and moving them is charged
/// as writes, visiting them as reads — that traffic is exactly why the
/// paper finds CMP ~5x faster.
class SprintBuilder : public TreeBuilder {
 public:
  explicit SprintBuilder(SprintOptions options = {}) : options_(options) {}

  BuildResult Build(const Dataset& train) override;
  std::string name() const override { return "SPRINT"; }

 private:
  SprintOptions options_;
};

}  // namespace cmp

#endif  // CMP_SPRINT_SPRINT_H_
