#include "sprint/sprint.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "common/class_counts.h"
#include "common/timer.h"
#include "exact/exact.h"
#include "gini/categorical.h"
#include "gini/gini.h"
#include "hist/attr_sort.h"
#include "hist/histogram1d.h"
#include "io/scan.h"
#include "pruning/mdl.h"
#include "tree/observer.h"

namespace cmp {

namespace {

// One attribute-list entry: attribute value (categorical values are
// stored as their integer code), class label, and record id.
struct Entry {
  double value;
  ClassId cls;
  RecordId rid;
};

constexpr int64_t kEntryBytes = 20;  // 8 value + 4 class + 8 rid on disk

// All attribute lists of one unfinished tree node.
struct NodeLists {
  NodeId node = kInvalidNode;
  int depth = 0;
  // lists[a] is sorted ascending by value for numeric attributes and in
  // arbitrary (original) order for categorical ones.
  std::vector<std::vector<Entry>> lists;

  int64_t NumRecords() const {
    return lists.empty() ? 0 : static_cast<int64_t>(lists[0].size());
  }
  int64_t TotalBytes() const {
    int64_t bytes = 0;
    for (const auto& l : lists) {
      bytes += static_cast<int64_t>(l.size()) * kEntryBytes;
    }
    return bytes;
  }
};

std::vector<int64_t> CountClassesFromList(const std::vector<Entry>& list,
                                          int num_classes) {
  std::vector<int64_t> counts(num_classes, 0);
  for (const Entry& e : list) counts[e.cls]++;
  return counts;
}

// Exact best split of one node from its attribute lists.
ExactSplit BestSplitFromLists(const NodeLists& node, const Schema& schema,
                              const std::vector<int64_t>& totals) {
  ExactSplit best;
  best.gini = std::numeric_limits<double>::infinity();
  const int nc = static_cast<int>(totals.size());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    const std::vector<Entry>& list = node.lists[a];
    if (schema.is_numeric(a)) {
      std::vector<int64_t> below(nc, 0);
      for (size_t i = 0; i + 1 < list.size(); ++i) {
        below[list[i].cls]++;
        if (list[i].value == list[i + 1].value) continue;
        const double g = BoundaryGini(below, totals);
        if (g < best.gini) {
          best.gini = g;
          best.split = Split::Numeric(a, list[i].value);
          best.valid = true;
        }
      }
    } else {
      const int card = schema.attr(a).cardinality;
      Histogram1D hist(card, nc);
      for (const Entry& e : list) {
        hist.Add(static_cast<int>(e.value), e.cls);
      }
      const CategoricalSplit cs = BestCategoricalSplit(hist);
      if (cs.valid && cs.gini < best.gini) {
        best.gini = cs.gini;
        best.split = Split::Categorical(a, cs.left_subset);
        best.valid = true;
      }
    }
  }
  return best;
}

}  // namespace

BuildResult SprintBuilder::Build(const Dataset& train) {
  BuildResult result;
  ScanTracker tracker(&result.stats);
  Timer timer;

  const Schema& schema = train.schema();
  const int nc = schema.num_classes();
  const int64_t n = train.num_records();
  result.tree = DecisionTree(schema);
  TrainObserver* const observer = options_.base.observer;
  if (observer != nullptr) observer->OnBuildStart(name(), n);
  if (n == 0) {
    TreeNode root;
    root.class_counts.assign(nc, 0);
    root.leaf_class = 0;
    result.tree.AddNode(std::move(root));
    result.stats.wall_seconds = timer.Seconds();
    if (observer != nullptr) observer->OnBuildEnd(result.stats);
    return result;
  }

  // --- Pre-sort phase: one scan builds all attribute lists; numeric
  // lists are sorted once and the sorted order is preserved forever.
  tracker.ChargeScan(train);
  NodeLists root_lists;
  root_lists.lists.resize(schema.num_attrs());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    auto& list = root_lists.lists[a];
    if (schema.is_numeric(a)) {
      BuildSortedAttrList(
          train.numeric_column(a),
          [&train](double v, RecordId r) {
            return Entry{v, train.label(r), r};
          },
          &tracker, &list);
    } else {
      const auto& col = train.categorical_column(a);
      list.resize(n);
      for (RecordId r = 0; r < n; ++r) {
        list[r] = Entry{static_cast<double>(col[r]), train.label(r), r};
      }
    }
  }
  tracker.ChargeWrite(root_lists.TotalBytes());  // lists are materialized

  TreeNode root;
  root.depth = 0;
  root.class_counts = train.ClassCounts();
  root.leaf_class = Majority(root.class_counts);
  root_lists.node = result.tree.AddNode(std::move(root));

  // rid -> goes-left flag, rebuilt per split (SPRINT's hash table).
  std::vector<uint8_t> goes_left(n, 0);
  const int64_t hash_bytes = n;  // 1 byte per record

  std::vector<NodeLists> active;
  active.push_back(std::move(root_lists));

  int pass_index = 0;
  while (!active.empty()) {
    PassObservation po;
    po.pass = pass_index++;
    po.records_scanned = n;
    po.frontier_fresh = static_cast<int64_t>(active.size());
    const int64_t bytes_before = result.stats.bytes_read;
    Timer pass_timer;

    // Per-level accounting: every active node's lists are re-read, and
    // partitioned lists are re-written.
    int64_t level_bytes = 0;
    for (const NodeLists& nl : active) level_bytes += nl.TotalBytes();
    if (tracker.stats() != nullptr) {
      tracker.stats()->dataset_scans += 1;
      tracker.stats()->bytes_read += level_bytes;
      tracker.stats()->records_read += n;
    }
    tracker.NotePeakMemory(
        std::min(level_bytes + hash_bytes, options_.memory_cap_bytes));

    std::vector<NodeLists> next;
    for (NodeLists& nl : active) {
      const NodeId node_id = nl.node;
      const std::vector<int64_t> counts =
          result.tree.node(node_id).class_counts;
      const int64_t records = nl.NumRecords();

      const bool stop = IsPure(counts) ||
                        records < options_.base.min_split_records ||
                        nl.depth >= options_.base.max_depth ||
                        (options_.base.prune &&
                         ShouldPruneBeforeExpand(counts, schema.num_attrs()));
      if (stop) {
        result.tree.mutable_node(node_id).is_leaf = true;
        continue;
      }

      // In-memory switch: small partitions are finished exactly without
      // further attribute-list traffic.
      if (options_.base.in_memory_threshold > 0 &&
          records <= options_.base.in_memory_threshold) {
        std::vector<RecordId> rids;
        rids.reserve(records);
        for (const Entry& e : nl.lists[0]) rids.push_back(e.rid);
        BuildExactSubtree(train, rids, options_.base, &result.tree, node_id,
                          &tracker);
        continue;
      }

      const ExactSplit best = BestSplitFromLists(nl, schema, counts);
      if (!best.valid || best.gini >= Gini(counts) - 1e-12) {
        result.tree.mutable_node(node_id).is_leaf = true;
        continue;
      }

      // Fill the rid hash table from the winning attribute's list, then
      // partition every list, preserving order.
      int64_t left_n = 0;
      for (const Entry& e : nl.lists[best.split.attr]) {
        bool left;
        if (best.split.kind == Split::Kind::kNumeric) {
          left = e.value <= best.split.threshold;
        } else {
          const auto v = static_cast<size_t>(e.value);
          left = v < best.split.left_subset.size() &&
                 best.split.left_subset[v] != 0;
        }
        goes_left[e.rid] = left ? 1 : 0;
        left_n += left ? 1 : 0;
      }
      if (left_n == 0 || left_n == records) {
        result.tree.mutable_node(node_id).is_leaf = true;
        continue;
      }

      NodeLists left_nl;
      NodeLists right_nl;
      left_nl.depth = right_nl.depth = nl.depth + 1;
      left_nl.lists.resize(schema.num_attrs());
      right_nl.lists.resize(schema.num_attrs());
      for (AttrId a = 0; a < schema.num_attrs(); ++a) {
        left_nl.lists[a].reserve(left_n);
        right_nl.lists[a].reserve(records - left_n);
        for (const Entry& e : nl.lists[a]) {
          (goes_left[e.rid] ? left_nl.lists[a] : right_nl.lists[a])
              .push_back(e);
        }
        nl.lists[a].clear();
        nl.lists[a].shrink_to_fit();
      }
      tracker.ChargeWrite(left_nl.TotalBytes() + right_nl.TotalBytes());

      TreeNode left;
      left.depth = left_nl.depth;
      left.class_counts = CountClassesFromList(left_nl.lists[0], nc);
      left.leaf_class = Majority(left.class_counts);
      TreeNode right;
      right.depth = right_nl.depth;
      right.class_counts = CountClassesFromList(right_nl.lists[0], nc);
      right.leaf_class = Majority(right.class_counts);

      left_nl.node = result.tree.AddNode(std::move(left));
      right_nl.node = result.tree.AddNode(std::move(right));
      TreeNode& parent = result.tree.mutable_node(node_id);
      parent.is_leaf = false;
      parent.split = best.split;
      parent.left = left_nl.node;
      parent.right = right_nl.node;

      next.push_back(std::move(left_nl));
      next.push_back(std::move(right_nl));
    }
    active = std::move(next);

    po.scan_seconds = pass_timer.Seconds();
    po.bytes_read = result.stats.bytes_read - bytes_before;
    po.tree_nodes = result.tree.num_nodes();
    if (observer != nullptr) observer->OnPass(po);
  }

  if (options_.base.prune) PruneTreeMdl(&result.tree);
  result.stats.tree_nodes = result.tree.num_nodes();
  result.stats.tree_depth = result.tree.Depth();
  result.stats.wall_seconds = timer.Seconds();
  if (observer != nullptr) observer->OnBuildEnd(result.stats);
  return result;
}

}  // namespace cmp
