#include "sampling/windowing.h"

#include <algorithm>

#include "common/random.h"
#include "common/timer.h"
#include "io/scan.h"

namespace cmp {

namespace {

// Uniform sample of `k` record ids out of `n` (partial Fisher-Yates).
std::vector<RecordId> SampleIds(int64_t n, int64_t k, Rng* rng) {
  std::vector<RecordId> ids(n);
  for (int64_t i = 0; i < n; ++i) ids[i] = i;
  k = std::min(k, n);
  for (int64_t i = 0; i < k; ++i) {
    const int64_t j = rng->UniformInt(i, n - 1);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(k);
  return ids;
}

}  // namespace

BuildResult WindowingBuilder::Build(const Dataset& train) {
  BuildResult result;
  ScanTracker tracker(&result.stats);
  Timer timer;

  const int64_t n = train.num_records();
  Rng rng(options_.seed);
  const int64_t initial =
      std::max<int64_t>(1, static_cast<int64_t>(n * options_.initial_fraction));
  const int64_t growth =
      std::max<int64_t>(1, static_cast<int64_t>(n * options_.growth_fraction));

  // The window: record ids currently used for training, plus a
  // membership bitmap so misclassified records are not added twice.
  std::vector<RecordId> window = SampleIds(n, initial, &rng);
  std::vector<uint8_t> in_window(n, 0);
  for (RecordId r : window) in_window[r] = 1;
  tracker.ChargeScan(train);  // drawing the sample reads the data once

  for (int iteration = 0; iteration < options_.max_iterations; ++iteration) {
    const Dataset window_ds = train.Subset(window);
    BuildResult inner = inner_->Build(window_ds);
    result.tree = std::move(inner.tree);
    result.stats.Accumulate(inner.stats);

    // Classify the FULL training set to find misclassified records (one
    // scan per iteration — windowing's hidden cost).
    tracker.ChargeScan(train);
    std::vector<RecordId> misses;
    for (RecordId r = 0; r < n; ++r) {
      if (result.tree.Classify(train, r) != train.label(r)) {
        misses.push_back(r);
      }
    }
    const double error =
        static_cast<double>(misses.size()) / static_cast<double>(n);
    if (error <= options_.target_error ||
        iteration + 1 == options_.max_iterations) {
      break;
    }
    // Augment the window with (up to `growth`) misclassified records,
    // uniformly chosen.
    int64_t added = 0;
    for (size_t i = misses.size(); i > 1; --i) {
      std::swap(misses[i - 1], misses[rng.UniformInt(0, i - 1)]);
    }
    for (RecordId r : misses) {
      if (added >= growth) break;
      if (in_window[r] != 0) continue;
      in_window[r] = 1;
      window.push_back(r);
      ++added;
    }
    if (added == 0) break;  // window saturated
  }

  result.stats.tree_nodes = result.tree.num_nodes();
  result.stats.tree_depth = result.tree.Depth();
  result.stats.wall_seconds = timer.Seconds();
  return result;
}

BuildResult SampledBuilder::Build(const Dataset& train) {
  BuildResult result;
  ScanTracker tracker(&result.stats);
  Timer timer;

  Rng rng(seed_);
  const int64_t k = std::max<int64_t>(
      1, static_cast<int64_t>(train.num_records() * fraction_));
  const std::vector<RecordId> ids = SampleIds(train.num_records(), k, &rng);
  tracker.ChargeScan(train);  // drawing the sample
  const Dataset sample = train.Subset(ids);
  BuildResult inner = inner_->Build(sample);
  result.tree = std::move(inner.tree);
  result.stats.Accumulate(inner.stats);
  result.stats.tree_nodes = result.tree.num_nodes();
  result.stats.tree_depth = result.tree.Depth();
  result.stats.wall_seconds = timer.Seconds();
  return result;
}

}  // namespace cmp
