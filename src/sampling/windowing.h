#ifndef CMP_SAMPLING_WINDOWING_H_
#define CMP_SAMPLING_WINDOWING_H_

#include <cstdint>
#include <memory>
#include <string>

#include "tree/builder.h"

namespace cmp {

/// Options for the windowing meta-builder.
struct WindowingOptions {
  /// Initial window size as a fraction of the training set.
  double initial_fraction = 0.1;
  /// Maximum records added to the window per iteration, as a fraction of
  /// the training set.
  double growth_fraction = 0.05;
  /// Iteration cap.
  int max_iterations = 8;
  /// Stop early once the tree misclassifies at most this fraction of the
  /// full training set.
  double target_error = 0.005;
  uint64_t seed = 1;
};

/// The windowing technique the paper describes in its background section
/// (Section 1.1): train on a small sample ("window"), classify the full
/// training set, add (a bounded number of) misclassified records to the
/// window, and repeat. An approximate meta-strategy: it trades accuracy
/// for fewer records visited per tree build — exactly the trade-off CMP
/// is designed to avoid. Included so the approximate-vs-exact comparison
/// the paper draws can be reproduced locally.
///
/// The wrapped `inner` builder trains each window; it is owned by this
/// object. Scans of the full dataset for misclassification checks are
/// charged to the returned stats.
class WindowingBuilder : public TreeBuilder {
 public:
  WindowingBuilder(std::unique_ptr<TreeBuilder> inner,
                   WindowingOptions options = {})
      : inner_(std::move(inner)), options_(options) {}

  BuildResult Build(const Dataset& train) override;
  std::string name() const override {
    return "Windowing(" + inner_->name() + ")";
  }

 private:
  std::unique_ptr<TreeBuilder> inner_;
  WindowingOptions options_;
};

/// Plain one-shot random-sample trainer: train the inner builder on a
/// uniform sample of the given fraction. The cheapest approximate
/// baseline ("sampling" in the paper's taxonomy).
class SampledBuilder : public TreeBuilder {
 public:
  SampledBuilder(std::unique_ptr<TreeBuilder> inner, double fraction,
                 uint64_t seed = 1)
      : inner_(std::move(inner)), fraction_(fraction), seed_(seed) {}

  BuildResult Build(const Dataset& train) override;
  std::string name() const override {
    return "Sampled(" + inner_->name() + ")";
  }

 private:
  std::unique_ptr<TreeBuilder> inner_;
  double fraction_;
  uint64_t seed_;
};

}  // namespace cmp

#endif  // CMP_SAMPLING_WINDOWING_H_
