#include "hist/histogram1d.h"

#include <cassert>

namespace cmp {

int64_t Histogram1D::IntervalTotal(int i) const {
  int64_t total = 0;
  const int64_t* r = row(i);
  for (int c = 0; c < num_classes_; ++c) total += r[c];
  return total;
}

std::vector<int64_t> Histogram1D::ClassTotals() const {
  std::vector<int64_t> totals(num_classes_, 0);
  for (int i = 0; i < num_intervals_; ++i) {
    const int64_t* r = row(i);
    for (int c = 0; c < num_classes_; ++c) totals[c] += r[c];
  }
  return totals;
}

int64_t Histogram1D::Total() const {
  int64_t total = 0;
  for (int64_t v : counts_) total += v;
  return total;
}

void Histogram1D::Merge(const Histogram1D& other) {
  assert(num_intervals_ == other.num_intervals_ &&
         num_classes_ == other.num_classes_);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

void Histogram1D::Subtract(const Histogram1D& other) {
  assert(num_intervals_ == other.num_intervals_ &&
         num_classes_ == other.num_classes_);
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] -= other.counts_[i];
    assert(counts_[i] >= 0);
  }
}

std::vector<int64_t> Histogram1D::PrefixBefore(int i) const {
  std::vector<int64_t> prefix(num_classes_, 0);
  for (int j = 0; j < i; ++j) {
    const int64_t* r = row(j);
    for (int c = 0; c < num_classes_; ++c) prefix[c] += r[c];
  }
  return prefix;
}

}  // namespace cmp
