#ifndef CMP_HIST_QUANTILES_H_
#define CMP_HIST_QUANTILES_H_

#include <vector>

#include "common/types.h"

namespace cmp {

/// Equal-depth (quantile) discretization of one numeric attribute.
///
/// The grid stores the `q-1` cut values b_1 < b_2 < ... < b_{q-1} that
/// divide the attribute's domain into `q` intervals of approximately equal
/// record count. Interval `i` covers (b_i, b_{i+1}] with b_0 = -inf and
/// b_q = +inf, so a candidate split `a <= b_i` separates intervals
/// [0, i) from [i, q). Duplicate cut values (heavy ties in the data)
/// are collapsed, so the actual interval count can be lower than
/// requested; callers must use num_intervals().
class IntervalGrid {
 public:
  IntervalGrid() = default;

  /// Builds an equal-depth grid with (at most) `q` intervals from the
  /// attribute values. `values` is copied and sorted internally. The
  /// observed min/max are recorded as the grid's domain bounds.
  static IntervalGrid EqualDepth(const std::vector<double>& values, int q);

  /// Same as EqualDepth, but `sorted` must already be in ascending
  /// order. Lets a caller that needs the sorted column for other work
  /// too (e.g. marking interior-splittable intervals) pay for one sort
  /// instead of two. The grid is identical to EqualDepth on the same
  /// multiset of values.
  static IntervalGrid EqualDepthFromSorted(const std::vector<double>& sorted,
                                           int q);

  /// Builds an equal-width grid: `q` intervals of identical value span
  /// across [min, max] (the paper's other discretization option; cheaper
  /// to build — no sort — but skewed data piles into few intervals).
  static IntervalGrid EqualWidth(const std::vector<double>& values, int q);

  /// EqualWidth over a column already in ascending order (min/max are
  /// the ends, no extra scan).
  static IntervalGrid EqualWidthFromSorted(const std::vector<double>& sorted,
                                           int q);

  /// Builds a grid from explicit, strictly increasing cut values and
  /// domain bounds (defaulting to the first/last cut).
  static IntervalGrid FromBoundaries(std::vector<double> boundaries,
                                     double min_value = 0.0,
                                     double max_value = 0.0);

  int num_intervals() const {
    return static_cast<int>(boundaries_.size()) + 1;
  }

  /// Index of the interval containing `v`, in [0, num_intervals()).
  int IntervalOf(double v) const;

  /// The cut value at the *upper* edge of interval `i`; only valid for
  /// i < num_intervals()-1 (the last interval is unbounded above).
  double UpperCut(int i) const { return boundaries_[i]; }

  /// All cut values (size num_intervals()-1), ascending.
  const std::vector<double>& boundaries() const { return boundaries_; }

  /// Smallest / largest attribute value observed when the grid was built
  /// (finite stand-ins for the outer interval edges; used by the linear
  /// split search to bound grid cells in value space).
  double min_value() const { return min_value_; }
  double max_value() const { return max_value_; }

  /// Bytes used by the grid (for memory accounting).
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(boundaries_.size()) * sizeof(double);
  }

 private:
  static IntervalGrid EqualWidthFromBounds(bool empty, double lo, double hi,
                                           int q);

  std::vector<double> boundaries_;
  double min_value_ = 0.0;
  double max_value_ = 0.0;
};

}  // namespace cmp

#endif  // CMP_HIST_QUANTILES_H_
