#ifndef CMP_HIST_SKETCH_H_
#define CMP_HIST_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hist/quantiles.h"

namespace cmp {

/// Deterministic mergeable quantile sketch (a KLL/MRL-style compactor
/// ladder without randomization).
///
/// The sketch keeps a ladder of buffers: level h holds values that each
/// stand for 2^h input records. Values enter at level 0; when a level
/// reaches the fixed capacity k it is sorted and compacted — every
/// second value (odd positions of the sorted run) is promoted to the
/// next level with doubled weight, the rest are discarded. One
/// compaction of level h perturbs any rank estimate by at most 2^h
/// records, so the sketch tracks the exact cumulative bound as it goes
/// (`rank_error_bound()`), and the property tests assert real data never
/// exceeds it. For n inputs the ladder has O(log(n/k)) levels of at
/// most ~k values each — O(k log(n/k)) memory, sublinear in n — and the
/// worst-case rank error is O(n log(n/k) / k).
///
/// Everything is deterministic: Add is a pure left fold over the input
/// order, Merge(a, b) is a pure function of the two states, and there is
/// no RNG anywhere — so sketches built by sharded ingestion and merged
/// in shard (rank) order are byte-stable across thread counts and
/// reruns. The streaming trainer additionally feeds every sketch in
/// ascending record order, which makes its sketch state independent of
/// block size and worker layout by construction.
///
/// Exact min/max are tracked on the side (they survive compaction), so
/// grids derived from the sketch carry the same domain bounds the exact
/// sort-based grids do.
class QuantileSketch {
 public:
  /// One value of the weighted summary: stands for `weight` records.
  struct Item {
    double value = 0.0;
    int64_t weight = 0;
  };

  /// `capacity` is the per-level buffer size k (>= 8). Larger k = more
  /// memory, tighter rank error (eps ~ log(n/k)/k).
  explicit QuantileSketch(int capacity = kDefaultCapacity);

  /// Default capacity used by the streaming trainer.
  static constexpr int kDefaultCapacity = 512;

  void Add(double v);
  void AddN(const double* values, int64_t n);

  /// Folds `other` into this sketch (level-wise concatenation followed
  /// by deterministic compaction). Callers that shard ingestion must
  /// merge in a fixed shard order; the result is then reproducible.
  void Merge(const QuantileSketch& other);

  int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Exact extremes of everything added (valid when !empty()).
  double min_value() const { return min_value_; }
  double max_value() const { return max_value_; }
  int capacity() const { return capacity_; }

  /// Conservative worst-case |estimated rank - true rank| in records.
  /// 0 while the sketch is still exact (no compaction has happened).
  int64_t rank_error_bound() const { return error_bound_; }

  /// The weighted summary, sorted ascending by value (ties in any
  /// deterministic order — equal values are interchangeable for ranks).
  std::vector<Item> Summary() const;

  /// Estimated number of records with value <= v. Monotone in v, within
  /// rank_error_bound() of the truth, and exact while no compaction has
  /// happened.
  int64_t EstimatedRankAtMost(double v) const;

  /// Equal-depth grid with (at most) `q` intervals from the summary,
  /// mirroring IntervalGrid::EqualDepthFromSorted cut for cut: the cut
  /// for quantile i is the summary value at rank position
  /// min(n-1, n*i/q), duplicate cuts collapse, and trailing cuts at the
  /// maximum are dropped. On a sketch that never compacted the result is
  /// byte-identical to EqualDepthFromSorted on the sorted input.
  IntervalGrid ToEqualDepthGrid(int q) const;

  int64_t MemoryBytes() const;

  // -- Serialization surface (io/sketch_sidecar.cc) -------------------
  // The ladder is the whole state; levels()[h] holds level h's values
  // (level 0 in insertion order, levels >= 1 ascending).
  const std::vector<std::vector<double>>& levels() const { return levels_; }

  /// Rebuilds a sketch from serialized state. Returns false when the
  /// state is inconsistent (count does not match the ladder, bad
  /// capacity, min > max, unsorted upper level).
  static bool FromState(int capacity, int64_t count, double min_value,
                        double max_value, int64_t error_bound,
                        std::vector<std::vector<double>> levels,
                        QuantileSketch* out);

 private:
  /// Sorts and compacts level h (promoting odd positions with doubled
  /// weight), cascading while levels overflow.
  void Compact(size_t h);

  int capacity_ = kDefaultCapacity;
  int64_t count_ = 0;
  int64_t error_bound_ = 0;
  double min_value_ = 0.0;
  double max_value_ = 0.0;
  // levels_[h]: values of weight 2^h. Level 0 is the insertion buffer
  // (unsorted); higher levels stay sorted ascending.
  std::vector<std::vector<double>> levels_;
};

}  // namespace cmp

#endif  // CMP_HIST_SKETCH_H_
