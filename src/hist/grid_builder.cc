#include "hist/grid_builder.h"

#include <algorithm>
#include <utility>

namespace cmp {

void AttrGridBuilder::AddOwned(std::vector<double>&& values) {
  Add(values.data(), static_cast<int64_t>(values.size()));
}

std::vector<char> InteriorMarksFromSorted(const std::vector<double>& sorted,
                                          const IntervalGrid& grid) {
  std::vector<char> interior(grid.num_intervals(), 0);
  const std::vector<double>& cuts = grid.boundaries();
  size_t bi = 0;
  double first_in_interval = sorted.empty() ? 0.0 : sorted[0];
  size_t interval_start_bi = 0;
  for (double v : sorted) {
    while (bi < cuts.size() && v > cuts[bi]) ++bi;
    if (bi != interval_start_bi) {
      interval_start_bi = bi;
      first_in_interval = v;
    } else if (v != first_in_interval) {
      interior[bi] = 1;
    }
  }
  return interior;
}

void ExactAttrGridBuilder::Add(const double* values, int64_t n) {
  values_.insert(values_.end(), values, values + n);
}

void ExactAttrGridBuilder::AddOwned(std::vector<double>&& values) {
  if (values_.empty()) {
    values_ = std::move(values);
  } else {
    Add(values.data(), static_cast<int64_t>(values.size()));
  }
}

void ExactAttrGridBuilder::MergeFrom(AttrGridBuilder& other) {
  auto& src = static_cast<ExactAttrGridBuilder&>(other);
  AddOwned(std::move(src.values_));
  src.values_.clear();
}

AttrGridResult ExactAttrGridBuilder::Finish(int q, Discretization kind) {
  std::sort(values_.begin(), values_.end());
  AttrGridResult result;
  result.grid = kind == Discretization::kEqualDepth
                    ? IntervalGrid::EqualDepthFromSorted(values_, q)
                    : IntervalGrid::EqualWidthFromSorted(values_, q);
  result.interior = InteriorMarksFromSorted(values_, result.grid);
  return result;
}

int64_t ExactAttrGridBuilder::MemoryBytes() const {
  return static_cast<int64_t>(sizeof(*this)) +
         static_cast<int64_t>(values_.capacity()) * sizeof(double);
}

void SketchAttrGridBuilder::Add(const double* values, int64_t n) {
  sketch_.AddN(values, n);
}

void SketchAttrGridBuilder::MergeFrom(AttrGridBuilder& other) {
  auto& src = static_cast<SketchAttrGridBuilder&>(other);
  sketch_.Merge(src.sketch_);
}

AttrGridResult SketchAttrGridBuilder::Finish(int q, Discretization kind) {
  AttrGridResult result;
  if (sketch_.empty()) return result;
  if (kind == Discretization::kEqualDepth) {
    result.grid = sketch_.ToEqualDepthGrid(q);
  } else {
    // Equal width needs only exact min/max, which the sketch tracks.
    std::vector<double> extremes = {sketch_.min_value(), sketch_.max_value()};
    result.grid = IntervalGrid::EqualWidthFromSorted(extremes, q);
  }
  // Mark intervals where the summary retains two distinct values: every
  // retained value is real data, so these intervals truly are
  // splittable. Sparse intervals may be missed, which only costs split
  // candidates, never correctness.
  std::vector<double> kept;
  for (const std::vector<double>& level : sketch_.levels()) {
    kept.insert(kept.end(), level.begin(), level.end());
  }
  std::sort(kept.begin(), kept.end());
  result.interior = InteriorMarksFromSorted(kept, result.grid);
  return result;
}

int64_t SketchAttrGridBuilder::MemoryBytes() const {
  return sketch_.MemoryBytes();
}

std::unique_ptr<AttrGridBuilder> MakeAttrGridBuilder(GridMethod method,
                                                     int sketch_capacity) {
  if (method == GridMethod::kSketch) {
    return std::make_unique<SketchAttrGridBuilder>(sketch_capacity);
  }
  return std::make_unique<ExactAttrGridBuilder>();
}

}  // namespace cmp
