#ifndef CMP_HIST_ATTR_SORT_H_
#define CMP_HIST_ATTR_SORT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "io/scan.h"

namespace cmp {

/// Shared scaffolding for SPRINT/SLIQ-style attribute lists: fills
/// `list` with one entry per record via `make(value, rid)` and sorts it
/// ascending by `.value`, charging one external sort to `tracker`. The
/// comparator looks at values only, so entries with equal values keep
/// whatever order std::sort picks — both call sites have always used
/// exactly this comparator, which keeps their trees byte-stable.
template <class Entry, class Make>
void BuildSortedAttrList(const std::vector<double>& column, Make&& make,
                         ScanTracker* tracker, std::vector<Entry>* list) {
  const int64_t n = static_cast<int64_t>(column.size());
  list->resize(n);
  for (int64_t r = 0; r < n; ++r) {
    (*list)[r] = make(column[r], static_cast<RecordId>(r));
  }
  std::sort(list->begin(), list->end(),
            [](const Entry& x, const Entry& y) { return x.value < y.value; });
  if (tracker != nullptr) tracker->ChargeSort(n);
}

}  // namespace cmp

#endif  // CMP_HIST_ATTR_SORT_H_
