#ifndef CMP_HIST_HIST_KERNELS_H_
#define CMP_HIST_HIST_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "hist/bin_codes.h"

namespace cmp {

/// Attribute-major batch accumulation kernels over bin codes.
///
/// The record-major `HistBundle::Add` strides across every attribute's
/// histogram once PER RECORD — each step pays a binary search on the
/// grid plus a cold cache line in a different histogram. These kernels
/// invert the loop nest: the scan first routes a BATCH of records to a
/// sink, then accumulates the batch one attribute at a time, so each
/// inner loop is a tight, branchless sequence of byte-code loads and
/// integer adds against ONE histogram (which stays hot) and ONE code
/// column (read near-sequentially, since batch rids ascend within a
/// block). The per-record work drops from `attrs × (log2(intervals)
/// compares + a scattered 8-byte add)` to `attrs × (1-byte load + add)`.
///
/// All kernels are plain integer-count adds, so the accumulation order
/// is immaterial: a batched scan produces byte-for-byte the histograms
/// of the record-major scan, which is what lets the batched path live
/// under the bit-identical-trees contract (tests/test_hist_kernels.cc).
///
/// `batch_labels` is the batch's label column gathered once per batch
/// (indexed by batch position, not record id) so the per-attribute loops
/// do one random load per record instead of two.

/// Reusable per-shard scratch for the kernels: the gathered label and
/// X-row columns of the current batch. Reused across batches to keep
/// flush calls allocation-free.
struct KernelScratch {
  std::vector<ClassId> labels;
  std::vector<int32_t> xrows;
};

/// scratch_labels[i] = labels[rids[i]].
void GatherLabels(const ClassId* labels, const RecordId* rids, size_t n,
                  std::vector<ClassId>* out);

/// scratch_xrows[i] = xcodes[rids[i]] - x_lo (the LOCAL X row of a
/// bivariate bundle covering global X-intervals [x_lo, x_hi)).
void GatherXRows(const CodeView& xcodes, int x_lo, const RecordId* rids,
                 size_t n, std::vector<int32_t>* out);

/// counts[codes[rids[i]] * nc + batch_labels[i]] += 1 for every batch
/// position i. `counts` is a Histogram1D's row-major cell array.
void AccumulateHist1D(const CodeView& codes, const ClassId* batch_labels,
                      const RecordId* rids, size_t n, int nc,
                      int64_t* counts);

/// counts[(xrows[i] * ny + codes[rids[i]]) * nc + batch_labels[i]] += 1:
/// one Y attribute of a bivariate bundle, with the shared X rows
/// gathered once per batch by GatherXRows.
void AccumulateHist2D(const int32_t* xrows, const CodeView& codes,
                      const ClassId* batch_labels, const RecordId* rids,
                      size_t n, int ny, int nc, int64_t* counts);

}  // namespace cmp

#endif  // CMP_HIST_HIST_KERNELS_H_
