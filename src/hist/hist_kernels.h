#ifndef CMP_HIST_HIST_KERNELS_H_
#define CMP_HIST_HIST_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/cpu_features.h"
#include "common/types.h"
#include "hist/bin_codes.h"

namespace cmp {

/// Attribute-major batch accumulation kernels over bin codes.
///
/// The record-major `HistBundle::Add` strides across every attribute's
/// histogram once PER RECORD — each step pays a binary search on the
/// grid plus a cold cache line in a different histogram. These kernels
/// invert the loop nest: the scan first routes a BATCH of records to a
/// sink, then accumulates the batch one attribute at a time, so each
/// inner loop is a tight, branchless sequence of byte-code loads and
/// integer adds against ONE histogram (which stays hot) and ONE code
/// column (read near-sequentially, since batch rids ascend within a
/// block). The per-record work drops from `attrs × (log2(intervals)
/// compares + a scattered 8-byte add)` to `attrs × (1-byte load + add)`.
///
/// All kernels are plain integer-count adds, so the accumulation order
/// is immaterial: a batched scan produces byte-for-byte the histograms
/// of the record-major scan, which is what lets the batched path live
/// under the bit-identical-trees contract (tests/test_hist_kernels.cc).
///
/// `batch_labels` is the batch's label column gathered once per batch
/// (indexed by batch position, not record id) so the per-attribute loops
/// do one random load per record instead of two.
///
/// Every entry point below dispatches through a per-ISA function-pointer
/// table (HistKernelOps) selected by common/cpu_features.h: an AVX2
/// tier that widens codes and computes cell indices eight records at a
/// time (with `vpgatherqd` code loads for non-contiguous batches), an
/// SSE2 tier that vectorizes the contiguous-batch widening, and the
/// portable scalar tier. Because the cells are integer counts, every
/// tier produces byte-identical histograms — enforced differentially by
/// tests/test_kernel_dispatch.cc across random tables, all code widths,
/// and every supported tier.
///
/// The vector tiers load codes four bytes at a time (sequential widening
/// loads and 32-bit gathers at 1- and 2-byte element offsets), so code
/// columns MUST carry kCodeColumnPadding readable bytes past the last
/// record. BinCodeCache allocates that padding; anything else that hands
/// a CodeView to these kernels must do the same.

/// Reusable per-shard scratch for the kernels: the gathered label and
/// X-row columns of the current batch. Reused across batches to keep
/// flush calls allocation-free.
struct KernelScratch {
  std::vector<ClassId> labels;
  std::vector<int32_t> xrows;
};

/// scratch_labels[i] = labels[rids[i]].
void GatherLabels(const ClassId* labels, const RecordId* rids, size_t n,
                  std::vector<ClassId>* out);

/// scratch_xrows[i] = xcodes[rids[i]] - x_lo (the LOCAL X row of a
/// bivariate bundle covering global X-intervals [x_lo, x_hi)).
void GatherXRows(const CodeView& xcodes, int x_lo, const RecordId* rids,
                 size_t n, std::vector<int32_t>* out);

/// counts[codes[rids[i]] * nc + batch_labels[i]] += 1 for every batch
/// position i. `counts` is a Histogram1D's row-major cell array.
void AccumulateHist1D(const CodeView& codes, const ClassId* batch_labels,
                      const RecordId* rids, size_t n, int nc,
                      int64_t* counts);

/// counts[(xrows[i] * ny + codes[rids[i]]) * nc + batch_labels[i]] += 1:
/// one Y attribute of a bivariate bundle, with the shared X rows
/// gathered once per batch by GatherXRows.
void AccumulateHist2D(const int32_t* xrows, const CodeView& codes,
                      const ClassId* batch_labels, const RecordId* rids,
                      size_t n, int ny, int nc, int64_t* counts);

// ---------------------------------------------------------------------
// Dispatch table. One instance per ISA tier; the public entry points
// above resolve the active tier's table per call (an atomic load — noise
// against a 512-record batch). Exposed so the bench and the differential
// tests can drive one specific tier regardless of the active selection.

struct HistKernelOps {
  void (*gather_labels)(const ClassId* labels, const RecordId* rids,
                        size_t n, ClassId* out);
  void (*gather_xrows_u8)(const uint8_t* codes, int x_lo,
                          const RecordId* rids, size_t n, int32_t* out);
  void (*gather_xrows_u16)(const uint16_t* codes, int x_lo,
                           const RecordId* rids, size_t n, int32_t* out);
  void (*accum1d_u8)(const uint8_t* codes, const ClassId* batch_labels,
                     const RecordId* rids, size_t n, int nc,
                     int64_t* counts);
  void (*accum1d_u16)(const uint16_t* codes, const ClassId* batch_labels,
                      const RecordId* rids, size_t n, int nc,
                      int64_t* counts);
  void (*accum2d_u8)(const int32_t* xrows, const uint8_t* codes,
                     const ClassId* batch_labels, const RecordId* rids,
                     size_t n, int ny, int nc, int64_t* counts);
  void (*accum2d_u16)(const int32_t* xrows, const uint16_t* codes,
                      const ClassId* batch_labels, const RecordId* rids,
                      size_t n, int ny, int nc, int64_t* counts);
};

/// The table for `isa`, falling back tier by tier (avx2 → sse2 →
/// scalar) when this build or binary lacks the requested one. Never
/// null.
const HistKernelOps& HistKernelOpsFor(KernelIsa isa);

/// Per-tier tables, null when this build lacks the ISA (non-x86 target
/// or missing compiler flag). Runtime support is checked by the
/// dispatcher; the differential tests drive these directly so every
/// compiled tier is exercised regardless of the active selection.
const HistKernelOps* Sse2HistKernelOpsOrNull();
const HistKernelOps* Avx2HistKernelOpsOrNull();

/// The table of ActiveKernelIsa().
const HistKernelOps& ActiveHistKernelOps();

}  // namespace cmp

#endif  // CMP_HIST_HIST_KERNELS_H_
