#ifndef CMP_HIST_BIN_CODES_H_
#define CMP_HIST_BIN_CODES_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/schema.h"
#include "common/types.h"
#include "hist/quantiles.h"

namespace cmp {

/// Trailing readable bytes every CodeView column must carry past its
/// last record. The vector kernel tiers load codes 4 bytes at a time
/// (32-bit gathers at 1- and 2-byte element offsets), so a load at the
/// final record reaches up to 3 bytes beyond it; without the padding
/// that read is heap-buffer-overflow UB (caught by ASan with a 511-
/// record tail batch, tests/test_kernel_dispatch.cc). BinCodeCache
/// allocates the padding; any other producer of a CodeView must too.
inline constexpr int kCodeColumnPadding = 4;

/// Read-only view of one attribute's encoded column: exactly one of the
/// two pointers is non-null, per the column's code width. The histogram
/// kernels (hist/hist_kernels.h) template their inner loops over this so
/// the width branch is paid once per batch, not once per record. The
/// underlying column carries kCodeColumnPadding readable bytes past the
/// last record (see above).
struct CodeView {
  const uint8_t* u8 = nullptr;
  const uint16_t* u16 = nullptr;
};

/// Pass-invariant bin-code cache: the quantized representation of the
/// whole training set that every scan pass after grid construction
/// accumulates histograms from.
///
/// The equal-depth grids are computed once per build and never change,
/// so the interval index of (attribute, record) — the only thing
/// histogram accumulation needs — is a constant of the build. Instead of
/// re-paying a binary search (`IntervalOf`) per numeric value per pass,
/// each column is encoded ONCE into a columnar code matrix: numeric
/// attributes store their grid interval index, categorical attributes
/// their (already dense) value, and the label column rides along so a
/// kernel never touches the raw record store. Codes are 1 byte per value
/// when an attribute has at most 256 rows and 2 bytes up to 65536 rows;
/// beyond that the cache disables itself and the builder falls back to
/// the record-major `IntervalOf` path (same tree, just slower).
///
/// At 1-2 bytes/value vs 8 for a raw double, the code matrix of a table
/// that does not fit in RAM often does — the out-of-core build keeps it
/// resident as a compact sidecar of the streamed table, so histogram
/// accumulation in later passes never waits on raw column bytes (raw
/// blocks still stream for tree descent and for the exact values the
/// pending buffers need).
///
/// Thread-safety: columns are independent, so EncodeNumericColumn /
/// EncodeCategoricalColumn may run concurrently for DISTINCT attributes
/// (the grid-construction pass fans them across the shared ThreadPool).
/// All reads are const after encoding completes.
class BinCodeCache {
 public:
  /// A default-constructed cache is disabled; every consumer must check
  /// enabled() (the builder passes nullptr instead, but tests construct
  /// empty caches).
  BinCodeCache() = default;

  /// Prepares a cache for `num_records` records of `schema`.
  /// `max_intervals` is the grid-size cap of the build
  /// (CmpOptions::intervals): together with the categorical
  /// cardinalities it bounds every attribute's row count, so the
  /// 16-bit-code gate is decided here, before any column is encoded.
  BinCodeCache(const Schema& schema, int64_t num_records, int max_intervals);

  /// False when some attribute needs more than 16 bits (or the cache was
  /// default-constructed). A disabled cache holds no storage and must
  /// not be encoded into or read from.
  bool enabled() const { return enabled_; }
  int64_t num_records() const { return n_; }

  /// Encodes a numeric attribute's raw column (ascending record order,
  /// full length) as grid interval indices. `grid` must be the build's
  /// grid for `a`; by construction `code(a, r) == grid.IntervalOf(v_r)`
  /// for every record — the agreement the byte-identical-trees contract
  /// rests on (exhaustively tested in tests/test_bin_codes.cc).
  void EncodeNumericColumn(AttrId a, const IntervalGrid& grid,
                           const std::vector<double>& column);

  /// Encodes a categorical attribute's raw column (values are dense
  /// integers in [0, cardinality), validated by the loaders).
  void EncodeCategoricalColumn(AttrId a, const std::vector<int32_t>& column);

  /// Installs the label column (ascending record order, full length).
  void SetLabels(std::vector<ClassId> labels);

  /// Code width of attribute `a` in bytes (1 or 2; 0 before encoding).
  int width(AttrId a) const { return cols_[a].width; }

  /// The bin code of (attribute, record): the grid interval index for
  /// numeric attributes, the value for categorical ones.
  int code(AttrId a, RecordId r) const {
    const Column& c = cols_[a];
    assert(c.width != 0 && r >= 0 && r < n_);
    return c.width == 1 ? c.u8[r] : c.u16[r];
  }

  /// Kernel view of one encoded column.
  CodeView view(AttrId a) const {
    const Column& c = cols_[a];
    assert(c.width != 0);
    CodeView v;
    if (c.width == 1) {
      v.u8 = c.u8.data();
    } else {
      v.u16 = c.u16.data();
    }
    return v;
  }

  ClassId label(RecordId r) const { return labels_[r]; }
  const ClassId* labels() const { return labels_.data(); }

  /// Resident bytes of the code matrix + label column (reported through
  /// ScanTracker::NotePeakMemory so --stats-json memory stays honest).
  int64_t MemoryBytes() const;

 private:
  struct Column {
    int width = 0;  // bytes per code: 1, 2, or 0 (not yet encoded)
    std::vector<uint8_t> u8;
    std::vector<uint16_t> u16;
  };

  bool enabled_ = false;
  int64_t n_ = 0;
  std::vector<Column> cols_;  // indexed by AttrId
  std::vector<ClassId> labels_;
};

}  // namespace cmp

#endif  // CMP_HIST_BIN_CODES_H_
