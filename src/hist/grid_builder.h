#ifndef CMP_HIST_GRID_BUILDER_H_
#define CMP_HIST_GRID_BUILDER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "hist/grids.h"
#include "hist/quantiles.h"
#include "hist/sketch.h"

namespace cmp {

/// How a discretization grid is computed from a numeric column.
enum class GridMethod {
  /// Buffer the whole column and sort it — the paper's exact equal-depth
  /// quantiling. O(n) memory per attribute; grids depend only on the
  /// value multiset. This is the default for every batch algorithm and
  /// preserves their byte-identical-tree contract.
  kExactSort,
  /// Feed a deterministic mergeable quantile sketch (hist/sketch.h) —
  /// O(k log(n/k)) memory, one pass, no sort barrier. Cuts land within
  /// the sketch's rank-error bound of the exact ones. Used by the
  /// streaming trainer.
  kSketch,
};

/// Per-attribute grid construction result.
struct AttrGridResult {
  IntervalGrid grid;
  /// interior[i] is nonzero iff grid interval i is known to contain at
  /// least two distinct values — i.e. an interior split point can exist
  /// there. Exact for kExactSort; for kSketch it is derived from the
  /// sketch summary (a value the sketch retained is real data, so a
  /// marked interval really is splittable, but sparse intervals can be
  /// missed — callers that need certainty must use the exact method).
  std::vector<char> interior;
};

/// Accumulates one numeric attribute's values and produces its interval
/// grid. One instance per attribute; implementations are not
/// thread-safe, but independent instances can be filled concurrently
/// and merged in a fixed (shard) order.
class AttrGridBuilder {
 public:
  virtual ~AttrGridBuilder() = default;

  /// Appends a chunk of values (any order; grids depend only on the
  /// multiset for the exact method, and on the ingestion order only
  /// through the sketch's deterministic fold for the sketch method).
  virtual void Add(const double* values, int64_t n) = 0;

  /// Like Add, but may take ownership of the buffer to avoid a copy
  /// (the exact builder does when it is still empty).
  virtual void AddOwned(std::vector<double>&& values);

  /// Folds another builder of the same concrete type into this one.
  /// Shard ingestion must merge in ascending shard order to stay
  /// deterministic.
  virtual void MergeFrom(AttrGridBuilder& other) = 0;

  /// Builds the grid (and interior marks) for everything added. May be
  /// called once.
  virtual AttrGridResult Finish(int q, Discretization kind) = 0;

  /// Bytes of accumulated state (for peak-memory accounting).
  virtual int64_t MemoryBytes() const = 0;
};

/// Exact path: buffers and sorts the column. Finish(q, kEqualDepth) is
/// byte-identical to IntervalGrid::EqualDepthFromSorted on the sorted
/// column, and the interior marks are byte-identical to the scan the CMP
/// build driver historically ran over the sorted column.
class ExactAttrGridBuilder : public AttrGridBuilder {
 public:
  void Add(const double* values, int64_t n) override;
  void AddOwned(std::vector<double>&& values) override;
  void MergeFrom(AttrGridBuilder& other) override;
  AttrGridResult Finish(int q, Discretization kind) override;
  int64_t MemoryBytes() const override;

 private:
  std::vector<double> values_;
};

/// Sketch path: bounded-memory deterministic quantile summary.
/// Equal-width grids still only need min/max, which the sketch tracks
/// exactly, so both discretizations work.
class SketchAttrGridBuilder : public AttrGridBuilder {
 public:
  explicit SketchAttrGridBuilder(
      int sketch_capacity = QuantileSketch::kDefaultCapacity)
      : sketch_(sketch_capacity) {}

  void Add(const double* values, int64_t n) override;
  void MergeFrom(AttrGridBuilder& other) override;
  AttrGridResult Finish(int q, Discretization kind) override;
  int64_t MemoryBytes() const override;

  const QuantileSketch& sketch() const { return sketch_; }

 private:
  QuantileSketch sketch_;
};

/// Interior marks for a grid from a sorted value run (the exact rule the
/// CMP driver uses: interval i is interior iff it contains two distinct
/// values). Exposed so tests can compare implementations.
std::vector<char> InteriorMarksFromSorted(const std::vector<double>& sorted,
                                          const IntervalGrid& grid);

std::unique_ptr<AttrGridBuilder> MakeAttrGridBuilder(
    GridMethod method,
    int sketch_capacity = QuantileSketch::kDefaultCapacity);

}  // namespace cmp

#endif  // CMP_HIST_GRID_BUILDER_H_
