#ifndef CMP_HIST_HIST_KERNELS_IMPL_H_
#define CMP_HIST_HIST_KERNELS_IMPL_H_

// Internal: the width-templated scalar accumulators, shared between the
// scalar dispatch tier (hist_kernels.cc) and the vector tiers, which
// reuse them for batch tails shorter than a vector and for shapes the
// vector path does not cover. Not part of the public kernel API.

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace cmp {
namespace hist_impl {

// The width template moves the u8/u16 branch out of the inner loops; the
// nc == 2 specialization strength-reduces the row multiply to a shift
// (binary classification is the common case in the paper's workloads).
template <typename Code>
inline void Accum1D(const Code* codes, const ClassId* batch_labels,
                    const RecordId* rids, size_t n, int nc,
                    int64_t* counts) {
  if (nc == 2) {
    for (size_t i = 0; i < n; ++i) {
      counts[(static_cast<size_t>(codes[rids[i]]) << 1) + batch_labels[i]]++;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    counts[static_cast<size_t>(codes[rids[i]]) * nc + batch_labels[i]]++;
  }
}

template <typename Code>
inline void Accum2D(const int32_t* xrows, const Code* codes,
                    const ClassId* batch_labels, const RecordId* rids,
                    size_t n, int ny, int nc, int64_t* counts) {
  if (nc == 2) {
    for (size_t i = 0; i < n; ++i) {
      const size_t cell =
          static_cast<size_t>(xrows[i]) * ny + codes[rids[i]];
      counts[(cell << 1) + batch_labels[i]]++;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t cell = static_cast<size_t>(xrows[i]) * ny + codes[rids[i]];
    counts[cell * nc + batch_labels[i]]++;
  }
}

inline void GatherLabelsScalar(const ClassId* labels, const RecordId* rids,
                               size_t n, ClassId* out) {
  for (size_t i = 0; i < n; ++i) out[i] = labels[rids[i]];
}

template <typename Code>
inline void GatherXRowsScalar(const Code* codes, int x_lo,
                              const RecordId* rids, size_t n, int32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<int32_t>(codes[rids[i]]) - x_lo;
  }
}

// True when `rids[0..n)` is exactly rid0, rid0+1, ..., rid0+n-1 — the
// shape of a root-pass batch and of any batch whose node partition is a
// contiguous record range. The vector tiers use it to swap gathers for
// sequential widening loads. Checked exactly (no monotonicity
// assumption) so arbitrary rid sets from tests and future callers stay
// correct.
inline bool ContiguousRids(const RecordId* rids, size_t n) {
  if (n == 0) return true;
  const RecordId base = rids[0];
  for (size_t i = 1; i < n; ++i) {
    if (rids[i] != base + static_cast<RecordId>(i)) return false;
  }
  return true;
}

}  // namespace hist_impl
}  // namespace cmp

#endif  // CMP_HIST_HIST_KERNELS_IMPL_H_
