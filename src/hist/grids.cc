#include "hist/grids.h"

namespace cmp {

std::vector<IntervalGrid> ComputeGrids(const Dataset& ds, int intervals,
                                       Discretization kind,
                                       ScanTracker* tracker) {
  if (tracker != nullptr) tracker->ChargeScan(ds);
  std::vector<IntervalGrid> grids(ds.num_attrs());
  for (AttrId a = 0; a < ds.num_attrs(); ++a) {
    if (!ds.schema().is_numeric(a)) continue;
    if (kind == Discretization::kEqualDepth) {
      grids[a] = IntervalGrid::EqualDepth(ds.numeric_column(a), intervals);
      if (tracker != nullptr) tracker->ChargeSort(ds.num_records());
    } else {
      grids[a] = IntervalGrid::EqualWidth(ds.numeric_column(a), intervals);
    }
  }
  return grids;
}

std::vector<IntervalGrid> ComputeEqualDepthGrids(const Dataset& ds,
                                                 int intervals,
                                                 ScanTracker* tracker) {
  return ComputeGrids(ds, intervals, Discretization::kEqualDepth, tracker);
}

int64_t GridsMemoryBytes(const std::vector<IntervalGrid>& grids) {
  int64_t bytes = 0;
  for (const IntervalGrid& g : grids) bytes += g.MemoryBytes();
  return bytes;
}

}  // namespace cmp
