#include "hist/grids.h"

#include "common/thread_pool.h"

namespace cmp {

std::vector<IntervalGrid> ComputeGrids(const Dataset& ds, int intervals,
                                       Discretization kind,
                                       ScanTracker* tracker,
                                       ThreadPool* pool) {
  if (tracker != nullptr) tracker->ChargeScan(ds);
  std::vector<IntervalGrid> grids(ds.num_attrs());
  // Each attribute's grid depends only on that attribute's column, so the
  // per-attribute sorts fan out; sort work is charged serially afterwards
  // to keep the counters race-free and thread-count independent.
  auto build_attr = [&](AttrId a) {
    if (!ds.schema().is_numeric(a)) return;
    if (kind == Discretization::kEqualDepth) {
      grids[a] = IntervalGrid::EqualDepth(ds.numeric_column(a), intervals);
    } else {
      grids[a] = IntervalGrid::EqualWidth(ds.numeric_column(a), intervals);
    }
  };
  if (pool != nullptr && pool->parallelism() > 1) {
    pool->ParallelFor(ds.num_attrs(), 1, [&](int64_t lo, int64_t hi) {
      for (int64_t a = lo; a < hi; ++a) build_attr(static_cast<AttrId>(a));
    });
  } else {
    for (AttrId a = 0; a < ds.num_attrs(); ++a) build_attr(a);
  }
  if (tracker != nullptr && kind == Discretization::kEqualDepth) {
    for (AttrId a = 0; a < ds.num_attrs(); ++a) {
      if (ds.schema().is_numeric(a)) tracker->ChargeSort(ds.num_records());
    }
  }
  return grids;
}

std::vector<IntervalGrid> ComputeEqualDepthGrids(const Dataset& ds,
                                                 int intervals,
                                                 ScanTracker* tracker) {
  return ComputeGrids(ds, intervals, Discretization::kEqualDepth, tracker);
}

int64_t GridsMemoryBytes(const std::vector<IntervalGrid>& grids) {
  int64_t bytes = 0;
  for (const IntervalGrid& g : grids) bytes += g.MemoryBytes();
  return bytes;
}

std::vector<Histogram1D> MakeAttrHistograms(
    const Schema& schema, const std::vector<IntervalGrid>& grids,
    int num_classes) {
  std::vector<Histogram1D> hists(schema.num_attrs());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    const int rows = schema.is_numeric(a) ? grids[a].num_intervals()
                                          : schema.attr(a).cardinality;
    hists[a] = Histogram1D(rows, num_classes);
  }
  return hists;
}

}  // namespace cmp
