#include "hist/histogram2d.h"

#include <cassert>

namespace cmp {

Histogram1D HistogramMatrix::MarginalX(int x_lo, int x_hi) const {
  assert(0 <= x_lo && x_lo <= x_hi && x_hi <= nx_);
  Histogram1D out(x_hi - x_lo, nc_);
  for (int x = x_lo; x < x_hi; ++x) {
    for (int y = 0; y < ny_; ++y) {
      const int64_t* c = cell(x, y);
      for (int k = 0; k < nc_; ++k) {
        if (c[k] != 0) out.Add(x - x_lo, k, c[k]);
      }
    }
  }
  return out;
}

Histogram1D HistogramMatrix::MarginalY(int x_lo, int x_hi) const {
  assert(0 <= x_lo && x_lo <= x_hi && x_hi <= nx_);
  Histogram1D out(ny_, nc_);
  for (int x = x_lo; x < x_hi; ++x) {
    for (int y = 0; y < ny_; ++y) {
      const int64_t* c = cell(x, y);
      for (int k = 0; k < nc_; ++k) {
        if (c[k] != 0) out.Add(y, k, c[k]);
      }
    }
  }
  return out;
}

Histogram1D HistogramMatrix::MarginalXByYRange(int y_lo, int y_hi) const {
  assert(0 <= y_lo && y_lo <= y_hi && y_hi <= ny_);
  Histogram1D out(nx_, nc_);
  for (int x = 0; x < nx_; ++x) {
    for (int y = y_lo; y < y_hi; ++y) {
      const int64_t* c = cell(x, y);
      for (int k = 0; k < nc_; ++k) {
        if (c[k] != 0) out.Add(x, k, c[k]);
      }
    }
  }
  return out;
}

Histogram1D HistogramMatrix::MarginalYByYRange(int y_lo, int y_hi) const {
  assert(0 <= y_lo && y_lo <= y_hi && y_hi <= ny_);
  Histogram1D out(y_hi - y_lo, nc_);
  for (int x = 0; x < nx_; ++x) {
    for (int y = y_lo; y < y_hi; ++y) {
      const int64_t* c = cell(x, y);
      for (int k = 0; k < nc_; ++k) {
        if (c[k] != 0) out.Add(y - y_lo, k, c[k]);
      }
    }
  }
  return out;
}

Histogram1D HistogramMatrix::MarginalXByYMask(
    const std::vector<uint8_t>& mask, uint8_t want) const {
  Histogram1D out(nx_, nc_);
  for (int x = 0; x < nx_; ++x) {
    for (int y = 0; y < ny_; ++y) {
      const uint8_t bit =
          y < static_cast<int>(mask.size()) ? mask[y] : 0;
      if (bit != want) continue;
      const int64_t* c = cell(x, y);
      for (int k = 0; k < nc_; ++k) {
        if (c[k] != 0) out.Add(x, k, c[k]);
      }
    }
  }
  return out;
}

std::vector<int64_t> HistogramMatrix::ClassTotals() const {
  std::vector<int64_t> totals(nc_, 0);
  for (size_t i = 0; i < counts_.size(); ++i) {
    totals[i % nc_] += counts_[i];
  }
  return totals;
}

int64_t HistogramMatrix::Total() const {
  int64_t total = 0;
  for (int64_t v : counts_) total += v;
  return total;
}

void HistogramMatrix::Merge(const HistogramMatrix& other) {
  assert(nx_ == other.nx_ && ny_ == other.ny_ && nc_ == other.nc_);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

void HistogramMatrix::Subtract(const HistogramMatrix& other) {
  assert(nx_ == other.nx_ && ny_ == other.ny_ && nc_ == other.nc_);
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] -= other.counts_[i];
    assert(counts_[i] >= 0);
  }
}

}  // namespace cmp
