// AVX2 tier of the histogram kernels (see hist_kernels.h). Compiled with
// -mavx2 (and only that — no -mfma; these are integer kernels, but the
// flag policy is shared with the gini scan tier where contraction would
// break bit-exactness). The table is only ever selected after the
// runtime CPUID/XCR0 check in common/cpu_features.cc passes.
//
// Strategy: the scattered `counts[cell]++` itself cannot vectorize
// without AVX-512 conflict detection, so the kernels split each batch
// into chunks, compute the 32-bit cell indices of a whole chunk with
// vector code (sequential widening loads when the chunk's rids are
// contiguous, `vpgatherqd` code loads otherwise) into a small stack
// buffer, and then run an unrolled scalar increment sweep over the
// buffer. The cells are integer counts, so this reordering of work —
// not of adds — keeps every histogram byte-identical to the scalar
// tier.
//
// Code columns are loaded 4 bytes at a time (both the gathers and
// nothing else), so CodeView columns must carry kCodeColumnPadding
// readable bytes past the last record; BinCodeCache allocates them.

#include "hist/hist_kernels.h"
#include "hist/hist_kernels_impl.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace cmp {

namespace {

constexpr size_t kChunk = 256;

// codes[rids[k..k+8)] widened to 8 x i32, via two 4-wide 32-bit gathers
// at byte (scale 1) or word (scale 2) offsets plus an element mask.
template <typename Code>
inline __m256i GatherCodes8(const Code* codes, const RecordId* r) {
  const __m256i vr0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r));
  const __m256i vr1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r + 4));
  const __m128i g0 = _mm256_i64gather_epi32(
      reinterpret_cast<const int*>(codes), vr0, sizeof(Code));
  const __m128i g1 = _mm256_i64gather_epi32(
      reinterpret_cast<const int*>(codes), vr1, sizeof(Code));
  const __m256i mask =
      _mm256_set1_epi32(sizeof(Code) == 1 ? 0xFF : 0xFFFF);
  return _mm256_and_si256(_mm256_set_m128i(g1, g0), mask);
}

// codes[r0 + k .. r0 + k + 8) widened to 8 x i32 with sequential loads.
inline __m256i LoadCodes8(const uint8_t* c0) {
  return _mm256_cvtepu8_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(c0)));
}
inline __m256i LoadCodes8(const uint16_t* c0) {
  return _mm256_cvtepu16_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(c0)));
}

inline void IncrementSweep(const int32_t* idx, size_t m, int64_t* counts) {
  size_t k = 0;
  for (; k + 4 <= m; k += 4) {
    counts[idx[k]]++;
    counts[idx[k + 1]]++;
    counts[idx[k + 2]]++;
    counts[idx[k + 3]]++;
  }
  for (; k < m; ++k) counts[idx[k]]++;
}

template <typename Code>
void Accum1DAvx2(const Code* codes, const ClassId* batch_labels,
                 const RecordId* rids, size_t n, int nc, int64_t* counts) {
  alignas(32) int32_t idx[kChunk];
  const __m256i vnc = _mm256_set1_epi32(nc);
  size_t done = 0;
  while (done < n) {
    const size_t m = std::min(kChunk, n - done);
    const RecordId* r = rids + done;
    const ClassId* l = batch_labels + done;
    size_t k = 0;
    if (hist_impl::ContiguousRids(r, m)) {
      const Code* c0 = codes + r[0];
      for (; k + 8 <= m; k += 8) {
        const __m256i vcode = LoadCodes8(c0 + k);
        const __m256i vlab =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(l + k));
        _mm256_store_si256(
            reinterpret_cast<__m256i*>(idx + k),
            _mm256_add_epi32(_mm256_mullo_epi32(vcode, vnc), vlab));
      }
    } else {
      for (; k + 8 <= m; k += 8) {
        const __m256i vcode = GatherCodes8(codes, r + k);
        const __m256i vlab =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(l + k));
        _mm256_store_si256(
            reinterpret_cast<__m256i*>(idx + k),
            _mm256_add_epi32(_mm256_mullo_epi32(vcode, vnc), vlab));
      }
    }
    for (; k < m; ++k) {
      idx[k] = static_cast<int32_t>(codes[r[k]]) * nc + l[k];
    }
    IncrementSweep(idx, m, counts);
    done += m;
  }
}

template <typename Code>
void Accum2DAvx2(const int32_t* xrows, const Code* codes,
                 const ClassId* batch_labels, const RecordId* rids, size_t n,
                 int ny, int nc, int64_t* counts) {
  alignas(32) int32_t idx[kChunk];
  const __m256i vnc = _mm256_set1_epi32(nc);
  const __m256i vny = _mm256_set1_epi32(ny);
  size_t done = 0;
  while (done < n) {
    const size_t m = std::min(kChunk, n - done);
    const RecordId* r = rids + done;
    const ClassId* l = batch_labels + done;
    const int32_t* x = xrows + done;
    size_t k = 0;
    const bool contiguous = hist_impl::ContiguousRids(r, m);
    const Code* c0 = contiguous ? codes + r[0] : nullptr;
    for (; k + 8 <= m; k += 8) {
      const __m256i vcode =
          contiguous ? LoadCodes8(c0 + k) : GatherCodes8(codes, r + k);
      const __m256i vx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + k));
      const __m256i vlab =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(l + k));
      const __m256i vcell =
          _mm256_add_epi32(_mm256_mullo_epi32(vx, vny), vcode);
      _mm256_store_si256(
          reinterpret_cast<__m256i*>(idx + k),
          _mm256_add_epi32(_mm256_mullo_epi32(vcell, vnc), vlab));
    }
    for (; k < m; ++k) {
      idx[k] = (x[k] * ny + static_cast<int32_t>(codes[r[k]])) * nc + l[k];
    }
    IncrementSweep(idx, m, counts);
    done += m;
  }
}

void GatherLabelsAvx2(const ClassId* labels, const RecordId* rids, size_t n,
                      ClassId* out) {
  if (hist_impl::ContiguousRids(rids, n)) {
    if (n > 0) std::memcpy(out, labels + rids[0], n * sizeof(ClassId));
    return;
  }
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vr0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rids + i));
    const __m256i vr1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rids + i + 4));
    // Scale-4 gathers read exactly the 4-byte label, no padding needed.
    const __m128i g0 = _mm256_i64gather_epi32(labels, vr0, 4);
    const __m128i g1 = _mm256_i64gather_epi32(labels, vr1, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_set_m128i(g1, g0));
  }
  for (; i < n; ++i) out[i] = labels[rids[i]];
}

template <typename Code>
void GatherXRowsAvx2(const Code* codes, int x_lo, const RecordId* rids,
                     size_t n, int32_t* out) {
  const __m256i vlo = _mm256_set1_epi32(x_lo);
  if (hist_impl::ContiguousRids(rids, n)) {
    const Code* c0 = n > 0 ? codes + rids[0] : codes;
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                          _mm256_sub_epi32(LoadCodes8(c0 + i), vlo));
    }
    for (; i < n; ++i) out[i] = static_cast<int32_t>(c0[i]) - x_lo;
    return;
  }
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_sub_epi32(GatherCodes8(codes, rids + i), vlo));
  }
  for (; i < n; ++i) out[i] = static_cast<int32_t>(codes[rids[i]]) - x_lo;
}

constexpr HistKernelOps kAvx2Ops = {
    GatherLabelsAvx2,
    GatherXRowsAvx2<uint8_t>,
    GatherXRowsAvx2<uint16_t>,
    Accum1DAvx2<uint8_t>,
    Accum1DAvx2<uint16_t>,
    Accum2DAvx2<uint8_t>,
    Accum2DAvx2<uint16_t>,
};

}  // namespace

const HistKernelOps* Avx2HistKernelOpsOrNull() { return &kAvx2Ops; }

}  // namespace cmp

#else  // !defined(__AVX2__)

namespace cmp {

const HistKernelOps* Avx2HistKernelOpsOrNull() { return nullptr; }

}  // namespace cmp

#endif  // defined(__AVX2__)
