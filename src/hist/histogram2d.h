#ifndef CMP_HIST_HISTOGRAM2D_H_
#define CMP_HIST_HISTOGRAM2D_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "hist/histogram1d.h"

namespace cmp {

/// Bivariate class histogram ("histogram matrix", Section 2.2 of the
/// paper): counts[x][y][c] = number of records whose X-attribute value
/// falls in X-interval x, whose Y-attribute value falls in Y-interval y,
/// and whose class is c. A node of CMP-B keeps N-1 such matrices, all
/// sharing the same X attribute.
class HistogramMatrix {
 public:
  HistogramMatrix() = default;
  HistogramMatrix(int x_intervals, int y_intervals, int num_classes)
      : nx_(x_intervals),
        ny_(y_intervals),
        nc_(num_classes),
        counts_(static_cast<size_t>(x_intervals) * y_intervals * num_classes,
                0) {}

  int x_intervals() const { return nx_; }
  int y_intervals() const { return ny_; }
  int num_classes() const { return nc_; }

  void Add(int x, int y, ClassId c, int64_t delta = 1) {
    counts_[Index(x, y, c)] += delta;
  }

  int64_t count(int x, int y, ClassId c) const {
    return counts_[Index(x, y, c)];
  }

  /// Class counts of one (x, y) cell.
  const int64_t* cell(int x, int y) const {
    return counts_.data() + Index(x, y, 0);
  }

  /// Marginal class histogram along X, restricted to X-intervals in
  /// [x_lo, x_hi): result interval i corresponds to X-interval x_lo + i.
  Histogram1D MarginalX(int x_lo, int x_hi) const;
  Histogram1D MarginalX() const { return MarginalX(0, nx_); }

  /// Marginal class histogram along Y, restricted to X-intervals in
  /// [x_lo, x_hi). This is how CMP-B obtains a child's Y-attribute
  /// histogram from the parent's matrix after an X split.
  Histogram1D MarginalY(int x_lo, int x_hi) const;
  Histogram1D MarginalY() const { return MarginalY(0, nx_); }

  /// Marginals restricted along the Y axis instead: the X histogram (and
  /// the Y histogram) of the records whose Y row is in [y_lo, y_hi).
  /// predictSplit uses these to compute a child's exact X/Y ginis after
  /// a split on the Y attribute (paper Figure 7).
  Histogram1D MarginalXByYRange(int y_lo, int y_hi) const;
  Histogram1D MarginalYByYRange(int y_lo, int y_hi) const;

  /// Same, for a categorical Y split: rows with mask[y] != want are
  /// excluded.
  Histogram1D MarginalXByYMask(const std::vector<uint8_t>& mask,
                               uint8_t want) const;

  /// Per-class totals of the whole matrix.
  std::vector<int64_t> ClassTotals() const;
  int64_t Total() const;

  /// Adds every cell of `other` (same shape) into this matrix.
  void Merge(const HistogramMatrix& other);

  /// Subtracts every cell of `other` (same shape, cell-wise lower bound)
  /// from this matrix; see Histogram1D::Subtract.
  void Subtract(const HistogramMatrix& other);

  /// Mutable row-major cell array for the attribute-major batch kernels
  /// in hist/hist_kernels.h.
  int64_t* data() { return counts_.data(); }
  const int64_t* data() const { return counts_.data(); }

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(counts_.size()) * sizeof(int64_t);
  }

 private:
  size_t Index(int x, int y, ClassId c) const {
    return (static_cast<size_t>(x) * ny_ + y) * nc_ + c;
  }

  int nx_ = 0;
  int ny_ = 0;
  int nc_ = 0;
  std::vector<int64_t> counts_;
};

}  // namespace cmp

#endif  // CMP_HIST_HISTOGRAM2D_H_
