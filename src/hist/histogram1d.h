#ifndef CMP_HIST_HISTOGRAM1D_H_
#define CMP_HIST_HISTOGRAM1D_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace cmp {

/// Class histogram over the intervals of one discretized attribute:
/// counts[i][c] = number of records in interval i with class c.
class Histogram1D {
 public:
  Histogram1D() = default;
  Histogram1D(int num_intervals, int num_classes)
      : num_intervals_(num_intervals),
        num_classes_(num_classes),
        counts_(static_cast<size_t>(num_intervals) * num_classes, 0) {}

  int num_intervals() const { return num_intervals_; }
  int num_classes() const { return num_classes_; }

  void Add(int interval, ClassId c, int64_t delta = 1) {
    counts_[static_cast<size_t>(interval) * num_classes_ + c] += delta;
  }

  int64_t count(int interval, ClassId c) const {
    return counts_[static_cast<size_t>(interval) * num_classes_ + c];
  }

  /// Pointer to the class-count row of one interval.
  const int64_t* row(int interval) const {
    return counts_.data() + static_cast<size_t>(interval) * num_classes_;
  }

  /// Mutable row-major cell array (num_intervals × num_classes) for the
  /// attribute-major batch kernels in hist/hist_kernels.h, which add
  /// straight into it.
  int64_t* data() { return counts_.data(); }
  const int64_t* data() const { return counts_.data(); }

  /// Total records in interval `i`.
  int64_t IntervalTotal(int i) const;

  /// Per-class totals over all intervals.
  std::vector<int64_t> ClassTotals() const;

  /// Total record count.
  int64_t Total() const;

  /// Adds every cell of `other` into this histogram. Shapes must match.
  void Merge(const Histogram1D& other);

  /// Subtracts every cell of `other` from this histogram. Shapes must
  /// match and `other` must be a cell-wise lower bound (sibling
  /// subtraction derives a child as parent minus its sibling, so no cell
  /// can go negative).
  void Subtract(const Histogram1D& other);

  /// Per-class counts in intervals [0, i) (records strictly left of
  /// interval i). Convenience for split scans and tests.
  std::vector<int64_t> PrefixBefore(int i) const;

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(counts_.size()) * sizeof(int64_t);
  }

 private:
  int num_intervals_ = 0;
  int num_classes_ = 0;
  std::vector<int64_t> counts_;
};

}  // namespace cmp

#endif  // CMP_HIST_HISTOGRAM1D_H_
