#include "hist/sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cmp {

QuantileSketch::QuantileSketch(int capacity)
    : capacity_(std::max(8, capacity)) {}

void QuantileSketch::Add(double v) {
  if (count_ == 0) {
    min_value_ = v;
    max_value_ = v;
  } else {
    min_value_ = std::min(min_value_, v);
    max_value_ = std::max(max_value_, v);
  }
  ++count_;
  if (levels_.empty()) levels_.emplace_back();
  levels_[0].push_back(v);
  if (levels_[0].size() >= static_cast<size_t>(capacity_)) Compact(0);
}

void QuantileSketch::AddN(const double* values, int64_t n) {
  for (int64_t i = 0; i < n; ++i) Add(values[i]);
}

void QuantileSketch::Compact(size_t h) {
  while (h < levels_.size() &&
         levels_[h].size() >= static_cast<size_t>(capacity_)) {
    std::vector<double>& level = levels_[h];
    std::sort(level.begin(), level.end());
    // Compact the first 2m values; an odd straggler stays behind at this
    // level. Promoting the odd positions (1, 3, ...) of the sorted run
    // shifts any rank estimate by at most the level weight 2^h.
    const size_t pairs = level.size() / 2;
    if (pairs == 0) return;
    std::vector<double> promoted;
    promoted.reserve(pairs);
    for (size_t i = 0; i < pairs; ++i) promoted.push_back(level[2 * i + 1]);
    if (level.size() % 2 != 0) {
      level[0] = level.back();
      level.resize(1);
    } else {
      level.clear();
    }
    error_bound_ += int64_t{1} << h;
    if (h + 1 >= levels_.size()) levels_.emplace_back();
    // `promoted` is sorted; merge it into the (sorted) next level.
    std::vector<double>& next = levels_[h + 1];
    std::vector<double> merged;
    merged.reserve(next.size() + promoted.size());
    std::merge(next.begin(), next.end(), promoted.begin(), promoted.end(),
               std::back_inserter(merged));
    next = std::move(merged);
    ++h;
  }
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_value_ = other.min_value_;
    max_value_ = other.max_value_;
  } else {
    min_value_ = std::min(min_value_, other.min_value_);
    max_value_ = std::max(max_value_, other.max_value_);
  }
  count_ += other.count_;
  error_bound_ += other.error_bound_;
  if (levels_.size() < other.levels_.size()) {
    levels_.resize(other.levels_.size());
  }
  for (size_t h = 0; h < other.levels_.size(); ++h) {
    const std::vector<double>& src = other.levels_[h];
    if (src.empty()) continue;
    std::vector<double>& dst = levels_[h];
    if (h == 0) {
      dst.insert(dst.end(), src.begin(), src.end());
    } else {
      std::vector<double> merged;
      merged.reserve(dst.size() + src.size());
      std::merge(dst.begin(), dst.end(), src.begin(), src.end(),
                 std::back_inserter(merged));
      dst = std::move(merged);
    }
  }
  // Restore the capacity invariant bottom-up so a cascade at level h
  // lands in an already-consolidated level h+1.
  for (size_t h = 0; h < levels_.size(); ++h) Compact(h);
}

std::vector<QuantileSketch::Item> QuantileSketch::Summary() const {
  std::vector<Item> items;
  int64_t total_items = 0;
  for (const std::vector<double>& level : levels_) {
    total_items += static_cast<int64_t>(level.size());
  }
  items.reserve(total_items);
  for (size_t h = 0; h < levels_.size(); ++h) {
    const int64_t weight = int64_t{1} << h;
    for (double v : levels_[h]) items.push_back({v, weight});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.value != b.value ? a.value < b.value : a.weight < b.weight;
  });
  return items;
}

int64_t QuantileSketch::EstimatedRankAtMost(double v) const {
  int64_t rank = 0;
  for (size_t h = 0; h < levels_.size(); ++h) {
    const std::vector<double>& level = levels_[h];
    const int64_t weight = int64_t{1} << h;
    if (h == 0) {
      for (double x : level) {
        if (x <= v) rank += weight;
      }
    } else {
      const auto it = std::upper_bound(level.begin(), level.end(), v);
      rank += weight * static_cast<int64_t>(it - level.begin());
    }
  }
  return rank;
}

IntervalGrid QuantileSketch::ToEqualDepthGrid(int q) const {
  if (count_ == 0 || q <= 1) {
    if (count_ == 0) return IntervalGrid();
    return IntervalGrid::FromBoundaries({}, min_value_, max_value_);
  }
  const std::vector<Item> items = Summary();
  // Cumulative weight at or below each summary item.
  std::vector<int64_t> cum(items.size());
  int64_t running = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    running += items[i].weight;
    cum[i] = running;
  }
  const int64_t n = count_;
  std::vector<double> boundaries;
  boundaries.reserve(q - 1);
  for (int i = 1; i < q; ++i) {
    // Mirror EqualDepthFromSorted: the cut is the value at sorted
    // position min(n-1, n*i/q) — here the first summary item whose
    // cumulative weight exceeds that position.
    const int64_t pos = std::min<int64_t>(n - 1, (n * i) / q);
    const auto it = std::upper_bound(cum.begin(), cum.end(), pos);
    const size_t idx = std::min<size_t>(
        static_cast<size_t>(it - cum.begin()), items.size() - 1);
    const double cut = items[idx].value;
    if (boundaries.empty() || cut > boundaries.back()) {
      boundaries.push_back(cut);
    }
  }
  while (!boundaries.empty() && boundaries.back() >= max_value_) {
    boundaries.pop_back();
  }
  return IntervalGrid::FromBoundaries(std::move(boundaries), min_value_,
                                      max_value_);
}

int64_t QuantileSketch::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(*this));
  for (const std::vector<double>& level : levels_) {
    bytes += static_cast<int64_t>(level.capacity()) * sizeof(double);
  }
  return bytes;
}

bool QuantileSketch::FromState(int capacity, int64_t count, double min_value,
                               double max_value, int64_t error_bound,
                               std::vector<std::vector<double>> levels,
                               QuantileSketch* out) {
  if (capacity < 8 || count < 0 || error_bound < 0) return false;
  if (count == 0) {
    for (const std::vector<double>& level : levels) {
      if (!level.empty()) return false;
    }
    *out = QuantileSketch(capacity);
    return true;
  }
  if (min_value > max_value) return false;
  if (std::isnan(min_value) || std::isnan(max_value)) return false;
  int64_t ladder_count = 0;
  for (size_t h = 0; h < levels.size(); ++h) {
    if (h >= 63) return false;
    if (levels[h].size() > static_cast<size_t>(capacity) * 2) return false;
    if (h > 0 && !std::is_sorted(levels[h].begin(), levels[h].end())) {
      return false;
    }
    for (double v : levels[h]) {
      if (std::isnan(v) || v < min_value || v > max_value) return false;
    }
    ladder_count += static_cast<int64_t>(levels[h].size()) << h;
  }
  if (ladder_count != count) return false;
  QuantileSketch sketch(capacity);
  sketch.count_ = count;
  sketch.min_value_ = min_value;
  sketch.max_value_ = max_value;
  sketch.error_bound_ = error_bound;
  sketch.levels_ = std::move(levels);
  *out = std::move(sketch);
  return true;
}

}  // namespace cmp
