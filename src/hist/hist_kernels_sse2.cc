// SSE2 tier of the histogram kernels (see hist_kernels.h). SSE2 is the
// x86-64 architectural baseline, so this file needs no special compile
// flags there; it exists so hosts (or forced selections) without
// OS-enabled AVX state still get vector code-widening on the
// contiguous-batch fast path. Without gathers, non-contiguous batches
// fall through to the scalar accumulators — the tiers only ever differ
// in speed, never in cells.

#include "hist/hist_kernels.h"
#include "hist/hist_kernels_impl.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <algorithm>
#include <cstring>

namespace cmp {

namespace {

constexpr size_t kChunk = 256;

// 32-bit lane-wise multiply out of SSE2 parts (pmulld is SSE4.1): even
// and odd lanes via pmuludq, re-interleaved.
inline __m128i Mullo32(__m128i a, __m128i b) {
  const __m128i even = _mm_mul_epu32(a, b);
  const __m128i odd =
      _mm_mul_epu32(_mm_srli_epi64(a, 32), _mm_srli_epi64(b, 32));
  return _mm_unpacklo_epi32(
      _mm_shuffle_epi32(even, _MM_SHUFFLE(0, 0, 2, 0)),
      _mm_shuffle_epi32(odd, _MM_SHUFFLE(0, 0, 2, 0)));
}

// Widens 8 sequential codes to two 4 x i32 vectors.
inline void LoadCodes8(const uint8_t* c0, __m128i* lo, __m128i* hi) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i bytes =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(c0));
  const __m128i w = _mm_unpacklo_epi8(bytes, zero);
  *lo = _mm_unpacklo_epi16(w, zero);
  *hi = _mm_unpackhi_epi16(w, zero);
}
inline void LoadCodes8(const uint16_t* c0, __m128i* lo, __m128i* hi) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i w = _mm_loadu_si128(reinterpret_cast<const __m128i*>(c0));
  *lo = _mm_unpacklo_epi16(w, zero);
  *hi = _mm_unpackhi_epi16(w, zero);
}

inline void IncrementSweep(const int32_t* idx, size_t m, int64_t* counts) {
  size_t k = 0;
  for (; k + 4 <= m; k += 4) {
    counts[idx[k]]++;
    counts[idx[k + 1]]++;
    counts[idx[k + 2]]++;
    counts[idx[k + 3]]++;
  }
  for (; k < m; ++k) counts[idx[k]]++;
}

template <typename Code>
void Accum1DSse2(const Code* codes, const ClassId* batch_labels,
                 const RecordId* rids, size_t n, int nc, int64_t* counts) {
  alignas(16) int32_t idx[kChunk];
  const __m128i vnc = _mm_set1_epi32(nc);
  size_t done = 0;
  while (done < n) {
    const size_t m = std::min(kChunk, n - done);
    const RecordId* r = rids + done;
    const ClassId* l = batch_labels + done;
    if (!hist_impl::ContiguousRids(r, m)) {
      hist_impl::Accum1D(codes, l, r, m, nc, counts);
      done += m;
      continue;
    }
    const Code* c0 = codes + r[0];
    size_t k = 0;
    for (; k + 8 <= m; k += 8) {
      __m128i clo;
      __m128i chi;
      LoadCodes8(c0 + k, &clo, &chi);
      const __m128i llo =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(l + k));
      const __m128i lhi =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(l + k + 4));
      _mm_store_si128(reinterpret_cast<__m128i*>(idx + k),
                      _mm_add_epi32(Mullo32(clo, vnc), llo));
      _mm_store_si128(reinterpret_cast<__m128i*>(idx + k + 4),
                      _mm_add_epi32(Mullo32(chi, vnc), lhi));
    }
    for (; k < m; ++k) {
      idx[k] = static_cast<int32_t>(c0[k]) * nc + l[k];
    }
    IncrementSweep(idx, m, counts);
    done += m;
  }
}

template <typename Code>
void Accum2DSse2(const int32_t* xrows, const Code* codes,
                 const ClassId* batch_labels, const RecordId* rids, size_t n,
                 int ny, int nc, int64_t* counts) {
  alignas(16) int32_t idx[kChunk];
  const __m128i vnc = _mm_set1_epi32(nc);
  const __m128i vny = _mm_set1_epi32(ny);
  size_t done = 0;
  while (done < n) {
    const size_t m = std::min(kChunk, n - done);
    const RecordId* r = rids + done;
    const ClassId* l = batch_labels + done;
    const int32_t* x = xrows + done;
    if (!hist_impl::ContiguousRids(r, m)) {
      hist_impl::Accum2D(x, codes, l, r, m, ny, nc, counts);
      done += m;
      continue;
    }
    const Code* c0 = codes + r[0];
    size_t k = 0;
    for (; k + 8 <= m; k += 8) {
      __m128i clo;
      __m128i chi;
      LoadCodes8(c0 + k, &clo, &chi);
      const __m128i xlo =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + k));
      const __m128i xhi =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + k + 4));
      const __m128i llo =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(l + k));
      const __m128i lhi =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(l + k + 4));
      const __m128i celllo = _mm_add_epi32(Mullo32(xlo, vny), clo);
      const __m128i cellhi = _mm_add_epi32(Mullo32(xhi, vny), chi);
      _mm_store_si128(reinterpret_cast<__m128i*>(idx + k),
                      _mm_add_epi32(Mullo32(celllo, vnc), llo));
      _mm_store_si128(reinterpret_cast<__m128i*>(idx + k + 4),
                      _mm_add_epi32(Mullo32(cellhi, vnc), lhi));
    }
    for (; k < m; ++k) {
      idx[k] = (x[k] * ny + static_cast<int32_t>(c0[k])) * nc + l[k];
    }
    IncrementSweep(idx, m, counts);
    done += m;
  }
}

void GatherLabelsSse2(const ClassId* labels, const RecordId* rids, size_t n,
                      ClassId* out) {
  if (hist_impl::ContiguousRids(rids, n)) {
    if (n > 0) std::memcpy(out, labels + rids[0], n * sizeof(ClassId));
    return;
  }
  hist_impl::GatherLabelsScalar(labels, rids, n, out);
}

template <typename Code>
void GatherXRowsSse2(const Code* codes, int x_lo, const RecordId* rids,
                     size_t n, int32_t* out) {
  if (!hist_impl::ContiguousRids(rids, n)) {
    hist_impl::GatherXRowsScalar(codes, x_lo, rids, n, out);
    return;
  }
  const Code* c0 = n > 0 ? codes + rids[0] : codes;
  const __m128i vlo = _mm_set1_epi32(x_lo);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i clo;
    __m128i chi;
    LoadCodes8(c0 + i, &clo, &chi);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_sub_epi32(clo, vlo));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + 4),
                     _mm_sub_epi32(chi, vlo));
  }
  for (; i < n; ++i) out[i] = static_cast<int32_t>(c0[i]) - x_lo;
}

constexpr HistKernelOps kSse2Ops = {
    GatherLabelsSse2,
    GatherXRowsSse2<uint8_t>,
    GatherXRowsSse2<uint16_t>,
    Accum1DSse2<uint8_t>,
    Accum1DSse2<uint16_t>,
    Accum2DSse2<uint8_t>,
    Accum2DSse2<uint16_t>,
};

}  // namespace

const HistKernelOps* Sse2HistKernelOpsOrNull() { return &kSse2Ops; }

}  // namespace cmp

#else  // !defined(__SSE2__)

namespace cmp {

const HistKernelOps* Sse2HistKernelOpsOrNull() { return nullptr; }

}  // namespace cmp

#endif  // defined(__SSE2__)
