#include "hist/quantiles.h"

#include <algorithm>
#include <cassert>

namespace cmp {

IntervalGrid IntervalGrid::EqualDepth(const std::vector<double>& values,
                                      int q) {
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  return EqualDepthFromSorted(sorted, q);
}

IntervalGrid IntervalGrid::EqualDepthFromSorted(
    const std::vector<double>& sorted, int q) {
  assert(q >= 1);
  assert(std::is_sorted(sorted.begin(), sorted.end()));
  IntervalGrid grid;
  if (sorted.empty() || q <= 1) {
    if (!sorted.empty()) {
      grid.min_value_ = sorted.front();
      grid.max_value_ = sorted.back();
    }
    return grid;
  }
  grid.min_value_ = sorted.front();
  grid.max_value_ = sorted.back();
  const int64_t n = static_cast<int64_t>(sorted.size());
  grid.boundaries_.reserve(q - 1);
  for (int i = 1; i < q; ++i) {
    // Cut after the i-th q-quantile position.
    const int64_t pos = std::min<int64_t>(n - 1, (n * i) / q);
    const double cut = sorted[pos];
    if (grid.boundaries_.empty() || cut > grid.boundaries_.back()) {
      grid.boundaries_.push_back(cut);
    }
  }
  // A cut equal to the global maximum would leave an empty last interval;
  // drop it.
  while (!grid.boundaries_.empty() && grid.boundaries_.back() >= sorted.back()) {
    grid.boundaries_.pop_back();
  }
  return grid;
}

IntervalGrid IntervalGrid::EqualWidth(const std::vector<double>& values,
                                      int q) {
  double lo = 0.0;
  double hi = 0.0;
  if (!values.empty()) {
    const auto [lo_it, hi_it] =
        std::minmax_element(values.begin(), values.end());
    lo = *lo_it;
    hi = *hi_it;
  }
  return EqualWidthFromBounds(values.empty(), lo, hi, q);
}

IntervalGrid IntervalGrid::EqualWidthFromSorted(
    const std::vector<double>& sorted, int q) {
  assert(std::is_sorted(sorted.begin(), sorted.end()));
  const double lo = sorted.empty() ? 0.0 : sorted.front();
  const double hi = sorted.empty() ? 0.0 : sorted.back();
  return EqualWidthFromBounds(sorted.empty(), lo, hi, q);
}

IntervalGrid IntervalGrid::EqualWidthFromBounds(bool empty, double lo,
                                                double hi, int q) {
  IntervalGrid grid;
  if (empty || q <= 1) {
    if (!empty) {
      grid.min_value_ = lo;
      grid.max_value_ = hi;
    }
    return grid;
  }
  grid.min_value_ = lo;
  grid.max_value_ = hi;
  if (lo == hi) return grid;  // constant column: one interval
  grid.boundaries_.reserve(q - 1);
  for (int i = 1; i < q; ++i) {
    const double cut = lo + (hi - lo) * i / q;
    if (grid.boundaries_.empty() || cut > grid.boundaries_.back()) {
      grid.boundaries_.push_back(cut);
    }
  }
  return grid;
}

IntervalGrid IntervalGrid::FromBoundaries(std::vector<double> boundaries,
                                          double min_value,
                                          double max_value) {
  IntervalGrid grid;
  assert(std::is_sorted(boundaries.begin(), boundaries.end()));
  grid.boundaries_ = std::move(boundaries);
  if (min_value == 0.0 && max_value == 0.0 && !grid.boundaries_.empty()) {
    grid.min_value_ = grid.boundaries_.front();
    grid.max_value_ = grid.boundaries_.back();
  } else {
    grid.min_value_ = min_value;
    grid.max_value_ = max_value;
  }
  return grid;
}

int IntervalGrid::IntervalOf(double v) const {
  // Interval i covers (b_i, b_{i+1}]: the first boundary >= v identifies
  // the interval.
  const auto it = std::lower_bound(boundaries_.begin(), boundaries_.end(), v);
  return static_cast<int>(it - boundaries_.begin());
}

}  // namespace cmp
