#include "hist/bin_codes.h"

#include <utility>

namespace cmp {

namespace {

constexpr int kMaxRows8 = 256;
constexpr int kMaxRows16 = 65536;

// Column allocation sizes including the gather padding the vector
// kernel tiers require (kCodeColumnPadding readable bytes past the last
// record; the padding stays zero-initialized and is never addressed as
// a record).
size_t PaddedU8(size_t n) {
  return n + static_cast<size_t>(kCodeColumnPadding);
}
size_t PaddedU16(size_t n) {
  return n + (static_cast<size_t>(kCodeColumnPadding) + 1) / 2;
}

}  // namespace

BinCodeCache::BinCodeCache(const Schema& schema, int64_t num_records,
                           int max_intervals)
    : n_(num_records) {
  // The gate is decided up front from static bounds (the grid-size cap
  // and the categorical cardinalities) so concurrent column encoders
  // never have to flip enabled_ mid-build.
  if (max_intervals > kMaxRows16) return;
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (!schema.is_numeric(a) && schema.attr(a).cardinality > kMaxRows16) {
      return;
    }
  }
  enabled_ = true;
  cols_.resize(schema.num_attrs());
}

void BinCodeCache::EncodeNumericColumn(AttrId a, const IntervalGrid& grid,
                                       const std::vector<double>& column) {
  assert(enabled_);
  assert(static_cast<int64_t>(column.size()) == n_);
  Column& col = cols_[a];
  // Width follows the ACTUAL interval count (collapsed duplicate cuts
  // can shrink a 300-interval request under 256), not the requested cap.
  const int rows = grid.num_intervals();
  assert(rows <= kMaxRows16);
  if (rows <= kMaxRows8) {
    col.width = 1;
    col.u8.resize(PaddedU8(column.size()));
    for (size_t i = 0; i < column.size(); ++i) {
      col.u8[i] = static_cast<uint8_t>(grid.IntervalOf(column[i]));
    }
  } else {
    col.width = 2;
    col.u16.resize(PaddedU16(column.size()));
    for (size_t i = 0; i < column.size(); ++i) {
      col.u16[i] = static_cast<uint16_t>(grid.IntervalOf(column[i]));
    }
  }
}

void BinCodeCache::EncodeCategoricalColumn(AttrId a,
                                           const std::vector<int32_t>& column) {
  assert(enabled_);
  assert(static_cast<int64_t>(column.size()) == n_);
  Column& col = cols_[a];
  int32_t max_value = 0;
  for (int32_t v : column) max_value = std::max(max_value, v);
  if (max_value < kMaxRows8) {
    col.width = 1;
    col.u8.resize(PaddedU8(column.size()));
    for (size_t i = 0; i < column.size(); ++i) {
      col.u8[i] = static_cast<uint8_t>(column[i]);
    }
  } else {
    col.width = 2;
    col.u16.resize(PaddedU16(column.size()));
    for (size_t i = 0; i < column.size(); ++i) {
      col.u16[i] = static_cast<uint16_t>(column[i]);
    }
  }
}

void BinCodeCache::SetLabels(std::vector<ClassId> labels) {
  assert(enabled_);
  assert(static_cast<int64_t>(labels.size()) == n_);
  labels_ = std::move(labels);
}

int64_t BinCodeCache::MemoryBytes() const {
  int64_t bytes = 0;
  for (const Column& c : cols_) {
    bytes += static_cast<int64_t>(c.u8.capacity()) * sizeof(uint8_t);
    bytes += static_cast<int64_t>(c.u16.capacity()) * sizeof(uint16_t);
  }
  bytes += static_cast<int64_t>(labels_.capacity()) * sizeof(ClassId);
  return bytes;
}

}  // namespace cmp
