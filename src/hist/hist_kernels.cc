#include "hist/hist_kernels.h"

#include "hist/hist_kernels_impl.h"

namespace cmp {

namespace {

using hist_impl::Accum1D;
using hist_impl::Accum2D;
using hist_impl::GatherLabelsScalar;
using hist_impl::GatherXRowsScalar;

constexpr HistKernelOps kScalarOps = {
    GatherLabelsScalar,
    GatherXRowsScalar<uint8_t>,
    GatherXRowsScalar<uint16_t>,
    Accum1D<uint8_t>,
    Accum1D<uint16_t>,
    Accum2D<uint8_t>,
    Accum2D<uint16_t>,
};

}  // namespace

// Sse2HistKernelOpsOrNull / Avx2HistKernelOpsOrNull are defined in
// hist_kernels_sse2.cc / hist_kernels_avx2.cc. Each returns null when
// its translation unit was compiled without the ISA (non-x86 target or
// a compiler without the flag), which makes the fallback chain below a
// link-time property of the build, not an #ifdef maze here.

const HistKernelOps& HistKernelOpsFor(KernelIsa isa) {
  if (isa == KernelIsa::kAvx2) {
    if (const HistKernelOps* ops = Avx2HistKernelOpsOrNull()) return *ops;
    isa = KernelIsa::kSse2;
  }
  if (isa == KernelIsa::kSse2) {
    if (const HistKernelOps* ops = Sse2HistKernelOpsOrNull()) return *ops;
  }
  return kScalarOps;
}

const HistKernelOps& ActiveHistKernelOps() {
  return HistKernelOpsFor(ActiveKernelIsa());
}

void GatherLabels(const ClassId* labels, const RecordId* rids, size_t n,
                  std::vector<ClassId>* out) {
  out->resize(n);
  ActiveHistKernelOps().gather_labels(labels, rids, n, out->data());
}

void GatherXRows(const CodeView& xcodes, int x_lo, const RecordId* rids,
                 size_t n, std::vector<int32_t>* out) {
  out->resize(n);
  const HistKernelOps& ops = ActiveHistKernelOps();
  if (xcodes.u8 != nullptr) {
    ops.gather_xrows_u8(xcodes.u8, x_lo, rids, n, out->data());
  } else {
    ops.gather_xrows_u16(xcodes.u16, x_lo, rids, n, out->data());
  }
}

void AccumulateHist1D(const CodeView& codes, const ClassId* batch_labels,
                      const RecordId* rids, size_t n, int nc,
                      int64_t* counts) {
  const HistKernelOps& ops = ActiveHistKernelOps();
  if (codes.u8 != nullptr) {
    ops.accum1d_u8(codes.u8, batch_labels, rids, n, nc, counts);
  } else {
    ops.accum1d_u16(codes.u16, batch_labels, rids, n, nc, counts);
  }
}

void AccumulateHist2D(const int32_t* xrows, const CodeView& codes,
                      const ClassId* batch_labels, const RecordId* rids,
                      size_t n, int ny, int nc, int64_t* counts) {
  const HistKernelOps& ops = ActiveHistKernelOps();
  if (codes.u8 != nullptr) {
    ops.accum2d_u8(xrows, codes.u8, batch_labels, rids, n, ny, nc, counts);
  } else {
    ops.accum2d_u16(xrows, codes.u16, batch_labels, rids, n, ny, nc, counts);
  }
}

}  // namespace cmp
