#include "hist/hist_kernels.h"

namespace cmp {

namespace {

// The width template moves the u8/u16 branch out of the inner loops; the
// nc == 2 specialization strength-reduces the row multiply to a shift
// (binary classification is the common case in the paper's workloads).
template <typename Code>
void Accum1D(const Code* codes, const ClassId* batch_labels,
             const RecordId* rids, size_t n, int nc, int64_t* counts) {
  if (nc == 2) {
    for (size_t i = 0; i < n; ++i) {
      counts[(static_cast<size_t>(codes[rids[i]]) << 1) + batch_labels[i]]++;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    counts[static_cast<size_t>(codes[rids[i]]) * nc + batch_labels[i]]++;
  }
}

template <typename Code>
void Accum2D(const int32_t* xrows, const Code* codes,
             const ClassId* batch_labels, const RecordId* rids, size_t n,
             int ny, int nc, int64_t* counts) {
  if (nc == 2) {
    for (size_t i = 0; i < n; ++i) {
      const size_t cell =
          static_cast<size_t>(xrows[i]) * ny + codes[rids[i]];
      counts[(cell << 1) + batch_labels[i]]++;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t cell = static_cast<size_t>(xrows[i]) * ny + codes[rids[i]];
    counts[cell * nc + batch_labels[i]]++;
  }
}

}  // namespace

void GatherLabels(const ClassId* labels, const RecordId* rids, size_t n,
                  std::vector<ClassId>* out) {
  out->resize(n);
  ClassId* dst = out->data();
  for (size_t i = 0; i < n; ++i) dst[i] = labels[rids[i]];
}

void GatherXRows(const CodeView& xcodes, int x_lo, const RecordId* rids,
                 size_t n, std::vector<int32_t>* out) {
  out->resize(n);
  int32_t* dst = out->data();
  if (xcodes.u8 != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      dst[i] = static_cast<int32_t>(xcodes.u8[rids[i]]) - x_lo;
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      dst[i] = static_cast<int32_t>(xcodes.u16[rids[i]]) - x_lo;
    }
  }
}

void AccumulateHist1D(const CodeView& codes, const ClassId* batch_labels,
                      const RecordId* rids, size_t n, int nc,
                      int64_t* counts) {
  if (codes.u8 != nullptr) {
    Accum1D(codes.u8, batch_labels, rids, n, nc, counts);
  } else {
    Accum1D(codes.u16, batch_labels, rids, n, nc, counts);
  }
}

void AccumulateHist2D(const int32_t* xrows, const CodeView& codes,
                      const ClassId* batch_labels, const RecordId* rids,
                      size_t n, int ny, int nc, int64_t* counts) {
  if (codes.u8 != nullptr) {
    Accum2D(xrows, codes.u8, batch_labels, rids, n, ny, nc, counts);
  } else {
    Accum2D(xrows, codes.u16, batch_labels, rids, n, ny, nc, counts);
  }
}

}  // namespace cmp
