#ifndef CMP_HIST_GRIDS_H_
#define CMP_HIST_GRIDS_H_

#include <vector>

#include "common/dataset.h"
#include "hist/histogram1d.h"
#include "hist/quantiles.h"
#include "io/scan.h"

namespace cmp {

/// Which discretization the per-attribute grids use.
enum class Discretization {
  kEqualDepth,  // quantiling (the paper's default)
  kEqualWidth,  // fixed-width ranges (cheaper, skew-sensitive)
};

class ThreadPool;

/// Builds the per-attribute interval grids used by CLOUDS and the CMP
/// family: `intervals` intervals for each numeric attribute (categorical
/// attributes get an empty grid). The construction is charged to
/// `tracker` as one dataset scan, plus one sort per numeric attribute
/// for equal-depth grids. A `pool` fans the per-attribute sorts across
/// worker threads (the grids are identical for any thread count).
std::vector<IntervalGrid> ComputeGrids(const Dataset& ds, int intervals,
                                       Discretization kind,
                                       ScanTracker* tracker,
                                       ThreadPool* pool = nullptr);

/// Equal-depth convenience wrapper (the common case).
std::vector<IntervalGrid> ComputeEqualDepthGrids(const Dataset& ds,
                                                 int intervals,
                                                 ScanTracker* tracker);

/// Total bytes of the grids (for memory accounting).
int64_t GridsMemoryBytes(const std::vector<IntervalGrid>& grids);

/// One empty per-node class histogram per attribute: interval rows for
/// numeric attributes (per `grids`), one row per value for categorical
/// ones. The standard node-state scaffolding of the histogram builders.
std::vector<Histogram1D> MakeAttrHistograms(
    const Schema& schema, const std::vector<IntervalGrid>& grids,
    int num_classes);

}  // namespace cmp

#endif  // CMP_HIST_GRIDS_H_
