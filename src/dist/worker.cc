#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cmp/frontier.h"
#include "cmp/record_store.h"
#include "cmp/scan_pass.h"
#include "common/thread_pool.h"
#include "dist/dist.h"
#include "hist/bin_codes.h"
#include "io/block_source.h"
#include "io/scan.h"
#include "io/wire.h"
#include "tree/observer.h"
#include "tree/tree.h"

namespace cmp {
namespace dist {

namespace {

// Worker exit codes (the coordinator only distinguishes "clean" from
// "died": any abnormal exit surfaces as a closed socket and a training
// failure; the codes are for post-mortem `waitpid` inspection).
constexpr int kWorkerOk = 0;
constexpr int kWorkerProtocolError = 3;

// Test knob: CMP_DIST_TEST_DIE="rank:pass" makes that worker exit
// abruptly upon receiving that pass's kPassBegin, simulating a crash
// mid-pass. The fork inherits the coordinator's environment, so tests
// just set the variable before invoking training.
int DiePassForRank(int rank) {
  const char* spec = std::getenv("CMP_DIST_TEST_DIE");
  if (spec == nullptr) return -1;
  int die_rank = -1;
  int die_pass = -1;
  if (std::sscanf(spec, "%d:%d", &die_rank, &die_pass) != 2) return -1;
  return die_rank == rank ? die_pass : -1;
}

}  // namespace

int RunWorker(int fd) {
  using wire::MsgType;

  // ---- handshake: kHello carries everything the worker needs to stand
  // up its slice-local mirror of the build (rank, slice, scan options,
  // grids). The grids ride the same payload so the worker's bin-code
  // cache encodes against the coordinator's exact boundaries.
  MsgType type;
  std::string payload;
  std::string error;
  if (!wire::RecvFrame(fd, &type, &payload, &error) ||
      type != MsgType::kHello) {
    return kWorkerProtocolError;
  }
  wire::WireReader hello(payload);
  const int rank = static_cast<int>(hello.GetVar());
  std::string table_path;
  hello.GetString(&table_path);
  const int64_t slice_lo = static_cast<int64_t>(hello.GetVar());
  const int64_t slice_count = static_cast<int64_t>(hello.GetVar());
  int64_t block_records = hello.GetVarSigned();
  const int num_threads = static_cast<int>(hello.GetVar());
  const int scan_shards = static_cast<int>(hello.GetVar());
  const bool use_codes = hello.GetU8() != 0;
  const int intervals = static_cast<int>(hello.GetVar());
  if (!hello.ok()) return kWorkerProtocolError;

  auto nack = [&](const std::string& message) {
    wire::WireWriter w;
    w.PutU8(0);
    w.PutVar(0);
    w.PutString(message);
    wire::SendFrame(fd, MsgType::kHelloAck, w.buffer());
    return kWorkerProtocolError;
  };

  if (block_records <= 0) block_records = std::max<int64_t>(slice_count, 1);
  auto source = TableBlockSource::Open(table_path, block_records, slice_lo,
                                       slice_count);
  if (source == nullptr) {
    return nack("worker cannot open table slice of " + table_path);
  }
  const Schema& schema = source->schema();
  std::vector<IntervalGrid> grids;
  if (!wire::ReadGrids(&hello, schema, &grids) || !hello.AtEnd()) {
    return nack("malformed hello payload");
  }

  ThreadPool pool(num_threads);
  source->set_prefetch_pool(pool.num_threads() > 0 ? &pool : nullptr);
  StreamStore store(schema, slice_count);
  BuildStats local_stats;
  ScanTracker tracker(&local_stats);
  tracker.set_real_io(true);

  // The slice-local bin-code cache: encoded once from the broadcast
  // grids, read by every pass. AddCoded == Add cell for cell, so the
  // coordinator (which runs codeless) merges identical counts.
  BinCodeCache codes;
  if (use_codes) {
    codes = BinCodeCache(schema, slice_count, intervals);
    if (codes.enabled()) {
      std::vector<ClassId> labels;
      if (!source->ReadLabels(&labels)) return nack("cannot read labels");
      codes.SetLabels(std::move(labels));
      for (AttrId a = 0; a < schema.num_attrs(); ++a) {
        if (schema.is_numeric(a)) {
          std::vector<double> column;
          if (!source->ReadNumericColumn(a, &column)) {
            return nack("cannot read numeric column");
          }
          codes.EncodeNumericColumn(a, grids[a], column);
        } else {
          std::vector<int32_t> column;
          if (!source->ReadCategoricalColumn(a, &column)) {
            return nack("cannot read categorical column");
          }
          codes.EncodeCategoricalColumn(a, column);
        }
      }
    }
  }

  {
    wire::WireWriter w;
    w.PutU8(1);
    w.PutVar(static_cast<uint64_t>(slice_count));
    w.PutString("");
    if (!wire::SendFrame(fd, MsgType::kHelloAck, w.buffer())) {
      return kWorkerProtocolError;
    }
  }

  // Every record of the slice starts at the root; nid advances pass by
  // pass exactly as the single-process scan's map does for these
  // records (the re-broadcast tree replays the same splits).
  std::vector<NodeId> nid(slice_count, 0);
  const int die_pass = DiePassForRank(rank);

  // ---- pass loop ----
  for (int pass = 0;; ++pass) {
    if (!wire::RecvFrame(fd, &type, &payload, &error)) {
      return kWorkerProtocolError;
    }
    if (type == MsgType::kShutdown) return kWorkerOk;
    if (type != MsgType::kPassBegin) return kWorkerProtocolError;
    if (pass == die_pass) ::_exit(1);  // crash simulation (tests only)

    // kPassBegin: the tree in routing form, then the frontier skeleton
    // — empty mirrors of every fresh bundle, pending split and collect
    // list, in the coordinator's work-list order.
    wire::WireReader r(payload);
    DecisionTree tree(schema);
    if (!wire::ReadTree(&r, &tree)) return kWorkerProtocolError;
    FrontierQueues work;
    const uint64_t num_fresh = r.GetVar();
    if (num_fresh > r.remaining()) return kWorkerProtocolError;
    for (uint64_t i = 0; r.ok() && i < num_fresh; ++i) {
      FreshWork fw;
      fw.node = static_cast<NodeId>(r.GetVar());
      fw.derive_from_sibling = static_cast<int>(r.GetVarSigned());
      // Derived entries stay empty placeholders here: the coordinator
      // holds the parent counts and subtracts once after the rank-order
      // merge, so the worker must NOT touch them (subtraction disabled
      // below).
      if (!wire::ReadBundleShape(&r, schema, grids, &fw.bundle)) {
        return kWorkerProtocolError;
      }
      work.fresh.push_back(std::move(fw));
    }
    const uint64_t num_pending = r.GetVar();
    if (num_pending > r.remaining()) return kWorkerProtocolError;
    for (uint64_t i = 0; r.ok() && i < num_pending; ++i) {
      PendingWork pw;
      pw.node = static_cast<NodeId>(r.GetVar());
      if (!wire::ReadPendingSkeleton(&r, schema, grids, schema.num_classes(),
                                     &pw.pending)) {
        return kWorkerProtocolError;
      }
      work.pending.push_back(std::move(pw));
    }
    const uint64_t num_collect = r.GetVar();
    if (num_collect > r.remaining()) return kWorkerProtocolError;
    for (uint64_t i = 0; r.ok() && i < num_collect; ++i) {
      CollectWork cw;
      cw.node = static_cast<NodeId>(r.GetVar());
      work.collect.push_back(std::move(cw));
    }
    if (!r.AtEnd()) return kWorkerProtocolError;

    const int64_t bytes_before = source->bytes_read();
    PassObservation po;
    ScanPass<StreamStore> scan(store, *source, grids, tree, nid, &pool,
                               &tracker, use_codes ? &codes : nullptr,
                               scan_shards);
    scan.set_apply_sibling_subtraction(false);
    try {
      scan.Run(work, &po);
    } catch (...) {
      return kWorkerProtocolError;
    }

    // kPassResult: per-worker stats, then the accumulated state in the
    // skeleton's order — histogram cells for every scanned (non-derived)
    // fresh bundle, pending buffers/counts, collect rid lists, and the
    // full rows of every stashed record (the coordinator's resolve phase
    // re-reads them). All rids are slice-local; the coordinator rebases
    // by slice_lo.
    wire::WireWriter w;
    w.PutF64(po.kernel_seconds);
    w.PutVar(static_cast<uint64_t>(po.code_cache_bytes));
    w.PutVar(static_cast<uint64_t>(source->bytes_read() - bytes_before));
    w.PutVar(work.fresh.size());
    for (const FreshWork& fw : work.fresh) {
      if (fw.derive_from_sibling >= 0) continue;
      wire::WriteBundleCounts(&w, fw.bundle);
    }
    w.PutVar(work.pending.size());
    for (const PendingWork& pw : work.pending) {
      wire::WritePendingState(&w, *pw.pending);
    }
    w.PutVar(work.collect.size());
    for (const CollectWork& cw : work.collect) {
      w.PutVar(cw.rids.size());
      for (RecordId rid : cw.rids) w.PutVar(static_cast<uint64_t>(rid));
    }
    const std::vector<RecordId> stashed = store.StashedRids();
    w.PutVar(stashed.size());
    for (RecordId rid : stashed) {
      w.PutVar(static_cast<uint64_t>(rid));
      for (AttrId a = 0; a < schema.num_attrs(); ++a) {
        if (schema.is_numeric(a)) {
          w.PutF64(store.numeric(a, rid));
        } else {
          w.PutVarSigned(store.categorical(a, rid));
        }
      }
      w.PutVar(static_cast<uint64_t>(store.label(rid)));
    }
    if (!wire::SendFrame(fd, MsgType::kPassResult, w.buffer())) {
      return kWorkerProtocolError;
    }
    store.ClearStash();
  }
}

}  // namespace dist
}  // namespace cmp
