#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cmp/build_driver.h"
#include "cmp/frontier.h"
#include "common/timer.h"
#include "cmp/record_store.h"
#include "cmp/scan_pass.h"
#include "common/thread_pool.h"
#include "dist/dist.h"
#include "io/block_source.h"
#include "io/table_file.h"
#include "io/wire.h"

namespace cmp {
namespace dist {

namespace {

struct WorkerProc {
  int fd = -1;       // coordinator end of the socketpair
  pid_t pid = -1;
  int rank = 0;
  int64_t slice_lo = 0;
  int64_t slice_count = 0;
};

/// The distributed implementation of the build driver's transport seam
/// (PassScanner, scan_pass.h). Prepare broadcasts the handshake; each
/// RunPass ships the tree + frontier skeleton to every worker, then
/// merges the workers' results back IN RANK ORDER. Rank order is the
/// whole determinism argument: slices are contiguous ascending record
/// ranges, so rank-order merging reproduces the serial ascending-record
/// accumulation exactly the way the in-process sharded scan's
/// shard-order merge does — integer count adds are order-free anyway,
/// pending buffers are (value, rid)-sorted before use, and collect rid
/// lists are re-sorted ascending after the merge. Sibling subtraction
/// is applied once, here, after the merge (workers ship scanned bundles
/// only; their derived entries are empty placeholders).
class RemoteScan : public PassScanner {
 public:
  RemoteScan(std::vector<WorkerProc>* workers, StreamStore* store,
             const std::string& table_path, const CmpOptions& options,
             const DistOptions& dist)
      : workers_(workers),
        store_(store),
        table_path_(table_path),
        options_(options),
        dist_(dist) {}

  int64_t total_wire_bytes() const { return total_wire_bytes_; }

  void Prepare(const PassScanContext& ctx) override {
    grids_ = ctx.grids;
    tree_ = ctx.tree;
    num_records_ = ctx.num_records;
    tracker_ = ctx.tracker;

    // The workers' bin-code caches are pointless when the whole build
    // resolves as one root collect (mirrors the driver's own gate).
    const bool collect_only =
        options_.base.in_memory_threshold > 0 &&
        num_records_ <= options_.base.in_memory_threshold;
    const bool use_codes = options_.bin_code_cache && !collect_only;

    for (WorkerProc& wk : *workers_) {
      wire::WireWriter w;
      w.PutVar(static_cast<uint64_t>(wk.rank));
      w.PutString(table_path_);
      w.PutVar(static_cast<uint64_t>(wk.slice_lo));
      w.PutVar(static_cast<uint64_t>(wk.slice_count));
      w.PutVarSigned(dist_.block_records);
      w.PutVar(static_cast<uint64_t>(dist_.num_threads));
      w.PutVar(static_cast<uint64_t>(options_.scan_shards));
      w.PutU8(use_codes ? 1 : 0);
      w.PutVar(static_cast<uint64_t>(options_.intervals));
      wire::WriteGrids(&w, store_->schema(), *grids_);
      Send(wk, wire::MsgType::kHello, w.buffer());
    }
    for (WorkerProc& wk : *workers_) {
      const std::string payload = Recv(wk, wire::MsgType::kHelloAck);
      wire::WireReader r(payload);
      const bool ok = r.GetU8() != 0;
      const int64_t n_local = static_cast<int64_t>(r.GetVar());
      std::string message;
      r.GetString(&message);
      if (!r.ok() || !r.AtEnd()) Corrupt(wk);
      if (!ok) {
        throw std::runtime_error("dist: worker " + std::to_string(wk.rank) +
                                 " rejected handshake: " + message);
      }
      if (n_local != wk.slice_count) {
        throw std::runtime_error(
            "dist: worker " + std::to_string(wk.rank) +
            " sees a different slice size (stale table file?)");
      }
    }
  }

  void RunPass(FrontierQueues& work, PassObservation* po) override {
    const Schema& schema = store_->schema();
    tracker_->ChargeScan(num_records_, schema);
    tracker_->ChargeWrite(num_records_ *
                          static_cast<int64_t>(sizeof(NodeId)));
    pass_wire_bytes_ = 0;

    // One payload serves every worker: the current tree in routing form
    // plus the frontier skeleton (shapes only — never counts) in
    // work-list order.
    wire::WireWriter w;
    wire::WriteTree(&w, *tree_);
    w.PutVar(work.fresh.size());
    for (const FreshWork& fw : work.fresh) {
      w.PutVar(static_cast<uint64_t>(fw.node));
      w.PutVarSigned(fw.derive_from_sibling);
      wire::WriteBundleShape(&w, fw.bundle);
    }
    w.PutVar(work.pending.size());
    for (const PendingWork& pw : work.pending) {
      w.PutVar(static_cast<uint64_t>(pw.node));
      wire::WritePendingSkeleton(&w, *pw.pending);
    }
    w.PutVar(work.collect.size());
    for (const CollectWork& cw : work.collect) {
      w.PutVar(static_cast<uint64_t>(cw.node));
    }
    const std::string begin = w.Take();
    for (WorkerProc& wk : *workers_) {
      Send(wk, wire::MsgType::kPassBegin, begin);
    }

    // Merge phase: workers scan concurrently, the coordinator drains
    // their results strictly in rank order.
    double merge_seconds = 0.0;
    double kernel_seconds = 0.0;
    int64_t code_cache_bytes = 0;
    int64_t worker_bytes_read = 0;
    std::vector<double> nums(schema.num_attrs(), 0.0);
    std::vector<int32_t> cats(schema.num_attrs(), 0);
    for (WorkerProc& wk : *workers_) {
      const std::string payload = Recv(wk, wire::MsgType::kPassResult);
      Timer merge_timer;
      wire::WireReader r(payload);
      kernel_seconds += r.GetF64();
      code_cache_bytes += static_cast<int64_t>(r.GetVar());
      worker_bytes_read += static_cast<int64_t>(r.GetVar());

      if (r.GetVar() != work.fresh.size()) Corrupt(wk);
      for (FreshWork& fw : work.fresh) {
        if (fw.derive_from_sibling >= 0) continue;  // placeholder, not sent
        if (!wire::ReadBundleCountsInto(&r, &fw.bundle)) Corrupt(wk);
      }
      if (r.GetVar() != work.pending.size()) Corrupt(wk);
      for (PendingWork& pw : work.pending) {
        if (!wire::ReadPendingStateInto(&r, pw.pending.get(), wk.slice_lo)) {
          Corrupt(wk);
        }
      }
      if (r.GetVar() != work.collect.size()) Corrupt(wk);
      for (CollectWork& cw : work.collect) {
        const uint64_t count = r.GetVar();
        if (count > r.remaining()) Corrupt(wk);
        for (uint64_t i = 0; r.ok() && i < count; ++i) {
          cw.rids.push_back(static_cast<RecordId>(r.GetVar()) + wk.slice_lo);
        }
      }
      // The worker's stash rows (records its pending buffers and collect
      // lists retained) become the coordinator's stash: the resolve
      // phase re-reads them through the same StreamStore interface a
      // single-process streamed build uses.
      const uint64_t stash_count = r.GetVar();
      if (stash_count > r.remaining()) Corrupt(wk);
      for (uint64_t i = 0; r.ok() && i < stash_count; ++i) {
        const RecordId rid =
            static_cast<RecordId>(r.GetVar()) + wk.slice_lo;
        for (AttrId a = 0; a < schema.num_attrs(); ++a) {
          if (schema.is_numeric(a)) {
            nums[a] = r.GetF64();
          } else {
            cats[a] = static_cast<int32_t>(r.GetVarSigned());
          }
        }
        const uint64_t label = r.GetVar();
        if (label >= static_cast<uint64_t>(schema.num_classes())) Corrupt(wk);
        if (!r.ok()) break;
        store_->StashRecord(rid, nums, cats,
                            static_cast<ClassId>(label));
      }
      if (!r.AtEnd()) Corrupt(wk);
      merge_seconds += merge_timer.Seconds();
    }

    // Post-merge tail, mirroring ScanPass: sibling subtraction exactly
    // once against the fully merged sibling, then the collect lists
    // back to ascending (serial) record order.
    int64_t subtractions = 0;
    for (size_t i = 0; i < work.fresh.size(); ++i) {
      const int sib = work.fresh[i].derive_from_sibling;
      if (sib < 0) continue;
      work.fresh[i].bundle.SubtractSameShape(work.fresh[sib].bundle);
      ++subtractions;
    }
    for (CollectWork& cw : work.collect) {
      std::sort(cw.rids.begin(), cw.rids.end());
    }

    tracker_->ChargeRealBytes(worker_bytes_read);
    tracker_->NotePeakMemory(store_->stash_bytes());
    if (po != nullptr) {
      po->sibling_subtractions = subtractions;
      po->kernel_seconds = kernel_seconds;
      po->code_cache_bytes = code_cache_bytes;
      po->workers = static_cast<int64_t>(workers_->size());
      po->wire_bytes = pass_wire_bytes_;
      po->merge_seconds = merge_seconds;
    }
  }

 private:
  void Send(WorkerProc& wk, wire::MsgType type, const std::string& payload) {
    if (!wire::SendFrame(wk.fd, type, payload)) {
      throw std::runtime_error("dist: worker " + std::to_string(wk.rank) +
                               " died (send failed)");
    }
    const int64_t bytes =
        static_cast<int64_t>(wire::kFrameHeaderBytes + payload.size());
    pass_wire_bytes_ += bytes;
    total_wire_bytes_ += bytes;
  }

  std::string Recv(WorkerProc& wk, wire::MsgType want) {
    wire::MsgType type;
    std::string payload;
    std::string error;
    if (!wire::RecvFrame(wk.fd, &type, &payload, &error)) {
      throw std::runtime_error("dist: worker " + std::to_string(wk.rank) +
                               " failed mid-pass: " + error);
    }
    if (type != want) Corrupt(wk);
    const int64_t bytes =
        static_cast<int64_t>(wire::kFrameHeaderBytes + payload.size());
    pass_wire_bytes_ += bytes;
    total_wire_bytes_ += bytes;
    return payload;
  }

  [[noreturn]] void Corrupt(const WorkerProc& wk) {
    throw std::runtime_error("dist: corrupt result from worker " +
                             std::to_string(wk.rank));
  }

  std::vector<WorkerProc>* workers_;
  StreamStore* store_;
  const std::string table_path_;
  const CmpOptions options_;
  const DistOptions dist_;

  const std::vector<IntervalGrid>* grids_ = nullptr;
  const DecisionTree* tree_ = nullptr;
  int64_t num_records_ = 0;
  ScanTracker* tracker_ = nullptr;
  int64_t pass_wire_bytes_ = 0;
  int64_t total_wire_bytes_ = 0;
};

void ReapWorkers(std::vector<WorkerProc>* workers, bool kill) {
  for (WorkerProc& wk : *workers) {
    if (wk.fd >= 0) {
      ::close(wk.fd);
      wk.fd = -1;
    }
    if (wk.pid > 0 && kill) ::kill(wk.pid, SIGKILL);
  }
  for (WorkerProc& wk : *workers) {
    if (wk.pid <= 0) continue;
    int status = 0;
    ::waitpid(wk.pid, &status, 0);
    wk.pid = -1;
  }
}

}  // namespace

BuildResult DistTrain(const std::string& table_path,
                      const CmpOptions& options, const DistOptions& dist) {
  if (dist.num_workers < 1) {
    throw std::runtime_error("dist: --workers must be >= 1");
  }
  Schema schema;
  int64_t n = 0;
  if (!ReadTableHeader(table_path, &schema, &n)) {
    throw std::runtime_error("dist: cannot read table header: " + table_path);
  }

  // Fork the workers FIRST — before any thread pool exists in this
  // process, so the children never inherit locked pool state. Each
  // worker gets one socketpair end; the child closes every fd that is
  // not its own so a dead peer always surfaces as EOF.
  const int num_workers = dist.num_workers;
  std::vector<WorkerProc> workers(num_workers);
  for (int k = 0; k < num_workers; ++k) {
    workers[k].rank = k;
    workers[k].slice_lo = n * k / num_workers;
    workers[k].slice_count = n * (k + 1) / num_workers - workers[k].slice_lo;
  }
  for (int k = 0; k < num_workers; ++k) {
    int sp[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0) {
      ReapWorkers(&workers, /*kill=*/true);
      throw std::runtime_error("dist: socketpair failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sp[0]);
      ::close(sp[1]);
      ReapWorkers(&workers, /*kill=*/true);
      throw std::runtime_error("dist: fork failed");
    }
    if (pid == 0) {
      // Child: keep only this worker's socket end. _exit (not exit)
      // so the parent's stdio buffers are not flushed twice.
      ::close(sp[0]);
      for (int j = 0; j < k; ++j) ::close(workers[j].fd);
      ::_exit(RunWorker(sp[1]));
    }
    ::close(sp[1]);
    workers[k].fd = sp[0];
    workers[k].pid = pid;
  }

  BuildResult result;
  try {
    ThreadPool pool(options.base.num_threads);
    // The coordinator's source serves only whole-column reads (grid
    // build, root class counts) — it never block-scans; RemoteScan is
    // the scan.
    auto source = TableBlockSource::Open(table_path);
    if (source == nullptr) {
      throw std::runtime_error("dist: cannot open table: " + table_path);
    }
    StreamStore store(source->schema(), n);
    RemoteScan remote(&workers, &store, table_path, options, dist);
    // The coordinator never routes a record, so it builds no bin-code
    // cache over the full table; workers encode their own slices.
    // AddCoded and Add produce byte-identical cells, so the merged
    // histograms match a single-process build with either setting.
    CmpOptions coord = options;
    coord.bin_code_cache = false;
    CmpBuild<StreamStore> build(store, *source, coord, &pool, &result,
                                &remote);
    build.Run();
  } catch (...) {
    ReapWorkers(&workers, /*kill=*/true);
    throw;
  }

  // Orderly shutdown: every worker gets kShutdown and exits itself; a
  // worker that already vanished is simply reaped.
  for (WorkerProc& wk : workers) {
    wire::SendFrame(wk.fd, wire::MsgType::kShutdown, std::string());
  }
  ReapWorkers(&workers, /*kill=*/false);
  return result;
}

}  // namespace dist
}  // namespace cmp
