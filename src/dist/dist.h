#ifndef CMP_DIST_DIST_H_
#define CMP_DIST_DIST_H_

#include <cstdint>
#include <string>

#include "cmp/options.h"
#include "tree/builder.h"

namespace cmp {
namespace dist {

/// Multi-process histogram-merge training (cmptool train --workers K).
///
/// The coordinator forks K worker processes, each owning one contiguous
/// horizontal slice of the `.cmpt` table. Per pass, the coordinator
/// broadcasts the current tree and the frontier skeleton (io/wire.h
/// frames over a socketpair); every worker runs the ordinary sharded
/// ScanPass over its slice and ships back its local histogram bundles,
/// pending-buffer state, collect lists and record stash. The coordinator
/// merges the results in worker-rank order — the same contiguous
/// ascending-record decomposition the in-process sharded scan already
/// uses — applies sibling subtraction once, and resolves splits exactly
/// as a single-process build would. The resulting tree is byte-identical
/// to the single-process tree for every worker count, thread count and
/// block size.

struct DistOptions {
  /// Worker processes to fork. Slices are [k*n/K, (k+1)*n/K); empty
  /// slices (K > n) are legal and scan nothing.
  int num_workers = 2;
  /// Records per worker scan block. <= 0 streams each slice as ONE
  /// block (the in-memory working-set profile); a positive value bounds
  /// each worker's staging memory like `--stream --block B` does for a
  /// single-process build.
  int64_t block_records = 0;
  /// Threads per worker process (each worker owns a private pool,
  /// created after the fork).
  int num_threads = 1;
};

/// Trains a CMP-family tree over `table_path` with `dist.num_workers`
/// forked worker processes. Throws std::runtime_error when the table
/// cannot be read or a worker fails mid-build (the surviving workers
/// are killed and reaped before the throw propagates).
BuildResult DistTrain(const std::string& table_path,
                      const CmpOptions& options, const DistOptions& dist);

/// The worker protocol loop, run in the forked child over its inherited
/// socketpair end. Returns the process exit code (0 on orderly
/// shutdown). Exposed for tests; cmptool never calls it directly.
int RunWorker(int fd);

}  // namespace dist
}  // namespace cmp

#endif  // CMP_DIST_DIST_H_
