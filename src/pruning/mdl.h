#ifndef CMP_PRUNING_MDL_H_
#define CMP_PRUNING_MDL_H_

#include <cstdint>
#include <span>

#include "tree/tree.h"

namespace cmp {

/// MDL / PUBLIC-style pruning (Rastogi & Shim, VLDB 1998), used by every
/// builder in this library, as in the paper ("for pruning, we use the
/// algorithm in PUBLIC, since this is applied during the generation phase
/// of the decision tree").
///
/// Costs are measured in bits:
///  - a leaf costs 1 (node type) plus one bit per misclassified record
///    (the encode-the-exceptions simplification of MDL error coding);
///  - an internal node costs 1 + log2(num_attrs) for the split test plus
///    its children's costs.
/// PUBLIC(1)'s contribution is a *lower bound* on the cost of any yet
/// unbuilt subtree, so nodes that can never beat their own leaf cost are
/// pruned before they are ever expanded.

/// MDL cost in bits of turning a node with these class counts into a leaf.
double MdlLeafCost(std::span<const int64_t> class_counts);

/// PUBLIC(1) lower bound on the MDL cost of ANY subtree with at least one
/// split rooted at a node with the given class counts, over a dataset
/// with `num_attrs` attributes: minimized over the number of splits s,
///   cost(s) = 2*s + 1 + s*log2(num_attrs) + sum of the record counts of
///             all but the s+1 largest classes.
double PublicLowerBound(std::span<const int64_t> class_counts,
                        int num_attrs);

/// True if PUBLIC(1) says this node should not be expanded: the best
/// possible subtree already costs at least as much as the leaf.
bool ShouldPruneBeforeExpand(std::span<const int64_t> class_counts,
                             int num_attrs);

/// Bottom-up MDL pruning of a finished tree: replaces any subtree whose
/// total cost is not below its leaf cost by a leaf, then compacts the
/// tree. Returns the number of internal nodes removed.
int PruneTreeMdl(DecisionTree* tree);

}  // namespace cmp

#endif  // CMP_PRUNING_MDL_H_
