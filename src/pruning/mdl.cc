#include "pruning/mdl.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <vector>

namespace cmp {

namespace {

double SplitTestCost(int num_attrs) {
  return 1.0 + std::log2(std::max(2, num_attrs));
}

}  // namespace

double MdlLeafCost(std::span<const int64_t> class_counts) {
  int64_t n = 0;
  int64_t largest = 0;
  for (int64_t c : class_counts) {
    n += c;
    largest = std::max(largest, c);
  }
  return 1.0 + static_cast<double>(n - largest);
}

double PublicLowerBound(std::span<const int64_t> class_counts,
                        int num_attrs) {
  std::vector<int64_t> sorted(class_counts.begin(), class_counts.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<int64_t>());
  const int k = static_cast<int>(sorted.size());
  // Suffix sums: records in all classes after the first i largest.
  std::vector<int64_t> suffix(k + 1, 0);
  for (int i = k - 1; i >= 0; --i) suffix[i] = suffix[i + 1] + sorted[i];

  double best = std::numeric_limits<double>::infinity();
  // A subtree with s splits has s+1 leaves; at best each leaf captures
  // one of the s+1 most frequent classes exactly, so all remaining
  // classes' records are errors.
  for (int s = 1; s < std::max(2, k); ++s) {
    const double cost = 2.0 * s + 1.0 + s * SplitTestCost(num_attrs) +
                        static_cast<double>(suffix[std::min(s + 1, k)]);
    best = std::min(best, cost);
  }
  return best;
}

bool ShouldPruneBeforeExpand(std::span<const int64_t> class_counts,
                             int num_attrs) {
  return PublicLowerBound(class_counts, num_attrs) >=
         MdlLeafCost(class_counts);
}

int PruneTreeMdl(DecisionTree* tree) {
  if (tree->empty()) return 0;
  const int num_attrs = tree->schema().num_attrs();
  int removed = 0;
  // Returns the subtree's post-pruning cost.
  std::function<double(NodeId)> visit = [&](NodeId id) -> double {
    TreeNode& n = tree->mutable_node(id);
    const double leaf_cost = MdlLeafCost(n.class_counts);
    if (n.is_leaf) return leaf_cost;
    const double subtree_cost = SplitTestCost(num_attrs) + 1.0 +
                                visit(n.left) + visit(n.right);
    if (subtree_cost >= leaf_cost) {
      tree->MakeLeaf(id);
      ++removed;
      return leaf_cost;
    }
    return subtree_cost;
  };
  visit(0);
  if (removed > 0) tree->Compact();
  return removed;
}

}  // namespace cmp
