#include "sliq/sliq.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "common/class_counts.h"
#include "common/timer.h"
#include "exact/exact.h"
#include "gini/categorical.h"
#include "gini/gini.h"
#include "hist/attr_sort.h"
#include "hist/histogram1d.h"
#include "io/scan.h"
#include "pruning/mdl.h"
#include "tree/observer.h"

namespace cmp {

namespace {

struct Entry {
  double value;
  RecordId rid;
};

constexpr int64_t kEntryBytes = 16;  // value + rid on disk

// Split search state for one growing leaf during a level.
struct LeafState {
  NodeId node = kInvalidNode;
  int depth = 0;
  int64_t records = 0;
  bool active = false;  // still splittable this level
  // Best split found so far across all attribute-list passes.
  ExactSplit best;
  std::vector<int64_t> best_left_counts;
  // Running per-class below counts for the attribute list currently
  // being scanned, plus the previous value seen in this leaf (gini is
  // only evaluated between distinct values).
  std::vector<int64_t> below;
  double prev_value = 0.0;
  bool has_prev = false;
  int64_t seen = 0;
};

}  // namespace

BuildResult SliqBuilder::Build(const Dataset& train) {
  BuildResult result;
  ScanTracker tracker(&result.stats);
  Timer timer;

  const Schema& schema = train.schema();
  const int nc = schema.num_classes();
  const int64_t n = train.num_records();
  result.tree = DecisionTree(schema);

  TreeNode root;
  root.depth = 0;
  root.class_counts = train.ClassCounts();
  root.leaf_class = Majority(root.class_counts);
  const NodeId root_id = result.tree.AddNode(std::move(root));
  TrainObserver* const observer = options_.base.observer;
  if (observer != nullptr) observer->OnBuildStart(name(), n);
  if (n == 0) {
    result.stats.wall_seconds = timer.Seconds();
    if (observer != nullptr) observer->OnBuildEnd(result.stats);
    return result;
  }

  // ---- Pre-sort phase: one scan, one sorted (value, rid) list per
  // numeric attribute. Lists are written once and only ever re-read.
  tracker.ChargeScan(train);
  std::vector<std::vector<Entry>> lists(schema.num_attrs());
  int64_t list_bytes = 0;
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (!schema.is_numeric(a)) continue;
    BuildSortedAttrList(
        train.numeric_column(a),
        [](double v, RecordId r) { return Entry{v, r}; }, &tracker,
        &lists[a]);
    list_bytes += n * kEntryBytes;
  }
  tracker.ChargeWrite(list_bytes);

  // ---- The memory-resident class list: rid -> current leaf. Class
  // labels live in the dataset and are looked up by rid.
  std::vector<NodeId> leaf_of(n, root_id);
  tracker.NotePeakMemory(list_bytes + n * static_cast<int64_t>(
                                              sizeof(NodeId)));

  struct CollectNode {
    NodeId node;
    std::vector<RecordId> rids;
  };

  std::vector<NodeId> active_nodes = {root_id};
  int pass_index = 0;
  while (!active_nodes.empty()) {
    PassObservation po;
    po.pass = pass_index++;
    po.records_scanned = n;
    po.frontier_fresh = static_cast<int64_t>(active_nodes.size());
    const int64_t bytes_before = result.stats.bytes_read;
    Timer pass_timer;

    // Build the per-leaf search state.
    std::vector<LeafState> leaves(active_nodes.size());
    std::vector<int> slot_of(result.tree.num_nodes(), -1);
    std::vector<CollectNode> collect;
    bool any_active = false;
    for (size_t i = 0; i < active_nodes.size(); ++i) {
      LeafState& leaf = leaves[i];
      leaf.node = active_nodes[i];
      const TreeNode& tn = result.tree.node(leaf.node);
      leaf.depth = tn.depth;
      leaf.records = 0;
      for (int64_t c : tn.class_counts) leaf.records += c;
      leaf.best.gini = std::numeric_limits<double>::infinity();
      leaf.below.assign(nc, 0);

      const bool stop =
          IsPure(tn.class_counts) ||
          leaf.records < options_.base.min_split_records ||
          leaf.depth >= options_.base.max_depth ||
          (options_.base.prune &&
           ShouldPruneBeforeExpand(tn.class_counts, schema.num_attrs()));
      if (stop) {
        result.tree.mutable_node(leaf.node).is_leaf = true;
        continue;
      }
      if (options_.base.in_memory_threshold > 0 &&
          leaf.records <= options_.base.in_memory_threshold) {
        collect.push_back({leaf.node, {}});
        continue;
      }
      leaf.active = true;
      slot_of[leaf.node] = static_cast<int>(i);
      any_active = true;
    }

    // Gather rids of small partitions with one pass over the class list
    // (in-memory, no disk charge) and finish them exactly.
    if (!collect.empty()) {
      std::vector<int> collect_slot(result.tree.num_nodes(), -1);
      for (size_t i = 0; i < collect.size(); ++i) {
        collect_slot[collect[i].node] = static_cast<int>(i);
      }
      for (RecordId r = 0; r < n; ++r) {
        const NodeId id = leaf_of[r];
        if (id < static_cast<NodeId>(collect_slot.size()) &&
            collect_slot[id] >= 0) {
          collect[collect_slot[id]].rids.push_back(r);
        }
      }
      tracker.ChargeRecords(n, schema);  // class-list sweep
      for (CollectNode& cn : collect) {
        tracker.ChargeBuffered(static_cast<int64_t>(cn.rids.size()));
        BuildExactSubtree(train, cn.rids, options_.base, &result.tree,
                          cn.node, &tracker);
      }
    }
    if (!any_active) {
      // The collect sweep above was still a real pass; report it before
      // the frontier drains.
      po.frontier_collect = static_cast<int64_t>(collect.size());
      po.scan_seconds = pass_timer.Seconds();
      po.bytes_read = result.stats.bytes_read - bytes_before;
      po.tree_nodes = result.tree.num_nodes();
      if (observer != nullptr) observer->OnPass(po);
      break;
    }

    // ---- One pass over every attribute list evaluates all active
    // leaves simultaneously.
    result.stats.dataset_scans += 1;
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      if (schema.is_numeric(a)) {
        tracker.ChargeRecords(n, schema);
        for (LeafState& leaf : leaves) {
          if (!leaf.active) continue;
          std::fill(leaf.below.begin(), leaf.below.end(), 0);
          leaf.has_prev = false;
          leaf.seen = 0;
        }
        for (const Entry& e : lists[a]) {
          const NodeId id = leaf_of[e.rid];
          const int slot =
              id < static_cast<NodeId>(slot_of.size()) ? slot_of[id] : -1;
          if (slot < 0) continue;
          LeafState& leaf = leaves[slot];
          // Evaluate the boundary between the previous distinct value
          // and this one.
          if (leaf.has_prev && e.value != leaf.prev_value &&
              leaf.seen < leaf.records) {
            const double g = BoundaryGini(
                leaf.below, result.tree.node(leaf.node).class_counts);
            if (g < leaf.best.gini) {
              leaf.best.gini = g;
              leaf.best.split = Split::Numeric(a, leaf.prev_value);
              leaf.best.valid = true;
              leaf.best_left_counts = leaf.below;
            }
          }
          leaf.below[train.label(e.rid)]++;
          leaf.seen++;
          leaf.prev_value = e.value;
          leaf.has_prev = true;
        }
      } else {
        // Categorical attributes: per-leaf value histograms from one
        // sweep of the column (conceptually part of the same level
        // pass).
        const int card = schema.attr(a).cardinality;
        std::vector<Histogram1D> hists;
        hists.reserve(leaves.size());
        for (const LeafState& leaf : leaves) {
          hists.emplace_back(leaf.active ? card : 0,
                             leaf.active ? nc : 0);
        }
        for (RecordId r = 0; r < n; ++r) {
          const NodeId id = leaf_of[r];
          const int slot =
              id < static_cast<NodeId>(slot_of.size()) ? slot_of[id] : -1;
          if (slot < 0) continue;
          hists[slot].Add(train.categorical(a, r), train.label(r));
        }
        for (size_t i = 0; i < leaves.size(); ++i) {
          LeafState& leaf = leaves[i];
          if (!leaf.active) continue;
          const CategoricalSplit cs = BestCategoricalSplit(hists[i]);
          if (cs.valid && cs.gini < leaf.best.gini) {
            leaf.best.gini = cs.gini;
            leaf.best.split = Split::Categorical(a, cs.left_subset);
            leaf.best.valid = true;
            leaf.best_left_counts.assign(nc, 0);
            for (int v = 0; v < card; ++v) {
              if (cs.left_subset[v] != 0) {
                for (ClassId c = 0; c < nc; ++c) {
                  leaf.best_left_counts[c] += hists[i].count(v, c);
                }
              }
            }
          }
        }
      }
    }

    // ---- Apply the winning splits: create children, rewrite the class
    // list in one in-memory sweep.
    std::vector<NodeId> next_nodes;
    bool any_split = false;
    for (LeafState& leaf : leaves) {
      if (!leaf.active) continue;
      const std::vector<int64_t>& counts =
          result.tree.node(leaf.node).class_counts;
      if (!leaf.best.valid || leaf.best.gini >= Gini(counts) - 1e-12) {
        result.tree.mutable_node(leaf.node).is_leaf = true;
        slot_of[leaf.node] = -1;
        leaf.active = false;
        continue;
      }
      std::vector<int64_t> right_counts(nc);
      int64_t left_n = 0;
      int64_t right_n = 0;
      for (ClassId c = 0; c < nc; ++c) {
        right_counts[c] = counts[c] - leaf.best_left_counts[c];
        left_n += leaf.best_left_counts[c];
        right_n += right_counts[c];
      }
      if (left_n == 0 || right_n == 0) {
        result.tree.mutable_node(leaf.node).is_leaf = true;
        slot_of[leaf.node] = -1;
        leaf.active = false;
        continue;
      }
      TreeNode left;
      left.depth = leaf.depth + 1;
      left.class_counts = leaf.best_left_counts;
      left.leaf_class = Majority(left.class_counts);
      TreeNode right;
      right.depth = leaf.depth + 1;
      right.class_counts = right_counts;
      right.leaf_class = Majority(right_counts);
      const NodeId left_id = result.tree.AddNode(std::move(left));
      const NodeId right_id = result.tree.AddNode(std::move(right));
      TreeNode& parent = result.tree.mutable_node(leaf.node);
      parent.is_leaf = false;
      parent.split = leaf.best.split;
      parent.left = left_id;
      parent.right = right_id;
      next_nodes.push_back(left_id);
      next_nodes.push_back(right_id);
      any_split = true;
    }
    if (any_split) {
      for (RecordId r = 0; r < n; ++r) {
        const NodeId id = leaf_of[r];
        const TreeNode& tn = result.tree.node(id);
        if (!tn.is_leaf && tn.left != kInvalidNode &&
            id < static_cast<NodeId>(slot_of.size()) && slot_of[id] >= 0) {
          leaf_of[r] = tn.split.RoutesLeft(train, r) ? tn.left : tn.right;
        }
      }
      tracker.ChargeWrite(n * static_cast<int64_t>(sizeof(NodeId)));
    }
    active_nodes = std::move(next_nodes);

    po.scan_seconds = pass_timer.Seconds();
    po.bytes_read = result.stats.bytes_read - bytes_before;
    po.tree_nodes = result.tree.num_nodes();
    if (observer != nullptr) observer->OnPass(po);
  }

  if (options_.base.prune) PruneTreeMdl(&result.tree);
  result.stats.tree_nodes = result.tree.num_nodes();
  result.stats.tree_depth = result.tree.Depth();
  result.stats.wall_seconds = timer.Seconds();
  if (observer != nullptr) observer->OnBuildEnd(result.stats);
  return result;
}

}  // namespace cmp
