#ifndef CMP_SLIQ_SLIQ_H_
#define CMP_SLIQ_SLIQ_H_

#include <string>

#include "tree/builder.h"

namespace cmp {

/// Options specific to SLIQ.
struct SliqOptions {
  BuilderOptions base;
};

/// Reimplementation of SLIQ (Mehta, Agrawal & Rissanen, EDBT 1996), the
/// predecessor of SPRINT and the other "exact algorithm" the paper cites.
///
/// Like SPRINT, SLIQ pre-sorts each numeric attribute once into an
/// attribute list of (value, rid) entries. Unlike SPRINT, the lists are
/// never partitioned: a memory-resident *class list* maps every rid to
/// its current leaf, and one pass over each attribute list evaluates the
/// gini index for ALL leaves of the current level simultaneously
/// (breadth-first growth). Splitting just rewrites the class list.
///
/// The class list (one node id + class label per record) must stay in
/// memory — SLIQ's scalability limit, and the reason SPRINT exists. The
/// attribute lists are re-read once per level but never rewritten, so
/// SLIQ writes far less than SPRINT.
class SliqBuilder : public TreeBuilder {
 public:
  explicit SliqBuilder(SliqOptions options = {}) : options_(options) {}

  BuildResult Build(const Dataset& train) override;
  std::string name() const override { return "SLIQ"; }

 private:
  SliqOptions options_;
};

}  // namespace cmp

#endif  // CMP_SLIQ_SLIQ_H_
