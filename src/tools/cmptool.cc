// cmptool: command-line front end to the CMP classifier library.
//
// Subcommands:
//   gen   --function F2 --records 100000 --seed 42 --out data.cmpt
//   train --data data.cmpt --algo cmp|cmp-b|cmp-s|sprint|clouds|...
//         --out tree.txt [--intervals 100] [--no-prune] [--stats-json FILE]
//   eval  --data data.cmpt --tree tree.txt
//   predict --data data.cmpt --tree tree.txt --out preds.csv
//   compile --tree tree.txt[,tree2.txt...] --out model.cmpb
//   show  --tree tree.txt
//
// Algorithms are constructed through the TreeBuilder registry
// (tree/builder.h), so the --algo list tracks whatever is registered.
//
// Exit codes: 0 on success, 2 for bad arguments (unknown flag values,
// missing required flags), 3 for I/O failures (unreadable data,
// unwritable output), 4 when training itself fails.
//
// All file formats are this library's own (table_file.h, serialize.h).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/summary.h"
#include "cmp/cmp.h"
#include "datagen/agrawal.h"
#include "datagen/drift.h"
#include "dist/dist.h"
#include "io/arff.h"
#include "io/block_source.h"
#include "io/csv.h"
#include "io/sketch_sidecar.h"
#include "stream/refit.h"
#include "stream/stream_train.h"
#include "common/timer.h"
#include "infer/batch_predictor.h"
#include "infer/compiled_tree.h"
#include "infer/ensemble.h"
#include "infer/model_io.h"
#include "io/table_file.h"
#include "tree/builder.h"
#include "tree/evaluate.h"
#include "tree/explain.h"
#include "tree/importance.h"
#include "tree/observer.h"
#include "tree/serialize.h"

namespace {

using cmp::AgrawalFunction;

constexpr int kExitOk = 0;
constexpr int kExitBadArgs = 2;
constexpr int kExitIo = 3;
constexpr int kExitTrain = 4;

std::string AlgoList() {
  std::string out;
  for (const std::string& name : cmp::RegisteredTreeBuilders()) {
    if (!out.empty()) out += '|';
    out += name;
  }
  return out;
}

int Usage() {
  std::cerr <<
      "usage:\n"
      "  cmptool gen   --function <F1..F10|Ff> --records N [--seed S]"
      " [--perturb P] --out FILE\n"
      "                [--drift-at N --drift-function F] switches the\n"
      "                labeling concept to F at record index N (sudden\n"
      "                drift; covariates are unchanged)\n"
      "                [--skip S] writes only records [S, N) of the\n"
      "                stream (split one seed into prefix + suffix)\n"
      "  cmptool train --data FILE --algo <" << AlgoList() << ">\n"
      "                [--intervals Q] [--no-prune] [--threads N]"
      " [--stats-json FILE]\n"
      "                [--rounds R] [--shrinkage s] [--weak-depth D]\n"
      "                [--holdout H] [--patience P]\n"
      "                (boosting knobs, --algo boost only; boost writes a\n"
      "                 cmp-forest file, or a .cmpb blob when --out ends\n"
      "                 in .cmpb)\n"
      "                [--stream [--block B] [--no-prefetch] [--no-codes]\n"
      "                 [--no-subtract] [--scan-shards S]] --out FILE\n"
      "                (--stream trains out-of-core from a .cmpt table in\n"
      "                 blocks of B records; cmp/cmp-b/cmp-s only.\n"
      "                 --no-codes / --no-subtract fall back to the\n"
      "                 record-major scan; --scan-shards overrides the\n"
      "                 auto shard count. Same tree either way.)\n"
      "                [--workers K] trains with K forked worker\n"
      "                processes, each scanning one slice of a .cmpt\n"
      "                table (cmp/cmp-b/cmp-s only; combine with\n"
      "                 --stream --block B to bound worker memory).\n"
      "                Same tree bytes as a single-process build.\n"
      "                --algo cmp-stream trains in one sequential pass\n"
      "                per level from bounded quantile sketches (no\n"
      "                pre-pass sort; add --stream --block B to read a\n"
      "                .cmpt table out of core). [--sketch-capacity K]\n"
      "                [--sidecar FILE.cmps] persists per-leaf sketch\n"
      "                state for later refit. Incompatible with\n"
      "                --workers.\n"
      "  cmptool refit --data FILE --tree FILE --sidecar FILE.cmps\n"
      "                --out FILE [--sidecar-out FILE.cmps]\n"
      "                [--drift-threshold T] [--threads N]\n"
      "                [--stream [--block B]] [--stats-json FILE]\n"
      "                (routes new records to the leaves of a cmp-stream\n"
      "                 tree and regrows only the drifted ones; interior\n"
      "                 nodes are untouched)\n"
      "  cmptool eval  --data FILE --tree FILE\n"
      "  cmptool compile --tree FILE[,FILE...] --out FILE.cmpb\n"
      "                [--layout blocked|preorder]\n"
      "                (packs text trees into one mmap-able blob for\n"
      "                 cmpserve / predict)\n"
      "  cmptool predict --data FILE --tree FILE[,FILE...] [--out FILE]\n"
      "                (--tree also accepts one compiled .cmpb blob)\n"
      "                [--threads N] [--block B] [--probs] [--top-k K]\n"
      "                [--abstain P] [--vote majority|prob]\n"
      "  cmptool show  --tree FILE\n"
      "  cmptool dot   --tree FILE\n"
      "  cmptool explain --data FILE --tree FILE --record N\n"
      "  cmptool info  --data FILE\n"
      "  cmptool importance --tree FILE\n"
      "every command also accepts --kernel auto|scalar|sse2|avx2 to pin\n"
      "the kernel ISA tier: histogram/gini kernels when training, batch\n"
      "traversal kernels when predicting (default auto; tree bytes and\n"
      "predictions are identical for every tier)\n";
  return kExitBadArgs;
}

std::string GetFlag(int argc, char** argv, const std::string& name,
                    const std::string& def = "") {
  for (int i = 0; i + 1 < argc; ++i) {
    if (name == argv[i]) return argv[i + 1];
  }
  return def;
}

bool HasFlag(int argc, char** argv, const std::string& name) {
  for (int i = 0; i < argc; ++i) {
    if (name == argv[i]) return true;
  }
  return false;
}

bool ParseFunction(const std::string& s, AgrawalFunction* out) {
  if (s == "Ff" || s == "ff" || s == "f") {
    *out = AgrawalFunction::kFunctionF;
    return true;
  }
  if (s.size() >= 2 && (s[0] == 'F' || s[0] == 'f')) {
    const int k = std::atoi(s.c_str() + 1);
    if (k >= 1 && k <= 10) {
      *out = static_cast<AgrawalFunction>(k);
      return true;
    }
  }
  return false;
}

// Loads a dataset by extension: .arff via the ARFF reader, .csv via
// schema inference, anything else via the binary table format.
bool LoadAnyDataset(const std::string& path, cmp::Dataset* out) {
  if (path.size() > 5 && path.substr(path.size() - 5) == ".arff") {
    return cmp::LoadArff(path, out);
  }
  if (path.size() > 4 && path.substr(path.size() - 4) == ".csv") {
    return cmp::LoadCsvInferSchema(path, out);
  }
  return cmp::LoadTableFile(path, out);
}

// Writes the observer's JSON to `path` ("-" for stdout). Returns an exit
// code (kExitOk or kExitIo).
int WriteStatsJson(const cmp::TrainStatsCollector& collector,
                   const std::string& path) {
  if (path == "-") {
    std::cout << collector.ToJson();
    return kExitOk;
  }
  std::ofstream file(path);
  if (!file || !(file << collector.ToJson())) {
    std::cerr << "failed to write " << path << "\n";
    return kExitIo;
  }
  return kExitOk;
}

int CmdGen(int argc, char** argv) {
  AgrawalFunction function;
  if (!ParseFunction(GetFlag(argc, argv, "--function", "F2"), &function)) {
    std::cerr << "unknown function\n";
    return kExitBadArgs;
  }
  cmp::AgrawalOptions o;
  o.function = function;
  o.num_records = std::atoll(GetFlag(argc, argv, "--records", "100000").c_str());
  o.seed = std::atoll(GetFlag(argc, argv, "--seed", "42").c_str());
  o.perturbation = std::atof(GetFlag(argc, argv, "--perturb", "0").c_str());
  const std::string out = GetFlag(argc, argv, "--out");
  if (out.empty()) return Usage();
  cmp::Dataset ds;
  if (HasFlag(argc, argv, "--drift-at") ||
      HasFlag(argc, argv, "--drift-function")) {
    // Non-stationary stream: --function labels the prefix, the concept
    // switches to --drift-function at record --drift-at.
    if (!HasFlag(argc, argv, "--drift-at") ||
        !HasFlag(argc, argv, "--drift-function")) {
      std::cerr << "--drift-at and --drift-function must be given"
                   " together\n";
      return kExitBadArgs;
    }
    cmp::DriftOptions d;
    d.before = o.function;
    if (!ParseFunction(GetFlag(argc, argv, "--drift-function"), &d.after)) {
      std::cerr << "unknown drift function\n";
      return kExitBadArgs;
    }
    d.drift_at = std::atoll(GetFlag(argc, argv, "--drift-at").c_str());
    if (d.drift_at < 0 || d.drift_at > o.num_records) {
      std::cerr << "--drift-at must be in [0, --records]\n";
      return kExitBadArgs;
    }
    d.num_records = o.num_records;
    d.seed = o.seed;
    d.perturbation = o.perturbation;
    ds = cmp::GenerateDriftingAgrawal(d);
  } else {
    ds = cmp::GenerateAgrawal(o);
  }
  // --skip S writes only records [S, records) of the stream, so a
  // shell script can split one seeded stream into an exact prefix
  // (gen --records S) and suffix (gen --records N --skip S) — the
  // train-then-refit workflow without a separate slicing tool.
  const int64_t skip =
      std::atoll(GetFlag(argc, argv, "--skip", "0").c_str());
  if (skip < 0 || skip > o.num_records) {
    std::cerr << "--skip must be in [0, --records]\n";
    return kExitBadArgs;
  }
  if (skip > 0) {
    cmp::Dataset tail(ds.schema());
    std::vector<double> nv;
    std::vector<int32_t> cv;
    for (cmp::RecordId r = skip; r < ds.num_records(); ++r) {
      nv.clear();
      cv.clear();
      for (cmp::AttrId a = 0; a < ds.schema().num_attrs(); ++a) {
        if (ds.schema().attr(a).kind == cmp::AttrKind::kNumeric) {
          nv.push_back(ds.numeric(a, r));
        } else {
          cv.push_back(ds.categorical(a, r));
        }
      }
      tail.Append(nv, cv, ds.label(r));
    }
    ds = std::move(tail);
  }
  if (!cmp::SaveTableFile(ds, out)) {
    std::cerr << "failed to write " << out << "\n";
    return kExitIo;
  }
  std::cout << "wrote " << ds.num_records() << " records ("
            << ds.TotalBytes() / (1024.0 * 1024.0) << " MB) to " << out
            << "\n";
  return kExitOk;
}

// Distributed training: forks K worker processes that each scan one
// contiguous slice of the .cmpt table and ship per-pass histogram state
// to this (coordinator) process over a versioned wire protocol. The
// rank-order merge makes the tree byte-identical to a single-process
// build for every K (that equality is CI-enforced).
int CmdTrainDist(int argc, char** argv) {
  const std::string data = GetFlag(argc, argv, "--data");
  const std::string out = GetFlag(argc, argv, "--out");
  const std::string algo = GetFlag(argc, argv, "--algo", "cmp");
  if (algo != "cmp" && algo != "cmp-b" && algo != "cmp-s") {
    std::cerr << "--workers supports cmp, cmp-b, cmp-s (got " << algo
              << ")\n";
    return kExitBadArgs;
  }
  cmp::dist::DistOptions d;
  d.num_workers = std::atoi(GetFlag(argc, argv, "--workers", "2").c_str());
  if (d.num_workers < 1) {
    std::cerr << "--workers must be >= 1\n";
    return kExitBadArgs;
  }
  d.num_threads = std::atoi(GetFlag(argc, argv, "--threads", "1").c_str());
  // Without --stream each worker stages its whole slice as one block
  // (the in-memory profile); with it, --block bounds worker memory the
  // same way single-process streaming does.
  if (HasFlag(argc, argv, "--stream")) {
    d.block_records =
        std::atoll(GetFlag(argc, argv, "--block", "65536").c_str());
    if (d.block_records <= 0) {
      std::cerr << "--block must be > 0\n";
      return kExitBadArgs;
    }
  }
  // Unreadable tables are the I/O exit code, same as the streamed
  // path; DistTrain's exceptions then only mean training failures.
  if (cmp::TableBlockSource::Open(data, 1) == nullptr) {
    std::cerr << "failed to open " << data
              << " (must be a valid .cmpt table)\n";
    return kExitIo;
  }
  cmp::CmpOptions o = algo == "cmp"     ? cmp::CmpFullOptions()
                      : algo == "cmp-b" ? cmp::CmpBOptions()
                                        : cmp::CmpSOptions();
  o.base.prune = !HasFlag(argc, argv, "--no-prune");
  o.base.num_threads = d.num_threads;
  o.intervals = std::atoi(GetFlag(argc, argv, "--intervals", "100").c_str());
  o.bin_code_cache = !HasFlag(argc, argv, "--no-codes");
  o.sibling_subtraction = !HasFlag(argc, argv, "--no-subtract");
  o.scan_shards =
      std::atoi(GetFlag(argc, argv, "--scan-shards", "0").c_str());
  const std::string stats_path = GetFlag(argc, argv, "--stats-json");
  cmp::TrainStatsCollector collector;
  if (!stats_path.empty()) o.base.observer = &collector;
  cmp::BuildResult result;
  try {
    result = cmp::dist::DistTrain(data, o, d);
  } catch (const std::exception& e) {
    std::cerr << "training failed: " << e.what() << "\n";
    return kExitTrain;
  }
  // With --stats-json - the JSON owns stdout; summaries move to stderr.
  std::ostream& summary = stats_path == "-" ? std::cerr : std::cout;
  summary << algo << " (distributed, workers=" << d.num_workers
          << "): " << result.stats.ToString() << "\n";
  if (!cmp::SaveTree(result.tree, out)) {
    std::cerr << "failed to write " << out << "\n";
    return kExitIo;
  }
  summary << "tree with " << result.tree.num_nodes() << " nodes saved to "
          << out << "\n";
  if (!stats_path.empty()) return WriteStatsJson(collector, stats_path);
  return kExitOk;
}

// Out-of-core training: records flow from the .cmpt table through
// block-pipelined scans instead of being loaded up front. Produces the
// same tree bytes as the in-memory path (that equality is CI-enforced).
int CmdTrainStreamed(int argc, char** argv) {
  const std::string data = GetFlag(argc, argv, "--data");
  const std::string out = GetFlag(argc, argv, "--out");
  const std::string algo = GetFlag(argc, argv, "--algo", "cmp");
  if (algo != "cmp" && algo != "cmp-b" && algo != "cmp-s") {
    std::cerr << "--stream supports cmp, cmp-b, cmp-s (got " << algo
              << ")\n";
    return kExitBadArgs;
  }
  const int64_t block =
      std::atoll(GetFlag(argc, argv, "--block", "65536").c_str());
  if (block <= 0) {
    std::cerr << "--block must be > 0\n";
    return kExitBadArgs;
  }
  auto source = cmp::TableBlockSource::Open(data, block);
  if (source == nullptr) {
    std::cerr << "failed to open " << data
              << " (must be a valid .cmpt table)\n";
    return kExitIo;
  }
  cmp::CmpOptions o = algo == "cmp"     ? cmp::CmpFullOptions()
                      : algo == "cmp-b" ? cmp::CmpBOptions()
                                        : cmp::CmpSOptions();
  o.base.prune = !HasFlag(argc, argv, "--no-prune");
  o.base.num_threads =
      std::atoi(GetFlag(argc, argv, "--threads", "1").c_str());
  o.intervals = std::atoi(GetFlag(argc, argv, "--intervals", "100").c_str());
  o.bin_code_cache = !HasFlag(argc, argv, "--no-codes");
  o.sibling_subtraction = !HasFlag(argc, argv, "--no-subtract");
  o.scan_shards =
      std::atoi(GetFlag(argc, argv, "--scan-shards", "0").c_str());
  const std::string stats_path = GetFlag(argc, argv, "--stats-json");
  cmp::TrainStatsCollector collector;
  if (!stats_path.empty()) o.base.observer = &collector;
  cmp::CmpBuilder builder(o);
  cmp::BuildResult result;
  try {
    result =
        builder.BuildStreamed(*source, !HasFlag(argc, argv, "--no-prefetch"));
  } catch (const std::exception& e) {
    std::cerr << "training failed: " << e.what() << "\n";
    return kExitTrain;
  }
  // With --stats-json - the JSON owns stdout; summaries move to stderr.
  std::ostream& summary = stats_path == "-" ? std::cerr : std::cout;
  summary << builder.name() << " (streamed, block=" << block
          << "): " << result.stats.ToString() << "\n";
  if (!cmp::SaveTree(result.tree, out)) {
    std::cerr << "failed to write " << out << "\n";
    return kExitIo;
  }
  summary << "tree with " << result.tree.num_nodes() << " nodes saved to "
          << out << "\n";
  if (!stats_path.empty()) return WriteStatsJson(collector, stats_path);
  return kExitOk;
}

// Streaming sketch-based training (--algo cmp-stream): per-node grids
// come from bounded quantile sketches filled in one sequential pass per
// tree level, so no pre-pass sort and no O(n) column buffer. With
// --stream --block B the records flow from the .cmpt table out of core;
// otherwise the dataset is loaded and wrapped in a zero-copy block
// source (same tree bytes either way — ingestion is a record-order fold
// regardless of the source's block size).
int CmdTrainCmpStream(int argc, char** argv) {
  const std::string data = GetFlag(argc, argv, "--data");
  const std::string out = GetFlag(argc, argv, "--out");
  // Single-process by contract: sketch state is a sequential fold over
  // the record stream, which is exactly what makes the tree independent
  // of thread/block/shard layout. Sharded ingestion would change the
  // merge order, so the flag combination is rejected rather than
  // silently ignored.
  if (HasFlag(argc, argv, "--workers")) {
    std::cerr << "--algo cmp-stream is incompatible with --workers"
                 " (streaming ingestion is a sequential fold; use --stream"
                 " --block B to bound memory instead)\n";
    return kExitBadArgs;
  }
  cmp::StreamOptions o;
  o.base.prune = !HasFlag(argc, argv, "--no-prune");
  o.base.num_threads =
      std::atoi(GetFlag(argc, argv, "--threads", "1").c_str());
  o.intervals = std::atoi(GetFlag(argc, argv, "--intervals", "100").c_str());
  o.sketch_capacity =
      std::atoi(GetFlag(argc, argv, "--sketch-capacity", "512").c_str());
  if (o.sketch_capacity < 8) {
    std::cerr << "--sketch-capacity must be >= 8\n";
    return kExitBadArgs;
  }
  const std::string stats_path = GetFlag(argc, argv, "--stats-json");
  cmp::TrainStatsCollector collector;
  if (!stats_path.empty()) o.base.observer = &collector;

  std::unique_ptr<cmp::BlockSource> table_source;
  cmp::Dataset ds;
  std::unique_ptr<cmp::DatasetBlockSource> mem_source;
  cmp::BlockSource* source = nullptr;
  if (HasFlag(argc, argv, "--stream")) {
    const int64_t block =
        std::atoll(GetFlag(argc, argv, "--block", "65536").c_str());
    if (block <= 0) {
      std::cerr << "--block must be > 0\n";
      return kExitBadArgs;
    }
    table_source = cmp::TableBlockSource::Open(data, block);
    if (table_source == nullptr) {
      std::cerr << "failed to open " << data
                << " (must be a valid .cmpt table)\n";
      return kExitIo;
    }
    o.real_io = true;
    source = table_source.get();
  } else {
    if (!LoadAnyDataset(data, &ds)) {
      std::cerr << "failed to read " << data << "\n";
      return kExitIo;
    }
    mem_source = std::make_unique<cmp::DatasetBlockSource>(ds);
    source = mem_source.get();
  }

  cmp::BuildResult result;
  cmp::SketchSidecar sidecar;
  std::string error;
  if (!cmp::StreamTrain(*source, o, &result, &sidecar, &error)) {
    std::cerr << "training failed: " << error << "\n";
    return kExitTrain;
  }
  // With --stats-json - the JSON owns stdout; summaries move to stderr.
  std::ostream& summary = stats_path == "-" ? std::cerr : std::cout;
  summary << "CMP-stream: " << result.stats.ToString() << "\n";
  if (!cmp::SaveTree(result.tree, out)) {
    std::cerr << "failed to write " << out << "\n";
    return kExitIo;
  }
  summary << "tree with " << result.tree.num_nodes() << " nodes saved to "
          << out << "\n";
  const std::string sidecar_path = GetFlag(argc, argv, "--sidecar");
  if (!sidecar_path.empty()) {
    if (!cmp::SaveSketchSidecar(sidecar, sidecar_path, &error)) {
      std::cerr << "failed to write " << sidecar_path << ": " << error
                << "\n";
      return kExitIo;
    }
    summary << "sketch sidecar (" << sidecar.leaves.size()
            << " leaves) saved to " << sidecar_path << "\n";
  }
  if (!stats_path.empty()) return WriteStatsJson(collector, stats_path);
  return kExitOk;
}

// Incremental refit: extends a cmp-stream tree with new records using
// the sketch sidecar instead of the original data. Only leaves whose
// class distribution drifted past --drift-threshold are regrown; the
// interior of the tree is untouched.
int CmdRefit(int argc, char** argv) {
  const std::string data = GetFlag(argc, argv, "--data");
  const std::string tree_path = GetFlag(argc, argv, "--tree");
  const std::string sidecar_path = GetFlag(argc, argv, "--sidecar");
  const std::string out = GetFlag(argc, argv, "--out");
  if (data.empty() || tree_path.empty() || sidecar_path.empty() ||
      out.empty()) {
    return Usage();
  }

  std::vector<cmp::DecisionTree> trees;
  if (!cmp::LoadTrees(tree_path, &trees) || trees.empty()) {
    std::cerr << "failed to read " << tree_path << "\n";
    return kExitIo;
  }
  // Refit resumes the streaming trainer beneath individual leaves; a
  // boosted forest has no sidecar and its residual-coupled trees cannot
  // be extended one leaf at a time.
  if (trees.size() > 1) {
    std::cerr << "refit requires a single cmp-stream tree; " << tree_path
              << " holds a forest of " << trees.size()
              << " trees (boosted ensembles cannot be refit)\n";
    return kExitBadArgs;
  }
  cmp::DecisionTree tree = std::move(trees.front());

  cmp::SketchSidecar sidecar;
  std::string error;
  if (!cmp::LoadSketchSidecar(sidecar_path, &sidecar, &error)) {
    std::cerr << "failed to read " << sidecar_path << ": " << error << "\n";
    return kExitIo;
  }

  cmp::RefitOptions o;
  o.stream.base.prune = !HasFlag(argc, argv, "--no-prune");
  o.stream.base.num_threads =
      std::atoi(GetFlag(argc, argv, "--threads", "1").c_str());
  o.drift_threshold =
      std::atof(GetFlag(argc, argv, "--drift-threshold", "0.15").c_str());
  if (o.drift_threshold < 0.0 || o.drift_threshold > 1.0) {
    std::cerr << "--drift-threshold must be in [0, 1]\n";
    return kExitBadArgs;
  }
  const std::string stats_path = GetFlag(argc, argv, "--stats-json");
  cmp::TrainStatsCollector collector;
  if (!stats_path.empty()) o.stream.base.observer = &collector;

  std::unique_ptr<cmp::BlockSource> table_source;
  cmp::Dataset ds;
  std::unique_ptr<cmp::DatasetBlockSource> mem_source;
  cmp::BlockSource* source = nullptr;
  if (HasFlag(argc, argv, "--stream")) {
    const int64_t block =
        std::atoll(GetFlag(argc, argv, "--block", "65536").c_str());
    if (block <= 0) {
      std::cerr << "--block must be > 0\n";
      return kExitBadArgs;
    }
    table_source = cmp::TableBlockSource::Open(data, block);
    if (table_source == nullptr) {
      std::cerr << "failed to open " << data
                << " (must be a valid .cmpt table)\n";
      return kExitIo;
    }
    o.stream.real_io = true;
    source = table_source.get();
  } else {
    if (!LoadAnyDataset(data, &ds)) {
      std::cerr << "failed to read " << data << "\n";
      return kExitIo;
    }
    mem_source = std::make_unique<cmp::DatasetBlockSource>(ds);
    source = mem_source.get();
  }

  cmp::BuildStats build_stats;
  cmp::RefitStats refit_stats;
  if (!cmp::RefitTree(&tree, &sidecar, *source, o, &build_stats,
                      &refit_stats, &error)) {
    std::cerr << "refit failed: " << error << "\n";
    return kExitTrain;
  }
  // With --stats-json - the JSON owns stdout; summaries move to stderr.
  std::ostream& summary = stats_path == "-" ? std::cerr : std::cout;
  summary << "refit: " << refit_stats.records << " new records, "
          << refit_stats.leaves_touched << " leaves touched, "
          << refit_stats.leaves_regrown << " regrown; "
          << build_stats.ToString() << "\n";
  if (!cmp::SaveTree(tree, out)) {
    std::cerr << "failed to write " << out << "\n";
    return kExitIo;
  }
  summary << "tree with " << tree.num_nodes() << " nodes saved to " << out
          << "\n";
  // The updated sidecar keeps refit composable: by default it replaces
  // the input sidecar so the next refit picks up where this one ended.
  const std::string sidecar_out =
      GetFlag(argc, argv, "--sidecar-out", sidecar_path);
  if (!cmp::SaveSketchSidecar(sidecar, sidecar_out, &error)) {
    std::cerr << "failed to write " << sidecar_out << ": " << error << "\n";
    return kExitIo;
  }
  summary << "sketch sidecar (" << sidecar.leaves.size()
          << " leaves) saved to " << sidecar_out << "\n";
  if (!stats_path.empty()) return WriteStatsJson(collector, stats_path);
  return kExitOk;
}

int CmdTrain(int argc, char** argv) {
  const std::string data = GetFlag(argc, argv, "--data");
  const std::string out = GetFlag(argc, argv, "--out");
  const std::string algo = GetFlag(argc, argv, "--algo", "cmp");
  if (data.empty() || out.empty()) return Usage();
  // cmp-stream owns its flag handling (and rejects --workers itself,
  // with a message that explains why sharded ingestion is out).
  if (algo == "cmp-stream") return CmdTrainCmpStream(argc, argv);
  if (HasFlag(argc, argv, "--workers")) return CmdTrainDist(argc, argv);
  if (HasFlag(argc, argv, "--stream")) return CmdTrainStreamed(argc, argv);
  cmp::BuilderConfig config;
  config.base.prune = !HasFlag(argc, argv, "--no-prune");
  config.base.num_threads =
      std::atoi(GetFlag(argc, argv, "--threads", "1").c_str());
  config.intervals =
      std::atoi(GetFlag(argc, argv, "--intervals", "100").c_str());
  config.boost.rounds =
      std::atoi(GetFlag(argc, argv, "--rounds", "50").c_str());
  config.boost.shrinkage =
      std::atof(GetFlag(argc, argv, "--shrinkage", "0.1").c_str());
  config.boost.weak_depth =
      std::atoi(GetFlag(argc, argv, "--weak-depth", "6").c_str());
  config.boost.holdout =
      std::atof(GetFlag(argc, argv, "--holdout", "0.2").c_str());
  config.boost.patience =
      std::atoi(GetFlag(argc, argv, "--patience", "5").c_str());
  const std::string stats_path = GetFlag(argc, argv, "--stats-json");
  cmp::TrainStatsCollector collector;
  if (!stats_path.empty()) config.base.observer = &collector;
  auto builder = cmp::MakeTreeBuilder(algo, config);
  if (builder == nullptr) {
    std::cerr << "unknown algorithm " << algo << " (have: " << AlgoList()
              << ")\n";
    return kExitBadArgs;
  }
  cmp::Dataset ds;
  if (!LoadAnyDataset(data, &ds)) {
    std::cerr << "failed to read " << data << "\n";
    return kExitIo;
  }
  cmp::BuildResult result;
  try {
    result = builder->Build(ds);
  } catch (const std::exception& e) {
    std::cerr << "training failed: " << e.what() << "\n";
    return kExitTrain;
  }
  // With --stats-json - the JSON owns stdout; summaries move to stderr.
  std::ostream& summary = stats_path == "-" ? std::cerr : std::cout;
  summary << builder->name() << ": " << result.stats.ToString() << "\n";
  // Multi-tree results (boost) go out as a cmp-forest file; an --out
  // ending in .cmpb asks for the compiled blob directly (any algorithm).
  const bool blob_out =
      out.size() > 5 && out.substr(out.size() - 5) == ".cmpb";
  if (blob_out) {
    std::vector<const cmp::DecisionTree*> ptrs;
    if (result.forest.empty()) {
      ptrs.push_back(&result.tree);
    } else {
      for (const cmp::DecisionTree& t : result.forest) ptrs.push_back(&t);
    }
    std::string error;
    if (!cmp::SaveModelBlob(ptrs, out, &error)) {
      std::cerr << "failed to write " << out << ": " << error << "\n";
      return kExitIo;
    }
    summary << ptrs.size() << " compiled tree(s) saved to " << out << "\n";
  } else if (result.forest.size() > 1) {
    if (!cmp::SaveForest(result.forest, out)) {
      std::cerr << "failed to write " << out << "\n";
      return kExitIo;
    }
    summary << result.forest.size() << " trees ("
            << result.stats.tree_nodes << " nodes) saved to " << out << "\n";
  } else {
    if (!cmp::SaveTree(result.tree, out)) {
      std::cerr << "failed to write " << out << "\n";
      return kExitIo;
    }
    summary << "tree with " << result.tree.num_nodes() << " nodes saved to "
            << out << "\n";
  }
  if (!stats_path.empty()) return WriteStatsJson(collector, stats_path);
  return kExitOk;
}

int CmdEval(int argc, char** argv) {
  const std::string data = GetFlag(argc, argv, "--data");
  const std::string tree_path = GetFlag(argc, argv, "--tree");
  if (data.empty() || tree_path.empty()) return Usage();
  cmp::Dataset ds;
  if (!LoadAnyDataset(data, &ds)) {
    std::cerr << "failed to read " << data << "\n";
    return kExitIo;
  }
  std::vector<cmp::DecisionTree> trees;
  if (!cmp::LoadTrees(tree_path, &trees) || trees.empty()) {
    std::cerr << "failed to read " << tree_path << "\n";
    return kExitIo;
  }
  if (trees.size() == 1) {
    std::cout << cmp::Evaluate(trees[0], ds).ToString(ds.schema());
    return kExitOk;
  }
  // A cmp-forest (boost output): score with the probability vote the
  // leaf encoding is built for and tabulate the same way.
  const cmp::BatchResult batch =
      cmp::EnsemblePredictor::Compile(trees, cmp::VoteKind::kAverageProb)
          .Predict(ds);
  cmp::Evaluation eval;
  const int nc = ds.schema().num_classes();
  eval.confusion.assign(nc, std::vector<int64_t>(nc, 0));
  for (cmp::RecordId r = 0; r < ds.num_records(); ++r) {
    const cmp::ClassId pred = batch.labels[r];
    ++eval.total;
    eval.correct += pred == ds.label(r) ? 1 : 0;
    ++eval.confusion[ds.label(r)][pred];
  }
  std::cout << eval.ToString(ds.schema());
  return kExitOk;
}

// Batch scoring through the compiled inference path: one tree gives a
// BatchPredictor, a comma-separated list gives a voting ensemble.
// Predictions go to --out as CSV (stdout when omitted, with the summary
// moved to stderr so the two streams stay separable).
// Packs one or more text trees into a single .cmpb blob. The blob is
// the serving format: cmpserve mmaps it, and predict accepts it
// directly.
int CmdCompile(int argc, char** argv) {
  const std::string tree_arg = GetFlag(argc, argv, "--tree");
  const std::string out = GetFlag(argc, argv, "--out");
  if (tree_arg.empty() || out.empty()) return Usage();

  std::vector<cmp::DecisionTree> trees;
  std::stringstream paths(tree_arg);
  for (std::string path; std::getline(paths, path, ',');) {
    // Each path may be a single tree or a whole cmp-forest (boost
    // output); forests flatten into the blob's tree list in order.
    std::vector<cmp::DecisionTree> loaded;
    if (!cmp::LoadTrees(path, &loaded)) {
      std::cerr << "failed to read " << path << "\n";
      return kExitIo;
    }
    for (cmp::DecisionTree& t : loaded) trees.push_back(std::move(t));
  }
  if (trees.empty()) return Usage();

  std::vector<const cmp::DecisionTree*> ptrs;
  ptrs.reserve(trees.size());
  for (const cmp::DecisionTree& t : trees) ptrs.push_back(&t);
  cmp::PackOptions pack;
  const std::string layout = GetFlag(argc, argv, "--layout", "blocked");
  if (layout == "preorder") {
    pack.layout = cmp::NodeLayout::kPreorder;
  } else if (layout != "blocked") {
    std::cerr << "--layout wants blocked|preorder, got '" << layout << "'\n";
    return Usage();
  }
  std::string error;
  if (!cmp::SaveModelBlob(ptrs, pack, out, &error)) {
    std::cerr << "failed to compile " << out << ": " << error << "\n";
    return kExitIo;
  }
  std::cerr << "compiled " << trees.size() << " tree(s) -> " << out << " ("
            << cmp::NodeLayoutName(pack.layout) << " layout)\n";
  return kExitOk;
}

int CmdPredict(int argc, char** argv) {
  const std::string data = GetFlag(argc, argv, "--data");
  const std::string tree_arg = GetFlag(argc, argv, "--tree");
  const std::string out_path = GetFlag(argc, argv, "--out");
  if (data.empty() || tree_arg.empty()) return Usage();

  cmp::Dataset ds;
  if (!LoadAnyDataset(data, &ds)) {
    std::cerr << "failed to read " << data << "\n";
    return kExitIo;
  }

  // The model is either comma-separated text trees or one compiled
  // .cmpb blob (cmptool compile's output).
  const bool is_blob = tree_arg.size() > 5 &&
                       tree_arg.substr(tree_arg.size() - 5) == ".cmpb";
  std::vector<cmp::DecisionTree> trees;
  cmp::CompiledModel model;
  if (is_blob) {
    std::string error;
    if (!cmp::LoadCompiledModel(tree_arg, &model, &error)) {
      std::cerr << "failed to read " << tree_arg << ": " << error << "\n";
      return kExitIo;
    }
  } else {
    std::stringstream paths(tree_arg);
    for (std::string path; std::getline(paths, path, ',');) {
      std::vector<cmp::DecisionTree> loaded;
      if (!cmp::LoadTrees(path, &loaded)) {
        std::cerr << "failed to read " << path << "\n";
        return kExitIo;
      }
      for (cmp::DecisionTree& t : loaded) trees.push_back(std::move(t));
    }
    if (trees.empty()) return Usage();
  }

  cmp::PredictOptions opts;
  opts.num_threads = std::atoi(GetFlag(argc, argv, "--threads", "1").c_str());
  opts.block_size = std::atoll(GetFlag(argc, argv, "--block", "2048").c_str());
  opts.want_probs = HasFlag(argc, argv, "--probs");
  opts.top_k = std::atoi(GetFlag(argc, argv, "--top-k", "1").c_str());
  opts.abstain_threshold =
      std::atof(GetFlag(argc, argv, "--abstain", "0").c_str());
  const std::string vote_name = GetFlag(argc, argv, "--vote", "majority");
  if (vote_name != "majority" && vote_name != "prob") {
    std::cerr << "unknown vote kind " << vote_name << "\n";
    return kExitBadArgs;
  }

  const cmp::Schema& model_schema =
      is_blob ? *model.schema : trees.front().schema();
  // The predictors clamp top_k to the class count internally; clamp here
  // too so the CSV writer below indexes the returned topk table with the
  // same k the predictor sized it with.
  opts.top_k = std::min(opts.top_k, model_schema.num_classes());
  const cmp::VoteKind vote = vote_name == "prob"
                                 ? cmp::VoteKind::kAverageProb
                                 : cmp::VoteKind::kMajority;
  cmp::Timer timer;
  cmp::BatchResult result;
  if (is_blob && model.num_trees() == 1) {
    result = cmp::BatchPredictor(&model.trees.front(), opts).Predict(ds);
  } else if (is_blob) {
    result = cmp::EnsemblePredictor(model.trees, vote).Predict(ds, opts);
  } else if (trees.size() == 1) {
    const cmp::CompiledTree compiled = cmp::CompiledTree::Compile(trees[0]);
    result = cmp::BatchPredictor(&compiled, opts).Predict(ds);
  } else {
    const cmp::EnsemblePredictor ensemble =
        cmp::EnsemblePredictor::Compile(trees, vote);
    result = ensemble.Predict(ds, opts);
  }
  const double seconds = timer.Seconds();

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::cerr << "failed to write " << out_path << "\n";
      return kExitIo;
    }
  }
  std::ostream& csv = out_path.empty() ? std::cout : file;
  std::ostream& summary = out_path.empty() ? std::cerr : std::cout;

  auto class_name = [&model_schema](cmp::ClassId c) -> std::string {
    if (c == cmp::kInvalidClass) return "?";
    return c < model_schema.num_classes()
               ? model_schema.class_name(c)
               : "class" + std::to_string(c);
  };

  csv << "record,actual,predicted,correct";
  if (opts.want_probs) {
    for (cmp::ClassId c = 0; c < model_schema.num_classes(); ++c) {
      csv << ",prob_" << model_schema.class_name(c);
    }
  }
  if (opts.top_k > 1) {
    for (int k = 0; k < opts.top_k; ++k) csv << ",top" << (k + 1);
  }
  csv << '\n';
  const int32_t nc = model_schema.num_classes();
  int64_t correct = 0;
  for (cmp::RecordId r = 0; r < ds.num_records(); ++r) {
    const cmp::ClassId actual = ds.label(r);
    const cmp::ClassId predicted = result.labels[r];
    if (actual == predicted) ++correct;
    csv << r << ',' << ds.schema().class_name(actual) << ','
        << class_name(predicted) << ',' << (actual == predicted ? 1 : 0);
    if (opts.want_probs) {
      for (int32_t c = 0; c < nc; ++c) {
        csv << ',' << result.probs[static_cast<size_t>(r) * nc + c];
      }
    }
    if (opts.top_k > 1) {
      for (int k = 0; k < opts.top_k; ++k) {
        csv << ',' << class_name(result.topk[static_cast<size_t>(r) *
                                             opts.top_k + k]);
      }
    }
    csv << '\n';
  }

  const double accuracy =
      ds.num_records() == 0
          ? 0.0
          : static_cast<double>(correct) /
                static_cast<double>(ds.num_records());
  char acc_buf[32];
  std::snprintf(acc_buf, sizeof(acc_buf), "%.4f", accuracy);
  summary << "accuracy: " << acc_buf << " (" << correct << "/"
          << ds.num_records() << ")\n";
  if (result.num_abstained > 0) {
    summary << "abstained: " << result.num_abstained << "\n";
  }
  summary << "scored " << ds.num_records() << " records with "
          << (is_blob ? static_cast<size_t>(model.num_trees())
                      : trees.size())
          << " tree(s) in " << seconds << "s ("
          << static_cast<int64_t>(ds.num_records() / std::max(seconds, 1e-9))
          << " rows/s, " << opts.num_threads << " thread(s), "
          << cmp::KernelIsaName(cmp::ActiveKernelIsa()) << " kernel)\n";
  return kExitOk;
}

int CmdDot(int argc, char** argv) {
  const std::string tree_path = GetFlag(argc, argv, "--tree");
  if (tree_path.empty()) return Usage();
  cmp::DecisionTree tree;
  if (!cmp::LoadTree(tree_path, &tree)) {
    std::cerr << "failed to read " << tree_path << "\n";
    return kExitIo;
  }
  std::cout << cmp::ToDot(tree);
  return kExitOk;
}

int CmdExplain(int argc, char** argv) {
  const std::string data = GetFlag(argc, argv, "--data");
  const std::string tree_path = GetFlag(argc, argv, "--tree");
  const int64_t record = std::atoll(GetFlag(argc, argv, "--record", "0").c_str());
  if (data.empty() || tree_path.empty()) return Usage();
  cmp::Dataset ds;
  if (!LoadAnyDataset(data, &ds)) {
    std::cerr << "failed to read " << data << "\n";
    return kExitIo;
  }
  cmp::DecisionTree tree;
  if (!cmp::LoadTree(tree_path, &tree)) {
    std::cerr << "failed to read " << tree_path << "\n";
    return kExitIo;
  }
  if (record < 0 || record >= ds.num_records()) {
    std::cerr << "record out of range\n";
    return kExitBadArgs;
  }
  const cmp::Explanation why = cmp::Explain(tree, ds, record);
  std::cout << "record " << record << " (actual: "
            << ds.schema().class_name(ds.label(record)) << ")\n"
            << why.ToString(ds.schema());
  return kExitOk;
}

int CmdInfo(int argc, char** argv) {
  const std::string data = GetFlag(argc, argv, "--data");
  if (data.empty()) return Usage();
  cmp::Dataset ds;
  if (!LoadAnyDataset(data, &ds)) {
    std::cerr << "failed to read " << data << "\n";
    return kExitIo;
  }
  std::cout << cmp::Summarize(ds).ToString(ds.schema());
  return kExitOk;
}

int CmdImportance(int argc, char** argv) {
  const std::string tree_path = GetFlag(argc, argv, "--tree");
  if (tree_path.empty()) return Usage();
  cmp::DecisionTree tree;
  if (!cmp::LoadTree(tree_path, &tree)) {
    std::cerr << "failed to read " << tree_path << "\n";
    return kExitIo;
  }
  const std::vector<double> importance = cmp::GiniImportance(tree);
  std::cout << cmp::ImportanceToString(tree, importance);
  return kExitOk;
}

int CmdShow(int argc, char** argv) {
  const std::string tree_path = GetFlag(argc, argv, "--tree");
  if (tree_path.empty()) return Usage();
  std::vector<cmp::DecisionTree> trees;
  if (!cmp::LoadTrees(tree_path, &trees) || trees.empty()) {
    std::cerr << "failed to read " << tree_path << "\n";
    return kExitIo;
  }
  if (trees.size() == 1) {
    std::cout << trees[0].ToString();
    return kExitOk;
  }
  for (size_t i = 0; i < trees.size(); ++i) {
    std::cout << "=== tree " << (i + 1) << "/" << trees.size() << " ===\n"
              << trees[i].ToString();
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  // --kernel applies to every subcommand; resolve it before any work
  // touches the dispatch tables. Rejecting an unknown or unsupported
  // tier here keeps "bad flag" failures on the bad-args exit code.
  std::string kernel_error;
  if (!cmp::SelectKernelIsaByName(
          GetFlag(argc - 2, argv + 2, "--kernel", "auto"), &kernel_error)) {
    std::cerr << kernel_error << "\n";
    return kExitBadArgs;
  }
  const std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(argc - 2, argv + 2);
  if (cmd == "train") return CmdTrain(argc - 2, argv + 2);
  if (cmd == "refit") return CmdRefit(argc - 2, argv + 2);
  if (cmd == "eval") return CmdEval(argc - 2, argv + 2);
  if (cmd == "compile") return CmdCompile(argc - 2, argv + 2);
  if (cmd == "predict") return CmdPredict(argc - 2, argv + 2);
  if (cmd == "show") return CmdShow(argc - 2, argv + 2);
  if (cmd == "dot") return CmdDot(argc - 2, argv + 2);
  if (cmd == "explain") return CmdExplain(argc - 2, argv + 2);
  if (cmd == "info") return CmdInfo(argc - 2, argv + 2);
  if (cmd == "importance") return CmdImportance(argc - 2, argv + 2);
  return Usage();
}
