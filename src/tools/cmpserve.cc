// cmpserve: the CMP prediction-serving daemon.
//
//   cmptool compile --tree model.txt --out model.cmpb
//   cmpserve --model iris=model.cmpb --port 0 --port-file /tmp/port
//   printf 'predict iris 5.1,3.5,1.4,0.2\n' | nc 127.0.0.1 $(cat /tmp/port)
//
// Exit codes follow the cmptool contract: 0 ok, 2 bad arguments,
// 3 I/O or socket failure.

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/cpu_features.h"
#include "common/net.h"
#include "serve/server.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitBadArgs = 2;
constexpr int kExitIo = 3;

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int sig) { g_signal = sig; }

int Usage() {
  std::cerr
      << "usage: cmpserve --model NAME=PATH.cmpb [--model NAME2=PATH2 ...]\n"
         "                [--port P] [--unix PATH] [--threads N]\n"
         "                [--batch-rows R] [--batch-delay-us D]\n"
         "                [--port-file FILE] [--kernel auto|scalar|sse2|avx2]\n"
         "\n"
         "Serves predictions for compiled .cmpb models over a local TCP\n"
         "(default, port 0 = ephemeral) or UNIX socket. Line protocol:\n"
         "  predict <model> <csv-row> | predictp ... | batch <model> <n>\n"
         "  swap <model> <path.cmpb> | stats | quit\n"
         "\n"
         "--kernel pins the ISA tier of the batch traversal kernels\n"
         "(default auto-detects; predictions are identical across tiers).\n"
         "The tier actually serving is reported as kernel_isa in stats.\n";
  return kExitBadArgs;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::pair<std::string, std::string>> models;
  cmp::ServeOptions opts;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--model") {
      const char* v = value();
      if (v == nullptr) return Usage();
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr || eq == v || eq[1] == '\0') {
        std::cerr << "--model wants NAME=PATH, got '" << v << "'\n";
        return Usage();
      }
      models.emplace_back(std::string(v, eq), std::string(eq + 1));
    } else if (arg == "--port") {
      const char* v = value();
      if (v == nullptr) return Usage();
      opts.port = std::atoi(v);
    } else if (arg == "--unix") {
      const char* v = value();
      if (v == nullptr) return Usage();
      opts.unix_path = v;
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return Usage();
      opts.num_threads = std::atoi(v);
    } else if (arg == "--batch-rows") {
      const char* v = value();
      if (v == nullptr) return Usage();
      opts.batch.max_rows = std::atoi(v);
    } else if (arg == "--batch-delay-us") {
      const char* v = value();
      if (v == nullptr) return Usage();
      opts.batch.max_delay_us = std::atoi(v);
    } else if (arg == "--port-file") {
      const char* v = value();
      if (v == nullptr) return Usage();
      port_file = v;
    } else if (arg == "--kernel") {
      const char* v = value();
      if (v == nullptr) return Usage();
      std::string kernel_error;
      if (!cmp::SelectKernelIsaByName(v, &kernel_error)) {
        std::cerr << kernel_error << "\n";
        return Usage();
      }
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return Usage();
    }
  }
  if (models.empty()) {
    std::cerr << "at least one --model NAME=PATH.cmpb is required\n";
    return Usage();
  }
  if (opts.batch.max_rows < 1 || opts.batch.max_delay_us < 0 ||
      opts.port < 0 || opts.port > 65535) {
    return Usage();
  }

  cmp::ServeDaemon daemon(opts);
  for (const auto& [name, path] : models) {
    std::string error;
    if (daemon.registry().PublishFromFile(name, path, &error) == 0) {
      std::cerr << "cannot serve " << name << " from " << path << ": "
                << error << "\n";
      return kExitIo;
    }
  }

  std::string error;
  if (!daemon.Start(&error)) {
    std::cerr << "cmpserve: " << error << "\n";
    return kExitIo;
  }
  if (!opts.unix_path.empty()) {
    std::cerr << "cmpserve listening on " << opts.unix_path << "\n";
  } else {
    std::cerr << "cmpserve listening on " << opts.host << ":" << daemon.port()
              << "\n";
  }
  if (!port_file.empty() && !cmp::WritePortFile(port_file, daemon.port())) {
    std::cerr << "cannot write " << port_file << "\n";
    return kExitIo;
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  // Poll between short waits so a signal (whose handler may not touch
  // locks) still turns into a prompt, orderly shutdown.
  while (g_signal == 0 && !daemon.WaitFor(/*timeout_ms=*/200)) {
  }
  daemon.Shutdown();
  std::cerr << "cmpserve: " << daemon.stats().ToJson() << "\n";
  return kExitOk;
}
