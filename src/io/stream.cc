#include "io/stream.h"

#include <algorithm>
#include <cstring>
#include <new>
#include <utility>

#include "io/table_file.h"

namespace cmp {

namespace {

constexpr int64_t kAlign = 64;

int64_t AlignUp(int64_t bytes) { return (bytes + kAlign - 1) & ~(kAlign - 1); }

}  // namespace

ColumnBlock::~ColumnBlock() { ::operator delete(storage_, std::align_val_t(kAlign)); }

ColumnBlock& ColumnBlock::operator=(ColumnBlock&& other) noexcept {
  if (this == &other) return *this;
  ::operator delete(storage_, std::align_val_t(kAlign));
  schema_ = other.schema_;
  capacity_ = other.capacity_;
  begin_ = other.begin_;
  count_ = other.count_;
  storage_ = std::exchange(other.storage_, nullptr);
  allocated_ = std::exchange(other.allocated_, 0);
  numeric_ = std::move(other.numeric_);
  categorical_ = std::move(other.categorical_);
  labels_ = std::exchange(other.labels_, nullptr);
  other.schema_ = nullptr;
  other.capacity_ = other.begin_ = other.count_ = 0;
  return *this;
}

void ColumnBlock::Configure(const Schema& schema, int64_t capacity) {
  // Lay out every column at a 64-byte boundary inside one allocation.
  int64_t bytes = 0;
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    bytes += AlignUp(capacity * static_cast<int64_t>(
                                    schema.is_numeric(a) ? sizeof(double)
                                                         : sizeof(int32_t)));
  }
  bytes += AlignUp(capacity * static_cast<int64_t>(sizeof(ClassId)));

  if (bytes > allocated_) {
    ::operator delete(storage_, std::align_val_t(kAlign));
    storage_ = ::operator new(bytes, std::align_val_t(kAlign));
    allocated_ = bytes;
  }
  schema_ = &schema;
  capacity_ = capacity;
  begin_ = 0;
  count_ = 0;
  numeric_.assign(schema.num_attrs(), nullptr);
  categorical_.assign(schema.num_attrs(), nullptr);
  char* p = static_cast<char*>(storage_);
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (schema.is_numeric(a)) {
      numeric_[a] = reinterpret_cast<double*>(p);
      p += AlignUp(capacity * static_cast<int64_t>(sizeof(double)));
    } else {
      categorical_[a] = reinterpret_cast<int32_t*>(p);
      p += AlignUp(capacity * static_cast<int64_t>(sizeof(int32_t)));
    }
  }
  labels_ = reinterpret_cast<ClassId*>(p);
}

std::unique_ptr<TableScanner> TableScanner::Open(const std::string& path,
                                                 int64_t block_records,
                                                 int64_t first_record,
                                                 int64_t slice_records) {
  // Parse the header with the existing reader, then locate the column
  // payloads: they start right after the header and are laid out in
  // schema order, labels last.
  Schema schema;
  int64_t n = 0;
  if (!ReadTableHeader(path, &schema, &n) || block_records <= 0) {
    return nullptr;
  }

  std::unique_ptr<TableScanner> scanner(new TableScanner());
  scanner->schema_ = schema;
  scanner->num_records_ = n;
  scanner->block_records_ = block_records;
  scanner->file_.open(path, std::ios::binary);
  if (!scanner->file_.is_open()) return nullptr;

  // Header size: magic(4) + version(4) + counts(8) + per attr
  // (4 + name + 1 + 4) + per class (4 + name).
  int64_t offset = 4 + 4 + 4 + 4;
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    offset += 4 + static_cast<int64_t>(schema.attr(a).name.size()) + 1 + 4;
  }
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    offset += 4 + static_cast<int64_t>(schema.class_name(c).size());
  }
  offset += 8;  // num_records

  scanner->column_offsets_.resize(schema.num_attrs());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    scanner->column_offsets_[a] = offset;
    offset += n * static_cast<int64_t>(schema.is_numeric(a)
                                           ? sizeof(double)
                                           : sizeof(int32_t));
  }
  scanner->label_offset_ = offset;
  offset += n * static_cast<int64_t>(sizeof(ClassId));

  // The header promises `n` records; reject a file whose payload cannot
  // hold them (or trails garbage), so a truncated table fails at Open
  // instead of mid-pass.
  scanner->file_.seekg(0, std::ios::end);
  const int64_t file_size = static_cast<int64_t>(scanner->file_.tellg());
  scanner->file_.seekg(0);
  if (file_size != offset) return nullptr;

  // Slice view: rebase every column offset by `first_record` rows and
  // shrink the visible record count, so record id 0 of this scanner is
  // file record `first_record` and all the read paths above stay
  // slice-oblivious.
  if (first_record < 0 || first_record > n) return nullptr;
  const int64_t slice =
      slice_records < 0 ? n - first_record : slice_records;
  if (slice < 0 || first_record + slice > n) return nullptr;
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    const int64_t width = static_cast<int64_t>(
        schema.is_numeric(a) ? sizeof(double) : sizeof(int32_t));
    scanner->column_offsets_[a] += first_record * width;
  }
  scanner->label_offset_ +=
      first_record * static_cast<int64_t>(sizeof(ClassId));
  scanner->num_records_ = slice;
  return scanner;
}

bool TableScanner::ReadBlock(int64_t start, int64_t count,
                             ColumnBlock* block) {
  if (block->schema() != &schema_ || block->capacity() < count) {
    block->Configure(schema_, std::max(count, block_records_));
  }
  block->set_range(start, 0);
  if (start < 0 || count < 0 || start + count > num_records_) return false;

  // One seek + one bulk read per column, straight into the block's
  // aligned buffers.
  for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
    const int64_t width = static_cast<int64_t>(
        schema_.is_numeric(a) ? sizeof(double) : sizeof(int32_t));
    file_.seekg(column_offsets_[a] + start * width);
    char* dst = schema_.is_numeric(a)
                    ? reinterpret_cast<char*>(block->numeric_col(a))
                    : reinterpret_cast<char*>(block->categorical_col(a));
    file_.read(dst, count * width);
    if (!file_.good()) return false;
    bytes_read_ += count * width;
  }
  file_.seekg(label_offset_ + start * static_cast<int64_t>(sizeof(ClassId)));
  file_.read(reinterpret_cast<char*>(block->labels()),
             count * static_cast<int64_t>(sizeof(ClassId)));
  if (!file_.good()) return false;
  bytes_read_ += count * static_cast<int64_t>(sizeof(ClassId));

  const ClassId* labels = block->labels();
  for (int64_t i = 0; i < count; ++i) {
    if (labels[i] < 0 || labels[i] >= schema_.num_classes()) return false;
  }
  block->set_range(start, count);
  return true;
}

bool TableScanner::ReadNumericColumn(AttrId a, std::vector<double>* out) {
  out->resize(num_records_);
  file_.seekg(column_offsets_[a]);
  file_.read(reinterpret_cast<char*>(out->data()),
             num_records_ * static_cast<int64_t>(sizeof(double)));
  if (!file_.good() && !(file_.eof() && num_records_ == 0)) return false;
  bytes_read_ += num_records_ * static_cast<int64_t>(sizeof(double));
  return true;
}

bool TableScanner::ReadCategoricalColumn(AttrId a, std::vector<int32_t>* out) {
  out->resize(num_records_);
  file_.seekg(column_offsets_[a]);
  file_.read(reinterpret_cast<char*>(out->data()),
             num_records_ * static_cast<int64_t>(sizeof(int32_t)));
  if (!file_.good() && !(file_.eof() && num_records_ == 0)) return false;
  bytes_read_ += num_records_ * static_cast<int64_t>(sizeof(int32_t));
  return true;
}

bool TableScanner::ReadLabelColumn(std::vector<ClassId>* out) {
  out->resize(num_records_);
  file_.seekg(label_offset_);
  file_.read(reinterpret_cast<char*>(out->data()),
             num_records_ * static_cast<int64_t>(sizeof(ClassId)));
  if (!file_.good() && !(file_.eof() && num_records_ == 0)) return false;
  bytes_read_ += num_records_ * static_cast<int64_t>(sizeof(ClassId));
  for (ClassId c : *out) {
    if (c < 0 || c >= schema_.num_classes()) return false;
  }
  return true;
}

bool TableScanner::NextBlock(ColumnBlock* block) {
  if (position_ >= num_records_) {
    if (block->schema() != &schema_) block->Configure(schema_, block_records_);
    block->set_range(position_, 0);
    return false;
  }
  const int64_t count = std::min(block_records_, num_records_ - position_);
  if (!ReadBlock(position_, count, block)) return false;
  position_ += count;
  return true;
}

}  // namespace cmp
