#include "io/stream.h"

#include <algorithm>

#include "io/table_file.h"

namespace cmp {

std::unique_ptr<TableScanner> TableScanner::Open(const std::string& path,
                                                 int64_t block_records) {
  // Parse the header with the existing reader, then locate the column
  // payloads: they start right after the header and are laid out in
  // schema order, labels last.
  Schema schema;
  int64_t n = 0;
  if (!ReadTableHeader(path, &schema, &n) || block_records <= 0) {
    return nullptr;
  }

  std::unique_ptr<TableScanner> scanner(new TableScanner());
  scanner->schema_ = schema;
  scanner->num_records_ = n;
  scanner->block_records_ = block_records;
  scanner->file_.open(path, std::ios::binary);
  if (!scanner->file_.is_open()) return nullptr;

  // Header size: magic(4) + version(4) + counts(8) + per attr
  // (4 + name + 1 + 4) + per class (4 + name).
  int64_t offset = 4 + 4 + 4 + 4;
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    offset += 4 + static_cast<int64_t>(schema.attr(a).name.size()) + 1 + 4;
  }
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    offset += 4 + static_cast<int64_t>(schema.class_name(c).size());
  }
  offset += 8;  // num_records

  scanner->column_offsets_.resize(schema.num_attrs());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    scanner->column_offsets_[a] = offset;
    offset += n * static_cast<int64_t>(schema.is_numeric(a)
                                           ? sizeof(double)
                                           : sizeof(int32_t));
  }
  scanner->label_offset_ = offset;
  return scanner;
}

bool TableScanner::NextBlock(Dataset* block) {
  *block = Dataset(schema_);
  if (position_ >= num_records_) return false;
  const int64_t count =
      std::min(block_records_, num_records_ - position_);
  block->Reserve(count);

  // Load this block's slice of every column.
  std::vector<std::vector<double>> ncols(schema_.num_attrs());
  std::vector<std::vector<int32_t>> ccols(schema_.num_attrs());
  for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
    if (schema_.is_numeric(a)) {
      ncols[a].resize(count);
      file_.seekg(column_offsets_[a] +
                  position_ * static_cast<int64_t>(sizeof(double)));
      file_.read(reinterpret_cast<char*>(ncols[a].data()),
                 count * static_cast<int64_t>(sizeof(double)));
    } else {
      ccols[a].resize(count);
      file_.seekg(column_offsets_[a] +
                  position_ * static_cast<int64_t>(sizeof(int32_t)));
      file_.read(reinterpret_cast<char*>(ccols[a].data()),
                 count * static_cast<int64_t>(sizeof(int32_t)));
    }
    if (!file_.good()) return false;
  }
  std::vector<ClassId> labels(count);
  file_.seekg(label_offset_ +
              position_ * static_cast<int64_t>(sizeof(ClassId)));
  file_.read(reinterpret_cast<char*>(labels.data()),
             count * static_cast<int64_t>(sizeof(ClassId)));
  if (!file_.good()) return false;

  std::vector<double> nvals;
  std::vector<int32_t> cvals;
  for (int64_t i = 0; i < count; ++i) {
    nvals.clear();
    cvals.clear();
    for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
      if (schema_.is_numeric(a)) {
        nvals.push_back(ncols[a][i]);
      } else {
        cvals.push_back(ccols[a][i]);
      }
    }
    if (labels[i] < 0 || labels[i] >= schema_.num_classes()) return false;
    block->Append(nvals, cvals, labels[i]);
  }
  position_ += count;
  return true;
}

}  // namespace cmp
