#include "io/table_file.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace cmp {

namespace {

constexpr char kMagic[4] = {'C', 'M', 'P', 'T'};
constexpr uint32_t kVersion = 1;

void WriteU32(std::ofstream& os, uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteI32(std::ofstream& os, int32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteI64(std::ofstream& os, int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(std::ofstream& os, const std::string& s) {
  WriteU32(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadU32(std::ifstream& is, uint32_t* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return is.good();
}

bool ReadI32(std::ifstream& is, int32_t* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return is.good();
}

bool ReadI64(std::ifstream& is, int64_t* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return is.good();
}

bool ReadString(std::ifstream& is, std::string* s) {
  uint32_t len = 0;
  if (!ReadU32(is, &len)) return false;
  if (len > (1u << 20)) return false;  // implausible name length
  s->resize(len);
  is.read(s->data(), len);
  return is.good();
}

bool ReadHeaderInternal(std::ifstream& is, Schema* schema,
                        int64_t* num_records) {
  char magic[4];
  is.read(magic, 4);
  if (!is.good() || std::memcmp(magic, kMagic, 4) != 0) return false;
  uint32_t version = 0;
  if (!ReadU32(is, &version) || version != kVersion) return false;
  uint32_t num_attrs = 0;
  uint32_t num_classes = 0;
  if (!ReadU32(is, &num_attrs) || !ReadU32(is, &num_classes)) return false;
  std::vector<AttrInfo> attrs(num_attrs);
  for (auto& a : attrs) {
    if (!ReadString(is, &a.name)) return false;
    char kind = 0;
    is.read(&kind, 1);
    if (!is.good()) return false;
    a.kind = kind == 0 ? AttrKind::kNumeric : AttrKind::kCategorical;
    if (!ReadI32(is, &a.cardinality)) return false;
  }
  std::vector<std::string> class_names(num_classes);
  for (auto& cn : class_names) {
    if (!ReadString(is, &cn)) return false;
  }
  if (!ReadI64(is, num_records) || *num_records < 0) return false;
  *schema = Schema(std::move(attrs), std::move(class_names));
  return true;
}

}  // namespace

bool SaveTableFile(const Dataset& ds, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.is_open()) return false;
  os.write(kMagic, 4);
  WriteU32(os, kVersion);
  const Schema& schema = ds.schema();
  WriteU32(os, static_cast<uint32_t>(schema.num_attrs()));
  WriteU32(os, static_cast<uint32_t>(schema.num_classes()));
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    const AttrInfo& info = schema.attr(a);
    WriteString(os, info.name);
    const char kind = info.kind == AttrKind::kNumeric ? 0 : 1;
    os.write(&kind, 1);
    WriteI32(os, info.cardinality);
  }
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    WriteString(os, schema.class_name(c));
  }
  WriteI64(os, ds.num_records());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (schema.is_numeric(a)) {
      const auto& col = ds.numeric_column(a);
      os.write(reinterpret_cast<const char*>(col.data()),
               static_cast<std::streamsize>(col.size() * sizeof(double)));
    } else {
      const auto& col = ds.categorical_column(a);
      os.write(reinterpret_cast<const char*>(col.data()),
               static_cast<std::streamsize>(col.size() * sizeof(int32_t)));
    }
  }
  const auto& labels = ds.labels();
  os.write(reinterpret_cast<const char*>(labels.data()),
           static_cast<std::streamsize>(labels.size() * sizeof(ClassId)));
  return os.good();
}

bool LoadTableFile(const std::string& path, Dataset* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return false;
  Schema schema;
  int64_t n = 0;
  if (!ReadHeaderInternal(is, &schema, &n)) return false;

  // Read columns, then repack record-wise through Append to reuse the
  // Dataset invariants.
  std::vector<std::vector<double>> ncols(schema.num_attrs());
  std::vector<std::vector<int32_t>> ccols(schema.num_attrs());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (schema.is_numeric(a)) {
      ncols[a].resize(n);
      is.read(reinterpret_cast<char*>(ncols[a].data()),
              static_cast<std::streamsize>(n * sizeof(double)));
    } else {
      ccols[a].resize(n);
      is.read(reinterpret_cast<char*>(ccols[a].data()),
              static_cast<std::streamsize>(n * sizeof(int32_t)));
    }
    if (!is.good()) return false;
  }
  std::vector<ClassId> labels(n);
  is.read(reinterpret_cast<char*>(labels.data()),
          static_cast<std::streamsize>(n * sizeof(ClassId)));
  if (!is.good()) return false;

  Dataset ds(schema);
  ds.Reserve(n);
  std::vector<double> nvals;
  std::vector<int32_t> cvals;
  for (int64_t r = 0; r < n; ++r) {
    nvals.clear();
    cvals.clear();
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      if (schema.is_numeric(a)) {
        nvals.push_back(ncols[a][r]);
      } else {
        cvals.push_back(ccols[a][r]);
      }
    }
    if (labels[r] < 0 || labels[r] >= schema.num_classes()) return false;
    ds.Append(nvals, cvals, labels[r]);
  }
  *out = std::move(ds);
  return true;
}

bool ReadTableHeader(const std::string& path, Schema* schema,
                     int64_t* num_records) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return false;
  return ReadHeaderInternal(is, schema, num_records);
}

}  // namespace cmp
