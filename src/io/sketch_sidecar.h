#ifndef CMP_IO_SKETCH_SIDECAR_H_
#define CMP_IO_SKETCH_SIDECAR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/types.h"
#include "hist/sketch.h"

namespace cmp {

/// Per-leaf training state the streaming builder (src/stream/) persists
/// next to the tree so `cmptool refit` can later extend the model
/// without the original data: the leaf's class counts, one quantile
/// sketch per (class, numeric attribute), and exact per-class count
/// tables for the categorical attributes. Merging these with the same
/// statistics gathered from fresh records reconstructs exactly the
/// state the streaming builder would hold at that node, which is what
/// lets refit regrow a drifted leaf as if training had never stopped.
struct LeafSketchState {
  NodeId node = kInvalidNode;
  /// Records per class routed to this leaf (size num_classes).
  std::vector<int64_t> class_counts;
  /// Class-major: sketches[c * num_numeric + j] summarizes the values of
  /// the j-th numeric attribute (ascending AttrId order) over the leaf's
  /// class-c records. Size num_classes * num_numeric.
  std::vector<QuantileSketch> sketches;
  /// Per categorical attribute (ascending AttrId order): a flat
  /// cardinality x num_classes count table, value-major.
  std::vector<std::vector<int64_t>> cat_counts;
};

/// The `.cmps` sketch sidecar: everything `cmptool refit` needs beyond
/// the serialized tree itself. Carries a schema signature so a sidecar
/// is rejected when paired with a tree or dataset it was not trained
/// with.
struct SketchSidecar {
  /// Per-level sketch capacity k the builder ran with (refit continues
  /// with the same capacity so merged sketches stay comparable).
  int sketch_capacity = QuantileSketch::kDefaultCapacity;
  /// Grid resolution (intervals per attribute) the builder ran with.
  int intervals = 100;
  /// Total records the model has seen across train + all refits.
  int64_t records_seen = 0;

  // Schema signature (validated against the refit dataset's schema).
  int num_classes = 0;
  std::vector<uint8_t> attr_is_numeric;   // one per attribute
  std::vector<int32_t> attr_cardinality;  // one per attribute; 0 = numeric

  std::vector<LeafSketchState> leaves;

  /// Fills the signature fields from `schema`.
  void SetSchema(const Schema& schema);
  /// True when the signature matches `schema` exactly.
  bool MatchesSchema(const Schema& schema) const;
};

/// Serializes to the `.cmps` byte image: magic "CMPS", u32 version,
/// u32 endianness probe (0x01020304), then the varint-packed payload.
std::vector<uint8_t> SerializeSketchSidecar(const SketchSidecar& sidecar);

/// Parses a `.cmps` image. False with *error on bad magic/version/
/// endianness, truncation, or internally inconsistent sketch state —
/// every count is bounds-checked before allocation, so corrupt input
/// fails clean rather than over-allocating or reading out of bounds.
bool ParseSketchSidecar(const std::vector<uint8_t>& bytes,
                        SketchSidecar* sidecar, std::string* error);

bool SaveSketchSidecar(const SketchSidecar& sidecar, const std::string& path,
                       std::string* error);
bool LoadSketchSidecar(const std::string& path, SketchSidecar* sidecar,
                       std::string* error);

}  // namespace cmp

#endif  // CMP_IO_SKETCH_SIDECAR_H_
