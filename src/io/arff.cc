#include "io/arff.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

namespace cmp {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         Lower(s.substr(0, prefix.size())) == prefix;
}

std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string field;
  while (std::getline(ss, field, ',')) {
    out.push_back(Trim(field));
  }
  return out;
}

struct ArffAttr {
  std::string name;
  bool nominal = false;
  std::vector<std::string> values;  // nominal only
};

// Parses "@attribute NAME numeric" / "@attribute NAME {a,b,c}".
bool ParseAttribute(const std::string& line, ArffAttr* out) {
  // Skip "@attribute" and whitespace.
  size_t pos = line.find_first_of(" \t");
  if (pos == std::string::npos) return false;
  std::string rest = Trim(line.substr(pos));
  if (rest.empty()) return false;
  // Name may be quoted.
  if (rest[0] == '\'' || rest[0] == '"') {
    const char quote = rest[0];
    const size_t end = rest.find(quote, 1);
    if (end == std::string::npos) return false;
    out->name = rest.substr(1, end - 1);
    rest = Trim(rest.substr(end + 1));
  } else {
    const size_t end = rest.find_first_of(" \t");
    if (end == std::string::npos) return false;
    out->name = rest.substr(0, end);
    rest = Trim(rest.substr(end));
  }
  if (rest.empty()) return false;
  if (rest[0] == '{') {
    const size_t close = rest.find('}');
    if (close == std::string::npos) return false;
    out->nominal = true;
    out->values = SplitCsv(rest.substr(1, close - 1));
    for (auto& v : out->values) {
      if (!v.empty() && (v.front() == '\'' || v.front() == '"')) {
        v = v.substr(1, v.size() - 2);
      }
      if (v.empty()) return false;
    }
    return !out->values.empty();
  }
  const std::string kind = Lower(Trim(rest));
  return kind == "numeric" || kind == "real" || kind == "integer";
}

int FindValue(const std::vector<std::string>& values,
              const std::string& v) {
  std::string needle = v;
  if (!needle.empty() && (needle.front() == '\'' || needle.front() == '"')) {
    needle = needle.substr(1, needle.size() - 2);
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] == needle) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

bool LoadArff(const std::string& path, Dataset* out) {
  std::ifstream is(path);
  if (!is.is_open()) return false;

  std::vector<ArffAttr> attrs;
  std::string line;
  bool in_data = false;

  // ---- Header.
  while (!in_data && std::getline(is, line)) {
    line = Trim(line);
    if (line.empty() || line[0] == '%') continue;
    if (StartsWith(line, "@relation")) continue;
    if (StartsWith(line, "@attribute")) {
      ArffAttr attr;
      if (!ParseAttribute(line, &attr)) return false;
      attrs.push_back(std::move(attr));
      continue;
    }
    if (StartsWith(line, "@data")) {
      in_data = true;
      continue;
    }
    return false;  // unknown directive
  }
  if (!in_data || attrs.size() < 2) return false;
  if (!attrs.back().nominal) return false;  // class must be nominal

  std::vector<AttrInfo> schema_attrs;
  for (size_t i = 0; i + 1 < attrs.size(); ++i) {
    AttrInfo info;
    info.name = attrs[i].name;
    if (attrs[i].nominal) {
      info.kind = AttrKind::kCategorical;
      info.cardinality = static_cast<int32_t>(attrs[i].values.size());
    } else {
      info.kind = AttrKind::kNumeric;
    }
    schema_attrs.push_back(std::move(info));
  }
  Dataset ds(Schema(std::move(schema_attrs), attrs.back().values));

  // ---- Data rows.
  std::vector<double> nvals;
  std::vector<int32_t> cvals;
  while (std::getline(is, line)) {
    line = Trim(line);
    if (line.empty() || line[0] == '%') continue;
    const std::vector<std::string> fields = SplitCsv(line);
    if (fields.size() != attrs.size()) return false;
    nvals.clear();
    cvals.clear();
    for (size_t i = 0; i + 1 < attrs.size(); ++i) {
      if (fields[i] == "?") return false;  // missing values unsupported
      if (attrs[i].nominal) {
        const int v = FindValue(attrs[i].values, fields[i]);
        if (v < 0) return false;
        cvals.push_back(v);
      } else {
        try {
          nvals.push_back(std::stod(fields[i]));
        } catch (...) {
          return false;
        }
      }
    }
    const int label = FindValue(attrs.back().values, fields.back());
    if (label < 0) return false;
    ds.Append(nvals, cvals, static_cast<ClassId>(label));
  }
  *out = std::move(ds);
  return true;
}

bool SaveArff(const Dataset& ds, const std::string& relation,
              const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os.is_open()) return false;
  const Schema& schema = ds.schema();
  os << "@relation " << relation << '\n';
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    const AttrInfo& info = schema.attr(a);
    os << "@attribute " << info.name << ' ';
    if (info.kind == AttrKind::kNumeric) {
      os << "numeric\n";
    } else {
      os << '{';
      for (int32_t v = 0; v < info.cardinality; ++v) {
        if (v > 0) os << ',';
        os << 'v' << v;
      }
      os << "}\n";
    }
  }
  os << "@attribute class {";
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    if (c > 0) os << ',';
    os << schema.class_name(c);
  }
  os << "}\n@data\n";
  os.precision(17);
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      if (schema.is_numeric(a)) {
        os << ds.numeric(a, r);
      } else {
        os << 'v' << ds.categorical(a, r);
      }
      os << ',';
    }
    os << schema.class_name(ds.label(r)) << '\n';
  }
  return os.good();
}

}  // namespace cmp
