#ifndef CMP_IO_SCAN_H_
#define CMP_IO_SCAN_H_

#include <cmath>
#include <cstdint>

#include "common/dataset.h"
#include "common/stats.h"

namespace cmp {

/// Accounting facade every tree builder charges its data movement to.
///
/// The library keeps training sets in memory for speed, but the algorithms
/// are written and costed as if the data were disk-resident (as in the
/// paper): each full iteration over the records is a "scan" and is charged
/// here. Benchmarks convert the counters to simulated seconds through
/// DiskModel, which is how the paper's figures are regenerated.
///
/// When a builder really does stream from disk (the out-of-core path), it
/// flips the tracker into real-I/O mode: scan/record counters keep
/// ticking, but the *byte* charges of the simulation are suppressed and
/// the builder instead reports the actual bytes its scanner pulled via
/// ChargeRealBytes, so BuildStats.bytes_read is measured, not modeled.
class ScanTracker {
 public:
  /// `stats` must outlive the tracker; may be null (all charges dropped).
  explicit ScanTracker(BuildStats* stats) : stats_(stats) {}

  /// Switches byte accounting from the disk simulation to real,
  /// scanner-reported bytes.
  void set_real_io(bool real_io) { real_io_ = real_io; }
  bool real_io() const { return real_io_; }

  /// Real-I/O mode only: adds bytes actually read from backing storage.
  void ChargeRealBytes(int64_t bytes) {
    if (stats_ == nullptr) return;
    stats_->bytes_read += bytes;
  }

  /// Charges one full sequential pass over `ds`.
  void ChargeScan(const Dataset& ds) {
    ChargeScan(ds.num_records(), ds.schema());
  }

  /// Charges one full sequential pass of `records` records of the given
  /// schema (for builders that do not hold a Dataset).
  void ChargeScan(int64_t records, const Schema& schema) {
    if (stats_ == nullptr) return;
    stats_->dataset_scans += 1;
    stats_->records_read += records;
    if (!real_io_) stats_->bytes_read += records * schema.RecordBytes();
  }

  /// Charges a partial pass of `records` records of the given schema.
  void ChargeRecords(int64_t records, const Schema& schema) {
    if (stats_ == nullptr) return;
    stats_->records_read += records;
    if (!real_io_) stats_->bytes_read += records * schema.RecordBytes();
  }

  /// Charges `bytes` of sequential writes (materialized lists, nid swap).
  void ChargeWrite(int64_t bytes) {
    if (stats_ == nullptr) return;
    stats_->bytes_written += bytes;
  }

  /// Charges an n·log2(n) comparison sort of `n` keys.
  void ChargeSort(int64_t n) {
    if (stats_ == nullptr || n <= 1) return;
    stats_->sort_comparisons +=
        static_cast<int64_t>(std::ceil(static_cast<double>(n) *
                                       std::log2(static_cast<double>(n))));
  }

  /// Records that `n` records were set aside in side buffers.
  void ChargeBuffered(int64_t n) {
    if (stats_ == nullptr) return;
    stats_->buffered_records += n;
  }

  /// Raises the peak-working-memory estimate to at least `bytes`.
  void NotePeakMemory(int64_t bytes) {
    if (stats_ == nullptr) return;
    UpdatePeak(stats_->peak_memory_bytes, bytes);
  }

  BuildStats* stats() { return stats_; }

 private:
  BuildStats* stats_;
  bool real_io_ = false;
};

}  // namespace cmp

#endif  // CMP_IO_SCAN_H_
