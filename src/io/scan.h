#ifndef CMP_IO_SCAN_H_
#define CMP_IO_SCAN_H_

#include <cmath>
#include <cstdint>

#include "common/dataset.h"
#include "common/stats.h"

namespace cmp {

/// Accounting facade every tree builder charges its data movement to.
///
/// The library keeps training sets in memory for speed, but the algorithms
/// are written and costed as if the data were disk-resident (as in the
/// paper): each full iteration over the records is a "scan" and is charged
/// here. Benchmarks convert the counters to simulated seconds through
/// DiskModel, which is how the paper's figures are regenerated.
class ScanTracker {
 public:
  /// `stats` must outlive the tracker; may be null (all charges dropped).
  explicit ScanTracker(BuildStats* stats) : stats_(stats) {}

  /// Charges one full sequential pass over `ds`.
  void ChargeScan(const Dataset& ds) {
    if (stats_ == nullptr) return;
    stats_->dataset_scans += 1;
    stats_->records_read += ds.num_records();
    stats_->bytes_read += ds.TotalBytes();
  }

  /// Charges a partial pass of `records` records of the given schema.
  void ChargeRecords(int64_t records, const Schema& schema) {
    if (stats_ == nullptr) return;
    stats_->records_read += records;
    stats_->bytes_read += records * schema.RecordBytes();
  }

  /// Charges `bytes` of sequential writes (materialized lists, nid swap).
  void ChargeWrite(int64_t bytes) {
    if (stats_ == nullptr) return;
    stats_->bytes_written += bytes;
  }

  /// Charges an n·log2(n) comparison sort of `n` keys.
  void ChargeSort(int64_t n) {
    if (stats_ == nullptr || n <= 1) return;
    stats_->sort_comparisons +=
        static_cast<int64_t>(std::ceil(static_cast<double>(n) *
                                       std::log2(static_cast<double>(n))));
  }

  /// Records that `n` records were set aside in side buffers.
  void ChargeBuffered(int64_t n) {
    if (stats_ == nullptr) return;
    stats_->buffered_records += n;
  }

  /// Raises the peak-working-memory estimate to at least `bytes`.
  void NotePeakMemory(int64_t bytes) {
    if (stats_ == nullptr) return;
    UpdatePeak(stats_->peak_memory_bytes, bytes);
  }

  BuildStats* stats() { return stats_; }

 private:
  BuildStats* stats_;
};

}  // namespace cmp

#endif  // CMP_IO_SCAN_H_
