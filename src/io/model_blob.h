#ifndef CMP_IO_MODEL_BLOB_H_
#define CMP_IO_MODEL_BLOB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cmp {

/// The `.cmpb` compiled-model container: one relocatable, versioned,
/// endian-checked byte blob holding a schema section plus the flat
/// structure-of-arrays sections of one or more compiled trees.
///
/// Layout (all offsets from byte 0 of the blob):
///
///   header      magic "CMPB", u32 version, u32 endian probe
///               (0x01020304 as written), u32 section count,
///               u32 num_trees, u32 num_classes, u32 reserved,
///               u64 total byte size
///   section     num_sections entries of BlobSection (tree id, kind,
///   table       offset, element count, byte size)
///   payload     the sections' raw bytes, each at least 8-byte aligned
///               (the hot node arrays — attr, threshold, children — are
///               64-byte aligned so an mmap'd descent superblock sits on
///               cache-line boundaries), zero-padded in between
///
/// The container is deliberately dumb: it knows sections and bounds, not
/// tree semantics. What each section *means* (element sizes, per-node
/// invariants) is validated by the compiled-model parser in
/// infer/model_io.h, so the same container can later carry other
/// flattened payloads (histogram wire messages, sketches) without
/// another magic number.
///
/// A loaded ModelBlob is immutable and position-independent: every
/// section is reached through the table, never through stored pointers,
/// so the same bytes are valid whether they arrived by mmap, one bulk
/// read, or a network copy. Predictors keep the owning
/// shared_ptr<ModelBlob> alive for as long as they hold views into it —
/// that shared_ptr is what lets a serving process retire an old model
/// only after the last in-flight batch drains.
struct BlobSection {
  /// Tree the section belongs to, or kGlobalSection for blob-wide
  /// sections (the schema).
  uint32_t tree = 0;
  /// A SectionKind value. Unknown kinds are skipped by readers so the
  /// format can grow sections without a version bump.
  uint32_t kind = 0;
  /// Byte offset of the payload from the start of the blob (8-aligned).
  uint64_t offset = 0;
  /// Number of elements (element width is implied by `kind`).
  uint64_t count = 0;
  /// Payload size in bytes.
  uint64_t bytes = 0;
};

/// Section kinds used by compiled tree models.
enum class SectionKind : uint32_t {
  kSchema = 1,      // serialized Schema (attrs + class names)
  kNodeAttr = 2,    // int16_t per node
  kThreshold = 3,   // float per node
  kChildren = 4,    // int32_t, 2 per node
  kCatSplits = 5,   // CompiledTree::CatSplit
  kCatBits = 6,     // uint8_t membership bit pool
  kLinSplits = 7,   // CompiledTree::LinSplit
  kWideSplits = 8,  // CompiledTree::WideSplit
  kLeafClass = 9,   // ClassId per leaf
  kLeafProbs = 10,  // float, num_leaves x num_classes
  kNodeLayout = 11,  // u32 NodeLayout value + u32 layout version (global);
                     // absent in blobs written before layouts existed
                     // (those are preorder)
};

inline constexpr uint32_t kGlobalSection = 0xffffffffu;
inline constexpr uint32_t kModelBlobVersion = 1;

class ModelBlob {
 public:
  ~ModelBlob();
  ModelBlob(const ModelBlob&) = delete;
  ModelBlob& operator=(const ModelBlob&) = delete;

  /// Wraps (and takes ownership of) in-memory blob bytes. Returns null
  /// and fills `error` if the header or section table is malformed.
  static std::shared_ptr<const ModelBlob> FromBytes(
      std::vector<uint8_t> bytes, std::string* error);

  /// Loads a blob from disk: mmaps the file read-only when possible
  /// (zero-copy, pages fault in on first descent) and falls back to one
  /// bulk read. Returns null and fills `error` on I/O or format errors.
  static std::shared_ptr<const ModelBlob> Load(const std::string& path,
                                               std::string* error);

  const uint8_t* data() const { return data_; }
  uint64_t size() const { return size_; }
  /// True when the bytes are an mmap'd file rather than owned memory.
  bool mapped() const { return mapped_; }

  uint32_t num_trees() const { return num_trees_; }
  uint32_t num_classes() const { return num_classes_; }
  const std::vector<BlobSection>& sections() const { return sections_; }

  /// Finds the section of `kind` for `tree` (kGlobalSection for
  /// blob-wide sections); null when absent.
  const BlobSection* Find(uint32_t tree, SectionKind kind) const;

  /// Typed pointer to a section's payload. The section must come from
  /// this blob's table (offsets are bounds-checked at construction).
  template <typename T>
  const T* SectionData(const BlobSection& s) const {
    return reinterpret_cast<const T*>(data_ + s.offset);
  }

 private:
  ModelBlob() = default;
  /// Parses + bounds-checks the header and section table against
  /// [data_, data_ + size_). On failure the blob must be discarded.
  bool Parse(std::string* error);

  const uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  bool mapped_ = false;
  std::vector<uint8_t> owned_;  // backing store when !mapped_

  uint32_t num_trees_ = 0;
  uint32_t num_classes_ = 0;
  std::vector<BlobSection> sections_;
};

/// Incrementally builds a `.cmpb` byte image: add sections in any order,
/// then Finish() lays them out aligned behind the header + table (64
/// bytes for the hot node arrays, 8 otherwise).
/// Section payloads are copied at Add time, so callers may reuse their
/// scratch buffers.
class BlobWriter {
 public:
  BlobWriter(uint32_t num_trees, uint32_t num_classes)
      : num_trees_(num_trees), num_classes_(num_classes) {}

  void Add(uint32_t tree, SectionKind kind, const void* data, uint64_t count,
           uint64_t elem_bytes);

  /// Assembles the final blob image. The writer is spent afterwards.
  std::vector<uint8_t> Finish();

 private:
  struct Pending {
    BlobSection section;
    std::vector<uint8_t> payload;
  };
  uint32_t num_trees_;
  uint32_t num_classes_;
  std::vector<Pending> pending_;
};

}  // namespace cmp

#endif  // CMP_IO_MODEL_BLOB_H_
