#ifndef CMP_IO_STREAM_H_
#define CMP_IO_STREAM_H_

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/types.h"

namespace cmp {

/// Reusable columnar staging buffer for one block of records.
///
/// All columns live in a single cache-line-aligned allocation (numeric
/// columns first, then categorical columns, then labels, each column
/// padded to a 64-byte boundary), so a scanner can refill the same
/// memory block after block without reallocating, and SIMD-friendly
/// column pointers stay aligned regardless of the schema layout.
class ColumnBlock {
 public:
  ColumnBlock() = default;
  ~ColumnBlock();

  ColumnBlock(const ColumnBlock&) = delete;
  ColumnBlock& operator=(const ColumnBlock&) = delete;
  ColumnBlock(ColumnBlock&& other) noexcept { *this = std::move(other); }
  ColumnBlock& operator=(ColumnBlock&& other) noexcept;

  /// (Re)shapes the buffer for up to `capacity` records of `schema`.
  /// Reuses the existing allocation when it is already large enough.
  /// `schema` must outlive the block.
  void Configure(const Schema& schema, int64_t capacity);

  const Schema* schema() const { return schema_; }
  int64_t capacity() const { return capacity_; }

  /// Global id of the first record currently staged, and how many.
  int64_t begin() const { return begin_; }
  int64_t count() const { return count_; }
  void set_range(int64_t begin, int64_t count) {
    begin_ = begin;
    count_ = count;
  }

  /// Column pointers. Only the matching-kind accessor is valid per
  /// attribute (mirroring Dataset's layout).
  double* numeric_col(AttrId a) { return numeric_[a]; }
  const double* numeric_col(AttrId a) const { return numeric_[a]; }
  int32_t* categorical_col(AttrId a) { return categorical_[a]; }
  const int32_t* categorical_col(AttrId a) const { return categorical_[a]; }
  ClassId* labels() { return labels_; }
  const ClassId* labels() const { return labels_; }

  /// Record accessors (record ids are LOCAL to the block: 0..count-1).
  double numeric(AttrId a, int64_t i) const { return numeric_[a][i]; }
  int32_t categorical(AttrId a, int64_t i) const { return categorical_[a][i]; }
  ClassId label(int64_t i) const { return labels_[i]; }

  /// Bytes of the backing allocation (for memory accounting).
  int64_t allocated_bytes() const { return allocated_; }

 private:
  const Schema* schema_ = nullptr;
  int64_t capacity_ = 0;
  int64_t begin_ = 0;
  int64_t count_ = 0;
  void* storage_ = nullptr;
  int64_t allocated_ = 0;
  std::vector<double*> numeric_;      // indexed by AttrId, null when wrong kind
  std::vector<int32_t*> categorical_;
  ClassId* labels_ = nullptr;
};

/// Bounded-memory streaming reader over the binary table format
/// (table_file.h): records are surfaced in blocks of `block_records`
/// without ever loading a full column, so a table far larger than RAM
/// can be scanned exactly the way the paper's builders scan their
/// disk-resident training sets. Blocks are read straight into a
/// caller-provided ColumnBlock — one seek + one bulk read per column
/// per block, no per-record re-transposition. The same scanner supports
/// sequential passes (NextBlock/Reset) and random block access
/// (ReadBlock), and counts the real bytes it pulls from the file.
class TableScanner {
 public:
  /// Opens `path`; returns null on open/parse failure, on a non-positive
  /// block size, and on a file whose size does not match the record
  /// count and schema in its own header (truncated or padded files are
  /// rejected up front instead of failing mid-scan).
  ///
  /// A non-default slice restricts the scanner to the contiguous file
  /// records [first_record, first_record + slice_records), presented in
  /// LOCAL record ids 0..slice_records-1 (`slice_records < 0` means "to
  /// the end of the table"). Distributed training opens one slice per
  /// worker; the column offsets are rebased once here so every read path
  /// below is slice-oblivious. Returns null on an out-of-range slice.
  static std::unique_ptr<TableScanner> Open(const std::string& path,
                                            int64_t block_records = 65536,
                                            int64_t first_record = 0,
                                            int64_t slice_records = -1);

  const Schema& schema() const { return schema_; }
  int64_t num_records() const { return num_records_; }
  int64_t block_records() const { return block_records_; }
  /// Records delivered so far in the current pass.
  int64_t position() const { return position_; }
  /// Real bytes read from the file since Open (all passes).
  int64_t bytes_read() const { return bytes_read_; }

  /// Reads records [start, start + count) into `block`, configuring it
  /// for this scanner's schema if needed. Returns false on I/O failure
  /// or if any label is out of range; `block` is then empty. Does not
  /// move the sequential cursor.
  bool ReadBlock(int64_t start, int64_t count, ColumnBlock* block);

  /// Reads the next sequential block (at most block_records records)
  /// into `block`. Returns false when the pass is complete or on read
  /// failure; `block` is then empty. The scanner can be Reset() for
  /// another pass.
  bool NextBlock(ColumnBlock* block);

  /// Reads one whole column in a single bulk read (columns are stored
  /// contiguously precisely so discretization passes can do this).
  /// `a` must be a numeric attribute. Does not move the sequential
  /// cursor.
  bool ReadNumericColumn(AttrId a, std::vector<double>* out);

  /// Reads one whole categorical column in a single bulk read. `a` must
  /// be a categorical attribute. Does not move the sequential cursor.
  bool ReadCategoricalColumn(AttrId a, std::vector<int32_t>* out);

  /// Reads the whole label column; rejects out-of-range labels.
  bool ReadLabelColumn(std::vector<ClassId>* out);

  /// Rewinds to the first record and clears any sticky stream error/EOF
  /// state, so a pass that hit a read failure does not poison later
  /// passes.
  void Reset() {
    file_.clear();
    position_ = 0;
  }

 private:
  TableScanner() = default;

  Schema schema_;
  int64_t num_records_ = 0;
  int64_t block_records_ = 0;
  int64_t position_ = 0;
  int64_t bytes_read_ = 0;
  // Absolute file offset of each attribute column, plus the label column.
  std::vector<int64_t> column_offsets_;
  int64_t label_offset_ = 0;
  std::ifstream file_;
};

}  // namespace cmp

#endif  // CMP_IO_STREAM_H_
