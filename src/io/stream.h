#ifndef CMP_IO_STREAM_H_
#define CMP_IO_STREAM_H_

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/dataset.h"

namespace cmp {

/// Bounded-memory streaming reader over the binary table format
/// (table_file.h): records are surfaced in blocks of `block_records`
/// without ever loading a full column, so a table far larger than RAM
/// can be scanned exactly the way the paper's builders scan their
/// disk-resident training sets. The columnar layout is bridged by one
/// seek per column per block.
class TableScanner {
 public:
  /// Opens `path`; returns null on open/parse failure.
  static std::unique_ptr<TableScanner> Open(const std::string& path,
                                            int64_t block_records = 65536);

  const Schema& schema() const { return schema_; }
  int64_t num_records() const { return num_records_; }
  /// Records delivered so far in the current pass.
  int64_t position() const { return position_; }

  /// Reads the next block into `block` (a small Dataset with the same
  /// schema). Returns false when the pass is complete; `block` is then
  /// empty. The scanner can be Reset() for another pass.
  bool NextBlock(Dataset* block);

  /// Rewinds to the first record.
  void Reset() { position_ = 0; }

 private:
  TableScanner() = default;

  Schema schema_;
  int64_t num_records_ = 0;
  int64_t block_records_ = 0;
  int64_t position_ = 0;
  // Absolute file offset of each attribute column, plus the label column.
  std::vector<int64_t> column_offsets_;
  int64_t label_offset_ = 0;
  std::ifstream file_;
};

}  // namespace cmp

#endif  // CMP_IO_STREAM_H_
