#ifndef CMP_IO_ARFF_H_
#define CMP_IO_ARFF_H_

#include <string>

#include "common/dataset.h"

namespace cmp {

/// Minimal ARFF (Attribute-Relation File Format) reader, so the real
/// STATLOG/UCI files can be dropped in when available (the bundled
/// stand-ins are synthetics; see DESIGN.md).
///
/// Supported subset:
///   @relation NAME
///   @attribute NAME numeric|real|integer
///   @attribute NAME {v1,v2,...}          (nominal)
///   @data
///   comma-separated rows; '%' comments; blank lines ignored.
/// The LAST attribute is taken as the class label and must be nominal.
/// Nominal attribute values are mapped to dense integers in declaration
/// order. Unsupported features (strings, dates, sparse rows, missing
/// '?' values) cause a clean failure.
bool LoadArff(const std::string& path, Dataset* out);

/// Writes `ds` in the same ARFF subset (numeric + nominal + class).
bool SaveArff(const Dataset& ds, const std::string& relation,
              const std::string& path);

}  // namespace cmp

#endif  // CMP_IO_ARFF_H_
