#ifndef CMP_IO_CSV_H_
#define CMP_IO_CSV_H_

#include <string>

#include "common/dataset.h"

namespace cmp {

/// Writes `ds` as CSV with a header row (`attr1,...,attrN,class`).
/// Categorical values are written as integers, class labels by name.
bool SaveCsv(const Dataset& ds, const std::string& path);

/// Loads a CSV previously produced by SaveCsv (or hand-written with the
/// same conventions) against a known schema. Rows whose class name is not
/// in the schema cause a failure. Returns false on any parse error.
bool LoadCsv(const std::string& path, const Schema& schema, Dataset* out);

/// Loads a CSV with schema inference, for real-world files: the header
/// row names the attributes (last column is the class), and each data
/// column is classified by content — all-numeric columns become numeric
/// attributes; everything else becomes a categorical attribute whose
/// distinct strings are mapped to dense integers in first-appearance
/// order. Class names are taken verbatim from the last column. The file
/// is read twice (inference, then load). `max_categorical_card` bounds
/// the cardinality a non-numeric column may have before the load fails
/// (guards against free-text columns).
bool LoadCsvInferSchema(const std::string& path, Dataset* out,
                        int max_categorical_card = 256);

}  // namespace cmp

#endif  // CMP_IO_CSV_H_
