#include "io/csv.h"

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace cmp {

namespace {

// Splits one CSV line into trimmed fields.
std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  std::stringstream ss(line);
  std::string field;
  while (std::getline(ss, field, ',')) {
    size_t b = 0;
    size_t e = field.size();
    while (b < e && (field[b] == ' ' || field[b] == '\t')) ++b;
    while (e > b && (field[e - 1] == ' ' || field[e - 1] == '\t' ||
                     field[e - 1] == '\r')) {
      --e;
    }
    fields.push_back(field.substr(b, e - b));
  }
  return fields;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

bool SaveCsv(const Dataset& ds, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os.is_open()) return false;
  const Schema& schema = ds.schema();
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    os << schema.attr(a).name << ',';
  }
  os << "class\n";
  os.precision(17);
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      if (schema.is_numeric(a)) {
        os << ds.numeric(a, r);
      } else {
        os << ds.categorical(a, r);
      }
      os << ',';
    }
    os << schema.class_name(ds.label(r)) << '\n';
  }
  return os.good();
}

bool LoadCsvInferSchema(const std::string& path, Dataset* out,
                        int max_categorical_card) {
  // ---- Pass 1: header + per-column type inference.
  std::ifstream is(path);
  if (!is.is_open()) return false;
  std::string line;
  if (!std::getline(is, line)) return false;
  const std::vector<std::string> header = SplitLine(line);
  if (header.size() < 2) return false;
  const size_t num_cols = header.size();
  const size_t num_attrs = num_cols - 1;

  std::vector<bool> numeric(num_attrs, true);
  // Distinct values of non-numeric columns (and the class column),
  // indexed by first appearance.
  std::vector<std::map<std::string, int32_t>> values(num_cols);
  std::vector<std::vector<std::string>> value_order(num_cols);
  int64_t rows = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitLine(line);
    if (fields.size() != num_cols) return false;
    ++rows;
    for (size_t c = 0; c < num_cols; ++c) {
      double unused;
      const bool is_num = ParseDouble(fields[c], &unused);
      if (c < num_attrs && !is_num) numeric[c] = false;
      if (c == num_attrs || !is_num) {
        auto [it, inserted] =
            values[c].try_emplace(fields[c],
                                  static_cast<int32_t>(values[c].size()));
        if (inserted) value_order[c].push_back(fields[c]);
        if (c < num_attrs &&
            static_cast<int>(values[c].size()) > max_categorical_card) {
          return false;  // free-text column, refuse to guess
        }
      }
    }
  }
  if (rows == 0 || value_order[num_attrs].empty()) return false;

  std::vector<AttrInfo> attrs(num_attrs);
  for (size_t c = 0; c < num_attrs; ++c) {
    attrs[c].name = header[c];
    if (numeric[c]) {
      attrs[c].kind = AttrKind::kNumeric;
    } else {
      attrs[c].kind = AttrKind::kCategorical;
      attrs[c].cardinality = static_cast<int32_t>(values[c].size());
    }
  }
  Dataset ds(Schema(std::move(attrs), value_order[num_attrs]));
  ds.Reserve(rows);

  // ---- Pass 2: load.
  is.clear();
  is.seekg(0);
  std::getline(is, line);  // header
  std::vector<double> nvals;
  std::vector<int32_t> cvals;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitLine(line);
    nvals.clear();
    cvals.clear();
    for (size_t c = 0; c < num_attrs; ++c) {
      if (numeric[c]) {
        double v;
        if (!ParseDouble(fields[c], &v)) return false;
        nvals.push_back(v);
      } else {
        const auto it = values[c].find(fields[c]);
        if (it == values[c].end()) return false;
        cvals.push_back(it->second);
      }
    }
    const auto it = values[num_attrs].find(fields[num_attrs]);
    if (it == values[num_attrs].end()) return false;
    ds.Append(nvals, cvals, it->second);
  }
  *out = std::move(ds);
  return true;
}

bool LoadCsv(const std::string& path, const Schema& schema, Dataset* out) {
  std::ifstream is(path);
  if (!is.is_open()) return false;
  std::string line;
  if (!std::getline(is, line)) return false;  // header, ignored

  Dataset ds(schema);
  std::vector<double> nvals;
  std::vector<int32_t> cvals;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    nvals.clear();
    cvals.clear();
    std::stringstream ss(line);
    std::string field;
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      if (!std::getline(ss, field, ',')) return false;
      try {
        if (schema.is_numeric(a)) {
          nvals.push_back(std::stod(field));
        } else {
          cvals.push_back(static_cast<int32_t>(std::stol(field)));
        }
      } catch (...) {
        return false;
      }
    }
    if (!std::getline(ss, field, ',')) return false;
    ClassId label = kInvalidClass;
    for (ClassId c = 0; c < schema.num_classes(); ++c) {
      if (schema.class_name(c) == field) {
        label = c;
        break;
      }
    }
    if (label == kInvalidClass) return false;
    ds.Append(nvals, cvals, label);
  }
  *out = std::move(ds);
  return true;
}

}  // namespace cmp
