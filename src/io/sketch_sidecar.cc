#include "io/sketch_sidecar.h"

#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

namespace cmp {
namespace {

// The `.cmpb`/`.cmpw` header discipline: fixed magic, explicit version,
// an endianness probe a cross-endian reader cannot misread as valid,
// and bounds-checked varint decoding with size caps validated before
// any allocation.
constexpr char kMagic[4] = {'C', 'M', 'P', 'S'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kEndianProbe = 0x01020304u;
constexpr uint64_t kMaxSidecarBytes = 1ull << 32;

class Writer {
 public:
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }
  void PutVar(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }
  void PutVarSigned(int64_t v) {
    PutVar((static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63));
  }
  void PutRaw(const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

// Sticky-failure bounds-checked reader: after the first short read every
// Get* returns zero and ok() stays false.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : p_(data), n_(size) {}

  uint32_t GetU32() {
    uint32_t v = 0;
    Take(&v, sizeof(v));
    return v;
  }
  double GetF64() {
    double v = 0;
    Take(&v, sizeof(v));
    return v;
  }
  uint64_t GetVar() {
    uint64_t v = 0;
    int shift = 0;
    while (ok_) {
      if (off_ >= n_ || shift > 63) {
        ok_ = false;
        break;
      }
      const uint8_t b = p_[off_++];
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    return ok_ ? v : 0;
  }
  int64_t GetVarSigned() {
    const uint64_t u = GetVar();
    return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return n_ - off_; }
  bool AtEnd() const { return ok_ && off_ == n_; }
  void Fail() { ok_ = false; }

 private:
  bool Take(void* out, size_t size) {
    if (!ok_ || n_ - off_ < size) {
      ok_ = false;
      std::memset(out, 0, size);
      return false;
    }
    std::memcpy(out, p_ + off_, size);
    off_ += size;
    return true;
  }

  const uint8_t* p_;
  size_t n_;
  size_t off_ = 0;
  bool ok_ = true;
};

void WriteSketch(Writer* w, const QuantileSketch& sketch) {
  w->PutVar(static_cast<uint64_t>(sketch.capacity()));
  w->PutVar(static_cast<uint64_t>(sketch.count()));
  w->PutVar(static_cast<uint64_t>(sketch.rank_error_bound()));
  if (sketch.count() > 0) {
    w->PutF64(sketch.min_value());
    w->PutF64(sketch.max_value());
  }
  const std::vector<std::vector<double>>& levels = sketch.levels();
  // Trailing empty levels carry no information; trimming them keeps the
  // image canonical (byte-identical for equal sketch states).
  size_t num_levels = levels.size();
  while (num_levels > 0 && levels[num_levels - 1].empty()) --num_levels;
  w->PutVar(num_levels);
  for (size_t h = 0; h < num_levels; ++h) {
    w->PutVar(levels[h].size());
    for (double v : levels[h]) w->PutF64(v);
  }
}

bool ReadSketch(Reader* r, QuantileSketch* sketch) {
  const uint64_t capacity = r->GetVar();
  const uint64_t count = r->GetVar();
  const uint64_t error_bound = r->GetVar();
  if (!r->ok() || capacity < 8 || capacity > (1u << 24) ||
      count > (uint64_t{1} << 62) || error_bound > (uint64_t{1} << 62)) {
    r->Fail();
    return false;
  }
  double min_value = 0.0;
  double max_value = 0.0;
  if (count > 0) {
    min_value = r->GetF64();
    max_value = r->GetF64();
  }
  const uint64_t num_levels = r->GetVar();
  if (!r->ok() || num_levels > 63) {
    r->Fail();
    return false;
  }
  std::vector<std::vector<double>> levels(num_levels);
  for (uint64_t h = 0; h < num_levels; ++h) {
    const uint64_t size = r->GetVar();
    // Every stored value is 8 bytes, so a count beyond remaining()/8 is
    // corruption, not an allocation request.
    if (!r->ok() || size > r->remaining() / sizeof(double)) {
      r->Fail();
      return false;
    }
    levels[h].resize(size);
    for (uint64_t i = 0; i < size; ++i) levels[h][i] = r->GetF64();
  }
  if (!r->ok() ||
      !QuantileSketch::FromState(static_cast<int>(capacity),
                                 static_cast<int64_t>(count), min_value,
                                 max_value, static_cast<int64_t>(error_bound),
                                 std::move(levels), sketch)) {
    r->Fail();
    return false;
  }
  return true;
}

}  // namespace

void SketchSidecar::SetSchema(const Schema& schema) {
  num_classes = schema.num_classes();
  attr_is_numeric.assign(schema.num_attrs(), 0);
  attr_cardinality.assign(schema.num_attrs(), 0);
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (schema.is_numeric(a)) {
      attr_is_numeric[a] = 1;
    } else {
      attr_cardinality[a] = schema.attr(a).cardinality;
    }
  }
}

bool SketchSidecar::MatchesSchema(const Schema& schema) const {
  if (num_classes != schema.num_classes()) return false;
  if (static_cast<int>(attr_is_numeric.size()) != schema.num_attrs()) {
    return false;
  }
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    const bool numeric = attr_is_numeric[a] != 0;
    if (numeric != schema.is_numeric(a)) return false;
    if (!numeric && attr_cardinality[a] != schema.attr(a).cardinality) {
      return false;
    }
  }
  return true;
}

std::vector<uint8_t> SerializeSketchSidecar(const SketchSidecar& sidecar) {
  Writer w;
  w.PutRaw(kMagic, sizeof(kMagic));
  w.PutU32(kVersion);
  w.PutU32(kEndianProbe);
  w.PutVar(static_cast<uint64_t>(sidecar.sketch_capacity));
  w.PutVar(static_cast<uint64_t>(sidecar.intervals));
  w.PutVar(static_cast<uint64_t>(sidecar.records_seen));
  w.PutVar(static_cast<uint64_t>(sidecar.num_classes));
  w.PutVar(sidecar.attr_is_numeric.size());
  for (size_t a = 0; a < sidecar.attr_is_numeric.size(); ++a) {
    w.PutVar(sidecar.attr_is_numeric[a]);
    w.PutVarSigned(sidecar.attr_cardinality[a]);
  }
  w.PutVar(sidecar.leaves.size());
  for (const LeafSketchState& leaf : sidecar.leaves) {
    w.PutVarSigned(leaf.node);
    w.PutVar(leaf.class_counts.size());
    for (int64_t c : leaf.class_counts) w.PutVarSigned(c);
    w.PutVar(leaf.sketches.size());
    for (const QuantileSketch& s : leaf.sketches) WriteSketch(&w, s);
    w.PutVar(leaf.cat_counts.size());
    for (const std::vector<int64_t>& table : leaf.cat_counts) {
      w.PutVar(table.size());
      for (int64_t c : table) w.PutVarSigned(c);
    }
  }
  return w.Take();
}

bool ParseSketchSidecar(const std::vector<uint8_t>& bytes,
                        SketchSidecar* sidecar, std::string* error) {
  auto fail = [&](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (bytes.size() < sizeof(kMagic) + 2 * sizeof(uint32_t)) {
    return fail("sketch sidecar: truncated header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return fail("sketch sidecar: bad magic (not a .cmps file)");
  }
  Reader r(bytes.data() + sizeof(kMagic), bytes.size() - sizeof(kMagic));
  if (r.GetU32() != kVersion) {
    return fail("sketch sidecar: unsupported version");
  }
  if (r.GetU32() != kEndianProbe) {
    return fail("sketch sidecar: endianness mismatch");
  }
  SketchSidecar out;
  out.sketch_capacity = static_cast<int>(r.GetVar());
  out.intervals = static_cast<int>(r.GetVar());
  out.records_seen = static_cast<int64_t>(r.GetVar());
  out.num_classes = static_cast<int>(r.GetVar());
  if (!r.ok() || out.sketch_capacity < 8 || out.intervals < 1 ||
      out.records_seen < 0 || out.num_classes < 1 ||
      out.num_classes > (1 << 20)) {
    return fail("sketch sidecar: corrupt header fields");
  }
  const uint64_t num_attrs = r.GetVar();
  if (!r.ok() || num_attrs > r.remaining()) {
    return fail("sketch sidecar: corrupt attribute table");
  }
  out.attr_is_numeric.resize(num_attrs);
  out.attr_cardinality.resize(num_attrs);
  int num_numeric = 0;
  int num_categorical = 0;
  for (uint64_t a = 0; a < num_attrs; ++a) {
    const uint64_t numeric = r.GetVar();
    const int64_t cardinality = r.GetVarSigned();
    if (!r.ok() || numeric > 1 || cardinality < 0 ||
        cardinality > (int64_t{1} << 24) ||
        (numeric == 1) != (cardinality == 0)) {
      return fail("sketch sidecar: corrupt attribute entry");
    }
    out.attr_is_numeric[a] = static_cast<uint8_t>(numeric);
    out.attr_cardinality[a] = static_cast<int32_t>(cardinality);
    if (numeric != 0) {
      ++num_numeric;
    } else {
      ++num_categorical;
    }
  }
  const uint64_t num_leaves = r.GetVar();
  if (!r.ok() || num_leaves > r.remaining()) {
    return fail("sketch sidecar: corrupt leaf count");
  }
  out.leaves.resize(num_leaves);
  for (uint64_t l = 0; l < num_leaves; ++l) {
    LeafSketchState& leaf = out.leaves[l];
    leaf.node = static_cast<NodeId>(r.GetVarSigned());
    const uint64_t nc = r.GetVar();
    if (!r.ok() || leaf.node < 0 ||
        nc != static_cast<uint64_t>(out.num_classes)) {
      return fail("sketch sidecar: corrupt leaf header");
    }
    leaf.class_counts.resize(nc);
    for (uint64_t c = 0; c < nc; ++c) {
      leaf.class_counts[c] = r.GetVarSigned();
      if (leaf.class_counts[c] < 0) {
        return fail("sketch sidecar: negative class count");
      }
    }
    const uint64_t num_sketches = r.GetVar();
    if (!r.ok() ||
        num_sketches !=
            static_cast<uint64_t>(out.num_classes) * num_numeric) {
      return fail("sketch sidecar: sketch count does not match schema");
    }
    leaf.sketches.resize(num_sketches);
    for (uint64_t s = 0; s < num_sketches; ++s) {
      if (!ReadSketch(&r, &leaf.sketches[s])) {
        return fail("sketch sidecar: corrupt sketch state");
      }
    }
    const uint64_t num_tables = r.GetVar();
    if (!r.ok() || num_tables != static_cast<uint64_t>(num_categorical)) {
      return fail("sketch sidecar: table count does not match schema");
    }
    leaf.cat_counts.resize(num_tables);
    for (uint64_t t = 0; t < num_tables; ++t) {
      const uint64_t cells = r.GetVar();
      if (!r.ok() || cells > r.remaining()) {
        return fail("sketch sidecar: corrupt categorical table");
      }
      leaf.cat_counts[t].resize(cells);
      for (uint64_t i = 0; i < cells; ++i) {
        leaf.cat_counts[t][i] = r.GetVarSigned();
        if (leaf.cat_counts[t][i] < 0) {
          return fail("sketch sidecar: negative categorical count");
        }
      }
    }
  }
  if (!r.AtEnd()) return fail("sketch sidecar: trailing or truncated bytes");
  *sidecar = std::move(out);
  return true;
}

bool SaveSketchSidecar(const SketchSidecar& sidecar, const std::string& path,
                       std::string* error) {
  const std::vector<uint8_t> bytes = SerializeSketchSidecar(sidecar);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (error != nullptr) *error = "cannot open for write: " + path;
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "short write: " + path;
    return false;
  }
  return true;
}

bool LoadSketchSidecar(const std::string& path, SketchSidecar* sidecar,
                       std::string* error) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    if (error != nullptr) *error = "cannot open: " + path;
    return false;
  }
  const std::streamsize size = in.tellg();
  if (size < 0 || static_cast<uint64_t>(size) > kMaxSidecarBytes) {
    if (error != nullptr) *error = "sketch sidecar: implausible file size";
    return false;
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) {
    if (error != nullptr) *error = "short read: " + path;
    return false;
  }
  return ParseSketchSidecar(bytes, sidecar, error);
}

}  // namespace cmp
