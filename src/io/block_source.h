#ifndef CMP_IO_BLOCK_SOURCE_H_
#define CMP_IO_BLOCK_SOURCE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "io/stream.h"

namespace cmp {

class ThreadPool;

/// Non-owning columnar view of one contiguous block of records
/// [begin, begin + count). Column pointers stay valid until the source
/// yields the next block (or is Reset); record access is by LOCAL index
/// 0..count-1.
struct BlockView {
  int64_t begin = 0;
  int64_t count = 0;
  // Indexed by AttrId; only the matching-kind pointer is non-null.
  std::vector<const double*> numeric;
  std::vector<const int32_t*> categorical;
  const ClassId* labels = nullptr;
};

/// A resettable stream of columnar record blocks — the access pattern
/// every scan of an out-of-core tree builder makes. Implementations
/// either borrow blocks zero-copy from an in-memory Dataset or stage
/// them from a CMPT table file through reusable aligned buffers (with
/// async prefetch of block k+1 while block k is being consumed).
class BlockSource {
 public:
  virtual ~BlockSource() = default;

  virtual const Schema& schema() const = 0;
  virtual int64_t num_records() const = 0;

  /// Yields the next block of the current pass. Returns false at end of
  /// pass or on read failure (distinguish via failed()). The view's
  /// pointers are invalidated by the next call to NextBlock/Reset.
  virtual bool NextBlock(BlockView* view) = 0;

  /// Rewinds to the first record for another pass, clearing any error
  /// state left by a failed read.
  virtual void Reset() = 0;

  /// True when the last pass ended early because a read failed (as
  /// opposed to a clean end-of-pass).
  virtual bool failed() const { return false; }

  /// Real bytes pulled from backing storage so far (0 for in-memory
  /// sources).
  virtual int64_t bytes_read() const { return 0; }

  /// Reads one whole numeric column (ascending record order) — the
  /// column-contiguous access discretization passes use. Returns false
  /// on I/O failure.
  virtual bool ReadNumericColumn(AttrId a, std::vector<double>* out) = 0;

  /// Reads one whole categorical column (ascending record order) — used
  /// by the bin-code cache build. Returns false on I/O failure.
  virtual bool ReadCategoricalColumn(AttrId a, std::vector<int32_t>* out) = 0;

  /// Reads the whole label column in ascending record order.
  virtual bool ReadLabels(std::vector<ClassId>* out) = 0;

  /// Installs a pool for async prefetch; a null pool (or not calling
  /// this) keeps reads synchronous. No-op for in-memory sources.
  virtual void set_prefetch_pool(ThreadPool* pool) { (void)pool; }

  /// Bytes of staging buffers the source keeps resident (0 when
  /// zero-copy).
  virtual int64_t resident_bytes() const { return 0; }
};

/// Zero-copy block source over an in-memory Dataset: each view points
/// straight into the dataset's columns, sliced into `block_records`
/// pieces (one whole-table block when `block_records <= 0`).
class DatasetBlockSource : public BlockSource {
 public:
  explicit DatasetBlockSource(const Dataset& ds, int64_t block_records = 0);

  const Schema& schema() const override { return ds_.schema(); }
  int64_t num_records() const override { return ds_.num_records(); }
  bool NextBlock(BlockView* view) override;
  void Reset() override { position_ = 0; }
  bool ReadNumericColumn(AttrId a, std::vector<double>* out) override;
  bool ReadCategoricalColumn(AttrId a, std::vector<int32_t>* out) override;
  bool ReadLabels(std::vector<ClassId>* out) override;

 private:
  const Dataset& ds_;
  int64_t block_records_ = 0;
  int64_t position_ = 0;
};

/// Streams a CMPT table file in bounded memory: two reusable aligned
/// ColumnBlocks are cycled so that, when a prefetch pool is installed,
/// block k+1 is read by a pool task while the consumer accumulates
/// block k — the classic double-buffered scan pipeline. Without a pool
/// the same code path degrades to synchronous reads. Peak staging
/// memory is 2 × block_records × schema.RecordBytes() (plus padding),
/// independent of the table size.
class TableBlockSource : public BlockSource {
 public:
  /// Opens `path`; returns null on open/validation failure. A
  /// non-default slice restricts the source to the contiguous file
  /// records [first_record, first_record + slice_records), surfaced in
  /// LOCAL record ids 0..slice_records-1 — the view a distributed
  /// training worker owns (`slice_records < 0` means "to the end").
  static std::unique_ptr<TableBlockSource> Open(const std::string& path,
                                                int64_t block_records = 65536,
                                                int64_t first_record = 0,
                                                int64_t slice_records = -1);

  ~TableBlockSource() override;

  const Schema& schema() const override { return scanner_->schema(); }
  int64_t num_records() const override { return scanner_->num_records(); }
  bool NextBlock(BlockView* view) override;
  void Reset() override;
  bool failed() const override { return failed_; }
  int64_t bytes_read() const override;
  bool ReadNumericColumn(AttrId a, std::vector<double>* out) override;
  bool ReadCategoricalColumn(AttrId a, std::vector<int32_t>* out) override;
  bool ReadLabels(std::vector<ClassId>* out) override;
  void set_prefetch_pool(ThreadPool* pool) override;
  int64_t resident_bytes() const override;

 private:
  TableBlockSource() = default;

  // Issues an async (or, without a pool, synchronous) read of records
  // [start, ...) into slot `s`. Caller must hold no lock.
  void StartFetch(int s, int64_t start);
  // Blocks until slot `s`'s fetch completes; returns its success.
  bool AwaitFetch(int s);

  std::string path_;
  int64_t first_record_ = 0;   // slice origin in file record ids
  int64_t slice_records_ = -1;
  std::unique_ptr<TableScanner> scanner_;  // consumer-side column reads
  int64_t next_fetch_ = 0;   // first record of the next block to fetch
  int64_t delivered_ = 0;    // records handed out this pass
  int cur_ = 0;              // slot the consumer reads next
  bool failed_ = false;

  struct Slot {
    ColumnBlock block;
    std::unique_ptr<TableScanner> scanner;  // private stream per slot
    bool in_flight = false;
    bool ok = false;
  };
  Slot slots_[2];
  ThreadPool* pool_ = nullptr;  // borrowed; null => synchronous reads
  mutable std::mutex mu_;
  std::condition_variable fetch_done_;
  int64_t bytes_read_ = 0;  // guarded by mu_ (slot + side-column reads)
};

}  // namespace cmp

#endif  // CMP_IO_BLOCK_SOURCE_H_
