#include "io/wire.h"

#include <cstring>

#include "common/net.h"

namespace cmp {
namespace wire {

namespace {

void PutHeaderU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void PutHeaderU64(std::string* out, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

uint32_t GetHeaderU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t GetHeaderU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

bool FailHeader(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

std::string BuildFrameHeader(MsgType type, uint64_t payload_bytes) {
  std::string out;
  out.reserve(kFrameHeaderBytes);
  out.append(kMagic, sizeof(kMagic));
  PutHeaderU32(&out, kVersion);
  PutHeaderU32(&out, kEndianProbe);
  PutHeaderU32(&out, static_cast<uint32_t>(type));
  PutHeaderU64(&out, payload_bytes);
  return out;
}

bool ParseFrameHeader(const uint8_t* header, MsgType* type,
                      uint64_t* payload_bytes, std::string* error) {
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return FailHeader(error, "bad frame magic (not a CMP wire peer)");
  }
  const uint32_t version = GetHeaderU32(header + 4);
  if (version != kVersion) {
    return FailHeader(error, "unsupported wire version " +
                                 std::to_string(version) + " (expected " +
                                 std::to_string(kVersion) + ")");
  }
  if (GetHeaderU32(header + 8) != kEndianProbe) {
    return FailHeader(error,
                      "endianness mismatch between coordinator and worker");
  }
  const uint64_t length = GetHeaderU64(header + 16);
  if (length > kMaxFrameBytes) {
    return FailHeader(error, "oversized frame (" + std::to_string(length) +
                                 " bytes; limit " +
                                 std::to_string(kMaxFrameBytes) + ")");
  }
  *type = static_cast<MsgType>(GetHeaderU32(header + 12));
  *payload_bytes = length;
  return true;
}

bool SendFrame(int fd, MsgType type, const std::string& payload) {
  const std::string header = BuildFrameHeader(type, payload.size());
  return SendAll(fd, header) && SendAll(fd, payload);
}

bool RecvFrame(int fd, MsgType* type, std::string* payload,
               std::string* error) {
  uint8_t header[kFrameHeaderBytes];
  if (!RecvAll(fd, header, sizeof(header))) {
    return FailHeader(error, "peer closed the connection");
  }
  uint64_t length = 0;
  if (!ParseFrameHeader(header, type, &length, error)) return false;
  payload->resize(length);
  if (length > 0 && !RecvAll(fd, payload->data(), length)) {
    return FailHeader(error, "peer died mid-frame");
  }
  return true;
}

// ---------------------------------------------------------------------
// WireWriter / WireReader

void WireWriter::PutVar(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void WireWriter::PutVarSigned(int64_t v) {
  PutVar((static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63));  // zigzag
}

void WireWriter::PutString(const std::string& s) {
  PutVar(s.size());
  buf_.append(s);
}

void WireWriter::PutRaw(const void* data, size_t size) {
  buf_.append(static_cast<const char*>(data), size);
}

bool WireReader::Take(void* out, size_t size) {
  if (!ok_ || n_ - off_ < size) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, p_ + off_, size);
  off_ += size;
  return true;
}

uint8_t WireReader::GetU8() {
  uint8_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

uint32_t WireReader::GetU32() {
  uint32_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

uint64_t WireReader::GetU64() {
  uint64_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

double WireReader::GetF64() {
  double v = 0.0;
  Take(&v, sizeof(v));
  return v;
}

uint64_t WireReader::GetVar() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    uint8_t byte = 0;
    if (!Take(&byte, 1)) return 0;
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  ok_ = false;  // more than 10 continuation bytes: corrupt
  return 0;
}

int64_t WireReader::GetVarSigned() {
  const uint64_t z = GetVar();
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

bool WireReader::GetString(std::string* out) {
  const uint64_t size = GetVar();
  if (!ok_ || size > remaining()) {
    ok_ = false;
    return false;
  }
  out->assign(reinterpret_cast<const char*>(p_ + off_),
              static_cast<size_t>(size));
  off_ += static_cast<size_t>(size);
  return true;
}

// ---------------------------------------------------------------------
// Split / tree

void WriteSplit(WireWriter* w, const Split& split) {
  w->PutU8(static_cast<uint8_t>(split.kind));
  w->PutVarSigned(split.attr);
  w->PutF64(split.threshold);
  w->PutVarSigned(split.attr2);
  w->PutF64(split.a);
  w->PutF64(split.b);
  w->PutF64(split.c);
  w->PutVar(split.left_subset.size());
  if (!split.left_subset.empty()) {
    w->PutRaw(split.left_subset.data(), split.left_subset.size());
  }
}

bool ReadSplit(WireReader* r, Split* split) {
  const uint8_t kind = r->GetU8();
  if (kind > static_cast<uint8_t>(Split::Kind::kLinear)) {
    r->Fail();
    return false;
  }
  split->kind = static_cast<Split::Kind>(kind);
  split->attr = static_cast<AttrId>(r->GetVarSigned());
  split->threshold = r->GetF64();
  split->attr2 = static_cast<AttrId>(r->GetVarSigned());
  split->a = r->GetF64();
  split->b = r->GetF64();
  split->c = r->GetF64();
  const uint64_t subset = r->GetVar();
  if (!r->ok() || subset > r->remaining()) {
    r->Fail();
    return false;
  }
  split->left_subset.assign(static_cast<size_t>(subset), 0);
  for (size_t i = 0; i < subset; ++i) split->left_subset[i] = r->GetU8();
  return r->ok();
}

void WriteTree(WireWriter* w, const DecisionTree& tree) {
  w->PutVar(static_cast<uint64_t>(tree.num_nodes()));
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    const TreeNode& node = tree.node(id);
    // Routing descends while (!is_leaf && left != kInvalidNode); one
    // has-children bit reproduces that predicate exactly.
    const bool has_children = !node.is_leaf && node.left != kInvalidNode;
    w->PutU8(has_children ? 1 : 0);
    if (has_children) {
      WriteSplit(w, node.split);
      w->PutVar(static_cast<uint64_t>(node.left));
      w->PutVar(static_cast<uint64_t>(node.right));
    }
  }
}

bool ReadTree(WireReader* r, DecisionTree* tree) {
  const uint64_t n = r->GetVar();
  if (!r->ok() || n > r->remaining()) {  // every node is >= 1 byte
    r->Fail();
    return false;
  }
  for (uint64_t i = 0; i < n; ++i) {
    TreeNode node;
    const bool has_children = r->GetU8() != 0;
    if (has_children) {
      if (!ReadSplit(r, &node.split)) return false;
      node.is_leaf = false;
      node.left = static_cast<NodeId>(r->GetVar());
      node.right = static_cast<NodeId>(r->GetVar());
      if (!r->ok() || node.left >= static_cast<NodeId>(n) ||
          node.right >= static_cast<NodeId>(n)) {
        r->Fail();
        return false;
      }
    }
    tree->AddNode(std::move(node));
  }
  return r->ok();
}

// ---------------------------------------------------------------------
// Grids

void WriteGrids(WireWriter* w, const Schema& schema,
                const std::vector<IntervalGrid>& grids) {
  w->PutVar(static_cast<uint64_t>(schema.num_attrs()));
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (!schema.is_numeric(a)) continue;  // default grid, nothing to ship
    const IntervalGrid& g = grids[a];
    w->PutVar(g.boundaries().size());
    for (const double b : g.boundaries()) w->PutF64(b);
    w->PutF64(g.min_value());
    w->PutF64(g.max_value());
  }
}

bool ReadGrids(WireReader* r, const Schema& schema,
               std::vector<IntervalGrid>* grids) {
  const uint64_t na = r->GetVar();
  if (!r->ok() || na != static_cast<uint64_t>(schema.num_attrs())) {
    r->Fail();
    return false;
  }
  grids->assign(static_cast<size_t>(na), IntervalGrid());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (!schema.is_numeric(a)) continue;
    const uint64_t nb = r->GetVar();
    if (!r->ok() || nb > r->remaining() / sizeof(double)) {
      r->Fail();
      return false;
    }
    std::vector<double> boundaries(static_cast<size_t>(nb));
    for (double& b : boundaries) b = r->GetF64();
    const double min_value = r->GetF64();
    const double max_value = r->GetF64();
    if (!r->ok()) return false;
    (*grids)[a] =
        IntervalGrid::FromBoundaries(std::move(boundaries), min_value,
                                     max_value);
  }
  return r->ok();
}

// ---------------------------------------------------------------------
// Bundles

void WriteBundleShape(WireWriter* w, const HistBundle& bundle) {
  w->PutU8(bundle.bivariate() ? 1 : 0);
  w->PutVarSigned(bundle.x_attr());
  w->PutVarSigned(bundle.x_lo());
  w->PutVarSigned(bundle.x_hi());
}

bool ReadBundleShape(WireReader* r, const Schema& schema,
                     const std::vector<IntervalGrid>& grids,
                     HistBundle* bundle) {
  const bool bivariate = r->GetU8() != 0;
  const AttrId x_attr = static_cast<AttrId>(r->GetVarSigned());
  const int x_lo = static_cast<int>(r->GetVarSigned());
  const int x_hi = static_cast<int>(r->GetVarSigned());
  if (!r->ok()) return false;
  if (!bivariate) {
    *bundle = HistBundle::MakeUnivariate(schema, grids);
    return true;
  }
  if (x_attr < 0 || x_attr >= schema.num_attrs() ||
      !schema.is_numeric(x_attr) || x_lo < 0 ||
      x_hi > grids[x_attr].num_intervals() || x_lo >= x_hi) {
    r->Fail();
    return false;
  }
  *bundle = HistBundle::MakeBivariate(schema, grids, x_attr, x_lo, x_hi);
  return true;
}

namespace {

int64_t BundleCells(const HistBundle& bundle) {
  int64_t cells = 0;
  for (const Histogram1D& h : bundle.hists()) {
    cells += static_cast<int64_t>(h.num_intervals()) * h.num_classes();
  }
  for (const HistogramMatrix& m : bundle.matrices()) {
    cells += static_cast<int64_t>(m.x_intervals()) * m.y_intervals() *
             m.num_classes();
  }
  return cells;
}

}  // namespace

void WriteBundleCounts(WireWriter* w, const HistBundle& bundle) {
  w->PutVar(static_cast<uint64_t>(BundleCells(bundle)));
  for (const Histogram1D& h : bundle.hists()) {
    const int64_t* cells = h.data();
    const int64_t n = static_cast<int64_t>(h.num_intervals()) * h.num_classes();
    for (int64_t i = 0; i < n; ++i) w->PutVar(static_cast<uint64_t>(cells[i]));
  }
  for (const HistogramMatrix& m : bundle.matrices()) {
    const int64_t* cells = m.data();
    const int64_t n = static_cast<int64_t>(m.x_intervals()) *
                      m.y_intervals() * m.num_classes();
    for (int64_t i = 0; i < n; ++i) w->PutVar(static_cast<uint64_t>(cells[i]));
  }
}

bool ReadBundleCountsInto(WireReader* r, HistBundle* dst) {
  const uint64_t total = r->GetVar();
  if (!r->ok() || total != static_cast<uint64_t>(BundleCells(*dst))) {
    r->Fail();
    return false;
  }
  for (Histogram1D& h : dst->hists()) {
    int64_t* cells = h.data();
    const int64_t n = static_cast<int64_t>(h.num_intervals()) * h.num_classes();
    for (int64_t i = 0; i < n; ++i) {
      cells[i] += static_cast<int64_t>(r->GetVar());
    }
  }
  for (HistogramMatrix& m : dst->matrices()) {
    int64_t* cells = m.data();
    const int64_t n = static_cast<int64_t>(m.x_intervals()) *
                      m.y_intervals() * m.num_classes();
    for (int64_t i = 0; i < n; ++i) {
      cells[i] += static_cast<int64_t>(r->GetVar());
    }
  }
  return r->ok();
}

// ---------------------------------------------------------------------
// Pending splits

namespace {

constexpr int kMaxPendingDepth = 64;

void WritePendingSkeletonAt(WireWriter* w, const Pending& p) {
  w->PutVarSigned(p.attr);
  w->PutVar(p.alive.size());
  for (const int a : p.alive) w->PutVarSigned(a);
  w->PutVar(p.segments.size());
  for (const Segment& seg : p.segments) {
    w->PutVarSigned(seg.range_lo);
    w->PutVarSigned(seg.range_hi);
    w->PutU8(static_cast<uint8_t>(seg.plan));
    w->PutU8(seg.bundle_fresh ? 1 : 0);
    switch (seg.plan) {
      case PlanKind::kGrow:
        // A derived (non-fresh) bundle is never scanned into; the
        // mirror leaves it empty, exactly like ClonePendingEmpty.
        if (seg.bundle_fresh) WriteBundleShape(w, seg.bundle);
        break;
      case PlanKind::kPending:
        WritePendingSkeletonAt(w, *seg.sub);
        break;
      case PlanKind::kExact:
        WriteSplit(w, seg.exact_split);
        WriteBundleShape(w, seg.exact_left);
        WriteBundleShape(w, seg.exact_right);
        break;
    }
  }
}

bool ReadPendingSkeletonAt(WireReader* r, const Schema& schema,
                           const std::vector<IntervalGrid>& grids,
                           int num_classes, int depth,
                           std::unique_ptr<Pending>* out) {
  if (depth > kMaxPendingDepth) {
    r->Fail();
    return false;
  }
  auto p = std::make_unique<Pending>();
  p->attr = static_cast<AttrId>(r->GetVarSigned());
  const uint64_t alive = r->GetVar();
  if (!r->ok() || alive > r->remaining()) {
    r->Fail();
    return false;
  }
  p->alive.resize(static_cast<size_t>(alive));
  for (int& a : p->alive) a = static_cast<int>(r->GetVarSigned());
  const uint64_t nsegs = r->GetVar();
  if (!r->ok() || nsegs != alive + 1 || nsegs > r->remaining()) {
    r->Fail();
    return false;
  }
  p->segments.resize(static_cast<size_t>(nsegs));
  for (Segment& seg : p->segments) {
    seg.counts.assign(static_cast<size_t>(num_classes), 0);
    seg.range_lo = static_cast<int>(r->GetVarSigned());
    seg.range_hi = static_cast<int>(r->GetVarSigned());
    const uint8_t plan = r->GetU8();
    if (!r->ok() || plan > static_cast<uint8_t>(PlanKind::kExact)) {
      r->Fail();
      return false;
    }
    seg.plan = static_cast<PlanKind>(plan);
    seg.bundle_fresh = r->GetU8() != 0;
    switch (seg.plan) {
      case PlanKind::kGrow:
        if (seg.bundle_fresh &&
            !ReadBundleShape(r, schema, grids, &seg.bundle)) {
          return false;
        }
        break;
      case PlanKind::kPending:
        if (!ReadPendingSkeletonAt(r, schema, grids, num_classes, depth + 1,
                                   &seg.sub)) {
          return false;
        }
        break;
      case PlanKind::kExact:
        if (!ReadSplit(r, &seg.exact_split) ||
            !ReadBundleShape(r, schema, grids, &seg.exact_left) ||
            !ReadBundleShape(r, schema, grids, &seg.exact_right)) {
          return false;
        }
        seg.exact_left_counts.assign(static_cast<size_t>(num_classes), 0);
        seg.exact_right_counts.assign(static_cast<size_t>(num_classes), 0);
        break;
    }
  }
  *out = std::move(p);
  return r->ok();
}

void WritePendingStateAt(WireWriter* w, const Pending& p) {
  w->PutVar(p.buffer.size());
  for (const BufferedRecord& rec : p.buffer) {
    w->PutVar(static_cast<uint64_t>(rec.rid));
    w->PutF64(rec.value);
    w->PutVar(static_cast<uint64_t>(rec.label));
  }
  for (const Segment& seg : p.segments) {
    for (const int64_t c : seg.counts) w->PutVar(static_cast<uint64_t>(c));
    switch (seg.plan) {
      case PlanKind::kGrow:
        if (seg.bundle_fresh) WriteBundleCounts(w, seg.bundle);
        break;
      case PlanKind::kPending:
        WritePendingStateAt(w, *seg.sub);
        break;
      case PlanKind::kExact:
        for (const int64_t c : seg.exact_left_counts) {
          w->PutVar(static_cast<uint64_t>(c));
        }
        for (const int64_t c : seg.exact_right_counts) {
          w->PutVar(static_cast<uint64_t>(c));
        }
        WriteBundleCounts(w, seg.exact_left);
        WriteBundleCounts(w, seg.exact_right);
        break;
    }
  }
}

bool ReadPendingStateIntoAt(WireReader* r, Pending* dst, RecordId rid_base,
                            int depth) {
  if (depth > kMaxPendingDepth) {
    r->Fail();
    return false;
  }
  const uint64_t buffered = r->GetVar();
  if (!r->ok() || buffered > r->remaining()) {
    r->Fail();
    return false;
  }
  dst->buffer.reserve(dst->buffer.size() + static_cast<size_t>(buffered));
  for (uint64_t i = 0; i < buffered; ++i) {
    BufferedRecord rec;
    rec.rid = static_cast<RecordId>(r->GetVar()) + rid_base;
    rec.value = r->GetF64();
    rec.label = static_cast<ClassId>(r->GetVar());
    if (!r->ok()) return false;
    dst->buffer.push_back(rec);
  }
  for (Segment& seg : dst->segments) {
    for (int64_t& c : seg.counts) c += static_cast<int64_t>(r->GetVar());
    switch (seg.plan) {
      case PlanKind::kGrow:
        if (seg.bundle_fresh && !ReadBundleCountsInto(r, &seg.bundle)) {
          return false;
        }
        break;
      case PlanKind::kPending:
        if (!ReadPendingStateIntoAt(r, seg.sub.get(), rid_base, depth + 1)) {
          return false;
        }
        break;
      case PlanKind::kExact:
        for (int64_t& c : seg.exact_left_counts) {
          c += static_cast<int64_t>(r->GetVar());
        }
        for (int64_t& c : seg.exact_right_counts) {
          c += static_cast<int64_t>(r->GetVar());
        }
        if (!ReadBundleCountsInto(r, &seg.exact_left) ||
            !ReadBundleCountsInto(r, &seg.exact_right)) {
          return false;
        }
        break;
    }
  }
  return r->ok();
}

}  // namespace

void WritePendingSkeleton(WireWriter* w, const Pending& p) {
  WritePendingSkeletonAt(w, p);
}

bool ReadPendingSkeleton(WireReader* r, const Schema& schema,
                         const std::vector<IntervalGrid>& grids,
                         int num_classes, std::unique_ptr<Pending>* out) {
  return ReadPendingSkeletonAt(r, schema, grids, num_classes, 0, out);
}

void WritePendingState(WireWriter* w, const Pending& p) {
  WritePendingStateAt(w, p);
}

bool ReadPendingStateInto(WireReader* r, Pending* dst, RecordId rid_base) {
  return ReadPendingStateIntoAt(r, dst, rid_base, 0);
}

}  // namespace wire
}  // namespace cmp
