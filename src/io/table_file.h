#ifndef CMP_IO_TABLE_FILE_H_
#define CMP_IO_TABLE_FILE_H_

#include <string>

#include "common/dataset.h"

namespace cmp {

/// Binary on-disk format for training sets.
///
/// Layout (little-endian):
///   magic "CMPT" | version u32 | num_attrs u32 | num_classes u32 |
///   per attr: name (u32 len + bytes) | kind u8 | cardinality i32 |
///   per class: name (u32 len + bytes) |
///   num_records i64 |
///   per attr column (schema order): raw doubles or raw int32s |
///   labels: raw int32s
///
/// The contiguous column is the format's streaming unit: an out-of-core
/// scanner reads records [start, start+count) with one seek + one bulk
/// read per column (io/stream.h), and a discretization pass pulls one
/// whole attribute without touching the others — both depend on this
/// layout, so any format change must preserve column contiguity.
/// `LoadTableFile` reads the whole table. These are the files the
/// `out_of_core` example, `cmptool train --stream`, and the block
/// sources in io/block_source.h operate on.

/// Writes `ds` to `path`. Returns false (and leaves a partial file) on I/O
/// failure.
bool SaveTableFile(const Dataset& ds, const std::string& path);

/// Reads a table previously written by SaveTableFile. Returns false on
/// open/parse failure; `out` is unspecified in that case.
bool LoadTableFile(const std::string& path, Dataset* out);

/// Reads only the schema and record count from a table file header.
bool ReadTableHeader(const std::string& path, Schema* schema,
                     int64_t* num_records);

}  // namespace cmp

#endif  // CMP_IO_TABLE_FILE_H_
