#include "io/block_source.h"

#include <algorithm>
#include <utility>

#include "common/thread_pool.h"

namespace cmp {

// ---------------------------------------------------------------------
// DatasetBlockSource

DatasetBlockSource::DatasetBlockSource(const Dataset& ds,
                                       int64_t block_records)
    : ds_(ds),
      block_records_(block_records > 0 ? block_records : ds.num_records()) {
  if (block_records_ <= 0) block_records_ = 1;  // empty dataset guard
}

bool DatasetBlockSource::NextBlock(BlockView* view) {
  const Schema& schema = ds_.schema();
  view->numeric.assign(schema.num_attrs(), nullptr);
  view->categorical.assign(schema.num_attrs(), nullptr);
  view->labels = nullptr;
  view->begin = position_;
  view->count = 0;
  if (position_ >= ds_.num_records()) return false;
  const int64_t count =
      std::min(block_records_, ds_.num_records() - position_);
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (schema.is_numeric(a)) {
      view->numeric[a] = ds_.numeric_column(a).data() + position_;
    } else {
      view->categorical[a] = ds_.categorical_column(a).data() + position_;
    }
  }
  view->labels = ds_.labels().data() + position_;
  view->count = count;
  position_ += count;
  return true;
}

bool DatasetBlockSource::ReadNumericColumn(AttrId a,
                                           std::vector<double>* out) {
  *out = ds_.numeric_column(a);
  return true;
}

bool DatasetBlockSource::ReadCategoricalColumn(AttrId a,
                                               std::vector<int32_t>* out) {
  *out = ds_.categorical_column(a);
  return true;
}

bool DatasetBlockSource::ReadLabels(std::vector<ClassId>* out) {
  *out = ds_.labels();
  return true;
}

// ---------------------------------------------------------------------
// TableBlockSource

std::unique_ptr<TableBlockSource> TableBlockSource::Open(
    const std::string& path, int64_t block_records, int64_t first_record,
    int64_t slice_records) {
  auto scanner =
      TableScanner::Open(path, block_records, first_record, slice_records);
  if (scanner == nullptr) return nullptr;
  std::unique_ptr<TableBlockSource> src(new TableBlockSource());
  src->path_ = path;
  src->first_record_ = first_record;
  src->slice_records_ = slice_records;
  src->scanner_ = std::move(scanner);
  for (Slot& slot : src->slots_) {
    slot.scanner =
        TableScanner::Open(path, block_records, first_record, slice_records);
    if (slot.scanner == nullptr) return nullptr;
    slot.block.Configure(slot.scanner->schema(), block_records);
  }
  return src;
}

TableBlockSource::~TableBlockSource() {
  // A prefetch may still be in flight; it touches this object, so wait
  // for it before the members are destroyed.
  AwaitFetch(0);
  AwaitFetch(1);
}

void TableBlockSource::set_prefetch_pool(ThreadPool* pool) {
  AwaitFetch(0);
  AwaitFetch(1);
  pool_ = pool;
}

int64_t TableBlockSource::resident_bytes() const {
  return slots_[0].block.allocated_bytes() + slots_[1].block.allocated_bytes();
}

int64_t TableBlockSource::bytes_read() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_read_;
}

void TableBlockSource::StartFetch(int s, int64_t start) {
  Slot& slot = slots_[s];
  const int64_t n = scanner_->num_records();
  const int64_t count = std::min(scanner_->block_records(), n - start);
  if (start >= n || count <= 0) return;  // nothing left to fetch
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot.in_flight = true;
  }
  auto read = [this, &slot, start, count] {
    const int64_t before = slot.scanner->bytes_read();
    const bool ok = slot.scanner->ReadBlock(start, count, &slot.block);
    std::lock_guard<std::mutex> lock(mu_);
    bytes_read_ += slot.scanner->bytes_read() - before;
    slot.ok = ok;
    slot.in_flight = false;
    fetch_done_.notify_all();
  };
  if (pool_ != nullptr && pool_->num_threads() > 0) {
    pool_->Submit(read);
  } else {
    read();
  }
}

bool TableBlockSource::AwaitFetch(int s) {
  std::unique_lock<std::mutex> lock(mu_);
  fetch_done_.wait(lock, [&] { return !slots_[s].in_flight; });
  return slots_[s].ok;
}

bool TableBlockSource::NextBlock(BlockView* view) {
  const Schema& schema = scanner_->schema();
  view->numeric.assign(schema.num_attrs(), nullptr);
  view->categorical.assign(schema.num_attrs(), nullptr);
  view->labels = nullptr;
  view->begin = delivered_;
  view->count = 0;
  if (delivered_ >= num_records()) return false;

  // First call of a pass: nothing staged yet, fetch synchronously-ish.
  if (next_fetch_ == delivered_) {
    StartFetch(cur_, next_fetch_);
    next_fetch_ += std::min(scanner_->block_records(),
                            num_records() - next_fetch_);
  }
  if (!AwaitFetch(cur_)) {
    failed_ = true;
    return false;
  }
  Slot& slot = slots_[cur_];
  // Kick the other slot at block k+1 before the consumer starts on
  // block k — with a pool this overlaps the read with accumulation.
  if (next_fetch_ < num_records()) {
    const int other = 1 - cur_;
    StartFetch(other, next_fetch_);
    next_fetch_ += std::min(scanner_->block_records(),
                            num_records() - next_fetch_);
  }

  view->begin = slot.block.begin();
  view->count = slot.block.count();
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (schema.is_numeric(a)) {
      view->numeric[a] = slot.block.numeric_col(a);
    } else {
      view->categorical[a] = slot.block.categorical_col(a);
    }
  }
  view->labels = slot.block.labels();
  delivered_ += view->count;
  cur_ = 1 - cur_;
  return true;
}

void TableBlockSource::Reset() {
  // Let any in-flight prefetch land before rewinding.
  AwaitFetch(0);
  AwaitFetch(1);
  delivered_ = 0;
  next_fetch_ = 0;
  cur_ = 0;
  failed_ = false;
  scanner_->Reset();
  slots_[0].scanner->Reset();
  slots_[1].scanner->Reset();
}

bool TableBlockSource::ReadNumericColumn(AttrId a,
                                         std::vector<double>* out) {
  // A private scanner per call: column loads may fan out across a pool
  // during discretization, and each needs its own stream position.
  auto scanner = TableScanner::Open(path_, scanner_->block_records(),
                                    first_record_, slice_records_);
  if (scanner == nullptr) return false;
  if (!scanner->ReadNumericColumn(a, out)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  bytes_read_ += scanner->bytes_read();
  return true;
}

bool TableBlockSource::ReadCategoricalColumn(AttrId a,
                                             std::vector<int32_t>* out) {
  auto scanner = TableScanner::Open(path_, scanner_->block_records(),
                                    first_record_, slice_records_);
  if (scanner == nullptr) return false;
  if (!scanner->ReadCategoricalColumn(a, out)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  bytes_read_ += scanner->bytes_read();
  return true;
}

bool TableBlockSource::ReadLabels(std::vector<ClassId>* out) {
  auto scanner = TableScanner::Open(path_, scanner_->block_records(),
                                    first_record_, slice_records_);
  if (scanner == nullptr) return false;
  if (!scanner->ReadLabelColumn(out)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  bytes_read_ += scanner->bytes_read();
  return true;
}

}  // namespace cmp
