#ifndef CMP_IO_WIRE_H_
#define CMP_IO_WIRE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cmp/bundle.h"
#include "cmp/frontier.h"
#include "common/schema.h"
#include "hist/quantiles.h"
#include "tree/split.h"
#include "tree/tree.h"

namespace cmp {
namespace wire {

/// Versioned, endian-stable wire protocol for distributed CMP training
/// (src/dist/): length-prefixed frames over a stream socket, carrying
/// the per-pass structures the coordinator and its workers exchange —
/// the frontier skeleton out, HistBundle / Pending / collect state back.
///
/// The framing reuses the `.cmpb` header discipline of io/model_blob.cc:
/// a fixed magic, an explicit format version, an endianness probe word
/// that a cross-endian peer cannot misread as valid, and size caps
/// validated before any allocation. Every frame:
///
///   offset  size  field
///        0     4  magic "CMPW"
///        4     4  u32 protocol version (kVersion)
///        8     4  u32 endianness probe (kEndianProbe, 0x01020304)
///       12     4  u32 message type
///       16     8  u64 payload length (<= kMaxFrameBytes)
///       24     -  payload
///
/// Payloads are packed by WireWriter / WireReader: fixed-width ints and
/// raw-bit doubles in host order (safe because the probe rejects
/// cross-endian peers), LEB128 varints for counts and zigzag varints for
/// signed fields. Every reader is bounds-checked and fails sticky — a
/// truncated or corrupt payload yields ok() == false, never an
/// out-of-bounds read or a runaway allocation.

constexpr char kMagic[4] = {'C', 'M', 'P', 'W'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kEndianProbe = 0x01020304u;
constexpr size_t kFrameHeaderBytes = 24;
/// Upper bound on one frame's payload; a length prefix beyond it is
/// treated as corruption, not as an allocation request.
constexpr uint64_t kMaxFrameBytes = 1ull << 30;

/// Coordinator/worker message types. The handshake pins the protocol
/// version; each subsequent frame re-states it so a desynchronized or
/// foreign peer fails on the very next frame.
enum class MsgType : uint32_t {
  kHello = 1,       // C->W: rank, table path, slice, options, grids
  kHelloAck = 2,    // W->C: slice record count (sanity echo)
  kPassBegin = 3,   // C->W: tree + frontier skeleton for one pass
  kPassResult = 4,  // W->C: merged local histograms / pending / collect
  kShutdown = 5,    // C->W: orderly exit
};

/// Serializes a frame header (exposed for the robustness tests).
std::string BuildFrameHeader(MsgType type, uint64_t payload_bytes);

/// Validates a kFrameHeaderBytes-long header. False with *error on bad
/// magic, version, endianness, or an oversized payload length.
bool ParseFrameHeader(const uint8_t* header, MsgType* type,
                      uint64_t* payload_bytes, std::string* error);

/// Writes one frame to a connected stream socket (EINTR-safe, no
/// SIGPIPE). False when the peer is gone.
bool SendFrame(int fd, MsgType type, const std::string& payload);

/// Blocks until one full frame arrives. False with *error on EOF or a
/// short read (a dead peer mid-frame), or on any header validation
/// failure. Never allocates more than the validated payload length.
bool RecvFrame(int fd, MsgType* type, std::string* payload,
               std::string* error);

/// Append-only payload builder.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  /// Raw bit pattern — doubles round-trip bit-exactly.
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }
  /// LEB128 varint.
  void PutVar(uint64_t v);
  /// Zigzag varint for signed fields (attr ids, interval ranges).
  void PutVarSigned(int64_t v);
  void PutString(const std::string& s);
  void PutRaw(const void* data, size_t size);

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked payload reader with a sticky failure flag: after the
/// first short or invalid read every Get* returns zero and ok() stays
/// false, so callers can decode a whole structure and check once.
class WireReader {
 public:
  WireReader(const void* data, size_t size)
      : p_(static_cast<const uint8_t*>(data)), n_(size) {}
  explicit WireReader(const std::string& payload)
      : WireReader(payload.data(), payload.size()) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  double GetF64();
  uint64_t GetVar();
  int64_t GetVarSigned();
  bool GetString(std::string* out);

  bool ok() const { return ok_; }
  /// Bytes not yet consumed — the generic sanity cap for element counts
  /// (every wire element is at least one byte, so a count larger than
  /// remaining() is corruption regardless of element type).
  size_t remaining() const { return n_ - off_; }
  /// True when the payload was consumed exactly (trailing garbage is a
  /// framing bug worth failing on).
  bool AtEnd() const { return ok_ && off_ == n_; }
  void Fail() { ok_ = false; }

 private:
  bool Take(void* out, size_t size);

  const uint8_t* p_;
  size_t n_;
  size_t off_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------
// Structure serializers. Writers never fail; every reader returns false
// (leaving the output unspecified) on truncated or inconsistent input.

void WriteSplit(WireWriter* w, const Split& split);
bool ReadSplit(WireReader* r, Split* split);

/// The tree in routing form: per node only what ScanRange descends on
/// (has-children flag, split, child ids). Leaf classes, class counts
/// and depths stay coordinator-side.
void WriteTree(WireWriter* w, const DecisionTree& tree);
/// Appends the nodes onto `tree`, which must be freshly constructed
/// with the right schema.
bool ReadTree(WireReader* r, DecisionTree* tree);

/// Interval grids for every numeric attribute of `schema` (boundaries +
/// domain bounds); categorical attributes read back as default grids,
/// exactly as BuildGrids leaves them.
void WriteGrids(WireWriter* w, const Schema& schema,
                const std::vector<IntervalGrid>& grids);
bool ReadGrids(WireReader* r, const Schema& schema,
               std::vector<IntervalGrid>* grids);

/// A bundle's shape 4-tuple (variant, X attribute, X range). Together
/// with the schema and grids this reconstructs an empty bundle with
/// exactly CloneEmptyShape()'s dimensions.
void WriteBundleShape(WireWriter* w, const HistBundle& bundle);
bool ReadBundleShape(WireReader* r, const Schema& schema,
                     const std::vector<IntervalGrid>& grids,
                     HistBundle* bundle);

/// Every histogram cell of the bundle, in canonical (attribute-major,
/// row-major) order, prefixed by the total cell count as a shape check.
void WriteBundleCounts(WireWriter* w, const HistBundle& bundle);
/// Adds the written cells into `dst`, which must have the writer's
/// shape — the wire edition of MergeSameShape.
bool ReadBundleCountsInto(WireReader* r, HistBundle* dst);

/// A pending split's structure without any accumulated state: attr,
/// alive intervals, segment ranges/plans, bundle shapes, exact splits.
/// Reading reconstructs what ClonePendingEmpty would build from the
/// original — the empty mirror a worker scans into.
void WritePendingSkeleton(WireWriter* w, const Pending& p);
bool ReadPendingSkeleton(WireReader* r, const Schema& schema,
                         const std::vector<IntervalGrid>& grids,
                         int num_classes, std::unique_ptr<Pending>* out);

/// The state a scan accumulated into a pending: buffers, segment
/// counts, fresh bundle cells — walked in the skeleton's canonical
/// order.
void WritePendingState(WireWriter* w, const Pending& p);
/// Merges the written state into `dst` (structurally identical to the
/// writer's pending); buffered record ids are rebased by +rid_base —
/// the wire edition of MergePendingInto plus the worker-to-global id
/// translation.
bool ReadPendingStateInto(WireReader* r, Pending* dst, RecordId rid_base);

}  // namespace wire
}  // namespace cmp

#endif  // CMP_IO_WIRE_H_
