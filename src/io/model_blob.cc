#include "io/model_blob.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>

namespace cmp {

namespace {

constexpr char kMagic[4] = {'C', 'M', 'P', 'B'};
constexpr uint32_t kEndianProbe = 0x01020304u;
// header: magic + 6 u32 fields + u64 total size
constexpr uint64_t kHeaderBytes = 4 + 6 * 4 + 8;
constexpr uint64_t kSectionEntryBytes = 4 + 4 + 8 + 8 + 8;
// Caps keep a hostile section table from driving huge allocations
// before any payload validation runs.
constexpr uint32_t kMaxSections = 1u << 20;
constexpr uint32_t kMaxTrees = 1u << 20;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

bool Fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

ModelBlob::~ModelBlob() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

bool ModelBlob::Parse(std::string* error) {
  if (size_ < kHeaderBytes) return Fail(error, "blob shorter than header");
  const uint8_t* p = data_;
  if (std::memcmp(p, kMagic, 4) != 0) return Fail(error, "bad magic");
  p += 4;
  const uint32_t version = GetU32(p);
  p += 4;
  if (version != kModelBlobVersion) {
    return Fail(error, "unsupported blob version " + std::to_string(version));
  }
  const uint32_t endian = GetU32(p);
  p += 4;
  if (endian != kEndianProbe) {
    return Fail(error, "endianness mismatch (blob written on a machine of "
                       "different byte order)");
  }
  const uint32_t num_sections = GetU32(p);
  p += 4;
  num_trees_ = GetU32(p);
  p += 4;
  num_classes_ = GetU32(p);
  p += 4;
  p += 4;  // reserved
  const uint64_t total = GetU64(p);
  if (total != size_) return Fail(error, "blob size does not match header");
  if (num_sections > kMaxSections) return Fail(error, "section count absurd");
  if (num_trees_ == 0 || num_trees_ > kMaxTrees) {
    return Fail(error, "tree count out of range");
  }
  const uint64_t table_end =
      kHeaderBytes + uint64_t{num_sections} * kSectionEntryBytes;
  if (table_end > size_) return Fail(error, "section table truncated");

  sections_.resize(num_sections);
  const uint8_t* e = data_ + kHeaderBytes;
  for (BlobSection& s : sections_) {
    s.tree = GetU32(e);
    s.kind = GetU32(e + 4);
    s.offset = GetU64(e + 8);
    s.count = GetU64(e + 16);
    s.bytes = GetU64(e + 24);
    e += kSectionEntryBytes;
    if (s.offset % 8 != 0) return Fail(error, "misaligned section");
    if (s.offset < table_end || s.offset > size_ ||
        s.bytes > size_ - s.offset) {
      return Fail(error, "section out of bounds");
    }
    if (s.tree != kGlobalSection && s.tree >= num_trees_) {
      return Fail(error, "section for nonexistent tree");
    }
  }
  return true;
}

std::shared_ptr<const ModelBlob> ModelBlob::FromBytes(
    std::vector<uint8_t> bytes, std::string* error) {
  auto blob = std::shared_ptr<ModelBlob>(new ModelBlob());
  blob->owned_ = std::move(bytes);
  blob->data_ = blob->owned_.data();
  blob->size_ = blob->owned_.size();
  blob->mapped_ = false;
  if (!blob->Parse(error)) return nullptr;
  return blob;
}

std::shared_ptr<const ModelBlob> ModelBlob::Load(const std::string& path,
                                                 std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error != nullptr) *error = "cannot open " + path;
    return nullptr;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode) || st.st_size < 0) {
    ::close(fd);
    if (error != nullptr) *error = "cannot stat " + path;
    return nullptr;
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);

  // mmap first: the kernel pages the node arrays in on first touch, so a
  // cold daemon start maps a multi-GB model in microseconds.
  if (size > 0) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);
      auto blob = std::shared_ptr<ModelBlob>(new ModelBlob());
      blob->data_ = static_cast<const uint8_t*>(map);
      blob->size_ = size;
      blob->mapped_ = true;
      if (!blob->Parse(error)) return nullptr;  // dtor munmaps
      return blob;
    }
  }
  ::close(fd);

  // Fallback: one bulk read (e.g. filesystems without mmap support).
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    if (error != nullptr) *error = "cannot open " + path;
    return nullptr;
  }
  std::vector<uint8_t> bytes(size);
  is.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (!is.good() && size > 0) {
    if (error != nullptr) *error = "short read on " + path;
    return nullptr;
  }
  return FromBytes(std::move(bytes), error);
}

const BlobSection* ModelBlob::Find(uint32_t tree, SectionKind kind) const {
  for (const BlobSection& s : sections_) {
    if (s.tree == tree && s.kind == static_cast<uint32_t>(kind)) return &s;
  }
  return nullptr;
}

void BlobWriter::Add(uint32_t tree, SectionKind kind, const void* data,
                     uint64_t count, uint64_t elem_bytes) {
  Pending p;
  p.section.tree = tree;
  p.section.kind = static_cast<uint32_t>(kind);
  p.section.count = count;
  p.section.bytes = count * elem_bytes;
  p.payload.resize(p.section.bytes);
  if (p.section.bytes > 0) {
    std::memcpy(p.payload.data(), data, p.section.bytes);
  }
  pending_.push_back(std::move(p));
}

namespace {

// The descent-hot node arrays get cache-line alignment (they are the
// ones the blocked layout tiles into 64-byte superblock slices); every
// other section keeps the container's 8-byte minimum.
uint64_t SectionAlignment(uint32_t kind) {
  switch (static_cast<SectionKind>(kind)) {
    case SectionKind::kNodeAttr:
    case SectionKind::kThreshold:
    case SectionKind::kChildren:
      return 64;
    default:
      return 8;
  }
}

}  // namespace

std::vector<uint8_t> BlobWriter::Finish() {
  const uint64_t table_end =
      kHeaderBytes + pending_.size() * kSectionEntryBytes;
  uint64_t offset = table_end;
  for (Pending& p : pending_) {
    const uint64_t align = SectionAlignment(p.section.kind);
    offset = (offset + align - 1) & ~(align - 1);
    p.section.offset = offset;
    offset += p.section.bytes;
  }
  const uint64_t total = (offset + 7) & ~uint64_t{7};

  std::vector<uint8_t> out;
  out.reserve(total);
  for (const char c : kMagic) out.push_back(static_cast<uint8_t>(c));
  PutU32(&out, kModelBlobVersion);
  PutU32(&out, kEndianProbe);
  PutU32(&out, static_cast<uint32_t>(pending_.size()));
  PutU32(&out, num_trees_);
  PutU32(&out, num_classes_);
  PutU32(&out, 0);  // reserved
  PutU64(&out, total);
  for (const Pending& p : pending_) {
    PutU32(&out, p.section.tree);
    PutU32(&out, p.section.kind);
    PutU64(&out, p.section.offset);
    PutU64(&out, p.section.count);
    PutU64(&out, p.section.bytes);
  }
  for (const Pending& p : pending_) {
    out.resize(p.section.offset, 0);  // alignment padding
    out.insert(out.end(), p.payload.begin(), p.payload.end());
  }
  out.resize(total, 0);
  return out;
}

}  // namespace cmp
