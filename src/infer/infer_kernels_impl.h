#ifndef CMP_INFER_INFER_KERNELS_IMPL_H_
#define CMP_INFER_INFER_KERNELS_IMPL_H_

#include <bit>
#include <cstdint>

#include "infer/compiled_tree.h"

namespace cmp::infer_impl {

// Scalar building blocks shared by every kernel tier. These mirror
// CompiledTree::Step / Descend / DescendRange over the raw views — the
// vector tiers fall back to them for sub-gang blocks, categorical
// lanes, and the end-of-range drain, which is what keeps every tier's
// predictions byte-identical to the member-function walker.

/// One descent step of lane `id` for row `r`; leaves hold still.
inline int32_t Step(const TreeNodesView& t, const RowColumnsView& rows,
                    int32_t id, int64_t r) {
  const int16_t a = t.attr[id];
  double x, cut;
  if (a >= 0) {
    x = rows.numeric[a][r];
    cut = static_cast<double>(t.threshold[id]);
  } else if (a == CompiledTree::kLeaf) {
    return id;
  } else if (a == CompiledTree::kWide) {
    const CompiledTree::WideSplit& s =
        t.wide_splits[std::bit_cast<int32_t>(t.threshold[id])];
    x = rows.numeric[s.attr][r];
    cut = s.threshold;
  } else if (a == CompiledTree::kLin) {
    const CompiledTree::LinSplit& s =
        t.lin_splits[std::bit_cast<int32_t>(t.threshold[id])];
    x = s.a * rows.numeric[s.x][r] + s.b * rows.numeric[s.y][r];
    cut = s.c;
  } else {
    const CompiledTree::CatSplit& s =
        t.cat_splits[std::bit_cast<int32_t>(t.threshold[id])];
    const int32_t v = rows.categorical[s.attr][r];
    const bool in_left = v >= 0 && v < s.card && t.cat_bits[s.offset + v];
    return t.children[2 * id + static_cast<int32_t>(!in_left)];
  }
  return t.children[2 * id + static_cast<int32_t>(!(x <= cut))];
}

/// Full descent of row `r` starting at node `id` (vector tiers hand
/// over their in-flight lanes here when the range runs dry).
inline int32_t DescendFrom(const TreeNodesView& t, const RowColumnsView& rows,
                           int32_t id, int64_t r) {
  while (t.attr[id] != CompiledTree::kLeaf) id = Step(t, rows, id, r);
  return t.children[2 * id + 1];
}

inline int32_t Descend(const TreeNodesView& t, const RowColumnsView& rows,
                       int64_t r) {
  return DescendFrom(t, rows, 0, r);
}

/// Scalar tier: the PR 1 gang descent (kLanes interleaved rows, refill
/// on leaf, scalar drain) over the raw views.
inline void DescendBlockScalar(const TreeNodesView& t,
                               const RowColumnsView& rows, int64_t begin,
                               int64_t end, int32_t* out) {
  constexpr int kLanes = CompiledTree::kLanes;
  if (end - begin < kLanes) {
    for (int64_t i = begin; i < end; ++i) out[i - begin] = Descend(t, rows, i);
    return;
  }
  int32_t ids[kLanes];
  int64_t rws[kLanes];
  int64_t next = begin;
  for (int l = 0; l < kLanes; ++l) {
    ids[l] = 0;
    rws[l] = next++;
  }
  bool done_lane[kLanes] = {};
  int retired = 0;  // lanes that found the range dry on refill
  while (retired == 0) {
    for (int l = 0; l < kLanes; ++l) ids[l] = Step(t, rows, ids[l], rws[l]);
    for (int l = 0; l < kLanes; ++l) {
      if (t.attr[ids[l]] != CompiledTree::kLeaf) continue;
      out[rws[l] - begin] = t.children[2 * ids[l] + 1];
      if (next < end) {
        ids[l] = 0;
        rws[l] = next++;
      } else {
        done_lane[l] = true;
        ++retired;
      }
    }
  }
  for (int l = 0; l < kLanes; ++l) {
    if (done_lane[l]) continue;
    out[rws[l] - begin] = DescendFrom(t, rows, ids[l], rws[l]);
  }
}

}  // namespace cmp::infer_impl

#endif  // CMP_INFER_INFER_KERNELS_IMPL_H_
