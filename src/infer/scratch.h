#ifndef CMP_INFER_SCRATCH_H_
#define CMP_INFER_SCRATCH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/types.h"
#include "infer/compiled_tree.h"

namespace cmp {

/// Reusable per-block scoring scratch. The predictors used to allocate
/// these vectors inside every block closure — on the serving path that
/// meant several heap round trips per flushed micro-batch — so each
/// predictor now owns a ScratchPool and a block leases a warm set
/// instead. The vectors only ever grow, so a steady-state block does no
/// allocation at all.
struct PredictScratch {
  std::vector<int32_t> leaves;   // leaf index per row (x trees, ensembles)
  std::vector<ClassId> order;    // top-k sort order
  std::vector<double> acc;       // ensemble vote accumulator
  std::vector<double> numeric_block;   // SoA transpose of a row-major block
  std::vector<int32_t> cat_block;
  std::vector<const double*> numeric_cols;
  std::vector<const int32_t*> cat_cols;
};

/// Mutex-guarded free list of scratch sets. ThreadPool::ParallelFor
/// gives workers no stable identity, so "per-thread" buffers are
/// expressed as leases bracketing each block: Acquire at block start,
/// Release at block end. The pool holds at most one scratch per
/// concurrently running block and never shrinks.
class ScratchPool {
 public:
  std::unique_ptr<PredictScratch> Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        std::unique_ptr<PredictScratch> s = std::move(free_.back());
        free_.pop_back();
        return s;
      }
    }
    return std::make_unique<PredictScratch>();
  }

  void Release(std::unique_ptr<PredictScratch> s) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(s));
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<PredictScratch>> free_;
};

/// RAII lease of one scratch set from a pool.
class ScratchLease {
 public:
  explicit ScratchLease(ScratchPool* pool)
      : pool_(pool), scratch_(pool->Acquire()) {}
  ~ScratchLease() { pool_->Release(std::move(scratch_)); }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  PredictScratch& operator*() const { return *scratch_; }
  PredictScratch* operator->() const { return scratch_.get(); }

 private:
  ScratchPool* pool_;
  std::unique_ptr<PredictScratch> scratch_;
};

/// Transposes rows [begin, end) of a row-major dense block (layout as in
/// CompiledTree::LeafIndexOfRow: one slot per schema attribute,
/// `categorical` nullable) into `s`'s SoA columns and returns a view
/// over them. The view's columns are indexed by `row - begin`, so pass
/// [0, end - begin) to LeafIndicesOfColumns. One transpose serves every
/// tree of an ensemble — that, plus the column loads it enables, is why
/// the batch paths transpose instead of walking row-major.
inline RowColumnsView TransposeBlock(const Schema& schema,
                                     const double* numeric,
                                     const int32_t* categorical,
                                     int64_t begin, int64_t end,
                                     PredictScratch* s) {
  const int32_t na = schema.num_attrs();
  const int64_t n = end - begin;
  s->numeric_block.resize(static_cast<size_t>(na) * n);
  s->numeric_cols.assign(na, nullptr);
  const bool has_cat = categorical != nullptr;
  if (has_cat) {
    s->cat_block.resize(static_cast<size_t>(na) * n);
    s->cat_cols.assign(na, nullptr);
  }
  for (int32_t a = 0; a < na; ++a) {
    if (schema.is_numeric(a)) {
      double* col = s->numeric_block.data() + static_cast<size_t>(a) * n;
      const double* src = numeric + begin * na + a;
      for (int64_t i = 0; i < n; ++i) col[i] = src[i * na];
      s->numeric_cols[a] = col;
    } else if (has_cat) {
      int32_t* col = s->cat_block.data() + static_cast<size_t>(a) * n;
      const int32_t* src = categorical + begin * na + a;
      for (int64_t i = 0; i < n; ++i) col[i] = src[i * na];
      s->cat_cols[a] = col;
    }
  }
  return RowColumnsView{s->numeric_cols.data(),
                        has_cat ? s->cat_cols.data() : nullptr};
}

}  // namespace cmp

#endif  // CMP_INFER_SCRATCH_H_
