#include "infer/ensemble.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace cmp {

EnsemblePredictor::EnsemblePredictor(std::vector<CompiledTree> trees,
                                     VoteKind vote)
    : trees_(std::move(trees)), vote_(vote) {
  assert(!trees_.empty());
  for (const CompiledTree& t : trees_) {
    assert(!t.empty());
    assert(t.num_classes() == trees_.front().num_classes());
    (void)t;
  }
}

EnsemblePredictor EnsemblePredictor::Compile(
    const std::vector<DecisionTree>& trees, VoteKind vote) {
  std::vector<CompiledTree> compiled;
  compiled.reserve(trees.size());
  for (const DecisionTree& t : trees) {
    compiled.push_back(CompiledTree::Compile(t));
  }
  return EnsemblePredictor(std::move(compiled), vote);
}

// The shared scoring loop: `leaf_of(tree, i)` answers which leaf row i
// lands in for one member tree; everything else (vote combination,
// probabilities, top-k, abstention) is row-source-agnostic, so the
// Dataset and raw-row entry points stay combiner-identical by
// construction.
template <typename LeafOf>
BatchResult EnsemblePredictor::Run(int64_t n, const PredictOptions& opts,
                                   ThreadPool* pool,
                                   const LeafOf& leaf_of) const {
  const int32_t nc = num_classes();
  const int k = std::clamp(opts.top_k, 1, nc);
  const bool abstain = opts.abstain_threshold > 0.0;

  BatchResult out;
  out.labels.assign(static_cast<size_t>(n), kInvalidClass);
  if (opts.want_probs) {
    out.probs.assign(static_cast<size_t>(n) * static_cast<size_t>(nc), 0.0f);
  }
  if (k > 1) {
    out.topk.assign(static_cast<size_t>(n) * static_cast<size_t>(k),
                    kInvalidClass);
  }

  auto score_block = [&](int64_t begin, int64_t end) {
    std::vector<double> acc(static_cast<size_t>(nc));
    std::vector<ClassId> order(static_cast<size_t>(nc));
    for (int64_t i = begin; i < end; ++i) {
      std::fill(acc.begin(), acc.end(), 0.0);
      for (const CompiledTree& t : trees_) {
        const int32_t leaf = leaf_of(t, i);
        if (vote_ == VoteKind::kMajority) {
          acc[t.leaf_class(leaf)] += 1.0;
        } else {
          const float* p = t.leaf_probs(leaf);
          for (int32_t c = 0; c < nc; ++c) acc[c] += p[c];
        }
      }
      const double inv = 1.0 / static_cast<double>(trees_.size());
      ClassId best = 0;
      for (ClassId c = 1; c < nc; ++c) {
        if (acc[c] > acc[best]) best = c;
      }
      if (opts.want_probs) {
        for (int32_t c = 0; c < nc; ++c) {
          out.probs[static_cast<size_t>(i) * nc + c] =
              static_cast<float>(acc[c] * inv);
        }
      }
      if (k > 1) {
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(), [&](ClassId a, ClassId b) {
          return acc[a] != acc[b] ? acc[a] > acc[b] : a < b;
        });
        std::copy(order.begin(), order.begin() + k,
                  out.topk.begin() + static_cast<size_t>(i) * k);
      }
      out.labels[i] =
          abstain && acc[best] * inv < opts.abstain_threshold ? kInvalidClass
                                                              : best;
    }
  };

  const int64_t block = opts.block_size > 0 ? opts.block_size : 2048;
  std::shared_ptr<ThreadPool> keep_alive;
  ThreadPool* p = pool;
  if (p == nullptr) {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (owned_pool_ == nullptr || owned_pool_threads_ != opts.num_threads) {
      owned_pool_ = std::make_shared<ThreadPool>(opts.num_threads);
      owned_pool_threads_ = opts.num_threads;
    }
    keep_alive = owned_pool_;
    p = keep_alive.get();
  }
  p->ParallelFor(n, block, score_block);
  if (abstain) {
    out.num_abstained = std::count(out.labels.begin(), out.labels.end(),
                                   kInvalidClass);
  }
  return out;
}

BatchResult EnsemblePredictor::Predict(const Dataset& ds,
                                       const PredictOptions& opts,
                                       ThreadPool* pool) const {
  return Run(ds.num_records(), opts, pool,
             [&ds](const CompiledTree& t, int64_t i) {
               return t.LeafIndexOf(ds, i);
             });
}

BatchResult EnsemblePredictor::PredictRaw(const double* numeric,
                                          const int32_t* categorical,
                                          int64_t n,
                                          const PredictOptions& opts,
                                          ThreadPool* pool) const {
  const int32_t na = schema().num_attrs();
  return Run(n, opts, pool,
             [numeric, categorical, na](const CompiledTree& t, int64_t i) {
               return t.LeafIndexOfRow(
                   numeric + i * na,
                   categorical == nullptr ? nullptr : categorical + i * na);
             });
}

}  // namespace cmp
