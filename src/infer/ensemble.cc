#include "infer/ensemble.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace cmp {

EnsemblePredictor::EnsemblePredictor(std::vector<CompiledTree> trees,
                                     VoteKind vote)
    : trees_(std::move(trees)), vote_(vote) {
  assert(!trees_.empty());
  for (const CompiledTree& t : trees_) {
    assert(!t.empty());
    assert(t.num_classes() == trees_.front().num_classes());
    (void)t;
  }
}

EnsemblePredictor EnsemblePredictor::Compile(
    const std::vector<DecisionTree>& trees, VoteKind vote) {
  std::vector<CompiledTree> compiled;
  compiled.reserve(trees.size());
  for (const DecisionTree& t : trees) {
    compiled.push_back(CompiledTree::Compile(t));
  }
  return EnsemblePredictor(std::move(compiled), vote);
}

// The shared scoring loop. `columns_for(begin, end, scratch)` produces
// the column-major view of one row block (plus the row offset its
// columns are indexed from); everything downstream — tree-interleaved
// descent, vote combination, probabilities, top-k, abstention — is
// row-source-agnostic, so the Dataset, raw-row, and columnar entry
// points stay combiner-identical by construction.
//
// Scoring is tree-interleaved: every member tree batch-descends the
// whole row block (through the vector kernel tiers) before any row's
// votes are combined, so the block's feature columns are pulled through
// cache once per tree-batch rather than once per row x tree, and each
// descent gets the full lane parallelism of the active tier. The leaf
// indices land in one T x block scratch matrix the combine loop then
// reads column-wise.
template <typename ColumnsFor>
BatchResult EnsemblePredictor::Run(int64_t n, const PredictOptions& opts,
                                   ThreadPool* pool,
                                   const ColumnsFor& columns_for) const {
  const int32_t nc = num_classes();
  const int k = std::clamp(opts.top_k, 1, nc);
  const bool abstain = opts.abstain_threshold > 0.0;

  BatchResult out;
  out.labels.assign(static_cast<size_t>(n), kInvalidClass);
  if (opts.want_probs) {
    out.probs.assign(static_cast<size_t>(n) * static_cast<size_t>(nc), 0.0f);
  }
  if (k > 1) {
    out.topk.assign(static_cast<size_t>(n) * static_cast<size_t>(k),
                    kInvalidClass);
  }

  const int num_trees = static_cast<int>(trees_.size());
  auto score_block = [&](int64_t begin, int64_t end) {
    ScratchLease lease(&scratch_);
    PredictScratch& s = *lease;
    const int64_t bn = end - begin;
    const auto block = columns_for(begin, end, &s);
    s.leaves.resize(static_cast<size_t>(num_trees) * bn);
    for (int t = 0; t < num_trees; ++t) {
      trees_[t].LeafIndicesOfColumns(block.view, begin - block.base,
                                     end - block.base,
                                     s.leaves.data() + static_cast<size_t>(t) * bn);
    }
    s.acc.resize(static_cast<size_t>(nc));
    std::vector<double>& acc = s.acc;
    std::vector<ClassId>& order = s.order;
    if (k > 1) order.resize(static_cast<size_t>(nc));
    for (int64_t i = begin; i < end; ++i) {
      std::fill(acc.begin(), acc.end(), 0.0);
      for (int t = 0; t < num_trees; ++t) {
        const int32_t leaf = s.leaves[static_cast<size_t>(t) * bn + (i - begin)];
        const CompiledTree& tree = trees_[t];
        if (vote_ == VoteKind::kMajority) {
          acc[tree.leaf_class(leaf)] += 1.0;
        } else {
          const float* p = tree.leaf_probs(leaf);
          for (int32_t c = 0; c < nc; ++c) acc[c] += p[c];
        }
      }
      const double inv = 1.0 / static_cast<double>(trees_.size());
      ClassId best = 0;
      for (ClassId c = 1; c < nc; ++c) {
        if (acc[c] > acc[best]) best = c;
      }
      if (opts.want_probs) {
        for (int32_t c = 0; c < nc; ++c) {
          out.probs[static_cast<size_t>(i) * nc + c] =
              static_cast<float>(acc[c] * inv);
        }
      }
      if (k > 1) {
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(), [&](ClassId a, ClassId b) {
          return acc[a] != acc[b] ? acc[a] > acc[b] : a < b;
        });
        std::copy(order.begin(), order.begin() + k,
                  out.topk.begin() + static_cast<size_t>(i) * k);
      }
      out.labels[i] =
          abstain && acc[best] * inv < opts.abstain_threshold ? kInvalidClass
                                                              : best;
    }
  };

  const int64_t block = opts.block_size > 0 ? opts.block_size : 2048;
  std::shared_ptr<ThreadPool> keep_alive;
  ThreadPool* p = pool;
  if (p == nullptr) {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (owned_pool_ == nullptr || owned_pool_threads_ != opts.num_threads) {
      owned_pool_ = std::make_shared<ThreadPool>(opts.num_threads);
      owned_pool_threads_ = opts.num_threads;
    }
    keep_alive = owned_pool_;
    p = keep_alive.get();
  }
  p->ParallelFor(n, block, score_block);
  if (abstain) {
    out.num_abstained = std::count(out.labels.begin(), out.labels.end(),
                                   kInvalidClass);
  }
  return out;
}

namespace {
/// One row block's column view; the columns are indexed by `row - base`.
struct BlockColumns {
  RowColumnsView view;
  int64_t base = 0;
};
}  // namespace

BatchResult EnsemblePredictor::Predict(const Dataset& ds,
                                       const PredictOptions& opts,
                                       ThreadPool* pool) const {
  // The dataset is already columnar: one pointer array for the whole
  // call, every block shares it at base 0 (absolute record ids).
  const Schema& schema = this->schema();
  const int32_t na = schema.num_attrs();
  std::vector<const double*> num(na, nullptr);
  std::vector<const int32_t*> cat(na, nullptr);
  bool any_cat = false;
  for (int32_t a = 0; a < na; ++a) {
    if (schema.is_numeric(a)) {
      num[a] = ds.numeric_column(a).data();
    } else {
      cat[a] = ds.categorical_column(a).data();
      any_cat = true;
    }
  }
  const RowColumnsView view{num.data(), any_cat ? cat.data() : nullptr};
  return Run(ds.num_records(), opts, pool,
             [&view](int64_t, int64_t, PredictScratch*) {
               return BlockColumns{view, 0};
             });
}

BatchResult EnsemblePredictor::PredictRaw(const double* numeric,
                                          const int32_t* categorical,
                                          int64_t n,
                                          const PredictOptions& opts,
                                          ThreadPool* pool) const {
  // One row-major -> SoA transpose per block, shared by all member
  // trees — the old path re-walked the row-major block once per tree.
  const Schema* schema = &this->schema();
  return Run(n, opts, pool,
             [schema, numeric, categorical](int64_t begin, int64_t end,
                                            PredictScratch* s) {
               return BlockColumns{TransposeBlock(*schema, numeric,
                                                  categorical, begin, end, s),
                                   begin};
             });
}

BatchResult EnsemblePredictor::PredictColumns(
    const double* const* numeric_cols, const int32_t* const* categorical_cols,
    int64_t n, const PredictOptions& opts, ThreadPool* pool) const {
  const RowColumnsView view{numeric_cols, categorical_cols};
  return Run(n, opts, pool, [view](int64_t, int64_t, PredictScratch*) {
    return BlockColumns{view, 0};
  });
}

}  // namespace cmp
