#include "infer/infer_kernels.h"

#include "infer/infer_kernels_impl.h"

namespace cmp {

namespace {
constexpr InferKernelOps kScalarOps = {infer_impl::DescendBlockScalar};
}  // namespace

// Same fallback chain as HistKernelOpsFor: a tier that was not compiled
// into this binary (OrNull returned null) silently degrades to the next
// one down, so callers can ask for the detected ISA unconditionally.
const InferKernelOps& InferKernelOpsFor(KernelIsa isa) {
  if (isa == KernelIsa::kAvx2) {
    if (const InferKernelOps* ops = Avx2InferKernelOpsOrNull()) return *ops;
    isa = KernelIsa::kSse2;
  }
  if (isa == KernelIsa::kSse2) {
    if (const InferKernelOps* ops = Sse2InferKernelOpsOrNull()) return *ops;
  }
  return kScalarOps;
}

const InferKernelOps& ActiveInferKernelOps() {
  return InferKernelOpsFor(ActiveKernelIsa());
}

}  // namespace cmp
