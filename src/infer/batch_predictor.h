#ifndef CMP_INFER_BATCH_PREDICTOR_H_
#define CMP_INFER_BATCH_PREDICTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/dataset.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "infer/compiled_tree.h"
#include "infer/scratch.h"

namespace cmp {

/// Knobs for batch scoring.
struct PredictOptions {
  /// Worker threads; 1 scores on the calling thread, 0 means
  /// std::thread::hardware_concurrency.
  int num_threads = 1;
  /// Rows per work unit handed to the thread pool.
  int64_t block_size = 2048;
  /// Fill BatchResult::probs with per-row class probabilities.
  bool want_probs = false;
  /// When > 1, fill BatchResult::topk with the `top_k` most probable
  /// classes per row, most probable first (ties broken by lower class id).
  int top_k = 1;
  /// Abstain (predict kInvalidClass) when the probability of the
  /// predicted class is below this. 0 never abstains.
  double abstain_threshold = 0.0;
};

/// Output of a batch scoring run over n rows.
struct BatchResult {
  /// Predicted class per row; kInvalidClass where the predictor abstained.
  std::vector<ClassId> labels;
  /// n x num_classes row-major probabilities (empty unless want_probs).
  std::vector<float> probs;
  /// n x top_k class ids (empty unless top_k > 1), ordered by descending
  /// probability (ties broken by lower class id). Abstention blanks
  /// labels[i] but not these.
  std::vector<ClassId> topk;
  /// Rows on which the predictor abstained.
  int64_t num_abstained = 0;
};

/// Scores datasets (or raw dense rows) against one CompiledTree in row
/// blocks, optionally fanned out across a ThreadPool. The predictor
/// borrows the tree; the tree must outlive it.
///
/// The scoring pool is created once, at construction — not per call —
/// so repeated Predict calls reuse the same workers. Injecting `pool`
/// instead shares threads with other work (training, other predictors)
/// without oversubscribing the machine; the pool must outlive the
/// predictor.
class BatchPredictor {
 public:
  explicit BatchPredictor(const CompiledTree* tree, PredictOptions opts = {},
                          ThreadPool* pool = nullptr);

  const PredictOptions& options() const { return opts_; }
  const CompiledTree& tree() const { return *tree_; }

  /// Scores every record of `ds` (whose schema must match the tree's)
  /// on the predictor's pool (owned or injected at construction).
  BatchResult Predict(const Dataset& ds) const;

  /// Same, but on a caller-owned pool (its thread count wins) for this
  /// call only.
  BatchResult Predict(const Dataset& ds, ThreadPool* pool) const;

  /// Scores `n` raw dense rows. Both arrays are row-major, one slot per
  /// schema attribute: numeric[i * num_attrs + a] for numeric attribute
  /// `a` of row i, likewise `categorical`; only the slot matching each
  /// attribute's kind is read. `categorical` may be null for all-numeric
  /// schemas.
  BatchResult PredictRaw(const double* numeric, const int32_t* categorical,
                         int64_t n) const;

  /// Scores `n` rows already in column-major form (one pointer per
  /// schema attribute, see RowColumnsView) — the zero-transpose fast
  /// path the serving batcher feeds after its single row-major -> SoA
  /// conversion per flushed batch.
  BatchResult PredictColumns(const double* const* numeric_cols,
                             const int32_t* const* categorical_cols,
                             int64_t n) const;

 private:
  template <typename LeafBlockFn>
  BatchResult Run(int64_t n, ThreadPool* pool,
                  const LeafBlockFn& fill_leaves) const;

  const CompiledTree* tree_;
  PredictOptions opts_;
  ThreadPool* pool_;  // borrowed if injected, else owned_.get()
  std::unique_ptr<ThreadPool> owned_;
  mutable ScratchPool scratch_;  // per-block scoring buffers, reused
};

}  // namespace cmp

#endif  // CMP_INFER_BATCH_PREDICTOR_H_
