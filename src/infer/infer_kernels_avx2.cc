// AVX2 tier of the batch traversal kernels (see infer_kernels.h).
// Compiled with -mavx2 and only that — never -mfma, so the linear-split
// a*x + b*y stays mul/mul/add and cannot be contracted, keeping lane
// arithmetic bit-identical to the scalar walker. The table is only ever
// selected after the runtime CPUID/XCR0 check in common/cpu_features.cc
// passes.
//
// Strategy: eight rows form one gang that descends a tree level per
// iteration. A scalar lane-service pass retires leaves (writing the
// output and refilling the lane from the range), steps categorical
// lanes, and loads each lane's feature value; the level itself is then
// vector code over the bind-time FusedNode records — one 16-byte load
// per lane fetches its whole {threshold, left, right} record, an unpack
// tree transposes the eight records to SoA, the ordered `<=` compare
// (quiet NaN compares false, routing right like scalar) builds a lane
// mask, and a blend picks each lane's child without a dependent second
// load. The next level's attribute words are gathered right after the
// blend, a full service pass before they are read, so the service
// classification never waits on a load.
//
// Four structural choices carry the speed:
//  - FusedNode records + the parallel attribute array: one line for the
//    split and one densely packed line (16 nodes) for the
//    classification. Real CMP trees are dominated by wide splits
//    (thresholds that don't round-trip through float), which the array
//    walk resolves through a separate side table — a second line per
//    visit. Bind time folds those into the record as an exact double
//    threshold with the side entry's attribute in the parallel array,
//    so the dominant node kind takes the same vector path as plain
//    numeric splits and the loaded cut needs no widening.
//  - Whole-record loads: one 16-byte movupd per lane brings threshold
//    and both children — half the load micro-ops of gathering the same
//    bytes 8 at a time — and next-level attributes are gathered
//    alongside, so nothing queues behind a compare.
//  - Mask-driven service: the pipelined attribute gather's sign bits
//    classify every lane a level ahead. The numeric majority runs a
//    branch-free tzcnt loop of feature loads; only the exceptional
//    minority (leaf/cat/lin) sees data-dependent branches. Without the
//    masks the per-lane kind test is a 2:1 coin flip the branch
//    predictor cannot learn — a mispredict most visits.
//  - kGroups gangs in flight at once: one gang alone is bound by the
//    latency of its level chain while a scalar walker overlaps its
//    independent rows for free in the out-of-order window; eight gangs'
//    independent record loads (64 rows in flight) push the level cost
//    toward L2 load throughput on trees that outgrow L1.
// The cache-blocked node layout (infer/layout.h) additionally clusters
// the lanes' nodes into few cache lines near the top of the tree, where
// every descent spends its first several levels.
//
// Gather safety: all gathers read whole words of in-bounds arrays (ids
// are validated child pointers, and node counts are capped at INT32_MAX
// by the blob bind, so the 2*id+1 scaled index cannot overflow a signed
// 32-bit lane for any tree that fits in memory).

#include "infer/infer_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>
#include <cstdint>

#include "infer/infer_kernels_impl.h"

namespace cmp {

namespace {

constexpr int kLanes = 8;   // rows per gang (one __m256d pair)
constexpr int kGroups = 8;  // concurrent gangs whose gathers overlap
constexpr int kMaxLanes = kLanes * kGroups;

void DescendBlockAvx2(const TreeNodesView& t, const RowColumnsView& rows,
                      int64_t begin, int64_t end, int32_t* out) {
  const int64_t n = end - begin;
  if (n < kLanes) {
    for (int64_t i = begin; i < end; ++i) {
      out[i - begin] = infer_impl::Descend(t, rows, i);
    }
    return;
  }
  // As many full gangs as the range can seed; the refill pool tops the
  // lanes up from whatever is left.
  const int groups =
      n >= kMaxLanes ? kGroups : static_cast<int>(n / kLanes);
  const int lanes = groups * kLanes;
  alignas(32) int32_t ids[kMaxLanes];
  alignas(32) int32_t attrs[kMaxLanes];  // pipelined: gathered last level
  int64_t rws[kMaxLanes];
  alignas(32) double x[kMaxLanes];
  alignas(32) double cut[kMaxLanes];
  bool done_lane[kMaxLanes] = {};
  // Per-gang bitmask of exceptional lanes (attr word < 0: leaf, cat or
  // lin), derived from the pipelined attribute gather while it is still
  // in a register. The service pass walks the two populations through
  // separate tzcnt loops: the numeric majority runs branch-free, and the
  // lane-kind test — a data-dependent 2:1 coin flip the predictor can't
  // learn — disappears from the common path.
  uint32_t exc_m[kGroups];
  int64_t next = begin;
  const int32_t root_attr = t.fused_attr[0];
  for (int l = 0; l < lanes; ++l) {
    ids[l] = 0;
    attrs[l] = root_attr;
    rws[l] = next++;
  }
  for (int g = 0; g < groups; ++g) {
    exc_m[g] = root_attr < 0 ? 0xffu : 0u;
  }
  // Maps the shuffle_ps packing of two 4x64 halves
  // ([q0,q1,q4,q5 | q2,q3,q6,q7]) back into lane order.
  const __m256i perm = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
  const double* fused_d = reinterpret_cast<const double*>(t.fused);
  // The masked gather form with an all-ones mask is the plain gather;
  // GCC's no-mask wrapper leaves its pass-through operand undefined and
  // trips -Werror=maybe-uninitialized.
  const __m256i onesi = _mm256_set1_epi64x(-1);
  bool dry = false;  // a lane found the range empty on refill
  while (true) {
    uint64_t side_mask = 0;  // lanes whose cut[] came from a side table
    for (int g = 0; g < groups && !dry; ++g) {
      const int base = g * kLanes;
      const uint32_t exc = exc_m[g];
      // Numeric majority (plain or bind-folded wide): just a feature
      // load per lane, no branches. The exact double threshold is
      // gathered in the vector step; start the record's line toward L1
      // now — that gather lands tens of cycles from here.
      for (uint32_t m = ~exc & 0xffu; m != 0; m &= m - 1) {
        const int l = base + std::countr_zero(m);
        _mm_prefetch(reinterpret_cast<const char*>(t.fused + ids[l]),
                     _MM_HINT_T0);
        x[l] = rows.numeric[attrs[l]][rws[l]];
      }
      // Exceptional lanes: retire leaves (refilling from the range) and
      // resolve categorical/linear splits scalar. A lane chains until it
      // parks on a numeric node again (or the range runs dry).
      for (uint32_t m = exc; m != 0 && !dry; m &= m - 1) {
        const int l = base + std::countr_zero(m);
        int32_t a = attrs[l];
        for (;;) {
          if (a >= 0) {
            _mm_prefetch(reinterpret_cast<const char*>(t.fused + ids[l]),
                         _MM_HINT_T0);
            x[l] = rows.numeric[a][rws[l]];
            break;
          }
          const CompiledTree::FusedNode& nd = t.fused[ids[l]];
          if (a == CompiledTree::kLeaf) {
            out[rws[l] - begin] = nd.right;  // leaf-table index
            if (next < end) {
              ids[l] = 0;
              a = root_attr;
              rws[l] = next++;
              continue;
            }
            done_lane[l] = true;
            dry = true;
            break;
          }
          if (a == CompiledTree::kLin) {
            const CompiledTree::LinSplit& s = t.lin_splits[nd.SideIndex()];
            x[l] = s.a * rows.numeric[s.x][rws[l]] +
                   s.b * rows.numeric[s.y][rws[l]];
            cut[l] = s.c;
            side_mask |= uint64_t{1} << l;
            break;
          }
          // Categorical: resolved fully here (same tests as the scalar
          // Step), reading only the fused record and the side tables.
          const CompiledTree::CatSplit& s = t.cat_splits[nd.SideIndex()];
          const int32_t v = rows.categorical[s.attr][rws[l]];
          const bool go_left =
              v >= 0 && v < s.card && t.cat_bits[s.offset + v] != 0;
          ids[l] = go_left ? nd.left : nd.right;
          a = t.fused_attr[ids[l]];
        }
      }
    }
    if (dry) break;
    // One level for every gang. Each gang's gathers depend only on its
    // own ids, so the hardware keeps all groups' fetches in flight.
    for (int g = 0; g < groups; ++g) {
      const int base = g * kLanes;
      // Each lane's whole 16-byte record arrives in ONE load — half the
      // load micro-ops a gather would spend fetching the same bytes
      // 8 at a time — and an unpack tree transposes the eight records
      // to SoA: cut vectors in lane order, child pairs in the packed
      // [q0,q1,q4,q5 | q2,q3,q6,q7] order the blend below expects. The
      // eight loads carry independent addresses, so they pipeline like
      // a gather without its setup overhead.
      const __m128d r0 = _mm_loadu_pd(fused_d + 2 * ids[base + 0]);
      const __m128d r1 = _mm_loadu_pd(fused_d + 2 * ids[base + 1]);
      const __m128d r2 = _mm_loadu_pd(fused_d + 2 * ids[base + 2]);
      const __m128d r3 = _mm_loadu_pd(fused_d + 2 * ids[base + 3]);
      const __m128d r4 = _mm_loadu_pd(fused_d + 2 * ids[base + 4]);
      const __m128d r5 = _mm_loadu_pd(fused_d + 2 * ids[base + 5]);
      const __m128d r6 = _mm_loadu_pd(fused_d + 2 * ids[base + 6]);
      const __m128d r7 = _mm_loadu_pd(fused_d + 2 * ids[base + 7]);
      __m256d cut_lo = _mm256_set_m128d(_mm_unpacklo_pd(r2, r3),
                                        _mm_unpacklo_pd(r0, r1));
      __m256d cut_hi = _mm256_set_m128d(_mm_unpacklo_pd(r6, r7),
                                        _mm_unpacklo_pd(r4, r5));
      const __m256i ch_lo = _mm256_castpd_si256(_mm256_set_m128d(
          _mm_unpackhi_pd(r2, r3), _mm_unpackhi_pd(r0, r1)));
      const __m256i ch_hi = _mm256_castpd_si256(_mm256_set_m128d(
          _mm_unpackhi_pd(r6, r7), _mm_unpackhi_pd(r4, r5)));
      // Linear lanes computed their cut in the service pass (rare);
      // merge those over the gathered values.
      const uint32_t side =
          static_cast<uint32_t>((side_mask >> base) & 0xffu);
      if (side != 0) {
        alignas(32) double cs[kLanes];
        _mm256_store_pd(cs, cut_lo);
        _mm256_store_pd(cs + 4, cut_hi);
        for (int l = 0; l < kLanes; ++l) {
          if (side & (1u << l)) cs[l] = cut[base + l];
        }
        cut_lo = _mm256_load_pd(cs);
        cut_hi = _mm256_load_pd(cs + 4);
      }
      // Ordered `<=` masks for lanes 0-3 and 4-7. Staying in the vector
      // domain (shuffle + permute instead of movemask + scalar shifts)
      // keeps the GPR round-trip off the level's critical path.
      const __m256d le_lo =
          _mm256_cmp_pd(_mm256_load_pd(x + base), cut_lo, _CMP_LE_OQ);
      const __m256d le_hi =
          _mm256_cmp_pd(_mm256_load_pd(x + base + 4), cut_hi, _CMP_LE_OQ);
      // Split the child pairs into left (even dwords) and right (odd
      // dwords) streams, and halve the 64-bit compare masks to 32-bit
      // lanes (each double mask is all-ones/all-zero, so its low float
      // half is too). All three land in the same packed lane order, so
      // one blend picks each lane's child and a single permute restores
      // lane order for the next level's ids.
      const __m256 cl = _mm256_castsi256_ps(ch_lo);
      const __m256 ch = _mm256_castsi256_ps(ch_hi);
      const __m256 lefts = _mm256_shuffle_ps(cl, ch, _MM_SHUFFLE(2, 0, 2, 0));
      const __m256 rights = _mm256_shuffle_ps(cl, ch, _MM_SHUFFLE(3, 1, 3, 1));
      const __m256 le_packed =
          _mm256_shuffle_ps(_mm256_castpd_ps(le_lo), _mm256_castpd_ps(le_hi),
                            _MM_SHUFFLE(2, 0, 2, 0));
      const __m256i chosen = _mm256_castps_si256(
          _mm256_blendv_ps(rights, lefts, le_packed));
      const __m256i nid = _mm256_permutevar8x32_epi32(chosen, perm);
      _mm256_store_si256(reinterpret_cast<__m256i*>(ids + base), nid);
      // Pipeline the next level's classification: this gather has a
      // whole service pass of slack before attrs[] is read again. While
      // the words are still in a register, take their sign bits as the
      // next service pass's exceptional-lane mask.
      const __m256i av = _mm256_mask_i32gather_epi32(
          _mm256_setzero_si256(), t.fused_attr, nid, onesi, 4);
      _mm256_store_si256(reinterpret_cast<__m256i*>(attrs + base), av);
      exc_m[g] = static_cast<uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(av)));
    }
  }
  // Range dry: lanes still in flight (their ids unstepped since the last
  // child blend) finish scalar, exactly like the gang walker's drain.
  for (int l = 0; l < lanes; ++l) {
    if (done_lane[l]) continue;
    out[rws[l] - begin] = infer_impl::DescendFrom(t, rows, ids[l], rws[l]);
  }
}

constexpr InferKernelOps kAvx2Ops = {DescendBlockAvx2};

}  // namespace

const InferKernelOps* Avx2InferKernelOpsOrNull() { return &kAvx2Ops; }

}  // namespace cmp

#else  // !defined(__AVX2__)

namespace cmp {

const InferKernelOps* Avx2InferKernelOpsOrNull() { return nullptr; }

}  // namespace cmp

#endif  // defined(__AVX2__)
