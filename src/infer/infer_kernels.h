#ifndef CMP_INFER_INFER_KERNELS_H_
#define CMP_INFER_INFER_KERNELS_H_

#include <cstdint>

#include "common/cpu_features.h"
#include "infer/compiled_tree.h"

namespace cmp {

/// Per-ISA batch tree-traversal kernels behind the same runtime dispatch
/// as the histogram kernels (common/cpu_features.h): the AVX2 tier
/// descends 8 rows per vector, SSE2 4, scalar falls back to the gang
/// walker. Every tier reproduces CompiledTree::PredictRow bit for bit —
/// comparisons stay in double, vector compares use ordered `<=` (NaN
/// routes right), and linear splits are evaluated mul/mul/add with FP
/// contraction impossible (the AVX2 file is compiled with -mavx2 only,
/// never -mfma), so a vector lane computes the exact doubles the scalar
/// walker does.
struct InferKernelOps {
  /// Fills `out[i - begin]` with the leaf index row i of `rows` lands in,
  /// for i in [begin, end). Must be byte-identical to
  /// CompiledTree::Descend on every row.
  void (*descend_block)(const TreeNodesView& tree, const RowColumnsView& rows,
                        int64_t begin, int64_t end, int32_t* out);
};

/// Ops for `isa`, falling back (avx2 -> sse2 -> scalar) when the
/// requested tier was not compiled into this binary. The fallback is
/// resolved at link time, so a scalar-only build never references
/// vector symbols.
const InferKernelOps& InferKernelOpsFor(KernelIsa isa);

/// Ops for the active (auto-detected or pinned) tier.
const InferKernelOps& ActiveInferKernelOps();

/// Tier tables, or null when this binary was built without the ISA.
/// Exposed for the differential tests and benches that sweep every
/// runnable tier explicitly.
const InferKernelOps* Sse2InferKernelOpsOrNull();
const InferKernelOps* Avx2InferKernelOpsOrNull();

}  // namespace cmp

#endif  // CMP_INFER_INFER_KERNELS_H_
