#include "infer/layout.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

namespace cmp {

const char* NodeLayoutName(NodeLayout layout) {
  switch (layout) {
    case NodeLayout::kPreorder:
      return "preorder";
    case NodeLayout::kBlocked:
      return "blocked";
  }
  return "unknown";
}

void ApplyBlockedLayout(CompiledTreeArrays* arrays) {
  const int32_t n = static_cast<int32_t>(arrays->attr.size());
  if (n <= 1) return;

  // Pass 1: choose the new order. `pending` is a FIFO of block roots;
  // each block walks breadth-first from its root until kLayoutBlockNodes
  // nodes are placed, and whatever its BFS frontier still holds seeds
  // later blocks. FIFO draining keeps the blocks every descent crosses
  // (the top of the tree) at the front of the arrays.
  std::vector<int32_t> order;
  order.reserve(n);
  std::deque<int32_t> pending;
  pending.push_back(0);
  std::vector<int32_t> bfs;  // current block's BFS queue
  while (!pending.empty()) {
    bfs.clear();
    bfs.push_back(pending.front());
    pending.pop_front();
    size_t head = 0;
    int32_t placed = 0;
    while (head < bfs.size() && placed < kLayoutBlockNodes) {
      const int32_t id = bfs[head++];
      order.push_back(id);
      ++placed;
      if (arrays->attr[id] != CompiledTree::kLeaf) {
        bfs.push_back(arrays->children[2 * id]);
        bfs.push_back(arrays->children[2 * id + 1]);
      }
    }
    // Unplaced frontier nodes become the roots of strictly later blocks,
    // which is what keeps children strictly forward across block seams.
    for (size_t i = head; i < bfs.size(); ++i) pending.push_back(bfs[i]);
  }
  assert(static_cast<int32_t>(order.size()) == n);

  // Pass 2: permute the node arrays and remap internal child pointers.
  // Leaf payloads (class id, leaf-table index) travel with their node,
  // so the leaf tables and side tables need no touching.
  std::vector<int32_t> perm(n);  // old id -> new id
  for (int32_t new_id = 0; new_id < n; ++new_id) perm[order[new_id]] = new_id;
  std::vector<int16_t> attr(n);
  std::vector<float> threshold(n);
  std::vector<int32_t> children(2 * static_cast<size_t>(n));
  for (int32_t new_id = 0; new_id < n; ++new_id) {
    const int32_t old_id = order[new_id];
    attr[new_id] = arrays->attr[old_id];
    threshold[new_id] = arrays->threshold[old_id];
    if (arrays->attr[old_id] == CompiledTree::kLeaf) {
      children[2 * new_id] = arrays->children[2 * old_id];
      children[2 * new_id + 1] = arrays->children[2 * old_id + 1];
    } else {
      children[2 * new_id] = perm[arrays->children[2 * old_id]];
      children[2 * new_id + 1] = perm[arrays->children[2 * old_id + 1]];
    }
  }
  arrays->attr = std::move(attr);
  arrays->threshold = std::move(threshold);
  arrays->children = std::move(children);
}

}  // namespace cmp
